#!/usr/bin/env bash
# Full verification sweep: configure, build, run all tests, run all
# benchmark harnesses. Mirrors what CI would run.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/*; do
    echo "=== $b ==="
    "$b"
    echo
done
