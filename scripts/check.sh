#!/usr/bin/env bash
# Full verification sweep: configure, build, run all tests, run all
# benchmark harnesses. Mirrors what CI would run.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

# Differential correctness oracle: spec-vs-incremental equivalence,
# token-tree fuzzing, KV round trips, MSS distribution tests. Prints
# a seed-exact repro line on any failure.
./build/tools/diffcheck --trials 50

# Observability smoke: a short serving run under the exporters, then
# obs_check validates the Prometheus exposition (pinning the serving
# metric catalog) and the Chrome trace JSON. CI uploads build/obs/
# as artifacts.
mkdir -p build/obs
SPECINFER_METRICS_OUT=build/obs/micro_serving.prom \
SPECINFER_TRACE_OUT=build/obs/micro_serving.trace.json \
./build/bench/micro_serving \
    --benchmark_filter='BM_ContinuousBatchDrain' \
    --benchmark_min_time=0.01
./build/tools/obs_check \
    --metrics build/obs/micro_serving.prom \
    --trace build/obs/micro_serving.trace.json \
    --require-metric serving_iterations,serving_requests_finished,serving_tokens_generated,serving_iteration_millis,engine_tokens_verified,pool_jobs_dispatched,serving_rejected_overloaded,serving_deadline_expiries,serving_shed_by_class_interactive,serving_shed_by_class_standard,serving_shed_by_class_batch
# Shared-prefix scenario: the multi-tenant sharing ablation under
# the exporters (it also asserts sharing-vs-plain token identity
# before reporting), then obs_check pins the prefix-sharing metric
# catalog — pool occupancy/sharing gauges, hit/miss/COW counters,
# and the engine-side prefill-skip counter.
SPECINFER_METRICS_OUT=build/obs/prefix_sharing.prom \
SPECINFER_BENCH_TOKENS=8 \
./build/bench/ablation_prefix_sharing \
    --benchmark_filter='sharing:1' --benchmark_min_time=0.01
./build/tools/obs_check \
    --metrics build/obs/prefix_sharing.prom \
    --require-metric kv_blocks_in_use,kv_shared_blocks,kv_alloc_failures,kv_prefix_hits,kv_prefix_misses,kv_cow_copies,engine_prefill_skipped_tokens
./build/tools/spec_infer --num-prompts 2 --max-tokens 8 \
    --metrics-out build/obs/spec_infer.prom \
    --trace-out build/obs/spec_infer.trace.json
./build/tools/obs_check \
    --metrics build/obs/spec_infer.prom \
    --trace build/obs/spec_infer.trace.json \
    --require-metric engine_tokens_proposed,engine_tokens_accepted,model_kernel_launches
# Same run with real-int8 SSM drafting: pins the quantized-path
# counter catalog (kernel launches plus the quantize/int8-GEMM
# sub-phase timers) so the integer kernels can't silently stop
# being exercised.
./build/tools/spec_infer --num-prompts 2 --max-tokens 8 \
    --ssm-precision int8 \
    --metrics-out build/obs/spec_infer_int8.prom \
    --trace-out build/obs/spec_infer_int8.trace.json
./build/tools/obs_check \
    --metrics build/obs/spec_infer_int8.prom \
    --trace build/obs/spec_infer_int8.trace.json \
    --require-metric model_int8_kernel_launches,model_quantize_nanos,model_int8_gemm_nanos
# Sharded serving smoke: the same run at --tp 2 must emit the
# collective-accounting catalog (two allReduces per layer plus the
# LM-head allGather, byte counts matching the perf model's formula —
# tests/parallel pins the exact equality; this pins the catalog).
./build/tools/spec_infer --num-prompts 2 --max-tokens 8 --tp 2 \
    --metrics-out build/obs/spec_infer_tp2.prom
./build/tools/obs_check \
    --metrics build/obs/spec_infer_tp2.prom \
    --require-metric parallel_allreduce_calls,parallel_allreduce_bytes,parallel_allgather_calls,parallel_allgather_bytes

# Daemon smoke: specinferd + three real client processes over the
# shared-memory plane, one killed mid-stream. Asserts the lease
# reap, survivors token-identical to the in-process oracle, a clean
# drain with no leaked segments, record replay, and the pinned
# ipc_*/daemon_* metric catalog (the script runs obs_check itself).
./scripts/daemon_smoke.sh

# Supervisor smoke: specinferd under specinferd_supervisor crashing
# repeatedly mid-stream (--crash-after). Asserts >= 2 journal-
# recovered restarts, streams oracle-identical across the crashes,
# a graceful SIGTERM drain with no leaked segments, and the pinned
# supervisor_* metric catalog.
./scripts/supervisor_smoke.sh

# Fault-injection soak under ASan/UBSan: thousands of scheduling
# iterations with random speculator/verifier/allocator/straggler
# faults; checks liveness, request conservation, the spec-vs-
# incremental oracle on every result, and that no KV block leaks.
# Prints the injector's seed repro line on any failure.
cmake --preset asan
cmake --build --preset asan --target test_fault
./build-asan/tests/test_fault

# Overload-resilience suites under ASan/UBSan: watchdog arm/fire,
# supervisor backoff/crash-loop schedules, QoS priority scheduling +
# shed/deadline policies, per-class token buckets, and the daemon
# hang/wedge chaos soak (injected stalls, frozen heartbeats, and
# supervisor-style kill/restart cycles over one journal).
cmake --build --preset asan --target test_util test_runtime \
      test_ipc_soak
./build-asan/tests/test_util \
    --gtest_filter='Watchdog*:SupervisorPolicy*'
./build-asan/tests/test_runtime --gtest_filter='Priority*:Overload*'
./build-asan/tests/test_ipc_soak --gtest_filter='*WatchdogHangWedge*'

# Int8 kernel + model suites under ASan/UBSan: quantization, the
# integer GEMM tiles (scalar and AVX2 dispatch), and the int8 SSM
# forward/serialization paths.
cmake --build --preset asan --target test_tensor test_model
./build-asan/tests/test_tensor --gtest_filter='Int8*'
./build-asan/tests/test_model --gtest_filter='*Int8*'

# Tensor-parallel suites under ASan/UBSan: the collective library's
# determinism/accounting properties and the sharded-forward
# bit-identity sweep (tp in {2,4,8} vs tp=1, fp32 and int8).
cmake --build --preset asan --target test_parallel
./build-asan/tests/test_parallel
./build-asan/tests/test_model --gtest_filter='Sharded*'

# Crash-recovery oracle under ASan/UBSan: seeded workloads crashed
# at random points (torn journal records included) must recover to
# bit-identical outputs with no KV leak.
cmake --build --preset asan --target test_recovery
SPECINFER_RECOVERY_TRIALS=300 ./build-asan/tests/test_recovery

# Data-race sweep: thread pool, batched forward, fault injection,
# recovery machinery, the prefix-sharing soak + serving equivalence
# suites, the int8 quantize/GEMM/forward suites (row-parallel via
# the pool), and the metrics/tracing instruments (hammered from
# pool workers) under ThreadSanitizer.
cmake --preset tsan
cmake --build --preset tsan
SPECINFER_SOAK_ITERATIONS=1500 SPECINFER_RECOVERY_TRIALS=60 \
SPECINFER_RECOVERY_SOAK_ITERATIONS=800 \
ctest --preset tsan \
      -R 'ThreadPool|ThreadedForward|Fault|Recovery|Journal|Crc32|Concurrency|Tracer|WorkloadTrace|OverheadGuard|KvSharing|PrefixSharing|Ring|Int8|Watchdog|SupervisorPolicy|Priority|Overload|Parallel|Collective|ShardedForward'

for b in build/bench/*; do
    echo "=== $b ==="
    "$b"
    echo
done
