#!/usr/bin/env bash
# Full verification sweep: configure, build, run all tests, run all
# benchmark harnesses. Mirrors what CI would run.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

# Differential correctness oracle: spec-vs-incremental equivalence,
# token-tree fuzzing, KV round trips, MSS distribution tests. Prints
# a seed-exact repro line on any failure.
./build/tools/diffcheck --trials 50

# Fault-injection soak under ASan/UBSan: thousands of scheduling
# iterations with random speculator/verifier/allocator/straggler
# faults; checks liveness, request conservation, the spec-vs-
# incremental oracle on every result, and that no KV block leaks.
# Prints the injector's seed repro line on any failure.
cmake --preset asan
cmake --build --preset asan --target test_fault
./build-asan/tests/test_fault

# Crash-recovery oracle under ASan/UBSan: seeded workloads crashed
# at random points (torn journal records included) must recover to
# bit-identical outputs with no KV leak.
cmake --build --preset asan --target test_recovery
SPECINFER_RECOVERY_TRIALS=300 ./build-asan/tests/test_recovery

# Data-race sweep: thread pool, batched forward, fault injection,
# and recovery machinery under ThreadSanitizer.
cmake --preset tsan
cmake --build --preset tsan
SPECINFER_SOAK_ITERATIONS=1500 SPECINFER_RECOVERY_TRIALS=60 \
SPECINFER_RECOVERY_SOAK_ITERATIONS=800 \
ctest --preset tsan \
      -R 'ThreadPool|ThreadedForward|Fault|Recovery|Journal|Crc32'

for b in build/bench/*; do
    echo "=== $b ==="
    "$b"
    echo
done
