#!/usr/bin/env bash
# Benchmark-JSON runner: build the Release preset, run the two
# google-benchmark harnesses, and append one labelled entry per run
# to BENCH_kernels.json / BENCH_serving.json at the repo root. Each
# entry records benchmark name -> ns/op and items/s, plus the thread
# count and git revision, so the perf trajectory is diffable across
# commits (and across SPECINFER_THREADS settings).
#
# Usage: scripts/bench_json.sh [--label NAME] [--filter REGEX]
#   SPECINFER_THREADS=N   thread count recorded + used by the run
#   SPECINFER_NATIVE=1    configure the Release build with
#                         -march=native (off by default)
set -euo pipefail
cd "$(dirname "$0")/.."

label="$(git rev-parse --abbrev-ref HEAD)"
filter=""
while [[ $# -gt 0 ]]; do
    case "$1" in
        --label) label="$2"; shift 2 ;;
        --filter) filter="$2"; shift 2 ;;
        *) echo "unknown argument: $1" >&2; exit 2 ;;
    esac
done

native="OFF"
if [[ "${SPECINFER_NATIVE:-0}" == "1" ]]; then
    native="ON"
fi
cmake --preset release -DSPECINFER_NATIVE="${native}" >/dev/null
cmake --build --preset release --target micro_kernels micro_serving \
    ablation_prefix_sharing >/dev/null

rev="$(git rev-parse --short HEAD)"
if ! git diff --quiet HEAD -- ':!BENCH_kernels.json' \
        ':!BENCH_serving.json' 2>/dev/null; then
    rev="${rev}+dirty"
fi
threads="${SPECINFER_THREADS:-1}"
export SPECINFER_THREADS="${threads}"

run_one() {
    local binary="$1" out_json="$2"
    local raw
    raw="$(mktemp)"
    local bench_args=(--benchmark_format=json)
    if [[ -n "${filter}" ]]; then
        bench_args+=("--benchmark_filter=${filter}")
    fi
    "./build-release/bench/${binary}" "${bench_args[@]}" > "${raw}"
    python3 - "${raw}" "${out_json}" "${rev}" "${label}" \
        "${threads}" <<'PY'
import json, sys

raw_path, out_path, rev, label, threads = sys.argv[1:6]
with open(raw_path) as f:
    raw = json.load(f)

to_ns = {"ns": 1.0, "us": 1.0e3, "ms": 1.0e6, "s": 1.0e9}
benchmarks = {}
for b in raw.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    scale = to_ns[b.get("time_unit", "ns")]
    entry = {"ns_per_op": round(b["real_time"] * scale, 2)}
    if "items_per_second" in b:
        entry["items_per_s"] = round(b["items_per_second"], 2)
    # User counters (e.g. peak_kv_blocks, prefill_tokens from the
    # prefix-sharing ablation) appear as extra numeric keys.
    standard = {
        "name", "family_index", "per_family_instance_index",
        "run_name", "run_type", "repetitions", "repetition_index",
        "threads", "iterations", "real_time", "cpu_time",
        "time_unit", "items_per_second", "bytes_per_second",
        "label", "aggregate_name", "aggregate_unit",
        "error_occurred", "error_message",
    }
    for key, value in b.items():
        if key not in standard and isinstance(value, (int, float)):
            entry[key] = round(value, 2)
    benchmarks[b["name"]] = entry

try:
    with open(out_path) as f:
        runs = json.load(f)
except (FileNotFoundError, json.JSONDecodeError):
    runs = []

runs.append({
    "rev": rev,
    "label": label,
    "threads": int(threads),
    "benchmarks": benchmarks,
})
with open(out_path, "w") as f:
    json.dump(runs, f, indent=2)
    f.write("\n")
print(f"{out_path}: appended run rev={rev} label={label} "
      f"threads={threads} ({len(benchmarks)} benchmarks)")
PY
    rm -f "${raw}"
}

run_one micro_kernels BENCH_kernels.json
run_one micro_serving BENCH_serving.json
run_one ablation_prefix_sharing BENCH_serving.json
run_one ablation_overload BENCH_serving.json
