#!/usr/bin/env bash
# Daemon smoke test: a real multi-process run of the shared-memory
# serving plane.
#
#   1. Start specinferd (journaled + recorded) over a scratch IPC
#      directory.
#   2. Run three specinfer_client processes concurrently; one of
#      them dies kill -9 style mid-stream (--abandon-after-tokens:
#      no goodbye, no unlink, hard exit) and must be lease-reaped.
#   3. The survivors' `  tokens:` lines must be byte-identical to
#      the in-process `spec_infer --verbose` oracle.
#   4. SIGTERM drains the daemon; no shared-memory segment may be
#      left behind, the recording must replay token-identically
#      (diffcheck --replay-record), and obs_check pins the
#      ipc_*/daemon_* metric catalog, including the reap counter.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${BUILD_DIR:-build}
LLM=tiny
MAX_TOKENS=24
WORK=$(mktemp -d "${TMPDIR:-/tmp}/specinferd-smoke-XXXXXX")
IPCDIR="$WORK/ipc"
mkdir -p "$IPCDIR"
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

"$BUILD/tools/specinferd" \
    --llm $LLM --max-tokens $MAX_TOKENS --batch 4 \
    --dir "$IPCDIR" --lease-ticks 400 --scan-every 1 \
    --tick-micros 200 \
    --journal "$WORK/serve.wal" --record "$WORK/stream.rec" \
    --metrics-out "$WORK/daemon.prom" --verbose \
    >"$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!

for _ in $(seq 1 100); do
    [ -e "$IPCDIR/specinferd.board" ] && break
    sleep 0.1
done
[ -e "$IPCDIR/specinferd.board" ] || {
    echo "daemon_smoke: board never appeared"; cat "$WORK/daemon.log"
    exit 1
}

client() { # client <prompt-start> <logfile> [extra flags...]
    local start=$1 log=$2; shift 2
    "$BUILD/tools/specinfer_client" \
        --llm $LLM --dir "$IPCDIR" --num-prompts 3 \
        --prompt-start "$start" --max-tokens $MAX_TOKENS "$@" \
        >"$log" 2>&1
}

client 0 "$WORK/client_a.log" &
A_PID=$!
client 3 "$WORK/client_b.log" &
B_PID=$!
# The victim: dies without cleanup once tokens are mid-stream.
client 6 "$WORK/client_victim.log" --abandon-after-tokens 2 &
V_PID=$!

rc=0; wait $V_PID || rc=$?
[ "$rc" -eq 7 ] || {
    echo "daemon_smoke: victim exit $rc, wanted 7 (abandoned)"
    cat "$WORK/client_victim.log"; exit 1
}
wait $A_PID || { echo "daemon_smoke: client A failed";
                 cat "$WORK/client_a.log"; exit 1; }
wait $B_PID || { echo "daemon_smoke: client B failed";
                 cat "$WORK/client_b.log"; exit 1; }

# Survivors must match the in-process oracle line-for-line: the
# victim's crash and reap were invisible to them.
"$BUILD/tools/spec_infer" --llm $LLM --num-prompts 6 \
    --max-tokens $MAX_TOKENS --verbose >"$WORK/oracle.log"
grep '^  tokens:' "$WORK/oracle.log" >"$WORK/oracle.tokens"
grep -h '^  tokens:' "$WORK/client_a.log" "$WORK/client_b.log" \
    >"$WORK/survivor.tokens"
diff -u "$WORK/oracle.tokens" "$WORK/survivor.tokens" || {
    echo "daemon_smoke: survivor tokens diverged from oracle"
    exit 1
}

# The victim's lease must expire: its segment is reaped, the board
# survives until drain.
for _ in $(seq 1 100); do
    n=$(ls "$IPCDIR" | grep -c '^specinferd\.client\.' || true)
    [ "$n" -eq 0 ] && break
    sleep 0.1
done
[ "$n" -eq 0 ] || {
    echo "daemon_smoke: $n client segment(s) never reaped"
    ls -l "$IPCDIR"; exit 1
}

# Graceful drain on SIGTERM: exit 0 and an empty IPC directory.
kill -TERM $DAEMON_PID
rc=0; wait $DAEMON_PID || rc=$?
DAEMON_PID=""
[ "$rc" -eq 0 ] || {
    echo "daemon_smoke: daemon exit $rc, wanted 0 (drained)"
    cat "$WORK/daemon.log"; exit 1
}
leftover=$(ls "$IPCDIR" | grep -c '^specinferd' || true)
[ "$leftover" -eq 0 ] || {
    echo "daemon_smoke: leaked shared-memory segments:"
    ls -l "$IPCDIR"; exit 1
}

# The recording replays token-identically offline.
"$BUILD/tools/diffcheck" --replay-record "$WORK/stream.rec"

# Pinned serving-plane metric catalog, and the reap actually
# happened (daemon_reaps >= 1 in the exposition).
"$BUILD/tools/obs_check" --metrics "$WORK/daemon.prom" \
    --require-metric ipc_frames_sent,ipc_frames_received,ipc_bytes_sent,ipc_bytes_received,ipc_ring_full_retries,ipc_crc_rejects,daemon_reaps,daemon_requests_admitted,daemon_requests_rejected,daemon_cancels,daemon_tokens_streamed,daemon_ticks,daemon_clients_connected,watchdog_stalls,watchdog_wedges
awk '$1 == "daemon_reaps" { reaps = $2 }
     END { exit (reaps >= 1 ? 0 : 1) }' "$WORK/daemon.prom" || {
    echo "daemon_smoke: daemon_reaps never incremented"
    grep '^daemon_' "$WORK/daemon.prom"; exit 1
}

# --- Sharded daemon phase: specinferd --tp 2 -------------------
# One client against a tensor-parallel daemon; its tokens must be
# byte-identical to the tp=1 oracle above (DESIGN.md §5j lifted to
# the multi-process plane), and the daemon's metrics must carry the
# collective-accounting catalog.
IPCDIR2="$WORK/ipc-tp2"
mkdir -p "$IPCDIR2"
"$BUILD/tools/specinferd" \
    --llm $LLM --max-tokens $MAX_TOKENS --batch 4 --tp 2 \
    --dir "$IPCDIR2" --lease-ticks 400 --scan-every 1 \
    --tick-micros 200 \
    --metrics-out "$WORK/daemon_tp2.prom" --verbose \
    >"$WORK/daemon_tp2.log" 2>&1 &
DAEMON_PID=$!

for _ in $(seq 1 100); do
    [ -e "$IPCDIR2/specinferd.board" ] && break
    sleep 0.1
done
[ -e "$IPCDIR2/specinferd.board" ] || {
    echo "daemon_smoke: tp2 board never appeared"
    cat "$WORK/daemon_tp2.log"; exit 1
}

"$BUILD/tools/specinfer_client" \
    --llm $LLM --dir "$IPCDIR2" --num-prompts 3 \
    --prompt-start 0 --max-tokens $MAX_TOKENS \
    >"$WORK/client_tp2.log" 2>&1 || {
    echo "daemon_smoke: tp2 client failed"
    cat "$WORK/client_tp2.log"; exit 1
}

head -n 3 "$WORK/oracle.tokens" >"$WORK/oracle_tp2.tokens"
grep '^  tokens:' "$WORK/client_tp2.log" >"$WORK/tp2.tokens"
diff -u "$WORK/oracle_tp2.tokens" "$WORK/tp2.tokens" || {
    echo "daemon_smoke: --tp 2 tokens diverged from tp=1 oracle"
    exit 1
}

kill -TERM $DAEMON_PID
rc=0; wait $DAEMON_PID || rc=$?
DAEMON_PID=""
[ "$rc" -eq 0 ] || {
    echo "daemon_smoke: tp2 daemon exit $rc, wanted 0 (drained)"
    cat "$WORK/daemon_tp2.log"; exit 1
}

"$BUILD/tools/obs_check" --metrics "$WORK/daemon_tp2.prom" \
    --require-metric parallel_allreduce_calls,parallel_allreduce_bytes,parallel_allgather_calls,parallel_allgather_bytes,daemon_tokens_streamed

echo "daemon_smoke: OK (3 clients, 1 reaped, survivors oracle-"
echo "identical, recording replayed, catalog pinned, --tp 2"
echo "daemon oracle-identical with collective accounting)"
