#!/usr/bin/env bash
# Supervisor smoke test: specinferd kept alive by
# specinferd_supervisor across repeated mid-stream crashes.
#
#   1. The supervisor forks specinferd with --crash-after 2: every
#      incarnation hard-exits (no drain, no unlink) after two live
#      iterations while work remains, exactly like a kill -9.
#   2. Two client processes stream six prompts across the crashes.
#      Each restart recovers the journal and bumps the board epoch;
#      clients re-Hello and resume their streams where they left off.
#   3. The streams must be byte-identical to the in-process
#      `spec_infer --verbose` oracle despite the crash/recover
#      cycles — recovery is invisible in the tokens.
#   4. SIGTERM drains gracefully: supervisor exit 0, no leaked
#      shared-memory segments, and the exported supervisor_* metric
#      catalog shows >= 2 restarts and zero give-ups.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${BUILD_DIR:-build}
LLM=tiny
MAX_TOKENS=24
WORK=$(mktemp -d "${TMPDIR:-/tmp}/specinferd-sup-smoke-XXXXXX")
IPCDIR="$WORK/ipc"
mkdir -p "$IPCDIR"
SUP_PID=""
cleanup() {
    [ -n "$SUP_PID" ] && kill -9 "$SUP_PID" 2>/dev/null || true
    pkill -9 -f "specinferd .*$IPCDIR" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

"$BUILD/tools/specinferd_supervisor" \
    --daemon "$BUILD/tools/specinferd" --dir "$IPCDIR" \
    --backoff-base-ms 40 --backoff-cap-ms 150 \
    --stable-uptime-ms 2000 \
    --crash-loop-crashes 40 --crash-loop-window-ms 120000 \
    --seed 7 --poll-ms 5 \
    --metrics-out "$WORK/supervisor.prom" -- \
    --llm $LLM --max-tokens $MAX_TOKENS --batch 4 \
    --dir "$IPCDIR" --lease-ticks 400 --scan-every 1 \
    --tick-micros 200 --crash-after 2 \
    --journal "$WORK/serve.wal" --verbose \
    >"$WORK/supervisor.log" 2>&1 &
SUP_PID=$!

for _ in $(seq 1 100); do
    [ -e "$IPCDIR/specinferd.board" ] && break
    sleep 0.1
done
[ -e "$IPCDIR/specinferd.board" ] || {
    echo "supervisor_smoke: board never appeared"
    cat "$WORK/supervisor.log"; exit 1
}

# Clients ride out restart gaps (crash detection + backoff) on a
# wide heartbeat-stall allowance: 20000 polls x 500us = 10 s.
client() { # client <prompt-start> <logfile> [extra flags...]
    local start=$1 log=$2; shift 2
    "$BUILD/tools/specinfer_client" \
        --llm $LLM --dir "$IPCDIR" --num-prompts 3 \
        --prompt-start "$start" --max-tokens $MAX_TOKENS \
        --stall-polls 20000 --verbose "$@" \
        >"$log" 2>&1
}

client 0 "$WORK/client_a.log" &
A_PID=$!
client 3 "$WORK/client_b.log" --priority interactive &
B_PID=$!
wait $A_PID || { echo "supervisor_smoke: client A failed";
                 cat "$WORK/client_a.log"
                 cat "$WORK/supervisor.log"; exit 1; }
wait $B_PID || { echo "supervisor_smoke: client B failed";
                 cat "$WORK/client_b.log"
                 cat "$WORK/supervisor.log"; exit 1; }

# Crash/recover cycles must actually have happened — the whole point
# of the smoke — and none may have tripped the crash-loop detector.
awk '$1 == "supervisor_restarts" { restarts = $2 }
     END { exit (restarts >= 2 ? 0 : 1) }' "$WORK/supervisor.prom" || {
    echo "supervisor_smoke: wanted >= 2 restarts, got:"
    grep '^supervisor_' "$WORK/supervisor.prom"
    cat "$WORK/supervisor.log"; exit 1
}
awk '$1 == "supervisor_giveups" { giveups = $2 }
     END { exit (giveups == 0 ? 0 : 1) }' "$WORK/supervisor.prom" || {
    echo "supervisor_smoke: supervisor gave up"
    cat "$WORK/supervisor.log"; exit 1
}

# Recovery must be invisible in the tokens: every stream matches the
# in-process oracle line-for-line.
"$BUILD/tools/spec_infer" --llm $LLM --num-prompts 6 \
    --max-tokens $MAX_TOKENS --verbose >"$WORK/oracle.log"
grep '^  tokens:' "$WORK/oracle.log" >"$WORK/oracle.tokens"
grep -h '^  tokens:' "$WORK/client_a.log" "$WORK/client_b.log" \
    >"$WORK/survivor.tokens"
diff -u "$WORK/oracle.tokens" "$WORK/survivor.tokens" || {
    echo "supervisor_smoke: tokens diverged from oracle across"
    echo "crash/recover cycles"
    cat "$WORK/supervisor.log"; exit 1
}

# Graceful drain: SIGTERM forwards to the (now idle) daemon, the
# supervisor exits with its status, and nothing is left behind.
kill -TERM $SUP_PID
rc=0; wait $SUP_PID || rc=$?
SUP_PID=""
[ "$rc" -eq 0 ] || {
    echo "supervisor_smoke: supervisor exit $rc, wanted 0"
    cat "$WORK/supervisor.log"; exit 1
}
leftover=$(ls "$IPCDIR" | grep -c '^specinferd' || true)
[ "$leftover" -eq 0 ] || {
    echo "supervisor_smoke: leaked shared-memory segments:"
    ls -l "$IPCDIR"; exit 1
}

# Pinned supervisor metric catalog.
"$BUILD/tools/obs_check" --metrics "$WORK/supervisor.prom" \
    --require-metric supervisor_restarts,supervisor_crashes,supervisor_wedge_kills,supervisor_giveups

restarts=$(awk '$1 == "supervisor_restarts" { print $2 }' \
    "$WORK/supervisor.prom")
echo "supervisor_smoke: OK ($restarts crash/recover cycles,"
echo "streams oracle-identical, drained clean, catalog pinned)"
