#!/usr/bin/env bash
# Basic functionality test, mirroring the paper artifact's
# basic_test.sh (appendix A.5): exercises incremental decoding,
# speculative inference (greedy + stochastic), and the quickstart's
# losslessness check. Prints "Test passed!" on success.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${BUILD_DIR:-build}

echo "-- quickstart (losslessness check)"
"$BUILD/examples/quickstart" > /dev/null

echo "-- incremental decoding"
"$BUILD/tools/incr_decoding" --num-prompts 2 --max-tokens 16 \
    > /dev/null

echo "-- speculative inference (greedy)"
"$BUILD/tools/spec_infer" --num-prompts 2 --max-tokens 16 \
    > /dev/null

echo "-- speculative inference (stochastic)"
"$BUILD/tools/spec_infer" --num-prompts 1 --max-tokens 16 \
    --temperature 0.8 > /dev/null

echo "Test passed!"
