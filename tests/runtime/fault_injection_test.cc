/**
 * @file
 * Targeted fault-injection tests: each named fault point is armed
 * with a surgical schedule and the runtime must degrade gracefully
 * — identical tokens for finished requests, typed failures for the
 * rest, never an abort.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "../model/test_models.h"
#include "model/model_factory.h"
#include "runtime/request_manager.h"
#include "util/fault.h"

namespace specinfer {
namespace runtime {
namespace {

using core::SpecSession;
using specinfer::testing::tinyLlm;
using util::FaultInjector;
using util::FaultPoint;
using util::FaultScope;

struct Fixture
{
    Fixture()
        : llm(tinyLlm()),
          ssm(model::makeEarlyExitSsm(llm, 2)),
          engine(&llm, {&ssm}, makeConfig())
    {
    }

    static core::EngineConfig
    makeConfig()
    {
        core::EngineConfig cfg = core::EngineConfig::greedyDefault();
        cfg.spec.expansion = core::ExpansionConfig::uniform(2, 4);
        cfg.maxNewTokens = 12;
        cfg.stopAtEos = false;
        return cfg;
    }

    model::Transformer llm;
    model::Transformer ssm;
    core::SpecEngine engine;
};

std::vector<int>
promptFor(int i)
{
    return {3 + i, 7, 2 + (i % 5), 9};
}

TEST(FaultInjectionTest, SsmFaultFallsBackToIncremental)
{
    // With the speculator failing on every step, every iteration
    // degrades to plain incremental decoding — same tokens, one
    // per step, and the fault surfaces in the stats.
    Fixture f;
    std::vector<std::vector<int>> want;
    for (int i = 0; i < 3; ++i)
        want.push_back(
            f.engine.generate(promptFor(i), uint64_t(i) + 1).tokens);

    FaultInjector fi(1);
    fi.setProbability(FaultPoint::SsmStep, 1.0);
    FaultScope scope(&fi);
    ServingConfig cfg;
    cfg.maxBatchSize = 4;
    cfg.degradeAfterConsecutiveFaults = 0; // isolate the fallback
    RequestManager manager(&f.engine, cfg);
    for (int i = 0; i < 3; ++i)
        manager.submit(promptFor(i));
    manager.runUntilDrained();
    ASSERT_EQ(manager.finished().size(), 3u);
    for (const RequestResult &res : manager.finished()) {
        EXPECT_EQ(res.tokens, want[res.id - 1]) << fi.reproLine();
        // Degraded steps emit exactly one token each.
        EXPECT_EQ(res.stats.decodeSteps(), res.tokens.size());
        EXPECT_EQ(res.stats.fallbackSteps(),
                  res.stats.decodeSteps());
    }
    EXPECT_GT(manager.stats().fallbackSteps, 0u);
}

TEST(FaultInjectionTest, VerifyFaultRejectsTreeNotRequest)
{
    // A verifier fault discards the speculated tree; the step still
    // emits the root's token, so outputs stay identical.
    Fixture f;
    std::vector<int> want =
        f.engine.generate(promptFor(0), 1).tokens;

    FaultInjector fi(2);
    fi.setProbability(FaultPoint::Verify, 1.0);
    FaultScope scope(&fi);
    ServingConfig cfg;
    cfg.maxBatchSize = 2;
    cfg.degradeAfterConsecutiveFaults = 0; // isolate the fallback
    RequestManager manager(&f.engine, cfg);
    manager.submit(promptFor(0));
    manager.runUntilDrained();
    ASSERT_EQ(manager.finished().size(), 1u);
    const RequestResult &res = manager.finished()[0];
    EXPECT_EQ(res.tokens, want) << fi.reproLine();
    EXPECT_EQ(res.stats.fallbackSteps(), res.stats.decodeSteps());
    EXPECT_GT(fi.fired(FaultPoint::Verify), 0u);
}

TEST(FaultInjectionTest, MixedFaultScheduleKeepsOutputsExact)
{
    // Random mixture of speculator and verifier faults: finished
    // outputs must stay token-identical to the fault-free run.
    Fixture f;
    std::map<uint64_t, std::vector<int>> want;
    for (int i = 0; i < 5; ++i)
        want[uint64_t(i) + 1] =
            f.engine.generate(promptFor(i), uint64_t(i) + 1).tokens;

    FaultInjector fi(0xbeef);
    fi.setProbability(FaultPoint::SsmStep, 0.4);
    fi.setProbability(FaultPoint::Verify, 0.3);
    FaultScope scope(&fi);
    RequestManager manager(&f.engine, {3});
    for (int i = 0; i < 5; ++i)
        manager.submit(promptFor(i));
    manager.runUntilDrained();
    ASSERT_EQ(manager.finished().size(), 5u);
    for (const RequestResult &res : manager.finished())
        EXPECT_EQ(res.tokens, want[res.id]) << fi.reproLine();
    EXPECT_GT(manager.stats().fallbackSteps, 0u);
}

TEST(FaultInjectionTest, DegradationLadderDisablesAndReenables)
{
    // Consecutive SSM faults trip the ladder: speculation disables
    // for a backoff window (doubling on repeat), runs incremental,
    // then re-enables — outputs unaffected throughout.
    Fixture f;
    std::vector<int> want =
        f.engine.generate(promptFor(0), 1, 48).tokens;

    FaultInjector fi(3);
    fi.setProbability(FaultPoint::SsmStep, 1.0);
    FaultScope scope(&fi);
    ServingConfig cfg;
    cfg.maxBatchSize = 2;
    cfg.degradeAfterConsecutiveFaults = 2;
    cfg.degradeBackoffIterations = 4;
    RequestManager manager(&f.engine, cfg);
    manager.submit(promptFor(0), 48);
    manager.runUntilDrained();

    ASSERT_EQ(manager.finished().size(), 1u);
    EXPECT_EQ(manager.finished()[0].tokens, want) << fi.reproLine();
    const ServingStats &stats = manager.stats();
    const DegradationState &degr = manager.degradation();
    // 48 incremental tokens with trigger 2 and window 4 must trip
    // the ladder repeatedly, doubling the backoff.
    EXPECT_GE(degr.disableEpisodes, 2u);
    EXPECT_GT(degr.currentBackoff, cfg.degradeBackoffIterations);
    EXPECT_GT(stats.degradedIterations, 0u);
    // Disabled iterations consult no fault point.
    EXPECT_EQ(fi.occurrences(FaultPoint::SsmStep),
              stats.fallbackSteps);
}

TEST(FaultInjectionTest, DegradationRecoversWhenFaultsStop)
{
    Fixture f;
    FaultInjector fi(4);
    fi.setProbability(FaultPoint::SsmStep, 1.0);
    ServingConfig cfg;
    cfg.maxBatchSize = 1;
    cfg.degradeAfterConsecutiveFaults = 2;
    cfg.degradeBackoffIterations = 3;
    RequestManager manager(&f.engine, cfg);
    manager.submit(promptFor(0), 40);
    {
        FaultScope scope(&fi);
        while (!manager.degradation().speculationDisabled &&
               manager.busy())
            manager.runIteration();
        ASSERT_TRUE(manager.degradation().speculationDisabled);
    }
    // Faults stop (scope gone); the window elapses, speculation
    // re-enables, and a fault-free stretch resets the backoff.
    manager.runUntilDrained();
    EXPECT_FALSE(manager.degradation().speculationDisabled);
    EXPECT_EQ(manager.degradation().currentBackoff, 0u);
    ASSERT_EQ(manager.finished().size(), 1u);
    EXPECT_EQ(manager.finished()[0].tokens,
              f.engine.generate(promptFor(0), 1, 40).tokens);
}

TEST(FaultInjectionTest, DeadlineExpiresActiveRequestCleanly)
{
    // An active request past its iteration deadline fails with a
    // typed reason and a partial output that is a prefix of its
    // full output.
    Fixture f;
    std::vector<int> full =
        f.engine.generate(promptFor(0), 1, 48).tokens;
    ServingConfig cfg;
    cfg.maxBatchSize = 2;
    RequestManager manager(&f.engine, cfg);
    SubmitResult sr = manager.submit(promptFor(0), 48, 4);
    ASSERT_TRUE(sr.accepted());
    manager.runUntilDrained();
    ASSERT_EQ(manager.finished().size(), 1u);
    const RequestResult &res = manager.finished()[0];
    EXPECT_EQ(res.stopReason, SpecSession::StopReason::Deadline);
    ASSERT_LT(res.tokens.size(), full.size());
    EXPECT_TRUE(std::equal(res.tokens.begin(), res.tokens.end(),
                           full.begin()));
    EXPECT_EQ(manager.stats().deadlineExpiries, 1u);
}

TEST(FaultInjectionTest, DeadlineExpiresPendingRequestCleanly)
{
    Fixture f;
    ServingConfig cfg;
    cfg.maxBatchSize = 1;
    RequestManager manager(&f.engine, cfg);
    manager.submit(promptFor(0));          // occupies the only slot
    uint64_t starved = manager.submit(promptFor(1), 0, 2);
    manager.runUntilDrained();
    ASSERT_EQ(manager.finished().size(), 2u);
    for (const RequestResult &res : manager.finished()) {
        if (res.id != starved)
            continue;
        EXPECT_EQ(res.stopReason, SpecSession::StopReason::Deadline);
        EXPECT_TRUE(res.tokens.empty());
        EXPECT_GE(res.queueIterations(), 2u);
    }
    EXPECT_EQ(manager.stats().deadlineExpiries, 1u);
}

TEST(FaultInjectionTest, DefaultDeadlineFromConfig)
{
    Fixture f;
    ServingConfig cfg;
    cfg.maxBatchSize = 1;
    cfg.defaultDeadlineIterations = 3;
    RequestManager manager(&f.engine, cfg);
    manager.submit(promptFor(0), 48); // would need ~48 iterations
    manager.runUntilDrained();
    ASSERT_EQ(manager.finished().size(), 1u);
    EXPECT_EQ(manager.finished()[0].stopReason,
              SpecSession::StopReason::Deadline);
}

TEST(FaultInjectionTest, CancelPendingAndActive)
{
    Fixture f;
    std::vector<int> full =
        f.engine.generate(promptFor(0), 1, 48).tokens;
    ServingConfig cfg;
    cfg.maxBatchSize = 1;
    RequestManager manager(&f.engine, cfg);
    uint64_t running = manager.submit(promptFor(0), 48);
    uint64_t queued = manager.submit(promptFor(1));
    manager.runIteration();
    manager.runIteration();
    EXPECT_TRUE(manager.cancel(queued));
    EXPECT_TRUE(manager.cancel(running));
    EXPECT_FALSE(manager.cancel(queued)); // already gone
    EXPECT_FALSE(manager.busy());
    ASSERT_EQ(manager.finished().size(), 2u);
    for (const RequestResult &res : manager.finished()) {
        EXPECT_EQ(res.stopReason, SpecSession::StopReason::Cancelled);
        if (res.id == queued)
            EXPECT_TRUE(res.tokens.empty());
        if (res.id == running) {
            EXPECT_GT(res.tokens.size(), 0u);
            ASSERT_LE(res.tokens.size(), full.size());
            EXPECT_TRUE(std::equal(res.tokens.begin(),
                                   res.tokens.end(), full.begin()));
        }
    }
    EXPECT_EQ(manager.stats().cancellations, 2u);
}

TEST(FaultInjectionTest, BoundedQueueRejectsOnFull)
{
    Fixture f;
    ServingConfig cfg;
    cfg.maxBatchSize = 1;
    cfg.maxPendingRequests = 2;
    RequestManager manager(&f.engine, cfg);
    EXPECT_TRUE(manager.submit(promptFor(0)).accepted());
    EXPECT_TRUE(manager.submit(promptFor(1)).accepted());
    SubmitResult rejected = manager.submit(promptFor(2));
    EXPECT_EQ(rejected.reject, RejectReason::QueueFull);
    EXPECT_EQ(rejected.id, 0u);
    EXPECT_EQ(manager.stats().rejectedQueueFull, 1u);
    // Admission frees queue space: after one iteration a slot in
    // the queue opens and submission succeeds again.
    manager.runIteration();
    EXPECT_TRUE(manager.submit(promptFor(2)).accepted());
    manager.runUntilDrained();
    EXPECT_EQ(manager.finished().size(), 3u);
}

TEST(FaultInjectionTest, InvalidPromptRejected)
{
    Fixture f;
    RequestManager manager(&f.engine, {2});
    EXPECT_EQ(manager.submit({}).reject, RejectReason::InvalidPrompt);
    std::vector<int> huge(f.llm.config().maxSeqLen, 1);
    EXPECT_EQ(manager.submit(huge).reject,
              RejectReason::InvalidPrompt);
    EXPECT_EQ(manager.stats().rejectedNeverFits, 2u);
    EXPECT_FALSE(manager.busy());
}

TEST(FaultInjectionTest, KvFaultPreemptsAndShedsOverflow)
{
    // Surgical KV fault: iteration 2's first growth reservation is
    // armed to fail. The grower (earliest arrival) preempts the
    // latest arrival, whose requeue overflows the bounded pending
    // queue and sheds the queued request with a typed result.
    Fixture f;
    ServingConfig cfg;
    cfg.maxBatchSize = 2;
    cfg.kvBlockTokens = 8;
    cfg.kvPoolBlocks = 64; // generous: only the armed fault fails
    cfg.kvPolicy = KvReservationPolicy::OnDemand;
    cfg.maxPendingRequests = 1;
    RequestManager manager(&f.engine, cfg);
    FaultInjector fi(5);
    // Reserve consultations, in order: #1 admits A, #2 is A's
    // growth reserve (iteration 1); #3 admits B, #4/#5 grow A and B
    // (iteration 2); iteration 3 skips admission (batch full), so
    // #6 is A's growth reserve — arm exactly that one.
    fi.armAt(FaultPoint::KvAlloc, 6);
    FaultScope scope(&fi);

    uint64_t a = manager.submit(promptFor(0));
    manager.runIteration();
    uint64_t b = manager.submit(promptFor(1));
    manager.runIteration();
    EXPECT_EQ(manager.activeCount(), 2u);
    uint64_t c = manager.submit(promptFor(2)); // fills the queue
    manager.runIteration();                    // armed fault fires
    EXPECT_EQ(manager.stats().preemptions, 1u);
    EXPECT_EQ(manager.stats().shedRequests, 1u);
    manager.runUntilDrained();

    std::map<uint64_t, const RequestResult *> by_id;
    for (const RequestResult &res : manager.finished())
        by_id[res.id] = &res;
    ASSERT_EQ(by_id.size(), 3u);
    EXPECT_EQ(by_id[c]->stopReason, SpecSession::StopReason::Shed);
    EXPECT_TRUE(by_id[c]->tokens.empty());
    EXPECT_EQ(by_id[a]->preemptions, 0u);
    EXPECT_EQ(by_id[b]->preemptions, 1u);
    // The preempted request restarts and still decodes exactly its
    // standalone output.
    EXPECT_EQ(by_id[b]->tokens,
              f.engine.generate(promptFor(1), b).tokens)
        << fi.reproLine();
    EXPECT_EQ(manager.stats().preemptionRetries, 1u);
}

TEST(FaultInjectionTest, PreemptionBudgetFailsCleanly)
{
    // Under a hostile allocation-fault schedule, requests exhaust
    // their retry budget and fail with StopReason::Preempted (with
    // a deadline backstop) instead of livelocking.
    Fixture f;
    ServingConfig cfg;
    cfg.maxBatchSize = 2;
    cfg.kvBlockTokens = 8;
    cfg.kvPoolBlocks = 64;
    cfg.kvPolicy = KvReservationPolicy::OnDemand;
    cfg.maxPreemptions = 1;
    cfg.defaultDeadlineIterations = 120;
    RequestManager manager(&f.engine, cfg);
    FaultInjector fi(6);
    fi.setProbability(FaultPoint::KvAlloc, 0.75);
    FaultScope scope(&fi);
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(manager.submit(promptFor(i)).accepted());
    size_t guard = 0;
    while (manager.busy()) {
        manager.runIteration();
        ASSERT_LT(++guard, 2000u)
            << "livelock: " << fi.reproLine();
    }
    // Conservation: every accepted request has exactly one result.
    ASSERT_EQ(manager.finished().size(), 4u);
    const ServingStats &stats = manager.stats();
    EXPECT_GT(stats.preemptions, 0u);
    for (const RequestResult &res : manager.finished()) {
        // Budget respected: at most maxPreemptions requeues plus
        // the final budget-exceeded preemption.
        EXPECT_LE(res.preemptions, cfg.maxPreemptions + 1);
        if (res.stopReason == SpecSession::StopReason::Preempted)
            EXPECT_EQ(res.preemptions, cfg.maxPreemptions + 1);
    }
}

TEST(FaultInjectionTest, SlowIterationConsumesDeadlineBudget)
{
    // An injected straggler jumps the iteration clock, so a
    // deadline that comfortably fits without faults now expires.
    Fixture f;
    ServingConfig cfg;
    cfg.maxBatchSize = 1;
    cfg.slowIterationPenalty = 10;
    RequestManager manager(&f.engine, cfg);
    FaultInjector fi(7);
    fi.armAt(FaultPoint::SlowIteration, 1);
    FaultScope scope(&fi);
    manager.submit(promptFor(0), 48, 8);
    size_t calls = 0;
    while (manager.busy()) {
        manager.runIteration();
        ++calls;
    }
    EXPECT_EQ(manager.stats().slowIterations, 1u);
    EXPECT_GT(manager.iterationCount(), calls); // clock jumped
    ASSERT_EQ(manager.finished().size(), 1u);
    EXPECT_EQ(manager.finished()[0].stopReason,
              SpecSession::StopReason::Deadline);
}

TEST(FaultInjectionTest, NoFaultsMeansNoOverhead)
{
    // The zero-cost default path: without an installed injector no
    // fault statistics move and outputs equal the plain engine.
    Fixture f;
    ASSERT_EQ(util::faultInjector(), nullptr);
    RequestManager manager(&f.engine, {4});
    for (int i = 0; i < 3; ++i)
        manager.submit(promptFor(i));
    manager.runUntilDrained();
    const ServingStats &stats = manager.stats();
    EXPECT_EQ(stats.fallbackSteps, 0u);
    EXPECT_EQ(stats.degradedIterations, 0u);
    EXPECT_EQ(stats.slowIterations, 0u);
    EXPECT_EQ(stats.shedRequests, 0u);
    for (const RequestResult &res : manager.finished())
        EXPECT_EQ(res.tokens,
                  f.engine.generate(promptFor(int(res.id) - 1),
                                    res.id)
                      .tokens);
}

} // namespace
} // namespace runtime
} // namespace specinfer
