/**
 * @file
 * Random-fault soak: thousands of scheduling iterations under a
 * seeded random fault schedule (speculator, verifier, KV allocator,
 * straggler faults) with random arrivals, deadlines, and client
 * cancellations. Invariants checked throughout:
 *
 *  - liveness: the manager always drains (no scheduler livelock);
 *  - conservation: every accepted request gets exactly one result;
 *  - the differential oracle: every normally finished request's
 *    tokens are token-identical to the fault-free engine output,
 *    and every aborted request's partial output is a prefix of it.
 *
 * Any failure prints the injector's one-line seed repro. Override
 * the schedule with SPECINFER_SOAK_SEED=<n> and the length with
 * SPECINFER_SOAK_ITERATIONS=<n> to widen the search locally or
 * replay a CI failure.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <vector>

#include "../model/test_models.h"
#include "model/model_factory.h"
#include "runtime/request_manager.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/rng.h"

namespace specinfer {
namespace runtime {
namespace {

using core::SpecSession;
using specinfer::testing::tinyLlm;
using util::FaultInjector;
using util::FaultPoint;
using util::FaultScope;

uint64_t
envOr(const char *name, uint64_t fallback)
{
    const char *value = std::getenv(name);
    return value != nullptr ? std::strtoull(value, nullptr, 10)
                            : fallback;
}

TEST(FaultSoakTest, RandomFaultScheduleKeepsEveryInvariant)
{
    const uint64_t seed = envOr("SPECINFER_SOAK_SEED", 20260806);
    const size_t soak_iterations =
        envOr("SPECINFER_SOAK_ITERATIONS", 10000);

    model::Transformer llm = tinyLlm();
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);
    core::EngineConfig ecfg = core::EngineConfig::greedyDefault();
    ecfg.spec.expansion = core::ExpansionConfig::uniform(2, 4);
    ecfg.maxNewTokens = 16;
    ecfg.stopAtEos = false;
    core::SpecEngine engine(&llm, {&ssm}, ecfg);

    ServingConfig cfg;
    cfg.maxBatchSize = 4;
    cfg.kvBlockTokens = 8;
    // ~2.5 worst-case footprints: real memory pressure on top of
    // the injected allocation faults.
    size_t per_request =
        6 + ecfg.maxNewTokens + engine.treeBudget() + 2;
    KvBlockAllocator probe(1000, 8);
    cfg.kvPoolBlocks = probe.blocksFor(per_request) * 5 / 2;
    cfg.kvPolicy = KvReservationPolicy::OnDemand;
    cfg.maxPendingRequests = 8;
    cfg.maxPreemptions = 4;
    cfg.defaultDeadlineIterations = 400; // backstop, rarely binding
    cfg.degradeAfterConsecutiveFaults = 3;
    cfg.degradeBackoffIterations = 8;
    RequestManager manager(&engine, cfg);

    FaultInjector fi(seed);
    fi.setProbability(FaultPoint::SsmStep, 0.10);
    fi.setProbability(FaultPoint::Verify, 0.05);
    fi.setProbability(FaultPoint::KvAlloc, 0.05);
    fi.setProbability(FaultPoint::SlowIteration, 0.02);

    // Workload randomness is a separate stream so the fault
    // schedule replays regardless of arrival pattern tweaks.
    util::Rng workload(seed ^ 0x50a4ULL);

    struct Submitted
    {
        std::vector<int> prompt;
        size_t maxNewTokens;
        bool hadDeadline;
    };
    std::map<uint64_t, Submitted> accepted;
    std::vector<uint64_t> live; // accepted, not yet seen finished
    size_t rejected = 0, cancel_hits = 0;

    {
        FaultScope scope(&fi);
        for (size_t it = 0; it < soak_iterations; ++it) {
            // Random arrivals, ~0.22 per iteration.
            if (workload.uniform() < 0.22) {
                Submitted sub;
                size_t len = 3 + size_t(workload.uniform() * 4);
                for (size_t t = 0; t < len; ++t)
                    sub.prompt.push_back(
                        1 + int(workload.uniform() * 90));
                sub.maxNewTokens =
                    8 + size_t(workload.uniform() * 9);
                size_t deadline = 0;
                if (workload.uniform() < 0.25) {
                    deadline = 20 + size_t(workload.uniform() * 31);
                    sub.hadDeadline = true;
                }
                SubmitResult sr = manager.submit(
                    sub.prompt, sub.maxNewTokens, deadline);
                if (sr.accepted()) {
                    accepted.emplace(sr.id, std::move(sub));
                    live.push_back(sr.id);
                } else {
                    ASSERT_EQ(sr.reject, RejectReason::QueueFull)
                        << fi.reproLine();
                    ++rejected;
                }
            }
            // Occasional client cancellation of a random live id
            // (it may have finished already; cancel then says no).
            if (!live.empty() && workload.uniform() < 0.01) {
                size_t pick =
                    size_t(workload.uniform() * double(live.size()));
                pick = std::min(pick, live.size() - 1);
                if (manager.cancel(live[pick]))
                    ++cancel_hits;
            }
            manager.runIteration();
            // Drop finished ids from the live list (bounded work).
            if (live.size() > 64 || it + 1 == soak_iterations) {
                std::map<uint64_t, bool> done;
                for (const RequestResult &res : manager.finished())
                    done[res.id] = true;
                std::vector<uint64_t> still;
                for (uint64_t id : live)
                    if (!done.count(id))
                        still.push_back(id);
                live.swap(still);
            }
        }
        // Drain with a liveness guard: no fault schedule may wedge
        // the scheduler.
        size_t guard = 0;
        while (manager.busy()) {
            manager.runIteration();
            ASSERT_LT(++guard, 5000u)
                << "soak livelock: " << fi.reproLine();
        }
    }

    // Conservation: exactly one result per accepted request, none
    // invented, none lost.
    ASSERT_EQ(manager.finished().size(), accepted.size())
        << fi.reproLine();
    std::map<uint64_t, const RequestResult *> results;
    for (const RequestResult &res : manager.finished()) {
        ASSERT_TRUE(accepted.count(res.id)) << fi.reproLine();
        ASSERT_TRUE(results.emplace(res.id, &res).second)
            << "duplicate result for id " << res.id;
    }

    // Differential oracle (outside the fault scope: the baseline
    // must be fault-free). Finished == token-identical; aborted ==
    // strict bookkeeping + prefix of the full output.
    size_t normal = 0, aborted = 0;
    for (const auto &entry : results) {
        const RequestResult &res = *entry.second;
        const Submitted &sub = accepted.at(res.id);
        std::vector<int> want =
            engine.generate(sub.prompt, res.id, sub.maxNewTokens)
                .tokens;
        switch (res.stopReason) {
        case SpecSession::StopReason::MaxTokens:
        case SpecSession::StopReason::Eos:
        case SpecSession::StopReason::StopSequence:
        case SpecSession::StopReason::CapacityLimit:
            ++normal;
            EXPECT_EQ(res.tokens, want)
                << "id " << res.id << ": " << fi.reproLine();
            break;
        case SpecSession::StopReason::Deadline:
        case SpecSession::StopReason::Cancelled:
        case SpecSession::StopReason::Preempted:
        case SpecSession::StopReason::Shed:
            ++aborted;
            ASSERT_LE(res.tokens.size(), want.size())
                << fi.reproLine();
            EXPECT_TRUE(std::equal(res.tokens.begin(),
                                   res.tokens.end(), want.begin()))
                << "id " << res.id
                << " partial output is not a prefix: "
                << fi.reproLine();
            break;
        case SpecSession::StopReason::None:
            FAIL() << "id " << res.id << " finished without a "
                   << "stop reason: " << fi.reproLine();
        }
    }

    // The schedule must actually have exercised the machinery.
    const ServingStats &stats = manager.stats();
    EXPECT_GT(normal, 0u) << fi.reproLine();
    EXPECT_GT(stats.fallbackSteps, 0u) << fi.reproLine();
    EXPECT_GT(stats.preemptions, 0u) << fi.reproLine();
    EXPECT_GT(stats.slowIterations, 0u) << fi.reproLine();
    EXPECT_EQ(stats.cancellations, cancel_hits);
    EXPECT_EQ(stats.requestsSubmitted, accepted.size());
    EXPECT_EQ(stats.rejectedQueueFull, rejected);
    // All KV memory returned: nothing leaks across thousands of
    // preemptions, cancellations, and deadline expiries.
    EXPECT_EQ(manager.kvPool()->usedBlocks(), 0u) << fi.reproLine();
    // Trace capture stays off by default: no unbounded growth.
    EXPECT_TRUE(stats.batchSizeTrace.empty());

    SPECINFER_INFO("soak: " << normal << " exact, " << aborted
                            << " aborted-prefix, " << rejected
                            << " shed at submit; "
                            << fi.reproLine());
}

} // namespace
} // namespace runtime
} // namespace specinfer
