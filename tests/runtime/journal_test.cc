/**
 * @file
 * Write-ahead journal unit tests: CRC framing, per-type round
 * trips, and — the property recovery depends on — truncation
 * tolerance: any byte-level prefix of a valid journal reads back as
 * a record-level prefix, never an error, and bytesConsumed() names
 * the exact boundary to truncate to before resuming appends.
 */

#include "runtime/journal.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace specinfer {
namespace runtime {
namespace {

TEST(Crc32Test, MatchesKnownVector)
{
    // The IEEE 802.3 check value for "123456789".
    const char *msg = "123456789";
    EXPECT_EQ(crc32(msg, 9), 0xCBF43926u);
    EXPECT_EQ(crc32(msg, 0), 0x00000000u);
}

TEST(Crc32Test, SensitiveToEveryByte)
{
    std::string a = "speculate-verify";
    uint32_t base = crc32(a.data(), a.size());
    for (size_t i = 0; i < a.size(); ++i) {
        std::string b = a;
        b[i] ^= 0x01;
        EXPECT_NE(crc32(b.data(), b.size()), base) << "byte " << i;
    }
}

JournalRecord
sampleSubmit()
{
    JournalRecord r;
    r.type = RecordType::Submit;
    r.id = 7;
    r.arrivalIteration = 12;
    r.maxNewTokens = 16;
    r.deadlineIterations = 400;
    r.prompt = {3, 14, 15, 92, 65};
    return r;
}

JournalRecord
sampleStep()
{
    JournalRecord r;
    r.type = RecordType::Step;
    r.id = 7;
    r.tokens = {11, 22, 33};
    r.logProbs = {-0.5f, -1.25f, -0.03125f};
    r.step.treeSize = 9;
    r.step.verifiedTokens = 3;
    r.step.llmChunkTokens = 10;
    r.step.ssmTokensDecoded = 9;
    r.step.prefill = false;
    r.step.fallback = true;
    r.rngAfter.s[0] = 0x0123456789abcdefULL;
    r.rngAfter.s[1] = 0xfedcba9876543210ULL;
    r.rngAfter.s[2] = 42;
    r.rngAfter.s[3] = 7;
    r.rngAfter.hasCachedNormal = true;
    r.rngAfter.cachedNormal = -1.75;
    r.sessionDone = true;
    r.stopReason = 2;
    return r;
}

JournalRecord
samplePreempt()
{
    JournalRecord r;
    r.type = RecordType::Preempt;
    r.id = 9;
    r.preemptionCount = 2;
    r.earliestRestart = 31;
    return r;
}

JournalRecord
sampleFinish()
{
    JournalRecord r;
    r.type = RecordType::Finish;
    r.id = 7;
    r.stopReason = 1;
    r.arrivalIteration = 12;
    r.startIteration = 13;
    r.finishIteration = 29;
    r.preemptions = 1;
    return r;
}

JournalRecord
sampleIteration()
{
    JournalRecord r;
    r.type = RecordType::Iteration;
    r.iteration = 30;
    r.iterDegraded = 1;
    r.iterSlow = 1;
    r.degrSpeculationDisabled = 1;
    r.degrConsecutiveFaults = 3;
    r.degrCleanIterations = 0;
    r.degrCurrentBackoff = 8;
    r.degrReenableIteration = 38;
    r.degrDisableEpisodes = 2;
    return r;
}

std::vector<JournalRecord>
sampleRecords()
{
    return {sampleSubmit(), sampleStep(), samplePreempt(),
            sampleFinish(), sampleIteration()};
}

void
expectEqual(const JournalRecord &got, const JournalRecord &want)
{
    ASSERT_EQ(got.type, want.type) << recordTypeName(want.type);
    EXPECT_EQ(got.id, want.id);
    EXPECT_EQ(got.arrivalIteration, want.arrivalIteration);
    EXPECT_EQ(got.maxNewTokens, want.maxNewTokens);
    EXPECT_EQ(got.deadlineIterations, want.deadlineIterations);
    EXPECT_EQ(got.prompt, want.prompt);
    EXPECT_EQ(got.tokens, want.tokens);
    EXPECT_EQ(got.logProbs, want.logProbs);
    EXPECT_EQ(got.step.treeSize, want.step.treeSize);
    EXPECT_EQ(got.step.verifiedTokens, want.step.verifiedTokens);
    EXPECT_EQ(got.step.llmChunkTokens, want.step.llmChunkTokens);
    EXPECT_EQ(got.step.ssmTokensDecoded, want.step.ssmTokensDecoded);
    EXPECT_EQ(got.step.prefill, want.step.prefill);
    EXPECT_EQ(got.step.fallback, want.step.fallback);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(got.rngAfter.s[i], want.rngAfter.s[i]);
    EXPECT_EQ(got.rngAfter.hasCachedNormal,
              want.rngAfter.hasCachedNormal);
    EXPECT_EQ(got.rngAfter.cachedNormal, want.rngAfter.cachedNormal);
    EXPECT_EQ(got.sessionDone, want.sessionDone);
    EXPECT_EQ(got.stopReason, want.stopReason);
    EXPECT_EQ(got.preemptionCount, want.preemptionCount);
    EXPECT_EQ(got.earliestRestart, want.earliestRestart);
    EXPECT_EQ(got.startIteration, want.startIteration);
    EXPECT_EQ(got.finishIteration, want.finishIteration);
    EXPECT_EQ(got.preemptions, want.preemptions);
    EXPECT_EQ(got.iteration, want.iteration);
    EXPECT_EQ(got.iterDegraded, want.iterDegraded);
    EXPECT_EQ(got.iterSlow, want.iterSlow);
    EXPECT_EQ(got.degrSpeculationDisabled,
              want.degrSpeculationDisabled);
    EXPECT_EQ(got.degrConsecutiveFaults, want.degrConsecutiveFaults);
    EXPECT_EQ(got.degrCleanIterations, want.degrCleanIterations);
    EXPECT_EQ(got.degrCurrentBackoff, want.degrCurrentBackoff);
    EXPECT_EQ(got.degrReenableIteration, want.degrReenableIteration);
    EXPECT_EQ(got.degrDisableEpisodes, want.degrDisableEpisodes);
}

TEST(JournalTest, AllRecordTypesRoundTrip)
{
    std::stringstream buf;
    JournalWriter writer(buf);
    std::vector<JournalRecord> records = sampleRecords();
    for (const JournalRecord &r : records)
        writer.append(r);
    EXPECT_EQ(writer.bytesWritten(), buf.str().size());
    EXPECT_FALSE(writer.closed());

    JournalReader reader(buf);
    JournalRecord got;
    for (const JournalRecord &want : records) {
        ASSERT_TRUE(reader.next(got));
        expectEqual(got, want);
    }
    EXPECT_FALSE(reader.next(got));
    EXPECT_FALSE(reader.tornTail());
    EXPECT_EQ(reader.bytesConsumed(), writer.bytesWritten());
}

TEST(JournalTest, EmptyStreamIsCleanEof)
{
    std::stringstream buf;
    JournalReader reader(buf);
    JournalRecord got;
    EXPECT_FALSE(reader.next(got));
    EXPECT_FALSE(reader.tornTail());
    EXPECT_EQ(reader.bytesConsumed(), 0u);
}

TEST(JournalTest, CrcMismatchStopsAtLastValidRecord)
{
    std::stringstream buf;
    JournalWriter writer(buf);
    writer.append(sampleSubmit());
    uint64_t first_end = writer.bytesWritten();
    writer.append(sampleStep());
    writer.append(sampleFinish());

    // Corrupt one payload byte of the second record.
    std::string bytes = buf.str();
    bytes[first_end + 8 + 2] ^= 0xFF;
    std::stringstream damaged(bytes);
    JournalReader reader(damaged);
    JournalRecord got;
    ASSERT_TRUE(reader.next(got));
    EXPECT_EQ(got.type, RecordType::Submit);
    EXPECT_FALSE(reader.next(got));
    EXPECT_TRUE(reader.tornTail());
    EXPECT_EQ(reader.bytesConsumed(), first_end);
}

TEST(JournalTest, EveryTruncationPointReadsBackAPrefix)
{
    // The crash model: the stream may be cut at ANY byte. Whatever
    // survives must parse as a record-level prefix with the right
    // torn-tail verdict — no crashes, no partial records.
    std::stringstream buf;
    JournalWriter writer(buf);
    std::vector<uint64_t> boundaries = {0};
    for (const JournalRecord &r : sampleRecords()) {
        writer.append(r);
        boundaries.push_back(writer.bytesWritten());
    }
    std::string bytes = buf.str();
    for (size_t cut = 0; cut <= bytes.size(); ++cut) {
        std::stringstream in(bytes.substr(0, cut));
        JournalReader reader(in);
        JournalRecord got;
        size_t full = 0;
        while (full + 1 < boundaries.size() &&
               boundaries[full + 1] <= cut)
            ++full;
        for (size_t i = 0; i < full; ++i)
            ASSERT_TRUE(reader.next(got)) << "cut " << cut;
        ASSERT_FALSE(reader.next(got)) << "cut " << cut;
        EXPECT_EQ(reader.bytesConsumed(), boundaries[full])
            << "cut " << cut;
        EXPECT_EQ(reader.tornTail(), cut != boundaries[full])
            << "cut " << cut;
    }
}

TEST(JournalTest, TornAppendClosesWriterAndTruncatesCleanly)
{
    std::stringstream buf;
    JournalWriter writer(buf);
    writer.append(sampleSubmit());
    writer.append(sampleStep());
    uint64_t valid = writer.bytesWritten();

    writer.tearNextAppend();
    writer.append(sampleFinish()); // torn mid-payload
    EXPECT_TRUE(writer.closed());
    EXPECT_EQ(writer.bytesWritten(), valid);
    EXPECT_GT(buf.str().size(), valid); // torn bytes are on disk
    writer.append(sampleIteration()); // dropped after close
    EXPECT_EQ(writer.bytesWritten(), valid);

    JournalReader reader(buf);
    JournalRecord got;
    ASSERT_TRUE(reader.next(got));
    EXPECT_EQ(got.type, RecordType::Submit);
    ASSERT_TRUE(reader.next(got));
    EXPECT_EQ(got.type, RecordType::Step);
    EXPECT_FALSE(reader.next(got));
    EXPECT_TRUE(reader.tornTail());
    EXPECT_EQ(reader.bytesConsumed(), valid);

    // The recovery protocol: truncate to bytesConsumed(), reopen,
    // append — the journal is whole again.
    std::stringstream repaired(
        buf.str().substr(0, reader.bytesConsumed()));
    repaired.seekp(0, std::ios::end);
    JournalWriter resumed(repaired);
    resumed.append(sampleIteration());
    repaired.seekg(0);
    JournalReader reread(repaired);
    size_t count = 0;
    while (reread.next(got))
        ++count;
    EXPECT_EQ(count, 3u);
    EXPECT_FALSE(reread.tornTail());
    EXPECT_EQ(got.type, RecordType::Iteration);
}

TEST(JournalTest, GarbagePayloadWithValidCrcIsRejected)
{
    // A frame can be CRC-consistent yet not parse (e.g. bad type
    // byte): the reader must still stop cleanly.
    std::string payload = "\x63junkjunk"; // type 0x63 is invalid
    uint32_t len = static_cast<uint32_t>(payload.size());
    uint32_t crc = crc32(payload.data(), payload.size());
    std::stringstream buf;
    buf.write(reinterpret_cast<const char *>(&len), 4);
    buf.write(reinterpret_cast<const char *>(&crc), 4);
    buf.write(payload.data(), payload.size());
    JournalReader reader(buf);
    JournalRecord got;
    EXPECT_FALSE(reader.next(got));
    EXPECT_TRUE(reader.tornTail());
    EXPECT_EQ(reader.bytesConsumed(), 0u);
}

TEST(JournalTest, ReaderStartsAtStreamPosition)
{
    // recover() seeks past the snapshot's journal offset and reads
    // from there; the reader honours the initial position.
    std::stringstream buf;
    JournalWriter writer(buf);
    writer.append(sampleSubmit());
    uint64_t skip = writer.bytesWritten();
    writer.append(samplePreempt());
    buf.seekg(static_cast<std::streamoff>(skip));
    JournalReader reader(buf);
    JournalRecord got;
    ASSERT_TRUE(reader.next(got));
    EXPECT_EQ(got.type, RecordType::Preempt);
    EXPECT_FALSE(reader.next(got));
    EXPECT_EQ(reader.bytesConsumed(),
              writer.bytesWritten() - skip);
}

} // namespace
} // namespace runtime
} // namespace specinfer
