/**
 * @file
 * Regression test for the preemption livelock: two memory-starved
 * requests must never evict each other forever. FCFS priority (a
 * request only preempts strictly later arrivals) plus re-admission
 * backoff guarantee the earliest request always progresses.
 */

#include <gtest/gtest.h>

#include "../model/test_models.h"
#include "model/model_factory.h"
#include "obs/obs.h"
#include "runtime/request_manager.h"

namespace specinfer {
namespace runtime {
namespace {

using specinfer::testing::tinyLlm;

TEST(PreemptionFcfsTest, TwoStarvedRequestsNeverLivelock)
{
    model::Transformer llm = tinyLlm();
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);
    core::EngineConfig ecfg = core::EngineConfig::greedyDefault();
    ecfg.spec.expansion = core::ExpansionConfig::uniform(2, 4);
    ecfg.maxNewTokens = 24;
    ecfg.stopAtEos = false;
    core::SpecEngine engine(&llm, {&ssm}, ecfg);

    std::vector<int> p1 = {5, 9, 2, 11};
    std::vector<int> p2 = {6, 3, 8, 1};

    // Pool sized for ~1.5 worst cases: the two requests cannot both
    // hold their full footprint, so the later one must be preempted
    // at least once — the exact schedule where the pre-FCFS victim
    // rule (most-recently-restarted) cycled forever.
    size_t per_request =
        p1.size() + ecfg.maxNewTokens + engine.treeBudget() + 2;
    ServingConfig cfg;
    cfg.maxBatchSize = 2;
    cfg.kvBlockTokens = 8;
    KvBlockAllocator probe(1000, 8);
    cfg.kvPoolBlocks = probe.blocksFor(per_request) * 3 / 2;
    cfg.kvPolicy = KvReservationPolicy::OnDemand;
    // Latency assertions run against an injected ManualClock, not
    // wall time: every runIteration() reads the clock exactly twice
    // (start/end of the iteration timer), so iteration latency is
    // exactly one auto-step and the assertions below cannot flake
    // on a loaded machine.
    obs::ManualClock clock(0, 1000);
    obs::ObsContext obs_ctx(&clock, /*tracing_enabled=*/false);
    cfg.obs = &obs_ctx;
    RequestManager manager(&engine, cfg);
    uint64_t id1 = manager.submit(p1);
    uint64_t id2 = manager.submit(p2);

    size_t iterations = 0;
    while (manager.busy()) {
        manager.runIteration();
        ASSERT_LT(++iterations, 400u)
            << "two starved requests are evicting each other";
    }

    // Both finish normally with exactly their standalone outputs,
    // and only the later arrival ever lost its memory.
    ASSERT_EQ(manager.finished().size(), 2u);
    for (const RequestResult &res : manager.finished()) {
        EXPECT_EQ(res.stopReason,
                  core::SpecSession::StopReason::MaxTokens);
        if (res.id == id1) {
            EXPECT_EQ(res.tokens, engine.generate(p1, id1).tokens);
            EXPECT_EQ(res.preemptions, 0u);
        } else {
            ASSERT_EQ(res.id, id2);
            EXPECT_EQ(res.tokens, engine.generate(p2, id2).tokens);
            EXPECT_GE(res.preemptions, 1u);
        }
    }
    EXPECT_EQ(manager.finished()[0].id, id1); // FCFS finish order
    EXPECT_GT(manager.stats().preemptions, 0u);
    EXPECT_EQ(manager.stats().preemptionAborts, 0u);
    EXPECT_EQ(manager.kvPool()->usedBlocks(), 0u);

    // Deterministic timing: with a 1us auto-step every iteration
    // lasted exactly 0.001ms, so the latency histogram has every
    // observation in its lowest bucket and the clock was read a
    // number of times that is a pure function of the workload.
    EXPECT_EQ(clock.reads(), 2 * iterations);
    obs::MetricsSnapshot snap = obs_ctx.metrics().snapshot();
    const obs::SnapshotHistogram *lat =
        snap.findHistogram("serving_iteration_millis");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->count, iterations);
    ASSERT_FALSE(lat->counts.empty());
    EXPECT_EQ(lat->counts[0], iterations); // all <= 0.01ms exactly
}

} // namespace
} // namespace runtime
} // namespace specinfer
