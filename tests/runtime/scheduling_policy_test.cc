#include <gtest/gtest.h>

#include <map>

#include "../model/test_models.h"
#include "model/model_factory.h"
#include "runtime/request_manager.h"

namespace specinfer {
namespace runtime {
namespace {

using specinfer::testing::tinyLlm;

struct Fixture
{
    Fixture()
        : llm(tinyLlm()),
          ssm(model::makeEarlyExitSsm(llm, 2)),
          engine(&llm, {&ssm}, makeConfig())
    {
    }

    static core::EngineConfig
    makeConfig()
    {
        core::EngineConfig cfg = core::EngineConfig::greedyDefault();
        cfg.spec.expansion = core::ExpansionConfig::uniform(2, 4);
        cfg.maxNewTokens = 16;
        cfg.stopAtEos = false;
        return cfg;
    }

    model::Transformer llm;
    model::Transformer ssm;
    core::SpecEngine engine;
};

std::vector<int>
promptFor(int i)
{
    return {1 + i, 5, 3 + (i % 7), 8, 2};
}

TEST(SchedulingPolicyTest, StaticWaitsForBatchToDrain)
{
    Fixture f;
    ServingConfig cfg;
    cfg.maxBatchSize = 2;
    cfg.policy = SchedulingPolicy::Static;
    RequestManager manager(&f.engine, cfg);
    for (int i = 0; i < 3; ++i)
        manager.submit(promptFor(i));
    manager.runIteration();
    EXPECT_EQ(manager.activeCount(), 2u);
    // Even after a slot could have freed, the third request waits
    // until the batch fully drains.
    while (manager.activeCount() > 0)
        manager.runIteration();
    EXPECT_EQ(manager.finished().size(), 2u);
    manager.runIteration();
    EXPECT_EQ(manager.activeCount(), 1u);
    manager.runUntilDrained();
    EXPECT_EQ(manager.finished().size(), 3u);
}

TEST(SchedulingPolicyTest, OutputsIdenticalAcrossPolicies)
{
    // Scheduling changes timing, never tokens.
    Fixture f;
    std::map<uint64_t, std::vector<int>> by_policy[2];
    for (int p = 0; p < 2; ++p) {
        ServingConfig cfg;
        cfg.maxBatchSize = 2;
        cfg.policy = p == 0 ? SchedulingPolicy::Continuous
                            : SchedulingPolicy::Static;
        RequestManager manager(&f.engine, cfg);
        for (int i = 0; i < 5; ++i)
            manager.submit(promptFor(i));
        manager.runUntilDrained();
        for (const RequestResult &res : manager.finished())
            by_policy[p][res.id] = res.tokens;
    }
    EXPECT_EQ(by_policy[0], by_policy[1]);
}

TEST(SchedulingPolicyTest, ContinuousFinishesNoLaterInIterations)
{
    // With a shared iteration clock, continuous batching's total
    // makespan is at most static batching's.
    Fixture f;
    size_t makespan[2] = {0, 0};
    for (int p = 0; p < 2; ++p) {
        ServingConfig cfg;
        cfg.maxBatchSize = 2;
        cfg.policy = p == 0 ? SchedulingPolicy::Continuous
                            : SchedulingPolicy::Static;
        RequestManager manager(&f.engine, cfg);
        for (int i = 0; i < 6; ++i)
            manager.submit(promptFor(i));
        manager.runUntilDrained();
        makespan[p] = manager.iterationCount();
    }
    EXPECT_LE(makespan[0], makespan[1]);
}

TEST(SchedulingPolicyTest, ContinuousIsDefault)
{
    ServingConfig cfg;
    EXPECT_EQ(cfg.policy, SchedulingPolicy::Continuous);
}

} // namespace
} // namespace runtime
} // namespace specinfer
