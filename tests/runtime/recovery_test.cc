/**
 * @file
 * Crash-safe serving tests.
 *
 *  - Session snapshot fidelity: a SpecSession saved mid-generation
 *    and reloaded continues bit-identically to the original.
 *  - Deterministic snapshot+journal recovery at a clean iteration
 *    boundary (with and without a snapshot).
 *  - The randomized recovery-equivalence oracle
 *    (verify::runRecoveryTrial): seeded workloads crashed at a
 *    random point inside runIteration() — including mid-append,
 *    leaving a torn journal record — must recover to outputs
 *    token-for-token identical to an uninterrupted run. Override
 *    the count with SPECINFER_RECOVERY_TRIALS=<n> and the base seed
 *    with SPECINFER_RECOVERY_SEED=<n>.
 *  - A crash-recovery soak: continuous batching under all fault
 *    points *plus* probabilistic crashes, recovering every time and
 *    holding the fault-soak invariants (conservation, exact or
 *    prefix outputs, zero KV leaks) to the end.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "../model/test_models.h"
#include "model/model_factory.h"
#include "runtime/journal.h"
#include "runtime/request_manager.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/rng.h"
#include "verify/diff_harness.h"

namespace specinfer {
namespace runtime {
namespace {

using core::SpecSession;
using specinfer::testing::tinyLlm;
using util::FaultInjector;
using util::FaultPoint;
using util::FaultScope;

uint64_t
envOr(const char *name, uint64_t fallback)
{
    const char *value = std::getenv(name);
    return value != nullptr ? std::strtoull(value, nullptr, 10)
                            : fallback;
}

// ----------------------------------------------------------------
// Session snapshot fidelity.

struct EngineFixture
{
    EngineFixture(bool stochastic = false)
        : llm(tinyLlm()), ssm(model::makeEarlyExitSsm(llm, 2))
    {
        core::EngineConfig cfg =
            stochastic ? core::EngineConfig::stochasticDefault(0.8f)
                       : core::EngineConfig::greedyDefault();
        cfg.spec.expansion = core::ExpansionConfig::uniform(2, 3);
        cfg.maxNewTokens = 14;
        cfg.stopAtEos = false;
        engine.reset(new core::SpecEngine(&llm, {&ssm}, cfg));
    }

    model::Transformer llm;
    model::Transformer ssm;
    std::unique_ptr<core::SpecEngine> engine;
};

void
runSessionRoundTrip(bool stochastic)
{
    EngineFixture f(stochastic);
    std::vector<int> prompt = {5, 41, 3, 77, 12};
    SpecSession original =
        f.engine->makeSession(prompt, /*request_seed=*/9);
    for (int i = 0; i < 3 && !original.done(); ++i)
        original.step();

    std::stringstream buf;
    original.save(buf);
    SpecSession restored = f.engine->loadSession(buf);

    EXPECT_EQ(restored.sequence(), original.sequence());
    EXPECT_EQ(restored.logProbs(), original.logProbs());
    EXPECT_EQ(restored.done(), original.done());
    EXPECT_EQ(restored.stats().steps.size(),
              original.stats().steps.size());

    // The restored session must continue *bit-identically*: same
    // tokens, same log-probs, same per-step stats — the sampler
    // cursor and KV state survived the round trip exactly.
    while (!original.done()) {
        ASSERT_FALSE(restored.done());
        original.step();
        restored.step();
        ASSERT_EQ(restored.sequence(), original.sequence());
    }
    EXPECT_TRUE(restored.done());
    EXPECT_EQ(restored.stopReason(), original.stopReason());
    EXPECT_EQ(restored.logProbs(), original.logProbs());
    EXPECT_EQ(restored.generated(), original.generated());
}

TEST(SessionSnapshotTest, GreedySessionContinuesBitIdentically)
{
    runSessionRoundTrip(false);
}

TEST(SessionSnapshotTest, StochasticSessionContinuesBitIdentically)
{
    // The stochastic path additionally exercises the RNG cursor
    // (multi-step speculative sampling draws per step).
    runSessionRoundTrip(true);
}

// ----------------------------------------------------------------
// Deterministic recovery at a clean iteration boundary.

std::map<uint64_t, std::vector<int>>
finishedMap(const RequestManager &manager)
{
    std::map<uint64_t, std::vector<int>> out;
    for (const RequestResult &res : manager.finished())
        out[res.id] = res.tokens;
    return out;
}

void
runBoundaryRecovery(bool with_snapshot)
{
    EngineFixture f;
    ServingConfig cfg;
    cfg.maxBatchSize = 3;

    RequestManager live(f.engine.get(), cfg);
    std::stringstream journal_buf;
    JournalWriter journal(journal_buf);
    live.attachJournal(&journal);
    std::vector<std::vector<int>> prompts = {
        {3, 9, 27}, {8, 1, 5, 44}, {60, 2}, {7, 7, 7, 7, 7}};
    for (size_t i = 0; i < 2; ++i)
        ASSERT_TRUE(live.submit(prompts[i]).accepted());
    for (int it = 0; it < 4; ++it)
        live.runIteration();

    // Capture the persistent state as of this boundary...
    std::stringstream snapshot;
    if (with_snapshot)
        live.writeSnapshot(snapshot);
    std::string journal_bytes = journal_buf.str();

    // ...then let the live manager finish (late arrivals included).
    for (size_t i = 2; i < prompts.size(); ++i)
        ASSERT_TRUE(live.submit(prompts[i]).accepted());
    live.runUntilDrained();

    // Rebuild from the captured bytes and replay the same tail.
    RequestManager recovered(f.engine.get(), cfg);
    std::stringstream journal2_buf;
    JournalWriter journal2(journal2_buf);
    recovered.attachJournal(&journal2);
    std::stringstream journal_in(journal_bytes);
    uint64_t valid = recovered.recover(
        with_snapshot ? &snapshot : nullptr, &journal_in);
    EXPECT_EQ(valid, journal_bytes.size());
    EXPECT_EQ(recovered.stats().iterations, 4u);
    for (size_t i = 2; i < prompts.size(); ++i)
        ASSERT_TRUE(recovered.submit(prompts[i]).accepted());
    recovered.runUntilDrained();

    EXPECT_EQ(finishedMap(recovered), finishedMap(live));
    EXPECT_EQ(recovered.stats().requestsFinished,
              live.stats().requestsFinished);
    EXPECT_EQ(recovered.stats().tokensGenerated,
              live.stats().tokensGenerated);
}

TEST(RecoveryTest, JournalOnlyReplayMatchesLiveRun)
{
    runBoundaryRecovery(false);
}

TEST(RecoveryTest, SnapshotPlusJournalTailMatchesLiveRun)
{
    runBoundaryRecovery(true);
}

TEST(RecoveryTest, RecoveredManagerKeepsJournalingForNextCrash)
{
    // The journal attached before recover() must receive the
    // post-recovery records, so a *second* crash can recover from
    // the fresh epoch (snapshot right after recovery + new journal).
    EngineFixture f;
    ServingConfig cfg;
    cfg.maxBatchSize = 2;

    RequestManager first(f.engine.get(), cfg);
    std::stringstream buf1;
    JournalWriter j1(buf1);
    first.attachJournal(&j1);
    ASSERT_TRUE(first.submit({4, 8, 15}).accepted());
    ASSERT_TRUE(first.submit({16, 23, 42}).accepted());
    for (int it = 0; it < 3; ++it)
        first.runIteration();

    RequestManager second(f.engine.get(), cfg);
    std::stringstream buf2;
    JournalWriter j2(buf2);
    second.attachJournal(&j2);
    std::stringstream in1(buf1.str());
    second.recover(nullptr, &in1);
    std::stringstream snap2;
    second.writeSnapshot(snap2);
    for (int it = 0; it < 2; ++it)
        second.runIteration();
    EXPECT_GT(j2.bytesWritten(), 0u);

    RequestManager third(f.engine.get(), cfg);
    std::stringstream in2(buf2.str());
    // The epoch snapshot recorded offset 0 of the *new* journal.
    snap2.seekg(0);
    third.recover(&snap2, &in2);
    third.runUntilDrained();

    RequestManager reference(f.engine.get(), cfg);
    ASSERT_TRUE(reference.submit({4, 8, 15}).accepted());
    ASSERT_TRUE(reference.submit({16, 23, 42}).accepted());
    reference.runUntilDrained();
    EXPECT_EQ(finishedMap(third), finishedMap(reference));
}

// ----------------------------------------------------------------
// Tensor-parallel serving: the degree rides through snapshots.

struct ShardedEngineFixture
{
    explicit ShardedEngineFixture(size_t tp)
        : llm(makeShardedLlm(tp)),
          ssm(model::makeEarlyExitSsm(llm, 2))
    {
        core::EngineConfig cfg = core::EngineConfig::greedyDefault();
        cfg.spec.expansion = core::ExpansionConfig::uniform(2, 3);
        cfg.maxNewTokens = 14;
        cfg.stopAtEos = false;
        engine.reset(new core::SpecEngine(&llm, {&ssm}, cfg));
    }

    static model::Transformer makeShardedLlm(size_t tp)
    {
        model::ModelConfig cfg = specinfer::testing::tinyConfig();
        cfg.tensorParallel = tp;
        return model::makeLlm(cfg);
    }

    model::Transformer llm;
    model::Transformer ssm;
    std::unique_ptr<core::SpecEngine> engine;
};

TEST(RecoveryTest, ShardedServingRecoversBitIdentically)
{
    // A tp=2 serving run, crashed at an iteration boundary and
    // recovered under the same degree, must finish with outputs
    // identical to both its own uninterrupted run AND an unsharded
    // tp=1 reference — §5j bit-identity lifted to the serving layer.
    ShardedEngineFixture f(2);
    ServingConfig cfg;
    cfg.maxBatchSize = 2;
    cfg.tpDegree = 2;

    RequestManager live(f.engine.get(), cfg);
    std::stringstream journal_buf;
    JournalWriter journal(journal_buf);
    live.attachJournal(&journal);
    ASSERT_TRUE(live.submit({4, 8, 15}).accepted());
    ASSERT_TRUE(live.submit({16, 23, 42}).accepted());
    for (int it = 0; it < 3; ++it)
        live.runIteration();
    std::stringstream snapshot;
    live.writeSnapshot(snapshot);
    std::string journal_bytes = journal_buf.str();
    live.runUntilDrained();

    RequestManager recovered(f.engine.get(), cfg);
    std::stringstream journal_in(journal_bytes);
    recovered.recover(&snapshot, &journal_in);
    recovered.runUntilDrained();
    EXPECT_EQ(finishedMap(recovered), finishedMap(live));

    ShardedEngineFixture unsharded(1);
    ServingConfig ref_cfg;
    ref_cfg.maxBatchSize = 2;
    RequestManager reference(unsharded.engine.get(), ref_cfg);
    ASSERT_TRUE(reference.submit({4, 8, 15}).accepted());
    ASSERT_TRUE(reference.submit({16, 23, 42}).accepted());
    reference.runUntilDrained();
    EXPECT_EQ(finishedMap(recovered), finishedMap(reference));
}

TEST(RecoveryDeathTest, TpDegreeMismatchRefusesRecovery)
{
    // A snapshot taken at tp=1 must not silently resume under a
    // resharded manager: the typed check names both degrees.
    EngineFixture f;
    ServingConfig cfg;
    cfg.maxBatchSize = 2;
    RequestManager live(f.engine.get(), cfg);
    std::stringstream journal_buf;
    JournalWriter journal(journal_buf);
    live.attachJournal(&journal);
    ASSERT_TRUE(live.submit({4, 8, 15}).accepted());
    live.runIteration();
    std::stringstream snapshot;
    live.writeSnapshot(snapshot);

    ServingConfig sharded_cfg;
    sharded_cfg.maxBatchSize = 2;
    sharded_cfg.tpDegree = 2;
    RequestManager mismatched(f.engine.get(), sharded_cfg);
    std::stringstream journal_in(journal_buf.str());
    EXPECT_DEATH(mismatched.recover(&snapshot, &journal_in),
                 "tensor-parallel degree");
}

// ----------------------------------------------------------------
// The randomized recovery-equivalence oracle.

TEST(RecoveryTest, SeededCrashTrialsRecoverBitIdentically)
{
    const uint64_t base = envOr("SPECINFER_RECOVERY_SEED", 8062026);
    const uint64_t trials = envOr("SPECINFER_RECOVERY_TRIALS", 1000);
    for (uint64_t i = 0; i < trials; ++i) {
        verify::TrialOutcome out =
            verify::runRecoveryTrial(base + i);
        ASSERT_TRUE(out.ok)
            << "seed " << (base + i) << ": " << out.detail << "\n"
            << out.configLine;
    }
}

// ----------------------------------------------------------------
// Crash-recovery soak: crashes layered on the full fault soak.

TEST(RecoverySoakTest, CrashesUnderFaultLoadKeepEveryInvariant)
{
    const uint64_t seed = envOr("SPECINFER_RECOVERY_SEED", 8062026);
    const size_t soak_iterations =
        envOr("SPECINFER_RECOVERY_SOAK_ITERATIONS", 2500);
    const size_t snapshot_every = 16;

    model::Transformer llm = tinyLlm();
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);
    core::EngineConfig ecfg = core::EngineConfig::greedyDefault();
    ecfg.spec.expansion = core::ExpansionConfig::uniform(2, 4);
    ecfg.maxNewTokens = 16;
    ecfg.stopAtEos = false;
    core::SpecEngine engine(&llm, {&ssm}, ecfg);

    ServingConfig cfg;
    cfg.maxBatchSize = 4;
    cfg.kvBlockTokens = 8;
    size_t per_request =
        6 + ecfg.maxNewTokens + engine.treeBudget() + 2;
    KvBlockAllocator probe(1000, 8);
    cfg.kvPoolBlocks = probe.blocksFor(per_request) * 5 / 2;
    cfg.kvPolicy = KvReservationPolicy::OnDemand;
    cfg.maxPendingRequests = 8;
    cfg.maxPreemptions = 4;
    cfg.defaultDeadlineIterations = 400;
    cfg.degradeAfterConsecutiveFaults = 3;
    cfg.degradeBackoffIterations = 8;

    FaultInjector fi(seed);
    fi.setProbability(FaultPoint::SsmStep, 0.08);
    fi.setProbability(FaultPoint::Verify, 0.04);
    fi.setProbability(FaultPoint::KvAlloc, 0.04);
    fi.setProbability(FaultPoint::SlowIteration, 0.02);
    fi.setProbability(FaultPoint::Crash, 0.004);

    util::Rng workload(seed ^ 0x50a4ULL);

    struct Submitted
    {
        std::vector<int> prompt;
        size_t maxNewTokens;
    };
    std::map<uint64_t, Submitted> accepted;
    std::vector<uint64_t> live;
    size_t rejected = 0, crashes = 0;

    auto manager = std::unique_ptr<RequestManager>(
        new RequestManager(&engine, cfg));
    auto journal_buf =
        std::unique_ptr<std::stringstream>(new std::stringstream);
    auto journal = std::unique_ptr<JournalWriter>(
        new JournalWriter(*journal_buf));
    manager->attachJournal(journal.get());
    std::string snap_bytes; // empty = no snapshot yet

    // Discard the crashed manager and rebuild purely from the
    // persisted bytes; start a fresh journal epoch (new journal +
    // immediate snapshot) so the *next* crash recovers too.
    auto recoverNow = [&]() {
        ++crashes;
        auto buf2 = std::unique_ptr<std::stringstream>(
            new std::stringstream);
        auto journal2 = std::unique_ptr<JournalWriter>(
            new JournalWriter(*buf2));
        auto fresh = std::unique_ptr<RequestManager>(
            new RequestManager(&engine, cfg));
        fresh->attachJournal(journal2.get());
        std::stringstream journal_in(journal_buf->str());
        std::unique_ptr<std::stringstream> snap_in;
        if (!snap_bytes.empty())
            snap_in.reset(new std::stringstream(snap_bytes));
        fresh->recover(snap_in.get(), &journal_in);
        manager = std::move(fresh);
        journal = std::move(journal2);
        journal_buf = std::move(buf2);
        std::stringstream snap_out;
        manager->writeSnapshot(snap_out);
        snap_bytes = snap_out.str();
    };

    {
        FaultScope scope(&fi);
        for (size_t it = 0; it < soak_iterations; ++it) {
            if (workload.uniform() < 0.22) {
                Submitted sub;
                size_t len = 3 + size_t(workload.uniform() * 4);
                for (size_t t = 0; t < len; ++t)
                    sub.prompt.push_back(
                        1 + int(workload.uniform() * 90));
                sub.maxNewTokens =
                    8 + size_t(workload.uniform() * 9);
                size_t deadline = 0;
                if (workload.uniform() < 0.2)
                    deadline = 30 + size_t(workload.uniform() * 31);
                SubmitResult sr = manager->submit(
                    sub.prompt, sub.maxNewTokens, deadline);
                if (sr.accepted()) {
                    accepted.emplace(sr.id, std::move(sub));
                    live.push_back(sr.id);
                } else {
                    ASSERT_EQ(sr.reject, RejectReason::QueueFull)
                        << fi.reproLine();
                    ++rejected;
                }
            }
            if (!live.empty() && workload.uniform() < 0.01) {
                size_t pick =
                    size_t(workload.uniform() * double(live.size()));
                pick = std::min(pick, live.size() - 1);
                manager->cancel(live[pick]);
            }
            manager->runIteration();
            if (manager->crashed()) {
                recoverNow();
                continue; // the iteration was lost; re-run it
            }
            if ((it + 1) % snapshot_every == 0) {
                std::stringstream snap_out;
                manager->writeSnapshot(snap_out);
                snap_bytes = snap_out.str();
            }
            if (live.size() > 64 || it + 1 == soak_iterations) {
                std::map<uint64_t, bool> done;
                for (const RequestResult &res : manager->finished())
                    done[res.id] = true;
                std::vector<uint64_t> still;
                for (uint64_t id : live)
                    if (!done.count(id))
                        still.push_back(id);
                live.swap(still);
            }
        }
        size_t guard = 0;
        while (manager->busy()) {
            manager->runIteration();
            if (manager->crashed())
                recoverNow();
            ASSERT_LT(++guard, 20000u)
                << "soak livelock: " << fi.reproLine();
        }
    }

    // Conservation across every crash: exactly one result per
    // accepted request, none invented, none lost.
    ASSERT_EQ(manager->finished().size(), accepted.size())
        << fi.reproLine();
    std::map<uint64_t, const RequestResult *> results;
    for (const RequestResult &res : manager->finished()) {
        ASSERT_TRUE(accepted.count(res.id)) << fi.reproLine();
        ASSERT_TRUE(results.emplace(res.id, &res).second)
            << "duplicate result for id " << res.id;
    }

    // The differential oracle still holds through crashes: finished
    // requests are token-identical to the fault-free engine output,
    // aborted ones are a prefix of it.
    size_t normal = 0, aborted = 0;
    for (const auto &entry : results) {
        const RequestResult &res = *entry.second;
        const Submitted &sub = accepted.at(res.id);
        std::vector<int> want =
            engine.generate(sub.prompt, res.id, sub.maxNewTokens)
                .tokens;
        switch (res.stopReason) {
        case SpecSession::StopReason::MaxTokens:
        case SpecSession::StopReason::Eos:
        case SpecSession::StopReason::StopSequence:
        case SpecSession::StopReason::CapacityLimit:
            ++normal;
            EXPECT_EQ(res.tokens, want)
                << "id " << res.id << ": " << fi.reproLine();
            break;
        case SpecSession::StopReason::Deadline:
        case SpecSession::StopReason::Cancelled:
        case SpecSession::StopReason::Preempted:
        case SpecSession::StopReason::Shed:
            ++aborted;
            ASSERT_LE(res.tokens.size(), want.size())
                << fi.reproLine();
            EXPECT_TRUE(std::equal(res.tokens.begin(),
                                   res.tokens.end(), want.begin()))
                << "id " << res.id
                << " partial output is not a prefix: "
                << fi.reproLine();
            break;
        case SpecSession::StopReason::None:
            FAIL() << "id " << res.id << " finished without a "
                   << "stop reason: " << fi.reproLine();
        }
    }

    EXPECT_GT(crashes, 0u) << fi.reproLine();
    EXPECT_GT(normal, 0u) << fi.reproLine();
    EXPECT_EQ(manager->kvPool()->usedBlocks(), 0u)
        << fi.reproLine();
    EXPECT_EQ(manager->kvPool()->stats().redundantReleases, 0u)
        << fi.reproLine();

    SPECINFER_INFO("recovery soak: " << crashes << " crashes, "
                                     << normal << " exact, "
                                     << aborted << " aborted-prefix; "
                                     << fi.reproLine());
}

} // namespace
} // namespace runtime
} // namespace specinfer
