#include "runtime/kv_memory.h"

#include <gtest/gtest.h>

#include <map>

#include "../model/test_models.h"
#include "model/model_factory.h"
#include "runtime/request_manager.h"

namespace specinfer {
namespace runtime {
namespace {

using specinfer::testing::tinyLlm;

TEST(KvBlockAllocatorTest, BlocksForRoundsUp)
{
    KvBlockAllocator pool(10, 16);
    EXPECT_EQ(pool.blocksFor(0), 0u);
    EXPECT_EQ(pool.blocksFor(1), 1u);
    EXPECT_EQ(pool.blocksFor(16), 1u);
    EXPECT_EQ(pool.blocksFor(17), 2u);
}

TEST(KvBlockAllocatorTest, ReserveGrowAndRelease)
{
    KvBlockAllocator pool(4, 16);
    EXPECT_TRUE(pool.reserve(1, 20)); // 2 blocks
    EXPECT_EQ(pool.usedBlocks(), 2u);
    EXPECT_EQ(pool.requestBlocks(1), 2u);
    // Growing within the holding is a no-op.
    EXPECT_TRUE(pool.reserve(1, 30));
    EXPECT_EQ(pool.usedBlocks(), 2u);
    // Growing beyond it takes more blocks.
    EXPECT_TRUE(pool.reserve(1, 33));
    EXPECT_EQ(pool.usedBlocks(), 3u);
    pool.release(1);
    EXPECT_EQ(pool.usedBlocks(), 0u);
    EXPECT_EQ(pool.requestBlocks(1), 0u);
}

TEST(KvBlockAllocatorTest, ExhaustionFailsCleanly)
{
    KvBlockAllocator pool(2, 16);
    EXPECT_TRUE(pool.reserve(1, 32));
    EXPECT_FALSE(pool.reserve(2, 1));
    EXPECT_EQ(pool.stats().failedReservations, 1u);
    // Failure changed nothing.
    EXPECT_EQ(pool.usedBlocks(), 2u);
    EXPECT_EQ(pool.requestBlocks(2), 0u);
    EXPECT_FALSE(pool.canReserve(2, 1));
    pool.release(1);
    EXPECT_TRUE(pool.canReserve(2, 1));
}

TEST(KvBlockAllocatorTest, ShrinkingIsNoop)
{
    KvBlockAllocator pool(4, 8);
    EXPECT_TRUE(pool.reserve(1, 24));
    EXPECT_TRUE(pool.reserve(1, 8));
    EXPECT_EQ(pool.requestBlocks(1), 3u);
}

TEST(KvBlockAllocatorTest, PeakAndFragmentation)
{
    KvBlockAllocator pool(8, 16);
    pool.reserve(1, 17); // 2 blocks = 32 token capacity
    EXPECT_EQ(pool.stats().peakUsedBlocks, 2u);
    EXPECT_NEAR(pool.fragmentation(17), 15.0 / 32.0, 1e-12);
    pool.release(1);
    EXPECT_EQ(pool.stats().peakUsedBlocks, 2u);
    EXPECT_DOUBLE_EQ(pool.fragmentation(0), 0.0);
}

TEST(KvBlockAllocatorTest, RedundantReleaseIsCountedNoop)
{
    // Abort paths (cancel, shed, deadline, preempt) may race the
    // retirement path to release; a second release must not corrupt
    // the free list — it is a counted no-op, and the counter is the
    // test hook proving no double-release happens in practice.
    KvBlockAllocator pool(4, 16);
    ASSERT_TRUE(pool.reserve(1, 20));
    pool.release(1);
    EXPECT_EQ(pool.usedBlocks(), 0u);
    EXPECT_EQ(pool.stats().redundantReleases, 0u);
    pool.release(1); // double release
    pool.release(99); // never-reserved id
    EXPECT_EQ(pool.stats().redundantReleases, 2u);
    EXPECT_EQ(pool.usedBlocks(), 0u);
    // The pool is still fully usable.
    EXPECT_TRUE(pool.reserve(2, 64));
    EXPECT_EQ(pool.usedBlocks(), 4u);
    pool.release(2);
    EXPECT_EQ(pool.usedBlocks(), 0u);
    EXPECT_EQ(pool.stats().redundantReleases, 2u);
}

TEST(KvBlockAllocatorDeathTest, RejectsDegeneratePool)
{
    EXPECT_DEATH(KvBlockAllocator(0, 16), "empty");
    EXPECT_DEATH(KvBlockAllocator(4, 0), "block");
}

// ---------------------------------------------------------------
// Admission control + preemption through the request manager.

struct Fixture
{
    Fixture()
        : llm(tinyLlm()),
          ssm(model::makeEarlyExitSsm(llm, 2)),
          engine(&llm, {&ssm}, makeConfig())
    {
    }

    static core::EngineConfig
    makeConfig()
    {
        core::EngineConfig cfg = core::EngineConfig::greedyDefault();
        cfg.spec.expansion = core::ExpansionConfig::uniform(2, 3);
        cfg.maxNewTokens = 12;
        cfg.stopAtEos = false;
        return cfg;
    }

    model::Transformer llm;
    model::Transformer ssm;
    core::SpecEngine engine;
};

std::vector<int>
promptFor(int i)
{
    return {2 + i, 9, 4, 7 + (i % 3)};
}

TEST(KvAdmissionTest, WorstCasePolicyBoundsConcurrency)
{
    Fixture f;
    // Worst case per request: 4 prompt + 12 gen + treeBudget + 2.
    size_t per_request = f.engine.config().maxNewTokens + 4 +
                         f.engine.treeBudget() + 2;
    ServingConfig cfg;
    cfg.maxBatchSize = 8;
    cfg.kvBlockTokens = 8;
    // Room for exactly two requests.
    KvBlockAllocator probe(1000, 8);
    cfg.kvPoolBlocks = 2 * probe.blocksFor(per_request);
    RequestManager manager(&f.engine, cfg);
    for (int i = 0; i < 5; ++i)
        manager.submit(promptFor(i));
    manager.runIteration();
    EXPECT_EQ(manager.activeCount(), 2u);
    manager.runUntilDrained();
    EXPECT_EQ(manager.finished().size(), 5u);
    EXPECT_EQ(manager.stats().preemptions, 0u);
    EXPECT_EQ(manager.kvPool()->usedBlocks(), 0u);
}

TEST(KvAdmissionTest, OnDemandAdmitsMoreThanWorstCase)
{
    // The same pool admits more concurrent requests under paging
    // because reservations track actual sequence growth instead of
    // the full generation budget. Use a long generation budget and
    // a narrow tree so the gap is large.
    Fixture f;
    core::EngineConfig ecfg = Fixture::makeConfig();
    ecfg.spec.expansion = core::ExpansionConfig::uniform(1, 2);
    ecfg.maxNewTokens = 48;
    core::SpecEngine engine(&f.llm, {&f.ssm}, ecfg);

    size_t per_request =
        48 + 4 + engine.treeBudget() + 2; // worst case tokens
    ServingConfig cfg;
    cfg.maxBatchSize = 8;
    cfg.kvBlockTokens = 8;
    KvBlockAllocator probe(1000, 8);
    cfg.kvPoolBlocks = 2 * probe.blocksFor(per_request);
    cfg.kvPolicy = KvReservationPolicy::OnDemand;
    RequestManager manager(&engine, cfg);
    for (int i = 0; i < 8; ++i)
        manager.submit(promptFor(i));
    manager.runIteration();
    EXPECT_GT(manager.activeCount(), 2u);
    manager.runUntilDrained();
    EXPECT_EQ(manager.finished().size(), 8u);
}

TEST(KvAdmissionTest, PreemptionPreservesOutputs)
{
    // A pool tight enough to force preemptions must still produce
    // exactly the unconstrained outputs (recompute-on-restart with
    // per-request seeds).
    Fixture f;
    ServingConfig tight;
    tight.maxBatchSize = 4;
    tight.kvBlockTokens = 8;
    // Enough for ~1.5 requests' worst case: forces paging pressure.
    size_t per_request = f.engine.config().maxNewTokens + 4 +
                         f.engine.treeBudget() + 2;
    KvBlockAllocator probe(1000, 8);
    tight.kvPoolBlocks =
        probe.blocksFor(per_request) * 3 / 2;
    tight.kvPolicy = KvReservationPolicy::OnDemand;
    RequestManager constrained(&f.engine, tight);

    ServingConfig loose;
    loose.maxBatchSize = 4;
    RequestManager unconstrained(&f.engine, loose);

    std::map<uint64_t, std::vector<int>> got, want;
    for (int i = 0; i < 6; ++i) {
        constrained.submit(promptFor(i));
        unconstrained.submit(promptFor(i));
    }
    constrained.runUntilDrained();
    unconstrained.runUntilDrained();
    ASSERT_EQ(constrained.finished().size(), 6u);
    for (const RequestResult &res : constrained.finished())
        got[res.id] = res.tokens;
    for (const RequestResult &res : unconstrained.finished())
        want[res.id] = res.tokens;
    EXPECT_EQ(got, want);
    EXPECT_GT(constrained.stats().preemptions, 0u);
}

TEST(KvAdmissionTest, TightPoolTerminates)
{
    // Regression test: with victim selection based on restart time
    // instead of arrival order, two requests under a tight pool
    // could evict each other forever. FCFS priority guarantees the
    // earliest active request always progresses.
    Fixture f;
    size_t per_request = f.engine.config().maxNewTokens + 4 +
                         f.engine.treeBudget() + 2;
    ServingConfig cfg;
    cfg.maxBatchSize = 4;
    cfg.kvBlockTokens = 8;
    KvBlockAllocator probe(1000, 8);
    // Barely more than one request's worst case: maximum pressure.
    cfg.kvPoolBlocks = probe.blocksFor(per_request) + 2;
    cfg.kvPolicy = KvReservationPolicy::OnDemand;
    RequestManager manager(&f.engine, cfg);
    for (int i = 0; i < 4; ++i)
        manager.submit(promptFor(i));
    size_t iterations = 0;
    while (manager.busy()) {
        manager.runIteration();
        ASSERT_LT(++iterations, 500u) << "scheduler livelock";
    }
    EXPECT_EQ(manager.finished().size(), 4u);
}

TEST(KvAdmissionTest, EarliestActiveIsNeverPreempted)
{
    // FCFS property: preemption only ever hits strictly later
    // arrivals, so the earliest submitted request is never evicted
    // and finishes first even under memory pressure. (Preempted
    // later arrivals may be reordered among themselves by the
    // re-admission backoff.)
    Fixture f;
    size_t per_request = f.engine.config().maxNewTokens + 4 +
                         f.engine.treeBudget() + 2;
    ServingConfig cfg;
    cfg.maxBatchSize = 4;
    cfg.kvBlockTokens = 8;
    KvBlockAllocator probe(1000, 8);
    cfg.kvPoolBlocks = probe.blocksFor(per_request) * 3 / 2;
    cfg.kvPolicy = KvReservationPolicy::OnDemand;
    RequestManager manager(&f.engine, cfg);
    std::vector<uint64_t> ids;
    for (int i = 0; i < 5; ++i)
        ids.push_back(manager.submit(promptFor(i)));
    manager.runUntilDrained();
    ASSERT_EQ(manager.finished().size(), 5u);
    EXPECT_EQ(manager.finished()[0].id, ids[0]);
    std::vector<uint64_t> finished_ids;
    for (const RequestResult &res : manager.finished()) {
        finished_ids.push_back(res.id);
        EXPECT_NE(res.stopReason,
                  core::SpecSession::StopReason::Preempted);
    }
    std::sort(finished_ids.begin(), finished_ids.end());
    EXPECT_EQ(finished_ids, ids);
}

TEST(KvAdmissionTest, ImpossibleRequestIsRejected)
{
    // A request whose worst case exceeds the whole pool is shed
    // with a typed reason instead of aborting the serving process.
    Fixture f;
    ServingConfig cfg;
    cfg.kvPoolBlocks = 1;
    cfg.kvBlockTokens = 4;
    RequestManager manager(&f.engine, cfg);
    SubmitResult res = manager.submit(promptFor(0));
    EXPECT_FALSE(res.accepted());
    EXPECT_EQ(res.reject, RejectReason::NeverFits);
    EXPECT_EQ(res.id, 0u);
    EXPECT_EQ(manager.stats().requestsSubmitted, 0u);
    EXPECT_EQ(manager.stats().rejectedNeverFits, 1u);
    EXPECT_FALSE(manager.busy());
}

TEST(KvAdmissionTest, AbortPathsNeverDoubleRelease)
{
    // Drive cancellation + preemption + shedding through the
    // manager under a tight pool and require zero redundant
    // releases and an empty pool at the end.
    Fixture f;
    size_t per_request = f.engine.config().maxNewTokens + 4 +
                         f.engine.treeBudget() + 2;
    ServingConfig cfg;
    cfg.maxBatchSize = 4;
    cfg.kvBlockTokens = 8;
    KvBlockAllocator probe(1000, 8);
    cfg.kvPoolBlocks = probe.blocksFor(per_request) * 3 / 2;
    cfg.kvPolicy = KvReservationPolicy::OnDemand;
    cfg.maxPreemptions = 1; // force preemption aborts too
    RequestManager manager(&f.engine, cfg);
    std::vector<uint64_t> ids;
    for (int i = 0; i < 6; ++i)
        ids.push_back(manager.submit(promptFor(i)).id);
    manager.runIteration();
    manager.cancel(ids[1]); // active or pending, either way
    manager.cancel(ids[5]);
    manager.cancel(ids[5]); // second cancel: already gone
    manager.runUntilDrained();
    EXPECT_EQ(manager.finished().size(), 6u);
    EXPECT_EQ(manager.kvPool()->usedBlocks(), 0u);
    EXPECT_EQ(manager.kvPool()->stats().redundantReleases, 0u);
}

} // namespace
} // namespace runtime
} // namespace specinfer
