#include "runtime/kv_memory.h"

#include <gtest/gtest.h>

#include <map>

#include "../model/test_models.h"
#include "model/model_factory.h"
#include "runtime/request_manager.h"
#include "util/rng.h"

namespace specinfer {
namespace runtime {
namespace {

using specinfer::testing::tinyLlm;

TEST(KvBlockAllocatorTest, BlocksForRoundsUp)
{
    KvBlockAllocator pool(10, 16);
    EXPECT_EQ(pool.blocksFor(0), 0u);
    EXPECT_EQ(pool.blocksFor(1), 1u);
    EXPECT_EQ(pool.blocksFor(16), 1u);
    EXPECT_EQ(pool.blocksFor(17), 2u);
}

TEST(KvBlockAllocatorTest, ReserveGrowAndRelease)
{
    KvBlockAllocator pool(4, 16);
    EXPECT_TRUE(pool.reserve(1, 20)); // 2 blocks
    EXPECT_EQ(pool.usedBlocks(), 2u);
    EXPECT_EQ(pool.requestBlocks(1), 2u);
    // Growing within the holding is a no-op.
    EXPECT_TRUE(pool.reserve(1, 30));
    EXPECT_EQ(pool.usedBlocks(), 2u);
    // Growing beyond it takes more blocks.
    EXPECT_TRUE(pool.reserve(1, 33));
    EXPECT_EQ(pool.usedBlocks(), 3u);
    pool.release(1);
    EXPECT_EQ(pool.usedBlocks(), 0u);
    EXPECT_EQ(pool.requestBlocks(1), 0u);
}

TEST(KvBlockAllocatorTest, ExhaustionFailsCleanly)
{
    KvBlockAllocator pool(2, 16);
    EXPECT_TRUE(pool.reserve(1, 32));
    EXPECT_FALSE(pool.reserve(2, 1));
    EXPECT_EQ(pool.stats().failedReservations, 1u);
    // Failure changed nothing.
    EXPECT_EQ(pool.usedBlocks(), 2u);
    EXPECT_EQ(pool.requestBlocks(2), 0u);
    EXPECT_FALSE(pool.canReserve(2, 1));
    pool.release(1);
    EXPECT_TRUE(pool.canReserve(2, 1));
}

TEST(KvBlockAllocatorTest, ShrinkingIsNoop)
{
    KvBlockAllocator pool(4, 8);
    EXPECT_TRUE(pool.reserve(1, 24));
    EXPECT_TRUE(pool.reserve(1, 8));
    EXPECT_EQ(pool.requestBlocks(1), 3u);
}

TEST(KvBlockAllocatorTest, PeakAndFragmentation)
{
    KvBlockAllocator pool(8, 16);
    pool.reserve(1, 17); // 2 blocks = 32 token capacity
    EXPECT_EQ(pool.stats().peakUsedBlocks, 2u);
    EXPECT_NEAR(pool.fragmentation(17), 15.0 / 32.0, 1e-12);
    pool.release(1);
    EXPECT_EQ(pool.stats().peakUsedBlocks, 2u);
    EXPECT_DOUBLE_EQ(pool.fragmentation(0), 0.0);
}

TEST(KvBlockAllocatorTest, RedundantReleaseIsCountedNoop)
{
    // Abort paths (cancel, shed, deadline, preempt) may race the
    // retirement path to release; a second release must not corrupt
    // the free list — it is a counted no-op, and the counter is the
    // test hook proving no double-release happens in practice.
    KvBlockAllocator pool(4, 16);
    ASSERT_TRUE(pool.reserve(1, 20));
    pool.release(1);
    EXPECT_EQ(pool.usedBlocks(), 0u);
    EXPECT_EQ(pool.stats().redundantReleases, 0u);
    pool.release(1); // double release
    pool.release(99); // never-reserved id
    EXPECT_EQ(pool.stats().redundantReleases, 2u);
    EXPECT_EQ(pool.usedBlocks(), 0u);
    // The pool is still fully usable.
    EXPECT_TRUE(pool.reserve(2, 64));
    EXPECT_EQ(pool.usedBlocks(), 4u);
    pool.release(2);
    EXPECT_EQ(pool.usedBlocks(), 0u);
    EXPECT_EQ(pool.stats().redundantReleases, 2u);
}

TEST(KvBlockAllocatorDeathTest, RejectsDegeneratePool)
{
    EXPECT_DEATH(KvBlockAllocator(0, 16), "empty");
    EXPECT_DEATH(KvBlockAllocator(4, 0), "block");
}

TEST(KvBlockAllocatorTest, ProbesDoNotCountFailures)
{
    // Regression (admission-loop bugfix): canReserve / canAdmit are
    // read-only probes — backpressure polling must not inflate the
    // failure statistics. Only a genuine reserve() attempt counts,
    // and it counts once.
    KvBlockAllocator pool(2, 16);
    ASSERT_TRUE(pool.reserve(1, 32));
    for (int i = 0; i < 5; ++i) {
        EXPECT_FALSE(pool.canReserve(2, 1));
        EXPECT_FALSE(pool.canAdmit(2, {1, 2, 3}, 4, true));
    }
    EXPECT_EQ(pool.stats().failedReservations, 0u);
    EXPECT_FALSE(pool.reserve(2, 1));
    EXPECT_EQ(pool.stats().failedReservations, 1u);
}

// ---------------------------------------------------------------
// Prefix sharing: interning, refcounts, copy-on-write,
// deterministic eviction, fair-share accounting.

std::vector<int>
countedTokens(int first, size_t count)
{
    std::vector<int> tokens;
    tokens.reserve(count);
    for (size_t i = 0; i < count; ++i)
        tokens.push_back(first + static_cast<int>(i));
    return tokens;
}

TEST(KvSharingTest, InterningRefcountsAndFairShare)
{
    KvBlockAllocator pool(16, 4);
    const std::vector<int> prompt = countedTokens(1, 10); // 2 full
    PrefixMatch m1;
    ASSERT_TRUE(pool.canAdmit(1, prompt, 12, true));
    ASSERT_TRUE(pool.admit(1, prompt, 12, true, &m1));
    EXPECT_TRUE(m1.hashes.empty()); // nothing was resident
    ASSERT_EQ(m1.ownHashes.size(), 2u);
    EXPECT_EQ(pool.stats().prefixMisses, 2u);
    EXPECT_EQ(pool.usedBlocks(), 3u); // 2 shared + 1 private
    EXPECT_EQ(pool.requestBlocks(1), 3u);
    EXPECT_EQ(pool.residentSharedBlocks(), 2u);
    EXPECT_EQ(pool.sharedRefs(m1.ownHashes[0]), 1u);
    EXPECT_DOUBLE_EQ(pool.effectiveBlocks(1), 3.0);

    // Second holder of the same prompt: hits, one shared copy.
    PrefixMatch m2;
    ASSERT_TRUE(pool.admit(2, prompt, 12, true, &m2));
    EXPECT_EQ(m2.hashes, m1.ownHashes);
    EXPECT_EQ(pool.stats().prefixHits, 2u);
    EXPECT_EQ(pool.usedBlocks(), 4u); // shared counted once
    EXPECT_EQ(pool.sharedRefs(m1.ownHashes[1]), 2u);
    // Fair share: 1 private + 2 * (1/2) shared each.
    EXPECT_DOUBLE_EQ(pool.effectiveBlocks(1), 2.0);
    EXPECT_DOUBLE_EQ(pool.effectiveBlocks(2), 2.0);

    // Release drops references but leaves blocks resident.
    pool.release(1);
    EXPECT_EQ(pool.usedBlocks(), 3u);
    EXPECT_EQ(pool.sharedRefs(m1.ownHashes[0]), 1u);
    pool.release(2);
    EXPECT_EQ(pool.usedBlocks(), 2u);
    EXPECT_EQ(pool.residentSharedBlocks(), 2u);
    EXPECT_EQ(pool.sharedRefs(m1.ownHashes[0]), 0u);

    // Re-admission rewarms the resident chain: hits, no misses.
    PrefixMatch m3;
    ASSERT_TRUE(pool.admit(3, prompt, 12, true, &m3));
    EXPECT_EQ(m3.hashes.size(), 2u);
    EXPECT_EQ(pool.stats().prefixHits, 4u);
    EXPECT_EQ(pool.stats().prefixMisses, 2u);
    pool.release(3);
    EXPECT_EQ(pool.stats().redundantReleases, 0u);
}

TEST(KvSharingTest, PartialMatchCopyOnWrite)
{
    KvBlockAllocator pool(16, 8);
    const std::vector<int> a = countedTokens(1, 16); // 2 full blocks
    ASSERT_TRUE(pool.admit(1, a, 18, true, nullptr));

    // b shares block 0 and the first 3 tokens of block 1, then
    // diverges: a partial match with copy-on-write pending.
    std::vector<int> b = countedTokens(1, 11);
    b.push_back(77);
    b.push_back(78);
    PrefixMatch m;
    ASSERT_TRUE(pool.admit(2, b, 15, true, &m));
    ASSERT_EQ(m.hashes.size(), 1u);
    ASSERT_NE(m.partialHash, 0u);
    EXPECT_EQ(m.partialTokens, 3u);
    EXPECT_EQ(pool.requestPartial(2), m.partialHash);
    EXPECT_EQ(pool.sharedRefs(m.partialHash), 2u);
    // Partial is payload-only: blocks = 1 private + 1 full shared.
    EXPECT_EQ(pool.requestBlocks(2), 2u);
    EXPECT_DOUBLE_EQ(pool.effectiveBlocks(2), 2.0);

    // First write past the divergence point releases the partial.
    pool.cowShared(2, m.partialHash);
    EXPECT_EQ(pool.stats().cowCopies, 1u);
    EXPECT_EQ(pool.requestPartial(2), 0u);
    EXPECT_EQ(pool.sharedRefs(m.partialHash), 1u);
    EXPECT_EQ(pool.requestBlocks(2), 2u);

    pool.release(2);
    pool.release(1);
    EXPECT_EQ(pool.usedBlocks(), pool.residentSharedBlocks());
    EXPECT_EQ(pool.stats().redundantReleases, 0u);
}

TEST(KvSharingTest, EvictionIsDeterministicDeepestFirst)
{
    KvBlockAllocator pool(6, 4);
    const std::vector<int> prompt = countedTokens(1, 13); // 3 full
    PrefixMatch m;
    ASSERT_TRUE(pool.admit(1, prompt, 14, true, &m));
    ASSERT_EQ(m.ownHashes.size(), 3u);
    pool.release(1);
    EXPECT_EQ(pool.usedBlocks(), 3u); // zero-ref residents

    std::vector<uint64_t> evicted;
    pool.setEvictionHook([&](uint64_t h) { evicted.push_back(h); });
    // A 24-token private reservation needs the whole pool: the
    // residents are reclaimed deepest-chain-first.
    EXPECT_TRUE(pool.canReserve(2, 24));
    ASSERT_TRUE(pool.reserve(2, 24));
    EXPECT_EQ(pool.usedBlocks(), 6u);
    EXPECT_EQ(pool.residentSharedBlocks(), 0u);
    ASSERT_EQ(evicted.size(), 3u);
    EXPECT_EQ(evicted[0], m.ownHashes[2]);
    EXPECT_EQ(evicted[1], m.ownHashes[1]);
    EXPECT_EQ(evicted[2], m.ownHashes[0]);
    EXPECT_EQ(pool.stats().sharedEvictions, 3u);
}

TEST(KvSharingTest, FragmentationCountsSharedBlocksOnce)
{
    // Pool-level fragmentation is measured against *physical*
    // capacity: a shared block held by N requests contributes its
    // tokens once, not N times (the pre-sharing formula would
    // understate waste as refcounts grow the denominator).
    KvBlockAllocator pool(16, 8);
    const std::vector<int> prompt = countedTokens(1, 16);
    ASSERT_TRUE(pool.admit(1, prompt, 20, true, nullptr));
    // 2 shared (full) blocks + 1 private block with 4 live tokens.
    EXPECT_NEAR(pool.fragmentation(4), 4.0 / 24.0, 1e-12);
    EXPECT_NEAR(pool.requestFragmentation(1, 20), 4.0 / 24.0,
                1e-12);
    ASSERT_TRUE(pool.admit(2, prompt, 20, true, nullptr));
    // Physical capacity is 4 blocks (shared counted once); the two
    // private blocks hold 8 of 16 reserved tokens.
    EXPECT_NEAR(pool.fragmentation(8), 8.0 / 32.0, 1e-12);
    // The per-request view is per holder and unchanged.
    EXPECT_NEAR(pool.requestFragmentation(2, 20), 4.0 / 24.0,
                1e-12);
}

TEST(KvSharingTest, RandomizedSharingSoak)
{
    // Random admissions / growth / COW / releases across three
    // tenants, checking the global accounting invariant every
    // step: the fair-share footprints of all holders must sum to
    // exactly the referenced physical blocks.
    util::Rng rng(20260807);
    KvBlockAllocator pool(32, 4);
    auto tenantPrompt = [](size_t tenant, size_t len) {
        std::vector<int> p;
        p.reserve(len);
        for (size_t i = 0; i < len; ++i)
            p.push_back(static_cast<int>(1 + tenant * 100 + i));
        return p;
    };
    std::map<uint64_t, size_t> admitted; // id -> reserved tokens
    uint64_t next_id = 1;
    auto randomHeld = [&]() {
        auto it = admitted.begin();
        std::advance(it, static_cast<long>(rng.uniformInt(
                             static_cast<uint64_t>(
                                 admitted.size()))));
        return it->first;
    };
    for (int step = 0; step < 2000; ++step) {
        const double r = rng.uniform();
        if (r < 0.45) {
            const size_t tenant = rng.uniformInt(uint64_t{3});
            const size_t len = 4 + rng.uniformInt(uint64_t{17});
            const std::vector<int> prompt =
                tenantPrompt(tenant, len);
            const size_t total = len + rng.uniformInt(uint64_t{9});
            if (pool.canAdmit(next_id, prompt, total, true)) {
                ASSERT_TRUE(pool.admit(next_id, prompt, total,
                                       true, nullptr));
                admitted[next_id++] = total;
            }
        } else if (r < 0.6 && !admitted.empty()) {
            const uint64_t id = randomHeld();
            const size_t more =
                admitted[id] + rng.uniformInt(uint64_t{6});
            if (pool.canReserve(id, more)) {
                ASSERT_TRUE(pool.reserve(id, more));
                admitted[id] = more;
            }
        } else if (r < 0.75 && !admitted.empty()) {
            const uint64_t id = randomHeld();
            const uint64_t partial = pool.requestPartial(id);
            if (partial != 0)
                pool.cowShared(id, partial);
        } else if (!admitted.empty()) {
            const uint64_t id = randomHeld();
            pool.release(id);
            admitted.erase(id);
        }
        // Invariants.
        ASSERT_LE(pool.usedBlocks(), pool.totalBlocks());
        ASSERT_GE(pool.usedBlocks(), pool.residentSharedBlocks());
        ASSERT_EQ(pool.activeRequests(), admitted.size());
        double fair = 0.0;
        for (const auto &entry : admitted)
            fair += pool.effectiveBlocks(entry.first);
        size_t zero_ref = 0;
        for (const auto &entry : pool.sharedTable())
            if (entry.second.refs == 0)
                ++zero_ref;
        ASSERT_NEAR(fair,
                    static_cast<double>(pool.usedBlocks() -
                                        zero_ref),
                    1e-9)
            << "fair-share accounting diverged at step " << step;
    }
    for (const auto &entry : admitted)
        pool.release(entry.first);
    EXPECT_EQ(pool.usedBlocks(), pool.residentSharedBlocks());
    EXPECT_EQ(pool.stats().redundantReleases, 0u);
}

TEST(KvSharingDeathTest, CowRefcountUnderflowDies)
{
    KvBlockAllocator pool(16, 8);
    const std::vector<int> a = countedTokens(1, 16);
    ASSERT_TRUE(pool.admit(1, a, 18, true, nullptr));
    std::vector<int> b = countedTokens(1, 11);
    b.push_back(90);
    PrefixMatch m;
    ASSERT_TRUE(pool.admit(2, b, 13, true, &m));
    ASSERT_NE(m.partialHash, 0u);
    // COW for a block the request does not hold as partial dies.
    EXPECT_DEATH(pool.cowShared(2, m.hashes[0]),
                 "not held as partial");
    EXPECT_DEATH(pool.cowShared(1, m.partialHash),
                 "not held as partial");
    // Settling twice would underflow the refcount: fatal, not
    // silent corruption.
    pool.cowShared(2, m.partialHash);
    EXPECT_DEATH(pool.cowShared(2, m.partialHash),
                 "not held as partial");
}

// ---------------------------------------------------------------
// Admission control + preemption through the request manager.

struct Fixture
{
    Fixture()
        : llm(tinyLlm()),
          ssm(model::makeEarlyExitSsm(llm, 2)),
          engine(&llm, {&ssm}, makeConfig())
    {
    }

    static core::EngineConfig
    makeConfig()
    {
        core::EngineConfig cfg = core::EngineConfig::greedyDefault();
        cfg.spec.expansion = core::ExpansionConfig::uniform(2, 3);
        cfg.maxNewTokens = 12;
        cfg.stopAtEos = false;
        return cfg;
    }

    model::Transformer llm;
    model::Transformer ssm;
    core::SpecEngine engine;
};

std::vector<int>
promptFor(int i)
{
    return {2 + i, 9, 4, 7 + (i % 3)};
}

TEST(KvAdmissionTest, WorstCasePolicyBoundsConcurrency)
{
    Fixture f;
    // Worst case per request: 4 prompt + 12 gen + treeBudget + 2.
    size_t per_request = f.engine.config().maxNewTokens + 4 +
                         f.engine.treeBudget() + 2;
    ServingConfig cfg;
    cfg.maxBatchSize = 8;
    cfg.kvBlockTokens = 8;
    // Room for exactly two requests.
    KvBlockAllocator probe(1000, 8);
    cfg.kvPoolBlocks = 2 * probe.blocksFor(per_request);
    RequestManager manager(&f.engine, cfg);
    for (int i = 0; i < 5; ++i)
        manager.submit(promptFor(i));
    manager.runIteration();
    EXPECT_EQ(manager.activeCount(), 2u);
    manager.runUntilDrained();
    EXPECT_EQ(manager.finished().size(), 5u);
    EXPECT_EQ(manager.stats().preemptions, 0u);
    EXPECT_EQ(manager.kvPool()->usedBlocks(), 0u);
}

TEST(KvAdmissionTest, OnDemandAdmitsMoreThanWorstCase)
{
    // The same pool admits more concurrent requests under paging
    // because reservations track actual sequence growth instead of
    // the full generation budget. Use a long generation budget and
    // a narrow tree so the gap is large.
    Fixture f;
    core::EngineConfig ecfg = Fixture::makeConfig();
    ecfg.spec.expansion = core::ExpansionConfig::uniform(1, 2);
    ecfg.maxNewTokens = 48;
    core::SpecEngine engine(&f.llm, {&f.ssm}, ecfg);

    size_t per_request =
        48 + 4 + engine.treeBudget() + 2; // worst case tokens
    ServingConfig cfg;
    cfg.maxBatchSize = 8;
    cfg.kvBlockTokens = 8;
    KvBlockAllocator probe(1000, 8);
    cfg.kvPoolBlocks = 2 * probe.blocksFor(per_request);
    cfg.kvPolicy = KvReservationPolicy::OnDemand;
    RequestManager manager(&engine, cfg);
    for (int i = 0; i < 8; ++i)
        manager.submit(promptFor(i));
    manager.runIteration();
    EXPECT_GT(manager.activeCount(), 2u);
    manager.runUntilDrained();
    EXPECT_EQ(manager.finished().size(), 8u);
}

TEST(KvAdmissionTest, PreemptionPreservesOutputs)
{
    // A pool tight enough to force preemptions must still produce
    // exactly the unconstrained outputs (recompute-on-restart with
    // per-request seeds).
    Fixture f;
    ServingConfig tight;
    tight.maxBatchSize = 4;
    tight.kvBlockTokens = 8;
    // Enough for ~1.5 requests' worst case: forces paging pressure.
    size_t per_request = f.engine.config().maxNewTokens + 4 +
                         f.engine.treeBudget() + 2;
    KvBlockAllocator probe(1000, 8);
    tight.kvPoolBlocks =
        probe.blocksFor(per_request) * 3 / 2;
    tight.kvPolicy = KvReservationPolicy::OnDemand;
    RequestManager constrained(&f.engine, tight);

    ServingConfig loose;
    loose.maxBatchSize = 4;
    RequestManager unconstrained(&f.engine, loose);

    std::map<uint64_t, std::vector<int>> got, want;
    for (int i = 0; i < 6; ++i) {
        constrained.submit(promptFor(i));
        unconstrained.submit(promptFor(i));
    }
    constrained.runUntilDrained();
    unconstrained.runUntilDrained();
    ASSERT_EQ(constrained.finished().size(), 6u);
    for (const RequestResult &res : constrained.finished())
        got[res.id] = res.tokens;
    for (const RequestResult &res : unconstrained.finished())
        want[res.id] = res.tokens;
    EXPECT_EQ(got, want);
    EXPECT_GT(constrained.stats().preemptions, 0u);
}

TEST(KvAdmissionTest, TightPoolTerminates)
{
    // Regression test: with victim selection based on restart time
    // instead of arrival order, two requests under a tight pool
    // could evict each other forever. FCFS priority guarantees the
    // earliest active request always progresses.
    Fixture f;
    size_t per_request = f.engine.config().maxNewTokens + 4 +
                         f.engine.treeBudget() + 2;
    ServingConfig cfg;
    cfg.maxBatchSize = 4;
    cfg.kvBlockTokens = 8;
    KvBlockAllocator probe(1000, 8);
    // Barely more than one request's worst case: maximum pressure.
    cfg.kvPoolBlocks = probe.blocksFor(per_request) + 2;
    cfg.kvPolicy = KvReservationPolicy::OnDemand;
    RequestManager manager(&f.engine, cfg);
    for (int i = 0; i < 4; ++i)
        manager.submit(promptFor(i));
    size_t iterations = 0;
    while (manager.busy()) {
        manager.runIteration();
        ASSERT_LT(++iterations, 500u) << "scheduler livelock";
    }
    EXPECT_EQ(manager.finished().size(), 4u);
}

TEST(KvAdmissionTest, EarliestActiveIsNeverPreempted)
{
    // FCFS property: preemption only ever hits strictly later
    // arrivals, so the earliest submitted request is never evicted
    // and finishes first even under memory pressure. (Preempted
    // later arrivals may be reordered among themselves by the
    // re-admission backoff.)
    Fixture f;
    size_t per_request = f.engine.config().maxNewTokens + 4 +
                         f.engine.treeBudget() + 2;
    ServingConfig cfg;
    cfg.maxBatchSize = 4;
    cfg.kvBlockTokens = 8;
    KvBlockAllocator probe(1000, 8);
    cfg.kvPoolBlocks = probe.blocksFor(per_request) * 3 / 2;
    cfg.kvPolicy = KvReservationPolicy::OnDemand;
    RequestManager manager(&f.engine, cfg);
    std::vector<uint64_t> ids;
    for (int i = 0; i < 5; ++i)
        ids.push_back(manager.submit(promptFor(i)));
    manager.runUntilDrained();
    ASSERT_EQ(manager.finished().size(), 5u);
    EXPECT_EQ(manager.finished()[0].id, ids[0]);
    std::vector<uint64_t> finished_ids;
    for (const RequestResult &res : manager.finished()) {
        finished_ids.push_back(res.id);
        EXPECT_NE(res.stopReason,
                  core::SpecSession::StopReason::Preempted);
    }
    std::sort(finished_ids.begin(), finished_ids.end());
    EXPECT_EQ(finished_ids, ids);
}

TEST(KvAdmissionTest, ImpossibleRequestIsRejected)
{
    // A request whose worst case exceeds the whole pool is shed
    // with a typed reason instead of aborting the serving process.
    Fixture f;
    ServingConfig cfg;
    cfg.kvPoolBlocks = 1;
    cfg.kvBlockTokens = 4;
    RequestManager manager(&f.engine, cfg);
    SubmitResult res = manager.submit(promptFor(0));
    EXPECT_FALSE(res.accepted());
    EXPECT_EQ(res.reject, RejectReason::NeverFits);
    EXPECT_EQ(res.id, 0u);
    EXPECT_EQ(manager.stats().requestsSubmitted, 0u);
    EXPECT_EQ(manager.stats().rejectedNeverFits, 1u);
    EXPECT_FALSE(manager.busy());
}

TEST(KvAdmissionTest, AbortPathsNeverDoubleRelease)
{
    // Drive cancellation + preemption + shedding through the
    // manager under a tight pool and require zero redundant
    // releases and an empty pool at the end.
    Fixture f;
    size_t per_request = f.engine.config().maxNewTokens + 4 +
                         f.engine.treeBudget() + 2;
    ServingConfig cfg;
    cfg.maxBatchSize = 4;
    cfg.kvBlockTokens = 8;
    KvBlockAllocator probe(1000, 8);
    cfg.kvPoolBlocks = probe.blocksFor(per_request) * 3 / 2;
    cfg.kvPolicy = KvReservationPolicy::OnDemand;
    cfg.maxPreemptions = 1; // force preemption aborts too
    RequestManager manager(&f.engine, cfg);
    std::vector<uint64_t> ids;
    for (int i = 0; i < 6; ++i)
        ids.push_back(manager.submit(promptFor(i)).id);
    manager.runIteration();
    manager.cancel(ids[1]); // active or pending, either way
    manager.cancel(ids[5]);
    manager.cancel(ids[5]); // second cancel: already gone
    manager.runUntilDrained();
    EXPECT_EQ(manager.finished().size(), 6u);
    EXPECT_EQ(manager.kvPool()->usedBlocks(), 0u);
    EXPECT_EQ(manager.kvPool()->stats().redundantReleases, 0u);
}

TEST(KvAdmissionTest, FullPoolBackpressureCountsNoFailures)
{
    // Regression: the admission loop used to probe the head-of-line
    // candidate with tryReserve, so every iteration with a full
    // pool bumped failedReservations (and kv_alloc_failures) —
    // routine backpressure was indistinguishable from real
    // allocation failure. Waiting must count nothing.
    Fixture f;
    size_t per_request = f.engine.config().maxNewTokens + 4 +
                         f.engine.treeBudget() + 2;
    ServingConfig cfg;
    cfg.maxBatchSize = 4;
    cfg.kvBlockTokens = 8;
    KvBlockAllocator probe(1000, 8);
    // Room for exactly one worst-case request: everyone else waits.
    cfg.kvPoolBlocks = probe.blocksFor(per_request);
    RequestManager manager(&f.engine, cfg);
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(manager.submit(promptFor(i)).accepted());
    for (int i = 0; i < 10; ++i)
        manager.runIteration();
    EXPECT_LE(manager.activeCount(), 1u);
    EXPECT_EQ(manager.kvPool()->stats().failedReservations, 0u);
    manager.runUntilDrained();
    EXPECT_EQ(manager.finished().size(), 4u);
    EXPECT_EQ(manager.kvPool()->stats().failedReservations, 0u);
    EXPECT_EQ(manager.kvPool()->usedBlocks(), 0u);
}

TEST(KvAdmissionTest, NeverFitsIsPolicyConsistent)
{
    // Regression: submit() used to judge feasibility by the worst
    // case even under OnDemand, whose admission path only needs
    // prompt + treeBudget + 2 — rejecting requests the policy
    // could actually start (and, with sharing, serve cheaply).
    Fixture f;
    const std::vector<int> prompt = promptFor(0); // 4 tokens
    const size_t admit_tokens =
        prompt.size() + f.engine.treeBudget() + 2;
    const size_t worst = prompt.size() +
                         f.engine.config().maxNewTokens +
                         f.engine.treeBudget() + 2;
    ServingConfig cfg;
    cfg.kvBlockTokens = 8;
    KvBlockAllocator probe(1000, 8);
    cfg.kvPoolBlocks = probe.blocksFor(admit_tokens);
    ASSERT_LT(cfg.kvPoolBlocks, probe.blocksFor(worst));

    cfg.kvPolicy = KvReservationPolicy::WorstCase;
    RequestManager worst_mgr(&f.engine, cfg);
    SubmitResult r1 = worst_mgr.submit(prompt);
    EXPECT_FALSE(r1.accepted());
    EXPECT_EQ(r1.reject, RejectReason::NeverFits);

    cfg.kvPolicy = KvReservationPolicy::OnDemand;
    cfg.maxPreemptions = 2; // outgrowing the pool fails cleanly
    RequestManager od_mgr(&f.engine, cfg);
    SubmitResult r2 = od_mgr.submit(prompt);
    ASSERT_TRUE(r2.accepted());
    od_mgr.runUntilDrained();
    ASSERT_EQ(od_mgr.finished().size(), 1u);
    // The request genuinely outgrows the pool, alone: that *is* a
    // real exhaustion event, counted by the growth path.
    EXPECT_EQ(od_mgr.finished()[0].stopReason,
              core::SpecSession::StopReason::Preempted);
    EXPECT_GT(od_mgr.kvPool()->stats().failedReservations, 0u);
    EXPECT_EQ(od_mgr.kvPool()->usedBlocks(), 0u);
}

} // namespace
} // namespace runtime
} // namespace specinfer
