/**
 * @file
 * Serving-level prefix sharing: a shared-prefix workload against a
 * no-sharing baseline must be token-identical with strictly lower
 * peak pool occupancy, leak nothing at drain, and survive
 * crash/recovery with copy-on-write state in flight.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "../model/test_models.h"
#include "model/model_factory.h"
#include "runtime/journal.h"
#include "runtime/request_manager.h"
#include "verify/diff_harness.h"
#include "workload/datasets.h"

namespace specinfer {
namespace runtime {
namespace {

using specinfer::testing::tinyLlm;

struct Fixture
{
    Fixture()
        : llm(tinyLlm()),
          ssm(model::makeEarlyExitSsm(llm, 2)),
          engine(&llm, {&ssm}, makeConfig())
    {
    }

    static core::EngineConfig
    makeConfig()
    {
        core::EngineConfig cfg = core::EngineConfig::greedyDefault();
        cfg.spec.expansion = core::ExpansionConfig::uniform(2, 3);
        cfg.maxNewTokens = 12;
        cfg.stopAtEos = false;
        return cfg;
    }

    model::Transformer llm;
    model::Transformer ssm;
    core::SpecEngine engine;
};

/** Multi-tenant prompts: two tenants, 32-token system prompts
 *  (4 full blocks at kvBlockTokens = 8), short unique suffixes. */
std::vector<std::vector<int>>
sharedPrompts(size_t count)
{
    workload::SharedPrefixDataset ds =
        workload::SharedPrefixDataset::chat(96, 2, 32);
    std::vector<std::vector<int>> prompts;
    prompts.reserve(count);
    for (size_t i = 0; i < count; ++i)
        prompts.push_back(ds.prompt(i));
    return prompts;
}

std::map<uint64_t, std::vector<int>>
drain(RequestManager &mgr)
{
    mgr.runUntilDrained();
    std::map<uint64_t, std::vector<int>> out;
    for (const RequestResult &res : mgr.finished())
        out[res.id] = res.tokens;
    return out;
}

TEST(PrefixSharingTest, TokenIdenticalWithLowerPeakOccupancy)
{
    Fixture f;
    const auto prompts = sharedPrompts(8);

    ServingConfig base;
    base.maxBatchSize = 8;
    base.kvBlockTokens = 8;
    base.kvPoolBlocks = 256; // ample: no preemption noise
    RequestManager plain(&f.engine, base);

    ServingConfig shared_cfg = base;
    shared_cfg.kvPrefixSharing = true;
    RequestManager sharing(&f.engine, shared_cfg);

    for (const std::vector<int> &p : prompts) {
        ASSERT_TRUE(plain.submit(p).accepted());
        ASSERT_TRUE(sharing.submit(p).accepted());
    }
    const auto want = drain(plain);
    const auto got = drain(sharing);
    ASSERT_EQ(want.size(), prompts.size());
    // Sharing is an occupancy/latency optimization only: outputs
    // bit-identical to the no-sharing run.
    EXPECT_EQ(got, want);

    const KvMemoryStats &stats = sharing.kvPool()->stats();
    EXPECT_GT(stats.prefixHits, 0u);
    EXPECT_LT(stats.peakUsedBlocks,
              plain.kvPool()->stats().peakUsedBlocks);
    // Prefill actually adopted precomputed rows: the payload store
    // captured blocks as sessions published them.
    ASSERT_NE(sharing.prefixStore(), nullptr);
    EXPECT_GT(sharing.prefixStore()->filledCount(), 0u);
    EXPECT_EQ(plain.prefixStore(), nullptr);

    // Drain hygiene: only zero-ref resident prefix blocks remain,
    // and nothing was double-released.
    EXPECT_EQ(sharing.kvPool()->usedBlocks(),
              sharing.kvPool()->residentSharedBlocks());
    EXPECT_EQ(stats.redundantReleases, 0u);
    EXPECT_EQ(plain.kvPool()->usedBlocks(), 0u);
}

TEST(PrefixSharingTest, TightPoolStillTokenIdentical)
{
    // Under real memory pressure (OnDemand paging + evictions of
    // resident prefix blocks) outputs must still match the
    // unconstrained no-sharing run.
    Fixture f;
    const auto prompts = sharedPrompts(6);

    ServingConfig loose;
    loose.maxBatchSize = 4;
    RequestManager unconstrained(&f.engine, loose);

    ServingConfig tight;
    tight.maxBatchSize = 4;
    tight.kvBlockTokens = 8;
    tight.kvPoolBlocks = 24; // ~1.5 requests' worst case
    tight.kvPolicy = KvReservationPolicy::OnDemand;
    tight.kvPrefixSharing = true;
    RequestManager constrained(&f.engine, tight);

    for (const std::vector<int> &p : prompts) {
        ASSERT_TRUE(unconstrained.submit(p).accepted());
        ASSERT_TRUE(constrained.submit(p).accepted());
    }
    const auto want = drain(unconstrained);
    const auto got = drain(constrained);
    ASSERT_EQ(got.size(), prompts.size());
    EXPECT_EQ(got, want);
    EXPECT_EQ(constrained.kvPool()->usedBlocks(),
              constrained.kvPool()->residentSharedBlocks());
    EXPECT_EQ(constrained.kvPool()->stats().redundantReleases, 0u);
}

TEST(PrefixSharingRecoveryTest, RecoverMidCowFromJournal)
{
    // Crash-equivalent recovery cut exactly after the iteration
    // that admitted a partially-matching request and settled its
    // copy-on-write: journal replay must rebuild the intern table,
    // re-run the COW, and finish with identical tokens.
    Fixture f;
    ServingConfig cfg;
    cfg.maxBatchSize = 4;
    cfg.kvBlockTokens = 8;
    cfg.kvPoolBlocks = 64;
    cfg.kvPrefixSharing = true;

    std::vector<int> a;
    for (int i = 0; i < 16; ++i)
        a.push_back(2 + i);
    std::vector<int> b(a.begin(), a.begin() + 11); // partial block 1
    b.push_back(90);
    b.push_back(91);

    std::stringstream buf;
    JournalWriter writer(buf);
    RequestManager mgr(&f.engine, cfg);
    mgr.attachJournal(&writer);
    ASSERT_TRUE(mgr.submit(a).accepted());
    mgr.runIteration(); // A admitted, interns blocks 0 and 1
    ASSERT_TRUE(mgr.submit(b).accepted());
    mgr.runIteration(); // B admitted with a partial match; its
                        // first step settles the COW
    ASSERT_EQ(mgr.kvPool()->stats().cowCopies, 1u);
    const std::string mid = buf.str();
    const auto want = drain(mgr);
    ASSERT_EQ(want.size(), 2u);

    RequestManager recovered(&f.engine, cfg);
    std::stringstream tail(mid);
    recovered.recover(nullptr, &tail);
    EXPECT_EQ(recovered.kvPool()->stats().cowCopies, 1u);
    const auto got = drain(recovered);
    EXPECT_EQ(got, want);
    EXPECT_EQ(recovered.kvPool()->usedBlocks(),
              recovered.kvPool()->residentSharedBlocks());
    EXPECT_EQ(recovered.kvPool()->stats().redundantReleases, 0u);
}

TEST(PrefixSharingRecoveryTest, RandomizedTrialsWithSharing)
{
    // The full randomized oracle (crashes torn anywhere, KV faults,
    // snapshots) now draws prefix-sharing configs and prompts that
    // ride earlier prompts' prefixes; a slice runs here, the wider
    // sweep in tests/runtime/recovery_test.cc.
    for (uint64_t seed = 9000; seed < 9012; ++seed) {
        verify::TrialOutcome out = verify::runRecoveryTrial(seed);
        EXPECT_TRUE(out.ok)
            << out.configLine << " : " << out.detail;
    }
}

} // namespace
} // namespace runtime
} // namespace specinfer
