/**
 * @file
 * QoS priority classes and overload control:
 *
 *  - PriorityTest: class-aware admission order, preemption that
 *    victimizes the lowest class first (overriding FCFS), the
 *    shed-under-pressure policy (an Interactive request is never
 *    shed while any Batch request remains), and wall-clock deadline
 *    expiry for pending and active requests.
 *  - OverloadTest: per-class token-bucket ingress (typed Overloaded
 *    rejections with retry-after hints, iteration-clock refill,
 *    class independence) and journal-replay equivalence of bucket
 *    state.
 *
 * All timing runs on an injected obs::ManualClock — schedules are
 * exact and deterministic, no sleeps.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "../model/test_models.h"
#include "model/model_factory.h"
#include "obs/obs.h"
#include "runtime/journal.h"
#include "runtime/request_manager.h"
#include "util/rng.h"

namespace specinfer {
namespace runtime {
namespace {

using core::SpecSession;
using specinfer::testing::tinyLlm;

/** Engine + manager scaffold shared by the suites. */
struct Rig
{
    explicit Rig(size_t max_new = 12)
        : llm(tinyLlm()), ssm(model::makeEarlyExitSsm(llm, 2))
    {
        core::EngineConfig ecfg = core::EngineConfig::greedyDefault();
        ecfg.spec.expansion = core::ExpansionConfig::uniform(2, 4);
        ecfg.maxNewTokens = max_new;
        ecfg.stopAtEos = false;
        engine = std::make_unique<core::SpecEngine>(
            &llm, std::vector<const model::Transformer *>{&ssm},
            ecfg);
    }

    std::vector<int> oracle(const std::vector<int> &prompt,
                            uint64_t id) const
    {
        return engine->generate(prompt, id).tokens;
    }

    model::Transformer llm;
    model::Transformer ssm;
    std::unique_ptr<core::SpecEngine> engine;
};

const RequestResult *
resultOf(const RequestManager &mgr, uint64_t id)
{
    for (const RequestResult &res : mgr.finished())
        if (res.id == id)
            return &res;
    return nullptr;
}

TEST(PriorityTest, InteractiveAdmittedAheadOfEarlierBatch)
{
    Rig rig;
    ServingConfig cfg;
    cfg.maxBatchSize = 1; // one slot: admission order is visible
    RequestManager mgr(rig.engine.get(), cfg);

    // The Batch request arrives first; the single slot must still
    // go to the Interactive request (priority beats FCFS), with the
    // Standard request between them.
    uint64_t batch = mgr.submit({6, 3, 8, 1}, 0, 0, Priority::Batch);
    uint64_t standard =
        mgr.submit({4, 9, 1, 7}, 0, 0, Priority::Standard);
    uint64_t inter =
        mgr.submit({5, 9, 2, 11}, 0, 0, Priority::Interactive);
    mgr.runUntilDrained();

    const RequestResult *ri = resultOf(mgr, inter);
    const RequestResult *rs = resultOf(mgr, standard);
    const RequestResult *rb = resultOf(mgr, batch);
    ASSERT_NE(ri, nullptr);
    ASSERT_NE(rs, nullptr);
    ASSERT_NE(rb, nullptr);
    EXPECT_EQ(ri->startIteration, 0u);
    EXPECT_LT(ri->finishIteration, rs->startIteration);
    EXPECT_LT(rs->finishIteration, rb->startIteration);
    EXPECT_EQ(ri->priority, Priority::Interactive);
    // Being reordered never changes any request's tokens.
    EXPECT_EQ(ri->tokens, rig.oracle({5, 9, 2, 11}, inter));
    EXPECT_EQ(rb->tokens, rig.oracle({6, 3, 8, 1}, batch));
}

TEST(PriorityTest, PreemptionVictimizesLowestClassFirst)
{
    Rig rig(24);
    std::vector<int> pb = {6, 3, 8, 1};
    std::vector<int> pi = {5, 9, 2, 11};

    // Pool sized for ~1.5 worst cases, on-demand paging: the two
    // requests cannot both hold a full footprint, so someone must
    // be preempted — and it must always be the Batch request, even
    // though it arrived first (class order overrides FCFS).
    size_t per_request = pb.size() + 24 + rig.engine->treeBudget() + 2;
    ServingConfig cfg;
    cfg.maxBatchSize = 2;
    cfg.kvBlockTokens = 8;
    KvBlockAllocator probe(1000, 8);
    cfg.kvPoolBlocks = probe.blocksFor(per_request) * 3 / 2;
    cfg.kvPolicy = KvReservationPolicy::OnDemand;
    RequestManager mgr(rig.engine.get(), cfg);

    uint64_t batch = mgr.submit(pb, 0, 0, Priority::Batch);
    uint64_t inter = mgr.submit(pi, 0, 0, Priority::Interactive);

    size_t iterations = 0;
    while (mgr.busy()) {
        mgr.runIteration();
        ASSERT_LT(++iterations, 400u) << "preemption livelock";
    }

    const RequestResult *ri = resultOf(mgr, inter);
    const RequestResult *rb = resultOf(mgr, batch);
    ASSERT_NE(ri, nullptr);
    ASSERT_NE(rb, nullptr);
    EXPECT_EQ(ri->stopReason, SpecSession::StopReason::MaxTokens);
    EXPECT_EQ(rb->stopReason, SpecSession::StopReason::MaxTokens);
    // The Interactive request never lost its memory; the Batch one
    // paid every eviction. Recompute restarts keep tokens exact.
    EXPECT_EQ(ri->preemptions, 0u);
    EXPECT_GE(rb->preemptions, 1u);
    EXPECT_EQ(ri->tokens, rig.oracle(pi, inter));
    EXPECT_EQ(rb->tokens, rig.oracle(pb, batch));
    EXPECT_EQ(mgr.kvPool()->usedBlocks(), 0u);
}

TEST(PriorityTest, NoInteractiveShedWhileBatchRemains)
{
    Rig rig;
    ServingConfig cfg;
    cfg.maxBatchSize = 1;
    cfg.maxPendingRequests = 4;
    RequestManager mgr(rig.engine.get(), cfg);

    // Fill the bounded queue without running any iteration (the
    // shed policy is pure queue management).
    uint64_t b1 = mgr.submit({6, 3, 8, 1}, 0, 0, Priority::Batch);
    uint64_t b2 = mgr.submit({6, 3, 8, 2}, 0, 0, Priority::Batch);
    uint64_t i1 =
        mgr.submit({5, 9, 2, 11}, 0, 0, Priority::Interactive);
    uint64_t i2 =
        mgr.submit({5, 9, 2, 12}, 0, 0, Priority::Interactive);
    ASSERT_EQ(mgr.pendingCount(), 4u);

    // A Standard arrival sheds the *latest Batch* request — never
    // an Interactive one — and takes the freed slot.
    SubmitResult s1 =
        mgr.submit({4, 9, 1, 7}, 0, 0, Priority::Standard);
    ASSERT_TRUE(s1.accepted());
    EXPECT_EQ(mgr.stats().shedRequests, 1u);
    EXPECT_EQ(mgr.stats().shedByClass[static_cast<size_t>(
                  Priority::Batch)],
              1u);
    EXPECT_EQ(mgr.stats().shedByClass[static_cast<size_t>(
                  Priority::Interactive)],
              0u);
    const RequestResult *shed1 = resultOf(mgr, b2);
    ASSERT_NE(shed1, nullptr); // latest arrival within Batch
    EXPECT_EQ(shed1->stopReason, SpecSession::StopReason::Shed);
    EXPECT_TRUE(shed1->tokens.empty());

    // An Interactive arrival sheds the remaining Batch request.
    SubmitResult s2 =
        mgr.submit({5, 9, 2, 13}, 0, 0, Priority::Interactive);
    ASSERT_TRUE(s2.accepted());
    ASSERT_NE(resultOf(mgr, b1), nullptr);
    EXPECT_EQ(mgr.stats().shedByClass[static_cast<size_t>(
                  Priority::Batch)],
              2u);

    // No Batch request remains; a Batch arrival cannot displace a
    // higher class and is rejected instead of shedding one.
    SubmitResult s3 =
        mgr.submit({6, 3, 8, 3}, 0, 0, Priority::Batch);
    EXPECT_EQ(s3.reject, RejectReason::QueueFull);
    EXPECT_EQ(mgr.stats().shedByClass[static_cast<size_t>(
                  Priority::Interactive)],
              0u);
    EXPECT_EQ(mgr.stats().shedByClass[static_cast<size_t>(
                  Priority::Standard)],
              0u);
    // The queue still holds every Interactive request.
    EXPECT_EQ(resultOf(mgr, i1), nullptr);
    EXPECT_EQ(resultOf(mgr, i2), nullptr);

    mgr.runUntilDrained();
    EXPECT_EQ(mgr.stats().requestsFinished, 6u); // 4 served + 2 shed
}

TEST(PriorityTest, RandomizedShedSoakProtectsHigherClasses)
{
    // Seeded storm of mixed-class arrivals against a small bounded
    // queue, interleaved with iterations. At *every* arrival the
    // shed ladder is checked against the pre-submit queue census:
    // a Standard request is only ever shed when no Batch request
    // was pending, an Interactive request is never shed at all, and
    // a Batch arrival never displaces anyone (it gets QueueFull).
    Rig rig(6);
    ServingConfig cfg;
    cfg.maxBatchSize = 2;
    cfg.maxPendingRequests = 5;
    RequestManager mgr(rig.engine.get(), cfg);
    util::Rng rng(0x5eedf00dULL);

    const Priority kClasses[] = {Priority::Interactive,
                                 Priority::Standard,
                                 Priority::Batch};
    constexpr size_t kInter =
        static_cast<size_t>(Priority::Interactive);
    constexpr size_t kStd = static_cast<size_t>(Priority::Standard);
    constexpr size_t kBatch = static_cast<size_t>(Priority::Batch);

    size_t accepted = 0, queue_full = 0;
    for (size_t round = 0; round < 1500; ++round) {
        if (rng.uniformInt(100) < 55) {
            // Pre-arrival census of the sheddable (pending) set:
            // inflight() lists pending requests first.
            size_t census[3] = {0, 0, 0};
            const auto live = mgr.inflight();
            for (size_t k = 0; k < mgr.pendingCount(); ++k)
                ++census[static_cast<size_t>(live[k].priority)];
            uint64_t before[3];
            for (size_t c = 0; c < 3; ++c)
                before[c] = mgr.stats().shedByClass[c];

            const Priority cls = kClasses[rng.uniformInt(3)];
            std::vector<int> prompt;
            for (int k = 0; k < 2 + rng.uniformInt(4); ++k)
                prompt.push_back(2 + rng.uniformInt(12));
            SubmitResult s = mgr.submit(prompt, 0, 0, cls);
            if (s.accepted())
                ++accepted;
            else if (s.reject == RejectReason::QueueFull)
                ++queue_full;

            const ServingStats &st = mgr.stats();
            ASSERT_EQ(st.shedByClass[kInter], 0u)
                << "round " << round;
            if (st.shedByClass[kStd] != before[kStd]) {
                ASSERT_EQ(cls, Priority::Interactive)
                    << "round " << round;
                ASSERT_EQ(census[kBatch], 0u)
                    << "round " << round
                    << ": shed Standard while Batch was pending";
            }
            if (st.shedByClass[kBatch] != before[kBatch])
                ASSERT_NE(cls, Priority::Batch) << "round " << round;
            if (s.reject == RejectReason::QueueFull)
                // Rejected instead of shedding: nobody pending was
                // strictly lower-class than the arrival.
                for (size_t c = static_cast<size_t>(cls) + 1; c < 3;
                     ++c)
                    ASSERT_EQ(census[c], 0u) << "round " << round;
        }
        if (rng.uniformInt(100) < 40)
            mgr.runIteration();
    }
    mgr.runUntilDrained();

    const ServingStats &st = mgr.stats();
    EXPECT_EQ(st.requestsFinished, accepted); // served + shed
    EXPECT_EQ(st.shedByClass[kInter], 0u);
    EXPECT_GT(st.shedRequests, 0u) << "storm never overflowed";
    EXPECT_GT(queue_full, 0u) << "storm never hit QueueFull";
    if (mgr.kvPool() != nullptr)
        EXPECT_EQ(mgr.kvPool()->usedBlocks(), 0u);
}

TEST(PriorityTest, WallClockDeadlineExpiresPendingRequest)
{
    Rig rig(24);
    ServingConfig cfg;
    cfg.maxBatchSize = 1; // the long request blocks the only slot
    obs::ManualClock clock(0);
    obs::ObsContext obs_ctx(&clock, /*tracing_enabled=*/false);
    cfg.obs = &obs_ctx;
    RequestManager mgr(rig.engine.get(), cfg);

    uint64_t longId = mgr.submit({6, 3, 8, 1});
    // Absolute wall deadline at t=3500ns: with the driver ticking
    // 1000ns per iteration the request must expire on the iteration
    // that reads t=4000 — still queued, zero tokens. Batch class, so
    // priority head-of-line admission cannot let it overtake the
    // Standard blocker into the single slot.
    uint64_t dead =
        mgr.submit({5, 9, 2, 11}, 0, 0, Priority::Batch, 3500);

    uint64_t t = 0;
    size_t guard = 0;
    while (mgr.busy()) {
        t += 1000;
        clock.set(t);
        mgr.runIteration();
        ASSERT_LT(++guard, 400u);
    }

    const RequestResult *rd = resultOf(mgr, dead);
    ASSERT_NE(rd, nullptr);
    EXPECT_EQ(rd->stopReason, SpecSession::StopReason::Deadline);
    EXPECT_TRUE(rd->tokens.empty());
    EXPECT_EQ(rd->priority, Priority::Batch);
    EXPECT_EQ(mgr.stats().deadlineExpiries, 1u);
    // Expiry lands on the exact tick the deadline passed: 4
    // iterations of 1000ns each (reads at 1000..4000).
    EXPECT_EQ(rd->finishIteration, 3u);
    // The long request was untouched by its neighbor's deadline.
    const RequestResult *rl = resultOf(mgr, longId);
    ASSERT_NE(rl, nullptr);
    EXPECT_EQ(rl->stopReason, SpecSession::StopReason::MaxTokens);
    EXPECT_EQ(rl->tokens, rig.oracle({6, 3, 8, 1}, longId));
}

TEST(PriorityTest, WallClockDeadlineExpiresActiveRequest)
{
    Rig rig(24);
    ServingConfig cfg;
    cfg.maxBatchSize = 1;
    obs::ManualClock clock(0);
    obs::ObsContext obs_ctx(&clock, /*tracing_enabled=*/false);
    cfg.obs = &obs_ctx;
    RequestManager mgr(rig.engine.get(), cfg);

    std::vector<int> prompt = {5, 9, 2, 11};
    uint64_t id = mgr.submit(prompt, 0, 0, Priority::Standard, 4500);

    uint64_t t = 0;
    size_t guard = 0;
    while (mgr.busy()) {
        t += 1000;
        clock.set(t);
        mgr.runIteration();
        ASSERT_LT(++guard, 400u);
    }

    const RequestResult *res = resultOf(mgr, id);
    ASSERT_NE(res, nullptr);
    EXPECT_EQ(res->stopReason, SpecSession::StopReason::Deadline);
    // Mid-generation expiry: the request decoded for a few
    // iterations, then aborted with a proper prefix of its full
    // output.
    const std::vector<int> full = rig.oracle(prompt, id);
    ASSERT_FALSE(res->tokens.empty());
    ASSERT_LT(res->tokens.size(), full.size());
    EXPECT_TRUE(std::equal(res->tokens.begin(), res->tokens.end(),
                           full.begin()));
    EXPECT_EQ(mgr.stats().deadlineExpiries, 1u);
}

TEST(OverloadTest, EmptyBucketRejectsWithRetryAfter)
{
    Rig rig;
    ServingConfig cfg;
    constexpr size_t kInter =
        static_cast<size_t>(Priority::Interactive);
    cfg.classBucketCapacity[kInter] = 2;
    cfg.classRefillEveryIterations[kInter] = 4;
    RequestManager mgr(rig.engine.get(), cfg);

    EXPECT_TRUE(mgr.submit({5, 9, 2, 11}, 0, 0,
                           Priority::Interactive)
                    .accepted());
    EXPECT_TRUE(mgr.submit({5, 9, 2, 12}, 0, 0,
                           Priority::Interactive)
                    .accepted());
    SubmitResult rej =
        mgr.submit({5, 9, 2, 13}, 0, 0, Priority::Interactive);
    EXPECT_EQ(rej.reject, RejectReason::Overloaded);
    EXPECT_EQ(rej.id, 0u);
    EXPECT_EQ(rej.retryAfterIterations, 4u); // next refill period
    EXPECT_EQ(mgr.stats().rejectedOverloaded, 1u);

    // Unmetered classes are untouched by the Interactive bucket.
    EXPECT_TRUE(
        mgr.submit({6, 3, 8, 1}, 0, 0, Priority::Batch).accepted());
    EXPECT_TRUE(mgr.submit({4, 9, 1, 7}, 0, 0, Priority::Standard)
                    .accepted());
}

TEST(OverloadTest, BucketRefillsOnTheIterationClock)
{
    Rig rig;
    ServingConfig cfg;
    constexpr size_t kInter =
        static_cast<size_t>(Priority::Interactive);
    cfg.classBucketCapacity[kInter] = 1;
    cfg.classRefillEveryIterations[kInter] = 3;
    RequestManager mgr(rig.engine.get(), cfg);

    EXPECT_TRUE(mgr.submit({5, 9, 2, 11}, 0, 0,
                           Priority::Interactive)
                    .accepted());
    SubmitResult rej =
        mgr.submit({5, 9, 2, 12}, 0, 0, Priority::Interactive);
    ASSERT_EQ(rej.reject, RejectReason::Overloaded);
    EXPECT_EQ(rej.retryAfterIterations, 3u);

    // The retry-after hint is exact: one iteration early still
    // rejects (with an updated hint), on time it admits.
    mgr.runIteration();
    mgr.runIteration();
    SubmitResult early =
        mgr.submit({5, 9, 2, 13}, 0, 0, Priority::Interactive);
    ASSERT_EQ(early.reject, RejectReason::Overloaded);
    EXPECT_EQ(early.retryAfterIterations, 1u);
    mgr.runIteration();
    EXPECT_TRUE(mgr.submit({5, 9, 2, 14}, 0, 0,
                           Priority::Interactive)
                    .accepted());
    mgr.runUntilDrained();
}

TEST(OverloadTest, ClassBucketsMeterIndependently)
{
    Rig rig;
    ServingConfig cfg;
    constexpr size_t kInter =
        static_cast<size_t>(Priority::Interactive);
    constexpr size_t kBatch = static_cast<size_t>(Priority::Batch);
    cfg.classBucketCapacity[kInter] = 4;
    cfg.classRefillEveryIterations[kInter] = 2;
    cfg.classBucketCapacity[kBatch] = 1;
    cfg.classRefillEveryIterations[kBatch] = 8;
    RequestManager mgr(rig.engine.get(), cfg);

    // Drain the Batch bucket; the Interactive bucket is unaffected.
    EXPECT_TRUE(
        mgr.submit({6, 3, 8, 1}, 0, 0, Priority::Batch).accepted());
    SubmitResult rej =
        mgr.submit({6, 3, 8, 2}, 0, 0, Priority::Batch);
    EXPECT_EQ(rej.reject, RejectReason::Overloaded);
    EXPECT_EQ(rej.retryAfterIterations, 8u);
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(mgr.submit({5, 9, 2, 11 + i}, 0, 0,
                               Priority::Interactive)
                        .accepted());
    EXPECT_EQ(mgr.stats().rejectedOverloaded, 1u);
}

TEST(OverloadTest, RecoveryReplaysBucketStateExactly)
{
    Rig rig;
    ServingConfig cfg;
    cfg.maxBatchSize = 2;
    constexpr size_t kInter =
        static_cast<size_t>(Priority::Interactive);
    cfg.classBucketCapacity[kInter] = 3;
    cfg.classRefillEveryIterations[kInter] = 5;

    // Live manager: consume ingress tokens across a few
    // iterations, journaling as it goes.
    std::stringstream journal_buf;
    JournalWriter writer(journal_buf);
    RequestManager live(rig.engine.get(), cfg);
    live.attachJournal(&writer);
    ASSERT_TRUE(live.submit({5, 9, 2, 11}, 4, 0,
                            Priority::Interactive)
                    .accepted());
    ASSERT_TRUE(live.submit({5, 9, 2, 12}, 4, 0,
                            Priority::Interactive)
                    .accepted());
    for (int i = 0; i < 3; ++i)
        live.runIteration();
    ASSERT_TRUE(live.submit({5, 9, 2, 13}, 4, 0,
                            Priority::Interactive)
                    .accepted());

    // Process crash: rebuild purely from the journal.
    RequestManager recovered(rig.engine.get(), cfg);
    std::stringstream journal_in(journal_buf.str());
    recovered.recover(nullptr, &journal_in);

    // The recovered bucket must meter exactly like the live one:
    // identical accept/reject decisions and retry-after hints for
    // an identical probe burst.
    for (int i = 0; i < 4; ++i) {
        SubmitResult a = live.submit({5, 9, 2, 20 + i}, 4, 0,
                                     Priority::Interactive);
        SubmitResult b = recovered.submit({5, 9, 2, 20 + i}, 4, 0,
                                          Priority::Interactive);
        EXPECT_EQ(a.accepted(), b.accepted()) << "probe " << i;
        EXPECT_EQ(a.retryAfterIterations, b.retryAfterIterations)
            << "probe " << i;
    }
    live.runUntilDrained();
    recovered.runUntilDrained();
    ASSERT_EQ(live.finished().size(), recovered.finished().size());
}

} // namespace
} // namespace runtime
} // namespace specinfer
