#include "runtime/request_manager.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "../model/test_models.h"
#include "model/model_factory.h"

namespace specinfer {
namespace runtime {
namespace {

using specinfer::testing::tinyLlm;

struct Fixture
{
    Fixture()
        : llm(tinyLlm()),
          ssm(model::makeEarlyExitSsm(llm, 2)),
          engine(&llm, {&ssm}, makeConfig())
    {
    }

    static core::EngineConfig
    makeConfig()
    {
        core::EngineConfig cfg = core::EngineConfig::greedyDefault();
        cfg.spec.expansion = core::ExpansionConfig::uniform(2, 4);
        cfg.maxNewTokens = 12;
        cfg.stopAtEos = false;
        return cfg;
    }

    model::Transformer llm;
    model::Transformer ssm;
    core::SpecEngine engine;
};

std::vector<int>
promptFor(int i)
{
    return {3 + i, 7, 2 + (i % 5), 9};
}

TEST(RequestManagerTest, SingleRequestMatchesEngine)
{
    Fixture f;
    RequestManager manager(&f.engine, {4});
    uint64_t id = manager.submit(promptFor(0));
    manager.runUntilDrained();
    ASSERT_EQ(manager.finished().size(), 1u);
    const RequestResult &res = manager.finished()[0];
    EXPECT_EQ(res.id, id);
    core::GenerationResult ref = f.engine.generate(promptFor(0), id);
    EXPECT_EQ(res.tokens, ref.tokens);
}

TEST(RequestManagerTest, BatchedOutputsMatchStandalone)
{
    // Continuous batching must not perturb any request's output:
    // each request decodes exactly as it would alone.
    Fixture f;
    RequestManager manager(&f.engine, {3});
    std::vector<uint64_t> ids;
    for (int i = 0; i < 7; ++i)
        ids.push_back(manager.submit(promptFor(i)));
    manager.runUntilDrained();
    ASSERT_EQ(manager.finished().size(), 7u);

    std::map<uint64_t, std::vector<int>> results;
    for (const RequestResult &res : manager.finished())
        results[res.id] = res.tokens;
    for (int i = 0; i < 7; ++i) {
        core::GenerationResult ref =
            f.engine.generate(promptFor(i), ids[i]);
        EXPECT_EQ(results[ids[i]], ref.tokens) << "request " << i;
    }
}

TEST(RequestManagerTest, RespectsMaxBatchSize)
{
    Fixture f;
    RequestManager manager(&f.engine, {2});
    for (int i = 0; i < 5; ++i)
        manager.submit(promptFor(i));
    manager.runIteration();
    EXPECT_EQ(manager.activeCount(), 2u);
    EXPECT_EQ(manager.pendingCount(), 3u);
}

TEST(RequestManagerTest, AdmitsMidFlight)
{
    // Iteration-level scheduling: a request submitted while a batch
    // is running joins as soon as a slot frees (or immediately if a
    // slot is free), without waiting for the batch to drain.
    Fixture f;
    RequestManager manager(&f.engine, {2});
    manager.submit(promptFor(0));
    manager.runIteration();
    EXPECT_EQ(manager.activeCount(), 1u);
    manager.submit(promptFor(1));
    manager.runIteration();
    EXPECT_EQ(manager.activeCount(), 2u);
}

TEST(RequestManagerTest, IterationCountsAndStats)
{
    Fixture f;
    RequestManager manager(&f.engine, {4});
    for (int i = 0; i < 3; ++i)
        manager.submit(promptFor(i));
    manager.runUntilDrained();
    const ServingStats &stats = manager.stats();
    EXPECT_EQ(stats.requestsSubmitted, 3u);
    EXPECT_EQ(stats.requestsFinished, 3u);
    EXPECT_EQ(stats.tokensGenerated, 3u * 12u);
    EXPECT_GT(stats.iterations, 0u);
    EXPECT_GT(stats.avgBatchSize(), 0.0);
    EXPECT_LE(stats.avgBatchSize(), 4.0);
}

TEST(RequestManagerTest, FinishTimingMonotone)
{
    Fixture f;
    RequestManager manager(&f.engine, {2});
    for (int i = 0; i < 4; ++i)
        manager.submit(promptFor(i));
    manager.runUntilDrained();
    for (const RequestResult &res : manager.finished()) {
        EXPECT_LE(res.arrivalIteration, res.startIteration);
        EXPECT_LE(res.startIteration, res.finishIteration);
        EXPECT_GE(res.serviceIterations(), 1u);
    }
}

TEST(RequestManagerTest, TakeFinishedDrains)
{
    Fixture f;
    RequestManager manager(&f.engine, {2});
    manager.submit(promptFor(0));
    manager.runUntilDrained();
    EXPECT_EQ(manager.takeFinished().size(), 1u);
    EXPECT_TRUE(manager.finished().empty());
}

TEST(RequestManagerTest, IdleIterationIsSafe)
{
    Fixture f;
    RequestManager manager(&f.engine, {2});
    EXPECT_FALSE(manager.busy());
    manager.runIteration();
    EXPECT_EQ(manager.iterationCount(), 1u);
    EXPECT_TRUE(manager.finished().empty());
}

TEST(RequestManagerTest, LateArrivalQueueAccounting)
{
    Fixture f;
    RequestManager manager(&f.engine, {1});
    manager.submit(promptFor(0));
    manager.submit(promptFor(1));
    manager.runUntilDrained();
    ASSERT_EQ(manager.finished().size(), 2u);
    const RequestResult &second = manager.finished()[1];
    // The second request had to queue behind the first.
    EXPECT_GT(second.startIteration, second.arrivalIteration);
}

TEST(RequestManagerTest, PerRequestTokenBudgetHonored)
{
    Fixture f;
    RequestManager manager(&f.engine, {2});
    uint64_t short_id = manager.submit(promptFor(0), 3);
    uint64_t long_id = manager.submit(promptFor(0));
    manager.runUntilDrained();
    ASSERT_EQ(manager.finished().size(), 2u);
    for (const RequestResult &res : manager.finished()) {
        if (res.id == short_id)
            EXPECT_EQ(res.tokens.size(), 3u);
        if (res.id == long_id)
            EXPECT_EQ(res.tokens.size(), 12u);
    }
}

TEST(RequestManagerDeathTest, RejectsZeroBatch)
{
    Fixture f;
    EXPECT_DEATH(RequestManager(&f.engine, {0}), "batch");
}

} // namespace
} // namespace runtime
} // namespace specinfer
