// The umbrella header must compile standalone and expose the whole
// public API.
#include "specinfer/specinfer.h"

#include <gtest/gtest.h>

namespace {

TEST(UmbrellaTest, EndToEndThroughSingleInclude)
{
    using namespace specinfer;
    model::Transformer llm =
        model::makeLlm(model::llmPreset("tiny"));
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);
    core::EngineConfig cfg = core::EngineConfig::greedyDefault();
    cfg.spec.expansion = core::ExpansionConfig::uniform(2, 3);
    cfg.maxNewTokens = 6;
    cfg.stopAtEos = false;
    core::SpecEngine engine(&llm, {&ssm}, cfg);
    core::GenerationResult res = engine.generate({1, 2, 3});
    EXPECT_EQ(res.tokens.size(), 6u);
}

} // namespace
