/**
 * @file
 * Cross-module integration tests: datasets -> engine -> request
 * manager -> traces -> simulator, exercising the same pipeline the
 * benchmark harnesses run, plus end-to-end consistency checks that
 * cut across module boundaries.
 */

#include <gtest/gtest.h>

#include "../model/test_models.h"
#include "model/model_factory.h"
#include "runtime/request_manager.h"
#include "simulator/system_model.h"
#include "workload/trace.h"

namespace specinfer {
namespace {

using specinfer::testing::tinyLlm;

struct Stack
{
    Stack()
        : llm(tinyLlm()),
          ssm(model::makeEarlyExitSsm(llm, 2)),
          dataset(workload::PromptDataset::named(
              "Alpaca", llm.config().vocabSize))
    {
    }

    core::EngineConfig
    engineConfig(bool stochastic) const
    {
        core::EngineConfig cfg =
            stochastic ? core::EngineConfig::stochasticDefault()
                       : core::EngineConfig::greedyDefault();
        cfg.spec.expansion = core::ExpansionConfig::uniform(2, 4);
        cfg.maxNewTokens = 16;
        cfg.stopAtEos = false;
        return cfg;
    }

    model::Transformer llm;
    model::Transformer ssm;
    workload::PromptDataset dataset;
};

TEST(ServingIntegrationTest, DatasetThroughEngineToProfile)
{
    Stack stack;
    core::SpecEngine engine(&stack.llm, {&stack.ssm},
                            stack.engineConfig(false));
    workload::RunConfig run;
    run.prompts = 4;
    workload::TraceAggregator agg =
        workload::runEngineOnDataset(engine, stack.dataset, run);
    simulator::SpeculationProfile profile =
        agg.profile(core::ExpansionConfig::uniform(2, 4));

    // The profile must be internally consistent with the traces.
    EXPECT_GE(profile.avgLlmTokensPerIter,
              profile.avgVerifiedPerIter);
    ASSERT_EQ(profile.ssmChunkSizes.size(), 5u);

    // And it must price sensibly through the simulator.
    simulator::SystemModel sim{simulator::GpuPerfModel(
        simulator::ClusterSpec::paperTestbed(1))};
    simulator::ServingScenario scenario;
    scenario.llm = simulator::LlmSpec::preset("llama-7b");
    scenario.ssm = simulator::LlmSpec::preset("llama-68m");
    scenario.plan = {1, 1};
    scenario.speculative = true;
    double spec_latency = sim.perTokenLatency(scenario, profile);
    scenario.speculative = false;
    double incr_latency = sim.perTokenLatency(
        scenario, simulator::SpeculationProfile::incremental());
    EXPECT_LT(spec_latency, incr_latency);
}

TEST(ServingIntegrationTest, ManagerTraceMatchesDirectRuns)
{
    // Aggregating traces through the request manager equals
    // aggregating direct engine runs with the same request seeds.
    Stack stack;
    core::SpecEngine engine(&stack.llm, {&stack.ssm},
                            stack.engineConfig(false));

    runtime::RequestManager manager(&engine, {3});
    std::vector<uint64_t> ids;
    for (size_t i = 0; i < 5; ++i)
        ids.push_back(manager.submit(stack.dataset.prompt(i)));
    manager.runUntilDrained();

    workload::TraceAggregator via_manager;
    for (const runtime::RequestResult &res : manager.finished())
        via_manager.add(res.stats);

    workload::TraceAggregator direct;
    for (size_t i = 0; i < 5; ++i)
        direct.add(engine.generate(stack.dataset.prompt(i), ids[i])
                       .stats);

    EXPECT_DOUBLE_EQ(via_manager.avgVerifiedPerStep(),
                     direct.avgVerifiedPerStep());
    EXPECT_EQ(via_manager.totalSteps(), direct.totalSteps());
}

TEST(ServingIntegrationTest, StochasticServingIsSeedDeterministic)
{
    Stack stack;
    core::SpecEngine engine(&stack.llm, {&stack.ssm},
                            stack.engineConfig(true));
    core::GenerationResult a =
        engine.generate(stack.dataset.prompt(0), 42);
    core::GenerationResult b =
        engine.generate(stack.dataset.prompt(0), 42);
    core::GenerationResult c =
        engine.generate(stack.dataset.prompt(0), 43);
    EXPECT_EQ(a.tokens, b.tokens);
    EXPECT_NE(a.tokens, c.tokens); // different seed, same prompt
}

TEST(ServingIntegrationTest, MixedConfigurationsShareModels)
{
    // Several engines (greedy/stochastic/adaptive/multi-SSM) can
    // share the same immutable weights concurrently.
    Stack stack;
    model::Transformer noisy =
        model::makeEarlyExitSsm(stack.llm, 2, 0.1f, 9);

    core::EngineConfig adaptive = stack.engineConfig(false);
    adaptive.spec.policy = core::ExpansionPolicy::AdaptiveMass;
    adaptive.spec.adaptiveMass = 0.6f;
    adaptive.spec.adaptiveMaxWidth = 3;

    core::SpecEngine greedy(&stack.llm, {&stack.ssm},
                            stack.engineConfig(false));
    core::SpecEngine stochastic(&stack.llm, {&stack.ssm},
                                stack.engineConfig(true));
    core::SpecEngine multi(&stack.llm, {&stack.ssm, &noisy},
                           stack.engineConfig(false));
    core::SpecEngine adapt(&stack.llm, {&stack.ssm}, adaptive);

    std::vector<int> prompt = stack.dataset.prompt(1);
    core::GenerationResult g = greedy.generate(prompt);
    core::GenerationResult s = stochastic.generate(prompt);
    core::GenerationResult m = multi.generate(prompt);
    core::GenerationResult a = adapt.generate(prompt);

    // Greedy-equivalence family: greedy, multi-SSM greedy, and
    // adaptive greedy all emit the same (lossless) tokens.
    EXPECT_EQ(g.tokens, m.tokens);
    EXPECT_EQ(g.tokens, a.tokens);
    EXPECT_EQ(g.tokens.size(), 16u);
    EXPECT_EQ(s.tokens.size(), 16u);
}

TEST(ServingIntegrationTest, AllDatasetsServeCleanly)
{
    Stack stack;
    core::SpecEngine engine(&stack.llm, {&stack.ssm},
                            stack.engineConfig(true));
    for (const std::string &name :
         workload::PromptDataset::allNames()) {
        workload::PromptDataset dataset =
            workload::PromptDataset::named(
                name, stack.llm.config().vocabSize);
        core::GenerationResult res =
            engine.generate(dataset.prompt(0));
        EXPECT_EQ(res.tokens.size(), 16u) << name;
        EXPECT_GE(res.stats.avgVerifiedPerStep(), 1.0) << name;
    }
}

} // namespace
} // namespace specinfer
