/**
 * @file
 * Property sweeps across the model-zoo presets: every preset pair
 * must satisfy the calibration band, the lossless guarantee, and
 * serialization round-trips — the properties the benchmark
 * harnesses depend on.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/spec_engine.h"
#include "model/model_factory.h"
#include "model/sampler.h"
#include "model/serialization.h"
#include "workload/datasets.h"

namespace specinfer {
namespace {

class PresetSweep : public ::testing::TestWithParam<const char *>
{
};

TEST_P(PresetSweep, AcceptanceInCalibratedBand)
{
    // Greedy top-1 agreement between the preset LLM and its
    // early-exit SSM must sit in the paper-calibrated band
    // (roughly 50-75%); a regression here silently distorts every
    // latency figure.
    model::Transformer llm =
        model::makeLlm(model::llmPreset(GetParam()));
    model::Transformer ssm = model::makeEarlyExitSsm(
        llm, llm.config().nLayers >= 12 ? 3 : 2);
    workload::PromptDataset dataset = workload::PromptDataset::named(
        "Alpaca", llm.config().vocabSize);

    size_t agree = 0, steps = 0;
    for (size_t pi = 0; pi < 4; ++pi) {
        std::vector<int> prompt = dataset.prompt(pi);
        model::KvCache lc = llm.makeCache();
        model::KvCache sc = ssm.makeCache();
        tensor::Tensor ll = llm.forward(
            model::DecodeChunk::sequence(prompt), lc);
        tensor::Tensor sl = ssm.forward(
            model::DecodeChunk::sequence(prompt), sc);
        const float *lrow = ll.row(prompt.size() - 1);
        const float *srow = sl.row(prompt.size() - 1);
        for (int g = 0; g < 24; ++g) {
            int lt = model::greedyToken(lrow,
                                        llm.config().vocabSize);
            int st = model::greedyToken(srow,
                                        ssm.config().vocabSize);
            agree += lt == st;
            ++steps;
            ll = llm.forward(model::DecodeChunk::single(lt), lc);
            sl = ssm.forward(model::DecodeChunk::single(lt), sc);
            lrow = ll.row(0);
            srow = sl.row(0);
        }
    }
    double rate = static_cast<double>(agree) /
                  static_cast<double>(steps);
    EXPECT_GT(rate, 0.45) << GetParam();
    EXPECT_LT(rate, 0.85) << GetParam();
}

TEST_P(PresetSweep, GreedyLossless)
{
    model::Transformer llm =
        model::makeLlm(model::llmPreset(GetParam()));
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);
    workload::PromptDataset dataset = workload::PromptDataset::named(
        "WebQA", llm.config().vocabSize);
    std::vector<int> prompt = dataset.prompt(1);

    model::SamplingParams greedy;
    greedy.temperature = 0.0f;
    util::Rng rng(1);
    core::GenerationResult ref = core::incrementalGenerate(
        llm, prompt, greedy, 16, rng, false);

    core::EngineConfig cfg = core::EngineConfig::greedyDefault();
    cfg.maxNewTokens = 16;
    cfg.stopAtEos = false;
    core::SpecEngine engine(&llm, {&ssm}, cfg);
    EXPECT_EQ(engine.generate(prompt).tokens, ref.tokens)
        << GetParam();
}

TEST_P(PresetSweep, SerializationRoundTrip)
{
    model::Transformer llm =
        model::makeLlm(model::llmPreset(GetParam()));
    std::stringstream buffer;
    model::saveModel(buffer, llm.config(), *llm.weights());
    model::Transformer restored = model::loadModel(buffer);
    model::KvCache ca = llm.makeCache();
    model::KvCache cb = restored.makeCache();
    tensor::Tensor la =
        llm.forward(model::DecodeChunk::sequence({1, 2, 3}), ca);
    tensor::Tensor lb = restored.forward(
        model::DecodeChunk::sequence({1, 2, 3}), cb);
    for (size_t i = 0; i < la.size(); ++i)
        ASSERT_EQ(la.data()[i], lb.data()[i]);
}

INSTANTIATE_TEST_SUITE_P(ModelZoo, PresetSweep,
                         ::testing::Values("llama-7b-sim",
                                           "opt-13b-sim",
                                           "opt-30b-sim",
                                           "llama-65b-sim"));

} // namespace
} // namespace specinfer
