/**
 * @file
 * KV-cache compaction property tests: after tree verification drops
 * rejected branches with keepRows(), all future decoding must be
 * indistinguishable from a cache built by decoding the accepted
 * sequence from scratch. This is the invariant that lets SpecInfer
 * reuse one shared cache across iterations (paper §4.2).
 */

#include <gtest/gtest.h>

#include "../model/test_models.h"
#include "model/model_factory.h"
#include "util/rng.h"

namespace specinfer {
namespace {

using specinfer::testing::randomPrompt;
using specinfer::testing::tinyLlm;

/**
 * Decode a random tree over a random prefix, keep a random
 * root-to-node path, and compare future logits against a fresh
 * cache holding prefix + kept tokens.
 */
class CompactionEquivalence : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(CompactionEquivalence, FutureDecodingUnaffected)
{
    model::Transformer llm = tinyLlm();
    util::Rng rng(GetParam() + 500);
    const size_t vocab = llm.config().vocabSize;

    std::vector<int> prefix =
        randomPrompt(rng, 2 + rng.uniformInt(uint64_t{8}), vocab);
    model::DecodeChunk tree =
        specinfer::testing::randomTreeChunk(
            rng, 3 + rng.uniformInt(uint64_t{8}), vocab);

    model::KvCache cache = llm.makeCache();
    llm.forward(model::DecodeChunk::sequence(prefix), cache);
    const size_t base = cache.length();
    llm.forward(tree, cache);

    // Pick a random node; its root-to-node path is the "accepted"
    // branch.
    size_t node = rng.uniformInt(static_cast<uint64_t>(tree.size()));
    std::vector<size_t> path;
    for (int32_t n = static_cast<int32_t>(node); n >= 0;
         n = tree.parents[static_cast<size_t>(n)])
        path.push_back(static_cast<size_t>(n));
    std::reverse(path.begin(), path.end());

    std::vector<size_t> keep;
    for (size_t s = 0; s < base; ++s)
        keep.push_back(s);
    for (size_t idx : path)
        keep.push_back(base + idx);
    cache.keepRows(keep);

    // Fresh cache: decode prefix + accepted tokens sequentially.
    std::vector<int> accepted_seq = prefix;
    for (size_t idx : path)
        accepted_seq.push_back(tree.tokens[idx]);
    model::KvCache fresh = llm.makeCache();
    llm.forward(model::DecodeChunk::sequence(accepted_seq), fresh);

    ASSERT_EQ(cache.length(), fresh.length());

    // Future decoding must agree bitwise.
    std::vector<int> future =
        randomPrompt(rng, 3, vocab);
    tensor::Tensor a = llm.forward(
        model::DecodeChunk::sequence(future), cache);
    tensor::Tensor b = llm.forward(
        model::DecodeChunk::sequence(future), fresh);
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a.data()[i], b.data()[i]);
}

INSTANTIATE_TEST_SUITE_P(PropertySweep, CompactionEquivalence,
                         ::testing::Range(uint64_t{0}, uint64_t{10}));

TEST(CompactionTest, RepeatedCompactionStaysConsistent)
{
    // Chain several speculate/keep cycles and compare against a
    // never-compacted sequential decode of the accepted stream.
    model::Transformer llm = tinyLlm();
    util::Rng rng(9000);
    const size_t vocab = llm.config().vocabSize;

    std::vector<int> seq = randomPrompt(rng, 4, vocab);
    model::KvCache cache = llm.makeCache();
    llm.forward(model::DecodeChunk::sequence(seq), cache);

    for (int round = 0; round < 4; ++round) {
        model::DecodeChunk tree =
            specinfer::testing::randomTreeChunk(rng, 6, vocab);
        const size_t base = cache.length();
        llm.forward(tree, cache);
        // Accept the path to a random leaf-ish node.
        size_t node = rng.uniformInt(uint64_t{6});
        std::vector<size_t> path;
        for (int32_t n = static_cast<int32_t>(node); n >= 0;
             n = tree.parents[static_cast<size_t>(n)])
            path.push_back(static_cast<size_t>(n));
        std::reverse(path.begin(), path.end());
        std::vector<size_t> keep;
        for (size_t s = 0; s < base; ++s)
            keep.push_back(s);
        for (size_t idx : path) {
            keep.push_back(base + idx);
            seq.push_back(tree.tokens[idx]);
        }
        cache.keepRows(keep);
    }

    model::KvCache fresh = llm.makeCache();
    llm.forward(model::DecodeChunk::sequence(seq), fresh);
    tensor::Tensor a =
        llm.forward(model::DecodeChunk::single(5), cache);
    tensor::Tensor b =
        llm.forward(model::DecodeChunk::single(5), fresh);
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a.data()[i], b.data()[i]);
}

} // namespace
} // namespace specinfer
