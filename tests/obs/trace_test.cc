/**
 * @file
 * Tracer and exporter tests: byte-exact golden Chrome trace output
 * under a ManualClock, determinism of a seeded 3-request serving
 * workload (two fresh runs must serialize identically), the
 * trace-JSON schema validator, and a Prometheus text-exposition
 * round trip through writePrometheus -> parsePrometheus.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "../model/test_models.h"
#include "core/spec_engine.h"
#include "model/model_factory.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "runtime/request_manager.h"

namespace specinfer {
namespace obs {
namespace {

TEST(ManualClockTest, DeterministicReadsAndSteps)
{
    ManualClock clock(100, 10);
    EXPECT_EQ(clock.nowNanos(), 100u); // auto_step applies *after*
    EXPECT_EQ(clock.nowNanos(), 110u);
    EXPECT_EQ(clock.reads(), 2u);
    clock.advance(5);
    EXPECT_EQ(clock.nowNanos(), 125u);
    clock.set(1000);
    EXPECT_EQ(clock.nowNanos(), 1000u);
    EXPECT_EQ(clock.reads(), 4u);
}

TEST(ManualClockTest, FrozenWithoutAutoStep)
{
    ManualClock clock(42);
    EXPECT_EQ(clock.nowNanos(), 42u);
    EXPECT_EQ(clock.nowNanos(), 42u);
}

TEST(TracerTest, DisabledTracerRecordsNothing)
{
    Tracer tracer(nullptr, false);
    tracer.span(1, "engine", "speculate", 0, 100, {{"tree", 4}});
    tracer.instant(0, "serving", "crash", 50);
    EXPECT_EQ(tracer.eventCount(), 0u);
}

/**
 * Golden byte-stable output: a hand-built event set must serialize
 * to exactly this string, byte for byte. Any change to the Chrome
 * trace writer shows up here first.
 */
TEST(TracerTest, GoldenChromeTraceBytes)
{
    ManualClock clock(0);
    Tracer tracer(&clock, true);
    tracer.span(7, "engine", "speculate", 1500, 4000,
                {{"tree", 16}, {"ssm_tokens", 4}});
    tracer.instant(0, "serving", "crash", 12'345'678);

    std::ostringstream out;
    tracer.writeChromeTrace(out);
    const std::string expected =
        "{\"traceEvents\":[\n"
        "{\"name\":\"speculate\",\"cat\":\"engine\",\"ph\":\"X\","
        "\"pid\":1,\"tid\":7,\"ts\":1.500,\"dur\":2.500,"
        "\"args\":{\"tree\":16,\"ssm_tokens\":4}},\n"
        "{\"name\":\"crash\",\"cat\":\"serving\",\"ph\":\"i\","
        "\"pid\":1,\"tid\":0,\"ts\":12345.678,\"s\":\"t\"}\n"
        ",{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
        "\"tid\":0,\"args\":{\"name\":\"specinfer\"}},\n"
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
        "\"tid\":0,\"args\":{\"name\":\"scheduler\"}}\n"
        "],\"displayTimeUnit\":\"ms\"}\n";
    EXPECT_EQ(out.str(), expected);

    std::string error;
    size_t events = 0;
    EXPECT_TRUE(validateChromeTrace(out.str(), &error, &events))
        << error;
    EXPECT_EQ(events, 4u); // 2 recorded + 2 metadata
}

TEST(TracerTest, EmptyTraceIsStillValid)
{
    ManualClock clock(0);
    Tracer tracer(&clock, true);
    std::ostringstream out;
    tracer.writeChromeTrace(out);
    const std::string expected =
        "{\"traceEvents\":[\n"
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
        "\"tid\":0,\"args\":{\"name\":\"specinfer\"}},\n"
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
        "\"tid\":0,\"args\":{\"name\":\"scheduler\"}}\n"
        "],\"displayTimeUnit\":\"ms\"}\n";
    EXPECT_EQ(out.str(), expected);
    std::string error;
    EXPECT_TRUE(validateChromeTrace(out.str(), &error)) << error;
}

TEST(TracerTest, EscapesJsonMetacharacters)
{
    ManualClock clock(0);
    Tracer tracer(&clock, true);
    tracer.span(1, "cat", "q\"uote\\back\nline", 0, 1000);
    std::ostringstream out;
    tracer.writeChromeTrace(out);
    EXPECT_NE(
        out.str().find("\"name\":\"q\\\"uote\\\\back\\nline\""),
        std::string::npos)
        << out.str();
    std::string error;
    EXPECT_TRUE(validateJson(out.str(), &error)) << error;
}

TEST(ValidatorTest, RejectsMalformedJson)
{
    std::string error;
    EXPECT_FALSE(validateJson("{", &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(validateJson("[1,2,]", &error));
    EXPECT_FALSE(validateJson("{\"a\":1} x", &error));
    EXPECT_TRUE(validateJson("{\"a\":[1,2,{\"b\":null}]}", &error))
        << error;
}

TEST(ValidatorTest, RejectsSchemaViolations)
{
    std::string error;
    EXPECT_FALSE(validateChromeTrace("{\"events\":[]}", &error));
    EXPECT_NE(error.find("traceEvents"), std::string::npos);
    // A span ('X') without a duration is malformed.
    EXPECT_FALSE(validateChromeTrace(
        "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\","
        "\"ts\":1}]}",
        &error));
    EXPECT_NE(error.find("dur"), std::string::npos);
    // An instant without a timestamp is malformed.
    EXPECT_FALSE(validateChromeTrace(
        "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"i\"}]}",
        &error));
    EXPECT_NE(error.find("ts"), std::string::npos);
}

// ---------------------------------------------------------------
// Seeded serving workload under ManualClock: the full serving stack
// (engine + request manager) instrumented through one ObsContext
// must produce a byte-identical trace on every run.
// ---------------------------------------------------------------

struct WorkloadResult
{
    std::string traceJson;
    size_t eventCount = 0;
    MetricsSnapshot metrics;
};

WorkloadResult
runSeededWorkload()
{
    ManualClock clock(0, 1000); // 1us per read, fully deterministic
    ObsContext ctx(&clock, /*tracing_enabled=*/true);

    model::Transformer llm = specinfer::testing::tinyLlm();
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);
    core::EngineConfig cfg = core::EngineConfig::greedyDefault();
    cfg.spec.expansion = core::ExpansionConfig::uniform(2, 4);
    cfg.maxNewTokens = 8;
    cfg.stopAtEos = false;
    cfg.maxPrefillChunk = 2; // force chunked prefill spans
    cfg.obs = &ctx;
    core::SpecEngine engine(&llm, {&ssm}, cfg);

    runtime::ServingConfig scfg;
    scfg.maxBatchSize = 2; // 3 requests on 2 slots: queueing shows
    scfg.obs = &ctx;
    runtime::RequestManager manager(&engine, scfg);
    for (int i = 0; i < 3; ++i)
        manager.submit({3 + i, 7, 2 + (i % 5), 9, 14, 6});
    manager.runUntilDrained();

    WorkloadResult result;
    std::ostringstream out;
    ctx.tracer().writeChromeTrace(out);
    result.traceJson = out.str();
    result.eventCount = ctx.tracer().eventCount();
    result.metrics = ctx.metrics().snapshot();
    return result;
}

TEST(WorkloadTraceTest, SeededWorkloadIsByteStable)
{
    WorkloadResult a = runSeededWorkload();
    WorkloadResult b = runSeededWorkload();
    EXPECT_EQ(a.traceJson, b.traceJson);
    EXPECT_EQ(a.eventCount, b.eventCount);
    EXPECT_TRUE(a.metrics == b.metrics);
    EXPECT_GT(a.eventCount, 0u);

    std::string error;
    size_t events = 0;
    ASSERT_TRUE(validateChromeTrace(a.traceJson, &error, &events))
        << error;
    EXPECT_EQ(events, a.eventCount + 2); // + process/thread metadata

    // The serving pipeline's lifecycle events must all be present.
    for (const char *name :
         {"\"name\":\"submit\"", "\"name\":\"queue\"",
          "\"name\":\"iteration\"", "\"name\":\"finish\"",
          "\"name\":\"speculate\"", "\"name\":\"tree_decode\"",
          "\"name\":\"verify\"", "\"name\":\"prefill\""})
        EXPECT_NE(a.traceJson.find(name), std::string::npos)
            << "missing event " << name;
}

TEST(WorkloadTraceTest, MetricsDescribeTheWorkload)
{
    WorkloadResult r = runSeededWorkload();
    const SnapshotGauge *finished =
        r.metrics.findGauge("serving_requests_finished");
    ASSERT_NE(finished, nullptr);
    EXPECT_EQ(finished->value, 3);
    const SnapshotGauge *submitted =
        r.metrics.findGauge("serving_requests_submitted");
    ASSERT_NE(submitted, nullptr);
    EXPECT_EQ(submitted->value, 3);
    const SnapshotGauge *iters =
        r.metrics.findGauge("serving_iterations");
    ASSERT_NE(iters, nullptr);
    EXPECT_GT(iters->value, 0);

    const SnapshotHistogram *lat =
        r.metrics.findHistogram("serving_iteration_millis");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->count, static_cast<uint64_t>(iters->value));

    // Engine-side token accounting agrees with serving-side stats:
    // every verified token the engine counted was generated.
    const SnapshotCounter *verified =
        r.metrics.findCounter("engine_tokens_verified");
    const SnapshotGauge *generated =
        r.metrics.findGauge("serving_tokens_generated");
    ASSERT_NE(verified, nullptr);
    ASSERT_NE(generated, nullptr);
    EXPECT_EQ(verified->value,
              static_cast<uint64_t>(generated->value));
    EXPECT_EQ(generated->value, 24); // 3 requests x 8 new tokens
}

// ---------------------------------------------------------------
// Prometheus text exposition round trip.
// ---------------------------------------------------------------

TEST(PrometheusTest, RoundTripPreservesSamples)
{
    MetricsRegistry reg;
    reg.counter("requests_total")->inc(41);
    reg.gauge("queue_depth")->set(-3);
    HistogramMetric *h = reg.histogram("latency", {0.5, 1.0, 5.0});
    h->observe(0.25);
    h->observe(1.0);
    h->observe(10.0);

    std::ostringstream out;
    writePrometheus(reg.snapshot(), out);

    std::istringstream in(out.str());
    std::string error;
    std::vector<PrometheusSample> samples =
        parsePrometheus(in, &error);
    ASSERT_TRUE(error.empty()) << error;

    auto find = [&](const std::string &name,
                    const std::string &labels) ->
        const PrometheusSample * {
        for (const PrometheusSample &s : samples)
            if (s.name == name && s.labels == labels)
                return &s;
        return nullptr;
    };

    const PrometheusSample *c = find("requests_total", "");
    ASSERT_NE(c, nullptr);
    EXPECT_DOUBLE_EQ(c->value, 41.0);
    const PrometheusSample *g = find("queue_depth", "");
    ASSERT_NE(g, nullptr);
    EXPECT_DOUBLE_EQ(g->value, -3.0);

    // Histogram buckets are cumulative with a terminal +Inf.
    const PrometheusSample *b0 =
        find("latency_bucket", "le=\"0.5\"");
    const PrometheusSample *b1 = find("latency_bucket", "le=\"1\"");
    const PrometheusSample *b2 = find("latency_bucket", "le=\"5\"");
    const PrometheusSample *binf =
        find("latency_bucket", "le=\"+Inf\"");
    ASSERT_NE(b0, nullptr);
    ASSERT_NE(b1, nullptr);
    ASSERT_NE(b2, nullptr);
    ASSERT_NE(binf, nullptr);
    EXPECT_DOUBLE_EQ(b0->value, 1.0);
    EXPECT_DOUBLE_EQ(b1->value, 2.0);
    EXPECT_DOUBLE_EQ(b2->value, 2.0);
    EXPECT_DOUBLE_EQ(binf->value, 3.0);
    const PrometheusSample *count = find("latency_count", "");
    const PrometheusSample *sum = find("latency_sum", "");
    ASSERT_NE(count, nullptr);
    ASSERT_NE(sum, nullptr);
    EXPECT_DOUBLE_EQ(count->value, 3.0);
    EXPECT_DOUBLE_EQ(sum->value, 11.25);
}

TEST(PrometheusTest, ExpositionIsByteStable)
{
    WorkloadResult r = runSeededWorkload();
    std::ostringstream a, b;
    writePrometheus(r.metrics, a);
    writePrometheus(r.metrics, b);
    EXPECT_EQ(a.str(), b.str());

    std::istringstream in(a.str());
    std::string error;
    std::vector<PrometheusSample> samples =
        parsePrometheus(in, &error);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_FALSE(samples.empty());
}

TEST(PrometheusTest, ParserRejectsMalformedLines)
{
    std::string error;
    std::istringstream bad("metric_without_value\n");
    parsePrometheus(bad, &error);
    EXPECT_FALSE(error.empty());

    error.clear();
    std::istringstream bad2("name{le=\"0.5\" 1\n"); // unclosed brace
    parsePrometheus(bad2, &error);
    EXPECT_FALSE(error.empty());
}

} // namespace
} // namespace obs
} // namespace specinfer
