/**
 * @file
 * Overhead guard: observability must never change what the system
 * computes.
 *
 *  - Generation and serving outputs are bit-identical across all
 *    three obs modes (no context / metrics-only / full tracing),
 *    preserving the differential-oracle guarantees of earlier PRs.
 *  - The engine decode path makes *zero* clock reads when tracing
 *    is off (metrics-only mode stays off the hot path).
 *  - Crash recovery with tracing enabled reproduces the exact
 *    outputs of an uninstrumented uninterrupted run, and the
 *    recovered run's metrics/trace are byte-reproducible.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "../model/test_models.h"
#include "core/spec_engine.h"
#include "model/model_factory.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "runtime/journal.h"
#include "runtime/request_manager.h"

namespace specinfer {
namespace obs {
namespace {

using specinfer::testing::tinyLlm;

core::EngineConfig
engineConfig(ObsContext *ctx)
{
    core::EngineConfig cfg = core::EngineConfig::greedyDefault();
    cfg.spec.expansion = core::ExpansionConfig::uniform(2, 4);
    cfg.maxNewTokens = 10;
    cfg.stopAtEos = false;
    cfg.obs = ctx;
    return cfg;
}

std::vector<int>
promptFor(int i)
{
    return {4 + i, 19, 3 + (i % 6), 8};
}

std::map<uint64_t, std::vector<int>>
finishedMap(const runtime::RequestManager &manager)
{
    std::map<uint64_t, std::vector<int>> out;
    for (const runtime::RequestResult &res : manager.finished())
        out[res.id] = res.tokens;
    return out;
}

TEST(OverheadGuardTest, GenerationBitIdenticalAcrossObsModes)
{
    model::Transformer llm = tinyLlm();
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);

    // Mode 1: fully uninstrumented (the pre-obs configuration).
    core::SpecEngine plain(&llm, {&ssm}, engineConfig(nullptr));
    // Mode 2: metrics only, tracing off.
    ManualClock clock_m(0, 1000);
    ObsContext metrics_only(&clock_m, /*tracing_enabled=*/false);
    core::SpecEngine metered(&llm, {&ssm},
                             engineConfig(&metrics_only));
    // Mode 3: metrics + tracing.
    ManualClock clock_t(0, 1000);
    ObsContext traced_ctx(&clock_t, /*tracing_enabled=*/true);
    core::SpecEngine traced(&llm, {&ssm}, engineConfig(&traced_ctx));

    for (int i = 0; i < 4; ++i) {
        core::GenerationResult a =
            plain.generate(promptFor(i), /*request_seed=*/i);
        core::GenerationResult b =
            metered.generate(promptFor(i), i);
        core::GenerationResult c =
            traced.generate(promptFor(i), i);
        EXPECT_EQ(b.tokens, a.tokens) << "metrics-only, prompt " << i;
        EXPECT_EQ(c.tokens, a.tokens) << "traced, prompt " << i;
        EXPECT_EQ(b.logProbs, a.logProbs);
        EXPECT_EQ(c.logProbs, a.logProbs);
    }

    // Metrics-only mode never touches the clock on the decode path;
    // tracing mode timed spans, so it read the clock.
    EXPECT_EQ(clock_m.reads(), 0u);
    EXPECT_GT(clock_t.reads(), 0u);
    EXPECT_GT(traced_ctx.tracer().eventCount(), 0u);
    EXPECT_GT(
        metrics_only.metrics().counter("engine_tokens_verified")
            ->value(),
        0u);
}

TEST(OverheadGuardTest, ServingBitIdenticalAcrossObsModes)
{
    model::Transformer llm = tinyLlm();
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);

    auto runMode = [&](ObsContext *ctx) {
        core::SpecEngine engine(&llm, {&ssm}, engineConfig(ctx));
        runtime::ServingConfig cfg;
        cfg.maxBatchSize = 2;
        cfg.obs = ctx;
        runtime::RequestManager manager(&engine, cfg);
        for (int i = 0; i < 5; ++i)
            manager.submit(promptFor(i));
        manager.runUntilDrained();
        return finishedMap(manager);
    };

    std::map<uint64_t, std::vector<int>> plain = runMode(nullptr);

    ManualClock clock_m(0, 1000);
    ObsContext metrics_only(&clock_m, false);
    EXPECT_EQ(runMode(&metrics_only), plain);

    ManualClock clock_t(0, 1000);
    ObsContext traced(&clock_t, true);
    EXPECT_EQ(runMode(&traced), plain);
    EXPECT_GT(traced.tracer().eventCount(), 0u);
}

TEST(OverheadGuardTest, GlobalContextResolvesWithoutPerturbing)
{
    model::Transformer llm = tinyLlm();
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);

    // Reference: no obs anywhere.
    core::SpecEngine plain(&llm, {&ssm}, engineConfig(nullptr));
    core::GenerationResult ref = plain.generate(promptFor(0), 0);

    // Same workload with a process-global context installed and no
    // explicit pointer: everything resolves through globalObs(),
    // including the transformer's per-phase kernel counters.
    ManualClock clock(0); // frozen: pool workers may read it too
    ObsContext ctx(&clock, true);
    ObsContext *prev = setGlobalObs(&ctx);
    core::SpecEngine global_engine(&llm, {&ssm},
                                   engineConfig(nullptr));
    core::GenerationResult out = global_engine.generate(
        promptFor(0), 0);
    setGlobalObs(prev);

    EXPECT_EQ(out.tokens, ref.tokens);
    EXPECT_EQ(out.logProbs, ref.logProbs);
    EXPECT_GT(
        ctx.metrics().counter("model_kernel_launches")->value(), 0u);
    EXPECT_GT(ctx.tracer().eventCount(), 0u);
}

// ----------------------------------------------------------------
// Crash/recovery with observability enabled.
// ----------------------------------------------------------------

struct RecoveredRun
{
    std::map<uint64_t, std::vector<int>> finished;
    MetricsSnapshot metrics;
    std::string trace;
};

/**
 * Journal a 2-request run for 4 iterations, "crash" (drop the live
 * manager), then rebuild from the journal bytes under a *fresh*
 * fully-traced ObsContext, submit 2 late requests, and drain.
 */
RecoveredRun
runCrashRecoverWorkload()
{
    model::Transformer llm = tinyLlm();
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);
    runtime::ServingConfig cfg;
    cfg.maxBatchSize = 3;

    // Phase 1: the doomed live manager (uninstrumented — it dies).
    std::string journal_bytes;
    {
        core::SpecEngine engine(&llm, {&ssm}, engineConfig(nullptr));
        runtime::RequestManager live(&engine, cfg);
        std::stringstream journal_buf;
        runtime::JournalWriter journal(journal_buf);
        live.attachJournal(&journal);
        for (int i = 0; i < 2; ++i)
            EXPECT_TRUE(live.submit(promptFor(i)).accepted());
        for (int it = 0; it < 4; ++it)
            live.runIteration();
        journal_bytes = journal_buf.str();
    }

    // Phase 2: recover under full instrumentation.
    ManualClock clock(0, 1000);
    ObsContext ctx(&clock, true);
    core::SpecEngine engine(&llm, {&ssm}, engineConfig(&ctx));
    runtime::ServingConfig rcfg = cfg;
    rcfg.obs = &ctx;
    runtime::RequestManager recovered(&engine, rcfg);
    std::stringstream journal2_buf;
    runtime::JournalWriter journal2(journal2_buf);
    recovered.attachJournal(&journal2);
    std::stringstream journal_in(journal_bytes);
    recovered.recover(nullptr, &journal_in);
    for (int i = 2; i < 4; ++i)
        EXPECT_TRUE(recovered.submit(promptFor(i)).accepted());
    recovered.runUntilDrained();

    RecoveredRun run;
    run.finished = finishedMap(recovered);
    run.metrics = ctx.metrics().snapshot();
    std::ostringstream trace_out;
    ctx.tracer().writeChromeTrace(trace_out);
    run.trace = trace_out.str();
    return run;
}

TEST(OverheadGuardTest, TracedRecoveryMatchesUninterruptedRun)
{
    RecoveredRun run = runCrashRecoverWorkload();

    // Uninstrumented, uninterrupted reference run.
    model::Transformer llm = tinyLlm();
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);
    core::SpecEngine engine(&llm, {&ssm}, engineConfig(nullptr));
    runtime::ServingConfig cfg;
    cfg.maxBatchSize = 3;
    runtime::RequestManager reference(&engine, cfg);
    for (int i = 0; i < 2; ++i)
        ASSERT_TRUE(reference.submit(promptFor(i)).accepted());
    for (int it = 0; it < 4; ++it)
        reference.runIteration();
    for (int i = 2; i < 4; ++i)
        ASSERT_TRUE(reference.submit(promptFor(i)).accepted());
    reference.runUntilDrained();

    // Tracing through recovery changed nothing about the outputs.
    EXPECT_EQ(run.finished, finishedMap(reference));

    // The recovered run's metrics agree with its own outputs and
    // record the recovery itself as an event-time counter.
    const SnapshotGauge *finished =
        run.metrics.findGauge("serving_requests_finished");
    ASSERT_NE(finished, nullptr);
    EXPECT_EQ(static_cast<size_t>(finished->value),
              run.finished.size());
    const SnapshotCounter *recoveries =
        run.metrics.findCounter("serving_recoveries");
    ASSERT_NE(recoveries, nullptr);
    EXPECT_EQ(recoveries->value, 1u);

    std::string error;
    EXPECT_TRUE(validateChromeTrace(run.trace, &error)) << error;
    EXPECT_NE(run.trace.find("\"name\":\"recovered\""),
              std::string::npos);
}

TEST(OverheadGuardTest, RecoveredMetricsAndTraceAreReproducible)
{
    // Two independent crash/recover executions under ManualClock
    // must agree byte-for-byte: same metrics snapshot (gauge sync is
    // idempotent under replay) and same serialized trace.
    RecoveredRun a = runCrashRecoverWorkload();
    RecoveredRun b = runCrashRecoverWorkload();
    EXPECT_EQ(a.finished, b.finished);
    EXPECT_TRUE(a.metrics == b.metrics);
    EXPECT_EQ(a.trace, b.trace);

    std::ostringstream pa, pb;
    writePrometheus(a.metrics, pa);
    writePrometheus(b.metrics, pb);
    EXPECT_EQ(pa.str(), pb.str());
}

} // namespace
} // namespace obs
} // namespace specinfer
