/**
 * @file
 * MetricsRegistry unit and property tests: counter/gauge semantics,
 * histogram bucket-edge determinism, snapshot isolation, and a
 * concurrency hammer driven from ThreadPool workers with exact
 * expected totals (run under the TSan preset in CI).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "util/threadpool.h"

namespace specinfer {
namespace obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates)
{
    MetricsRegistry reg;
    Counter *c = reg.counter("events");
    EXPECT_EQ(c->value(), 0u);
    c->inc();
    c->inc(41);
    EXPECT_EQ(c->value(), 42u);
}

TEST(CounterTest, SameNameSameInstrument)
{
    MetricsRegistry reg;
    Counter *a = reg.counter("shared");
    Counter *b = reg.counter("shared");
    EXPECT_EQ(a, b);
    a->inc(3);
    EXPECT_EQ(b->value(), 3u);
    EXPECT_EQ(reg.instrumentCount(), 1u);
}

TEST(GaugeTest, SetAddSub)
{
    MetricsRegistry reg;
    Gauge *g = reg.gauge("depth");
    EXPECT_EQ(g->value(), 0);
    g->set(10);
    g->add(5);
    g->sub(7);
    EXPECT_EQ(g->value(), 8);
    g->set(-3); // gauges are signed levels
    EXPECT_EQ(g->value(), -3);
}

TEST(HistogramTest, BucketEdgeIsDeterministic)
{
    HistogramMetric h({1.0, 2.0, 5.0});
    // Prometheus le-semantics: v == bound lands in the bucket whose
    // upper bound it is, never the next one.
    EXPECT_EQ(h.bucketFor(0.5), 0u);
    EXPECT_EQ(h.bucketFor(1.0), 0u);
    EXPECT_EQ(h.bucketFor(1.0000001), 1u);
    EXPECT_EQ(h.bucketFor(2.0), 1u);
    EXPECT_EQ(h.bucketFor(5.0), 2u);
    EXPECT_EQ(h.bucketFor(5.0000001), 3u); // overflow bucket
    EXPECT_EQ(h.bucketCount(), 4u);
}

TEST(HistogramTest, EdgePropertySweep)
{
    // Property: for every bound b, observing exactly b and the next
    // representable double above b land in adjacent buckets.
    const std::vector<double> bounds = {0.01, 0.1, 1.0, 10.0, 100.0};
    HistogramMetric h(bounds);
    for (size_t i = 0; i < bounds.size(); ++i) {
        const double b = bounds[i];
        const double above =
            std::nextafter(b, std::numeric_limits<double>::infinity());
        EXPECT_EQ(h.bucketFor(b), i) << "bound " << b;
        EXPECT_EQ(h.bucketFor(above), i + 1) << "above bound " << b;
    }
}

TEST(HistogramTest, ObserveCountsAndSum)
{
    MetricsRegistry reg;
    HistogramMetric *h = reg.histogram("lat", {1.0, 10.0});
    h->observe(0.5);
    h->observe(1.0);
    h->observe(7.0);
    h->observe(100.0);
    EXPECT_EQ(h->bucketValue(0), 2u); // 0.5, 1.0
    EXPECT_EQ(h->bucketValue(1), 1u); // 7.0
    EXPECT_EQ(h->bucketValue(2), 1u); // 100.0 (overflow)
    EXPECT_EQ(h->count(), 4u);
    EXPECT_DOUBLE_EQ(h->sum(), 108.5);
}

TEST(HistogramTest, EmptyBoundsAllOverflow)
{
    HistogramMetric h({});
    h.observe(1.0);
    h.observe(-1.0);
    EXPECT_EQ(h.bucketCount(), 1u);
    EXPECT_EQ(h.bucketValue(0), 2u);
}

TEST(RegistryTest, HistogramBoundsMustMatch)
{
    MetricsRegistry reg;
    HistogramMetric *h = reg.histogram("lat", {1.0, 2.0});
    EXPECT_EQ(reg.histogram("lat", {1.0, 2.0}), h);
    EXPECT_DEATH(reg.histogram("lat", {1.0, 3.0}), "bounds");
}

TEST(RegistryTest, KindMismatchAborts)
{
    MetricsRegistry reg;
    reg.counter("x");
    EXPECT_DEATH(reg.gauge("x"), "kind");
}

TEST(SnapshotTest, IsolatedFromLaterWrites)
{
    MetricsRegistry reg;
    Counter *c = reg.counter("c");
    Gauge *g = reg.gauge("g");
    HistogramMetric *h = reg.histogram("h", {1.0});
    c->inc(5);
    g->set(7);
    h->observe(0.5);

    MetricsSnapshot snap = reg.snapshot();
    // Mutate everything after the snapshot.
    c->inc(100);
    g->set(-1);
    h->observe(2.0);

    ASSERT_NE(snap.findCounter("c"), nullptr);
    EXPECT_EQ(snap.findCounter("c")->value, 5u);
    ASSERT_NE(snap.findGauge("g"), nullptr);
    EXPECT_EQ(snap.findGauge("g")->value, 7);
    const SnapshotHistogram *sh = snap.findHistogram("h");
    ASSERT_NE(sh, nullptr);
    EXPECT_EQ(sh->count, 1u);
    ASSERT_EQ(sh->counts.size(), 2u);
    EXPECT_EQ(sh->counts[0], 1u);
    EXPECT_EQ(sh->counts[1], 0u);

    // A second snapshot sees the later writes; the first does not
    // change (deep copy, no aliasing).
    MetricsSnapshot snap2 = reg.snapshot();
    EXPECT_EQ(snap2.findCounter("c")->value, 105u);
    EXPECT_EQ(snap.findCounter("c")->value, 5u);
    EXPECT_FALSE(snap == snap2);
    EXPECT_TRUE(snap == snap); // reflexive equality
}

TEST(SnapshotTest, SortedByNameWithinKind)
{
    MetricsRegistry reg;
    reg.counter("zeta");
    reg.counter("alpha");
    reg.gauge("mid");
    MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 2u);
    EXPECT_EQ(snap.counters[0].name, "alpha");
    EXPECT_EQ(snap.counters[1].name, "zeta");
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_EQ(snap.gauges[0].name, "mid");
}

/**
 * Concurrency hammer: every ThreadPool worker slams the same
 * counter, gauge, and histogram; the totals must be exact (no lost
 * updates). TSan runs this too — the instruments must be race-free
 * by construction, not by luck.
 */
TEST(ConcurrencyTest, PoolHammerExactTotals)
{
    MetricsRegistry reg;
    Counter *c = reg.counter("hammer_c");
    Gauge *g = reg.gauge("hammer_g");
    HistogramMetric *h =
        reg.histogram("hammer_h", {10.0, 100.0, 1000.0});

    util::ThreadPool pool(4);
    const size_t kIters = 50'000;
    pool.parallelFor(0, kIters, [&](size_t i) {
        c->inc(2);
        g->add(1);
        h->observe(static_cast<double>(i % 2000));
    });

    EXPECT_EQ(c->value(), 2 * kIters);
    EXPECT_EQ(g->value(), static_cast<int64_t>(kIters));
    EXPECT_EQ(h->count(), kIters);
    // i % 2000 sweep: 0..10 -> bucket 0 (11 values per cycle),
    // 11..100 -> bucket 1 (90), 101..1000 -> bucket 2 (900),
    // 1001..1999 -> overflow (999). 25 full cycles of 2000.
    const uint64_t cycles = kIters / 2000;
    EXPECT_EQ(h->bucketValue(0), 11 * cycles);
    EXPECT_EQ(h->bucketValue(1), 90 * cycles);
    EXPECT_EQ(h->bucketValue(2), 900 * cycles);
    EXPECT_EQ(h->bucketValue(3), 999 * cycles);
    // Sum of 0..1999 per cycle, exact in double.
    EXPECT_DOUBLE_EQ(h->sum(),
                     static_cast<double>(cycles) *
                         (1999.0 * 2000.0 / 2.0));
}

/** Registration itself raced from workers: same name from every
 *  thread must converge on one instrument. */
TEST(ConcurrencyTest, ConcurrentRegistrationConverges)
{
    MetricsRegistry reg;
    util::ThreadPool pool(4);
    pool.parallelFor(0, 1000, [&](size_t) {
        reg.counter("same_name")->inc();
    });
    EXPECT_EQ(reg.instrumentCount(), 1u);
    EXPECT_EQ(reg.counter("same_name")->value(), 1000u);
}

} // namespace
} // namespace obs
} // namespace specinfer
