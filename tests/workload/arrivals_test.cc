#include "workload/arrivals.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace specinfer {
namespace workload {
namespace {

TEST(ArrivalsTest, PoissonIsDeterministicPerSeed)
{
    auto a = poissonArrivals(20, 3.0, 1);
    auto b = poissonArrivals(20, 3.0, 1);
    auto c = poissonArrivals(20, 3.0, 2);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(ArrivalsTest, PoissonNonDecreasingWithRightMean)
{
    auto arrivals = poissonArrivals(4000, 5.0, 9);
    ASSERT_EQ(arrivals.size(), 4000u);
    for (size_t i = 1; i < arrivals.size(); ++i)
        ASSERT_GE(arrivals[i], arrivals[i - 1]);
    // Mean gap ~ 5 iterations (last arrival near 5 * count).
    double mean_gap = static_cast<double>(arrivals.back()) / 4000.0;
    EXPECT_NEAR(mean_gap, 5.0, 0.4);
}

TEST(ArrivalsTest, UniformSpacing)
{
    auto arrivals = uniformArrivals(5, 2.5);
    EXPECT_EQ(arrivals,
              (std::vector<size_t>{0, 2, 5, 7, 10}));
}

TEST(ArrivalsTest, BurstAllAtZero)
{
    auto arrivals = burstArrivals(3);
    EXPECT_EQ(arrivals, (std::vector<size_t>{0, 0, 0}));
}

TEST(ArrivalsDeathTest, RejectsBadGap)
{
    EXPECT_DEATH(poissonArrivals(3, 0.0, 1), "positive");
    EXPECT_DEATH(uniformArrivals(3, -1.0), "non-negative");
}

} // namespace
} // namespace workload
} // namespace specinfer
