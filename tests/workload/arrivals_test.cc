#include "workload/arrivals.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace specinfer {
namespace workload {
namespace {

TEST(ArrivalsTest, PoissonIsDeterministicPerSeed)
{
    auto a = poissonArrivals(20, 3.0, 1);
    auto b = poissonArrivals(20, 3.0, 1);
    auto c = poissonArrivals(20, 3.0, 2);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(ArrivalsTest, PoissonNonDecreasingWithRightMean)
{
    auto arrivals = poissonArrivals(4000, 5.0, 9);
    ASSERT_EQ(arrivals.size(), 4000u);
    for (size_t i = 1; i < arrivals.size(); ++i)
        ASSERT_GE(arrivals[i], arrivals[i - 1]);
    // Mean gap ~ 5 iterations (last arrival near 5 * count).
    double mean_gap = static_cast<double>(arrivals.back()) / 4000.0;
    EXPECT_NEAR(mean_gap, 5.0, 0.4);
}

TEST(ArrivalsTest, UniformSpacing)
{
    auto arrivals = uniformArrivals(5, 2.5);
    EXPECT_EQ(arrivals,
              (std::vector<size_t>{0, 2, 5, 7, 10}));
}

TEST(ArrivalsTest, BurstAllAtZero)
{
    auto arrivals = burstArrivals(3);
    EXPECT_EQ(arrivals, (std::vector<size_t>{0, 0, 0}));
}

TEST(ArrivalsTest, BurstyMultiTenantIsDeterministicAndOrdered)
{
    auto a = burstyMultiTenantArrivals(200, 4, 6.0, 3.0, 7);
    auto b = burstyMultiTenantArrivals(200, 4, 6.0, 3.0, 7);
    ASSERT_EQ(a.size(), 200u);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].iteration, b[i].iteration);
        EXPECT_EQ(a[i].tenant, b[i].tenant);
        ASSERT_LT(a[i].tenant, 4u);
        if (i > 0) {
            ASSERT_GE(a[i].iteration, a[i - 1].iteration);
        }
    }
}

TEST(ArrivalsTest, BurstyArrivalsActuallyBurst)
{
    // Bursts land several same-tenant requests on one iteration, so
    // with mean burst 4 there must be adjacent same-iteration
    // same-tenant pairs — the shape prefix sharing exploits.
    auto arrivals = burstyMultiTenantArrivals(300, 4, 8.0, 4.0, 11);
    size_t same = 0;
    for (size_t i = 1; i < arrivals.size(); ++i) {
        if (arrivals[i].iteration == arrivals[i - 1].iteration &&
            arrivals[i].tenant == arrivals[i - 1].tenant)
            ++same;
    }
    EXPECT_GT(same, 50u);
}

TEST(ArrivalsTest, BurstSizeOneDegeneratesToPoisson)
{
    auto arrivals = burstyMultiTenantArrivals(100, 2, 5.0, 1.0, 3);
    ASSERT_EQ(arrivals.size(), 100u);
    for (size_t i = 1; i < arrivals.size(); ++i)
        ASSERT_GE(arrivals[i].iteration, arrivals[i - 1].iteration);
}

TEST(ArrivalsDeathTest, RejectsBadGap)
{
    EXPECT_DEATH(poissonArrivals(3, 0.0, 1), "positive");
    EXPECT_DEATH(uniformArrivals(3, -1.0), "non-negative");
    EXPECT_DEATH(burstyMultiTenantArrivals(3, 0, 5.0, 2.0, 1),
                 "tenant");
    EXPECT_DEATH(burstyMultiTenantArrivals(3, 2, 5.0, 0.5, 1),
                 "at least one");
}

} // namespace
} // namespace workload
} // namespace specinfer
