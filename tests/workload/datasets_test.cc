#include "workload/datasets.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace specinfer {
namespace workload {
namespace {

constexpr size_t kVocab = 512;

TEST(DatasetsTest, FiveNamedPresets)
{
    const auto &names = PromptDataset::allNames();
    ASSERT_EQ(names.size(), 5u);
    for (const std::string &name : names) {
        PromptDataset dataset = PromptDataset::named(name, kVocab);
        EXPECT_EQ(dataset.name(), name);
        EXPECT_EQ(dataset.vocabSize(), kVocab);
    }
}

TEST(DatasetsTest, PromptsAreDeterministic)
{
    PromptDataset a = PromptDataset::named("Alpaca", kVocab);
    PromptDataset b = PromptDataset::named("Alpaca", kVocab);
    for (size_t i = 0; i < 10; ++i)
        EXPECT_EQ(a.prompt(i), b.prompt(i));
}

TEST(DatasetsTest, DistinctIndicesDiffer)
{
    PromptDataset ds = PromptDataset::named("CP", kVocab);
    EXPECT_NE(ds.prompt(0), ds.prompt(1));
}

TEST(DatasetsTest, DatasetsDiffer)
{
    PromptDataset a = PromptDataset::named("Alpaca", kVocab);
    PromptDataset b = PromptDataset::named("PIQA", kVocab);
    EXPECT_NE(a.prompt(0), b.prompt(0));
}

TEST(DatasetsTest, TokensInRangeAndNoEos)
{
    for (const std::string &name : PromptDataset::allNames()) {
        PromptDataset ds = PromptDataset::named(name, kVocab);
        for (size_t i = 0; i < 20; ++i) {
            std::vector<int> prompt = ds.prompt(i);
            ASSERT_GE(prompt.size(), 2u);
            for (int tok : prompt) {
                ASSERT_GT(tok, 0) << name;
                ASSERT_LT(tok, static_cast<int>(kVocab));
            }
        }
    }
}

TEST(DatasetsTest, LengthStatisticsMatchPreset)
{
    // WebQA prompts (short questions) must be shorter on average
    // than PIQA prompts (long goals).
    util::RunningStat webqa, piqa;
    PromptDataset w = PromptDataset::named("WebQA", kVocab);
    PromptDataset p = PromptDataset::named("PIQA", kVocab);
    for (size_t i = 0; i < 200; ++i) {
        webqa.add(static_cast<double>(w.prompt(i).size()));
        piqa.add(static_cast<double>(p.prompt(i).size()));
    }
    EXPECT_NEAR(webqa.mean(), 9.0, 2.0);
    EXPECT_NEAR(piqa.mean(), 28.0, 4.0);
    EXPECT_LT(webqa.mean(), piqa.mean());
}

TEST(DatasetsTest, TokenFrequenciesAreSkewed)
{
    // Zipfian weights: the most common token should appear far more
    // often than the median token.
    PromptDataset ds = PromptDataset::named("WebQA", kVocab);
    std::vector<size_t> counts(kVocab, 0);
    size_t total = 0;
    for (size_t i = 0; i < 400; ++i) {
        for (int tok : ds.prompt(i)) {
            ++counts[static_cast<size_t>(tok)];
            ++total;
        }
    }
    size_t peak = 0;
    for (size_t c : counts)
        peak = std::max(peak, c);
    EXPECT_GT(static_cast<double>(peak) / total, 0.02);
}

TEST(DatasetsDeathTest, UnknownNameIsFatal)
{
    EXPECT_EXIT(PromptDataset::named("MMLU", kVocab),
                ::testing::ExitedWithCode(1), "unknown dataset");
}

} // namespace
} // namespace workload
} // namespace specinfer
