#include "workload/datasets.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace specinfer {
namespace workload {
namespace {

constexpr size_t kVocab = 512;

TEST(DatasetsTest, FiveNamedPresets)
{
    const auto &names = PromptDataset::allNames();
    ASSERT_EQ(names.size(), 5u);
    for (const std::string &name : names) {
        PromptDataset dataset = PromptDataset::named(name, kVocab);
        EXPECT_EQ(dataset.name(), name);
        EXPECT_EQ(dataset.vocabSize(), kVocab);
    }
}

TEST(DatasetsTest, PromptsAreDeterministic)
{
    PromptDataset a = PromptDataset::named("Alpaca", kVocab);
    PromptDataset b = PromptDataset::named("Alpaca", kVocab);
    for (size_t i = 0; i < 10; ++i)
        EXPECT_EQ(a.prompt(i), b.prompt(i));
}

TEST(DatasetsTest, DistinctIndicesDiffer)
{
    PromptDataset ds = PromptDataset::named("CP", kVocab);
    EXPECT_NE(ds.prompt(0), ds.prompt(1));
}

TEST(DatasetsTest, DatasetsDiffer)
{
    PromptDataset a = PromptDataset::named("Alpaca", kVocab);
    PromptDataset b = PromptDataset::named("PIQA", kVocab);
    EXPECT_NE(a.prompt(0), b.prompt(0));
}

TEST(DatasetsTest, TokensInRangeAndNoEos)
{
    for (const std::string &name : PromptDataset::allNames()) {
        PromptDataset ds = PromptDataset::named(name, kVocab);
        for (size_t i = 0; i < 20; ++i) {
            std::vector<int> prompt = ds.prompt(i);
            ASSERT_GE(prompt.size(), 2u);
            for (int tok : prompt) {
                ASSERT_GT(tok, 0) << name;
                ASSERT_LT(tok, static_cast<int>(kVocab));
            }
        }
    }
}

TEST(DatasetsTest, LengthStatisticsMatchPreset)
{
    // WebQA prompts (short questions) must be shorter on average
    // than PIQA prompts (long goals).
    util::RunningStat webqa, piqa;
    PromptDataset w = PromptDataset::named("WebQA", kVocab);
    PromptDataset p = PromptDataset::named("PIQA", kVocab);
    for (size_t i = 0; i < 200; ++i) {
        webqa.add(static_cast<double>(w.prompt(i).size()));
        piqa.add(static_cast<double>(p.prompt(i).size()));
    }
    EXPECT_NEAR(webqa.mean(), 9.0, 2.0);
    EXPECT_NEAR(piqa.mean(), 28.0, 4.0);
    EXPECT_LT(webqa.mean(), piqa.mean());
}

TEST(DatasetsTest, TokenFrequenciesAreSkewed)
{
    // Zipfian weights: the most common token should appear far more
    // often than the median token.
    PromptDataset ds = PromptDataset::named("WebQA", kVocab);
    std::vector<size_t> counts(kVocab, 0);
    size_t total = 0;
    for (size_t i = 0; i < 400; ++i) {
        for (int tok : ds.prompt(i)) {
            ++counts[static_cast<size_t>(tok)];
            ++total;
        }
    }
    size_t peak = 0;
    for (size_t c : counts)
        peak = std::max(peak, c);
    EXPECT_GT(static_cast<double>(peak) / total, 0.02);
}

TEST(SharedPrefixDatasetTest, SameTenantSharesWholePrefix)
{
    SharedPrefixDataset ds("tenants", kVocab, 4, 32, 32, 12.0, 4.0);
    EXPECT_EQ(ds.prefixTokens(), 64u);
    // Find two request indices landing on the same tenant.
    size_t i = 0, j = 1;
    while (ds.tenantOf(j) != ds.tenantOf(i))
        ++j;
    std::vector<int> a = ds.prompt(i);
    std::vector<int> b = ds.prompt(j);
    ASSERT_GE(a.size(), 64u + 2u);
    EXPECT_TRUE(std::equal(a.begin(), a.begin() + 64, b.begin()));
    // Suffixes stay unique per request.
    EXPECT_NE(a, b);
}

TEST(SharedPrefixDatasetTest, CrossTenantSharesOnlyCommonContext)
{
    SharedPrefixDataset ds = SharedPrefixDataset::rag(kVocab, 4, 64);
    // rag: 48 common tokens + 16 per-tenant tokens.
    EXPECT_EQ(ds.prefixTokens(), 64u);
    std::vector<int> p0 = ds.tenantPrefix(0);
    std::vector<int> p1 = ds.tenantPrefix(1);
    ASSERT_EQ(p0.size(), 64u);
    EXPECT_TRUE(std::equal(p0.begin(), p0.begin() + 48, p1.begin()));
    EXPECT_NE(p0, p1);
}

TEST(SharedPrefixDatasetTest, ChatHasNoCommonContext)
{
    SharedPrefixDataset ds = SharedPrefixDataset::chat(kVocab, 3, 40);
    EXPECT_EQ(ds.prefixTokens(), 40u);
    std::vector<int> p0 = ds.tenantPrefix(0);
    std::vector<int> p1 = ds.tenantPrefix(1);
    EXPECT_NE(std::vector<int>(p0.begin(), p0.begin() + 8),
              std::vector<int>(p1.begin(), p1.begin() + 8));
}

TEST(SharedPrefixDatasetTest, DeterministicAndInRange)
{
    SharedPrefixDataset a = SharedPrefixDataset::chat(kVocab, 4, 32);
    SharedPrefixDataset b = SharedPrefixDataset::chat(kVocab, 4, 32);
    for (size_t i = 0; i < 16; ++i) {
        std::vector<int> prompt = a.prompt(i);
        EXPECT_EQ(prompt, b.prompt(i));
        EXPECT_EQ(a.tenantOf(i), b.tenantOf(i));
        for (int tok : prompt) {
            ASSERT_GT(tok, 0);
            ASSERT_LT(tok, static_cast<int>(kVocab));
        }
    }
}

TEST(SharedPrefixDatasetTest, AllTenantsReachable)
{
    SharedPrefixDataset ds = SharedPrefixDataset::chat(kVocab, 4, 16);
    std::vector<bool> seen(ds.tenants(), false);
    for (size_t i = 0; i < 64; ++i)
        seen[ds.tenantOf(i)] = true;
    for (size_t t = 0; t < seen.size(); ++t)
        EXPECT_TRUE(seen[t]) << "tenant " << t << " never drawn";
}

TEST(DatasetsDeathTest, UnknownNameIsFatal)
{
    EXPECT_EXIT(PromptDataset::named("MMLU", kVocab),
                ::testing::ExitedWithCode(1), "unknown dataset");
}

} // namespace
} // namespace workload
} // namespace specinfer
