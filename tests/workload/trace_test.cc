#include "workload/trace.h"

#include <gtest/gtest.h>

#include "../model/test_models.h"
#include "model/model_factory.h"

namespace specinfer {
namespace workload {
namespace {

using specinfer::testing::tinyLlm;

core::SpecStats
statsOf(std::vector<core::StepRecord> steps)
{
    core::SpecStats stats;
    stats.steps = std::move(steps);
    return stats;
}

TEST(TraceAggregatorTest, AveragesAcrossSteps)
{
    TraceAggregator agg;
    agg.add(statsOf({{10, 3, 11, 12}, {10, 1, 11, 12}}));
    agg.add(statsOf({{10, 2, 11, 12}}));
    EXPECT_EQ(agg.requests(), 2u);
    EXPECT_EQ(agg.totalSteps(), 3u);
    EXPECT_DOUBLE_EQ(agg.avgVerifiedPerStep(), 2.0);
    EXPECT_DOUBLE_EQ(agg.avgLlmTokensPerStep(), 11.0);
    EXPECT_DOUBLE_EQ(agg.avgSsmTokensPerStep(), 12.0);
}

TEST(TraceAggregatorTest, PerRequestSamples)
{
    TraceAggregator agg;
    agg.add(statsOf({{5, 4, 6, 6}, {5, 2, 6, 6}}));
    agg.add(statsOf({{5, 1, 6, 6}}));
    ASSERT_EQ(agg.perRequestVerified().size(), 2u);
    EXPECT_DOUBLE_EQ(agg.perRequestVerified()[0], 3.0);
    EXPECT_DOUBLE_EQ(agg.perRequestVerified()[1], 1.0);
}

TEST(TraceAggregatorTest, ProfileReflectsMeasurements)
{
    TraceAggregator agg;
    // Tree size 10 out of maxNodes 20 -> deflation 0.5.
    agg.add(statsOf({{10, 2, 12, 9}, {10, 2, 12, 9}}));
    core::ExpansionConfig expansion =
        core::ExpansionConfig::paperDefault();
    simulator::SpeculationProfile profile = agg.profile(expansion);
    EXPECT_DOUBLE_EQ(profile.avgVerifiedPerIter, 2.0);
    EXPECT_DOUBLE_EQ(profile.avgLlmTokensPerIter, 12.0);
    // Catch-up level + 8 expansion levels.
    ASSERT_EQ(profile.ssmChunkSizes.size(), 9u);
    EXPECT_DOUBLE_EQ(profile.ssmChunkSizes[0], 2.0);
    // Frontier at the wide level: 3 * 0.5 deflation = 1.5.
    EXPECT_DOUBLE_EQ(profile.ssmChunkSizes[3], 1.5);
}

TEST(TraceAggregatorTest, ProfileClampsToOneToken)
{
    TraceAggregator agg;
    agg.add(statsOf({{0, 1, 1, 0}}));
    simulator::SpeculationProfile profile =
        agg.profile(core::ExpansionConfig::none());
    EXPECT_DOUBLE_EQ(profile.avgVerifiedPerIter, 1.0);
    ASSERT_EQ(profile.ssmChunkSizes.size(), 1u);
}

TEST(TraceAggregatorDeathTest, EmptyTraceProfileIsFatal)
{
    TraceAggregator agg;
    EXPECT_DEATH(agg.profile(core::ExpansionConfig::paperDefault()),
                 "empty trace");
}

TEST(RunEngineOnDatasetTest, RunsRequestedPrompts)
{
    model::Transformer llm = tinyLlm();
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);
    core::EngineConfig cfg = core::EngineConfig::greedyDefault();
    cfg.spec.expansion = core::ExpansionConfig::uniform(1, 4);
    cfg.maxNewTokens = 8;
    cfg.stopAtEos = false;
    core::SpecEngine engine(&llm, {&ssm}, cfg);
    PromptDataset dataset =
        PromptDataset::named("Alpaca", llm.config().vocabSize);
    RunConfig run;
    run.prompts = 3;
    TraceAggregator agg = runEngineOnDataset(engine, dataset, run);
    EXPECT_EQ(agg.requests(), 3u);
    EXPECT_GT(agg.totalSteps(), 0u);
    EXPECT_GE(agg.avgVerifiedPerStep(), 1.0);
}

TEST(RunEngineOnDatasetTest, DeterministicAcrossCalls)
{
    model::Transformer llm = tinyLlm();
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);
    core::EngineConfig cfg = core::EngineConfig::greedyDefault();
    cfg.spec.expansion = core::ExpansionConfig::uniform(2, 3);
    cfg.maxNewTokens = 8;
    cfg.stopAtEos = false;
    core::SpecEngine engine(&llm, {&ssm}, cfg);
    PromptDataset dataset =
        PromptDataset::named("CIP", llm.config().vocabSize);
    RunConfig run;
    run.prompts = 2;
    TraceAggregator a = runEngineOnDataset(engine, dataset, run);
    TraceAggregator b = runEngineOnDataset(engine, dataset, run);
    EXPECT_EQ(a.avgVerifiedPerStep(), b.avgVerifiedPerStep());
    EXPECT_EQ(a.totalSteps(), b.totalSteps());
}

} // namespace
} // namespace workload
} // namespace specinfer
