/**
 * @file
 * Generation output details: per-token log-probabilities and stop
 * sequences.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "../model/test_models.h"
#include "core/spec_engine.h"
#include "model/model_factory.h"

namespace specinfer {
namespace core {
namespace {

using specinfer::testing::tinyLlm;

struct Fixture
{
    Fixture() : llm(tinyLlm()), ssm(model::makeEarlyExitSsm(llm, 2))
    {
    }

    EngineConfig
    config() const
    {
        EngineConfig cfg = EngineConfig::greedyDefault();
        cfg.spec.expansion = ExpansionConfig::uniform(2, 3);
        cfg.maxNewTokens = 12;
        cfg.stopAtEos = false;
        return cfg;
    }

    model::Transformer llm;
    model::Transformer ssm;
};

TEST(LogProbsTest, ParallelToTokensAndFinite)
{
    Fixture f;
    SpecEngine engine(&f.llm, {&f.ssm}, f.config());
    GenerationResult res = engine.generate({3, 7, 11});
    ASSERT_EQ(res.logProbs.size(), res.tokens.size());
    for (float lp : res.logProbs) {
        EXPECT_LE(lp, 0.0f);
        EXPECT_TRUE(std::isfinite(lp));
    }
}

TEST(LogProbsTest, MatchesIncrementalReference)
{
    // Speculative decoding must report the same log-probabilities
    // that incremental decoding computes at each position.
    Fixture f;
    std::vector<int> prompt = {9, 4, 2, 17};
    SpecEngine engine(&f.llm, {&f.ssm}, f.config());
    GenerationResult spec = engine.generate(prompt);

    model::SamplingParams greedy;
    greedy.temperature = 0.0f;
    util::Rng rng(1);
    GenerationResult ref = incrementalGenerate(
        f.llm, prompt, greedy, 12, rng, false);

    ASSERT_EQ(spec.tokens, ref.tokens);
    ASSERT_EQ(spec.logProbs.size(), ref.logProbs.size());
    for (size_t i = 0; i < spec.logProbs.size(); ++i)
        EXPECT_NEAR(spec.logProbs[i], ref.logProbs[i], 1e-5f);
}

TEST(LogProbsTest, GreedyTokensHaveHighestLogProb)
{
    // Under greedy decoding every emitted token is the argmax, so
    // its probability is at least 1/vocab.
    Fixture f;
    SpecEngine engine(&f.llm, {&f.ssm}, f.config());
    GenerationResult res = engine.generate({5, 5, 5});
    const float floor = std::log(
        1.0f / static_cast<float>(f.llm.config().vocabSize));
    for (float lp : res.logProbs)
        EXPECT_GT(lp, floor);
}

TEST(StopSequenceTest, StopsAtSingleTokenSequence)
{
    Fixture f;
    // Learn what the model generates, then stop at the 3rd token.
    SpecEngine probe(&f.llm, {&f.ssm}, f.config());
    GenerationResult full = probe.generate({8, 1, 6});
    ASSERT_GE(full.tokens.size(), 4u);

    EngineConfig cfg = f.config();
    cfg.stopSequences = {{full.tokens[2]}};
    SpecEngine engine(&f.llm, {&f.ssm}, cfg);
    SpecSession session = engine.makeSession({8, 1, 6});
    while (!session.done())
        session.step();
    EXPECT_EQ(session.generated(),
              std::vector<int>(full.tokens.begin(),
                               full.tokens.begin() + 3));
    EXPECT_EQ(session.stopReason(),
              SpecSession::StopReason::StopSequence);
}

TEST(StopSequenceTest, MultiTokenMatchAcrossIterations)
{
    // A two-token stop sequence straddling verification steps must
    // still be found.
    Fixture f;
    SpecEngine probe(&f.llm, {&f.ssm}, f.config());
    GenerationResult full = probe.generate({2, 4, 8});
    ASSERT_GE(full.tokens.size(), 5u);

    EngineConfig cfg = f.config();
    cfg.stopSequences = {{full.tokens[2], full.tokens[3]}};
    SpecEngine engine(&f.llm, {&f.ssm}, cfg);
    SpecSession session = engine.makeSession({2, 4, 8});
    while (!session.done())
        session.step();
    EXPECT_EQ(session.generated(),
              std::vector<int>(full.tokens.begin(),
                               full.tokens.begin() + 4));
}

TEST(StopSequenceTest, NonMatchingSequenceHasNoEffect)
{
    Fixture f;
    EngineConfig cfg = f.config();
    // A sequence that cannot appear (same token 13 times exceeds
    // the budget window oddity) — use an implausible long pattern.
    cfg.stopSequences = {{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}};
    SpecEngine engine(&f.llm, {&f.ssm}, cfg);
    SpecEngine plain(&f.llm, {&f.ssm}, f.config());
    EXPECT_EQ(engine.generate({7, 7, 7}).tokens,
              plain.generate({7, 7, 7}).tokens);
}

TEST(StopSequenceTest, EmptyStopSequenceIgnored)
{
    Fixture f;
    EngineConfig cfg = f.config();
    cfg.stopSequences = {{}};
    SpecEngine engine(&f.llm, {&f.ssm}, cfg);
    GenerationResult res = engine.generate({6, 6, 6});
    EXPECT_EQ(res.tokens.size(), 12u);
}

} // namespace
} // namespace core
} // namespace specinfer
