#include "core/spec_engine.h"

#include <gtest/gtest.h>

#include <cmath>

#include "../model/test_models.h"
#include "model/model_factory.h"

namespace specinfer {
namespace core {
namespace {

using specinfer::testing::randomPrompt;
using specinfer::testing::tinyConfig;
using specinfer::testing::tinyLlm;

/** Greedy engine config with the given expansion. */
EngineConfig
greedyConfig(ExpansionConfig expansion, size_t max_new = 24)
{
    EngineConfig cfg = EngineConfig::greedyDefault();
    cfg.spec.expansion = std::move(expansion);
    cfg.maxNewTokens = max_new;
    cfg.stopAtEos = false;
    return cfg;
}

/**
 * Losslessness (the paper's core guarantee for greedy decoding):
 * tree-based speculative inference emits token-for-token the same
 * sequence as incremental greedy decoding, for any SSM pool and any
 * expansion configuration.
 */
class GreedyLossless : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(GreedyLossless, MatchesIncrementalDecoding)
{
    model::Transformer llm = tinyLlm();
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);
    util::Rng prompt_rng(GetParam());
    std::vector<int> prompt = randomPrompt(
        prompt_rng, 3 + prompt_rng.uniformInt(uint64_t{8}),
        llm.config().vocabSize);

    model::SamplingParams greedy;
    greedy.temperature = 0.0f;
    util::Rng ref_rng(1);
    GenerationResult ref = incrementalGenerate(
        llm, prompt, greedy, 24, ref_rng, /*stop_at_eos=*/false);

    const ExpansionConfig configs[] = {
        ExpansionConfig::paperDefault(),
        ExpansionConfig::uniform(1, 8),
        ExpansionConfig::uniform(2, 4),
        ExpansionConfig::widthAtThird(4, 6),
    };
    for (const ExpansionConfig &expansion : configs) {
        SpecEngine engine(&llm, {&ssm}, greedyConfig(expansion));
        GenerationResult got =
            engine.generate(prompt, GetParam());
        EXPECT_EQ(got.tokens, ref.tokens)
            << "expansion " << expansion.toString();
    }
}

INSTANTIATE_TEST_SUITE_P(PropertySweep, GreedyLossless,
                         ::testing::Range(uint64_t{0}, uint64_t{6}));

TEST(SpecEngineTest, MultiSsmGreedyStillLossless)
{
    model::Transformer llm = tinyLlm();
    model::Transformer ssm1 = model::makeEarlyExitSsm(llm, 2);
    model::Transformer ssm2 =
        model::makeEarlyExitSsm(llm, 1, 0.2f, 5);
    std::vector<int> prompt = {3, 14, 9, 2};

    model::SamplingParams greedy;
    greedy.temperature = 0.0f;
    util::Rng ref_rng(1);
    GenerationResult ref = incrementalGenerate(
        llm, prompt, greedy, 20, ref_rng, false);

    EngineConfig cfg = greedyConfig(ExpansionConfig::uniform(2, 5),
                                    20);
    SpecEngine engine(&llm, {&ssm1, &ssm2}, cfg);
    GenerationResult got = engine.generate(prompt);
    EXPECT_EQ(got.tokens, ref.tokens);
}

TEST(SpecEngineTest, IncrementalModeMatchesReference)
{
    // Empty expansion = the paper's "SpecInfer w/ incremental
    // decoding" ablation; must equal Algorithm 1 exactly.
    model::Transformer llm = tinyLlm();
    std::vector<int> prompt = {7, 7, 7};
    model::SamplingParams greedy;
    greedy.temperature = 0.0f;
    util::Rng ref_rng(1);
    GenerationResult ref = incrementalGenerate(
        llm, prompt, greedy, 16, ref_rng, false);

    EngineConfig cfg = greedyConfig(ExpansionConfig::none(), 16);
    SpecEngine engine(&llm, {}, cfg);
    GenerationResult got = engine.generate(prompt);
    EXPECT_EQ(got.tokens, ref.tokens);
    // Incremental mode decodes exactly one token per step.
    for (const StepRecord &s : got.stats.steps)
        EXPECT_EQ(s.verifiedTokens, 1u);
}

TEST(SpecEngineTest, SpeculationAcceleratesGreedyDecoding)
{
    // The whole point: fewer LLM steps than generated tokens.
    model::Transformer llm = tinyLlm();
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);
    EngineConfig cfg =
        greedyConfig(ExpansionConfig::paperDefault(), 32);
    SpecEngine engine(&llm, {&ssm}, cfg);
    std::vector<int> prompt = {5, 12, 31, 2, 18};
    GenerationResult res = engine.generate(prompt);
    EXPECT_EQ(res.tokens.size(), 32u);
    EXPECT_LT(res.stats.llmSteps(), 32u);
    EXPECT_GT(res.stats.avgVerifiedPerStep(), 1.0);
}

TEST(SpecEngineTest, StatsAreInternallyConsistent)
{
    model::Transformer llm = tinyLlm();
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);
    EngineConfig cfg =
        greedyConfig(ExpansionConfig::paperDefault(), 20);
    SpecEngine engine(&llm, {&ssm}, cfg);
    GenerationResult res = engine.generate({4, 4, 4, 4});
    EXPECT_EQ(res.stats.totalGenerated(), res.tokens.size());
    for (const StepRecord &s : res.stats.steps) {
        EXPECT_GE(s.verifiedTokens, 1u);
        // Each step the LLM decodes the tree plus the catch-up.
        EXPECT_GE(s.llmChunkTokens, s.treeSize + 1);
        EXPECT_GT(s.ssmTokensDecoded, 0u);
    }
}

TEST(SpecEngineTest, MaxNewTokensRespected)
{
    model::Transformer llm = tinyLlm();
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);
    EngineConfig cfg = greedyConfig(ExpansionConfig::uniform(1, 8), 5);
    SpecEngine engine(&llm, {&ssm}, cfg);
    GenerationResult res = engine.generate({9, 9, 9});
    EXPECT_EQ(res.tokens.size(), 5u);
}

TEST(SpecEngineTest, EosTruncatesOutput)
{
    model::Transformer llm = tinyLlm();
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);
    EngineConfig cfg = EngineConfig::stochasticDefault(2.0f);
    cfg.maxNewTokens = 48;
    cfg.stopAtEos = true;
    SpecEngine engine(&llm, {&ssm}, cfg);
    // Over several seeds, every EOS that appears must be final.
    bool saw_eos = false;
    for (uint64_t seed = 0; seed < 8; ++seed) {
        GenerationResult res = engine.generate({1, 2, 3}, seed);
        for (size_t i = 0; i < res.tokens.size(); ++i) {
            if (res.tokens[i] == llm.config().eosToken) {
                EXPECT_EQ(i + 1, res.tokens.size());
                saw_eos = true;
            }
        }
    }
    // With temperature 2 over 8 runs of 48 tokens, EOS (1/96-ish
    // per step) should have appeared at least once.
    EXPECT_TRUE(saw_eos);
}

TEST(SpecEngineTest, SessionStepMatchesGenerate)
{
    model::Transformer llm = tinyLlm();
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);
    EngineConfig cfg =
        greedyConfig(ExpansionConfig::paperDefault(), 12);
    SpecEngine engine(&llm, {&ssm}, cfg);
    std::vector<int> prompt = {8, 6, 7};
    GenerationResult whole = engine.generate(prompt, 3);
    SpecSession session = engine.makeSession(prompt, 3);
    size_t steps = 0;
    while (!session.done()) {
        session.step();
        ++steps;
    }
    EXPECT_EQ(session.generated(), whole.tokens);
    EXPECT_EQ(steps, whole.stats.llmSteps());
    EXPECT_NE(session.stopReason(),
              SpecSession::StopReason::None);
}

TEST(SpecEngineTest, CapacityLimitStopsCleanly)
{
    model::ModelConfig cfg = tinyConfig();
    cfg.maxSeqLen = 48;
    model::Transformer llm = model::makeLlm(cfg);
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);
    EngineConfig ecfg =
        greedyConfig(ExpansionConfig::paperDefault(), 1000);
    SpecEngine engine(&llm, {&ssm}, ecfg);
    SpecSession session = engine.makeSession({1, 2, 3, 4});
    while (!session.done())
        session.step();
    EXPECT_EQ(session.stopReason(),
              SpecSession::StopReason::CapacityLimit);
    EXPECT_LT(session.sequence().size(), cfg.maxSeqLen);
}

TEST(SpecEngineTest, StochasticPreservesLlmDistribution)
{
    // End-to-end Theorem 4.2: the marginal of the first generated
    // token under tree speculation + MSS equals the marginal under
    // incremental stochastic decoding, on a real (tiny) model.
    model::ModelConfig cfg = tinyConfig(321);
    cfg.vocabSize = 16;
    cfg.dModel = 16;
    cfg.nHeads = 2;
    cfg.dFf = 32;
    cfg.nLayers = 2;
    model::Transformer llm = model::makeLlm(cfg);
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 1);

    EngineConfig ecfg = EngineConfig::stochasticDefault(1.0f);
    ecfg.spec.expansion = {{2, 2}};
    ecfg.maxNewTokens = 1;
    ecfg.stopAtEos = false;
    SpecEngine engine(&llm, {&ssm}, ecfg);

    const std::vector<int> prompt = {3, 8, 1, 12};
    const int trials = 6000;
    std::vector<double> engine_counts(cfg.vocabSize, 0.0);
    std::vector<double> ref_counts(cfg.vocabSize, 0.0);

    model::SamplingParams params;
    params.temperature = 1.0f;
    util::Rng ref_rng(77);
    for (int t = 0; t < trials; ++t) {
        GenerationResult got =
            engine.generate(prompt, static_cast<uint64_t>(t));
        engine_counts[static_cast<size_t>(got.tokens[0])] += 1.0;
        GenerationResult ref = incrementalGenerate(
            llm, prompt, params, 1, ref_rng, false);
        ref_counts[static_cast<size_t>(ref.tokens[0])] += 1.0;
    }
    double tvd = 0.0;
    for (size_t c = 0; c < cfg.vocabSize; ++c)
        tvd += std::abs(engine_counts[c] - ref_counts[c]) / trials;
    EXPECT_LT(0.5 * tvd, 0.05);
}

TEST(SpecEngineDeathTest, SpeculativeModeNeedsSsm)
{
    model::Transformer llm = tinyLlm();
    EngineConfig cfg = greedyConfig(ExpansionConfig::paperDefault());
    EXPECT_DEATH(SpecEngine(&llm, {}, cfg), "SSM");
}

TEST(SpecEngineDeathTest, VocabulariesMustMatch)
{
    model::Transformer llm = tinyLlm();
    model::ModelConfig other = tinyConfig();
    other.vocabSize = 32;
    model::Transformer alien = model::makeLlm(other);
    EngineConfig cfg = greedyConfig(ExpansionConfig::uniform(1, 2));
    EXPECT_DEATH(SpecEngine(&llm, {&alien}, cfg), "vocab");
}

} // namespace
} // namespace core
} // namespace specinfer
