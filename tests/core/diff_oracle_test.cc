/**
 * @file
 * Differential oracle tests: exercise the src/verify harness from
 * the tier-1 suite so equivalence regressions fail in ctest with a
 * seed-exact repro, plus explicit greedy-equality and stop-sequence
 * parity cases at fixed configurations.
 */

#include <gtest/gtest.h>

#include <vector>

#include "../model/test_models.h"
#include "core/spec_engine.h"
#include "model/model_factory.h"
#include "verify/diff_harness.h"

namespace specinfer {
namespace core {
namespace {

using specinfer::testing::randomPrompt;
using specinfer::testing::tinyLlm;

/** Greedy engine over the tiny model with the given expansion. */
GenerationResult
runEngine(const model::Transformer &llm,
          std::vector<const model::Transformer *> ssms,
          EngineConfig cfg, const std::vector<int> &prompt)
{
    SpecEngine engine(&llm, std::move(ssms), cfg);
    return engine.generate(prompt, /*request_seed=*/7);
}

TEST(DiffOracle, GreedyEqualityAcrossExpansions)
{
    model::Transformer llm = tinyLlm();
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);
    util::Rng prompt_rng(11);
    std::vector<int> prompt =
        randomPrompt(prompt_rng, 9, llm.config().vocabSize);

    model::SamplingParams greedy;
    greedy.temperature = 0.0f;
    util::Rng ref_rng(1);
    GenerationResult ref = incrementalGenerate(
        llm, prompt, greedy, 20, ref_rng, /*stop_at_eos=*/false);

    const ExpansionConfig expansions[] = {
        ExpansionConfig::none(),       // incremental mode: <>
        ExpansionConfig::uniform(1, 1),
        [] {
            ExpansionConfig e;
            e.widths = {4, 2, 1};
            return e;
        }(),
    };
    for (const ExpansionConfig &expansion : expansions) {
        EngineConfig cfg = EngineConfig::greedyDefault();
        cfg.spec.expansion = expansion;
        cfg.maxNewTokens = 20;
        cfg.stopAtEos = false;
        std::vector<const model::Transformer *> pool;
        if (expansion.steps() > 0)
            pool.push_back(&ssm);
        GenerationResult got = runEngine(llm, pool, cfg, prompt);
        EXPECT_EQ(got.tokens, ref.tokens)
            << "expansion " << expansion.toString();
    }
}

TEST(DiffOracle, GreedyEqualityWithMergedMultiSsmTrees)
{
    model::Transformer llm = tinyLlm();
    model::Transformer ssm_a = model::makeEarlyExitSsm(llm, 1);
    model::Transformer ssm_b =
        model::makeEarlyExitSsm(llm, 2, /*head_noise_std=*/0.1f,
                                /*noise_seed=*/5);
    util::Rng prompt_rng(23);
    std::vector<int> prompt =
        randomPrompt(prompt_rng, 12, llm.config().vocabSize);

    model::SamplingParams greedy;
    greedy.temperature = 0.0f;
    util::Rng ref_rng(1);
    GenerationResult ref = incrementalGenerate(
        llm, prompt, greedy, 18, ref_rng, /*stop_at_eos=*/false);

    EngineConfig cfg = EngineConfig::greedyDefault();
    cfg.spec.expansion = ExpansionConfig::uniform(2, 3);
    cfg.maxNewTokens = 18;
    cfg.stopAtEos = false;
    GenerationResult got =
        runEngine(llm, {&ssm_a, &ssm_b}, cfg, prompt);
    EXPECT_EQ(got.tokens, ref.tokens);
}

TEST(DiffOracle, StopSequenceParityWithIncremental)
{
    model::Transformer llm = tinyLlm();
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);
    util::Rng prompt_rng(31);
    std::vector<int> prompt =
        randomPrompt(prompt_rng, 8, llm.config().vocabSize);

    model::SamplingParams greedy;
    greedy.temperature = 0.0f;

    // Derive a stop sequence that genuinely fires: a window of the
    // unconstrained output.
    util::Rng pre_rng(1);
    GenerationResult pre = incrementalGenerate(
        llm, prompt, greedy, 20, pre_rng, /*stop_at_eos=*/false);
    ASSERT_GE(pre.tokens.size(), 6u);
    std::vector<int> stop(pre.tokens.begin() + 3,
                          pre.tokens.begin() + 5);

    util::Rng ref_rng(2);
    GenerationResult ref = incrementalGenerate(
        llm, prompt, greedy, 20, ref_rng, /*stop_at_eos=*/false,
        {stop});
    ASSERT_LT(ref.tokens.size(), pre.tokens.size())
        << "stop sequence did not shorten the oracle output";

    EngineConfig cfg = EngineConfig::greedyDefault();
    cfg.spec.expansion = ExpansionConfig::uniform(2, 3);
    cfg.maxNewTokens = 20;
    cfg.stopAtEos = false;
    cfg.stopSequences = {stop};
    GenerationResult got = runEngine(llm, {&ssm}, cfg, prompt);
    EXPECT_EQ(got.tokens, ref.tokens);
}

TEST(DiffOracle, PrefillStepsAreExcludedFromPerStepAverages)
{
    model::Transformer llm = tinyLlm();
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);
    util::Rng prompt_rng(41);
    std::vector<int> prompt =
        randomPrompt(prompt_rng, 30, llm.config().vocabSize);

    EngineConfig cfg = EngineConfig::greedyDefault();
    cfg.spec.expansion = ExpansionConfig::uniform(2, 3);
    cfg.maxNewTokens = 10;
    cfg.stopAtEos = false;
    cfg.maxPrefillChunk = 8;
    SpecEngine engine(&llm, {&ssm}, cfg);
    GenerationResult got = engine.generate(prompt, 3);

    // 30 prompt tokens at chunk 8: three prefill-only iterations
    // (the fourth chunk is absorbed by the first speculative step).
    EXPECT_EQ(got.stats.steps.size() - got.stats.decodeSteps(), 3u);
    for (const StepRecord &s : got.stats.steps)
        EXPECT_EQ(s.prefill, s.verifiedTokens == 0);
    ASSERT_GT(got.stats.decodeSteps(), 0u);
    EXPECT_DOUBLE_EQ(
        got.stats.avgVerifiedPerStep(),
        static_cast<double>(got.stats.totalGenerated()) /
            static_cast<double>(got.stats.decodeSteps()));
    // The old denominator (all steps) would deflate the average.
    EXPECT_GT(got.stats.avgVerifiedPerStep(),
              static_cast<double>(got.stats.totalGenerated()) /
                  static_cast<double>(got.stats.steps.size()));
}

class OracleSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(OracleSweep, GreedyTrialPasses)
{
    verify::TrialOutcome out =
        verify::runGreedyTrial(GetParam());
    EXPECT_TRUE(out.ok) << out.configLine << "\n  " << out.detail
                        << "\n  repro: diffcheck --replay "
                        << GetParam() << " --kind greedy";
}

TEST_P(OracleSweep, TreeFuzzTrialPasses)
{
    verify::TrialOutcome out =
        verify::runTreeFuzzTrial(GetParam());
    EXPECT_TRUE(out.ok) << out.configLine << "\n  " << out.detail;
}

TEST_P(OracleSweep, KvRoundTripTrialPasses)
{
    verify::TrialOutcome out =
        verify::runKvRoundTripTrial(GetParam());
    EXPECT_TRUE(out.ok) << out.configLine << "\n  " << out.detail;
}

// Seeds disjoint from diffcheck's default range (which starts at 1)
// so the suite adds coverage instead of repeating it.
INSTANTIATE_TEST_SUITE_P(Seeds, OracleSweep,
                         ::testing::Range(uint64_t{1000},
                                          uint64_t{1010}));

TEST(DiffOracle, MssDistributionMatchesIncremental)
{
    verify::MssCheckConfig cfg;
    cfg.seed = 404;
    cfg.samples = 1500;
    cfg.alpha = 1.0e-3;
    verify::MssCheckResult res =
        verify::runMssDistributionCheck(cfg);
    EXPECT_TRUE(res.ok) << res.detail;
    EXPECT_LT(res.tvd, 0.08);
}

} // namespace
} // namespace core
} // namespace specinfer
