/**
 * @file
 * Regression tests pinning the two MSS verifier bugfixes:
 *
 *  1. Residual exhaustion must not resurrect the full LLM
 *     distribution. When q numerically dominates the residual,
 *     resetting p to logitsToProbs() re-introduces mass already
 *     consumed by earlier rejections, so tokens whose residual hit
 *     zero could be emitted again. The fix keeps the last
 *     strictly-positive residual instead.
 *
 *  2. merge() grafted one proposal per source entry unconditionally,
 *     so re-merging a tree (or merging trees sharing an SSM's draws)
 *     duplicated (node, ssm) pool entries and verifyStochastic()
 *     subtracted that SSM's distribution from the residual twice for
 *     a single draw, skewing the emitted law away from the LLM's
 *     decoding distribution. merge() now unions proposal multisets
 *     by per-SSM max multiplicity (idempotent); genuine repeated
 *     samples inserted via addChild() keep their multiplicity, which
 *     Theorem 4.2 exactness requires.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/token_tree.h"
#include "core/verifier.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "verify/stat_tests.h"

namespace specinfer {
namespace core {
namespace {

/** Logit row whose decoding distribution (temp 1) equals `probs`. */
tensor::Tensor
logitsFor(const std::vector<float> &probs, size_t rows)
{
    tensor::Tensor logits(rows, probs.size());
    for (size_t r = 0; r < rows; ++r)
        for (size_t c = 0; c < probs.size(); ++c)
            logits.at(r, c) = probs[c] > 0.0f
                                  ? std::log(probs[c])
                                  : -50.0f;
    return logits;
}

/**
 * Residual exhaustion: two forced-rejected candidates whose q
 * distributions drain the residual to zero. The LLM decoding
 * distribution is {0, 0, 0.5, 0.3, 0.2} (top-k 3 zeroes tokens 0 and
 * 1); candidate token 0 (SSM 0) and candidate token 1 (SSM 1) both
 * have p_x = 0 and q_x > 0, so they are rejected in either pick
 * order. SSM 0's q consumes all of token 2's residual mass; SSM 1's
 * q dominates everything. After both rejections the only valid
 * emission law is the surviving residual {0, 0, 0, 0.6, 0.4} — the
 * old reset-to-full-p branch instead emitted token 2 with
 * probability 0.5 whenever the exhausting rejection came last.
 */
TEST(MssRegression, ResidualExhaustionKeepsConsumedMassAtZero)
{
    const size_t vocab = 5;
    model::SamplingParams params;
    params.temperature = 1.0f;
    params.topK = 3;
    Verifier verifier(VerifyMode::MultiStepSampling, params);

    TokenTree tree(/*root_token=*/2);
    tree.addChild(TokenTree::kRoot, /*token=*/0, /*ssm_id=*/0);
    tree.addChild(TokenTree::kRoot, /*token=*/1, /*ssm_id=*/1);
    tree.setSsmDistribution(TokenTree::kRoot, 0,
                            {0.3f, 0.0f, 1.0f, 0.0f, 0.0f});
    tree.setSsmDistribution(TokenTree::kRoot, 1,
                            {0.0f, 0.3f, 1.0f, 1.0f, 1.0f});

    tensor::Tensor logits =
        logitsFor({0.0f, 0.0f, 0.5f, 0.3f, 0.2f}, tree.size());

    std::vector<size_t> counts(vocab, 0);
    const size_t trials = 400;
    for (size_t seed = 1; seed <= trials; ++seed) {
        util::Rng rng(seed);
        VerifyResult res = verifier.verify(tree, logits, rng);
        ASSERT_EQ(res.acceptedNodes.size(), 0u);
        ASSERT_EQ(res.tokens.size(), 1u);
        ++counts[static_cast<size_t>(res.tokens[0])];
    }

    // Tokens 0 and 1 have zero LLM probability; token 2's mass was
    // fully consumed by the first rejection and must stay consumed.
    EXPECT_EQ(counts[0], 0u);
    EXPECT_EQ(counts[1], 0u);
    EXPECT_EQ(counts[2], 0u)
        << "exhaustion resurrected the full LLM distribution";

    // The survivors follow the kept residual {_, _, _, 0.6, 0.4}.
    const double frac3 =
        static_cast<double>(counts[3]) / static_cast<double>(trials);
    EXPECT_NEAR(frac3, 0.6, 0.08);
}

TEST(MssRegression, MergePreservesProposalMultiplicity)
{
    // addChild records one proposal per call — two calls are two
    // independent draws and both entries must survive...
    TokenTree tree(/*root_token=*/7);
    NodeId a = tree.addChild(TokenTree::kRoot, 3, /*ssm_id=*/0);
    NodeId b = tree.addChild(TokenTree::kRoot, 3, /*ssm_id=*/0);
    EXPECT_EQ(a, b);
    EXPECT_EQ(tree.node(a).proposals, (std::vector<int>{0, 0}));

    // ...while merge() unions by per-SSM max multiplicity: grafting
    // the same draws again must not inflate the multiset.
    TokenTree copy = tree;
    tree.merge(copy);
    EXPECT_EQ(tree.node(a).proposals, (std::vector<int>{0, 0}));

    // A distinct SSM proposing the same token unions in untouched.
    TokenTree other(/*root_token=*/7);
    other.addChild(TokenTree::kRoot, 3, /*ssm_id=*/1);
    tree.merge(other);
    EXPECT_EQ(tree.node(a).proposals, (std::vector<int>{0, 0, 1}));
}

TEST(MssRegression, MergeOfIdenticalSsmsKeepsOneProposalEach)
{
    // Two SSMs with identical weights propose identical trees; the
    // merged tree must carry each node once with proposals {0, 1}.
    TokenTree a(5);
    a.addChild(TokenTree::kRoot, 1, 0);
    NodeId a2 = a.addChild(TokenTree::kRoot, 2, 0);
    a.addChild(a2, 3, 0);

    TokenTree b(5);
    b.addChild(TokenTree::kRoot, 1, 1);
    NodeId b2 = b.addChild(TokenTree::kRoot, 2, 1);
    b.addChild(b2, 3, 1);

    a.merge(b);
    EXPECT_EQ(a.size(), 4u);
    for (size_t i = 1; i < a.size(); ++i) {
        const std::vector<int> &props =
            a.node(static_cast<NodeId>(i)).proposals;
        ASSERT_EQ(props.size(), 2u) << "node " << i;
        EXPECT_EQ(props[0], 0);
        EXPECT_EQ(props[1], 1);
    }

    // Self-merge is now idempotent: no proposal duplication.
    TokenTree before = a;
    a.merge(before);
    EXPECT_EQ(a.size(), before.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a.node(static_cast<NodeId>(i)).proposals,
                  before.node(static_cast<NodeId>(i)).proposals);
}

/**
 * Distribution-level regression for the double-subtraction bug: ONE
 * sample x ~ q lives in two trees that get merged — exactly the
 * re-graft the old merge() turned into duplicate (node, ssm) pool
 * entries. The emitted first token must follow the LLM decoding
 * distribution p exactly (single-candidate speculative sampling is
 * lossless). With the duplicated entry the verifier subtracted q
 * twice for that single draw, skewing the residual fallback law
 * (exact TVD from p is ~0.071 for these p, q).
 */
TEST(MssRegression, RegraftedProposalDoesNotDoubleSubtract)
{
    const size_t vocab = 4;
    const std::vector<float> p = {0.1f, 0.2f, 0.3f, 0.4f};
    const std::vector<float> q = {0.4f, 0.3f, 0.2f, 0.1f};

    model::SamplingParams params;
    params.temperature = 1.0f;
    Verifier verifier(VerifyMode::MultiStepSampling, params);

    const size_t trials = 6000;
    std::vector<size_t> counts(vocab, 0);
    for (size_t seed = 1; seed <= trials; ++seed) {
        util::Rng rng(seed * 0x9e3779b9ULL + 17);
        const int draw = static_cast<int>(rng.categorical(q));
        TokenTree tree(/*root_token=*/0);
        tree.addChild(TokenTree::kRoot, draw, /*ssm_id=*/0);
        tree.setSsmDistribution(TokenTree::kRoot, 0, q);
        TokenTree regraft(/*root_token=*/0);
        regraft.addChild(TokenTree::kRoot, draw, /*ssm_id=*/0);
        regraft.setSsmDistribution(TokenTree::kRoot, 0, q);
        tree.merge(regraft);
        ASSERT_EQ(tree.node(1).proposals.size(), 1u);
        tensor::Tensor logits = logitsFor(p, tree.size());
        VerifyResult res = verifier.verify(tree, logits, rng);
        ASSERT_GE(res.tokens.size(), 1u);
        ++counts[static_cast<size_t>(res.tokens[0])];
    }

    std::vector<double> expect(p.begin(), p.end());
    verify::ChiSquare fit =
        verify::chiSquareGoodnessOfFit(counts, expect);
    const double crit = verify::chiSquareCritical(fit.df, 1.0e-3);
    EXPECT_LE(fit.stat, crit)
        << "first-token law drifted from the LLM distribution: chi2="
        << fit.stat << " df=" << fit.df;
}

} // namespace
} // namespace core
} // namespace specinfer
