/**
 * @file
 * Randomized configuration sweep over the whole engine: for random
 * expansion configs, SSM pools, and prompts, the structural
 * invariants must hold — greedy losslessness, stats consistency,
 * cache bookkeeping, and capacity safety.
 */

#include <gtest/gtest.h>

#include "../model/test_models.h"
#include "core/spec_engine.h"
#include "model/model_factory.h"

namespace specinfer {
namespace core {
namespace {

using specinfer::testing::randomPrompt;
using specinfer::testing::tinyLlm;

class RandomEngineConfig : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomEngineConfig, InvariantsHold)
{
    util::Rng rng(GetParam() * 7919 + 13);
    model::Transformer llm = tinyLlm();
    model::Transformer ssm_a = model::makeEarlyExitSsm(
        llm, 1 + rng.uniformInt(uint64_t{2}));
    model::Transformer ssm_b = model::makeEarlyExitSsm(
        llm, 1 + rng.uniformInt(uint64_t{2}), 0.1f, GetParam());

    // Random expansion config (possibly empty = incremental).
    ExpansionConfig expansion;
    size_t depth = rng.uniformInt(uint64_t{7}); // 0..6
    for (size_t i = 0; i < depth; ++i)
        expansion.widths.push_back(1 + rng.uniformInt(uint64_t{3}));

    EngineConfig cfg = EngineConfig::greedyDefault();
    cfg.spec.expansion = expansion;
    cfg.maxNewTokens = 6 + rng.uniformInt(uint64_t{14});
    cfg.stopAtEos = false;

    std::vector<const model::Transformer *> pool;
    if (depth > 0) {
        pool.push_back(&ssm_a);
        if (rng.uniform() < 0.4)
            pool.push_back(&ssm_b);
    }
    SpecEngine engine(&llm, pool, cfg);

    std::vector<int> prompt = randomPrompt(
        rng, 2 + rng.uniformInt(uint64_t{10}),
        llm.config().vocabSize);

    // Reference incremental decode.
    model::SamplingParams greedy;
    greedy.temperature = 0.0f;
    util::Rng ref_rng(1);
    GenerationResult ref = incrementalGenerate(
        llm, prompt, greedy, cfg.maxNewTokens, ref_rng, false);

    GenerationResult got = engine.generate(prompt, GetParam());

    // 1. Lossless output.
    ASSERT_EQ(got.tokens, ref.tokens)
        << "expansion " << expansion.toString() << " pool "
        << pool.size();

    // 2. Stats consistency.
    EXPECT_EQ(got.stats.totalGenerated(), got.tokens.size());
    size_t budget = cfg.spec.nodeBudget() * std::max<size_t>(
        pool.size(), 1);
    for (const StepRecord &s : got.stats.steps) {
        EXPECT_GE(s.verifiedTokens, 1u);
        EXPECT_LE(s.verifiedTokens, cfg.maxNewTokens);
        EXPECT_LE(s.treeSize, budget);
        EXPECT_GE(s.llmChunkTokens, s.treeSize + 1);
        if (depth == 0) {
            EXPECT_EQ(s.treeSize, 0u);
        }
    }

    // 3. Verified tokens per step never exceed the speculation
    //    depth plus the bonus.
    if (depth > 0) {
        for (const StepRecord &s : got.stats.steps)
            EXPECT_LE(s.verifiedTokens, depth + 1);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomEngineConfig,
                         ::testing::Range(uint64_t{0}, uint64_t{16}));

} // namespace
} // namespace core
} // namespace specinfer
