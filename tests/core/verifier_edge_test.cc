/**
 * @file
 * Verifier edge cases: structural consistency of accepted paths,
 * residual-degeneracy fallback, deep-chain acceptance, and bonus
 * token provenance.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/verifier.h"
#include "model/sampler.h"

namespace specinfer {
namespace core {
namespace {

constexpr size_t kVocab = 5;

void
setRow(tensor::Tensor &logits, size_t row,
       const std::vector<float> &probs)
{
    for (size_t c = 0; c < kVocab; ++c)
        logits.at(row, c) =
            probs[c] > 0.0f ? std::log(probs[c]) : -60.0f;
}

model::SamplingParams
stochastic()
{
    model::SamplingParams p;
    p.temperature = 1.0f;
    return p;
}

TEST(VerifierEdgeTest, AcceptedNodesFormRootPath)
{
    // Whatever happens, acceptedNodes must be a parent-child chain
    // from the root and tokens must match the nodes.
    TokenTree tree(0);
    std::vector<float> q = {0.2f, 0.2f, 0.2f, 0.2f, 0.2f};
    tree.setSsmDistribution(TokenTree::kRoot, 0, q);
    NodeId a = tree.addChild(TokenTree::kRoot, 1, 0);
    tree.setSsmDistribution(a, 0, q);
    NodeId b = tree.addChild(a, 2, 0);
    tree.setSsmDistribution(b, 0, q);
    tree.addChild(b, 3, 0);

    tensor::Tensor logits(tree.size(), kVocab);
    for (size_t r = 0; r < tree.size(); ++r)
        setRow(logits, r, {0.2f, 0.2f, 0.2f, 0.2f, 0.2f});

    Verifier verifier(VerifyMode::MultiStepSampling, stochastic());
    util::Rng rng(5);
    for (int t = 0; t < 200; ++t) {
        VerifyResult res = verifier.verify(tree, logits, rng);
        NodeId parent = TokenTree::kRoot;
        for (size_t i = 0; i < res.acceptedNodes.size(); ++i) {
            NodeId v = res.acceptedNodes[i];
            ASSERT_EQ(tree.node(v).parent, parent);
            ASSERT_EQ(res.tokens[i], tree.node(v).token);
            parent = v;
        }
        ASSERT_EQ(res.tokens.size(),
                  res.acceptedNodes.size() + 1);
        ASSERT_EQ(res.tokens.back(), res.bonusToken);
    }
}

TEST(VerifierEdgeTest, IdenticalDistributionsChainFully)
{
    // p == q at every level: every candidate accepted, so the walk
    // always reaches the leaf and emits depth+1 tokens.
    std::vector<float> pq = {0.3f, 0.3f, 0.2f, 0.1f, 0.1f};
    TokenTree tree(0);
    tree.setSsmDistribution(TokenTree::kRoot, 0, pq);
    util::Rng build_rng(7);
    NodeId u = TokenTree::kRoot;
    for (int d = 0; d < 4; ++d) {
        NodeId v = tree.addChild(
            u, static_cast<int>(build_rng.categorical(pq)), 0);
        tree.setSsmDistribution(v, 0, pq);
        u = v;
    }
    tensor::Tensor logits(tree.size(), kVocab);
    for (size_t r = 0; r < tree.size(); ++r)
        setRow(logits, r, pq);
    Verifier verifier(VerifyMode::MultiStepSampling, stochastic());
    util::Rng rng(8);
    for (int t = 0; t < 50; ++t) {
        VerifyResult res = verifier.verify(tree, logits, rng);
        EXPECT_EQ(res.acceptedNodes.size(), 4u);
        EXPECT_EQ(res.tokens.size(), 5u);
    }
}

TEST(VerifierEdgeTest, ResidualDegeneracyStillEmitsToken)
{
    // Candidate token where q(x) slightly exceeds p(x) and q == p
    // elsewhere: rejection is possible, after which the residual is
    // numerically ~zero; the fallback must still emit a valid
    // token rather than aborting.
    std::vector<float> p = {0.50f, 0.50f, 0.0f, 0.0f, 0.0f};
    std::vector<float> q = {0.501f, 0.499f, 0.0f, 0.0f, 0.0f};
    Verifier verifier(VerifyMode::MultiStepSampling, stochastic());
    util::Rng rng(11);
    int rejections = 0;
    for (int t = 0; t < 3000; ++t) {
        TokenTree tree(0);
        tree.setSsmDistribution(TokenTree::kRoot, 0, q);
        tree.addChild(TokenTree::kRoot, 0, 0); // the q-heavy token
        tensor::Tensor logits(tree.size(), kVocab);
        for (size_t r = 0; r < tree.size(); ++r)
            setRow(logits, r, p);
        VerifyResult res = verifier.verify(tree, logits, rng);
        ASSERT_FALSE(res.tokens.empty());
        ASSERT_TRUE(res.tokens[0] == 0 || res.tokens[0] == 1);
        rejections += res.acceptedNodes.empty();
    }
    // Rejection probability ~ 1 - min(1, .5/.501) ~ 0.2%.
    EXPECT_GT(rejections, 0);
}

TEST(VerifierEdgeTest, GreedyDeepChainStopsAtFirstMiss)
{
    TokenTree tree(0);
    NodeId a = tree.addChild(TokenTree::kRoot, 1, 0);
    NodeId b = tree.addChild(a, 2, 0);
    tree.addChild(b, 3, 0);
    tensor::Tensor logits(tree.size(), kVocab);
    logits.at(TokenTree::kRoot, 1) = 5.0f; // match a
    logits.at(static_cast<size_t>(a), 4) = 5.0f; // miss (no child 4)
    logits.at(static_cast<size_t>(b), 3) = 5.0f; // unreachable
    model::SamplingParams greedy;
    greedy.temperature = 0.0f;
    Verifier verifier(VerifyMode::Greedy, greedy);
    util::Rng rng(1);
    VerifyResult res = verifier.verify(tree, logits, rng);
    EXPECT_EQ(res.acceptedNodes, (std::vector<NodeId>{a}));
    EXPECT_EQ(res.tokens, (std::vector<int>{1, 4}));
}

TEST(VerifierEdgeTest, NaiveSamplingLeafBonus)
{
    // Naive sampling on a single-node tree = plain sampling.
    TokenTree tree(0);
    tensor::Tensor logits(1, kVocab);
    setRow(logits, 0, {0.0f, 0.0f, 1.0f, 0.0f, 0.0f});
    Verifier verifier(VerifyMode::NaiveSampling, stochastic());
    util::Rng rng(3);
    VerifyResult res = verifier.verify(tree, logits, rng);
    EXPECT_EQ(res.tokens, (std::vector<int>{2}));
    EXPECT_TRUE(res.acceptedNodes.empty());
}

} // namespace
} // namespace core
} // namespace specinfer
