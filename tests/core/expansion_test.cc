#include "core/expansion.h"

#include <gtest/gtest.h>

namespace specinfer {
namespace core {
namespace {

TEST(ExpansionTest, PaperDefault)
{
    ExpansionConfig cfg = ExpansionConfig::paperDefault();
    EXPECT_EQ(cfg.steps(), 8u);
    EXPECT_EQ(cfg.toString(), "<1,1,3,1,1,1,1,1>");
    // Frontiers: 1,1,3,3,3,3,3,3 -> 20 nodes max.
    EXPECT_EQ(cfg.maxNodes(), 20u);
}

TEST(ExpansionTest, WidthAtThird)
{
    ExpansionConfig cfg = ExpansionConfig::widthAtThird(5);
    EXPECT_EQ(cfg.steps(), 8u);
    EXPECT_EQ(cfg.widths[2], 5u);
    EXPECT_EQ(cfg.widths[0], 1u);
    // Frontiers: 1,1,5,5,5,5,5,5 -> 32.
    EXPECT_EQ(cfg.maxNodes(), 32u);
}

TEST(ExpansionTest, Uniform)
{
    ExpansionConfig cfg = ExpansionConfig::uniform(2, 3);
    // Frontiers 2,4,8 -> 14.
    EXPECT_EQ(cfg.maxNodes(), 14u);
    EXPECT_EQ(cfg.toString(), "<2,2,2>");
}

TEST(ExpansionTest, NoneIsIncremental)
{
    ExpansionConfig cfg = ExpansionConfig::none();
    EXPECT_EQ(cfg.steps(), 0u);
    EXPECT_EQ(cfg.maxNodes(), 0u);
    EXPECT_EQ(cfg.toString(), "<>");
    cfg.validate();
}

TEST(ExpansionTest, SequenceConfig)
{
    ExpansionConfig cfg = ExpansionConfig::uniform(1, 8);
    EXPECT_EQ(cfg.maxNodes(), 8u);
}

TEST(ExpansionDeathTest, RejectsZeroWidth)
{
    ExpansionConfig cfg;
    cfg.widths = {1, 0, 2};
    EXPECT_DEATH(cfg.validate(), "width");
}

} // namespace
} // namespace core
} // namespace specinfer
