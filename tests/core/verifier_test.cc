#include "core/verifier.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "tensor/ops.h"

namespace specinfer {
namespace core {
namespace {

constexpr size_t kVocab = 6;

/** Logit row whose temperature-1 softmax equals `probs`. */
void
setRowFromProbs(tensor::Tensor &logits, size_t row,
                const std::vector<float> &probs)
{
    for (size_t c = 0; c < kVocab; ++c)
        logits.at(row, c) =
            probs[c] > 0.0f ? std::log(probs[c]) : -60.0f;
}

model::SamplingParams
stochasticParams()
{
    model::SamplingParams p;
    p.temperature = 1.0f;
    return p;
}

model::SamplingParams
greedyParams()
{
    model::SamplingParams p;
    p.temperature = 0.0f;
    return p;
}

TEST(VerifierGreedyTest, AcceptsMatchingChain)
{
    // Root -> 2 -> 4 chain; LLM argmax at root = 2, at node(2) = 4,
    // at node(4) = 1 (bonus).
    TokenTree tree(0);
    NodeId n2 = tree.addChild(TokenTree::kRoot, 2, 0);
    NodeId n4 = tree.addChild(n2, 4, 0);
    tree.addChild(TokenTree::kRoot, 3, 0); // decoy branch

    tensor::Tensor logits(tree.size(), kVocab);
    logits.at(TokenTree::kRoot, 2) = 5.0f;
    logits.at(static_cast<size_t>(n2), 4) = 5.0f;
    logits.at(static_cast<size_t>(n4), 1) = 5.0f;

    Verifier verifier(VerifyMode::Greedy, greedyParams());
    util::Rng rng(1);
    VerifyResult res = verifier.verify(tree, logits, rng);
    EXPECT_EQ(res.acceptedNodes, (std::vector<NodeId>{n2, n4}));
    EXPECT_EQ(res.tokens, (std::vector<int>{2, 4, 1}));
    EXPECT_EQ(res.bonusToken, 1);
}

TEST(VerifierGreedyTest, MissAtRootGivesSingleBonus)
{
    TokenTree tree(0);
    tree.addChild(TokenTree::kRoot, 2, 0);
    tensor::Tensor logits(tree.size(), kVocab);
    logits.at(TokenTree::kRoot, 5) = 3.0f; // no child holds 5
    Verifier verifier(VerifyMode::Greedy, greedyParams());
    util::Rng rng(1);
    VerifyResult res = verifier.verify(tree, logits, rng);
    EXPECT_TRUE(res.acceptedNodes.empty());
    EXPECT_EQ(res.tokens, (std::vector<int>{5}));
}

TEST(VerifierGreedyTest, EmptyTreeActsAsIncrementalDecode)
{
    TokenTree tree(0);
    tensor::Tensor logits(1, kVocab);
    logits.at(0, 3) = 1.0f;
    Verifier verifier(VerifyMode::Greedy, greedyParams());
    util::Rng rng(1);
    VerifyResult res = verifier.verify(tree, logits, rng);
    EXPECT_EQ(res.tokens, (std::vector<int>{3}));
}

TEST(VerifierMssTest, CertainAcceptWhenDistributionsMatch)
{
    // Candidate token has P_LLM == P_SSM; acceptance ratio is 1 so
    // the candidate always passes.
    TokenTree tree(0);
    std::vector<float> q = {0.0f, 1.0f, 0.0f, 0.0f, 0.0f, 0.0f};
    tree.setSsmDistribution(TokenTree::kRoot, 0, q);
    NodeId child = tree.addChild(TokenTree::kRoot, 1, 0);

    tensor::Tensor logits(tree.size(), kVocab);
    setRowFromProbs(logits, TokenTree::kRoot, q);
    setRowFromProbs(logits, static_cast<size_t>(child),
                    {0.5f, 0.5f, 0.0f, 0.0f, 0.0f, 0.0f});

    Verifier verifier(VerifyMode::MultiStepSampling,
                      stochasticParams());
    util::Rng rng(2);
    for (int trial = 0; trial < 20; ++trial) {
        VerifyResult res = verifier.verify(tree, logits, rng);
        ASSERT_EQ(res.acceptedNodes.size(), 1u);
        EXPECT_EQ(res.tokens[0], 1);
        EXPECT_EQ(res.tokens.size(), 2u); // accepted + leaf bonus
    }
}

TEST(VerifierMssTest, CertainRejectWhenLlmMassIsZero)
{
    // P_LLM(candidate) == 0: always rejected; residual equals the
    // LLM distribution restricted away from the candidate.
    TokenTree tree(0);
    std::vector<float> q = {0.0f, 1.0f, 0.0f, 0.0f, 0.0f, 0.0f};
    tree.setSsmDistribution(TokenTree::kRoot, 0, q);
    tree.addChild(TokenTree::kRoot, 1, 0);

    tensor::Tensor logits(tree.size(), kVocab);
    setRowFromProbs(logits, TokenTree::kRoot,
                    {0.0f, 0.0f, 0.7f, 0.3f, 0.0f, 0.0f});

    Verifier verifier(VerifyMode::MultiStepSampling,
                      stochasticParams());
    util::Rng rng(3);
    int count2 = 0, total = 4000;
    for (int trial = 0; trial < total; ++trial) {
        VerifyResult res = verifier.verify(tree, logits, rng);
        ASSERT_TRUE(res.acceptedNodes.empty());
        ASSERT_TRUE(res.tokens[0] == 2 || res.tokens[0] == 3);
        count2 += res.tokens[0] == 2;
    }
    EXPECT_NEAR(static_cast<double>(count2) / total, 0.7, 0.03);
}

/**
 * Theorem 4.2 (distribution preservation): over trees whose
 * candidates are i.i.d. samples from the SSM distribution, the
 * marginal of the first emitted token equals P_LLM exactly.
 */
class MssDistributionTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(MssDistributionTest, FirstTokenMarginalIsLlmDistribution)
{
    const int k = std::get<0>(GetParam());
    const int scenario = std::get<1>(GetParam());

    std::vector<float> p, q;
    if (scenario == 0) {
        p = {0.40f, 0.25f, 0.15f, 0.10f, 0.07f, 0.03f};
        q = {0.10f, 0.30f, 0.20f, 0.20f, 0.10f, 0.10f};
    } else {
        p = {0.05f, 0.05f, 0.30f, 0.30f, 0.25f, 0.05f};
        q = {0.50f, 0.20f, 0.10f, 0.10f, 0.05f, 0.05f};
    }

    Verifier verifier(VerifyMode::MultiStepSampling,
                      stochasticParams());
    util::Rng rng(1000 + static_cast<uint64_t>(k));
    std::vector<double> counts(kVocab, 0.0);
    const int trials = 60000;
    for (int t = 0; t < trials; ++t) {
        TokenTree tree(0);
        tree.setSsmDistribution(TokenTree::kRoot, 0, q);
        for (int j = 0; j < k; ++j)
            tree.addChild(TokenTree::kRoot,
                          static_cast<int>(rng.categorical(q)), 0);
        tensor::Tensor logits(tree.size(), kVocab);
        setRowFromProbs(logits, TokenTree::kRoot, p);
        // Children rows: arbitrary (only the bonus-after-accept
        // draws from them; we look at the first token only).
        for (size_t r = 1; r < tree.size(); ++r)
            setRowFromProbs(logits, r, p);
        VerifyResult res = verifier.verify(tree, logits, rng);
        counts[static_cast<size_t>(res.tokens[0])] += 1.0;
    }
    double tvd = 0.0;
    for (size_t c = 0; c < kVocab; ++c)
        tvd += std::abs(counts[c] / trials -
                        static_cast<double>(p[c]));
    EXPECT_LT(0.5 * tvd, 0.012)
        << "k=" << k << " scenario=" << scenario;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MssDistributionTest,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(0, 1)));

TEST(VerifierMssTest, MultiSsmMarginalPreserved)
{
    // Two SSMs with different proposal distributions; Theorem 4.2
    // must still hold.
    std::vector<float> p = {0.3f, 0.3f, 0.2f, 0.1f, 0.05f, 0.05f};
    std::vector<float> q0 = {0.6f, 0.1f, 0.1f, 0.1f, 0.05f, 0.05f};
    std::vector<float> q1 = {0.05f, 0.05f, 0.1f, 0.1f, 0.1f, 0.6f};

    Verifier verifier(VerifyMode::MultiStepSampling,
                      stochasticParams());
    util::Rng rng(2024);
    std::vector<double> counts(kVocab, 0.0);
    const int trials = 60000;
    for (int t = 0; t < trials; ++t) {
        TokenTree tree(0);
        tree.setSsmDistribution(TokenTree::kRoot, 0, q0);
        tree.setSsmDistribution(TokenTree::kRoot, 1, q1);
        tree.addChild(TokenTree::kRoot,
                      static_cast<int>(rng.categorical(q0)), 0);
        tree.addChild(TokenTree::kRoot,
                      static_cast<int>(rng.categorical(q1)), 1);
        tensor::Tensor logits(tree.size(), kVocab);
        for (size_t r = 0; r < tree.size(); ++r)
            setRowFromProbs(logits, r, p);
        VerifyResult res = verifier.verify(tree, logits, rng);
        counts[static_cast<size_t>(res.tokens[0])] += 1.0;
    }
    double tvd = 0.0;
    for (size_t c = 0; c < kVocab; ++c)
        tvd += std::abs(counts[c] / trials -
                        static_cast<double>(p[c]));
    EXPECT_LT(0.5 * tvd, 0.012);
}

TEST(VerifierNaiveTest, MarginalPreserved)
{
    // Naive sampling trivially preserves the LLM distribution.
    std::vector<float> p = {0.4f, 0.3f, 0.2f, 0.05f, 0.03f, 0.02f};
    std::vector<float> q = {0.2f, 0.2f, 0.2f, 0.2f, 0.1f, 0.1f};
    Verifier verifier(VerifyMode::NaiveSampling, stochasticParams());
    util::Rng rng(7);
    std::vector<double> counts(kVocab, 0.0);
    const int trials = 60000;
    for (int t = 0; t < trials; ++t) {
        TokenTree tree(0);
        tree.setSsmDistribution(TokenTree::kRoot, 0, q);
        tree.addChild(TokenTree::kRoot,
                      static_cast<int>(rng.categorical(q)), 0);
        tensor::Tensor logits(tree.size(), kVocab);
        for (size_t r = 0; r < tree.size(); ++r)
            setRowFromProbs(logits, r, p);
        VerifyResult res = verifier.verify(tree, logits, rng);
        counts[static_cast<size_t>(res.tokens[0])] += 1.0;
    }
    double tvd = 0.0;
    for (size_t c = 0; c < kVocab; ++c)
        tvd += std::abs(counts[c] / trials -
                        static_cast<double>(p[c]));
    EXPECT_LT(0.5 * tvd, 0.012);
}

TEST(VerifierTest, MssAcceptanceDominatesNaive)
{
    // Theorem 4.3: P(reject | MSS) <= P(reject | NS), measured as
    // the acceptance rate over matched candidate pools.
    std::vector<float> p = {0.35f, 0.25f, 0.15f, 0.10f, 0.10f, 0.05f};
    std::vector<float> q = {0.15f, 0.35f, 0.20f, 0.10f, 0.10f, 0.10f};
    Verifier mss(VerifyMode::MultiStepSampling, stochasticParams());
    Verifier naive(VerifyMode::NaiveSampling, stochasticParams());
    util::Rng rng(99);
    const int trials = 40000;
    int mss_accepts = 0, ns_accepts = 0;
    for (int t = 0; t < trials; ++t) {
        TokenTree tree(0);
        tree.setSsmDistribution(TokenTree::kRoot, 0, q);
        for (int j = 0; j < 3; ++j)
            tree.addChild(TokenTree::kRoot,
                          static_cast<int>(rng.categorical(q)), 0);
        tensor::Tensor logits(tree.size(), kVocab);
        for (size_t r = 0; r < tree.size(); ++r)
            setRowFromProbs(logits, r, p);
        mss_accepts +=
            !mss.verify(tree, logits, rng).acceptedNodes.empty();
        ns_accepts +=
            !naive.verify(tree, logits, rng).acceptedNodes.empty();
    }
    EXPECT_GT(mss_accepts, ns_accepts);
}

TEST(VerifierDeathTest, ModeAndParamsMustAgree)
{
    EXPECT_DEATH(Verifier(VerifyMode::Greedy, stochasticParams()),
                 "greedy");
    EXPECT_DEATH(
        Verifier(VerifyMode::MultiStepSampling, greedyParams()),
        "temperature");
}

TEST(VerifierDeathTest, LogitRowsMustMatchTree)
{
    TokenTree tree(0);
    tree.addChild(TokenTree::kRoot, 1, 0);
    tensor::Tensor logits(1, kVocab);
    Verifier verifier(VerifyMode::Greedy, greedyParams());
    util::Rng rng(1);
    EXPECT_DEATH(verifier.verify(tree, logits, rng), "row");
}

} // namespace
} // namespace core
} // namespace specinfer
