#include <gtest/gtest.h>

#include "../model/test_models.h"
#include "core/spec_engine.h"
#include "model/model_factory.h"

namespace specinfer {
namespace core {
namespace {

using specinfer::testing::tinyLlm;

SpeculatorConfig
adaptiveConfig(float mass, size_t max_width, size_t depth = 4)
{
    SpeculatorConfig cfg;
    cfg.expansion = ExpansionConfig::uniform(1, depth);
    cfg.mode = SpeculationMode::TopK;
    cfg.ssmSampling.temperature = 1.0f;
    cfg.policy = ExpansionPolicy::AdaptiveMass;
    cfg.adaptiveMass = mass;
    cfg.adaptiveMaxWidth = max_width;
    return cfg;
}

TEST(AdaptiveExpansionTest, TightMassDegeneratesToChain)
{
    // A tiny target mass means one candidate per node suffices.
    model::Transformer llm = tinyLlm();
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);
    Speculator spec({&ssm}, adaptiveConfig(1e-6f, 4));
    auto caches = spec.makeCaches(160);
    util::Rng rng(1);
    TokenTree tree = spec.speculate({5, 9, 3}, caches, rng);
    EXPECT_EQ(tree.speculatedCount(), 4u); // one per step
    EXPECT_EQ(tree.maxDepth(), 4u);
}

TEST(AdaptiveExpansionTest, FullMassHitsWidthCap)
{
    // Mass 1.0 can only be reached by the cap on a smooth
    // distribution, so every node expands adaptiveMaxWidth ways
    // until the node budget intervenes.
    model::Transformer llm = tinyLlm();
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);
    SpeculatorConfig cfg = adaptiveConfig(1.0f, 3, 2);
    cfg.maxTreeNodes = 100;
    Speculator spec({&ssm}, cfg);
    auto caches = spec.makeCaches(160);
    util::Rng rng(2);
    TokenTree tree = spec.speculate({5, 9, 3}, caches, rng);
    // Full 3-ary tree of depth 2: 3 + 9 nodes.
    EXPECT_EQ(tree.speculatedCount(), 12u);
}

TEST(AdaptiveExpansionTest, RespectsNodeBudget)
{
    model::Transformer llm = tinyLlm();
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);
    SpeculatorConfig cfg = adaptiveConfig(1.0f, 4, 6);
    cfg.maxTreeNodes = 10;
    Speculator spec({&ssm}, cfg);
    auto caches = spec.makeCaches(160);
    util::Rng rng(3);
    TokenTree tree = spec.speculate({7, 2, 4}, caches, rng);
    EXPECT_LE(tree.speculatedCount(), 10u);
    EXPECT_EQ(cfg.nodeBudget(), 10u);
}

TEST(AdaptiveExpansionTest, StaticBudgetIsConfigBound)
{
    SpeculatorConfig cfg;
    cfg.expansion = ExpansionConfig::paperDefault();
    EXPECT_EQ(cfg.nodeBudget(), 20u);
}

TEST(AdaptiveExpansionTest, GreedyEngineRemainsLossless)
{
    // Adaptive expansion changes which tokens are speculated, never
    // which tokens are emitted.
    model::Transformer llm = tinyLlm();
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);
    std::vector<int> prompt = {4, 8, 15, 16};

    model::SamplingParams greedy;
    greedy.temperature = 0.0f;
    util::Rng rng(1);
    GenerationResult ref = incrementalGenerate(llm, prompt, greedy,
                                               20, rng, false);

    EngineConfig ecfg = EngineConfig::greedyDefault();
    ecfg.spec = adaptiveConfig(0.7f, 3, 6);
    ecfg.maxNewTokens = 20;
    ecfg.stopAtEos = false;
    SpecEngine engine(&llm, {&ssm}, ecfg);
    GenerationResult got = engine.generate(prompt);
    EXPECT_EQ(got.tokens, ref.tokens);
}

TEST(AdaptiveExpansionTest, AdaptsWidthToUncertainty)
{
    // Across many nodes, adaptive trees must actually vary their
    // branching (not all chains, not all full fans).
    model::Transformer llm = tinyLlm();
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);
    Speculator spec({&ssm}, adaptiveConfig(0.5f, 4, 5));
    auto caches = spec.makeCaches(160);
    util::Rng rng(4);
    size_t min_children = 100, max_children = 0;
    for (uint64_t s = 0; s < 6; ++s) {
        std::vector<int> seq = {static_cast<int>(s * 3 + 1), 9, 2};
        TokenTree tree = spec.speculate(seq, caches, rng);
        for (size_t n = 0; n < tree.size(); ++n) {
            const TreeNode &node = tree.node(static_cast<NodeId>(n));
            if (node.children.empty())
                continue;
            min_children =
                std::min(min_children, node.children.size());
            max_children =
                std::max(max_children, node.children.size());
        }
        for (auto &cache : caches)
            cache.truncate(0);
    }
    EXPECT_LT(min_children, max_children);
}

TEST(AdaptiveExpansionDeathTest, RequiresTopKMode)
{
    model::Transformer llm = tinyLlm();
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);
    SpeculatorConfig cfg = adaptiveConfig(0.5f, 3);
    cfg.mode = SpeculationMode::Sampled;
    EXPECT_DEATH(Speculator({&ssm}, cfg), "TopK");
}

TEST(AdaptiveExpansionDeathTest, ValidatesMass)
{
    model::Transformer llm = tinyLlm();
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);
    SpeculatorConfig cfg = adaptiveConfig(1.5f, 3);
    EXPECT_DEATH(Speculator({&ssm}, cfg), "adaptiveMass");
}

} // namespace
} // namespace core
} // namespace specinfer
