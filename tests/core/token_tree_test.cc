#include "core/token_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace specinfer {
namespace core {
namespace {

std::set<std::vector<int>>
pathSet(const TokenTree &tree)
{
    auto paths = tree.allPaths();
    return std::set<std::vector<int>>(paths.begin(), paths.end());
}

TEST(TokenTreeTest, RootOnly)
{
    TokenTree tree(42);
    EXPECT_EQ(tree.size(), 1u);
    EXPECT_EQ(tree.speculatedCount(), 0u);
    EXPECT_EQ(tree.maxDepth(), 0u);
    EXPECT_EQ(tree.node(TokenTree::kRoot).token, 42);
    EXPECT_EQ(tree.node(TokenTree::kRoot).parent, -1);
}

TEST(TokenTreeTest, AddChildBuildsTopology)
{
    TokenTree tree(1);
    NodeId a = tree.addChild(TokenTree::kRoot, 2, 0);
    NodeId b = tree.addChild(TokenTree::kRoot, 3, 0);
    NodeId c = tree.addChild(a, 4, 0);
    EXPECT_EQ(tree.size(), 4u);
    EXPECT_EQ(tree.node(a).depth, 1u);
    EXPECT_EQ(tree.node(c).depth, 2u);
    EXPECT_EQ(tree.node(c).parent, a);
    EXPECT_EQ(tree.maxDepth(), 2u);
    EXPECT_EQ(tree.node(TokenTree::kRoot).children.size(), 2u);
    EXPECT_EQ(tree.node(b).children.size(), 0u);
}

TEST(TokenTreeTest, DuplicateChildMergesProposals)
{
    TokenTree tree(1);
    NodeId a = tree.addChild(TokenTree::kRoot, 5, 0);
    NodeId b = tree.addChild(TokenTree::kRoot, 5, 1);
    NodeId c = tree.addChild(TokenTree::kRoot, 5, 0);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, c);
    EXPECT_EQ(tree.size(), 2u);
    ASSERT_EQ(tree.node(a).proposals.size(), 3u);
    EXPECT_EQ(tree.node(a).proposals[0], 0);
    EXPECT_EQ(tree.node(a).proposals[1], 1);
    EXPECT_EQ(tree.node(a).proposals[2], 0);
}

TEST(TokenTreeTest, PathTokens)
{
    TokenTree tree(10);
    NodeId a = tree.addChild(TokenTree::kRoot, 11, 0);
    NodeId b = tree.addChild(a, 12, 0);
    EXPECT_EQ(tree.pathTokens(b), (std::vector<int>{10, 11, 12}));
    EXPECT_EQ(tree.pathTokens(TokenTree::kRoot),
              (std::vector<int>{10}));
}

TEST(TokenTreeTest, SsmDistributionRoundTrip)
{
    TokenTree tree(1);
    EXPECT_EQ(tree.ssmDistribution(TokenTree::kRoot, 0), nullptr);
    tree.setSsmDistribution(TokenTree::kRoot, 0, {0.25f, 0.75f});
    const std::vector<float> *d =
        tree.ssmDistribution(TokenTree::kRoot, 0);
    ASSERT_NE(d, nullptr);
    EXPECT_FLOAT_EQ((*d)[1], 0.75f);
    EXPECT_EQ(tree.ssmDistribution(TokenTree::kRoot, 1), nullptr);
    // Overwrite replaces.
    tree.setSsmDistribution(TokenTree::kRoot, 0, {1.0f, 0.0f});
    EXPECT_FLOAT_EQ(
        (*tree.ssmDistribution(TokenTree::kRoot, 0))[0], 1.0f);
}

TEST(TokenTreeTest, MergeIsPathSetUnion)
{
    // Definition 3.2: the merged tree's path set is exactly the
    // union of the sources' path sets.
    TokenTree a(1);
    NodeId a1 = a.addChild(TokenTree::kRoot, 2, 0);
    a.addChild(a1, 3, 0);

    TokenTree b(1);
    NodeId b1 = b.addChild(TokenTree::kRoot, 2, 1);
    b.addChild(b1, 4, 1);
    b.addChild(TokenTree::kRoot, 5, 1);

    std::set<std::vector<int>> expect = pathSet(a);
    for (const auto &p : pathSet(b))
        expect.insert(p);

    a.merge(b);
    EXPECT_EQ(pathSet(a), expect);
    // Shared node {1,2} is represented once but carries proposals
    // from both SSMs.
    EXPECT_EQ(a.node(a1).proposals.size(), 2u);
}

TEST(TokenTreeTest, MergeUnionsDistributions)
{
    TokenTree a(1);
    a.setSsmDistribution(TokenTree::kRoot, 0, {1.0f, 0.0f});
    TokenTree b(1);
    b.setSsmDistribution(TokenTree::kRoot, 1, {0.0f, 1.0f});
    a.merge(b);
    ASSERT_NE(a.ssmDistribution(TokenTree::kRoot, 0), nullptr);
    ASSERT_NE(a.ssmDistribution(TokenTree::kRoot, 1), nullptr);
}

TEST(TokenTreeTest, MergeIdempotent)
{
    TokenTree a(1);
    NodeId a1 = a.addChild(TokenTree::kRoot, 2, 0);
    a.addChild(a1, 3, 0);
    TokenTree copy = a;
    a.merge(copy);
    EXPECT_EQ(pathSet(a), pathSet(copy));
}

TEST(TokenTreeDeathTest, MergeRequiresSameRoot)
{
    TokenTree a(1);
    TokenTree b(2);
    EXPECT_DEATH(a.merge(b), "root token");
}

TEST(TokenTreeTest, ToChunkPreservesTopology)
{
    TokenTree tree(7);
    NodeId a = tree.addChild(TokenTree::kRoot, 8, 0);
    tree.addChild(TokenTree::kRoot, 9, 0);
    tree.addChild(a, 10, 0);
    model::DecodeChunk chunk = tree.toChunk();
    chunk.validate();
    EXPECT_EQ(chunk.tokens, (std::vector<int>{7, 8, 9, 10}));
    EXPECT_EQ(chunk.parents, (std::vector<int32_t>{-1, 0, 0, 1}));
}

TEST(TokenTreeTest, CreationOrderIsTopological)
{
    TokenTree tree(1);
    NodeId a = tree.addChild(TokenTree::kRoot, 2, 0);
    NodeId b = tree.addChild(a, 3, 0);
    NodeId c = tree.addChild(TokenTree::kRoot, 4, 0);
    NodeId d = tree.addChild(b, 5, 0);
    for (NodeId id : {a, b, c, d})
        EXPECT_LT(tree.node(id).parent, id);
}

TEST(TokenTreeTest, AsciiContainsAllTokens)
{
    TokenTree tree(1);
    NodeId a = tree.addChild(TokenTree::kRoot, 22, 0);
    tree.addChild(a, 33, 1);
    std::string art = tree.toAscii();
    EXPECT_NE(art.find("t1"), std::string::npos);
    EXPECT_NE(art.find("t22"), std::string::npos);
    EXPECT_NE(art.find("t33"), std::string::npos);
}

} // namespace
} // namespace core
} // namespace specinfer
