/**
 * @file
 * Deeper distribution-preservation properties of multi-step
 * speculative sampling: filtered (top-k / top-p) LLM decoding
 * distributions, and the *joint* distribution over multi-level
 * trees — extending the single-step marginals checked in
 * verifier_test.cc.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/verifier.h"
#include "model/sampler.h"
#include "tensor/tensor.h"

namespace specinfer {
namespace core {
namespace {

constexpr size_t kVocab = 6;

void
setRowFromProbs(tensor::Tensor &logits, size_t row,
                const std::vector<float> &probs)
{
    for (size_t c = 0; c < kVocab; ++c)
        logits.at(row, c) =
            probs[c] > 0.0f ? std::log(probs[c]) : -60.0f;
}

double
tvd(const std::vector<double> &emp, const std::vector<double> &ref)
{
    double acc = 0.0;
    for (size_t i = 0; i < emp.size(); ++i)
        acc += std::abs(emp[i] - ref[i]);
    return 0.5 * acc;
}

TEST(VerifierFilteredTest, MssPreservesTopKFilteredDistribution)
{
    // When the LLM decodes with top-k filtering, MSS must preserve
    // the *filtered* distribution.
    std::vector<float> p_raw = {0.35f, 0.30f, 0.15f,
                                0.10f, 0.06f, 0.04f};
    std::vector<float> q = {0.25f, 0.15f, 0.25f, 0.15f, 0.1f, 0.1f};

    model::SamplingParams llm_params;
    llm_params.temperature = 1.0f;
    llm_params.topK = 3;
    Verifier verifier(VerifyMode::MultiStepSampling, llm_params);

    // Reference: the filtered distribution the sampler itself
    // produces from these logits.
    tensor::Tensor probe(1, kVocab);
    setRowFromProbs(probe, 0, p_raw);
    std::vector<float> p_filtered = model::logitsToProbs(
        probe.row(0), kVocab, llm_params);
    for (size_t c = 3; c < kVocab; ++c)
        ASSERT_FLOAT_EQ(p_filtered[c], 0.0f);

    util::Rng rng(77);
    const int trials = 50000;
    std::vector<double> counts(kVocab, 0.0);
    for (int t = 0; t < trials; ++t) {
        TokenTree tree(0);
        tree.setSsmDistribution(TokenTree::kRoot, 0, q);
        tree.addChild(TokenTree::kRoot,
                      static_cast<int>(rng.categorical(q)), 0);
        tensor::Tensor logits(tree.size(), kVocab);
        for (size_t r = 0; r < tree.size(); ++r)
            setRowFromProbs(logits, r, p_raw);
        VerifyResult res = verifier.verify(tree, logits, rng);
        counts[static_cast<size_t>(res.tokens[0])] += 1.0;
    }
    std::vector<double> ref(p_filtered.begin(), p_filtered.end());
    for (double &c : counts)
        c /= trials;
    EXPECT_LT(tvd(counts, ref), 0.012);
    // Filtered-out tokens must never be emitted.
    EXPECT_DOUBLE_EQ(counts[4], 0.0);
    EXPECT_DOUBLE_EQ(counts[5], 0.0);
}

TEST(VerifierFilteredTest, MssPreservesTopPFilteredDistribution)
{
    std::vector<float> p_raw = {0.40f, 0.30f, 0.15f,
                                0.08f, 0.04f, 0.03f};
    std::vector<float> q = {0.2f, 0.2f, 0.2f, 0.2f, 0.1f, 0.1f};
    model::SamplingParams llm_params;
    llm_params.temperature = 1.0f;
    llm_params.topP = 0.8f;
    Verifier verifier(VerifyMode::MultiStepSampling, llm_params);

    tensor::Tensor probe(1, kVocab);
    setRowFromProbs(probe, 0, p_raw);
    std::vector<float> p_filtered = model::logitsToProbs(
        probe.row(0), kVocab, llm_params);

    util::Rng rng(78);
    const int trials = 50000;
    std::vector<double> counts(kVocab, 0.0);
    for (int t = 0; t < trials; ++t) {
        TokenTree tree(0);
        tree.setSsmDistribution(TokenTree::kRoot, 0, q);
        for (int j = 0; j < 2; ++j)
            tree.addChild(TokenTree::kRoot,
                          static_cast<int>(rng.categorical(q)), 0);
        tensor::Tensor logits(tree.size(), kVocab);
        for (size_t r = 0; r < tree.size(); ++r)
            setRowFromProbs(logits, r, p_raw);
        VerifyResult res = verifier.verify(tree, logits, rng);
        counts[static_cast<size_t>(res.tokens[0])] += 1.0;
    }
    std::vector<double> ref(p_filtered.begin(), p_filtered.end());
    for (double &c : counts)
        c /= trials;
    EXPECT_LT(tvd(counts, ref), 0.012);
}

TEST(VerifierJointTest, TwoLevelJointDistributionPreserved)
{
    // Theorem 4.2 applies to the whole emitted sequence, not just
    // the first token. Build two-level trees whose children at
    // every node are i.i.d. SSM samples, with the LLM's conditional
    // distribution at a node depending on that node's token, and
    // check the joint law of the first two emitted tokens.
    const std::vector<float> p1 = {0.35f, 0.25f, 0.15f,
                                   0.10f, 0.10f, 0.05f};
    // Conditional p2(y | x): a deterministic function of x.
    auto p2_of = [](int x) {
        std::vector<float> p(kVocab, 0.0f);
        for (size_t y = 0; y < kVocab; ++y)
            p[y] = static_cast<float>(
                1.0 + ((static_cast<size_t>(x) + 2 * y) % 5));
        float total = 0.0f;
        for (float v : p)
            total += v;
        for (float &v : p)
            v /= total;
        return p;
    };
    // The SSM's proposal at a node also depends on the node token.
    auto q_of = [](int x) {
        std::vector<float> q(kVocab, 0.0f);
        for (size_t y = 0; y < kVocab; ++y)
            q[y] = static_cast<float>(
                1.0 + ((2 * static_cast<size_t>(x) + y) % 4));
        float total = 0.0f;
        for (float v : q)
            total += v;
        for (float &v : q)
            v /= total;
        return q;
    };
    const std::vector<float> q_root = {0.25f, 0.20f, 0.15f,
                                       0.15f, 0.15f, 0.10f};

    model::SamplingParams params;
    params.temperature = 1.0f;
    Verifier verifier(VerifyMode::MultiStepSampling, params);
    util::Rng rng(79);

    std::map<std::pair<int, int>, double> joint;
    const int trials = 120000;
    for (int t = 0; t < trials; ++t) {
        TokenTree tree(0);
        tree.setSsmDistribution(TokenTree::kRoot, 0, q_root);
        // Two root candidates, one grandchild under each.
        for (int j = 0; j < 2; ++j) {
            int x = static_cast<int>(rng.categorical(q_root));
            NodeId child = tree.addChild(TokenTree::kRoot, x, 0);
            std::vector<float> qx = q_of(x);
            tree.setSsmDistribution(child, 0, qx);
            tree.addChild(child,
                          static_cast<int>(rng.categorical(qx)), 0);
        }
        tensor::Tensor logits(tree.size(), kVocab);
        setRowFromProbs(logits, TokenTree::kRoot, p1);
        for (size_t n = 1; n < tree.size(); ++n)
            setRowFromProbs(
                logits, n,
                p2_of(tree.node(static_cast<NodeId>(n)).token));
        VerifyResult res = verifier.verify(tree, logits, rng);
        ASSERT_GE(res.tokens.size(), 1u);
        if (res.tokens.size() >= 2)
            joint[{res.tokens[0], res.tokens[1]}] += 1.0;
        else
            joint[{res.tokens[0], -1}] += 1.0;
    }

    // Reference joint: first token ~ p1; second token ~ p2(.|x)
    // whenever a second token is emitted. A second token exists
    // only when the first came from an accepted child (the bonus is
    // then drawn at that child). When the first token is the
    // root-level bonus, no second token is emitted this iteration —
    // consistency requires the *conditional* law of the second
    // token given (first = x, second exists) to be p2(.|x).
    for (size_t x = 0; x < kVocab; ++x) {
        double with_second = 0.0;
        std::vector<double> second(kVocab, 0.0);
        for (size_t y = 0; y < kVocab; ++y) {
            auto it = joint.find({static_cast<int>(x),
                                  static_cast<int>(y)});
            if (it != joint.end()) {
                with_second += it->second;
                second[y] = it->second;
            }
        }
        if (with_second < 2000.0)
            continue; // not enough mass for a stable estimate
        std::vector<float> ref_f = p2_of(static_cast<int>(x));
        std::vector<double> ref(ref_f.begin(), ref_f.end());
        for (double &v : second)
            v /= with_second;
        EXPECT_LT(tvd(second, ref), 0.03) << "first token " << x;
    }

    // And the first-token marginal is p1 exactly.
    std::vector<double> first(kVocab, 0.0);
    for (const auto &[key, count] : joint)
        first[static_cast<size_t>(key.first)] += count;
    for (double &v : first)
        v /= trials;
    std::vector<double> ref1(p1.begin(), p1.end());
    EXPECT_LT(tvd(first, ref1), 0.012);
}

} // namespace
} // namespace core
} // namespace specinfer
