/**
 * @file
 * Chunked prefill and per-request generation budgets: long prompts
 * are absorbed across bounded iterations without changing outputs,
 * and sessions can override the engine's token budget.
 */

#include <gtest/gtest.h>

#include "../model/test_models.h"
#include "core/spec_engine.h"
#include "model/model_factory.h"

namespace specinfer {
namespace core {
namespace {

using specinfer::testing::randomPrompt;
using specinfer::testing::tinyLlm;

struct Fixture
{
    Fixture() : llm(tinyLlm()), ssm(model::makeEarlyExitSsm(llm, 2))
    {
    }

    EngineConfig
    config(size_t chunk) const
    {
        EngineConfig cfg = EngineConfig::greedyDefault();
        cfg.spec.expansion = ExpansionConfig::uniform(2, 3);
        cfg.maxNewTokens = 10;
        cfg.stopAtEos = false;
        cfg.maxPrefillChunk = chunk;
        return cfg;
    }

    model::Transformer llm;
    model::Transformer ssm;
};

TEST(ChunkedPrefillTest, OutputUnchanged)
{
    Fixture f;
    util::Rng rng(3);
    std::vector<int> prompt =
        randomPrompt(rng, 37, f.llm.config().vocabSize);

    SpecEngine plain(&f.llm, {&f.ssm}, f.config(0));
    SpecEngine chunked(&f.llm, {&f.ssm}, f.config(8));
    GenerationResult a = plain.generate(prompt, 5);
    GenerationResult b = chunked.generate(prompt, 5);
    EXPECT_EQ(a.tokens, b.tokens);
}

TEST(ChunkedPrefillTest, BoundsPerIterationTokensDuringPrefill)
{
    Fixture f;
    util::Rng rng(4);
    std::vector<int> prompt =
        randomPrompt(rng, 41, f.llm.config().vocabSize);
    SpecEngine chunked(&f.llm, {&f.ssm}, f.config(8));
    GenerationResult res = chunked.generate(prompt, 6);

    // Prefill steps decode exactly the cap and emit nothing; the
    // first speculative step then handles the remaining tail.
    size_t prefill_steps = 0;
    for (const StepRecord &s : res.stats.steps) {
        if (s.verifiedTokens == 0) {
            EXPECT_EQ(s.llmChunkTokens, 8u);
            EXPECT_EQ(s.treeSize, 0u);
            ++prefill_steps;
        }
    }
    // 41-token prompt, cap 8: uncached>9 while cached<32.
    EXPECT_EQ(prefill_steps, 4u);
    EXPECT_EQ(res.stats.totalGenerated(), res.tokens.size());
}

TEST(ChunkedPrefillTest, ShortPromptSkipsChunking)
{
    Fixture f;
    SpecEngine chunked(&f.llm, {&f.ssm}, f.config(8));
    GenerationResult res = chunked.generate({1, 2, 3}, 7);
    for (const StepRecord &s : res.stats.steps)
        EXPECT_GE(s.verifiedTokens, 1u);
}

TEST(PerRequestBudgetTest, OverrideShortensGeneration)
{
    Fixture f;
    SpecEngine engine(&f.llm, {&f.ssm}, f.config(0));
    GenerationResult full = engine.generate({5, 6, 7}, 1);
    GenerationResult capped = engine.generate({5, 6, 7}, 1, 4);
    EXPECT_EQ(full.tokens.size(), 10u);
    EXPECT_EQ(capped.tokens.size(), 4u);
    // Greedy decoding: the capped output is a prefix of the full.
    EXPECT_TRUE(std::equal(capped.tokens.begin(),
                           capped.tokens.end(),
                           full.tokens.begin()));
}

TEST(PerRequestBudgetTest, ZeroMeansEngineDefault)
{
    Fixture f;
    SpecEngine engine(&f.llm, {&f.ssm}, f.config(0));
    GenerationResult res = engine.generate({5, 6, 7}, 1, 0);
    EXPECT_EQ(res.tokens.size(), 10u);
}

} // namespace
} // namespace core
} // namespace specinfer
