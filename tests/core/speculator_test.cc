#include "core/speculator.h"

#include <gtest/gtest.h>

#include "../model/test_models.h"
#include "model/model_factory.h"
#include "tensor/ops.h"

namespace specinfer {
namespace core {
namespace {

using specinfer::testing::tinyLlm;

struct Fixture
{
    model::Transformer llm = tinyLlm();
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);
};

SpeculatorConfig
topkConfig(ExpansionConfig expansion)
{
    SpeculatorConfig cfg;
    cfg.expansion = std::move(expansion);
    cfg.mode = SpeculationMode::TopK;
    cfg.ssmSampling.temperature = 1.0f;
    return cfg;
}

TEST(SpeculatorTest, TopKTreeHasExactShape)
{
    Fixture f;
    Speculator spec({&f.ssm}, topkConfig({{2, 1, 3}}));
    auto caches = spec.makeCaches(128);
    util::Rng rng(1);
    std::vector<int> seq = {5, 9, 3};
    TokenTree tree = spec.speculate(seq, caches, rng);
    // TopK picks are distinct, so the tree is exactly the config
    // shape: 2 + 2 + 6 speculated nodes.
    EXPECT_EQ(tree.speculatedCount(), 10u);
    EXPECT_EQ(tree.maxDepth(), 3u);
    EXPECT_EQ(tree.node(TokenTree::kRoot).token, 3);
    EXPECT_EQ(tree.node(TokenTree::kRoot).children.size(), 2u);
}

TEST(SpeculatorTest, CacheInvariantMaintained)
{
    Fixture f;
    Speculator spec({&f.ssm}, topkConfig({{2, 2}}));
    auto caches = spec.makeCaches(128);
    util::Rng rng(2);
    std::vector<int> seq = {5, 9, 3};
    spec.speculate(seq, caches, rng);
    // After speculation the cache holds exactly the sequence.
    EXPECT_EQ(caches[0].length(), seq.size());
    // A longer sequence later decodes only the new suffix.
    seq.push_back(7);
    seq.push_back(2);
    SpeculationCost cost;
    spec.speculate(seq, caches, rng, &cost);
    EXPECT_EQ(caches[0].length(), seq.size());
}

TEST(SpeculatorTest, Deterministic)
{
    Fixture f;
    Speculator spec({&f.ssm}, topkConfig({{2, 2}}));
    std::vector<int> seq = {4, 11, 6};
    auto ca = spec.makeCaches(128);
    auto cb = spec.makeCaches(128);
    util::Rng ra(3), rb(3);
    TokenTree ta = spec.speculate(seq, ca, ra);
    TokenTree tb = spec.speculate(seq, cb, rb);
    ASSERT_EQ(ta.size(), tb.size());
    for (size_t i = 0; i < ta.size(); ++i) {
        EXPECT_EQ(ta.node(static_cast<NodeId>(i)).token,
                  tb.node(static_cast<NodeId>(i)).token);
        EXPECT_EQ(ta.node(static_cast<NodeId>(i)).parent,
                  tb.node(static_cast<NodeId>(i)).parent);
    }
}

TEST(SpeculatorTest, TopKChildrenAreSsmTopK)
{
    // The root's children must be the top-k tokens of the SSM's
    // distribution computed by plain incremental decoding.
    Fixture f;
    const size_t vocab = f.ssm.config().vocabSize;
    Speculator spec({&f.ssm}, topkConfig({{3}}));
    auto caches = spec.makeCaches(128);
    util::Rng rng(4);
    std::vector<int> seq = {8, 2, 13};
    TokenTree tree = spec.speculate(seq, caches, rng);

    model::KvCache ref_cache = f.ssm.makeCache();
    tensor::Tensor logits = f.ssm.forward(
        model::DecodeChunk::sequence(seq), ref_cache);
    auto top = tensor::topkRow(logits.row(seq.size() - 1), vocab, 3);

    const auto &children = tree.node(TokenTree::kRoot).children;
    ASSERT_EQ(children.size(), 3u);
    for (size_t i = 0; i < 3; ++i)
        EXPECT_EQ(tree.node(children[i]).token,
                  static_cast<int>(top[i]));
}

TEST(SpeculatorTest, StoresRootDistribution)
{
    Fixture f;
    Speculator spec({&f.ssm}, topkConfig({{2}}));
    auto caches = spec.makeCaches(128);
    util::Rng rng(5);
    TokenTree tree = spec.speculate({1, 2, 3}, caches, rng);
    const std::vector<float> *dist =
        tree.ssmDistribution(TokenTree::kRoot, 0);
    ASSERT_NE(dist, nullptr);
    EXPECT_EQ(dist->size(), f.ssm.config().vocabSize);
    float total = 0.0f;
    for (float p : *dist)
        total += p;
    EXPECT_NEAR(total, 1.0f, 1e-4f);
}

TEST(SpeculatorTest, SampledModeRecordsProposalMultiplicity)
{
    // With a large k on a tiny effective vocabulary, sampling must
    // produce duplicate tokens that fold into proposal multisets.
    Fixture f;
    SpeculatorConfig cfg;
    cfg.expansion = {{12}};
    cfg.mode = SpeculationMode::Sampled;
    cfg.ssmSampling.temperature = 1.0f;
    cfg.ssmSampling.topK = 2; // only two tokens can be sampled
    Speculator spec({&f.ssm}, cfg);
    auto caches = spec.makeCaches(128);
    util::Rng rng(6);
    TokenTree tree = spec.speculate({3, 1, 4}, caches, rng);
    EXPECT_LE(tree.speculatedCount(), 2u);
    size_t proposals = 0;
    for (NodeId c : tree.node(TokenTree::kRoot).children)
        proposals += tree.node(c).proposals.size();
    EXPECT_EQ(proposals, 12u);
}

TEST(SpeculatorTest, MultiSsmMergeCoversBothPools)
{
    Fixture f;
    model::Transformer ssm2 =
        model::makeEarlyExitSsm(f.llm, 2, 0.3f, 77);
    Speculator spec({&f.ssm, &ssm2}, topkConfig({{2}}));
    auto caches = spec.makeCaches(128);
    ASSERT_EQ(caches.size(), 2u);
    util::Rng rng(7);
    TokenTree tree = spec.speculate({9, 4, 2}, caches, rng);
    // Each SSM proposed 2 root children; the merged tree carries
    // 4 proposals total (<= 4 distinct nodes).
    size_t proposals = 0;
    bool saw_ssm1 = false;
    for (NodeId c : tree.node(TokenTree::kRoot).children) {
        proposals += tree.node(c).proposals.size();
        for (int s : tree.node(c).proposals)
            saw_ssm1 |= s == 1;
    }
    EXPECT_EQ(proposals, 4u);
    EXPECT_TRUE(saw_ssm1);
    // Both SSMs' distributions are recorded at the root.
    EXPECT_NE(tree.ssmDistribution(TokenTree::kRoot, 0), nullptr);
    EXPECT_NE(tree.ssmDistribution(TokenTree::kRoot, 1), nullptr);
}

TEST(SpeculatorTest, CostAccounting)
{
    Fixture f;
    Speculator spec({&f.ssm}, topkConfig({{1, 1}}));
    auto caches = spec.makeCaches(128);
    util::Rng rng(8);
    SpeculationCost cost;
    spec.speculate({6, 6, 6}, caches, rng, &cost);
    // Catch-up decodes 3 tokens, then two 1-token levels.
    EXPECT_EQ(cost.ssmTokensDecoded, 5u);
    EXPECT_EQ(cost.ssmForwardCalls, 3u);
}

TEST(SpeculatorDeathTest, RequiresUncachedTail)
{
    Fixture f;
    Speculator spec({&f.ssm}, topkConfig({{1}}));
    auto caches = spec.makeCaches(128);
    util::Rng rng(9);
    std::vector<int> seq = {1, 2};
    spec.speculate(seq, caches, rng);
    // Cache now holds the full sequence; speculating again on the
    // same sequence violates the invariant.
    EXPECT_DEATH(spec.speculate(seq, caches, rng), "uncached");
}

} // namespace
} // namespace core
} // namespace specinfer
