#include "core/boost_tuning.h"

#include <gtest/gtest.h>

#include "../model/test_models.h"
#include "model/model_factory.h"

namespace specinfer {
namespace core {
namespace {

using specinfer::testing::tinyLlm;

std::vector<std::vector<bool>>
matrix(std::initializer_list<std::vector<bool>> rows)
{
    return {rows};
}

TEST(BoostSelectTest, PicksComplementaryPair)
{
    // Candidate 0 covers samples {0,1,2}; candidate 1 covers
    // {0,1,3}; candidate 2 covers {4,5}. Best single is 0 or 1 (3
    // samples), but the boosted pair {0 or 1, 2} covers 5 samples —
    // the filter step must prefer 2 over the redundant twin.
    auto agrees = matrix({
        {true, true, true, false, false, false},
        {true, true, false, true, false, false},
        {false, false, false, false, true, true},
    });
    BoostConfig cfg;
    cfg.poolSize = 2;
    BoostResult res = boostSelect(agrees, cfg);
    ASSERT_EQ(res.selected.size(), 2u);
    EXPECT_EQ(res.selected[0], 0u);
    EXPECT_EQ(res.selected[1], 2u);
    EXPECT_DOUBLE_EQ(res.bestSingleCoverage, 0.5);
    EXPECT_NEAR(res.aggregateCoverage, 5.0 / 6.0, 1e-12);
}

TEST(BoostSelectTest, WithoutFilterPicksRedundantTwin)
{
    // The same setup without the mark-and-filter step degenerates
    // to picking the two individually-best (but redundant) SSMs —
    // demonstrating why the paper's boosting loop filters.
    auto agrees = matrix({
        {true, true, true, false, false, false},
        {true, true, false, true, false, false},
        {false, false, false, false, true, true},
    });
    BoostConfig cfg;
    cfg.poolSize = 2;
    cfg.filterCovered = false;
    BoostResult res = boostSelect(agrees, cfg);
    EXPECT_EQ(res.selected[0], 0u);
    EXPECT_EQ(res.selected[1], 1u);
    EXPECT_NEAR(res.aggregateCoverage, 4.0 / 6.0, 1e-12);
}

TEST(BoostSelectTest, AggregateNeverWorseThanSingle)
{
    auto agrees = matrix({
        {true, false, true, false},
        {false, true, false, true},
        {true, true, false, false},
    });
    BoostConfig cfg;
    cfg.poolSize = 2;
    BoostResult res = boostSelect(agrees, cfg);
    EXPECT_GE(res.aggregateCoverage, res.bestSingleCoverage);
}

TEST(BoostSelectTest, PoolLargerThanCandidatesIsClamped)
{
    auto agrees = matrix({{true, false}});
    BoostConfig cfg;
    cfg.poolSize = 5;
    BoostResult res = boostSelect(agrees, cfg);
    EXPECT_EQ(res.selected.size(), 1u);
}

TEST(BoostSelectDeathTest, RejectsBadInput)
{
    BoostConfig cfg;
    EXPECT_DEATH(boostSelect({}, cfg), "candidates");
    auto ragged = matrix({{true, false}, {true}});
    EXPECT_DEATH(boostSelect(ragged, cfg), "ragged");
}

TEST(BoostCorpusTest, BuildsLlmTrajectories)
{
    model::Transformer llm = tinyLlm();
    std::vector<std::vector<int>> prompts = {{3, 5, 7}, {2, 4}};
    std::vector<BoostSample> corpus =
        buildBoostCorpus(llm, prompts, 4);
    ASSERT_EQ(corpus.size(), 8u);
    // Contexts grow by one token along each trajectory and each
    // llmToken equals the greedy continuation.
    EXPECT_EQ(corpus[0].context, prompts[0]);
    EXPECT_EQ(corpus[1].context.size(), 4u);
    EXPECT_EQ(corpus[1].context.back(), corpus[0].llmToken);
}

TEST(BoostEndToEndTest, DeeperExitAgreesMore)
{
    // Sanity: in the agreement matrix, a deeper early exit agrees
    // with the LLM at least as often as a very shallow one.
    model::Transformer llm = tinyLlm();
    model::Transformer deep = model::makeEarlyExitSsm(llm, 2);
    model::Transformer shallow = model::makeEarlyExitSsm(llm, 1);
    std::vector<std::vector<int>> prompts = {{3, 5, 7, 9}, {8, 1}};
    std::vector<BoostSample> corpus =
        buildBoostCorpus(llm, prompts, 6);
    auto agrees = agreementMatrix({&deep, &shallow}, corpus);
    size_t deep_hits = 0, shallow_hits = 0;
    for (size_t s = 0; s < corpus.size(); ++s) {
        deep_hits += agrees[0][s];
        shallow_hits += agrees[1][s];
    }
    EXPECT_GE(deep_hits, shallow_hits);
}

} // namespace
} // namespace core
} // namespace specinfer
