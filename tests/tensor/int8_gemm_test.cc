/**
 * @file
 * Property tests for the real-int8 path: QTensor quantization must
 * land on exactly the fakeQuantizeRows(t, 8) grid, the int8 GEMM
 * must reproduce the scalar int32 reference bit for bit on odd
 * shapes (which, on an AVX2 host, is the AVX2-vs-scalar identity
 * check — the kernel dispatches the maddubs tile while the expected
 * value runs the plain loop), the strided variant must leave gap
 * columns untouched, and results must be bit-identical across
 * thread counts {1, 2, 8}.
 */

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/qtensor.h"
#include "tensor/quant.h"
#include "util/rng.h"
#include "util/threadpool.h"

namespace {

using specinfer::tensor::QTensor;
using specinfer::tensor::Tensor;
using specinfer::util::Rng;
using specinfer::util::ThreadPool;

Tensor
randomTensor(size_t rows, size_t cols, uint64_t seed)
{
    Tensor t(rows, cols);
    Rng rng(seed);
    for (size_t i = 0; i < t.size(); ++i)
        t.data()[i] = static_cast<float>(rng.normal());
    return t;
}

TEST(Int8GemmTest, DequantizeMatchesFakeQuantGridBitwise)
{
    // The reproducibility contract: quantize + dequantize must land
    // every element on exactly the value fakeQuantizeRows(t, 8)
    // produces — not close, identical — so fake-quant acceptance
    // studies describe the real-int8 path verbatim.
    for (uint64_t seed : {1u, 2u, 3u, 44u}) {
        Tensor t = randomTensor(9, 33, seed);
        Tensor fake = t;
        specinfer::tensor::fakeQuantizeRows(fake, 8);
        QTensor q;
        specinfer::tensor::quantizeRows(t, q);
        Tensor back = specinfer::tensor::dequantize(q);
        ASSERT_EQ(back.rows(), fake.rows());
        ASSERT_EQ(back.cols(), fake.cols());
        EXPECT_EQ(std::memcmp(back.data(), fake.data(),
                              fake.size() * sizeof(float)),
                  0)
            << "dequantized grid differs from fakeQuantizeRows at "
               "seed "
            << seed;
    }
}

TEST(Int8GemmTest, QuantizeHandlesZeroAndConstantRows)
{
    Tensor t(3, 16);
    t.fill(0.0f);
    for (size_t c = 0; c < 16; ++c)
        t.row(1)[c] = 2.5f; // constant row: every quant hits +127
    t.row(2)[0] = -1.0f;    // single spike
    QTensor q;
    specinfer::tensor::quantizeRows(t, q);
    EXPECT_EQ(q.scale(0), 0.0f);
    for (size_t c = 0; c < 16; ++c) {
        EXPECT_EQ(q.row(0)[c], 0);
        EXPECT_EQ(q.row(1)[c], 127);
    }
    EXPECT_EQ(q.row(2)[0], -127);
    for (size_t c = 1; c < 16; ++c)
        EXPECT_EQ(q.row(2)[c], 0);
    Tensor back = specinfer::tensor::dequantize(q);
    for (size_t c = 0; c < 16; ++c) {
        EXPECT_EQ(back.row(0)[c], 0.0f);
        EXPECT_EQ(back.row(1)[c], 2.5f);
    }
}

TEST(Int8GemmTest, GemmMatchesScalarInt32ReferenceOnOddShapes)
{
    // Odd shapes stress the 32-byte AVX2 unroll tail (k = 7, 13,
    // 33), the m = 1 matvec split, and n not a multiple of the
    // 32-row weight block. The expected value is the header's
    // scalar dotRowI8 with the kernels' one shared float scaling
    // expression — on an AVX2 host the kernel under test runs the
    // maddubs tile, so EXPECT_EQ here IS the dispatch bit-identity
    // proof.
    struct Shape { size_t m, k, n; };
    const Shape shapes[] = {{1, 7, 33},  {1, 64, 32}, {3, 13, 70},
                            {16, 7, 33}, {17, 64, 1}, {5, 1, 5},
                            {4, 33, 40}, {2, 100, 9}};
    for (const Shape &s : shapes) {
        Tensor a = randomTensor(s.m, s.k, 111 + s.m);
        Tensor b = randomTensor(s.n, s.k, 222 + s.n);
        QTensor qa, qb;
        specinfer::tensor::quantizeRows(a, qa);
        specinfer::tensor::quantizeRows(b, qb);
        Tensor out(s.m, s.n);
        specinfer::tensor::matmulTransposedB(qa, qb, out);
        for (size_t i = 0; i < s.m; ++i)
            for (size_t j = 0; j < s.n; ++j) {
                const int32_t acc = specinfer::tensor::dotRowI8(
                    qa.row(i), qb.row(j), s.k);
                const float want = static_cast<float>(acc) *
                                   (qa.scale(i) * qb.scale(j));
                EXPECT_EQ(out.row(i)[j], want)
                    << "m=" << s.m << " k=" << s.k << " n=" << s.n
                    << " at (" << i << ", " << j << ")";
            }
    }
}

TEST(Int8GemmTest, StridedIntoWritesRowsAndLeavesGapAlone)
{
    const size_t m = 4, k = 24, n = 10, stride = 17;
    Tensor a = randomTensor(m, k, 15);
    Tensor b = randomTensor(n, k, 16);
    QTensor qa, qb;
    specinfer::tensor::quantizeRows(a, qa);
    specinfer::tensor::quantizeRows(b, qb);
    std::vector<float> buf(m * stride, -7.5f);
    specinfer::tensor::matmulTransposedBInto(qa, qb, buf.data(),
                                             stride);
    Tensor dense(m, n);
    specinfer::tensor::matmulTransposedB(qa, qb, dense);
    for (size_t i = 0; i < m; ++i) {
        for (size_t j = 0; j < n; ++j)
            EXPECT_EQ(buf[i * stride + j], dense.row(i)[j]);
        for (size_t j = n; j < stride; ++j)
            EXPECT_EQ(buf[i * stride + j], -7.5f)
                << "gap column clobbered at (" << i << ", " << j
                << ")";
    }
}

TEST(Int8GemmTest, BitIdenticalAcrossThreadCounts)
{
    ThreadPool &pool = ThreadPool::global();
    const size_t restore = pool.threads();
    const size_t m = 19, k = 37, n = 71;
    Tensor a = randomTensor(m, k, 177);
    Tensor b = randomTensor(n, k, 178);
    QTensor qa, qb;
    specinfer::tensor::quantizeRows(a, qa);
    specinfer::tensor::quantizeRows(b, qb);

    pool.setThreads(1);
    // Quantization itself is row-parallel; re-run it per thread
    // count too so the whole int8 pipeline is covered.
    QTensor qa1;
    specinfer::tensor::quantizeRows(a, qa1);
    Tensor ref(m, n);
    specinfer::tensor::matmulTransposedB(qa1, qb, ref);

    for (size_t threads : {2u, 8u}) {
        pool.setThreads(threads);
        QTensor qat;
        specinfer::tensor::quantizeRows(a, qat);
        EXPECT_EQ(std::memcmp(qat.data(), qa1.data(), qat.size()), 0)
            << "quantizeRows differs at threads=" << threads;
        EXPECT_EQ(std::memcmp(qat.scales(), qa1.scales(),
                              m * sizeof(float)),
                  0)
            << "quantizeRows scales differ at threads=" << threads;
        Tensor out(m, n);
        specinfer::tensor::matmulTransposedB(qat, qb, out);
        EXPECT_EQ(std::memcmp(out.data(), ref.data(),
                              m * n * sizeof(float)),
                  0)
            << "int8 matmulTransposedB differs at threads="
            << threads;
    }
    pool.setThreads(restore);
}

TEST(Int8GemmTest, RandomShapeSweepMatchesReference)
{
    // Seeded random-shape fuzz over the blocking/threshold space.
    Rng rng(20240808);
    for (int trial = 0; trial < 40; ++trial) {
        const size_t m = 1 + rng.uniformInt(uint64_t{24});
        const size_t k = 1 + rng.uniformInt(uint64_t{96});
        const size_t n = 1 + rng.uniformInt(uint64_t{80});
        Tensor a = randomTensor(m, k, rng.next());
        Tensor b = randomTensor(n, k, rng.next());
        QTensor qa, qb;
        specinfer::tensor::quantizeRows(a, qa);
        specinfer::tensor::quantizeRows(b, qb);
        Tensor out(m, n);
        specinfer::tensor::matmulTransposedB(qa, qb, out);
        for (size_t i = 0; i < m; ++i)
            for (size_t j = 0; j < n; ++j) {
                const float want =
                    static_cast<float>(specinfer::tensor::dotRowI8(
                        qa.row(i), qb.row(j), k)) *
                    (qa.scale(i) * qb.scale(j));
                ASSERT_EQ(out.row(i)[j], want)
                    << "trial " << trial << " m=" << m << " k=" << k
                    << " n=" << n;
            }
    }
}

} // namespace
