#include "tensor/tensor.h"

#include <gtest/gtest.h>

namespace specinfer {
namespace tensor {
namespace {

TEST(TensorTest, DefaultEmpty)
{
    Tensor t;
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.rows(), 0u);
    EXPECT_EQ(t.cols(), 0u);
}

TEST(TensorTest, ZeroInitialized)
{
    Tensor t(3, 4);
    EXPECT_EQ(t.size(), 12u);
    for (size_t r = 0; r < 3; ++r)
        for (size_t c = 0; c < 4; ++c)
            EXPECT_FLOAT_EQ(t.at(r, c), 0.0f);
}

TEST(TensorTest, FillConstructor)
{
    Tensor t(2, 2, 1.5f);
    EXPECT_FLOAT_EQ(t.at(1, 1), 1.5f);
}

TEST(TensorTest, RowMajorLayout)
{
    Tensor t(2, 3);
    t.at(1, 2) = 9.0f;
    EXPECT_FLOAT_EQ(t.data()[1 * 3 + 2], 9.0f);
    EXPECT_FLOAT_EQ(t.row(1)[2], 9.0f);
}

TEST(TensorTest, FillAndReset)
{
    Tensor t(2, 2);
    t.fill(3.0f);
    EXPECT_FLOAT_EQ(t.at(0, 1), 3.0f);
    t.reset(1, 5);
    EXPECT_EQ(t.rows(), 1u);
    EXPECT_EQ(t.cols(), 5u);
    EXPECT_FLOAT_EQ(t.at(0, 4), 0.0f);
}

TEST(TensorTest, ShapeString)
{
    Tensor t(4, 7);
    EXPECT_EQ(t.shapeString(), "[4 x 7]");
}

TEST(TensorDeathTest, OutOfRangeAborts)
{
    Tensor t(2, 2);
    EXPECT_DEATH(t.at(2, 0), "out of");
    EXPECT_DEATH(t.at(0, 2), "out of");
}

} // namespace
} // namespace tensor
} // namespace specinfer
