#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace specinfer {
namespace tensor {
namespace {

TEST(OpsTest, MatmulMatchesManual)
{
    Tensor a(2, 3), b(3, 2), out(2, 2);
    float av[] = {1, 2, 3, 4, 5, 6};
    float bv[] = {7, 8, 9, 10, 11, 12};
    std::copy(av, av + 6, a.data());
    std::copy(bv, bv + 6, b.data());
    matmul(a, b, out);
    EXPECT_FLOAT_EQ(out.at(0, 0), 58.0f);
    EXPECT_FLOAT_EQ(out.at(0, 1), 64.0f);
    EXPECT_FLOAT_EQ(out.at(1, 0), 139.0f);
    EXPECT_FLOAT_EQ(out.at(1, 1), 154.0f);
}

TEST(OpsTest, MatmulTransposedBMatchesMatmul)
{
    util::Rng rng(1);
    Tensor a(3, 4), b(5, 4), bt(4, 5), out1(3, 5), out2(3, 5);
    for (size_t i = 0; i < a.size(); ++i)
        a.data()[i] = static_cast<float>(rng.normal());
    for (size_t r = 0; r < 5; ++r)
        for (size_t c = 0; c < 4; ++c) {
            float v = static_cast<float>(rng.normal());
            b.at(r, c) = v;
            bt.at(c, r) = v;
        }
    matmulTransposedB(a, b, out1);
    matmul(a, bt, out2);
    for (size_t i = 0; i < out1.size(); ++i)
        EXPECT_NEAR(out1.data()[i], out2.data()[i], 1e-4f);
}

TEST(OpsTest, MatvecTransposedMatchesMatmulT)
{
    util::Rng rng(2);
    Tensor x(1, 6), w(4, 6), expect(1, 4);
    for (size_t i = 0; i < x.size(); ++i)
        x.data()[i] = static_cast<float>(rng.normal());
    for (size_t i = 0; i < w.size(); ++i)
        w.data()[i] = static_cast<float>(rng.normal());
    matmulTransposedB(x, w, expect);
    float out[4];
    matvecTransposed(x.data(), w, out);
    for (size_t j = 0; j < 4; ++j)
        EXPECT_FLOAT_EQ(out[j], expect.at(0, j));
}

TEST(OpsTest, SoftmaxNormalizes)
{
    float row[] = {1.0f, 2.0f, 3.0f};
    softmaxRow(row, 3);
    float total = row[0] + row[1] + row[2];
    EXPECT_NEAR(total, 1.0f, 1e-6f);
    EXPECT_GT(row[2], row[1]);
    EXPECT_GT(row[1], row[0]);
}

TEST(OpsTest, SoftmaxStableForLargeLogits)
{
    float row[] = {1000.0f, 1001.0f};
    softmaxRow(row, 2);
    EXPECT_NEAR(row[0] + row[1], 1.0f, 1e-6f);
    EXPECT_FALSE(std::isnan(row[0]));
}

TEST(OpsTest, SoftmaxTemperatureSharpens)
{
    float hot[] = {1.0f, 2.0f};
    float cold[] = {1.0f, 2.0f};
    softmaxRowTemperature(hot, 2, 2.0f);
    softmaxRowTemperature(cold, 2, 0.5f);
    EXPECT_GT(cold[1], hot[1]);
}

TEST(OpsTest, SoftmaxZeroTemperatureIsOneHot)
{
    float row[] = {0.5f, 3.0f, 1.0f};
    softmaxRowTemperature(row, 3, 0.0f);
    EXPECT_FLOAT_EQ(row[0], 0.0f);
    EXPECT_FLOAT_EQ(row[1], 1.0f);
    EXPECT_FLOAT_EQ(row[2], 0.0f);
}

TEST(OpsTest, RmsnormUnitGain)
{
    float x[] = {3.0f, 4.0f};
    float gain[] = {1.0f, 1.0f};
    float out[2];
    rmsnormRow(x, gain, 2, out, 0.0f);
    // rms = sqrt((9+16)/2) = sqrt(12.5)
    float rms = std::sqrt(12.5f);
    EXPECT_NEAR(out[0], 3.0f / rms, 1e-5f);
    EXPECT_NEAR(out[1], 4.0f / rms, 1e-5f);
}

TEST(OpsTest, RmsnormAliasSafe)
{
    float x[] = {1.0f, 2.0f, 3.0f};
    float gain[] = {2.0f, 2.0f, 2.0f};
    float expect[3];
    rmsnormRow(x, gain, 3, expect);
    rmsnormRow(x, gain, 3, x);
    for (int i = 0; i < 3; ++i)
        EXPECT_FLOAT_EQ(x[i], expect[i]);
}

TEST(OpsTest, SiluValues)
{
    float row[] = {0.0f, 100.0f};
    siluRow(row, 2);
    EXPECT_FLOAT_EQ(row[0], 0.0f);
    EXPECT_NEAR(row[1], 100.0f, 1e-3f);
}

TEST(OpsTest, GeluValues)
{
    float row[] = {0.0f, 10.0f, -10.0f};
    geluRow(row, 3);
    EXPECT_FLOAT_EQ(row[0], 0.0f);
    EXPECT_NEAR(row[1], 10.0f, 1e-3f);
    EXPECT_NEAR(row[2], 0.0f, 1e-3f);
}

TEST(OpsTest, RowArithmetic)
{
    float a[] = {1.0f, 2.0f};
    float b[] = {3.0f, 5.0f};
    addRow(a, b, 2);
    EXPECT_FLOAT_EQ(a[0], 4.0f);
    scaleRow(a, 2, 0.5f);
    EXPECT_FLOAT_EQ(a[1], 3.5f);
    float out[2];
    mulRows(out, a, b, 2);
    EXPECT_FLOAT_EQ(out[0], 6.0f);
    EXPECT_FLOAT_EQ(dotRow(a, b, 2), 2.0f * 3.0f + 3.5f * 5.0f);
}

TEST(OpsTest, RopePreservesNorm)
{
    float row[] = {1.0f, 2.0f, 3.0f, 4.0f};
    float norm_before = dotRow(row, row, 4);
    ropeRow(row, 2, 2, 17);
    EXPECT_NEAR(dotRow(row, row, 4), norm_before, 1e-4f);
}

TEST(OpsTest, RopePositionZeroIsIdentity)
{
    float row[] = {1.0f, 2.0f, 3.0f, 4.0f};
    float orig[] = {1.0f, 2.0f, 3.0f, 4.0f};
    ropeRow(row, 1, 4, 0);
    for (int i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(row[i], orig[i]);
}

TEST(OpsTest, RopeRelativeProperty)
{
    // Dot products of RoPE'd q/k depend only on relative offset.
    float q1[] = {0.3f, -0.7f};
    float k1[] = {1.1f, 0.2f};
    float q2[] = {0.3f, -0.7f};
    float k2[] = {1.1f, 0.2f};
    ropeRow(q1, 1, 2, 5);
    ropeRow(k1, 1, 2, 3);
    ropeRow(q2, 1, 2, 9);
    ropeRow(k2, 1, 2, 7);
    EXPECT_NEAR(dotRow(q1, k1, 2), dotRow(q2, k2, 2), 1e-5f);
}

TEST(OpsTest, ArgmaxFirstOnTies)
{
    float row[] = {1.0f, 5.0f, 5.0f, 0.0f};
    EXPECT_EQ(argmaxRow(row, 4), 1u);
}

TEST(OpsTest, TopkDescending)
{
    float row[] = {0.1f, 0.9f, 0.5f, 0.7f};
    auto top = topkRow(row, 4, 3);
    ASSERT_EQ(top.size(), 3u);
    EXPECT_EQ(top[0], 1u);
    EXPECT_EQ(top[1], 3u);
    EXPECT_EQ(top[2], 2u);
}

TEST(OpsTest, TopkAllElements)
{
    float row[] = {2.0f, 1.0f};
    auto top = topkRow(row, 2, 2);
    EXPECT_EQ(top[0], 0u);
    EXPECT_EQ(top[1], 1u);
}

TEST(OpsTest, TotalVariation)
{
    float p[] = {0.5f, 0.5f, 0.0f};
    float q[] = {0.0f, 0.5f, 0.5f};
    EXPECT_NEAR(totalVariation(p, q, 3), 0.5, 1e-9);
    EXPECT_NEAR(totalVariation(p, p, 3), 0.0, 1e-9);
}

} // namespace
} // namespace tensor
} // namespace specinfer
