#include "tensor/quant.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.h"

namespace specinfer {
namespace tensor {
namespace {

Tensor
randomTensor(size_t rows, size_t cols, uint64_t seed)
{
    Tensor t(rows, cols);
    util::Rng rng(seed);
    for (size_t i = 0; i < t.size(); ++i)
        t.data()[i] = static_cast<float>(rng.normal());
    return t;
}

TEST(QuantTest, EightBitErrorIsSmall)
{
    Tensor t = randomTensor(16, 64, 1);
    Tensor orig = t;
    fakeQuantizeRows(t, 8);
    double err = meanAbsDiff(t, orig);
    EXPECT_GT(err, 0.0);
    // Max |x| ~ 3.5; 8-bit grid step ~ 3.5/127; mean rounding error
    // ~ step/4.
    EXPECT_LT(err, 0.02);
}

TEST(QuantTest, FewerBitsMoreError)
{
    Tensor orig = randomTensor(8, 32, 2);
    double prev = 0.0;
    for (int bits : {8, 4, 2}) {
        Tensor t = orig;
        fakeQuantizeRows(t, bits);
        double err = meanAbsDiff(t, orig);
        EXPECT_GT(err, prev);
        prev = err;
    }
}

TEST(QuantTest, GridHasAtMostTwoToBitsLevels)
{
    Tensor t = randomTensor(1, 256, 3);
    fakeQuantizeRows(t, 3); // levels in [-3..3] * scale
    std::set<float> levels(t.data(), t.data() + t.size());
    EXPECT_LE(levels.size(), 7u);
}

TEST(QuantTest, IdempotentOnGrid)
{
    Tensor t = randomTensor(4, 16, 4);
    fakeQuantizeRows(t, 5);
    Tensor once = t;
    fakeQuantizeRows(t, 5);
    for (size_t i = 0; i < t.size(); ++i)
        EXPECT_FLOAT_EQ(t.data()[i], once.data()[i]);
}

TEST(QuantTest, ZeroRowUntouched)
{
    Tensor t(2, 4);
    fakeQuantizeRows(t, 8);
    for (size_t i = 0; i < t.size(); ++i)
        EXPECT_FLOAT_EQ(t.data()[i], 0.0f);
}

TEST(PruneTest, SparsityAchieved)
{
    Tensor t = randomTensor(16, 64, 5);
    pruneByMagnitude(t, 0.5);
    EXPECT_NEAR(zeroFraction(t), 0.5, 0.01);
}

TEST(PruneTest, KeepsLargestMagnitudes)
{
    Tensor t(1, 6);
    float vals[] = {0.1f, -5.0f, 0.2f, 3.0f, -0.05f, 1.0f};
    std::copy(vals, vals + 6, t.data());
    pruneByMagnitude(t, 0.5);
    EXPECT_FLOAT_EQ(t.at(0, 1), -5.0f);
    EXPECT_FLOAT_EQ(t.at(0, 3), 3.0f);
    EXPECT_FLOAT_EQ(t.at(0, 5), 1.0f);
    EXPECT_FLOAT_EQ(t.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(t.at(0, 2), 0.0f);
    EXPECT_FLOAT_EQ(t.at(0, 4), 0.0f);
}

TEST(PruneTest, ZeroSparsityIsNoop)
{
    Tensor t = randomTensor(4, 8, 6);
    Tensor orig = t;
    pruneByMagnitude(t, 0.0);
    for (size_t i = 0; i < t.size(); ++i)
        EXPECT_FLOAT_EQ(t.data()[i], orig.data()[i]);
}

TEST(QuantDeathTest, RejectsBadParams)
{
    Tensor t(2, 2);
    EXPECT_DEATH(fakeQuantizeRows(t, 1), "width");
    EXPECT_DEATH(fakeQuantizeRows(t, 9), "width");
    EXPECT_DEATH(pruneByMagnitude(t, 1.0), "sparsity");
}

} // namespace
} // namespace tensor
} // namespace specinfer
