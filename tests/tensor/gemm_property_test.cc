/**
 * @file
 * Property tests for the cache-blocked, row-parallel GEMM kernels:
 * blocked results must match a naive reference on odd shapes (m = 1,
 * k not a multiple of the unroll or block width), the strided
 * matmulTransposedBInto must leave the gap columns untouched, and
 * every kernel must be bit-identical across pool sizes — the
 * determinism contract the differential oracle depends on.
 */

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "util/rng.h"
#include "util/threadpool.h"

namespace {

using specinfer::tensor::Tensor;
using specinfer::util::Rng;
using specinfer::util::ThreadPool;

Tensor
randomTensor(size_t rows, size_t cols, uint64_t seed)
{
    Tensor t(rows, cols);
    Rng rng(seed);
    for (size_t i = 0; i < t.size(); ++i)
        t.data()[i] = static_cast<float>(rng.normal());
    return t;
}

/** Naive reference: out[i][j] = sum_kk a[i][kk] * b[kk][j]. */
Tensor
naiveMatmul(const Tensor &a, const Tensor &b)
{
    Tensor out(a.rows(), b.cols());
    for (size_t i = 0; i < a.rows(); ++i)
        for (size_t j = 0; j < b.cols(); ++j) {
            float acc = 0.0f;
            for (size_t kk = 0; kk < a.cols(); ++kk)
                acc += a.row(i)[kk] * b.row(kk)[j];
            out.row(i)[j] = acc;
        }
    return out;
}

TEST(GemmPropertyTest, BlockedMatmulTransposedBMatchesDotOnOddShapes)
{
    // Shapes chosen to stress the edges: m = 1 (the matvec case),
    // k = 7 / 13 (not multiples of the 8-wide unroll), n = 33 / 70
    // (not multiples of the 32-row weight block).
    struct Shape { size_t m, k, n; };
    const Shape shapes[] = {{1, 7, 33},  {1, 64, 32}, {3, 13, 70},
                            {16, 7, 33}, {17, 64, 1}, {5, 1, 5}};
    for (const Shape &s : shapes) {
        Tensor a = randomTensor(s.m, s.k, 11 + s.m);
        Tensor b = randomTensor(s.n, s.k, 23 + s.n);
        Tensor out(s.m, s.n);
        specinfer::tensor::matmulTransposedB(a, b, out);
        for (size_t i = 0; i < s.m; ++i)
            for (size_t j = 0; j < s.n; ++j) {
                // The kernel's contract: every element IS
                // dotRow(a_i, b_j, k), whatever the blocking.
                const float want = specinfer::tensor::dotRow(
                    a.row(i), b.row(j), s.k);
                EXPECT_EQ(out.row(i)[j], want)
                    << "m=" << s.m << " k=" << s.k << " n=" << s.n
                    << " at (" << i << ", " << j << ")";
            }
    }
}

TEST(GemmPropertyTest, MatmulMatchesNaiveReference)
{
    struct Shape { size_t m, k, n; };
    const Shape shapes[] = {{1, 5, 9}, {4, 16, 16}, {13, 7, 21}};
    for (const Shape &s : shapes) {
        Tensor a = randomTensor(s.m, s.k, 31 + s.m);
        Tensor b = randomTensor(s.k, s.n, 41 + s.n);
        Tensor out(s.m, s.n);
        specinfer::tensor::matmul(a, b, out);
        Tensor want = naiveMatmul(a, b);
        for (size_t i = 0; i < s.m; ++i)
            for (size_t j = 0; j < s.n; ++j)
                EXPECT_FLOAT_EQ(out.row(i)[j], want.row(i)[j]);
    }
}

TEST(GemmPropertyTest, StridedIntoWritesRowsAndLeavesGapAlone)
{
    const size_t m = 4, k = 24, n = 10, stride = 17;
    Tensor a = randomTensor(m, k, 5);
    Tensor b = randomTensor(n, k, 6);
    std::vector<float> buf(m * stride, -7.5f);
    specinfer::tensor::matmulTransposedBInto(a, b, buf.data(),
                                             stride);
    Tensor dense(m, n);
    specinfer::tensor::matmulTransposedB(a, b, dense);
    for (size_t i = 0; i < m; ++i) {
        for (size_t j = 0; j < n; ++j)
            EXPECT_EQ(buf[i * stride + j], dense.row(i)[j]);
        for (size_t j = n; j < stride; ++j)
            EXPECT_EQ(buf[i * stride + j], -7.5f)
                << "gap column clobbered at (" << i << ", " << j
                << ")";
    }
}

TEST(GemmPropertyTest, KernelsBitIdenticalAcrossThreadCounts)
{
    ThreadPool &pool = ThreadPool::global();
    const size_t restore = pool.threads();
    const size_t m = 19, k = 37, n = 71;
    Tensor a = randomTensor(m, k, 77);
    Tensor bt = randomTensor(n, k, 78);
    Tensor b = randomTensor(k, n, 79);

    pool.setThreads(1);
    Tensor t_ref(m, n), m_ref(m, n);
    specinfer::tensor::matmulTransposedB(a, bt, t_ref);
    specinfer::tensor::matmul(a, b, m_ref);

    for (size_t threads : {2u, 8u}) {
        pool.setThreads(threads);
        Tensor t_out(m, n), m_out(m, n);
        specinfer::tensor::matmulTransposedB(a, bt, t_out);
        specinfer::tensor::matmul(a, b, m_out);
        EXPECT_EQ(std::memcmp(t_out.data(), t_ref.data(),
                              m * n * sizeof(float)),
                  0)
            << "matmulTransposedB differs at threads=" << threads;
        EXPECT_EQ(std::memcmp(m_out.data(), m_ref.data(),
                              m * n * sizeof(float)),
                  0)
            << "matmul differs at threads=" << threads;
    }
    pool.setThreads(restore);
}

TEST(GemmPropertyTest, MatvecMatchesGemmRow)
{
    // The scalar matvec and the batched GEMM share dotRow, so a
    // one-row GEMM must equal the matvec bit for bit.
    const size_t k = 50, n = 23;
    Tensor a = randomTensor(1, k, 91);
    Tensor w = randomTensor(n, k, 92);
    Tensor out(1, n);
    specinfer::tensor::matmulTransposedB(a, w, out);
    std::vector<float> ref(n);
    specinfer::tensor::matvecTransposed(a.row(0), w, ref.data());
    for (size_t j = 0; j < n; ++j)
        EXPECT_EQ(out.row(0)[j], ref[j]);
}

TEST(GemmPropertyTest, RopeCachedMatchesDirect)
{
    const size_t n_heads = 4, d_head = 16;
    for (size_t pos : {0u, 1u, 63u, 500u}) {
        std::vector<float> direct(n_heads * d_head);
        Rng rng(pos + 3);
        for (float &x : direct)
            x = static_cast<float>(rng.normal());
        std::vector<float> cached = direct;

        specinfer::tensor::ropeRow(direct.data(), n_heads, d_head,
                                   pos, 10000.0f);
        std::vector<float> tab(d_head);
        specinfer::tensor::ropeCosSin(d_head, pos, 10000.0f,
                                      tab.data());
        specinfer::tensor::ropeRowCached(cached.data(), n_heads,
                                         d_head, tab.data());
        for (size_t i = 0; i < direct.size(); ++i)
            EXPECT_EQ(direct[i], cached[i]) << "pos=" << pos;
    }
}

} // namespace
