/**
 * @file
 * Edge cases of DecodeChunk visibility control: explicit prefixLen
 * narrower than the cache, extra-slot inheritance rules, and
 * position derivation at boundaries.
 */

#include <gtest/gtest.h>

#include "model/transformer.h"
#include "test_models.h"

namespace specinfer {
namespace model {
namespace {

using specinfer::testing::tinyLlm;

TEST(ChunkEdgeTest, NarrowPrefixHidesLaterCacheRows)
{
    // A chunk with prefixLen = 2 over a cache of 4 must behave as
    // if the last two cached tokens did not exist.
    Transformer llm = tinyLlm();

    KvCache full = llm.makeCache();
    llm.forward(DecodeChunk::sequence({3, 5, 7, 9}), full);
    DecodeChunk narrow = DecodeChunk::single(11);
    narrow.prefixLen = 2;
    tensor::Tensor narrow_logits = llm.forward(narrow, full);

    KvCache short_cache = llm.makeCache();
    llm.forward(DecodeChunk::sequence({3, 5}), short_cache);
    tensor::Tensor ref_logits =
        llm.forward(DecodeChunk::single(11), short_cache);

    for (size_t c = 0; c < llm.config().vocabSize; ++c)
        ASSERT_EQ(narrow_logits.at(0, c), ref_logits.at(0, c));
}

TEST(ChunkEdgeTest, PositionsDeriveFromPrefixAndExtras)
{
    // Token with prefixLen p and e extra slots sits at position
    // p + e; verified by equivalence with a plain sequence decode.
    Transformer llm = tinyLlm();

    KvCache cache = llm.makeCache();
    llm.forward(DecodeChunk::sequence({2, 4, 6}), cache); // slots 0-2
    // Cache another token (slot 3) that only the chunk token's
    // extra list will expose.
    DecodeChunk extra_tok = DecodeChunk::single(8);
    llm.forward(extra_tok, cache);

    DecodeChunk chunk = DecodeChunk::single(10);
    chunk.prefixLen = 3;
    chunk.extraSlots = {{3}};
    tensor::Tensor got = llm.forward(chunk, cache);

    KvCache ref_cache = llm.makeCache();
    tensor::Tensor ref = llm.forward(
        DecodeChunk::sequence({2, 4, 6, 8, 10}), ref_cache);
    for (size_t c = 0; c < llm.config().vocabSize; ++c)
        ASSERT_EQ(got.at(0, c), ref.at(4, c));
}

TEST(ChunkEdgeDeathTest, ExtraSlotsMustSitBetweenPrefixAndEntry)
{
    Transformer llm = tinyLlm();
    KvCache cache = llm.makeCache();
    llm.forward(DecodeChunk::sequence({1, 2, 3}), cache);
    DecodeChunk chunk = DecodeChunk::single(4);
    chunk.prefixLen = 2;
    chunk.extraSlots = {{1}}; // inside the prefix: invalid
    EXPECT_DEATH(llm.forward(chunk, cache), "outside");
    DecodeChunk chunk2 = DecodeChunk::single(4);
    chunk2.prefixLen = 2;
    chunk2.extraSlots = {{5}}; // beyond entry length: invalid
    EXPECT_DEATH(llm.forward(chunk2, cache), "outside");
}

TEST(ChunkEdgeDeathTest, PrefixBeyondCacheLength)
{
    Transformer llm = tinyLlm();
    KvCache cache = llm.makeCache();
    llm.forward(DecodeChunk::sequence({1, 2}), cache);
    DecodeChunk chunk = DecodeChunk::single(3);
    chunk.prefixLen = 5;
    EXPECT_DEATH(llm.forward(chunk, cache), "prefixLen");
}

TEST(ChunkEdgeDeathTest, ChildMustInheritParentExtras)
{
    Transformer llm = tinyLlm();
    KvCache cache = llm.makeCache();
    llm.forward(DecodeChunk::sequence({1, 2, 3}), cache);
    DecodeChunk chunk;
    chunk.tokens = {4, 5};
    chunk.parents = {-1, 0};
    chunk.prefixLen = 2;
    chunk.extraSlots = {{2}, {}}; // child drops the parent's extra
    EXPECT_DEATH(llm.forward(chunk, cache), "inherit");
}

TEST(ChunkEdgeTest, EmptyExtrasVectorEqualsPerTokenEmpty)
{
    Transformer llm = tinyLlm();
    KvCache a = llm.makeCache();
    KvCache b = llm.makeCache();
    llm.forward(DecodeChunk::sequence({7, 8}), a);
    llm.forward(DecodeChunk::sequence({7, 8}), b);
    DecodeChunk no_field = DecodeChunk::sequence({9, 10});
    DecodeChunk with_field = DecodeChunk::sequence({9, 10});
    with_field.extraSlots = {{}, {}};
    tensor::Tensor la = llm.forward(no_field, a);
    tensor::Tensor lb = llm.forward(with_field, b);
    for (size_t i = 0; i < la.size(); ++i)
        ASSERT_EQ(la.data()[i], lb.data()[i]);
}

} // namespace
} // namespace model
} // namespace specinfer
