#include "model/transformer.h"

#include <gtest/gtest.h>

#include "test_models.h"
#include "model/model_factory.h"
#include "util/rng.h"

namespace specinfer {
namespace model {
namespace {

using specinfer::testing::randomPrompt;
using specinfer::testing::tinyConfig;
using specinfer::testing::tinyLlm;

TEST(DecodeChunkTest, Constructors)
{
    DecodeChunk single = DecodeChunk::single(5);
    EXPECT_EQ(single.size(), 1u);
    EXPECT_EQ(single.parents[0], -1);

    DecodeChunk seq = DecodeChunk::sequence({1, 2, 3});
    EXPECT_EQ(seq.size(), 3u);
    EXPECT_EQ(seq.parents[0], -1);
    EXPECT_EQ(seq.parents[2], 1);
    seq.validate();
}

TEST(DecodeChunkDeathTest, RejectsForwardParents)
{
    DecodeChunk chunk;
    chunk.tokens = {1, 2};
    chunk.parents = {1, -1}; // parent after child
    EXPECT_DEATH(chunk.validate(), "topological");
}

TEST(TransformerTest, DeterministicForward)
{
    Transformer llm = tinyLlm();
    KvCache a = llm.makeCache();
    KvCache b = llm.makeCache();
    DecodeChunk chunk = DecodeChunk::sequence({3, 7, 11});
    tensor::Tensor la = llm.forward(chunk, a);
    tensor::Tensor lb = llm.forward(chunk, b);
    ASSERT_EQ(la.size(), lb.size());
    for (size_t i = 0; i < la.size(); ++i)
        EXPECT_FLOAT_EQ(la.data()[i], lb.data()[i]);
}

TEST(TransformerTest, LogitsShape)
{
    Transformer llm = tinyLlm();
    KvCache cache = llm.makeCache();
    tensor::Tensor logits =
        llm.forward(DecodeChunk::sequence({1, 2}), cache);
    EXPECT_EQ(logits.rows(), 2u);
    EXPECT_EQ(logits.cols(), llm.config().vocabSize);
    EXPECT_EQ(cache.length(), 2u);
}

TEST(TransformerTest, IncrementalMatchesPrefill)
{
    // KV-cache consistency: decoding token-by-token must produce the
    // same final-row logits as prefilling the whole sequence.
    Transformer llm = tinyLlm();
    util::Rng rng(5);
    std::vector<int> seq =
        randomPrompt(rng, 12, llm.config().vocabSize);

    KvCache full = llm.makeCache();
    tensor::Tensor full_logits =
        llm.forward(DecodeChunk::sequence(seq), full);

    KvCache inc = llm.makeCache();
    tensor::Tensor step_logits;
    for (int tok : seq)
        step_logits = llm.forward(DecodeChunk::single(tok), inc);

    for (size_t c = 0; c < llm.config().vocabSize; ++c)
        EXPECT_FLOAT_EQ(step_logits.at(0, c),
                        full_logits.at(seq.size() - 1, c));
    EXPECT_EQ(inc.length(), full.length());
}

TEST(TransformerTest, ChunkSplitInvariance)
{
    // Splitting a sequence into arbitrary chunks cannot change
    // logits (positions/masks derive correctly at boundaries).
    Transformer llm = tinyLlm();
    util::Rng rng(6);
    std::vector<int> seq =
        randomPrompt(rng, 10, llm.config().vocabSize);

    KvCache a = llm.makeCache();
    tensor::Tensor whole = llm.forward(DecodeChunk::sequence(seq), a);

    KvCache b = llm.makeCache();
    std::vector<int> first(seq.begin(), seq.begin() + 4);
    std::vector<int> second(seq.begin() + 4, seq.end());
    llm.forward(DecodeChunk::sequence(first), b);
    tensor::Tensor part =
        llm.forward(DecodeChunk::sequence(second), b);

    for (size_t i = 0; i < second.size(); ++i)
        for (size_t c = 0; c < llm.config().vocabSize; ++c)
            EXPECT_FLOAT_EQ(part.at(i, c), whole.at(4 + i, c));
}

TEST(TransformerTest, TruncateThenRedecodeMatches)
{
    // Speculation rollback: truncating the cache and re-decoding
    // gives identical logits.
    Transformer llm = tinyLlm();
    KvCache cache = llm.makeCache();
    llm.forward(DecodeChunk::sequence({4, 5, 6}), cache);
    tensor::Tensor before =
        llm.forward(DecodeChunk::single(9), cache);
    cache.truncate(3);
    tensor::Tensor after = llm.forward(DecodeChunk::single(9), cache);
    for (size_t c = 0; c < llm.config().vocabSize; ++c)
        EXPECT_FLOAT_EQ(after.at(0, c), before.at(0, c));
}

TEST(TransformerTest, EarlyExitSsmSharesWeights)
{
    Transformer llm = tinyLlm();
    Transformer ssm = makeEarlyExitSsm(llm, 2);
    EXPECT_EQ(ssm.config().nLayers, 2u);
    EXPECT_EQ(ssm.weights().get(), llm.weights().get());
    EXPECT_NE(ssm.config().name, llm.config().name);
}

TEST(TransformerTest, EarlyExitMatchesShallowModel)
{
    // An early-exit SSM must behave exactly like a model built from
    // scratch with the same seed and fewer layers.
    Transformer llm = tinyLlm(1234);
    Transformer ssm = makeEarlyExitSsm(llm, 2);

    ModelConfig shallow_cfg = tinyConfig(1234);
    shallow_cfg.nLayers = 2;
    Transformer shallow = makeLlm(shallow_cfg);

    KvCache a = ssm.makeCache();
    KvCache b = shallow.makeCache();
    DecodeChunk chunk = DecodeChunk::sequence({2, 3, 5, 8});
    tensor::Tensor la = ssm.forward(chunk, a);
    tensor::Tensor lb = shallow.forward(chunk, b);
    for (size_t i = 0; i < la.size(); ++i)
        EXPECT_FLOAT_EQ(la.data()[i], lb.data()[i]);
}

TEST(TransformerTest, NoisyHeadSsmDiffers)
{
    Transformer llm = tinyLlm();
    Transformer a = makeEarlyExitSsm(llm, 2, 0.05f, 1);
    Transformer b = makeEarlyExitSsm(llm, 2, 0.05f, 2);
    KvCache ca = a.makeCache();
    KvCache cb = b.makeCache();
    tensor::Tensor la = a.forward(DecodeChunk::single(7), ca);
    tensor::Tensor lb = b.forward(DecodeChunk::single(7), cb);
    bool any_diff = false;
    for (size_t i = 0; i < la.size() && !any_diff; ++i)
        any_diff = la.data()[i] != lb.data()[i];
    EXPECT_TRUE(any_diff);
}

TEST(TransformerTest, KernelLaunchCounter)
{
    Transformer llm = tinyLlm();
    KvCache cache = llm.makeCache();
    EXPECT_EQ(llm.kernelLaunches(), 0u);
    llm.forward(DecodeChunk::single(1), cache);
    llm.forward(DecodeChunk::single(2), cache);
    EXPECT_EQ(llm.kernelLaunches(), 2u);
}

TEST(TransformerDeathTest, RejectsOutOfVocabToken)
{
    Transformer llm = tinyLlm();
    KvCache cache = llm.makeCache();
    DecodeChunk chunk = DecodeChunk::single(
        static_cast<int>(llm.config().vocabSize));
    EXPECT_DEATH(llm.forward(chunk, cache), "vocabulary");
}

TEST(TransformerDeathTest, RejectsDeeperConfigThanWeights)
{
    Transformer llm = tinyLlm();
    ModelConfig cfg = llm.config();
    cfg.nLayers += 1;
    EXPECT_DEATH(Transformer(cfg, llm.weights()), "layers");
}

} // namespace
} // namespace model
} // namespace specinfer
