/**
 * @file
 * The sharded-forward bit-identity sweep: tensor-parallel degrees
 * {2, 4, 8} must produce logits AND KV-cache contents byte-equal to
 * tp=1 for prefill, tree decode, and the int8 SSM path — the
 * determinism contract of DESIGN.md §5j. Also covers the typed
 * rejection of non-divisible head splits and the PR-1 differential
 * oracle under sharded configurations (the harness draws a random
 * tensor-parallel degree per seed).
 */

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "model/model_factory.h"
#include "model/transformer.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "verify/diff_harness.h"

#include "test_models.h"

namespace {

using namespace specinfer;
namespace spectest = specinfer::testing;

/** Eight heads so the sweep can shard at tp up to 8 (tinyConfig has
 *  only four); dFf deliberately not a multiple of nHeads to exercise
 *  uneven canonical reduce blocks in the down-projection. */
model::ModelConfig
wideConfig(uint64_t seed = 123)
{
    model::ModelConfig cfg;
    cfg.name = "test-wide";
    cfg.vocabSize = 96;
    cfg.dModel = 64;
    cfg.nHeads = 8;
    cfg.dFf = 84;
    cfg.nLayers = 2;
    cfg.maxSeqLen = 160;
    cfg.seed = seed;
    return cfg;
}

/** Prefix prefill + one tree chunk against `llm`; returns both
 *  chunks' logits concatenated and leaves the cache populated. */
tensor::Tensor
runForward(model::Transformer &llm, model::KvCache &cache)
{
    util::Rng rng(17);
    std::vector<int> prefix = spectest::randomPrompt(
        rng, 24, llm.config().vocabSize);
    tensor::Tensor prefill_logits = llm.forward(
        model::DecodeChunk::sequence(prefix), cache);
    model::DecodeChunk chunk = spectest::randomTreeChunk(
        rng, 16, llm.config().vocabSize);
    tensor::Tensor tree_logits = llm.forward(chunk, cache);

    tensor::Tensor all(prefill_logits.rows() + tree_logits.rows(),
                       prefill_logits.cols());
    std::memcpy(all.data(), prefill_logits.data(),
                prefill_logits.size() * sizeof(float));
    std::memcpy(all.data() + prefill_logits.size(),
                tree_logits.data(),
                tree_logits.size() * sizeof(float));
    return all;
}

/** Byte equality of two caches' live rows, every layer. */
void
expectCachesIdentical(const model::KvCache &got,
                      const model::KvCache &ref, size_t tp)
{
    ASSERT_EQ(got.length(), ref.length());
    ASSERT_EQ(got.kvDim(), ref.kvDim());
    ASSERT_EQ(got.layers(), ref.layers());
    const size_t bytes =
        got.length() * got.kvDim() * sizeof(float);
    for (size_t layer = 0; layer < got.layers(); ++layer) {
        EXPECT_EQ(std::memcmp(got.keyRow(layer, 0),
                              ref.keyRow(layer, 0), bytes),
                  0)
            << "keys differ at layer " << layer << " tp=" << tp;
        EXPECT_EQ(std::memcmp(got.valueRow(layer, 0),
                              ref.valueRow(layer, 0), bytes),
                  0)
            << "values differ at layer " << layer << " tp=" << tp;
    }
}

TEST(ShardedForwardTest, LogitsAndKvBitIdenticalAcrossTpDegrees)
{
    model::ModelConfig ref_cfg = wideConfig();
    model::Transformer ref_llm = model::makeLlm(ref_cfg);
    model::KvCache ref_cache = ref_llm.makeCache();
    tensor::Tensor ref = runForward(ref_llm, ref_cache);

    for (size_t tp : {2u, 4u, 8u}) {
        model::ModelConfig cfg = wideConfig();
        cfg.tensorParallel = tp;
        model::Transformer llm = model::makeLlm(cfg);
        model::KvCache cache = llm.makeCache();
        tensor::Tensor got = runForward(llm, cache);
        ASSERT_EQ(got.rows(), ref.rows());
        ASSERT_EQ(got.cols(), ref.cols());
        EXPECT_EQ(std::memcmp(got.data(), ref.data(),
                              ref.size() * sizeof(float)),
                  0)
            << "sharded logits differ at tp=" << tp;
        expectCachesIdentical(cache, ref_cache, tp);
    }
}

/** The tiny 4-head preset (what the serving tests and the daemon
 *  run) at its full shardable range. */
TEST(ShardedForwardTest, TinyPresetShardsBitIdentically)
{
    model::Transformer ref_llm = spectest::tinyLlm();
    model::KvCache ref_cache = ref_llm.makeCache();
    tensor::Tensor ref = runForward(ref_llm, ref_cache);
    for (size_t tp : {2u, 4u}) {
        model::ModelConfig cfg = spectest::tinyConfig();
        cfg.tensorParallel = tp;
        model::Transformer llm = model::makeLlm(cfg);
        model::KvCache cache = llm.makeCache();
        tensor::Tensor got = runForward(llm, cache);
        EXPECT_EQ(std::memcmp(got.data(), ref.data(),
                              ref.size() * sizeof(float)),
                  0)
            << "tiny preset logits differ at tp=" << tp;
        expectCachesIdentical(cache, ref_cache, tp);
    }
}

/** The integer GEMM path: int8 SSM slice products must fold to the
 *  same bits at every degree (activation scales are computed on
 *  full rows orchestrator-side, so they are tp-invariant). */
TEST(ShardedForwardTest, Int8SsmBitIdenticalAcrossTpDegrees)
{
    model::ModelConfig ref_cfg = wideConfig();
    model::Transformer ref_llm = model::makeLlm(ref_cfg);
    model::Transformer ref_ssm = model::makeInt8Ssm(ref_llm, 1);
    model::KvCache ref_cache = ref_ssm.makeCache();
    tensor::Tensor ref = runForward(ref_ssm, ref_cache);

    for (size_t tp : {2u, 8u}) {
        model::ModelConfig cfg = wideConfig();
        cfg.tensorParallel = tp;
        model::Transformer llm = model::makeLlm(cfg);
        model::Transformer ssm = model::makeInt8Ssm(llm, 1);
        ASSERT_EQ(ssm.config().tensorParallel, tp)
            << "factory must propagate the degree to derived SSMs";
        model::KvCache cache = ssm.makeCache();
        tensor::Tensor got = runForward(ssm, cache);
        EXPECT_EQ(std::memcmp(got.data(), ref.data(),
                              ref.size() * sizeof(float)),
                  0)
            << "int8 sharded logits differ at tp=" << tp;
        expectCachesIdentical(cache, ref_cache, tp);
    }
}

/** The spec-vs-incremental differential oracle stays green with the
 *  harness drawing sharded configurations (drawModelConfig fuzzes
 *  tensorParallel in {1, 2, 4}). */
TEST(ShardedForwardTest, DiffOracleGreenUnderShardedConfigs)
{
    for (uint64_t seed = 1; seed <= 4; ++seed) {
        verify::TrialOutcome greedy = verify::runGreedyTrial(seed);
        EXPECT_TRUE(greedy.ok) << greedy.detail;
        verify::TrialOutcome kv = verify::runKvRoundTripTrial(seed);
        EXPECT_TRUE(kv.ok) << kv.detail;
    }
}

/** Non-divisible head splits would misalign the canonical reduce
 *  blocks; the config layer rejects them with a typed check. */
TEST(ShardedForwardDeathTest, RejectsNonDivisibleHeadSplit)
{
    model::ModelConfig cfg = wideConfig(); // nHeads = 8
    cfg.tensorParallel = 3;
    EXPECT_DEATH(model::makeLlm(cfg), "must divide nHeads");
    cfg.tensorParallel = 0;
    EXPECT_DEATH(model::makeLlm(cfg), "must be >= 1");
}

} // namespace
