/**
 * @file
 * Shared helpers for model/core tests: tiny model construction and
 * random token-tree chunk generation.
 */

#ifndef SPECINFER_TESTS_MODEL_TEST_MODELS_H
#define SPECINFER_TESTS_MODEL_TEST_MODELS_H

#include <vector>

#include "model/model_factory.h"
#include "model/transformer.h"
#include "util/rng.h"

namespace specinfer {
namespace testing {

/** Small-but-real model for fast tests. */
inline model::ModelConfig
tinyConfig(uint64_t seed = 99)
{
    model::ModelConfig cfg;
    cfg.name = "test-tiny";
    cfg.vocabSize = 96;
    cfg.dModel = 32;
    cfg.nHeads = 4;
    cfg.dFf = 64;
    cfg.nLayers = 3;
    cfg.maxSeqLen = 160;
    cfg.seed = seed;
    return cfg;
}

inline model::Transformer
tinyLlm(uint64_t seed = 99)
{
    return model::makeLlm(tinyConfig(seed));
}

/** Random prompt avoiding the EOS token. */
inline std::vector<int>
randomPrompt(util::Rng &rng, size_t len, size_t vocab)
{
    std::vector<int> prompt;
    prompt.reserve(len);
    for (size_t i = 0; i < len; ++i)
        prompt.push_back(static_cast<int>(
            rng.uniformInt(int64_t{1},
                           static_cast<int64_t>(vocab) - 1)));
    return prompt;
}

/**
 * Random tree-shaped decode chunk: node 0 is the chunk root; each
 * later node picks a random earlier parent.
 */
inline model::DecodeChunk
randomTreeChunk(util::Rng &rng, size_t nodes, size_t vocab)
{
    model::DecodeChunk chunk;
    for (size_t i = 0; i < nodes; ++i) {
        chunk.tokens.push_back(static_cast<int>(
            rng.uniformInt(int64_t{1},
                           static_cast<int64_t>(vocab) - 1)));
        chunk.parents.push_back(
            i == 0 ? -1
                   : static_cast<int32_t>(rng.uniformInt(
                         static_cast<uint64_t>(i))));
    }
    return chunk;
}

} // namespace testing
} // namespace specinfer

#endif // SPECINFER_TESTS_MODEL_TEST_MODELS_H
