/**
 * @file
 * Quantized and pruned SSM variants (paper §1: SSMs as quantized /
 * pruned variants of the LLM): construction, behaviour, and the
 * lossless guarantee when used for speculation.
 */

#include <gtest/gtest.h>

#include "core/spec_engine.h"
#include "model/model_factory.h"
#include "tensor/quant.h"
#include "test_models.h"

namespace specinfer {
namespace model {
namespace {

using specinfer::testing::tinyLlm;

TEST(CompressedSsmTest, QuantizedSsmDiffersButIsClose)
{
    Transformer llm = tinyLlm();
    Transformer plain = makeEarlyExitSsm(llm, 2);
    Transformer quant = makeQuantizedSsm(llm, 2, 8);
    EXPECT_NE(quant.config().name, plain.config().name);

    KvCache ca = plain.makeCache();
    KvCache cb = quant.makeCache();
    DecodeChunk chunk = DecodeChunk::sequence({3, 9, 27});
    tensor::Tensor la = plain.forward(chunk, ca);
    tensor::Tensor lb = quant.forward(chunk, cb);
    double diff = 0.0;
    bool any = false;
    for (size_t i = 0; i < la.size(); ++i) {
        diff += std::abs(la.data()[i] - lb.data()[i]);
        any |= la.data()[i] != lb.data()[i];
    }
    EXPECT_TRUE(any);
    EXPECT_LT(diff / static_cast<double>(la.size()), 0.5);
}

TEST(CompressedSsmTest, LowerBitsDriftMore)
{
    Transformer llm = tinyLlm();
    Transformer plain = makeEarlyExitSsm(llm, 2);
    double prev = 0.0;
    for (int bits : {8, 4, 3}) {
        Transformer quant = makeQuantizedSsm(llm, 2, bits);
        KvCache ca = plain.makeCache();
        KvCache cb = quant.makeCache();
        DecodeChunk chunk = DecodeChunk::sequence({5, 6, 7, 8});
        tensor::Tensor la = plain.forward(chunk, ca);
        tensor::Tensor lb = quant.forward(chunk, cb);
        double diff = 0.0;
        for (size_t i = 0; i < la.size(); ++i)
            diff += std::abs(la.data()[i] - lb.data()[i]);
        EXPECT_GT(diff, prev) << bits << " bits";
        prev = diff;
    }
}

TEST(CompressedSsmTest, PrunedSsmHasZeroWeights)
{
    Transformer llm = tinyLlm();
    Transformer pruned = makePrunedSsm(llm, 2, 0.4);
    double zeros =
        tensor::zeroFraction(pruned.weights()->layers[0].wq);
    EXPECT_NEAR(zeros, 0.4, 0.05);
    // The source LLM is untouched.
    EXPECT_LT(tensor::zeroFraction(llm.weights()->layers[0].wq),
              0.01);
}

TEST(CompressedSsmTest, EmbeddingStaysExact)
{
    Transformer llm = tinyLlm();
    Transformer quant = makeQuantizedSsm(llm, 2, 4);
    const tensor::Tensor &a = llm.weights()->embedding;
    const tensor::Tensor &b = quant.weights()->embedding;
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a.data()[i], b.data()[i]);
}

TEST(CompressedSsmTest, GreedyLosslessWithCompressedSsms)
{
    // Whatever the SSM's quality, greedy verification stays exact.
    Transformer llm = tinyLlm();
    Transformer quant = makeQuantizedSsm(llm, 2, 4);
    Transformer pruned = makePrunedSsm(llm, 2, 0.5);
    std::vector<int> prompt = {11, 22, 33};

    SamplingParams greedy;
    greedy.temperature = 0.0f;
    util::Rng rng(1);
    core::GenerationResult ref = core::incrementalGenerate(
        llm, prompt, greedy, 16, rng, false);

    core::EngineConfig cfg = core::EngineConfig::greedyDefault();
    cfg.maxNewTokens = 16;
    cfg.stopAtEos = false;
    core::SpecEngine engine(&llm, {&quant, &pruned}, cfg);
    core::GenerationResult got = engine.generate(prompt);
    EXPECT_EQ(got.tokens, ref.tokens);
}

TEST(CompressedSsmDeathTest, ValidatesDepth)
{
    Transformer llm = tinyLlm();
    EXPECT_DEATH(makeQuantizedSsm(llm, 0, 8), "depth");
    EXPECT_DEATH(makePrunedSsm(llm, 99, 0.5), "depth");
}

} // namespace
} // namespace model
} // namespace specinfer
