/**
 * @file
 * Quantized and pruned SSM variants (paper §1: SSMs as quantized /
 * pruned variants of the LLM): construction, behaviour, and the
 * lossless guarantee when used for speculation.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/spec_engine.h"
#include "model/model_factory.h"
#include "tensor/quant.h"
#include "test_models.h"
#include "util/threadpool.h"

namespace specinfer {
namespace model {
namespace {

using specinfer::testing::tinyLlm;

TEST(CompressedSsmTest, QuantizedSsmDiffersButIsClose)
{
    Transformer llm = tinyLlm();
    Transformer plain = makeEarlyExitSsm(llm, 2);
    Transformer quant = makeQuantizedSsm(llm, 2, 8);
    EXPECT_NE(quant.config().name, plain.config().name);

    KvCache ca = plain.makeCache();
    KvCache cb = quant.makeCache();
    DecodeChunk chunk = DecodeChunk::sequence({3, 9, 27});
    tensor::Tensor la = plain.forward(chunk, ca);
    tensor::Tensor lb = quant.forward(chunk, cb);
    double diff = 0.0;
    bool any = false;
    for (size_t i = 0; i < la.size(); ++i) {
        diff += std::abs(la.data()[i] - lb.data()[i]);
        any |= la.data()[i] != lb.data()[i];
    }
    EXPECT_TRUE(any);
    EXPECT_LT(diff / static_cast<double>(la.size()), 0.5);
}

TEST(CompressedSsmTest, LowerBitsDriftMore)
{
    Transformer llm = tinyLlm();
    Transformer plain = makeEarlyExitSsm(llm, 2);
    double prev = 0.0;
    for (int bits : {8, 4, 3}) {
        Transformer quant = makeQuantizedSsm(llm, 2, bits);
        KvCache ca = plain.makeCache();
        KvCache cb = quant.makeCache();
        DecodeChunk chunk = DecodeChunk::sequence({5, 6, 7, 8});
        tensor::Tensor la = plain.forward(chunk, ca);
        tensor::Tensor lb = quant.forward(chunk, cb);
        double diff = 0.0;
        for (size_t i = 0; i < la.size(); ++i)
            diff += std::abs(la.data()[i] - lb.data()[i]);
        EXPECT_GT(diff, prev) << bits << " bits";
        prev = diff;
    }
}

TEST(CompressedSsmTest, PrunedSsmHasZeroWeights)
{
    Transformer llm = tinyLlm();
    Transformer pruned = makePrunedSsm(llm, 2, 0.4);
    double zeros =
        tensor::zeroFraction(pruned.weights()->layers[0].wq);
    EXPECT_NEAR(zeros, 0.4, 0.05);
    // The source LLM is untouched.
    EXPECT_LT(tensor::zeroFraction(llm.weights()->layers[0].wq),
              0.01);
}

TEST(CompressedSsmTest, EmbeddingStaysExact)
{
    Transformer llm = tinyLlm();
    Transformer quant = makeQuantizedSsm(llm, 2, 4);
    const tensor::Tensor &a = llm.weights()->embedding;
    const tensor::Tensor &b = quant.weights()->embedding;
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a.data()[i], b.data()[i]);
}

TEST(CompressedSsmTest, GreedyLosslessWithCompressedSsms)
{
    // Whatever the SSM's quality, greedy verification stays exact.
    Transformer llm = tinyLlm();
    Transformer quant = makeQuantizedSsm(llm, 2, 4);
    Transformer pruned = makePrunedSsm(llm, 2, 0.5);
    std::vector<int> prompt = {11, 22, 33};

    SamplingParams greedy;
    greedy.temperature = 0.0f;
    util::Rng rng(1);
    core::GenerationResult ref = core::incrementalGenerate(
        llm, prompt, greedy, 16, rng, false);

    core::EngineConfig cfg = core::EngineConfig::greedyDefault();
    cfg.maxNewTokens = 16;
    cfg.stopAtEos = false;
    core::SpecEngine engine(&llm, {&quant, &pruned}, cfg);
    core::GenerationResult got = engine.generate(prompt);
    EXPECT_EQ(got.tokens, ref.tokens);
}

TEST(CompressedSsmTest, Int8SsmMirrorsFakeQuantWeightsBitwise)
{
    // The real-int8 SSM's fp32 weight mirror must equal the 8-bit
    // fake-quant SSM's weights bit for bit: same grid, same scales,
    // so accept-rate studies on fake quantization transfer verbatim.
    Transformer llm = tinyLlm();
    Transformer fake = makeQuantizedSsm(llm, 2, 8);
    Transformer real = makeInt8Ssm(llm, 2);
    EXPECT_EQ(real.config().precision, Precision::Int8);
    ASSERT_EQ(real.weights()->qLayers.size(), 2u);
    for (size_t l = 0; l < 2; ++l) {
        const LayerWeights &fw = fake.weights()->layers[l];
        const LayerWeights &rw = real.weights()->layers[l];
        const tensor::Tensor *fake_mats[] = {&fw.wq, &fw.wk, &fw.wv,
                                             &fw.wo, &fw.wGate,
                                             &fw.wUp, &fw.wDown};
        const tensor::Tensor *real_mats[] = {&rw.wq, &rw.wk, &rw.wv,
                                             &rw.wo, &rw.wGate,
                                             &rw.wUp, &rw.wDown};
        for (size_t t = 0; t < 7; ++t) {
            ASSERT_EQ(fake_mats[t]->size(), real_mats[t]->size());
            EXPECT_EQ(std::memcmp(fake_mats[t]->data(),
                                  real_mats[t]->data(),
                                  fake_mats[t]->size() *
                                      sizeof(float)),
                      0)
                << "layer " << l << " matrix " << t;
        }
    }
    EXPECT_EQ(std::memcmp(fake.weights()->lmHead.data(),
                          real.weights()->lmHead.data(),
                          fake.weights()->lmHead.size() *
                              sizeof(float)),
              0);
    // The source LLM is untouched.
    EXPECT_EQ(llm.config().precision, Precision::Fp32);
    EXPECT_TRUE(llm.weights()->qLayers.empty());
}

TEST(CompressedSsmTest, GreedyLosslessWithInt8Ssm)
{
    // Greedy verification is exact for ANY draft model — including
    // one whose projections actually execute in int8.
    Transformer llm = tinyLlm();
    Transformer int8 = makeInt8Ssm(llm, 2);
    std::vector<int> prompt = {11, 22, 33};

    SamplingParams greedy;
    greedy.temperature = 0.0f;
    util::Rng rng(1);
    core::GenerationResult ref = core::incrementalGenerate(
        llm, prompt, greedy, 16, rng, false);

    core::EngineConfig cfg = core::EngineConfig::greedyDefault();
    cfg.maxNewTokens = 16;
    cfg.stopAtEos = false;
    core::SpecEngine engine(&llm, {&int8}, cfg);
    core::GenerationResult got = engine.generate(prompt);
    EXPECT_EQ(got.tokens, ref.tokens);
}

TEST(CompressedSsmTest, Int8ForwardBitIdenticalAcrossThreadCounts)
{
    // The int8 forward's determinism contract, end to end through
    // the transformer (name carries "Int8" so the TSan sweep regex
    // picks this suite up).
    Transformer llm = tinyLlm();
    Transformer int8 = makeInt8Ssm(llm, 2);
    DecodeChunk chunk = DecodeChunk::sequence({3, 9, 27, 5, 14});

    util::ThreadPool &pool = util::ThreadPool::global();
    const size_t restore = pool.threads();
    pool.setThreads(1);
    KvCache ref_cache = int8.makeCache();
    tensor::Tensor ref = int8.forward(chunk, ref_cache);
    for (size_t threads : {2u, 8u}) {
        pool.setThreads(threads);
        KvCache cache = int8.makeCache();
        tensor::Tensor got = int8.forward(chunk, cache);
        ASSERT_EQ(got.size(), ref.size());
        EXPECT_EQ(std::memcmp(got.data(), ref.data(),
                              ref.size() * sizeof(float)),
                  0)
            << "int8 forward differs at threads=" << threads;
    }
    pool.setThreads(restore);
}

TEST(CompressedSsmDeathTest, ValidatesDepth)
{
    Transformer llm = tinyLlm();
    EXPECT_DEATH(makeQuantizedSsm(llm, 0, 8), "depth");
    EXPECT_DEATH(makePrunedSsm(llm, 99, 0.5), "depth");
    EXPECT_DEATH(makeInt8Ssm(llm, 0), "depth");
}

} // namespace
} // namespace model
} // namespace specinfer
