#include "model/kv_cache.h"

#include <gtest/gtest.h>

namespace specinfer {
namespace model {
namespace {

TEST(KvCacheTest, AllocateAdvancesLength)
{
    KvCache cache(2, 8, 16);
    EXPECT_EQ(cache.length(), 0u);
    EXPECT_EQ(cache.allocate(3), 0u);
    EXPECT_EQ(cache.length(), 3u);
    EXPECT_EQ(cache.allocate(2), 3u);
    EXPECT_EQ(cache.length(), 5u);
}

TEST(KvCacheTest, RowsAreWritable)
{
    KvCache cache(2, 4, 8);
    cache.allocate(2);
    cache.keyRow(1, 0)[3] = 7.0f;
    cache.valueRow(0, 1)[0] = -2.0f;
    EXPECT_FLOAT_EQ(cache.keyRow(1, 0)[3], 7.0f);
    EXPECT_FLOAT_EQ(cache.valueRow(0, 1)[0], -2.0f);
}

TEST(KvCacheTest, TruncateRollsBack)
{
    KvCache cache(1, 4, 8);
    cache.allocate(5);
    cache.truncate(2);
    EXPECT_EQ(cache.length(), 2u);
    // Slots can be re-allocated after truncation.
    EXPECT_EQ(cache.allocate(1), 2u);
}

TEST(KvCacheTest, KeepRowsCompacts)
{
    KvCache cache(1, 2, 8);
    cache.allocate(5);
    for (size_t s = 0; s < 5; ++s) {
        cache.keyRow(0, s)[0] = static_cast<float>(s);
        cache.valueRow(0, s)[1] = static_cast<float>(10 + s);
    }
    cache.keepRows({0, 2, 4});
    EXPECT_EQ(cache.length(), 3u);
    EXPECT_FLOAT_EQ(cache.keyRow(0, 0)[0], 0.0f);
    EXPECT_FLOAT_EQ(cache.keyRow(0, 1)[0], 2.0f);
    EXPECT_FLOAT_EQ(cache.keyRow(0, 2)[0], 4.0f);
    EXPECT_FLOAT_EQ(cache.valueRow(0, 2)[1], 14.0f);
}

TEST(KvCacheTest, KeepRowsIdentityPrefix)
{
    KvCache cache(1, 2, 8);
    cache.allocate(3);
    cache.keyRow(0, 1)[0] = 5.0f;
    cache.keepRows({0, 1});
    EXPECT_EQ(cache.length(), 2u);
    EXPECT_FLOAT_EQ(cache.keyRow(0, 1)[0], 5.0f);
}

TEST(KvCacheTest, CloneIsDeep)
{
    KvCache cache(1, 2, 4);
    cache.allocate(1);
    cache.keyRow(0, 0)[0] = 1.0f;
    KvCache copy = cache.clone();
    copy.keyRow(0, 0)[0] = 2.0f;
    EXPECT_FLOAT_EQ(cache.keyRow(0, 0)[0], 1.0f);
    EXPECT_FLOAT_EQ(copy.keyRow(0, 0)[0], 2.0f);
}

TEST(KvCacheDeathTest, OverflowAborts)
{
    KvCache cache(1, 2, 4);
    cache.allocate(4);
    EXPECT_DEATH(cache.allocate(1), "overflow");
}

TEST(KvCacheDeathTest, KeepRowsMustAscend)
{
    KvCache cache(1, 2, 8);
    cache.allocate(4);
    EXPECT_DEATH(cache.keepRows({2, 1}), "ascending");
    EXPECT_DEATH(cache.keepRows({0, 4}), "out of range");
}

TEST(KvCacheDeathTest, TruncateCannotGrow)
{
    KvCache cache(1, 2, 8);
    cache.allocate(2);
    EXPECT_DEATH(cache.truncate(3), "grow");
}

} // namespace
} // namespace model
} // namespace specinfer
