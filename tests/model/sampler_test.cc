#include "model/sampler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace specinfer {
namespace model {
namespace {

TEST(SamplerTest, ProbsNormalize)
{
    float logits[] = {0.0f, 1.0f, 2.0f};
    SamplingParams params;
    auto probs = logitsToProbs(logits, 3, params);
    float total = std::accumulate(probs.begin(), probs.end(), 0.0f);
    EXPECT_NEAR(total, 1.0f, 1e-5f);
    EXPECT_GT(probs[2], probs[1]);
}

TEST(SamplerTest, GreedyTemperatureIsOneHot)
{
    float logits[] = {0.5f, 2.0f, 1.0f};
    SamplingParams params;
    params.temperature = 0.0f;
    auto probs = logitsToProbs(logits, 3, params);
    EXPECT_FLOAT_EQ(probs[0], 0.0f);
    EXPECT_FLOAT_EQ(probs[1], 1.0f);
    EXPECT_FLOAT_EQ(probs[2], 0.0f);
}

TEST(SamplerTest, TopKFilters)
{
    float logits[] = {0.0f, 3.0f, 2.0f, 1.0f};
    SamplingParams params;
    params.topK = 2;
    auto probs = logitsToProbs(logits, 4, params);
    EXPECT_FLOAT_EQ(probs[0], 0.0f);
    EXPECT_FLOAT_EQ(probs[3], 0.0f);
    EXPECT_GT(probs[1], 0.0f);
    EXPECT_GT(probs[2], 0.0f);
    EXPECT_NEAR(probs[1] + probs[2], 1.0f, 1e-5f);
}

TEST(SamplerTest, TopKLargerThanVocabIsNoop)
{
    float logits[] = {1.0f, 2.0f};
    SamplingParams plain, filtered;
    filtered.topK = 10;
    auto a = logitsToProbs(logits, 2, plain);
    auto b = logitsToProbs(logits, 2, filtered);
    EXPECT_FLOAT_EQ(a[0], b[0]);
    EXPECT_FLOAT_EQ(a[1], b[1]);
}

TEST(SamplerTest, TopPKeepsNucleus)
{
    // Probabilities ~ {0.643, 0.236, 0.087, 0.032} for logits
    // {3,2,1,0}; topP = 0.7 keeps the first two.
    float logits[] = {3.0f, 2.0f, 1.0f, 0.0f};
    SamplingParams params;
    params.topP = 0.7f;
    auto probs = logitsToProbs(logits, 4, params);
    EXPECT_GT(probs[0], 0.0f);
    EXPECT_GT(probs[1], 0.0f);
    EXPECT_FLOAT_EQ(probs[2], 0.0f);
    EXPECT_FLOAT_EQ(probs[3], 0.0f);
    EXPECT_NEAR(probs[0] + probs[1], 1.0f, 1e-5f);
}

TEST(SamplerTest, TopPOneIsNoop)
{
    float logits[] = {1.0f, 2.0f, 0.5f};
    SamplingParams plain, nucleus;
    nucleus.topP = 1.0f;
    auto a = logitsToProbs(logits, 3, plain);
    auto b = logitsToProbs(logits, 3, nucleus);
    for (int i = 0; i < 3; ++i)
        EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(SamplerTest, GreedyToken)
{
    float logits[] = {0.1f, 0.9f, 0.3f};
    EXPECT_EQ(greedyToken(logits, 3), 1);
}

TEST(SamplerTest, SampleTokenGreedyParams)
{
    float logits[] = {0.1f, 0.9f, 0.3f};
    SamplingParams params;
    params.temperature = 0.0f;
    util::Rng rng(3);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(sampleToken(logits, 3, params, rng), 1);
}

TEST(SamplerTest, SampleTokenMatchesDistribution)
{
    float logits[] = {std::log(0.2f), std::log(0.8f)};
    SamplingParams params;
    util::Rng rng(4);
    int count1 = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        count1 += sampleToken(logits, 2, params, rng) == 1;
    EXPECT_NEAR(static_cast<double>(count1) / n, 0.8, 0.01);
}

TEST(SamplerTest, TemperatureFlattens)
{
    float logits[] = {0.0f, 2.0f};
    SamplingParams hot;
    hot.temperature = 10.0f;
    auto probs = logitsToProbs(logits, 2, hot);
    EXPECT_NEAR(probs[0], 0.45, 0.06);
}

} // namespace
} // namespace model
} // namespace specinfer
