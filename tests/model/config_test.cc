#include "model/config.h"

#include <gtest/gtest.h>

#include "model/weights.h"

namespace specinfer {
namespace model {
namespace {

TEST(ModelConfigTest, DefaultsValidate)
{
    ModelConfig cfg;
    cfg.validate();
    EXPECT_EQ(cfg.dHead(), cfg.dModel / cfg.nHeads);
}

TEST(ModelConfigTest, ParamCountMatchesHandCount)
{
    ModelConfig cfg;
    cfg.vocabSize = 10;
    cfg.dModel = 4;
    cfg.nHeads = 2;
    cfg.dFf = 8;
    cfg.nLayers = 2;
    // emb 40 + head 40 + final norm 4
    // per layer: 4*16 + 3*32 + 8 = 168; x2 = 336
    EXPECT_EQ(cfg.paramCount(), 40u + 40u + 4u + 336u);
}

TEST(ModelConfigTest, PresetsAreConsistent)
{
    for (const char *name :
         {"llama-7b-sim", "opt-13b-sim", "opt-30b-sim",
          "llama-65b-sim", "tiny"}) {
        ModelConfig cfg = llmPreset(name);
        EXPECT_EQ(cfg.name, name);
        cfg.validate();
    }
    for (const char *name : {"llama-68m-sim", "opt-125m-sim"}) {
        ModelConfig cfg = ssmPreset(name);
        EXPECT_EQ(cfg.name, name);
        cfg.validate();
    }
}

TEST(ModelConfigTest, PresetDepthOrdering)
{
    EXPECT_LT(llmPreset("llama-7b-sim").nLayers,
              llmPreset("opt-30b-sim").nLayers);
    EXPECT_LT(llmPreset("opt-30b-sim").nLayers,
              llmPreset("llama-65b-sim").nLayers);
    EXPECT_LT(ssmPreset("llama-68m-sim").nLayers,
              llmPreset("llama-7b-sim").nLayers);
}

TEST(ModelConfigDeathTest, RejectsBadShapes)
{
    ModelConfig cfg;
    cfg.nHeads = 3; // does not divide dModel = 64... 64 % 3 != 0
    EXPECT_DEATH(cfg.validate(), "nHeads");
    cfg = ModelConfig();
    cfg.nLayers = 0;
    EXPECT_DEATH(cfg.validate(), "layer");
    cfg = ModelConfig();
    cfg.eosToken = -1;
    EXPECT_DEATH(cfg.validate(), "EOS");
}

TEST(WeightsTest, DeterministicInit)
{
    ModelConfig cfg = llmPreset("tiny");
    auto a = initWeights(cfg);
    auto b = initWeights(cfg);
    ASSERT_EQ(a->layers.size(), b->layers.size());
    for (size_t i = 0; i < a->embedding.size(); ++i)
        EXPECT_FLOAT_EQ(a->embedding.data()[i],
                        b->embedding.data()[i]);
    for (size_t l = 0; l < a->layers.size(); ++l)
        for (size_t i = 0; i < a->layers[l].wq.size(); ++i)
            EXPECT_FLOAT_EQ(a->layers[l].wq.data()[i],
                            b->layers[l].wq.data()[i]);
}

TEST(WeightsTest, ShallowConfigIsPrefixOfDeep)
{
    // The early-exit SSM property: same seed, fewer layers => the
    // common layers and the embedding/head are identical.
    ModelConfig deep = llmPreset("tiny");
    ModelConfig shallow = deep;
    shallow.nLayers = 2;
    auto wd = initWeights(deep);
    auto ws = initWeights(shallow);
    ASSERT_EQ(ws->layers.size(), 2u);
    for (size_t l = 0; l < 2; ++l)
        for (size_t i = 0; i < ws->layers[l].wo.size(); ++i)
            EXPECT_FLOAT_EQ(ws->layers[l].wo.data()[i],
                            wd->layers[l].wo.data()[i]);
    for (size_t i = 0; i < ws->lmHead.size(); ++i)
        EXPECT_FLOAT_EQ(ws->lmHead.data()[i], wd->lmHead.data()[i]);
}

TEST(WeightsTest, DifferentSeedsDiffer)
{
    ModelConfig a_cfg = llmPreset("tiny");
    ModelConfig b_cfg = a_cfg;
    b_cfg.seed += 1;
    auto a = initWeights(a_cfg);
    auto b = initWeights(b_cfg);
    bool any_diff = false;
    for (size_t i = 0; i < a->embedding.size() && !any_diff; ++i)
        any_diff = a->embedding.data()[i] != b->embedding.data()[i];
    EXPECT_TRUE(any_diff);
}

} // namespace
} // namespace model
} // namespace specinfer
