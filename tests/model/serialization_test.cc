#include "model/serialization.h"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "model/model_factory.h"
#include "test_models.h"

namespace specinfer {
namespace model {
namespace {

using specinfer::testing::tinyLlm;

TEST(SerializationTest, RoundTripPreservesLogitsBitwise)
{
    Transformer original = tinyLlm(4242);
    std::stringstream buffer;
    saveModel(buffer, original.config(), *original.weights());
    Transformer restored = loadModel(buffer);

    EXPECT_EQ(restored.config().name, original.config().name);
    EXPECT_EQ(restored.config().vocabSize,
              original.config().vocabSize);
    EXPECT_EQ(restored.config().seed, original.config().seed);

    KvCache ca = original.makeCache();
    KvCache cb = restored.makeCache();
    DecodeChunk chunk = DecodeChunk::sequence({3, 14, 15, 9});
    tensor::Tensor la = original.forward(chunk, ca);
    tensor::Tensor lb = restored.forward(chunk, cb);
    ASSERT_EQ(la.size(), lb.size());
    for (size_t i = 0; i < la.size(); ++i)
        ASSERT_EQ(la.data()[i], lb.data()[i]);
}

TEST(SerializationTest, EarlyExitSsmSurvivesRoundTrip)
{
    // Saving the full model and loading with a shallower config is
    // how a deployed SSM would ship alongside its LLM; the stream
    // keeps all layers so both can be restored.
    Transformer llm = tinyLlm(77);
    std::stringstream buffer;
    saveModel(buffer, llm.config(), *llm.weights());
    Transformer restored = loadModel(buffer);
    Transformer ssm_a = makeEarlyExitSsm(llm, 2);
    Transformer ssm_b = makeEarlyExitSsm(restored, 2);
    KvCache ca = ssm_a.makeCache();
    KvCache cb = ssm_b.makeCache();
    tensor::Tensor la =
        ssm_a.forward(DecodeChunk::sequence({1, 2, 3}), ca);
    tensor::Tensor lb =
        ssm_b.forward(DecodeChunk::sequence({1, 2, 3}), cb);
    for (size_t i = 0; i < la.size(); ++i)
        ASSERT_EQ(la.data()[i], lb.data()[i]);
}

TEST(SerializationTest, Int8SsmRoundTripPreservesLogitsBitwise)
{
    // The int8 payload (quants + scales) is serialized explicitly,
    // not re-derived from the fp32 mirror, so a restored int8 model
    // must produce bit-identical logits through the integer kernels.
    Transformer llm = tinyLlm(909);
    Transformer int8 = makeInt8Ssm(llm, 2);
    std::stringstream buffer;
    saveModel(buffer, int8.config(), *int8.weights());
    Transformer restored = loadModel(buffer);

    EXPECT_EQ(restored.config().precision, Precision::Int8);
    ASSERT_EQ(restored.weights()->qLayers.size(),
              int8.weights()->qLayers.size());
    const tensor::QTensor &qa = int8.weights()->qLayers[0].wq;
    const tensor::QTensor &qb = restored.weights()->qLayers[0].wq;
    ASSERT_EQ(qa.size(), qb.size());
    EXPECT_EQ(std::memcmp(qa.data(), qb.data(), qa.size()), 0);
    EXPECT_EQ(std::memcmp(qa.scales(), qb.scales(),
                          qa.rows() * sizeof(float)),
              0);

    KvCache ca = int8.makeCache();
    KvCache cb = restored.makeCache();
    DecodeChunk chunk = DecodeChunk::sequence({3, 14, 15, 9});
    tensor::Tensor la = int8.forward(chunk, ca);
    tensor::Tensor lb = restored.forward(chunk, cb);
    ASSERT_EQ(la.size(), lb.size());
    for (size_t i = 0; i < la.size(); ++i)
        ASSERT_EQ(la.data()[i], lb.data()[i]);
}

TEST(SerializationTest, KvCacheRoundTripIsBitwise)
{
    // The serving snapshot persists live KV rows; a restored cache
    // must be indistinguishable from the original — same occupied
    // rows bit-for-bit, and identical logits when decoding resumes
    // on top of it.
    Transformer llm = tinyLlm(31);
    KvCache original = llm.makeCache();
    llm.forward(DecodeChunk::sequence({4, 8, 15, 16, 23, 42}),
                original);

    std::stringstream buf;
    saveKvCache(buf, original);
    KvCache restored = loadKvCache(buf);

    ASSERT_EQ(restored.layers(), original.layers());
    ASSERT_EQ(restored.kvDim(), original.kvDim());
    ASSERT_EQ(restored.capacity(), original.capacity());
    ASSERT_EQ(restored.length(), original.length());
    for (size_t l = 0; l < original.layers(); ++l)
        for (size_t s = 0; s < original.length(); ++s)
            for (size_t d = 0; d < original.kvDim(); ++d) {
                ASSERT_EQ(restored.keyRow(l, s)[d],
                          original.keyRow(l, s)[d]);
                ASSERT_EQ(restored.valueRow(l, s)[d],
                          original.valueRow(l, s)[d]);
            }

    tensor::Tensor la =
        llm.forward(DecodeChunk::sequence({7}), original);
    tensor::Tensor lb =
        llm.forward(DecodeChunk::sequence({7}), restored);
    ASSERT_EQ(la.size(), lb.size());
    for (size_t i = 0; i < la.size(); ++i)
        ASSERT_EQ(la.data()[i], lb.data()[i]);
}

TEST(SerializationTest, EmptyKvCacheRoundTrips)
{
    KvCache empty(2, 8, 32);
    std::stringstream buf;
    saveKvCache(buf, empty);
    KvCache restored = loadKvCache(buf);
    EXPECT_EQ(restored.length(), 0u);
    EXPECT_EQ(restored.capacity(), 32u);
    EXPECT_EQ(restored.layers(), 2u);
}

TEST(SerializationDeathTest, RejectsKvGarbage)
{
    std::stringstream buf;
    buf << "KV but not really anything";
    EXPECT_DEATH(loadKvCache(buf), "KV");
}

TEST(SerializationDeathTest, RejectsKvTruncation)
{
    Transformer llm = tinyLlm(32);
    KvCache cache = llm.makeCache();
    llm.forward(DecodeChunk::sequence({1, 2, 3}), cache);
    std::stringstream buf;
    saveKvCache(buf, cache);
    std::string data = buf.str();
    std::stringstream cut(data.substr(0, data.size() / 2));
    EXPECT_DEATH(loadKvCache(cut), "truncated");
}

TEST(SerializationTest, FileRoundTrip)
{
    Transformer original = tinyLlm(555);
    std::string path = ::testing::TempDir() + "/specinfer_model.bin";
    saveModelFile(path, original);
    Transformer restored = loadModelFile(path);
    EXPECT_EQ(restored.config().nLayers, original.config().nLayers);
    std::remove(path.c_str());
}

TEST(SerializationDeathTest, RejectsGarbage)
{
    std::stringstream buffer;
    buffer << "definitely not a model";
    EXPECT_DEATH(loadModel(buffer), "not a SpecInfer model");
}

TEST(SerializationDeathTest, RejectsTruncation)
{
    Transformer original = tinyLlm();
    std::stringstream buffer;
    saveModel(buffer, original.config(), *original.weights());
    std::string data = buffer.str();
    std::stringstream cut;
    cut << data.substr(0, data.size() / 2);
    EXPECT_DEATH(loadModel(cut), "truncated");
}

TEST(SerializationDeathTest, RejectsWrongVersion)
{
    Transformer original = tinyLlm();
    std::stringstream buffer;
    saveModel(buffer, original.config(), *original.weights());
    std::string data = buffer.str();
    data[4] = 99; // clobber the version field
    std::stringstream bad;
    bad << data;
    EXPECT_DEATH(loadModel(bad), "version");
}

} // namespace
} // namespace model
} // namespace specinfer
