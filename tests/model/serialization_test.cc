#include "model/serialization.h"

#include <gtest/gtest.h>

#include <sstream>

#include "model/model_factory.h"
#include "test_models.h"

namespace specinfer {
namespace model {
namespace {

using specinfer::testing::tinyLlm;

TEST(SerializationTest, RoundTripPreservesLogitsBitwise)
{
    Transformer original = tinyLlm(4242);
    std::stringstream buffer;
    saveModel(buffer, original.config(), *original.weights());
    Transformer restored = loadModel(buffer);

    EXPECT_EQ(restored.config().name, original.config().name);
    EXPECT_EQ(restored.config().vocabSize,
              original.config().vocabSize);
    EXPECT_EQ(restored.config().seed, original.config().seed);

    KvCache ca = original.makeCache();
    KvCache cb = restored.makeCache();
    DecodeChunk chunk = DecodeChunk::sequence({3, 14, 15, 9});
    tensor::Tensor la = original.forward(chunk, ca);
    tensor::Tensor lb = restored.forward(chunk, cb);
    ASSERT_EQ(la.size(), lb.size());
    for (size_t i = 0; i < la.size(); ++i)
        ASSERT_EQ(la.data()[i], lb.data()[i]);
}

TEST(SerializationTest, EarlyExitSsmSurvivesRoundTrip)
{
    // Saving the full model and loading with a shallower config is
    // how a deployed SSM would ship alongside its LLM; the stream
    // keeps all layers so both can be restored.
    Transformer llm = tinyLlm(77);
    std::stringstream buffer;
    saveModel(buffer, llm.config(), *llm.weights());
    Transformer restored = loadModel(buffer);
    Transformer ssm_a = makeEarlyExitSsm(llm, 2);
    Transformer ssm_b = makeEarlyExitSsm(restored, 2);
    KvCache ca = ssm_a.makeCache();
    KvCache cb = ssm_b.makeCache();
    tensor::Tensor la =
        ssm_a.forward(DecodeChunk::sequence({1, 2, 3}), ca);
    tensor::Tensor lb =
        ssm_b.forward(DecodeChunk::sequence({1, 2, 3}), cb);
    for (size_t i = 0; i < la.size(); ++i)
        ASSERT_EQ(la.data()[i], lb.data()[i]);
}

TEST(SerializationTest, FileRoundTrip)
{
    Transformer original = tinyLlm(555);
    std::string path = ::testing::TempDir() + "/specinfer_model.bin";
    saveModelFile(path, original);
    Transformer restored = loadModelFile(path);
    EXPECT_EQ(restored.config().nLayers, original.config().nLayers);
    std::remove(path.c_str());
}

TEST(SerializationDeathTest, RejectsGarbage)
{
    std::stringstream buffer;
    buffer << "definitely not a model";
    EXPECT_DEATH(loadModel(buffer), "not a SpecInfer model");
}

TEST(SerializationDeathTest, RejectsTruncation)
{
    Transformer original = tinyLlm();
    std::stringstream buffer;
    saveModel(buffer, original.config(), *original.weights());
    std::string data = buffer.str();
    std::stringstream cut;
    cut << data.substr(0, data.size() / 2);
    EXPECT_DEATH(loadModel(cut), "truncated");
}

TEST(SerializationDeathTest, RejectsWrongVersion)
{
    Transformer original = tinyLlm();
    std::stringstream buffer;
    saveModel(buffer, original.config(), *original.weights());
    std::string data = buffer.str();
    data[4] = 99; // clobber the version field
    std::stringstream bad;
    bad << data;
    EXPECT_DEATH(loadModel(bad), "version");
}

} // namespace
} // namespace model
} // namespace specinfer
