#include "model/beam_search.h"

#include <gtest/gtest.h>

#include <cmath>

#include "model/sampler.h"
#include "tensor/ops.h"
#include "test_models.h"

namespace specinfer {
namespace model {
namespace {

using specinfer::testing::tinyLlm;

BeamSearchParams
params(size_t width, size_t tokens, bool eos = false)
{
    BeamSearchParams p;
    p.beamWidth = width;
    p.maxNewTokens = tokens;
    p.stopAtEos = eos;
    return p;
}

TEST(BeamSearchTest, WidthOneEqualsGreedy)
{
    Transformer llm = tinyLlm();
    std::vector<int> prompt = {4, 9, 2};
    auto beams = beamSearch(llm, prompt, params(1, 12));
    ASSERT_EQ(beams.size(), 1u);

    // Reference greedy decode.
    KvCache cache = llm.makeCache();
    tensor::Tensor logits =
        llm.forward(DecodeChunk::sequence(prompt), cache);
    std::vector<int> greedy;
    const float *row = logits.row(prompt.size() - 1);
    for (int i = 0; i < 12; ++i) {
        int tok = greedyToken(row, llm.config().vocabSize);
        greedy.push_back(tok);
        logits = llm.forward(DecodeChunk::single(tok), cache);
        row = logits.row(0);
    }
    EXPECT_EQ(beams[0].tokens, greedy);
}

TEST(BeamSearchTest, ReturnsSortedDistinctHypotheses)
{
    Transformer llm = tinyLlm();
    auto beams = beamSearch(llm, {7, 3, 1}, params(4, 8));
    ASSERT_EQ(beams.size(), 4u);
    for (size_t i = 1; i < beams.size(); ++i) {
        EXPECT_GE(beams[i - 1].logProb, beams[i].logProb);
        EXPECT_NE(beams[i - 1].tokens, beams[i].tokens);
    }
    for (const BeamHypothesis &hyp : beams)
        EXPECT_EQ(hyp.tokens.size(), 8u);
}

TEST(BeamSearchTest, WiderBeamNeverWorse)
{
    // The best hypothesis score is monotone in beam width.
    Transformer llm = tinyLlm();
    std::vector<int> prompt = {5, 5, 5};
    double prev = -1e18;
    for (size_t width : {1, 2, 4}) {
        auto beams = beamSearch(llm, prompt, params(width, 10));
        EXPECT_GE(beams[0].logProb, prev - 1e-9);
        prev = beams[0].logProb;
    }
}

TEST(BeamSearchTest, LogProbMatchesTokenwiseSum)
{
    // Recompute the winning hypothesis' log-probability by plain
    // incremental decoding and compare.
    Transformer llm = tinyLlm();
    std::vector<int> prompt = {8, 2, 6};
    auto beams = beamSearch(llm, prompt, params(3, 6));
    const BeamHypothesis &best = beams[0];

    KvCache cache = llm.makeCache();
    tensor::Tensor logits =
        llm.forward(DecodeChunk::sequence(prompt), cache);
    const float *row = logits.row(prompt.size() - 1);
    double log_prob = 0.0;
    for (int tok : best.tokens) {
        std::vector<float> probs(row,
                                 row + llm.config().vocabSize);
        tensor::softmaxRow(probs.data(), probs.size());
        log_prob += std::log(static_cast<double>(
            probs[static_cast<size_t>(tok)]));
        logits = llm.forward(DecodeChunk::single(tok), cache);
        row = logits.row(0);
    }
    EXPECT_NEAR(best.logProb, log_prob, 1e-3);
}

TEST(BeamSearchTest, LengthPenaltyChangesRanking)
{
    BeamHypothesis short_hyp;
    short_hyp.tokens = {1, 2};
    short_hyp.logProb = -2.0;
    BeamHypothesis long_hyp;
    long_hyp.tokens = {1, 2, 3, 4, 5, 6, 7, 8};
    long_hyp.logProb = -4.0;
    // Unnormalized: short wins. Strongly normalized: long wins.
    EXPECT_GT(short_hyp.score(0.0f), long_hyp.score(0.0f));
    EXPECT_LT(short_hyp.score(1.0f), long_hyp.score(1.0f));
}

TEST(BeamSearchTest, EosFinishesHypotheses)
{
    Transformer llm = tinyLlm();
    BeamSearchParams p = params(3, 16, /*eos=*/true);
    auto beams = beamSearch(llm, {1, 2, 3}, p);
    ASSERT_FALSE(beams.empty());
    for (const BeamHypothesis &hyp : beams) {
        for (size_t i = 0; i + 1 < hyp.tokens.size(); ++i)
            EXPECT_NE(hyp.tokens[i], llm.config().eosToken);
    }
}

TEST(BeamSearchDeathTest, RejectsBadParams)
{
    Transformer llm = tinyLlm();
    EXPECT_DEATH(beamSearch(llm, {}, params(2, 4)), "empty prompt");
    EXPECT_DEATH(beamSearch(llm, {1}, params(0, 4)), "beam width");
}

} // namespace
} // namespace model
} // namespace specinfer
