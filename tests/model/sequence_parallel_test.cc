#include "model/sequence_parallel.h"

#include <gtest/gtest.h>

#include "test_models.h"
#include "util/rng.h"

namespace specinfer {
namespace model {
namespace {

using specinfer::testing::randomPrompt;
using specinfer::testing::randomTreeChunk;
using specinfer::testing::tinyLlm;

TEST(SequenceParallelTest, MatchesTreeDecodingBitwise)
{
    Transformer llm = tinyLlm();
    std::vector<int> prefix = {2, 7, 1};
    DecodeChunk chunk;
    chunk.tokens = {10, 11, 12, 13, 14};
    chunk.parents = {-1, 0, 0, 1, 2};

    KvCache tree_cache = llm.makeCache();
    llm.forward(DecodeChunk::sequence(prefix), tree_cache);
    KvCache seq_cache = tree_cache.clone();

    tensor::Tensor tree_logits = llm.forward(chunk, tree_cache);
    tensor::Tensor seq_logits =
        sequenceParallelDecode(llm, chunk, seq_cache);

    ASSERT_EQ(tree_logits.rows(), seq_logits.rows());
    for (size_t i = 0; i < tree_logits.size(); ++i)
        ASSERT_EQ(tree_logits.data()[i], seq_logits.data()[i]);
}

TEST(SequenceParallelTest, LeavesCacheInSameState)
{
    Transformer llm = tinyLlm();
    std::vector<int> prefix = {3, 9};
    DecodeChunk chunk;
    chunk.tokens = {5, 6, 7};
    chunk.parents = {-1, 0, 0};

    KvCache a = llm.makeCache();
    llm.forward(DecodeChunk::sequence(prefix), a);
    KvCache b = a.clone();

    llm.forward(chunk, a);
    sequenceParallelDecode(llm, chunk, b);

    ASSERT_EQ(a.length(), b.length());
    for (size_t layer = 0; layer < a.layers(); ++layer) {
        for (size_t slot = 0; slot < a.length(); ++slot) {
            for (size_t d = 0; d < a.kvDim(); ++d) {
                ASSERT_EQ(a.keyRow(layer, slot)[d],
                          b.keyRow(layer, slot)[d]);
                ASSERT_EQ(a.valueRow(layer, slot)[d],
                          b.valueRow(layer, slot)[d]);
            }
        }
    }
}

TEST(SequenceParallelTest, StatsCountLeavesAndRedundancy)
{
    Transformer llm = tinyLlm();
    KvCache cache = llm.makeCache();
    llm.forward(DecodeChunk::sequence({1, 2}), cache);

    // Two leaves; path lengths 2 (root+left) and 2 (root+right):
    // root computed twice = 4 token-forwards vs 3 tree tokens.
    DecodeChunk chunk;
    chunk.tokens = {5, 6, 7};
    chunk.parents = {-1, 0, 0};
    SequenceParallelStats stats;
    sequenceParallelDecode(llm, chunk, cache, &stats);
    EXPECT_EQ(stats.sequences, 2u);
    EXPECT_EQ(stats.tokensComputed, 4u);
    EXPECT_EQ(stats.cacheRowsCopied, 2u * 2u);
}

TEST(SequenceParallelTest, SingleSequenceDegenerates)
{
    Transformer llm = tinyLlm();
    KvCache cache = llm.makeCache();
    DecodeChunk chunk = DecodeChunk::sequence({4, 5, 6});
    SequenceParallelStats stats;
    tensor::Tensor logits =
        sequenceParallelDecode(llm, chunk, cache, &stats);
    EXPECT_EQ(stats.sequences, 1u);
    EXPECT_EQ(stats.tokensComputed, 3u);
    EXPECT_EQ(logits.rows(), 3u);
}

class RandomSequenceParallel
    : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomSequenceParallel, AlwaysMatchesTreeDecoding)
{
    Transformer llm = tinyLlm();
    util::Rng rng(GetParam() + 100);
    std::vector<int> prefix =
        randomPrompt(rng, 1 + rng.uniformInt(uint64_t{6}),
                     llm.config().vocabSize);
    DecodeChunk chunk = randomTreeChunk(
        rng, 2 + rng.uniformInt(uint64_t{9}),
        llm.config().vocabSize);

    KvCache tree_cache = llm.makeCache();
    llm.forward(DecodeChunk::sequence(prefix), tree_cache);
    KvCache seq_cache = tree_cache.clone();

    tensor::Tensor tree_logits = llm.forward(chunk, tree_cache);
    tensor::Tensor seq_logits =
        sequenceParallelDecode(llm, chunk, seq_cache);
    for (size_t i = 0; i < tree_logits.size(); ++i)
        ASSERT_EQ(tree_logits.data()[i], seq_logits.data()[i]);
}

INSTANTIATE_TEST_SUITE_P(PropertySweep, RandomSequenceParallel,
                         ::testing::Range(uint64_t{0}, uint64_t{8}));

} // namespace
} // namespace model
} // namespace specinfer
