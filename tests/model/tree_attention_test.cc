/**
 * @file
 * The central equivalence property of tree attention (paper
 * Definition 4.1): for every node u of a token tree, the tree
 * attention output equals ordinary causal sequence attention run on
 * the root-to-u path S_u. We assert bitwise-identical logits, which
 * also validates the topology-aware causal mask, the derived RoPE
 * positions, and the shared KV-cache layout.
 */

#include <gtest/gtest.h>

#include "model/transformer.h"
#include "test_models.h"
#include "util/rng.h"

namespace specinfer {
namespace model {
namespace {

using specinfer::testing::randomPrompt;
using specinfer::testing::randomTreeChunk;
using specinfer::testing::tinyLlm;

/** Root-to-node path as chunk indices, root first. */
std::vector<size_t>
chunkPath(const DecodeChunk &chunk, size_t node)
{
    std::vector<size_t> path;
    for (int32_t n = static_cast<int32_t>(node); n >= 0;
         n = chunk.parents[static_cast<size_t>(n)])
        path.push_back(static_cast<size_t>(n));
    std::reverse(path.begin(), path.end());
    return path;
}

/**
 * Reference: decode each root-to-node path as a plain sequence on a
 * fresh copy of the prefix cache; compare node logits bitwise.
 */
void
expectTreeMatchesPerPath(const Transformer &llm,
                         const std::vector<int> &prefix,
                         const DecodeChunk &tree_chunk)
{
    KvCache cache = llm.makeCache();
    if (!prefix.empty())
        llm.forward(DecodeChunk::sequence(prefix), cache);
    KvCache prefix_cache = cache.clone();

    tensor::Tensor tree_logits = llm.forward(tree_chunk, cache);

    for (size_t node = 0; node < tree_chunk.size(); ++node) {
        std::vector<size_t> path = chunkPath(tree_chunk, node);
        std::vector<int> tokens;
        for (size_t idx : path)
            tokens.push_back(tree_chunk.tokens[idx]);
        KvCache seq_cache = prefix_cache.clone();
        tensor::Tensor seq_logits =
            llm.forward(DecodeChunk::sequence(tokens), seq_cache);
        const float *expect = seq_logits.row(path.size() - 1);
        const float *got = tree_logits.row(node);
        for (size_t c = 0; c < llm.config().vocabSize; ++c)
            ASSERT_EQ(got[c], expect[c])
                << "node " << node << " logit " << c;
    }
}

TEST(TreeAttentionTest, LinearChainEqualsSequence)
{
    Transformer llm = tinyLlm();
    DecodeChunk chunk = DecodeChunk::sequence({5, 6, 7, 8});
    expectTreeMatchesPerPath(llm, {1, 2, 3}, chunk);
}

TEST(TreeAttentionTest, BinaryFanoutEqualsPerPath)
{
    Transformer llm = tinyLlm();
    DecodeChunk chunk;
    chunk.tokens = {10, 11, 12, 13, 14, 15, 16};
    chunk.parents = {-1, 0, 0, 1, 1, 2, 2};
    expectTreeMatchesPerPath(llm, {4, 9, 2, 7}, chunk);
}

TEST(TreeAttentionTest, PaperFigureFourTopology)
{
    // The token tree of Figure 4: t3 under the root, {t4, t8} under
    // t3, {t5, t6} under t4 and t9 under t8, t7 under t6.
    Transformer llm = tinyLlm();
    DecodeChunk chunk;
    chunk.tokens = {3, 4, 5, 6, 7, 8, 9};
    chunk.parents = {-1, 0, 1, 1, 3, 0, 5};
    expectTreeMatchesPerPath(llm, {1, 2}, chunk);
}

TEST(TreeAttentionTest, EmptyPrefix)
{
    Transformer llm = tinyLlm();
    DecodeChunk chunk;
    chunk.tokens = {1, 2, 3};
    chunk.parents = {-1, 0, 0};
    expectTreeMatchesPerPath(llm, {}, chunk);
}

class RandomTreeAttention : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomTreeAttention, EqualsPerPathDecoding)
{
    Transformer llm = tinyLlm();
    util::Rng rng(GetParam());
    size_t prefix_len = 1 + rng.uniformInt(uint64_t{10});
    size_t nodes = 2 + rng.uniformInt(uint64_t{12});
    std::vector<int> prefix =
        randomPrompt(rng, prefix_len, llm.config().vocabSize);
    DecodeChunk chunk =
        randomTreeChunk(rng, nodes, llm.config().vocabSize);
    expectTreeMatchesPerPath(llm, prefix, chunk);
}

INSTANTIATE_TEST_SUITE_P(PropertySweep, RandomTreeAttention,
                         ::testing::Range(uint64_t{0}, uint64_t{12}));

TEST(TreeAttentionTest, ExtraSlotsMatchSingleChunk)
{
    // Level-by-level decoding with explicit extra slots (as the
    // speculator does) must equal decoding the whole tree at once.
    Transformer llm = tinyLlm();
    std::vector<int> prefix = {3, 1, 4, 1, 5};

    // Whole-tree reference: root + two children + grandchild.
    DecodeChunk whole;
    whole.tokens = {9, 10, 11, 12};
    whole.parents = {-1, 0, 0, 1};
    KvCache ref_cache = llm.makeCache();
    llm.forward(DecodeChunk::sequence(prefix), ref_cache);
    tensor::Tensor ref = llm.forward(whole, ref_cache);

    // Level-by-level: root first, then children with prefixLen
    // pinned to the verified prefix and the root as an extra slot.
    KvCache cache = llm.makeCache();
    std::vector<int> prefix_plus_root = prefix;
    prefix_plus_root.push_back(9);
    tensor::Tensor root_logits = llm.forward(
        DecodeChunk::sequence(prefix_plus_root), cache);
    // Root row must match.
    for (size_t c = 0; c < llm.config().vocabSize; ++c)
        ASSERT_EQ(root_logits.at(prefix.size(), c), ref.at(0, c));

    DecodeChunk level1;
    level1.tokens = {10, 11};
    level1.parents = {-1, -1};
    level1.prefixLen = prefix.size() + 1; // prefix + root
    tensor::Tensor l1 = llm.forward(level1, cache);
    for (size_t c = 0; c < llm.config().vocabSize; ++c) {
        ASSERT_EQ(l1.at(0, c), ref.at(1, c));
        ASSERT_EQ(l1.at(1, c), ref.at(2, c));
    }

    DecodeChunk level2;
    level2.tokens = {12};
    level2.parents = {-1};
    level2.prefixLen = prefix.size() + 1;
    level2.extraSlots = {{prefix.size() + 1}}; // slot of token 10
    tensor::Tensor l2 = llm.forward(level2, cache);
    for (size_t c = 0; c < llm.config().vocabSize; ++c)
        ASSERT_EQ(l2.at(0, c), ref.at(3, c));
}

TEST(TreeAttentionTest, SiblingIsolation)
{
    // A node's logits must not depend on sibling branches: grow the
    // tree with an extra sibling subtree and check unchanged rows.
    Transformer llm = tinyLlm();
    std::vector<int> prefix = {2, 4, 6};

    DecodeChunk small;
    small.tokens = {7, 8};
    small.parents = {-1, 0};
    KvCache c1 = llm.makeCache();
    llm.forward(DecodeChunk::sequence(prefix), c1);
    tensor::Tensor small_logits = llm.forward(small, c1);

    DecodeChunk big;
    big.tokens = {7, 8, 20, 21, 22};
    big.parents = {-1, 0, 0, 2, 1};
    KvCache c2 = llm.makeCache();
    llm.forward(DecodeChunk::sequence(prefix), c2);
    tensor::Tensor big_logits = llm.forward(big, c2);

    for (size_t node = 0; node < 2; ++node)
        for (size_t c = 0; c < llm.config().vocabSize; ++c)
            ASSERT_EQ(big_logits.at(node, c), small_logits.at(node, c));
}

TEST(TreeAttentionDeathTest, ExtraSlotsMustAscend)
{
    Transformer llm = tinyLlm();
    KvCache cache = llm.makeCache();
    llm.forward(DecodeChunk::sequence({1, 2, 3}), cache);
    DecodeChunk chunk;
    chunk.tokens = {5};
    chunk.parents = {-1};
    chunk.prefixLen = 1;
    chunk.extraSlots = {{2, 1}};
    EXPECT_DEATH(llm.forward(chunk, cache), "ascend");
}

} // namespace
} // namespace model
} // namespace specinfer
