/**
 * @file
 * Determinism tests for the batched, pooled forward path: logits
 * must be bit-identical across SPECINFER_THREADS settings, the
 * kernel-launch counter must survive the threaded phases, and the
 * PR-1 differential oracle must stay green while the global pool is
 * oversubscribed.
 */

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "model/transformer.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/threadpool.h"
#include "verify/diff_harness.h"

#include "test_models.h"

namespace {

using namespace specinfer;
using specinfer::util::ThreadPool;
namespace spectest = specinfer::testing;

/** Prefix prefill + one tree chunk; returns the chunk's logits. */
tensor::Tensor
runForward(model::Transformer &llm)
{
    model::KvCache cache = llm.makeCache();
    util::Rng rng(17);
    std::vector<int> prefix = spectest::randomPrompt(
        rng, 24, llm.config().vocabSize);
    llm.forward(model::DecodeChunk::sequence(prefix), cache);
    model::DecodeChunk chunk = spectest::randomTreeChunk(
        rng, 16, llm.config().vocabSize);
    return llm.forward(chunk, cache);
}

TEST(ThreadedForwardTest, LogitsBitIdenticalAcrossThreadCounts)
{
    ThreadPool &pool = ThreadPool::global();
    const size_t restore = pool.threads();
    model::Transformer llm = spectest::tinyLlm();

    pool.setThreads(1);
    tensor::Tensor ref = runForward(llm);

    for (size_t threads : {2u, 8u}) {
        pool.setThreads(threads);
        tensor::Tensor got = runForward(llm);
        ASSERT_EQ(got.rows(), ref.rows());
        ASSERT_EQ(got.cols(), ref.cols());
        EXPECT_EQ(std::memcmp(got.data(), ref.data(),
                              ref.size() * sizeof(float)),
                  0)
            << "forward logits differ at threads=" << threads;
    }
    pool.setThreads(restore);
}

TEST(ThreadedForwardTest, KernelLaunchCounterCountsOnePerForward)
{
    ThreadPool &pool = ThreadPool::global();
    const size_t restore = pool.threads();
    pool.setThreads(4);
    model::Transformer llm = spectest::tinyLlm();
    model::KvCache cache = llm.makeCache();
    EXPECT_EQ(llm.kernelLaunches(), 0u);
    util::Rng rng(5);
    for (uint64_t n = 1; n <= 8; ++n) {
        llm.forward(spectest::randomTreeChunk(
                        rng, 4, llm.config().vocabSize),
                    cache);
        EXPECT_EQ(llm.kernelLaunches(), n);
    }
    pool.setThreads(restore);
}

TEST(ThreadedForwardTest, DiffOracleGreenUnderPool)
{
    ThreadPool &pool = ThreadPool::global();
    const size_t restore = pool.threads();
    pool.setThreads(4);
    for (uint64_t seed = 1; seed <= 3; ++seed) {
        verify::TrialOutcome greedy = verify::runGreedyTrial(seed);
        EXPECT_TRUE(greedy.ok) << greedy.detail;
        verify::TrialOutcome fuzz = verify::runTreeFuzzTrial(seed);
        EXPECT_TRUE(fuzz.ok) << fuzz.detail;
        verify::TrialOutcome kv = verify::runKvRoundTripTrial(seed);
        EXPECT_TRUE(kv.ok) << kv.detail;
    }
    pool.setThreads(restore);
}

} // namespace
