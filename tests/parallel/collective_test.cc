/**
 * @file
 * Property/fuzz tests for the simulated collective library: the
 * shard-range partition algebra, bit-exact ordered allReduce folds
 * (and their rank-count invariance — the §5j determinism contract),
 * allGather/broadcast permutation checks, byte/call accounting
 * against GpuPerfModel's communication formula, and a two-thread
 * barrier hammer aimed at the TSan sweep.
 */

#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "model/transformer.h"
#include "obs/obs.h"
#include "parallel/collective.h"
#include "simulator/perf_model.h"
#include "util/rng.h"

#include "../model/test_models.h"

namespace {

using namespace specinfer;
namespace spectest = specinfer::testing;

/** n seeded floats with varied magnitude/sign (so FP reassociation
 *  would actually change bits if the fold order ever drifted). */
std::vector<float>
randomFloats(util::Rng &rng, size_t n)
{
    std::vector<float> v(n);
    for (size_t i = 0; i < n; ++i)
        v[i] = static_cast<float>(rng.normal(0.0, 1.0) *
                                  (1.0 + 100.0 * rng.uniform()));
    return v;
}

// --- shardRange --------------------------------------------------

TEST(CollectiveShardRange, PartitionsExactlyAndContiguously)
{
    for (size_t n : {0u, 1u, 5u, 7u, 8u, 31u, 96u, 1000u}) {
        for (size_t shards : {1u, 2u, 3u, 4u, 8u}) {
            size_t expected_begin = 0;
            for (size_t s = 0; s < shards; ++s) {
                auto r = parallel::shardRange(n, shards, s);
                EXPECT_EQ(r.first, expected_begin)
                    << "n=" << n << " shards=" << shards << " s=" << s;
                EXPECT_LE(r.first, r.second);
                expected_begin = r.second;
            }
            EXPECT_EQ(expected_begin, n)
                << "n=" << n << " shards=" << shards;
        }
    }
}

TEST(CollectiveShardRange, BalancedWithinOneItem)
{
    for (size_t n : {7u, 96u, 1000u}) {
        for (size_t shards : {2u, 3u, 8u}) {
            for (size_t s = 0; s < shards; ++s) {
                auto r = parallel::shardRange(n, shards, s);
                size_t width = r.second - r.first;
                EXPECT_GE(width, n / shards);
                EXPECT_LE(width, n / shards + 1);
            }
        }
    }
}

/** The nesting law the sharded forward relies on: rank boundaries
 *  (outer = tp) always align with canonical reduce-block boundaries
 *  (inner = nHeads) when tp divides nHeads. */
TEST(CollectiveShardRange, NestsWhenOuterDividesInner)
{
    const size_t inner_counts[] = {2, 4, 8, 12, 24};
    for (size_t n : {0u, 8u, 31u, 96u, 257u}) {
        for (size_t inner : inner_counts) {
            for (size_t outer = 1; outer <= inner; ++outer) {
                if (inner % outer != 0)
                    continue;
                const size_t per = inner / outer;
                for (size_t s = 0; s < outer; ++s) {
                    auto coarse = parallel::shardRange(n, outer, s);
                    auto fine_lo =
                        parallel::shardRange(n, inner, s * per);
                    auto fine_hi = parallel::shardRange(
                        n, inner, (s + 1) * per - 1);
                    EXPECT_EQ(coarse.first, fine_lo.first);
                    EXPECT_EQ(coarse.second, fine_hi.second);
                }
            }
        }
    }
}

// --- allReduceSum ------------------------------------------------

TEST(CollectiveAllReduce, MatchesSerialAscendingFoldBitExactly)
{
    util::Rng rng(42);
    for (size_t n : {1u, 17u, 256u}) {
        for (size_t nparts : {1u, 2u, 3u, 4u, 8u}) {
            std::vector<std::vector<float>> storage;
            std::vector<const float *> parts;
            for (size_t p = 0; p < nparts; ++p) {
                storage.push_back(randomFloats(rng, n));
                parts.push_back(storage.back().data());
            }
            // The contract: out[i] = (((p0[i]+p1[i])+p2[i])+...),
            // strictly ascending part order.
            std::vector<float> expected(n);
            for (size_t i = 0; i < n; ++i) {
                float acc = storage[0][i];
                for (size_t p = 1; p < nparts; ++p)
                    acc += storage[p][i];
                expected[i] = acc;
            }
            parallel::TpComm comm(nparts);
            std::vector<float> out(n, -1.0f);
            comm.allReduceSum(parts, out.data(), n);
            EXPECT_EQ(std::memcmp(out.data(), expected.data(),
                                  n * sizeof(float)),
                      0)
                << "n=" << n << " parts=" << nparts;
        }
    }
}

/** The §5j rank-count invariance: the part list, not the rank
 *  count, defines the fold tree — the same canonical parts reduced
 *  through communicators of 1, 2, 3, 4, and 8 ranks give bitwise
 *  identical sums. */
TEST(CollectiveAllReduce, RankCountInvariantForCanonicalParts)
{
    util::Rng rng(7);
    const size_t n = 64;
    const size_t blocks = 8; // canonical block count (think nHeads)
    std::vector<std::vector<float>> storage;
    std::vector<const float *> parts;
    for (size_t b = 0; b < blocks; ++b) {
        storage.push_back(randomFloats(rng, n));
        parts.push_back(storage.back().data());
    }
    parallel::TpComm ref_comm(1);
    std::vector<float> ref(n);
    ref_comm.allReduceSum(parts, ref.data(), n);
    for (size_t ranks : {2u, 3u, 4u, 8u}) {
        parallel::TpComm comm(ranks);
        std::vector<float> out(n, 0.0f);
        comm.allReduceSum(parts, out.data(), n);
        EXPECT_EQ(std::memcmp(out.data(), ref.data(),
                              n * sizeof(float)),
                  0)
            << "fold drifted at ranks=" << ranks;
    }
}

// --- allGather / broadcast ---------------------------------------

TEST(CollectiveAllGather, ColumnSlabsReassembleTheFullMatrix)
{
    util::Rng rng(11);
    const size_t rows = 6;
    for (size_t cols : {1u, 5u, 16u, 96u}) {
        std::vector<float> full = randomFloats(rng, rows * cols);
        for (size_t ranks : {1u, 2u, 3u, 4u, 8u}) {
            // Slice the reference into per-rank column slabs (the
            // layout each rank's LM-head slice GEMM produces).
            std::vector<std::vector<float>> slabs(ranks);
            std::vector<const float *> src(ranks);
            for (size_t r = 0; r < ranks; ++r) {
                auto range = parallel::shardRange(cols, ranks, r);
                size_t width = range.second - range.first;
                slabs[r].resize(rows * width);
                for (size_t i = 0; i < rows; ++i)
                    for (size_t j = 0; j < width; ++j)
                        slabs[r][i * width + j] =
                            full[i * cols + range.first + j];
                src[r] = slabs[r].data();
            }
            parallel::TpComm comm(ranks);
            std::vector<float> out(rows * cols, -7.0f);
            comm.allGatherColumns(src, rows, cols, out.data());
            EXPECT_EQ(std::memcmp(out.data(), full.data(),
                                  rows * cols * sizeof(float)),
                      0)
                << "cols=" << cols << " ranks=" << ranks;
        }
    }
}

TEST(CollectiveAllGather, ConcatenatesVariableCountsInRankOrder)
{
    util::Rng rng(13);
    const std::vector<size_t> counts = {3, 0, 5, 1};
    std::vector<std::vector<float>> storage;
    std::vector<const float *> src;
    std::vector<float> expected;
    for (size_t c : counts) {
        storage.push_back(randomFloats(rng, c));
        src.push_back(storage.back().data());
        expected.insert(expected.end(), storage.back().begin(),
                        storage.back().end());
    }
    parallel::TpComm comm(counts.size());
    std::vector<float> out(expected.size(), 0.0f);
    comm.allGather(src, counts, out.data());
    EXPECT_EQ(std::memcmp(out.data(), expected.data(),
                          expected.size() * sizeof(float)),
              0);
}

TEST(CollectiveBroadcast, ReplicatesToEveryNonNullDestination)
{
    util::Rng rng(17);
    const size_t n = 33;
    std::vector<float> root = randomFloats(rng, n);
    std::vector<float> d1(n, 0.0f), d2(n, 0.0f);
    // Rank 0 is the root: its slot is null (nothing to copy).
    parallel::TpComm comm(3);
    comm.broadcast(root.data(), n, {nullptr, d1.data(), d2.data()});
    EXPECT_EQ(std::memcmp(d1.data(), root.data(),
                          n * sizeof(float)),
              0);
    EXPECT_EQ(std::memcmp(d2.data(), root.data(),
                          n * sizeof(float)),
              0);
}

// --- accounting --------------------------------------------------

TEST(CollectiveAccounting, OneRankCountsNothing)
{
    util::Rng rng(3);
    const size_t n = 16;
    std::vector<float> a = randomFloats(rng, n);
    std::vector<float> out(n);
    parallel::TpComm comm(1);
    comm.allReduceSum({a.data()}, out.data(), n);
    comm.allGatherColumns({a.data()}, 1, n, out.data());
    comm.allGather({a.data()}, {n}, out.data());
    comm.broadcast(a.data(), n, {nullptr});
    const parallel::CommStats &s = comm.stats();
    EXPECT_EQ(s.allReduceCalls, 0u);
    EXPECT_EQ(s.allReduceBytes, 0u);
    EXPECT_EQ(s.allGatherCalls, 0u);
    EXPECT_EQ(s.allGatherBytes, 0u);
    EXPECT_EQ(s.broadcastCalls, 0u);
    EXPECT_EQ(s.broadcastBytes, 0u);
    EXPECT_EQ(s.barrierCalls, 0u);
}

TEST(CollectiveAccounting, CountsLogicalPayloadBytesPerCall)
{
    util::Rng rng(5);
    const size_t n = 24;
    std::vector<float> a = randomFloats(rng, n);
    std::vector<float> b = randomFloats(rng, n);
    std::vector<float> out(n);
    parallel::TpComm comm(2);
    comm.allReduceSum({a.data(), b.data()}, out.data(), n);
    comm.allReduceSum({a.data(), b.data()}, out.data(), n);
    std::vector<float> gathered(2 * n);
    comm.allGather({a.data(), b.data()}, {n, n}, gathered.data());
    comm.broadcast(a.data(), n, {nullptr, out.data()});
    const parallel::CommStats &s = comm.stats();
    EXPECT_EQ(s.allReduceCalls, 2u);
    EXPECT_EQ(s.allReduceBytes, 2 * n * sizeof(float));
    EXPECT_EQ(s.allGatherCalls, 1u);
    EXPECT_EQ(s.allGatherBytes, 2 * n * sizeof(float));
    EXPECT_EQ(s.broadcastCalls, 1u);
    EXPECT_EQ(s.broadcastBytes, n * sizeof(float));
    comm.resetStats();
    EXPECT_EQ(comm.stats().allReduceCalls, 0u);
    EXPECT_EQ(comm.stats().allReduceBytes, 0u);
}

/**
 * Closed loop with the analytical model: run a REAL sharded forward
 * under a local ObsContext and require the published parallel_*
 * counters to equal GpuPerfModel::tensorParallelComm()'s prediction
 * for the same shapes — exactly, not approximately.
 */
TEST(ParallelCommAccounting, ForwardMatchesPerfModelFormula)
{
    model::ModelConfig cfg = spectest::tinyConfig();
    cfg.tensorParallel = 2;
    model::Transformer llm = model::makeLlm(cfg);
    model::KvCache cache = llm.makeCache();

    obs::ObsContext ctx(&obs::SteadyClock::instance(),
                        /*tracing_enabled=*/false);
    obs::ObsContext *prev = obs::setGlobalObs(&ctx);

    util::Rng rng(29);
    const size_t prefill_tokens = 24;
    const size_t tree_tokens = 16;
    llm.forward(model::DecodeChunk::sequence(spectest::randomPrompt(
                    rng, prefill_tokens, cfg.vocabSize)),
                cache);
    llm.forward(spectest::randomTreeChunk(rng, tree_tokens,
                                          cfg.vocabSize),
                cache);
    obs::setGlobalObs(prev);

    // The analytical prediction for the same LLM shape; fp32
    // activations on this CPU backend, hence bytesPerParam = 4.
    simulator::LlmSpec spec;
    spec.nLayers = cfg.nLayers;
    spec.hidden = cfg.dModel;
    spec.vocab = cfg.vocabSize;
    spec.bytesPerParam = 4.0;
    simulator::ParallelismPlan plan;
    plan.tensorParallel = cfg.tensorParallel;

    double want_calls = 0.0, want_bytes = 0.0;
    for (size_t tokens : {prefill_tokens, tree_tokens}) {
        simulator::TpCommVolume vol =
            simulator::GpuPerfModel::tensorParallelComm(
                spec, plan, static_cast<double>(tokens));
        want_calls += vol.allReduceCalls;
        want_bytes += vol.totalAllReduceBytes();
    }

    obs::MetricsSnapshot snap = ctx.metrics().snapshot();
    const obs::SnapshotCounter *calls =
        snap.findCounter("parallel_allreduce_calls");
    const obs::SnapshotCounter *bytes =
        snap.findCounter("parallel_allreduce_bytes");
    ASSERT_NE(calls, nullptr);
    ASSERT_NE(bytes, nullptr);
    EXPECT_EQ(calls->value, static_cast<uint64_t>(want_calls));
    EXPECT_EQ(bytes->value, static_cast<uint64_t>(want_bytes));

    // LM head: one vocab allGather of m*vocab*4 bytes per forward.
    const obs::SnapshotCounter *ag_calls =
        snap.findCounter("parallel_allgather_calls");
    const obs::SnapshotCounter *ag_bytes =
        snap.findCounter("parallel_allgather_bytes");
    ASSERT_NE(ag_calls, nullptr);
    ASSERT_NE(ag_bytes, nullptr);
    EXPECT_EQ(ag_calls->value, 2u);
    EXPECT_EQ(ag_bytes->value,
              (prefill_tokens + tree_tokens) * cfg.vocabSize *
                  sizeof(float));
}

/** tp=1 (and the perf model at tp=1) predict zero communication —
 *  and the forward path publishes no parallel_* counters at all, so
 *  unsharded metric catalogs are unchanged. */
TEST(ParallelCommAccounting, UnshardedForwardPublishesNoCounters)
{
    model::Transformer llm = spectest::tinyLlm();
    model::KvCache cache = llm.makeCache();
    obs::ObsContext ctx(&obs::SteadyClock::instance(),
                        /*tracing_enabled=*/false);
    obs::ObsContext *prev = obs::setGlobalObs(&ctx);
    util::Rng rng(31);
    llm.forward(model::DecodeChunk::sequence(spectest::randomPrompt(
                    rng, 8, llm.config().vocabSize)),
                cache);
    obs::setGlobalObs(prev);
    obs::MetricsSnapshot snap = ctx.metrics().snapshot();
    EXPECT_EQ(snap.findCounter("parallel_allreduce_calls"), nullptr);
    EXPECT_EQ(snap.findCounter("parallel_allgather_calls"), nullptr);

    simulator::LlmSpec spec;
    simulator::ParallelismPlan plan; // tensorParallel = 1
    simulator::TpCommVolume vol =
        simulator::GpuPerfModel::tensorParallelComm(spec, plan,
                                                    64.0);
    EXPECT_EQ(vol.allReduceCalls, 0.0);
    EXPECT_EQ(vol.totalAllReduceBytes(), 0.0);
}

// --- barrier -----------------------------------------------------

/**
 * Two threads hammer one barrier; each round, each thread writes its
 * own (plain, non-atomic) slot before the barrier and reads the
 * peer's slot after it. Under TSan this proves the barrier
 * establishes happens-before across reconvergence; under any build
 * it proves no thread ever escapes a phase early.
 */
TEST(ParallelBarrier, TwoThreadHammerReconverges)
{
    const size_t rounds = 400;
    parallel::TpComm comm(2);
    parallel::Barrier barrier(2, &comm);
    size_t progress[2] = {0, 0};
    bool ok[2] = {true, true};

    auto body = [&](size_t me) {
        const size_t peer = 1 - me;
        for (size_t r = 0; r < rounds; ++r) {
            progress[me] = r + 1;
            barrier.arriveAndWait();
            if (progress[peer] != r + 1)
                ok[me] = false;
            barrier.arriveAndWait();
        }
    };
    std::thread t0(body, 0);
    std::thread t1(body, 1);
    t0.join();
    t1.join();
    EXPECT_TRUE(ok[0]);
    EXPECT_TRUE(ok[1]);
    EXPECT_EQ(comm.stats().barrierCalls, 2 * rounds);
}

} // namespace
