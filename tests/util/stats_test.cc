#include "util/stats.h"

#include <gtest/gtest.h>

namespace specinfer {
namespace util {
namespace {

TEST(RunningStatTest, Empty)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, Moments)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, Reset)
{
    RunningStat s;
    s.add(1.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(PercentileTest, Endpoints)
{
    std::vector<double> v = {3.0, 1.0, 2.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 3.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.0);
}

TEST(PercentileTest, Interpolates)
{
    std::vector<double> v = {0.0, 10.0};
    EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
}

TEST(PercentileTest, Singleton)
{
    EXPECT_DOUBLE_EQ(percentile({42.0}, 73.0), 42.0);
}

TEST(EmpiricalCdfTest, ValueAndCdf)
{
    EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(cdf.valueAt(0.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.valueAt(0.25), 1.0);
    EXPECT_DOUBLE_EQ(cdf.valueAt(0.5), 2.0);
    EXPECT_DOUBLE_EQ(cdf.valueAt(1.0), 4.0);
    EXPECT_DOUBLE_EQ(cdf.cdfAt(0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf.cdfAt(2.0), 0.5);
    EXPECT_DOUBLE_EQ(cdf.cdfAt(9.0), 1.0);
}

TEST(EmpiricalCdfTest, CurveMonotone)
{
    EmpiricalCdf cdf({5.0, 1.0, 3.0, 2.0, 4.0});
    auto pts = cdf.curve(11);
    ASSERT_EQ(pts.size(), 11u);
    for (size_t i = 1; i < pts.size(); ++i) {
        EXPECT_GE(pts[i].first, pts[i - 1].first);
        EXPECT_GE(pts[i].second, pts[i - 1].second);
    }
}

TEST(HistogramTest, BinsAndClamping)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-1.0);  // clamps to first bin
    h.add(0.5);
    h.add(9.9);
    h.add(11.0);  // clamps to last bin
    EXPECT_EQ(h.totalCount(), 4u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(4), 2u);
    EXPECT_DOUBLE_EQ(h.binLow(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binHigh(4), 10.0);
}

TEST(HistogramTest, AsciiRenders)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.1);
    std::string art = h.toAscii();
    EXPECT_NE(art.find('#'), std::string::npos);
}

} // namespace
} // namespace util
} // namespace specinfer
