/**
 * @file
 * Watchdog arm/fire/reset properties under injected time. Every
 * schedule runs on a manually advanced nanosecond source (the
 * obs::ManualClock pattern) — no real sleeps, no flaky margins:
 * each assertion is exact.
 */

#include <gtest/gtest.h>

#include "util/watchdog.h"

namespace specinfer {
namespace util {
namespace {

/** Manually advanced nanosecond source shared with a watchdog. */
struct TestClock
{
    uint64_t now = 0;
    Watchdog::NowFn fn()
    {
        return [this]() { return now; };
    }
};

TEST(WatchdogTest, InBudgetSectionReportsNoStall)
{
    TestClock clock;
    Watchdog dog(1000, clock.fn());

    dog.arm();
    EXPECT_TRUE(dog.armed());
    EXPECT_EQ(dog.deadlineNanos(), 1000u);
    clock.now = 999; // one nano under the deadline
    EXPECT_FALSE(dog.disarm());
    EXPECT_FALSE(dog.armed());
    EXPECT_EQ(dog.armCount(), 1u);
    EXPECT_EQ(dog.stallCount(), 0u);
    EXPECT_EQ(dog.lastOverrunNanos(), 0u);
}

TEST(WatchdogTest, OverrunReportsStallWithExactOverrun)
{
    TestClock clock;
    Watchdog dog(1000, clock.fn());

    clock.now = 500;
    dog.arm(); // deadline 1500
    clock.now = 1777;
    EXPECT_TRUE(dog.disarm());
    EXPECT_EQ(dog.stallCount(), 1u);
    EXPECT_EQ(dog.lastOverrunNanos(), 277u);

    // Hitting the deadline exactly is already a stall: the budget
    // is the last in-budget instant plus one.
    dog.arm(); // deadline 2777
    clock.now = 3777;
    EXPECT_TRUE(dog.disarm());
    EXPECT_EQ(dog.lastOverrunNanos(), 1000u);
    EXPECT_EQ(dog.stallCount(), 2u);
}

TEST(WatchdogTest, ExpiredObservesBlownDeadlineMidFlight)
{
    TestClock clock;
    Watchdog dog(100, clock.fn());

    EXPECT_FALSE(dog.expired()); // disarmed: nothing to expire
    dog.arm();                   // deadline 100
    EXPECT_FALSE(dog.expired());
    clock.now = 99;
    EXPECT_FALSE(dog.expired());
    clock.now = 100;
    EXPECT_TRUE(dog.expired()); // at the deadline, not past it
    clock.now = 5000;
    EXPECT_TRUE(dog.expired());
    EXPECT_TRUE(dog.disarm());
    EXPECT_FALSE(dog.expired()); // disarming clears the condition
}

TEST(WatchdogTest, RearmRestartsTheWindow)
{
    TestClock clock;
    Watchdog dog(1000, clock.fn());

    dog.arm(); // deadline 1000
    clock.now = 900;
    dog.arm(); // restarted: deadline 1900
    EXPECT_EQ(dog.deadlineNanos(), 1900u);
    clock.now = 1500; // past the first window, inside the second
    EXPECT_FALSE(dog.expired());
    EXPECT_FALSE(dog.disarm());
    EXPECT_EQ(dog.armCount(), 2u);
    EXPECT_EQ(dog.stallCount(), 0u);
}

TEST(WatchdogTest, ConsecutiveStallLadderResetsOnCleanSection)
{
    TestClock clock;
    Watchdog dog(10, clock.fn());

    for (int i = 0; i < 3; ++i) {
        dog.arm();
        clock.now += 50; // blow the budget every time
        EXPECT_TRUE(dog.disarm());
    }
    EXPECT_EQ(dog.consecutiveStalls(), 3u);
    EXPECT_EQ(dog.stallCount(), 3u);

    dog.arm();
    clock.now += 5; // in budget: one healthy section ends the streak
    EXPECT_FALSE(dog.disarm());
    EXPECT_EQ(dog.consecutiveStalls(), 0u);
    EXPECT_EQ(dog.stallCount(), 3u); // lifetime count is monotone

    dog.arm();
    clock.now += 50;
    EXPECT_TRUE(dog.disarm());
    EXPECT_EQ(dog.consecutiveStalls(), 1u); // streak restarts at one
}

TEST(WatchdogTest, ZeroBudgetDisablesTheWatchdog)
{
    TestClock clock;
    Watchdog dog(0, clock.fn());

    dog.arm(); // no-op
    EXPECT_FALSE(dog.armed());
    EXPECT_FALSE(dog.expired());
    clock.now = 1u << 30;
    EXPECT_FALSE(dog.disarm()); // never reports a stall
    EXPECT_EQ(dog.armCount(), 0u);
    EXPECT_EQ(dog.stallCount(), 0u);
}

TEST(WatchdogTest, DisarmWithoutArmIsANoOp)
{
    TestClock clock;
    Watchdog dog(100, clock.fn());
    clock.now = 1u << 20;
    EXPECT_FALSE(dog.disarm());
    EXPECT_EQ(dog.stallCount(), 0u);
}

} // namespace
} // namespace util
} // namespace specinfer
