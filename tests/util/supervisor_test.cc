/**
 * @file
 * SupervisorPolicy schedule tests: backoff growth, jitter bounds,
 * stable-uptime ladder resets, and sliding-window crash-loop
 * give-up. The policy is pure (injected timestamps, seeded jitter),
 * so whole restart schedules are asserted deterministically — no
 * processes, no sleeps.
 */

#include <gtest/gtest.h>

#include <vector>

#include "util/supervisor.h"

namespace specinfer {
namespace util {
namespace {

using Action = SupervisorPolicy::Action;
using Decision = SupervisorPolicy::Decision;

SupervisorConfig
tightConfig()
{
    SupervisorConfig cfg;
    cfg.backoffBaseMillis = 100;
    cfg.backoffCapMillis = 1000;
    cfg.stableUptimeMillis = 5000;
    cfg.crashLoopCrashes = 4;
    cfg.crashLoopWindowMillis = 10000;
    return cfg;
}

TEST(SupervisorPolicyTest, BackoffDoublesPerConsecutiveCrash)
{
    SupervisorConfig cfg = tightConfig();
    cfg.crashLoopWindowMillis = 0; // isolate the backoff ladder
    SupervisorPolicy policy(cfg);

    // Rapid crashes: each expected delay is base << (k-1), capped
    // at 1000, plus jitter in [0, base/2].
    uint64_t now = 0;
    const uint64_t expected_base[] = {100, 200, 400, 800, 1000,
                                      1000};
    for (size_t k = 0; k < 6; ++k) {
        policy.onChildStart(now);
        now += 1; // died instantly: consecutive crash
        Decision d = policy.onChildExit(now);
        ASSERT_EQ(d.action, Action::Restart);
        EXPECT_EQ(d.consecutiveCrashes, k + 1);
        EXPECT_GE(d.delayMillis, expected_base[k]);
        EXPECT_LE(d.delayMillis,
                  expected_base[k] + expected_base[k] / 2);
        now += d.delayMillis;
    }
    EXPECT_EQ(policy.totalCrashes(), 6u);
    EXPECT_EQ(policy.restartsGranted(), 6u);
}

TEST(SupervisorPolicyTest, StableUptimeResetsTheLadder)
{
    SupervisorConfig cfg = tightConfig();
    cfg.crashLoopWindowMillis = 0;
    SupervisorPolicy policy(cfg);

    // Two quick crashes climb the ladder...
    policy.onChildStart(0);
    Decision d1 = policy.onChildExit(10);
    policy.onChildStart(100);
    Decision d2 = policy.onChildExit(110);
    EXPECT_EQ(d2.consecutiveCrashes, 2u);
    EXPECT_GE(d2.delayMillis, 200u);

    // ...then a child that survives past stableUptimeMillis makes
    // the next crash an isolated incident again: first-rung delay.
    policy.onChildStart(1000);
    Decision d3 = policy.onChildExit(1000 + cfg.stableUptimeMillis);
    EXPECT_EQ(d3.consecutiveCrashes, 1u);
    EXPECT_GE(d3.delayMillis, cfg.backoffBaseMillis);
    EXPECT_LE(d3.delayMillis,
              cfg.backoffBaseMillis + cfg.backoffBaseMillis / 2);
    (void)d1;
}

TEST(SupervisorPolicyTest, CrashLoopInsideWindowGivesUp)
{
    SupervisorPolicy policy(tightConfig()); // 4 crashes / 10 s

    uint64_t now = 0;
    for (size_t k = 0; k < 3; ++k) {
        policy.onChildStart(now);
        now += 50;
        Decision d = policy.onChildExit(now);
        ASSERT_EQ(d.action, Action::Restart) << "crash " << k;
        now += d.delayMillis;
    }
    policy.onChildStart(now);
    now += 50; // fourth abnormal exit well inside the window
    Decision d = policy.onChildExit(now);
    EXPECT_EQ(d.action, Action::GiveUp);
    EXPECT_EQ(policy.totalCrashes(), 4u);
    EXPECT_EQ(policy.restartsGranted(), 3u); // no restart on give-up
}

TEST(SupervisorPolicyTest, SpacedCrashesAgeOutOfTheWindow)
{
    SupervisorConfig cfg = tightConfig(); // window 10 s
    SupervisorPolicy policy(cfg);

    // Ten crashes spaced 6 s apart: at most two ever share the
    // 10 s window, so the loop detector must never trip.
    uint64_t now = 0;
    for (size_t k = 0; k < 10; ++k) {
        policy.onChildStart(now);
        now += 6000;
        Decision d = policy.onChildExit(now);
        ASSERT_EQ(d.action, Action::Restart) << "crash " << k;
    }
    EXPECT_EQ(policy.restartsGranted(), 10u);
}

TEST(SupervisorPolicyTest, JitterScheduleReplaysFromTheSeed)
{
    // Identical config + seed => identical whole schedules (the
    // diffcheck repro property); a different seed de-synchronizes
    // the fleet without touching the deterministic base.
    SupervisorConfig cfg = tightConfig();
    cfg.crashLoopWindowMillis = 0;
    SupervisorPolicy a(cfg), b(cfg);
    SupervisorConfig other = cfg;
    other.jitterSeed = cfg.jitterSeed + 1;
    SupervisorPolicy c(other);

    std::vector<uint64_t> da, db, dc;
    uint64_t now = 0;
    for (size_t k = 0; k < 8; ++k) {
        a.onChildStart(now);
        b.onChildStart(now);
        c.onChildStart(now);
        now += 5;
        da.push_back(a.onChildExit(now).delayMillis);
        db.push_back(b.onChildExit(now).delayMillis);
        dc.push_back(c.onChildExit(now).delayMillis);
        now += 10;
    }
    EXPECT_EQ(da, db);
    EXPECT_NE(da, dc); // 8 draws agreeing by chance: ~2^-39
}

TEST(SupervisorPolicyTest, DisabledWindowNeverGivesUp)
{
    SupervisorConfig cfg = tightConfig();
    cfg.crashLoopWindowMillis = 0; // give-up disabled
    SupervisorPolicy policy(cfg);
    uint64_t now = 0;
    for (size_t k = 0; k < 50; ++k) {
        policy.onChildStart(now);
        now += 1;
        ASSERT_EQ(policy.onChildExit(now).action, Action::Restart);
        now += 1;
    }
    EXPECT_EQ(policy.restartsGranted(), 50u);
}

} // namespace
} // namespace util
} // namespace specinfer
