#include "util/table.h"

#include <gtest/gtest.h>

namespace specinfer {
namespace util {
namespace {

TEST(TableTest, AsciiAlignsColumns)
{
    Table t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "22"});
    std::string out = t.toAscii();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, CsvFormat)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.toCsv(), "a,b\n1,2\n");
}

TEST(TableTest, FormatDouble)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(2.0, 0), "2");
    EXPECT_EQ(formatDouble(1.005, 1), "1.0");
}

} // namespace
} // namespace util
} // namespace specinfer
