#include "util/logging.h"

#include <gtest/gtest.h>

namespace specinfer {
namespace util {
namespace {

TEST(LoggingTest, LevelFilterRoundTrip)
{
    LogLevel before = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(LogLevel::Error);
    EXPECT_EQ(logLevel(), LogLevel::Error);
    setLogLevel(before);
}

TEST(LoggingTest, MacrosEvaluateLazily)
{
    // Below the filter threshold the stream expression must not be
    // evaluated.
    LogLevel before = logLevel();
    setLogLevel(LogLevel::Error);
    int evaluations = 0;
    auto touch = [&]() {
        ++evaluations;
        return "x";
    };
    SPECINFER_DEBUG(touch());
    SPECINFER_INFO(touch());
    EXPECT_EQ(evaluations, 0);
    setLogLevel(before);
}

TEST(LoggingTest, CheckPassesThrough)
{
    // A passing check evaluates its condition exactly once and has
    // no other effect.
    int evaluations = 0;
    SPECINFER_CHECK(++evaluations == 1, "should not fire");
    EXPECT_EQ(evaluations, 1);
}

TEST(LoggingDeathTest, CheckAborts)
{
    EXPECT_DEATH(SPECINFER_CHECK(false, "ctx " << 42),
                 "check failed.*ctx 42");
}

TEST(LoggingDeathTest, FatalExitsWithOne)
{
    EXPECT_EXIT(SPECINFER_FATAL("bad config " << 7),
                ::testing::ExitedWithCode(1), "bad config 7");
}

} // namespace
} // namespace util
} // namespace specinfer
