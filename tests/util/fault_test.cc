#include "util/fault.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace specinfer {
namespace util {
namespace {

TEST(FaultInjectorTest, DefaultNeverFires)
{
    FaultInjector fi(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(fi.fire(FaultPoint::SsmStep));
    EXPECT_EQ(fi.occurrences(FaultPoint::SsmStep), 1000u);
    EXPECT_EQ(fi.fired(FaultPoint::SsmStep), 0u);
    EXPECT_EQ(fi.totalFired(), 0u);
}

TEST(FaultInjectorTest, ProbabilityOneAlwaysFires)
{
    FaultInjector fi(42);
    fi.setProbability(FaultPoint::Verify, 1.0);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(fi.fire(FaultPoint::Verify));
    EXPECT_EQ(fi.fired(FaultPoint::Verify), 100u);
}

TEST(FaultInjectorTest, SameSeedSameSchedule)
{
    // A schedule is a pure function of (seed, consultation order):
    // the one-line repro property the runtime tests rely on.
    std::vector<bool> a, b;
    for (int run = 0; run < 2; ++run) {
        FaultInjector fi(0xabcdef);
        fi.setProbability(FaultPoint::SsmStep, 0.3);
        fi.setProbability(FaultPoint::KvAlloc, 0.1);
        std::vector<bool> &out = run == 0 ? a : b;
        for (int i = 0; i < 500; ++i) {
            out.push_back(fi.fire(FaultPoint::SsmStep));
            out.push_back(fi.fire(FaultPoint::KvAlloc));
        }
    }
    EXPECT_EQ(a, b);
}

TEST(FaultInjectorTest, DifferentSeedsDiffer)
{
    FaultInjector a(1), b(2);
    a.setProbability(FaultPoint::SsmStep, 0.5);
    b.setProbability(FaultPoint::SsmStep, 0.5);
    bool differ = false;
    for (int i = 0; i < 200 && !differ; ++i)
        differ = a.fire(FaultPoint::SsmStep) !=
                 b.fire(FaultPoint::SsmStep);
    EXPECT_TRUE(differ);
}

TEST(FaultInjectorTest, ZeroProbabilityPointConsumesNoRandomness)
{
    // Consulting a disabled point must not perturb another point's
    // schedule, so adding instrumentation never changes a repro.
    std::vector<bool> with, without;
    for (int run = 0; run < 2; ++run) {
        FaultInjector fi(7);
        fi.setProbability(FaultPoint::KvAlloc, 0.4);
        std::vector<bool> &out = run == 0 ? with : without;
        for (int i = 0; i < 300; ++i) {
            if (run == 0)
                fi.fire(FaultPoint::SsmStep); // disabled point
            out.push_back(fi.fire(FaultPoint::KvAlloc));
        }
    }
    EXPECT_EQ(with, without);
}

TEST(FaultInjectorTest, ArmedOccurrenceFiresExactlyOnce)
{
    FaultInjector fi(9);
    fi.armAt(FaultPoint::SlowIteration, 3);
    fi.armAt(FaultPoint::SlowIteration, 5);
    std::vector<uint64_t> fired_at;
    for (uint64_t i = 1; i <= 10; ++i)
        if (fi.fire(FaultPoint::SlowIteration))
            fired_at.push_back(i);
    EXPECT_EQ(fired_at, (std::vector<uint64_t>{3, 5}));
}

TEST(FaultInjectorTest, ConcurrentConsultationIsExactlyCounted)
{
    // The batched forward path consults fire() from pool workers;
    // counters must not drop updates under contention (they are
    // atomics, verified under TSan by the build-tsan preset).
    const int kThreads = 8;
    const int kPerThread = 5000;
    FaultInjector fi(31337);
    fi.setProbability(FaultPoint::SsmStep, 0.25);
    std::atomic<uint64_t> observed{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([&]() {
            uint64_t mine = 0;
            for (int i = 0; i < kPerThread; ++i)
                mine += fi.fire(FaultPoint::SsmStep) ? 1 : 0;
            observed.fetch_add(mine);
        });
    for (std::thread &w : workers)
        w.join();
    const uint64_t total =
        uint64_t(kThreads) * uint64_t(kPerThread);
    EXPECT_EQ(fi.occurrences(FaultPoint::SsmStep), total);
    EXPECT_EQ(fi.fired(FaultPoint::SsmStep), observed.load());
    EXPECT_EQ(fi.totalFired(), observed.load());
    // Sanity: p=0.25 over 40k draws lands well inside [0.2, 0.3].
    EXPECT_GT(observed.load(), total / 5);
    EXPECT_LT(observed.load(), (total * 3) / 10);
}

TEST(FaultInjectorTest, ConcurrentArmedOccurrenceFiresOnce)
{
    // An armed one-shot must fire exactly once even when the firing
    // occurrence is racing with consultations from other threads.
    const int kThreads = 8;
    const int kPerThread = 1000;
    FaultInjector fi(7);
    fi.armAt(FaultPoint::Crash, 1234);
    std::atomic<uint64_t> hits{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([&]() {
            for (int i = 0; i < kPerThread; ++i)
                if (fi.fire(FaultPoint::Crash))
                    hits.fetch_add(1);
        });
    for (std::thread &w : workers)
        w.join();
    EXPECT_EQ(hits.load(), 1u);
    EXPECT_EQ(fi.fired(FaultPoint::Crash), 1u);
    EXPECT_EQ(fi.occurrences(FaultPoint::Crash),
              uint64_t(kThreads) * uint64_t(kPerThread));
}

TEST(FaultInjectorTest, ReproLineNamesSeedAndPoints)
{
    FaultInjector fi(1234);
    fi.setProbability(FaultPoint::SsmStep, 0.25);
    std::string line = fi.reproLine();
    EXPECT_NE(line.find("1234"), std::string::npos);
    EXPECT_NE(line.find("ssm-step"), std::string::npos);
    EXPECT_EQ(line.find("kv-alloc"), std::string::npos);
}

TEST(FaultInjectorDeathTest, RejectsBadProbability)
{
    FaultInjector fi(1);
    EXPECT_DEATH(fi.setProbability(FaultPoint::SsmStep, 1.5),
                 "probability");
}

TEST(FaultHookTest, NoInjectorMeansNoFault)
{
    ASSERT_EQ(faultInjector(), nullptr);
    EXPECT_FALSE(faultAt(FaultPoint::SsmStep));
    EXPECT_FALSE(faultAt(FaultPoint::KvAlloc));
}

TEST(FaultHookTest, ScopeInstallsAndRestores)
{
    ASSERT_EQ(faultInjector(), nullptr);
    {
        FaultInjector fi(3);
        fi.setProbability(FaultPoint::Verify, 1.0);
        FaultScope scope(&fi);
        EXPECT_EQ(faultInjector(), &fi);
        EXPECT_TRUE(faultAt(FaultPoint::Verify));
        {
            // Nested scope: inner injector wins, outer restored.
            FaultInjector inner(4);
            FaultScope nested(&inner);
            EXPECT_EQ(faultInjector(), &inner);
            EXPECT_FALSE(faultAt(FaultPoint::Verify));
        }
        EXPECT_EQ(faultInjector(), &fi);
    }
    EXPECT_EQ(faultInjector(), nullptr);
}

} // namespace
} // namespace util
} // namespace specinfer
