#include "util/flags.h"

#include <gtest/gtest.h>

namespace specinfer {
namespace util {
namespace {

Flags
parse(std::vector<const char *> args)
{
    args.insert(args.begin(), "prog");
    return Flags(static_cast<int>(args.size()), args.data());
}

TEST(FlagsTest, SpaceAndEqualsForms)
{
    Flags f = parse({"--alpha", "1", "--beta=two"});
    EXPECT_TRUE(f.has("alpha"));
    EXPECT_EQ(f.getInt("alpha", 0), 1);
    EXPECT_EQ(f.get("beta"), "two");
}

TEST(FlagsTest, DefaultsWhenAbsent)
{
    Flags f = parse({});
    EXPECT_FALSE(f.has("x"));
    EXPECT_EQ(f.get("x", "d"), "d");
    EXPECT_EQ(f.getInt("x", 7), 7);
    EXPECT_DOUBLE_EQ(f.getDouble("x", 1.5), 1.5);
    EXPECT_TRUE(f.getBool("x", true));
}

TEST(FlagsTest, BooleanForms)
{
    Flags f = parse({"--on", "--off=false", "--yes=true"});
    EXPECT_TRUE(f.getBool("on"));
    EXPECT_FALSE(f.getBool("off"));
    EXPECT_TRUE(f.getBool("yes"));
}

TEST(FlagsTest, PositionalArguments)
{
    Flags f = parse({"file1", "--k", "v", "file2"});
    EXPECT_EQ(f.positional(),
              (std::vector<std::string>{"file1", "file2"}));
}

TEST(FlagsTest, DoubleValues)
{
    Flags f = parse({"--t=0.75"});
    EXPECT_DOUBLE_EQ(f.getDouble("t", 0.0), 0.75);
}

TEST(FlagsTest, NegativeIntegerAsSeparateToken)
{
    Flags f = parse({"--n=-3"});
    EXPECT_EQ(f.getInt("n", 0), -3);
}

TEST(FlagsDeathTest, BadValuesAreFatal)
{
    Flags ints = parse({"--n=abc"});
    EXPECT_EXIT(ints.getInt("n", 0),
                ::testing::ExitedWithCode(1), "integer");
    Flags bools = parse({"--b=maybe"});
    EXPECT_EXIT(bools.getBool("b"),
                ::testing::ExitedWithCode(1), "true/false");
}

TEST(FlagsDeathTest, AllowOnlyCatchesTypos)
{
    Flags f = parse({"--tempratur=1"});
    EXPECT_EXIT(f.allowOnly({"temperature"}),
                ::testing::ExitedWithCode(1), "unknown flag");
    Flags ok = parse({"--temperature=1"});
    ok.allowOnly({"temperature"});
}

} // namespace
} // namespace util
} // namespace specinfer
