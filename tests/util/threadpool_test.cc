/**
 * @file
 * Unit tests for the shared fork-join thread pool: exactly-once
 * index coverage, deterministic static partitioning, worker-id
 * bounds, nested-call degradation, and runtime resizing.
 */

#include "util/threadpool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace {

using specinfer::util::ThreadPool;

TEST(ThreadPoolTest, SerialPoolRunsEveryIndexInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threads(), 1u);
    std::vector<int> hits(100, 0);
    pool.parallelFor(0, hits.size(),
                     [&](size_t i) { hits[i] += 1; });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, EachIndexRunsExactlyOnce)
{
    for (size_t threads : {2u, 3u, 8u}) {
        ThreadPool pool(threads);
        std::vector<std::atomic<int>> hits(1000);
        pool.parallelFor(0, hits.size(), [&](size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1) << "threads=" << threads;
    }
}

TEST(ThreadPoolTest, NonZeroBeginAndEmptyRange)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(20);
    pool.parallelFor(5, 15, [&](size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), (i >= 5 && i < 15) ? 1 : 0);
    bool ran = false;
    pool.parallelFor(7, 7, [&](size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, WorkerIdsAreInRangeAndSlicesContiguous)
{
    ThreadPool pool(4);
    const size_t n = 101;
    std::vector<std::atomic<size_t>> owner(n);
    pool.parallelForWorker(0, n, [&](size_t i, size_t worker) {
        ASSERT_LT(worker, pool.threads());
        owner[i].store(worker, std::memory_order_relaxed);
    });
    // Static partitioning: worker ids must be non-decreasing across
    // the range (one contiguous slice per worker).
    for (size_t i = 1; i < n; ++i)
        EXPECT_LE(owner[i - 1].load(), owner[i].load()) << "i=" << i;
    EXPECT_EQ(owner[0].load(), 0u);
}

TEST(ThreadPoolTest, NestedParallelForDegradesToSerial)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(64);
    pool.parallelFor(0, 8, [&](size_t outer) {
        // Must not deadlock; inner call runs inline on this worker.
        pool.parallelFor(0, 8, [&](size_t inner) {
            hits[outer * 8 + inner].fetch_add(
                1, std::memory_order_relaxed);
        });
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SetThreadsResizesAndKeepsWorking)
{
    ThreadPool pool(1);
    pool.setThreads(3);
    EXPECT_EQ(pool.threads(), 3u);
    std::vector<std::atomic<int>> hits(50);
    pool.parallelFor(0, hits.size(), [&](size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
    pool.setThreads(1);
    EXPECT_EQ(pool.threads(), 1u);
}

TEST(ThreadPoolTest, ResultsIdenticalAcrossThreadCounts)
{
    // A reduction written the parallelFor way (per-index slots,
    // combined serially afterwards) must be bit-identical at any
    // pool size.
    const size_t n = 977;
    std::vector<double> in(n);
    for (size_t i = 0; i < n; ++i)
        in[i] = 1.0 / static_cast<double>(i + 1);
    auto run = [&](size_t threads) {
        ThreadPool pool(threads);
        std::vector<double> out(n);
        pool.parallelFor(0, n,
                         [&](size_t i) { out[i] = in[i] * in[i]; });
        return std::accumulate(out.begin(), out.end(), 0.0);
    };
    const double serial = run(1);
    EXPECT_EQ(serial, run(2));
    EXPECT_EQ(serial, run(8));
}

TEST(ThreadPoolTest, GlobalPoolIsASingleton)
{
    ThreadPool &a = ThreadPool::global();
    ThreadPool &b = ThreadPool::global();
    EXPECT_EQ(&a, &b);
    EXPECT_GE(a.threads(), 1u);
}

} // namespace
