#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace specinfer {
namespace util {
namespace {

TEST(RngTest, DeterministicFromSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformRange)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(RngTest, UniformIntCoversRange)
{
    Rng rng(11);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.uniformInt(uint64_t{5}));
    EXPECT_EQ(seen.size(), 5u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 4u);
}

TEST(RngTest, UniformIntSigned)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        int64_t v = rng.uniformInt(int64_t{-4}, int64_t{3});
        ASSERT_GE(v, -4);
        ASSERT_LE(v, 3);
    }
}

TEST(RngTest, NormalMoments)
{
    Rng rng(17);
    double sum = 0.0, sum_sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double x = rng.normal();
        sum += x;
        sum_sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, NormalScaled)
{
    Rng rng(19);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(10.0, 0.5);
    EXPECT_NEAR(sum / n, 10.0, 0.02);
}

TEST(RngTest, CategoricalRespectsWeights)
{
    Rng rng(23);
    std::vector<float> weights = {1.0f, 0.0f, 3.0f};
    int counts[3] = {0, 0, 0};
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.categorical(weights)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
    EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, CategoricalSingleton)
{
    Rng rng(29);
    std::vector<float> weights = {2.5f};
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.categorical(weights), 0u);
}

TEST(RngTest, ForkDecorrelates)
{
    Rng parent(31);
    Rng child = parent.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += parent.next() == child.next();
    EXPECT_LT(same, 2);
}

TEST(RngTest, ShufflePermutes)
{
    Rng rng(37);
    std::vector<int> items = {0, 1, 2, 3, 4, 5, 6, 7};
    std::vector<int> orig = items;
    rng.shuffle(items);
    std::multiset<int> a(items.begin(), items.end());
    std::multiset<int> b(orig.begin(), orig.end());
    EXPECT_EQ(a, b);
}

TEST(RngTest, StateRoundTripResumesMidStream)
{
    // Journal replay restores a sampler to its exact pre-crash
    // cursor: capture state mid-stream, keep drawing, then rewind a
    // second generator to the captured state and require the same
    // draws — uniforms, ints, and categoricals alike.
    Rng rng(41);
    for (int i = 0; i < 37; ++i)
        rng.uniform();
    RngState mid = rng.state();
    std::vector<double> want;
    std::vector<uint64_t> want_ints;
    for (int i = 0; i < 50; ++i) {
        want.push_back(rng.uniform());
        want_ints.push_back(rng.uniformInt(uint64_t{1000}));
    }
    Rng other(999); // different seed: state fully overrides it
    other.setState(mid);
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(other.uniform(), want[i]);
        EXPECT_EQ(other.uniformInt(uint64_t{1000}), want_ints[i]);
    }
}

TEST(RngTest, StateCarriesCachedNormal)
{
    // normal() draws pairs and caches the second value; the state
    // must carry the cached half or a restored stream would slip by
    // one draw.
    Rng rng(43);
    rng.normal(); // leaves one normal cached
    RngState with_cache = rng.state();
    std::vector<double> want;
    for (int i = 0; i < 9; ++i)
        want.push_back(rng.normal());
    Rng other(7);
    other.setState(with_cache);
    for (int i = 0; i < 9; ++i)
        EXPECT_EQ(other.normal(), want[i]);
}

TEST(RngTest, SetStateIsIdempotent)
{
    Rng rng(47);
    rng.normal();
    RngState s = rng.state();
    Rng a(0), b(1);
    a.setState(s);
    b.setState(a.state());
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, HashStringStable)
{
    EXPECT_EQ(hashString("alpha"), hashString("alpha"));
    EXPECT_NE(hashString("alpha"), hashString("beta"));
}

TEST(RngTest, SplitMixAdvances)
{
    uint64_t state = 5;
    uint64_t a = splitmix64(state);
    uint64_t b = splitmix64(state);
    EXPECT_NE(a, b);
}

} // namespace
} // namespace util
} // namespace specinfer
