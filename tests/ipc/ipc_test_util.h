/**
 * @file
 * Shared fixture for the in-process specinferd IPC tests: a tiny
 * preset-backed engine (so recordings replay offline) plus a
 * scratch IPC directory that is wiped on teardown.
 *
 * In-process clients all share one pid, so channel names collide on
 * the nonce alone — tests must hand every client a distinct nonce
 * (widely spaced when reconnects bump it).
 */

#ifndef SPECINFER_TESTS_IPC_IPC_TEST_UTIL_H
#define SPECINFER_TESTS_IPC_IPC_TEST_UTIL_H

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "core/spec_engine.h"
#include "ipc/client.h"
#include "ipc/daemon.h"
#include "model/model_factory.h"

namespace specinfer {
namespace ipc {
namespace testutil {

inline std::string
makeScratchDir()
{
    char tmpl[] = "/tmp/specinfer-ipc-test-XXXXXX";
    char *dir = ::mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    return std::string(dir);
}

/**
 * Engine + scratch-dir fixture. The LLM is the `tiny` *preset* (not
 * the ad-hoc test model) so recordings made here carry an engine
 * identity that replayRecording() can rebuild offline.
 */
struct Fixture
{
    Fixture()
        : dir(makeScratchDir()),
          llm(model::makeLlm(model::llmPreset("tiny"))),
          ssm(model::makeEarlyExitSsm(llm, 2)),
          engine(&llm, {&ssm}, engineConfig())
    {
    }

    ~Fixture()
    {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
    }

    static core::EngineConfig
    engineConfig()
    {
        // Exactly greedyDefault + the fields a recording header
        // carries, so the replayed engine is this engine.
        core::EngineConfig cfg = core::EngineConfig::greedyDefault();
        cfg.spec.expansion = core::ExpansionConfig::parse("1,2,2");
        cfg.maxNewTokens = 12;
        cfg.seed = 7;
        return cfg;
    }

    runtime::ServingConfig
    servingConfig() const
    {
        runtime::ServingConfig scfg;
        scfg.maxBatchSize = 4;
        return scfg;
    }

    DaemonConfig
    daemonConfig() const
    {
        DaemonConfig dcfg;
        dcfg.dir = dir;
        dcfg.scanEvery = 1;   // co-op tests want instant discovery
        dcfg.leaseTicks = 24;
        dcfg.recordHeader.llm = "tiny";
        dcfg.recordHeader.ssmLayers = 2;
        dcfg.recordHeader.expansion = "1,2,2";
        dcfg.recordHeader.seed = 7;
        dcfg.recordHeader.engineMaxNewTokens = 12;
        dcfg.recordHeader.temperature = 0.0;
        return dcfg;
    }

    ClientConfig
    clientConfig(uint64_t nonce) const
    {
        ClientConfig ccfg;
        ccfg.dir = dir;
        ccfg.nonce = nonce; // in-process clients share a pid
        ccfg.backoffUnitMicros = 0;
        ccfg.stallPollLimit = 1 << 20;
        // Tight revocation suspicion: a silently reaped client (its
        // best-effort Revoked frame lost to an armed ipc-send
        // fault) must notice and reconnect within the co-op tests'
        // bounded pump budgets.
        ccfg.quietPollLimit = 200;
        return ccfg;
    }

    std::vector<int>
    prompt(int i) const
    {
        return {3 + i, 7, 2 + (i % 5), 9 + (i % 3)};
    }

    std::vector<int>
    oracle(const std::vector<int> &p, uint64_t id,
           size_t max_new) const
    {
        return engine.generate(p, id, max_new).tokens;
    }

    std::string dir;
    model::Transformer llm;
    model::Transformer ssm;
    core::SpecEngine engine;
};

/** One co-op round: every client polls, then the daemon ticks. */
inline void
pump(Daemon &daemon, std::initializer_list<Client *> clients,
     size_t rounds)
{
    for (size_t r = 0; r < rounds; ++r) {
        for (Client *client : clients)
            client->poll();
        daemon.tick();
    }
}

/** Pump until the client has nothing in flight (or the budget is
 *  exhausted, which the caller asserts against). */
inline void
pumpUntilIdle(Daemon &daemon, Client &client, size_t max_rounds)
{
    for (size_t r = 0;
         r < max_rounds && client.inflightCount() > 0; ++r) {
        client.poll();
        daemon.tick();
    }
}

} // namespace testutil
} // namespace ipc
} // namespace specinfer

#endif // SPECINFER_TESTS_IPC_IPC_TEST_UTIL_H
