/**
 * @file
 * Chaos soak for the specinferd serving plane (the ISSUE acceptance
 * gate): ≥1000 co-op rounds of random client submits, kill -9
 * abandons, daemon crash + journal recovery, and armed ipc-send /
 * ipc-recv / client-reap fault points — all from one seed.
 *
 * Invariants checked at the end:
 *  - every surviving client's request resolves, token-identical to
 *    the standalone engine (exact for normal finishes, prefix for
 *    reap/cancel aborts);
 *  - zero leaked KV blocks once the daemon is idle;
 *  - zero leaked shared-memory segments after drain;
 *  - the cross-generation recording replays token-identically.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "../model/test_models.h"
#include "ipc/client.h"
#include "ipc/daemon.h"
#include "ipc/replay.h"
#include "obs/obs.h"
#include "runtime/kv_memory.h"
#include "util/fault.h"
#include "util/rng.h"

#include "ipc_test_util.h"

namespace specinfer {
namespace ipc {
namespace {

using StopReason = core::SpecSession::StopReason;
using testutil::Fixture;

struct TrackedRequest
{
    uint64_t tag = 0;
    std::vector<int> prompt;
    size_t maxNewTokens = 0;
};

struct LiveClient
{
    std::unique_ptr<Client> client;
    std::vector<TrackedRequest> requests;
};

bool
abortedStop(uint8_t stop)
{
    switch (static_cast<StopReason>(stop)) {
      case StopReason::Deadline:
      case StopReason::Cancelled:
      case StopReason::Preempted:
      case StopReason::Shed:
        return true;
      default:
        return false;
    }
}

TEST(DaemonSoakTest, ChaosSoakKeepsEveryInvariant)
{
    constexpr size_t kChaosRounds = 1100;
    constexpr size_t kMaxClients = 4;
    constexpr size_t kMaxCrashes = 5;
    constexpr size_t kMaxKills = 8;

    Fixture f;
    util::Rng chaos(0x50a4ca05ULL);

    // The soak daemon serves SHARDED (tp=2) while every oracle
    // comparison below stays against the fixture's tp=1 engine:
    // §5j bit-identity soaked under chaos, with the degree riding
    // through each crash's snapshot recovery and the recording
    // header.
    model::ModelConfig sharded_cfg = model::llmPreset("tiny");
    sharded_cfg.tensorParallel = 2;
    model::Transformer sharded_llm = model::makeLlm(sharded_cfg);
    model::Transformer sharded_ssm =
        model::makeEarlyExitSsm(sharded_llm, 2);
    core::SpecEngine sharded_engine(&sharded_llm, {&sharded_ssm},
                                    Fixture::engineConfig());

    runtime::ServingConfig scfg;
    scfg.maxBatchSize = 3;
    scfg.kvPoolBlocks = 64; // exercises the leak assertion
    scfg.kvBlockTokens = 16;
    scfg.tpDegree = 2;

    DaemonConfig dcfg = f.daemonConfig();
    dcfg.journalPath = f.dir + "/soak.wal";
    dcfg.recordPath = f.dir + "/soak.rec";
    dcfg.snapshotEvery = 8;
    dcfg.leaseTicks = 16;
    dcfg.recordHeader.tpDegree = 2;

    auto daemon =
        std::make_unique<Daemon>(&sharded_engine, scfg, dcfg);
    ASSERT_TRUE(daemon->start());

    // Widely spaced nonces: reconnects bump by one, and in-process
    // clients share a pid, so blocks of 1000 can never collide.
    uint64_t next_nonce = 1000;
    std::vector<LiveClient> clients;
    auto spawn = [&]() {
        LiveClient lc;
        lc.client =
            std::make_unique<Client>(f.clientConfig(next_nonce));
        next_nonce += 1000;
        ASSERT_EQ(lc.client->connect(), ClientStatus::Pending);
        clients.push_back(std::move(lc));
    };
    for (int i = 0; i < 3; ++i)
        spawn();

    size_t crashes = 0, kills = 0, submits = 0, reconnects = 0;
    {
        util::FaultInjector injector(0xfa177ab1e5ULL);
        injector.setProbability(util::FaultPoint::IpcSend, 0.05);
        injector.setProbability(util::FaultPoint::IpcRecv, 0.05);
        injector.setProbability(util::FaultPoint::ClientReap,
                                0.001);
        util::FaultScope scope(&injector);

        for (size_t round = 0; round < kChaosRounds; ++round) {
            // Replace fallen clients (up to the cap).
            if (clients.size() < kMaxClients &&
                chaos.uniformInt(100) < 4)
                spawn();

            // Random submit on a random client.
            if (!clients.empty() && chaos.uniformInt(100) < 15) {
                LiveClient &lc = clients[static_cast<size_t>(
                    chaos.uniformInt(clients.size()))];
                TrackedRequest req;
                req.prompt = specinfer::testing::randomPrompt(
                    chaos, 2 + static_cast<size_t>(
                                   chaos.uniformInt(5)),
                    64);
                req.maxNewTokens =
                    4 + static_cast<size_t>(chaos.uniformInt(7));
                req.tag = lc.client->submit(req.prompt,
                                            req.maxNewTokens);
                lc.requests.push_back(std::move(req));
                ++submits;
            }

            // kill -9 a random client: no goodbye, no unlink.
            if (kills < kMaxKills && clients.size() > 1 &&
                chaos.uniformInt(1000) < 8) {
                const size_t victim = static_cast<size_t>(
                    chaos.uniformInt(clients.size()));
                clients[victim].client->abandon();
                clients.erase(clients.begin() +
                              static_cast<ptrdiff_t>(victim));
                ++kills;
            }

            // Crash the daemon (destructor, no drain) and restart
            // over the same journal/recording/segments.
            if (crashes < kMaxCrashes &&
                chaos.uniformInt(1000) < 5) {
                daemon.reset();
                daemon = std::make_unique<Daemon>(&sharded_engine,
                                                  scfg, dcfg);
                ASSERT_TRUE(daemon->start());
                ++crashes;
            }

            for (LiveClient &lc : clients) {
                const ClientStatus status = lc.client->poll();
                ASSERT_NE(status, ClientStatus::Corrupt)
                    << "round " << round;
                ASSERT_NE(status, ClientStatus::DaemonGone)
                    << "round " << round;
                if (status == ClientStatus::LeaseRevoked) {
                    ASSERT_EQ(lc.client->reconnect(),
                              ClientStatus::Pending);
                    ++reconnects;
                }
            }
            daemon->tick();
        }
    } // faults disarmed; the settle phase runs clean

    // Settle: reap every abandoned segment, then finish all work.
    for (size_t r = 0; r < dcfg.leaseTicks + 8; ++r) {
        for (LiveClient &lc : clients) {
            if (lc.client->poll() == ClientStatus::LeaseRevoked) {
                ASSERT_EQ(lc.client->reconnect(),
                          ClientStatus::Pending);
            }
        }
        daemon->tick();
    }
    for (size_t r = 0; r < 8000; ++r) {
        size_t inflight = 0;
        for (LiveClient &lc : clients) {
            if (lc.client->poll() == ClientStatus::LeaseRevoked) {
                ASSERT_EQ(lc.client->reconnect(),
                          ClientStatus::Pending);
            }
            inflight += lc.client->inflightCount();
        }
        daemon->tick();
        if (inflight == 0 && !daemon->manager().busy())
            break;
    }

    SCOPED_TRACE("submits=" + std::to_string(submits) +
                 " kills=" + std::to_string(kills) +
                 " crashes=" + std::to_string(crashes) +
                 " reconnects=" + std::to_string(reconnects) +
                 " reaps=" + std::to_string(daemon->reapCount()));
    ASSERT_GT(submits, 50u) << "chaos schedule degenerated";

    // Every surviving client's request resolved token-identically:
    // exact for normal finishes, oracle-prefix for aborts (greedy
    // decoding is request-seed-independent, so resubmitted tags
    // match the same oracle).
    for (LiveClient &lc : clients) {
        for (const TrackedRequest &tracked : lc.requests) {
            const ClientRequest *req =
                lc.client->request(tracked.tag);
            ASSERT_NE(req, nullptr);
            ASSERT_TRUE(req->finished ||
                        req->reject != WireReject::None)
                << "tag " << tracked.tag << " never resolved";
            if (!req->finished)
                continue; // typed rejection is a clean outcome
            const std::vector<int> full = f.oracle(
                tracked.prompt, req->id, tracked.maxNewTokens);
            if (abortedStop(req->stopReason)) {
                ASSERT_LE(req->tokens.size(), full.size());
                EXPECT_TRUE(std::equal(req->tokens.begin(),
                                       req->tokens.end(),
                                       full.begin()))
                    << "tag " << tracked.tag;
            } else {
                EXPECT_EQ(req->tokens, full)
                    << "tag " << tracked.tag;
            }
        }
    }

    // Idle daemon holds zero KV blocks — nothing leaked across
    // preemptions, cancels, reaps, or crash recovery.
    ASSERT_FALSE(daemon->manager().busy());
    ASSERT_NE(daemon->manager().kvPool(), nullptr);
    EXPECT_EQ(daemon->manager().kvPool()->usedBlocks(), 0u);

    daemon->drain();
    for (LiveClient &lc : clients)
        lc.client->disconnect();
    EXPECT_TRUE(listSegments(f.dir, "specinferd").empty())
        << "leaked shared-memory segments";

    // The recording spans every daemon generation and replays
    // token-identically offline.
    std::ifstream rec(dcfg.recordPath, std::ios::binary);
    ASSERT_TRUE(rec.good());
    std::ostringstream log;
    ReplayResult res = replayRecording(rec, log);
    EXPECT_TRUE(res.ok) << log.str();
    EXPECT_EQ(res.mismatches, 0u) << log.str();
    EXPECT_GT(res.finishesChecked, 0u);
}

/**
 * Watchdog chaos soak: hang faults (iterations that blow their
 * watchdog budget), wedge faults (iterations that never return —
 * the heartbeat freezes and the test plays supervisor: kill and
 * restart over the same journal), and daemon crashes, all under
 * mixed-priority client traffic on an auto-stepping ManualClock
 * (deterministic, no real time). Invariants: every stall is
 * detected and absorbed by the degradation ladder (watchdog_stalls
 * counts it, the daemon keeps serving), every wedge is observable
 * (wedged(), watchdog_wedges) and survivable by a supervisor-style
 * restart, surviving streams stay token-identical to the engine
 * oracle, and nothing leaks.
 */
TEST(DaemonSoakTest, WatchdogHangWedgeChaosSoakRecovers)
{
    constexpr size_t kRounds = 900;
    constexpr size_t kMaxCrashes = 3;

    Fixture f;
    util::Rng chaos(0x9a6d0cULL);

    // Auto-stepping manual clock: every read advances 1us, so a
    // "hang" (spin until the watchdog expires) is instant in real
    // time but exact in modeled time.
    obs::ManualClock clock(0, 1000);
    obs::ObsContext obs_ctx(&clock, /*tracing_enabled=*/false);

    runtime::ServingConfig scfg;
    scfg.maxBatchSize = 3;
    scfg.kvPoolBlocks = 64;
    scfg.kvBlockTokens = 16;

    DaemonConfig dcfg = f.daemonConfig();
    dcfg.journalPath = f.dir + "/wdsoak.wal";
    dcfg.recordPath = f.dir + "/wdsoak.rec";
    dcfg.snapshotEvery = 8;
    dcfg.leaseTicks = 16;
    dcfg.obs = &obs_ctx;
    // ~4 clock reads inside a healthy guarded iteration (4us) vs a
    // 20us budget: only injected hangs can stall.
    dcfg.watchdogBudgetNanos = 20000;
    dcfg.stallDegradeIterations = 8;

    auto daemon = std::make_unique<Daemon>(&f.engine, scfg, dcfg);
    ASSERT_TRUE(daemon->start());

    uint64_t next_nonce = 1000;
    std::vector<LiveClient> clients;
    auto spawn = [&]() {
        LiveClient lc;
        lc.client =
            std::make_unique<Client>(f.clientConfig(next_nonce));
        next_nonce += 1000;
        ASSERT_EQ(lc.client->connect(), ClientStatus::Pending);
        clients.push_back(std::move(lc));
    };
    for (int i = 0; i < 3; ++i)
        spawn();

    const runtime::Priority kClasses[] = {
        runtime::Priority::Interactive,
        runtime::Priority::Standard,
        runtime::Priority::Batch,
    };
    size_t crashes = 0, wedge_kills = 0, submits = 0;
    {
        util::FaultInjector injector(0xd06fa017ULL);
        injector.setProbability(util::FaultPoint::Hang, 0.03);
        injector.setProbability(util::FaultPoint::IpcSend, 0.03);
        injector.setProbability(util::FaultPoint::IpcRecv, 0.03);
        // Wedges by occurrence: three iterations that never return,
        // spread across the run.
        injector.armAt(util::FaultPoint::Wedge, 25);
        injector.armAt(util::FaultPoint::Wedge, 80);
        injector.armAt(util::FaultPoint::Wedge, 160);
        util::FaultScope scope(&injector);

        for (size_t round = 0; round < kRounds; ++round) {
            if (!clients.empty() && chaos.uniformInt(100) < 18) {
                LiveClient &lc = clients[static_cast<size_t>(
                    chaos.uniformInt(clients.size()))];
                TrackedRequest req;
                req.prompt = specinfer::testing::randomPrompt(
                    chaos, 2 + static_cast<size_t>(
                                   chaos.uniformInt(5)),
                    64);
                req.maxNewTokens =
                    4 + static_cast<size_t>(chaos.uniformInt(7));
                req.tag = lc.client->submit(
                    req.prompt, req.maxNewTokens,
                    kClasses[chaos.uniformInt(3)]);
                lc.requests.push_back(std::move(req));
                ++submits;
            }

            if (crashes < kMaxCrashes &&
                chaos.uniformInt(1000) < 4) {
                daemon.reset();
                daemon = std::make_unique<Daemon>(&f.engine, scfg,
                                                  dcfg);
                ASSERT_TRUE(daemon->start());
                ++crashes;
            }

            for (LiveClient &lc : clients) {
                const ClientStatus status = lc.client->poll();
                ASSERT_NE(status, ClientStatus::Corrupt)
                    << "round " << round;
                if (status == ClientStatus::LeaseRevoked)
                    ASSERT_EQ(lc.client->reconnect(),
                              ClientStatus::Pending);
            }
            daemon->tick();

            // Supervisor model: a wedged daemon stops heartbeating
            // and only an external kill recovers it. Journal
            // recovery then resumes the in-flight work.
            if (daemon->wedged()) {
                daemon.reset();
                daemon = std::make_unique<Daemon>(&f.engine, scfg,
                                                  dcfg);
                ASSERT_TRUE(daemon->start());
                ++wedge_kills;
            }
        }
    } // faults disarmed; the settle phase runs clean

    for (size_t r = 0; r < dcfg.leaseTicks + 8; ++r) {
        for (LiveClient &lc : clients)
            if (lc.client->poll() == ClientStatus::LeaseRevoked)
                ASSERT_EQ(lc.client->reconnect(),
                          ClientStatus::Pending);
        daemon->tick();
    }
    for (size_t r = 0; r < 8000; ++r) {
        size_t inflight = 0;
        for (LiveClient &lc : clients) {
            if (lc.client->poll() == ClientStatus::LeaseRevoked)
                ASSERT_EQ(lc.client->reconnect(),
                          ClientStatus::Pending);
            inflight += lc.client->inflightCount();
        }
        daemon->tick();
        if (inflight == 0 && !daemon->manager().busy())
            break;
    }

    SCOPED_TRACE("submits=" + std::to_string(submits) +
                 " crashes=" + std::to_string(crashes) +
                 " wedgeKills=" + std::to_string(wedge_kills));
    ASSERT_GT(submits, 50u) << "chaos schedule degenerated";
    EXPECT_EQ(wedge_kills, 3u) << "every armed wedge must fire";

    // Every injected stall was detected (the counters span daemon
    // incarnations — the ObsContext outlives them all).
    obs::MetricsSnapshot snap = obs_ctx.metrics().snapshot();
    const obs::SnapshotCounter *stalls =
        snap.findCounter("watchdog_stalls");
    const obs::SnapshotCounter *wedges =
        snap.findCounter("watchdog_wedges");
    ASSERT_NE(stalls, nullptr);
    ASSERT_NE(wedges, nullptr);
    EXPECT_GT(stalls->value, 0u) << "no hang ever stalled";
    EXPECT_EQ(wedges->value, 3u);

    // Streams that resolved match the engine oracle exactly (or a
    // prefix, for aborted stops) — hangs, wedges, and restarts never
    // corrupt tokens.
    for (LiveClient &lc : clients) {
        for (const TrackedRequest &tracked : lc.requests) {
            const ClientRequest *req =
                lc.client->request(tracked.tag);
            ASSERT_NE(req, nullptr);
            ASSERT_TRUE(req->finished ||
                        req->reject != WireReject::None)
                << "tag " << tracked.tag << " never resolved";
            if (!req->finished)
                continue;
            const std::vector<int> full = f.oracle(
                tracked.prompt, req->id, tracked.maxNewTokens);
            if (abortedStop(req->stopReason)) {
                ASSERT_LE(req->tokens.size(), full.size());
                EXPECT_TRUE(std::equal(req->tokens.begin(),
                                       req->tokens.end(),
                                       full.begin()))
                    << "tag " << tracked.tag;
            } else {
                EXPECT_EQ(req->tokens, full)
                    << "tag " << tracked.tag;
            }
        }
    }

    ASSERT_FALSE(daemon->manager().busy());
    ASSERT_NE(daemon->manager().kvPool(), nullptr);
    EXPECT_EQ(daemon->manager().kvPool()->usedBlocks(), 0u);

    daemon->drain();
    for (LiveClient &lc : clients)
        lc.client->disconnect();
    EXPECT_TRUE(listSegments(f.dir, "specinferd").empty())
        << "leaked shared-memory segments";

    std::ifstream rec(dcfg.recordPath, std::ios::binary);
    ASSERT_TRUE(rec.good());
    std::ostringstream log;
    ReplayResult res = replayRecording(rec, log);
    EXPECT_TRUE(res.ok) << log.str();
    EXPECT_EQ(res.mismatches, 0u) << log.str();
}

} // namespace
} // namespace ipc
} // namespace specinfer
