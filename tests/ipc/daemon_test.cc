/**
 * @file
 * In-process co-op tests for the specinferd serving plane: a Daemon
 * and N Clients over real shared-memory segments in a scratch
 * directory, driven tick-by-tick (client.poll() / daemon.tick())
 * so every schedule is deterministic and sanitizer-friendly.
 *
 * Covered: token streams matching the engine oracle, lease reaping
 * of an abandoned (kill -9'd) client without disturbing survivors,
 * typed admission rejections (invalid prompt, queue-full,
 * draining), daemon crash + restart with journaled recovery and
 * client-side resume, the injected `client-reap` fault survived by
 * reconnecting, recording replay, jittered preemption backoff
 * determinism, and the pinned ipc / daemon metrics catalog.
 */

#include "ipc/daemon.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <memory>
#include <sstream>
#include <tuple>

#include "../model/test_models.h"
#include "ipc/client.h"
#include "ipc/replay.h"
#include "obs/obs.h"
#include "util/fault.h"

#include "ipc_test_util.h"

namespace specinfer {
namespace ipc {
namespace {

using StopReason = core::SpecSession::StopReason;
using testutil::Fixture;
using testutil::pump;
using testutil::pumpUntilIdle;

TEST(DaemonTest, StreamsTokensMatchingEngineOracle)
{
    Fixture f;
    Daemon daemon(&f.engine, f.servingConfig(), f.daemonConfig());
    ASSERT_TRUE(daemon.start());

    Client client(f.clientConfig(1));
    ASSERT_EQ(client.connect(), ClientStatus::Pending);

    std::vector<uint64_t> tags;
    for (int i = 0; i < 3; ++i)
        tags.push_back(client.submit(f.prompt(i), 8));

    pumpUntilIdle(daemon, client, 600);
    ASSERT_EQ(client.inflightCount(), 0u);
    EXPECT_TRUE(client.connected());

    for (int i = 0; i < 3; ++i) {
        const ClientRequest *req = client.request(tags[i]);
        ASSERT_NE(req, nullptr);
        ASSERT_TRUE(req->finished) << "request " << i;
        EXPECT_EQ(req->reject, WireReject::None);
        EXPECT_EQ(req->tokens, f.oracle(f.prompt(i), req->id, 8))
            << "request " << i;
    }

    // Drain unlinks every segment including the board: the scratch
    // directory must hold no shared-memory leftovers.
    daemon.drain();
    EXPECT_TRUE(listSegments(f.dir, "specinferd").empty());
}

TEST(DaemonTest, ReapsAbandonedClientWithoutDisturbingSurvivor)
{
    Fixture f;
    DaemonConfig dcfg = f.daemonConfig();
    // Short lease so the reap lands while the victim's long request
    // is still mid-stream (speculative decoding commits several
    // tokens per tick, so a lazy lease would let it finish first).
    dcfg.leaseTicks = 6;
    Daemon daemon(&f.engine, f.servingConfig(), dcfg);
    ASSERT_TRUE(daemon.start());

    Client victim(f.clientConfig(1));
    Client survivor(f.clientConfig(2));
    ASSERT_EQ(victim.connect(), ClientStatus::Pending);
    ASSERT_EQ(survivor.connect(), ClientStatus::Pending);

    const uint64_t victim_tag = victim.submit(f.prompt(0), 64);
    const uint64_t surv_tag = survivor.submit(f.prompt(1), 10);

    // Let both get admitted and start streaming, then kill -9 the
    // victim: no goodbye, no unlink, just silence.
    pump(daemon, {&victim, &survivor}, 3);
    ASSERT_TRUE(victim.request(victim_tag)->acked);
    const uint64_t victim_id = victim.request(victim_tag)->id;
    victim.abandon();

    // The lease must expire and the reap must cancel the victim's
    // request while the survivor streams on untouched.
    for (size_t r = 0;
         r < dcfg.leaseTicks + 60 &&
         (survivor.inflightCount() > 0 || daemon.reapCount() == 0);
         ++r) {
        survivor.poll();
        daemon.tick();
    }
    EXPECT_EQ(daemon.reapCount(), 1u);
    EXPECT_EQ(daemon.clientCount(), 1u);
    // Only the survivor's segment (and the board) remain on disk.
    EXPECT_EQ(listSegments(f.dir, kClientPrefix).size(), 1u);

    const ClientRequest *surv = survivor.request(surv_tag);
    ASSERT_TRUE(surv->finished);
    EXPECT_EQ(surv->tokens, f.oracle(f.prompt(1), surv->id, 10));

    // The victim's request was cancelled with a prefix of its full
    // stream — never left dangling in the scheduler.
    using Phase = runtime::RequestManager::RequestPhase;
    ASSERT_EQ(daemon.manager().phase(victim_id), Phase::Finished);
    const std::vector<int> full =
        f.oracle(f.prompt(0), victim_id, 64);
    for (const runtime::RequestResult &res :
         daemon.manager().finished()) {
        if (res.id != victim_id)
            continue;
        EXPECT_EQ(res.stopReason, StopReason::Cancelled);
        ASSERT_LE(res.tokens.size(), full.size());
        EXPECT_TRUE(std::equal(res.tokens.begin(),
                               res.tokens.end(), full.begin()));
    }
    daemon.drain();
    EXPECT_TRUE(listSegments(f.dir, "specinferd").empty());
}

TEST(DaemonTest, TypedRejectionsReachTheClient)
{
    Fixture f;
    runtime::ServingConfig scfg = f.servingConfig();
    scfg.maxBatchSize = 1;
    scfg.maxPendingRequests = 1;
    Daemon daemon(&f.engine, scfg, f.daemonConfig());
    ASSERT_TRUE(daemon.start());

    Client client(f.clientConfig(1));
    ASSERT_EQ(client.connect(), ClientStatus::Pending);

    // An empty prompt can never be served.
    const uint64_t bad = client.submit({}, 4);
    // A burst over the bounded pending queue sheds the excess.
    std::vector<uint64_t> burst;
    for (int i = 0; i < 6; ++i)
        burst.push_back(client.submit(f.prompt(i), 6));

    pumpUntilIdle(daemon, client, 600);
    ASSERT_EQ(client.inflightCount(), 0u);

    EXPECT_EQ(client.request(bad)->reject,
              WireReject::InvalidPrompt);
    size_t queue_full = 0;
    for (uint64_t tag : burst) {
        const ClientRequest *req = client.request(tag);
        if (req->reject == WireReject::QueueFull) {
            ++queue_full;
            continue;
        }
        ASSERT_EQ(req->reject, WireReject::None);
        ASSERT_TRUE(req->finished);
        EXPECT_EQ(req->tokens.size(), 6u);
    }
    EXPECT_GE(queue_full, 1u);
    daemon.drain();
}

TEST(DaemonTest, DrainingRejectsLateSubmitsAndSaysGoodbye)
{
    Fixture f;
    Daemon daemon(&f.engine, f.servingConfig(), f.daemonConfig());
    ASSERT_TRUE(daemon.start());

    Client client(f.clientConfig(1));
    ASSERT_EQ(client.connect(), ClientStatus::Pending);
    const uint64_t early = client.submit(f.prompt(0), 24);
    pump(daemon, {&client}, 2); // admitted, still mid-stream
    ASSERT_TRUE(daemon.manager().busy());

    // This submit reaches the ring before drain() pumps it.
    const uint64_t late = client.submit(f.prompt(1), 24);
    client.poll();
    daemon.drain();
    EXPECT_FALSE(daemon.accepting());

    // The drained daemon has unlinked everything, but our mapping
    // stays valid: the final frames are all still readable.
    ClientStatus last = ClientStatus::Ok;
    for (int i = 0; i < 8 &&
                    last != ClientStatus::Disconnected; ++i)
        last = client.poll();
    EXPECT_EQ(last, ClientStatus::Disconnected);

    const ClientRequest *req_early = client.request(early);
    ASSERT_TRUE(req_early->finished);
    EXPECT_EQ(req_early->tokens,
              f.oracle(f.prompt(0), req_early->id, 24));
    EXPECT_EQ(client.request(late)->reject, WireReject::Draining);
    EXPECT_TRUE(listSegments(f.dir, "specinferd").empty());
}

TEST(DaemonTest, CrashRestartRecoversAndResumesStreams)
{
    Fixture f;
    DaemonConfig dcfg = f.daemonConfig();
    dcfg.journalPath = f.dir + "/serve.wal";
    dcfg.recordPath = f.dir + "/stream.rec";
    dcfg.snapshotEvery = 4;

    auto daemon = std::make_unique<Daemon>(
        &f.engine, f.servingConfig(), dcfg);
    ASSERT_TRUE(daemon->start());
    const uint64_t first_epoch = daemon->epoch();

    Client client(f.clientConfig(1));
    ASSERT_EQ(client.connect(), ClientStatus::Pending);
    std::vector<uint64_t> tags;
    for (int i = 0; i < 3; ++i)
        tags.push_back(client.submit(f.prompt(i), 10));

    // Run until every request is acked and tokens are mid-stream.
    for (int r = 0; r < 400; ++r) {
        client.poll();
        daemon->tick();
        size_t streamed = 0;
        bool all_acked = true;
        for (uint64_t tag : tags) {
            const ClientRequest *req = client.request(tag);
            streamed += req->tokens.size();
            all_acked = all_acked && req->acked;
        }
        if (all_acked && streamed >= 4)
            break;
    }
    ASSERT_GT(client.inflightCount(), 0u)
        << "crashed too late: everything already finished";

    // kill -9 the daemon: destructor without drain(). Segments,
    // journal, and recording survive on disk.
    daemon.reset();
    daemon = std::make_unique<Daemon>(&f.engine, f.servingConfig(),
                                      dcfg);
    ASSERT_TRUE(daemon->start());
    EXPECT_NE(daemon->epoch(), first_epoch);

    // The client notices the epoch bump, re-Hellos, resumes every
    // stream, and each request completes token-identically.
    bool saw_restart = false;
    for (int r = 0; r < 1200 && client.inflightCount() > 0; ++r) {
        if (client.poll() == ClientStatus::DaemonRestarted)
            saw_restart = true;
        daemon->tick();
    }
    EXPECT_TRUE(saw_restart);
    ASSERT_EQ(client.inflightCount(), 0u);
    for (int i = 0; i < 3; ++i) {
        const ClientRequest *req = client.request(tags[i]);
        ASSERT_TRUE(req->finished) << "request " << i;
        EXPECT_NE(static_cast<StopReason>(req->stopReason),
                  StopReason::Cancelled);
        EXPECT_EQ(req->tokens, f.oracle(f.prompt(i), req->id, 10))
            << "request " << i;
    }
    daemon->drain();
    EXPECT_TRUE(listSegments(f.dir, "specinferd").empty());

    // The recording spans both daemon generations and replays
    // token-identically offline.
    std::ifstream rec(dcfg.recordPath, std::ios::binary);
    ASSERT_TRUE(rec.good());
    std::ostringstream log;
    ReplayResult res = replayRecording(rec, log);
    EXPECT_TRUE(res.ok) << log.str();
    EXPECT_EQ(res.mismatches, 0u);
    EXPECT_GE(res.finishesChecked, 3u);
}

TEST(DaemonTest, ShardedDaemonMatchesUnshardedOracleAndReplays)
{
    // A daemon serving at --tp 2 must stream tokens identical to
    // the tp=1 engine oracle (§5j bit-identity at the serving
    // boundary), and its recording — which persists the degree in
    // the header — must replay token-identically offline with the
    // engine rebuilt at that same degree.
    Fixture f;
    model::ModelConfig sharded_cfg = model::llmPreset("tiny");
    sharded_cfg.tensorParallel = 2;
    model::Transformer llm = model::makeLlm(sharded_cfg);
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);
    core::SpecEngine engine(&llm, {&ssm}, Fixture::engineConfig());

    runtime::ServingConfig scfg = f.servingConfig();
    scfg.tpDegree = 2;
    DaemonConfig dcfg = f.daemonConfig();
    dcfg.recordPath = f.dir + "/sharded.rec";
    dcfg.recordHeader.tpDegree = 2;
    Daemon daemon(&engine, scfg, dcfg);
    ASSERT_TRUE(daemon.start());

    Client client(f.clientConfig(1));
    ASSERT_EQ(client.connect(), ClientStatus::Pending);
    std::vector<uint64_t> tags;
    for (int i = 0; i < 3; ++i)
        tags.push_back(client.submit(f.prompt(i), 8));
    pumpUntilIdle(daemon, client, 600);
    ASSERT_EQ(client.inflightCount(), 0u);
    for (int i = 0; i < 3; ++i) {
        const ClientRequest *req = client.request(tags[i]);
        ASSERT_TRUE(req->finished) << "request " << i;
        // The oracle engine is the fixture's UNSHARDED tp=1 engine.
        EXPECT_EQ(req->tokens, f.oracle(f.prompt(i), req->id, 8))
            << "sharded daemon diverged from tp=1 oracle, request "
            << i;
    }
    daemon.drain();

    std::ifstream rec(dcfg.recordPath, std::ios::binary);
    ASSERT_TRUE(rec.good());
    std::ostringstream log;
    ReplayResult res = replayRecording(rec, log);
    EXPECT_TRUE(res.ok) << log.str();
    EXPECT_EQ(res.mismatches, 0u);
    EXPECT_GE(res.finishesChecked, 3u);
}

TEST(DaemonTest, InjectedClientReapIsSurvivedByReconnecting)
{
    Fixture f;
    Daemon daemon(&f.engine, f.servingConfig(), f.daemonConfig());
    ASSERT_TRUE(daemon.start());

    Client client(f.clientConfig(1));
    ASSERT_EQ(client.connect(), ClientStatus::Pending);
    std::vector<uint64_t> tags;
    for (int i = 0; i < 2; ++i)
        tags.push_back(client.submit(f.prompt(i), 40));

    // Spurious reap of a live, heartbeating client on the daemon's
    // 5th lease sweep of it — long streams keep both requests
    // mid-flight at that point.
    util::FaultInjector injector(0xc11e47ULL);
    injector.armAt(util::FaultPoint::ClientReap, 5);
    util::FaultScope scope(&injector);

    bool revoked = false;
    for (int r = 0; r < 1200; ++r) {
        const ClientStatus status = client.poll();
        if (status == ClientStatus::LeaseRevoked) {
            revoked = true;
            ASSERT_EQ(client.reconnect(), ClientStatus::Pending);
        }
        daemon.tick();
        bool all_done = true;
        for (uint64_t tag : tags)
            all_done = all_done && client.done(tag);
        if (all_done && client.connected())
            break;
    }
    EXPECT_TRUE(revoked);
    EXPECT_EQ(daemon.reapCount(), 1u);
    EXPECT_TRUE(client.connected());

    // Every request resolved: completed exactly, or cancelled by
    // the reap with a prefix of its full stream (greedy decoding is
    // id-independent, so re-submitted requests match too).
    for (int i = 0; i < 2; ++i) {
        const ClientRequest *req = client.request(tags[i]);
        ASSERT_TRUE(req->finished) << "request " << i;
        const std::vector<int> full =
            f.oracle(f.prompt(i), req->id, 40);
        if (static_cast<StopReason>(req->stopReason) ==
            StopReason::Cancelled) {
            ASSERT_LE(req->tokens.size(), full.size());
            EXPECT_TRUE(std::equal(req->tokens.begin(),
                                   req->tokens.end(),
                                   full.begin()));
        } else {
            EXPECT_EQ(req->tokens, full) << "request " << i;
        }
    }
    daemon.drain();
    EXPECT_TRUE(listSegments(f.dir, "specinferd").empty());
}

TEST(DaemonTest, MetricsCatalogIsPinnedAndCounts)
{
    Fixture f;
    obs::ObsContext obs_ctx;
    DaemonConfig dcfg = f.daemonConfig();
    dcfg.obs = &obs_ctx;
    Daemon daemon(&f.engine, f.servingConfig(), dcfg);
    ASSERT_TRUE(daemon.start());

    // The full catalog exists before any event fires (obs_check
    // pins these names in CI).
    const size_t preregistered =
        obs_ctx.metrics().instrumentCount();
    EXPECT_GE(preregistered, 15u);

    Client client(f.clientConfig(1));
    ASSERT_EQ(client.connect(), ClientStatus::Pending);
    const uint64_t tag = client.submit(f.prompt(0), 6);
    pumpUntilIdle(daemon, client, 400);
    ASSERT_TRUE(client.done(tag));

    obs::MetricsRegistry &m = obs_ctx.metrics();
    EXPECT_GT(m.counter("ipc_frames_sent")->value(), 0u);
    EXPECT_GT(m.counter("ipc_frames_received")->value(), 0u);
    EXPECT_GT(m.counter("ipc_bytes_sent")->value(), 0u);
    EXPECT_GT(m.counter("daemon_requests_admitted")->value(), 0u);
    EXPECT_GT(m.counter("daemon_tokens_streamed")->value(), 0u);
    EXPECT_EQ(m.counter("ipc_crc_rejects")->value(), 0u);
    EXPECT_EQ(m.gauge("daemon_epoch")->value(),
              static_cast<int64_t>(daemon.epoch()));
    // Serving lazily registers its own serving_*/pool_* instruments
    // on top — the daemon catalog itself never shrinks.
    EXPECT_GE(m.instrumentCount(), preregistered);
    daemon.drain();
}

TEST(DaemonTest, PreemptionBackoffJitterIsSeededAndHarmless)
{
    // Satellite check on ServingConfig::backoffJitterSeed: the same
    // seed reproduces the identical preemption schedule; a
    // different seed changes scheduling only — outputs stay exactly
    // the standalone-engine streams. Needs a memory-starved setup
    // like preemption_fcfs_test: stopAtEos off so requests actually
    // run to their token budget and keep the pool under pressure.
    model::Transformer llm = specinfer::testing::tinyLlm();
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);
    core::EngineConfig ecfg = core::EngineConfig::greedyDefault();
    ecfg.spec.expansion = core::ExpansionConfig::uniform(2, 4);
    ecfg.maxNewTokens = 24;
    ecfg.stopAtEos = false;
    core::SpecEngine engine(&llm, {&ssm}, ecfg);

    std::vector<int> p1 = {5, 9, 2, 11};
    std::vector<int> p2 = {6, 3, 8, 1};

    const size_t per_request = p1.size() + ecfg.maxNewTokens +
                               engine.treeBudget() + 2;
    runtime::ServingConfig base;
    base.maxBatchSize = 2;
    base.kvBlockTokens = 8;
    runtime::KvBlockAllocator probe(1000, 8);
    base.kvPoolBlocks = probe.blocksFor(per_request) * 3 / 2;
    base.kvPolicy = runtime::KvReservationPolicy::OnDemand;

    struct Run
    {
        std::vector<int> tokens1, tokens2;
        size_t iterations = 0, preemptions = 0;
        bool operator==(const Run &o) const
        {
            return tokens1 == o.tokens1 && tokens2 == o.tokens2 &&
                   iterations == o.iterations &&
                   preemptions == o.preemptions;
        }
    };
    uint64_t id1 = 0, id2 = 0;
    auto run = [&](uint64_t jitter_seed) {
        runtime::ServingConfig scfg = base;
        scfg.backoffJitterSeed = jitter_seed;
        runtime::RequestManager manager(&engine, scfg);
        id1 = manager.submit(p1).id;
        id2 = manager.submit(p2).id;
        size_t guard = 0;
        while (manager.busy()) {
            manager.runIteration();
            EXPECT_LT(++guard, 800u);
        }
        Run out;
        out.iterations = manager.stats().iterations;
        out.preemptions = manager.stats().preemptions;
        for (const runtime::RequestResult &res :
             manager.finished()) {
            if (res.id == id1)
                out.tokens1 = res.tokens;
            else if (res.id == id2)
                out.tokens2 = res.tokens;
        }
        return out;
    };

    const Run a = run(0x6a177e5ULL);
    const Run b = run(0x6a177e5ULL);
    const Run c = run(0xd1ffe12e47ULL);

    EXPECT_GT(a.preemptions, 0u) << "pool never under pressure";
    EXPECT_TRUE(a == b) << "same jitter seed must replay exactly";

    // Any seed leaves the outputs bit-identical to the standalone
    // engine (scheduling jitter is invisible in the tokens).
    EXPECT_EQ(a.tokens1, engine.generate(p1, id1).tokens);
    EXPECT_EQ(a.tokens2, engine.generate(p2, id2).tokens);
    EXPECT_EQ(c.tokens1, engine.generate(p1, id1).tokens);
    EXPECT_EQ(c.tokens2, engine.generate(p2, id2).tokens);
}

} // namespace
} // namespace ipc
} // namespace specinfer
