/**
 * @file
 * Edge-case tests for the SPSC shared-memory ring: wrap-around at
 * capacity, producer backpressure, torn/corrupt frame handling
 * (sticky poisoning), dual-view attachment, and a two-thread
 * producer/consumer hammer for the sanitizer sweeps.
 */

#include "ipc/ring.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "util/rng.h"

namespace specinfer {
namespace ipc {
namespace {

/** 64-byte-aligned backing region for a ring (mmap stand-in). */
struct RingMemory
{
    explicit RingMemory(size_t capacity)
    {
        size_t bytes = ShmRing::footprint(capacity);
        bytes = (bytes + 63) & ~size_t{63};
        mem = std::aligned_alloc(64, bytes);
        std::memset(mem, 0, bytes);
    }
    ~RingMemory() { std::free(mem); }

    RingMemory(const RingMemory &) = delete;
    RingMemory &operator=(const RingMemory &) = delete;

    RingShared *shared() { return static_cast<RingShared *>(mem); }

    void *mem = nullptr;
};

std::vector<uint8_t>
payloadFor(uint64_t i, size_t len)
{
    std::vector<uint8_t> bytes(len);
    for (size_t k = 0; k < len; ++k)
        bytes[k] = static_cast<uint8_t>((i * 131 + k * 7) & 0xff);
    return bytes;
}

TEST(ShmRingTest, RoundTripPreservesFrames)
{
    RingMemory mem(256);
    ShmRing ring;
    ASSERT_TRUE(ring.attach(mem.mem, 256, /*init=*/true));

    for (uint64_t i = 0; i < 8; ++i) {
        const std::vector<uint8_t> payload = payloadFor(i, 5 + i);
        ASSERT_TRUE(ring.push(payload.data(), payload.size()));
    }
    std::vector<uint8_t> out;
    for (uint64_t i = 0; i < 8; ++i) {
        ASSERT_EQ(ring.pop(out), PopStatus::Ok);
        EXPECT_EQ(out, payloadFor(i, 5 + i));
    }
    EXPECT_EQ(ring.pop(out), PopStatus::Empty);
}

TEST(ShmRingTest, ZeroLengthFrameIsLegal)
{
    RingMemory mem(64);
    ShmRing ring;
    ASSERT_TRUE(ring.attach(mem.mem, 64, true));
    ASSERT_TRUE(ring.push(nullptr, 0));
    std::vector<uint8_t> out{1, 2, 3};
    ASSERT_EQ(ring.pop(out), PopStatus::Ok);
    EXPECT_TRUE(out.empty());
}

TEST(ShmRingTest, WrapAroundManyFramesOnTinyRing)
{
    // A 128-byte ring forced through thousands of wrap-arounds with
    // varying frame lengths: every frame must come back intact no
    // matter where it straddles the physical boundary.
    RingMemory mem(128);
    ShmRing ring;
    ASSERT_TRUE(ring.attach(mem.mem, 128, true));

    std::vector<uint8_t> out;
    for (uint64_t i = 0; i < 5000; ++i) {
        const size_t len = 1 + static_cast<size_t>(i % 61);
        const std::vector<uint8_t> payload = payloadFor(i, len);
        ASSERT_TRUE(ring.push(payload.data(), payload.size()))
            << "push " << i;
        ASSERT_EQ(ring.pop(out), PopStatus::Ok) << "pop " << i;
        ASSERT_EQ(out, payload) << "frame " << i;
    }
    EXPECT_FALSE(ring.poisoned());
}

TEST(ShmRingTest, BackpressureRefusesThenRecovers)
{
    RingMemory mem(128);
    ShmRing ring;
    ASSERT_TRUE(ring.attach(mem.mem, 128, true));

    // Fill to the brim (16-byte frames: 8 header + 8 payload).
    const std::vector<uint8_t> payload = payloadFor(7, 8);
    size_t pushed = 0;
    while (ring.push(payload.data(), payload.size()))
        ++pushed;
    EXPECT_EQ(pushed, 8u);
    EXPECT_EQ(ring.freeBytes(), 0u);

    // Full ring: push refuses without writing anything...
    EXPECT_FALSE(ring.push(payload.data(), payload.size()));
    EXPECT_FALSE(ring.poisoned());

    // ...and one drained frame is exactly one frame of headroom.
    std::vector<uint8_t> out;
    ASSERT_EQ(ring.pop(out), PopStatus::Ok);
    EXPECT_TRUE(ring.push(payload.data(), payload.size()));
    EXPECT_FALSE(ring.push(payload.data(), payload.size()));

    for (size_t i = 0; i < pushed; ++i)
        ASSERT_EQ(ring.pop(out), PopStatus::Ok);
    EXPECT_EQ(ring.pop(out), PopStatus::Empty);
}

TEST(ShmRingTest, OversizedPayloadNeverFits)
{
    RingMemory mem(64);
    ShmRing ring;
    ASSERT_TRUE(ring.attach(mem.mem, 64, true));
    std::vector<uint8_t> huge(64, 0xab); // 64 + 8 header > capacity
    EXPECT_FALSE(ring.push(huge.data(), huge.size()));
    // The refusal is stateless: small frames still flow.
    EXPECT_TRUE(ring.push(huge.data(), 8));
}

TEST(ShmRingTest, CorruptPayloadPoisonsStickily)
{
    RingMemory mem(256);
    ShmRing ring;
    ASSERT_TRUE(ring.attach(mem.mem, 256, true));

    const std::vector<uint8_t> payload = payloadFor(3, 16);
    ASSERT_TRUE(ring.push(payload.data(), payload.size()));
    ASSERT_TRUE(ring.push(payload.data(), payload.size()));

    // A compromised producer flips one published payload byte; the
    // frame starts at offset 0, payload after the 8-byte header.
    mem.shared()->data[8] ^= 0x01;

    std::vector<uint8_t> out;
    EXPECT_EQ(ring.pop(out), PopStatus::Corrupt);
    EXPECT_TRUE(ring.poisoned());

    // Fail-stop: the poison is sticky in both directions, even for
    // the second (undamaged) frame.
    EXPECT_EQ(ring.pop(out), PopStatus::Corrupt);
    EXPECT_FALSE(ring.push(payload.data(), payload.size()));
}

TEST(ShmRingTest, TornFrameIsInvisibleUntilPublished)
{
    RingMemory mem(128);
    ShmRing ring;
    ASSERT_TRUE(ring.attach(mem.mem, 128, true));

    // A producer that died mid-frame wrote bytes but never advanced
    // head: the consumer must see an empty ring, not garbage.
    std::memset(mem.shared()->data, 0xee, 24);
    std::vector<uint8_t> out;
    EXPECT_EQ(ring.pop(out), PopStatus::Empty);
    EXPECT_FALSE(ring.poisoned());
}

TEST(ShmRingTest, PublishedGarbageLengthIsCorrupt)
{
    RingMemory mem(128);
    ShmRing ring;
    ASSERT_TRUE(ring.attach(mem.mem, 128, true));

    // A buggy producer publishes head over an impossible frame
    // length; the consumer must fail-stop instead of reading past
    // the published extent.
    uint32_t bogus_len = 0xffffffffu;
    std::memcpy(mem.shared()->data, &bogus_len, sizeof(bogus_len));
    mem.shared()->head.store(16, std::memory_order_release);

    std::vector<uint8_t> out;
    EXPECT_EQ(ring.pop(out), PopStatus::Corrupt);
    EXPECT_TRUE(ring.poisoned());
}

TEST(ShmRingTest, SecondViewAttachesAndConsumes)
{
    // Producer and consumer sides hold independent views over the
    // same region, the cross-process topology in miniature.
    RingMemory mem(256);
    ShmRing producer;
    ASSERT_TRUE(producer.attach(mem.mem, 256, /*init=*/true));
    ShmRing consumer;
    ASSERT_TRUE(consumer.attach(mem.mem, 256, /*init=*/false));

    const std::vector<uint8_t> payload = payloadFor(9, 12);
    ASSERT_TRUE(producer.push(payload.data(), payload.size()));
    std::vector<uint8_t> out;
    ASSERT_EQ(consumer.pop(out), PopStatus::Ok);
    EXPECT_EQ(out, payload);

    // Cursors are shared: the producer's view sees the drain.
    EXPECT_EQ(producer.usedBytes(), 0u);
}

TEST(ShmRingTest, AttachRejectsUnformattedMemory)
{
    RingMemory mem(256);
    ShmRing ring;
    EXPECT_FALSE(ring.attach(mem.mem, 256, /*init=*/false));
    EXPECT_FALSE(ring.attach(nullptr, 256, true));
    EXPECT_FALSE(ring.attach(mem.mem, 100, true)); // not a power of 2
}

TEST(ShmRingTest, TwoThreadHammer)
{
    // SPSC hammer under the sanitizers: one producer thread, one
    // consumer thread, a deliberately tiny ring so both sides spin
    // on full/empty constantly. Any missing barrier shows up as a
    // TSan race or a payload mismatch.
    constexpr uint64_t kFrames = 20000;
    RingMemory mem(512);
    ShmRing producer;
    ASSERT_TRUE(producer.attach(mem.mem, 512, true));
    ShmRing consumer;
    ASSERT_TRUE(consumer.attach(mem.mem, 512, false));

    std::thread feeder([&producer]() {
        for (uint64_t i = 0; i < kFrames; ++i) {
            const size_t len = 1 + static_cast<size_t>(i % 97);
            const std::vector<uint8_t> payload = payloadFor(i, len);
            while (!producer.push(payload.data(), payload.size()))
                std::this_thread::yield();
        }
    });

    std::vector<uint8_t> out;
    for (uint64_t i = 0; i < kFrames; ++i) {
        PopStatus status;
        while ((status = consumer.pop(out)) == PopStatus::Empty)
            std::this_thread::yield();
        ASSERT_EQ(status, PopStatus::Ok) << "frame " << i;
        const size_t len = 1 + static_cast<size_t>(i % 97);
        ASSERT_EQ(out, payloadFor(i, len)) << "frame " << i;
    }
    feeder.join();
    EXPECT_EQ(consumer.pop(out), PopStatus::Empty);
    EXPECT_FALSE(consumer.poisoned());
}

} // namespace
} // namespace ipc
} // namespace specinfer
