#include <gtest/gtest.h>

#include "simulator/system_model.h"

namespace specinfer {
namespace simulator {
namespace {

GpuPerfModel
testbed()
{
    return GpuPerfModel(ClusterSpec::paperTestbed(1));
}

TEST(EnergyTest, WeightReadsDominateAtBatchOne)
{
    // Paper §2: HBM access costs orders of magnitude more than
    // arithmetic, so one incremental decoding step's energy is
    // essentially one pass over the weights.
    GpuPerfModel perf = testbed();
    LlmSpec llm = LlmSpec::preset("llama-7b");
    IterationWorkload work;
    work.requests = 1;
    work.tokensPerRequest = 1.0;
    work.contextLen = 128.0;
    double joules = perf.iterationEnergy(llm, {1, 1}, work);
    double weight_only = llm.paramBytes() * 60.0 * 1e-12;
    EXPECT_GT(joules, weight_only);
    EXPECT_LT(joules, weight_only * 1.3);
}

TEST(EnergyTest, TreeVerificationAmortizesWeightEnergy)
{
    // Verifying a 21-token tree reads the weights once but emits
    // ~3 tokens, so per-token energy drops by nearly that factor.
    SystemModel sim{testbed()};
    ServingScenario scenario;
    scenario.llm = LlmSpec::preset("llama-7b");
    scenario.ssm = LlmSpec::preset("llama-68m");
    scenario.plan = {1, 1};
    scenario.batchSize = 1;
    scenario.contextLen = 128.0;

    double incr = sim.energyPerToken(
        scenario, SpeculationProfile::incremental());

    ServingScenario spec = scenario;
    spec.speculative = true;
    SpeculationProfile profile;
    profile.avgLlmTokensPerIter = 21.0;
    profile.avgVerifiedPerIter = 3.0;
    profile.ssmChunkSizes = {3, 1, 1, 3, 3, 3, 3, 3, 3};
    double tree = sim.energyPerToken(spec, profile);

    EXPECT_LT(tree, incr);
    EXPECT_GT(incr / tree, 2.0);
    EXPECT_LT(incr / tree, 3.0);
}

TEST(EnergyTest, OffloadingChargesHostTransfers)
{
    GpuPerfModel perf = testbed();
    LlmSpec llm = LlmSpec::preset("opt-13b");
    IterationWorkload work;
    work.requests = 1;
    work.tokensPerRequest = 1.0;
    double in_mem = perf.iterationEnergy(llm, {1, 1}, work);
    double off = perf.iterationEnergy(llm, {1, 1}, work,
                                      Placement::Offloaded);
    EXPECT_GT(off, in_mem);
    // The delta is exactly the param bytes over the link.
    EXPECT_NEAR(off - in_mem,
                llm.paramBytes() * 250.0 * 1e-12, 1e-6);
}

TEST(EnergyTest, TensorParallelismAddsLinkEnergy)
{
    GpuPerfModel perf = testbed();
    LlmSpec llm = LlmSpec::preset("opt-30b");
    IterationWorkload work;
    work.requests = 4;
    work.tokensPerRequest = 8.0;
    double tp1 = perf.iterationEnergy(llm, {1, 1}, work);
    double tp4 = perf.iterationEnergy(llm, {4, 1}, work);
    EXPECT_GT(tp4, tp1);
}

TEST(EnergyTest, EnergyScalesWithBatchAmortization)
{
    // At larger batch the fixed weight-read energy is shared, so
    // per-token energy falls for incremental decoding.
    SystemModel sim{testbed()};
    ServingScenario bs1;
    bs1.llm = LlmSpec::preset("llama-7b");
    bs1.plan = {1, 1};
    bs1.batchSize = 1;
    ServingScenario bs16 = bs1;
    bs16.batchSize = 16;
    SpeculationProfile incr = SpeculationProfile::incremental();
    EXPECT_GT(sim.energyPerToken(bs1, incr),
              sim.energyPerToken(bs16, incr));
}

} // namespace
} // namespace simulator
} // namespace specinfer
