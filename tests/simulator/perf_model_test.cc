#include "simulator/perf_model.h"

#include <gtest/gtest.h>

namespace specinfer {
namespace simulator {
namespace {

GpuPerfModel
testbed(size_t nodes = 1)
{
    return GpuPerfModel(ClusterSpec::paperTestbed(nodes));
}

IterationWorkload
work(size_t requests, double tokens, double ctx = 128.0)
{
    IterationWorkload w;
    w.requests = requests;
    w.tokensPerRequest = tokens;
    w.contextLen = ctx;
    return w;
}

TEST(PerfModelTest, BandwidthBoundAtBatchOne)
{
    // One token of LLaMA-7B on an A10 is weight-bandwidth bound:
    // time ~= paramBytes / effective bandwidth (plus overheads).
    GpuPerfModel perf = testbed();
    LlmSpec llm = LlmSpec::preset("llama-7b");
    double t = perf.iterationTime(llm, {1, 1}, work(1, 1.0));
    double weight_floor = llm.paramBytes() / (600e9 * 0.8);
    EXPECT_GT(t, weight_floor);
    EXPECT_LT(t, weight_floor * 1.5);
}

TEST(PerfModelTest, SmallTreeNearlyFree)
{
    // The paper's core effect: verifying a 21-token tree costs
    // almost the same as decoding one token at batch size 1.
    GpuPerfModel perf = testbed();
    LlmSpec llm = LlmSpec::preset("llama-7b");
    double one = perf.iterationTime(llm, {1, 1}, work(1, 1.0));
    double tree = perf.iterationTime(llm, {1, 1}, work(1, 21.0));
    EXPECT_LT(tree / one, 1.25);
}

TEST(PerfModelTest, ComputeBoundAtLargeBatch)
{
    // At hundreds of tokens the GEMMs dominate and time scales
    // with token count.
    GpuPerfModel perf = testbed();
    LlmSpec llm = LlmSpec::preset("llama-7b");
    double a = perf.iterationTime(llm, {1, 1}, work(16, 21.0));
    double b = perf.iterationTime(llm, {1, 1}, work(32, 21.0));
    EXPECT_GT(b / a, 1.5);
}

TEST(PerfModelTest, MonotoneInModelSize)
{
    GpuPerfModel perf = testbed();
    double small = perf.iterationTime(LlmSpec::preset("llama-7b"),
                                      {1, 1}, work(1, 1.0));
    double big = perf.iterationTime(LlmSpec::preset("opt-13b"),
                                    {1, 1}, work(1, 1.0));
    EXPECT_GT(big, small);
}

TEST(PerfModelTest, MonotoneInTokensAndContext)
{
    GpuPerfModel perf = testbed();
    LlmSpec llm = LlmSpec::preset("opt-13b");
    EXPECT_LE(perf.iterationTime(llm, {1, 1}, work(1, 1.0)),
              perf.iterationTime(llm, {1, 1}, work(1, 8.0)));
    EXPECT_LE(perf.iterationTime(llm, {1, 1}, work(1, 4.0, 64.0)),
              perf.iterationTime(llm, {1, 1}, work(1, 4.0, 2048.0)));
}

TEST(PerfModelTest, TensorParallelismHelpsBigModels)
{
    GpuPerfModel perf = testbed();
    LlmSpec llm = LlmSpec::preset("opt-30b");
    double tp1 = perf.iterationTime(llm, {1, 1}, work(1, 1.0));
    double tp4 = perf.iterationTime(llm, {4, 1}, work(1, 1.0));
    EXPECT_LT(tp4, tp1);
    // But adds all-reduce cost, so the scaling is sub-linear.
    EXPECT_GT(tp4, tp1 / 4.0);
}

TEST(PerfModelTest, PipelineAddsInterNodeCost)
{
    // Pipeline parallelism exists to fit the model (LLaMA-65B does
    // not fit on one 4-GPU node), not to cut single-batch latency:
    // stages run sequentially for one batch and pay an activation
    // hand-off, so pp=2 is slightly *slower* than a hypothetical
    // single-node placement.
    GpuPerfModel perf = testbed(2);
    LlmSpec llm = LlmSpec::preset("llama-65b");
    EXPECT_FALSE(perf.fitsInMemory(llm, {4, 1}));
    double pp1 = perf.iterationTime(llm, {4, 1}, work(1, 1.0));
    double pp2 = perf.iterationTime(llm, {4, 2}, work(1, 1.0));
    EXPECT_GT(pp2, pp1);
    EXPECT_LT(pp2, pp1 * 1.1);
}

TEST(PerfModelTest, OffloadDominatedByHostTransfer)
{
    GpuPerfModel perf = testbed();
    LlmSpec llm = LlmSpec::preset("opt-13b");
    double off = perf.iterationTime(llm, {1, 1}, work(1, 1.0),
                                    Placement::Offloaded);
    double stream_floor = llm.paramBytes() / (20.0 * 1e9);
    EXPECT_GE(off, stream_floor);
    double in_mem = perf.iterationTime(llm, {1, 1}, work(1, 1.0));
    EXPECT_GT(off, 10.0 * in_mem);
}

TEST(PerfModelTest, MemoryFitMatchesPaperSetups)
{
    GpuPerfModel perf = testbed(2);
    EXPECT_TRUE(perf.fitsInMemory(LlmSpec::preset("llama-7b"),
                                  {1, 1}));
    EXPECT_FALSE(perf.fitsInMemory(LlmSpec::preset("opt-30b"),
                                   {1, 1}));
    EXPECT_TRUE(perf.fitsInMemory(LlmSpec::preset("opt-30b"),
                                  {4, 1}));
    EXPECT_FALSE(perf.fitsInMemory(LlmSpec::preset("llama-65b"),
                                   {4, 1}));
    EXPECT_TRUE(perf.fitsInMemory(LlmSpec::preset("llama-65b"),
                                  {4, 2}));
}

TEST(PerfModelTest, LlmSpecDerivedQuantities)
{
    LlmSpec llm = LlmSpec::preset("opt-13b");
    EXPECT_DOUBLE_EQ(llm.paramBytes(), 13.0e9 * 2.0);
    EXPECT_DOUBLE_EQ(llm.kvBytesPerToken(),
                     2.0 * 40.0 * 5120.0 * 2.0);
}

TEST(PerfModelDeathTest, RejectsBadPlans)
{
    GpuPerfModel perf = testbed();
    LlmSpec llm = LlmSpec::preset("llama-7b");
    EXPECT_DEATH(
        perf.iterationTime(llm, {8, 1}, work(1, 1.0)),
        "cross nodes");
    EXPECT_DEATH(
        perf.iterationTime(llm, {4, 2}, work(1, 1.0)),
        "more GPUs");
}

TEST(PerfModelDeathTest, RejectsUnknownPreset)
{
    EXPECT_EXIT(LlmSpec::preset("gpt-5"),
                ::testing::ExitedWithCode(1), "unknown");
}

} // namespace
} // namespace simulator
} // namespace specinfer
