#include "simulator/system_model.h"

#include <gtest/gtest.h>

namespace specinfer {
namespace simulator {
namespace {

SystemModel
makeModel()
{
    return SystemModel(GpuPerfModel(ClusterSpec::paperTestbed(1)));
}

ServingScenario
baseScenario()
{
    ServingScenario s;
    s.llm = LlmSpec::preset("llama-7b");
    s.ssm = LlmSpec::preset("llama-68m");
    s.plan = {1, 1};
    s.batchSize = 1;
    s.contextLen = 128.0;
    return s;
}

SpeculationProfile
treeProfile()
{
    SpeculationProfile p;
    p.avgLlmTokensPerIter = 21.0;
    p.avgVerifiedPerIter = 3.0;
    p.ssmChunkSizes = {3.0, 1.0, 1.0, 3.0, 3.0, 3.0, 3.0, 3.0, 3.0};
    return p;
}

TEST(SystemModelTest, PerTokenIsIterationOverVerified)
{
    SystemModel sim = makeModel();
    ServingScenario scenario = baseScenario();
    scenario.speculative = true;
    SpeculationProfile profile = treeProfile();
    EXPECT_DOUBLE_EQ(
        sim.perTokenLatency(scenario, profile),
        sim.iterationLatency(scenario, profile) / 3.0);
}

TEST(SystemModelTest, SpeculationBeatsIncrementalAtBatchOne)
{
    SystemModel sim = makeModel();
    ServingScenario incr = baseScenario();
    ServingScenario spec = baseScenario();
    spec.speculative = true;
    double a = sim.perTokenLatency(
        incr, SpeculationProfile::incremental());
    double b = sim.perTokenLatency(spec, treeProfile());
    EXPECT_LT(b, a);
    EXPECT_GT(a / b, 1.5);
    EXPECT_LT(a / b, 3.0);
}

TEST(SystemModelTest, AdvantageShrinksWithBatchSize)
{
    SystemModel sim = makeModel();
    double prev_speedup = 1e9;
    for (size_t bs : {1, 4, 16}) {
        ServingScenario incr = baseScenario();
        incr.batchSize = bs;
        ServingScenario spec = incr;
        spec.speculative = true;
        double speedup =
            sim.perTokenLatency(incr,
                                SpeculationProfile::incremental()) /
            sim.perTokenLatency(spec, treeProfile());
        EXPECT_LT(speedup, prev_speedup);
        prev_speedup = speedup;
    }
}

TEST(SystemModelTest, SsmLevelsAddCost)
{
    SystemModel sim = makeModel();
    ServingScenario scenario = baseScenario();
    scenario.speculative = true;
    SpeculationProfile shallow = treeProfile();
    shallow.ssmChunkSizes = {1.0};
    SpeculationProfile deep = treeProfile();
    EXPECT_LT(sim.iterationLatency(scenario, shallow),
              sim.iterationLatency(scenario, deep));
}

TEST(SystemModelTest, SystemEfficiencyScalesLatency)
{
    SystemModel sim = makeModel();
    ServingScenario fast = baseScenario();
    fast.systemEfficiency = 2.0;
    ServingScenario slow = baseScenario();
    slow.systemEfficiency = 1.0;
    SpeculationProfile incr = SpeculationProfile::incremental();
    EXPECT_NEAR(sim.perTokenLatency(fast, incr) * 2.0,
                sim.perTokenLatency(slow, incr), 1e-12);
}

TEST(SystemModelTest, OffloadSpeedupTracksVerifiedTokens)
{
    // In the transfer-dominated offload regime the speedup over
    // incremental is essentially the verified-tokens-per-step.
    SystemModel sim = makeModel();
    ServingScenario flexgen = baseScenario();
    flexgen.llm = LlmSpec::preset("opt-13b");
    flexgen.placement = Placement::Offloaded;
    ServingScenario spec = flexgen;
    spec.speculative = true;
    SpeculationProfile profile = treeProfile();
    double speedup =
        sim.perTokenLatency(flexgen,
                            SpeculationProfile::incremental()) /
        sim.perTokenLatency(spec, profile);
    EXPECT_NEAR(speedup, profile.avgVerifiedPerIter, 0.35);
}

TEST(SystemModelTest, NamedSystemCatalogues)
{
    auto dist = distributedSystems();
    ASSERT_EQ(dist.size(), 6u);
    size_t speculative = 0, tree = 0;
    for (const NamedSystem &s : dist) {
        speculative += s.speculative;
        tree += s.treeSpeculation;
    }
    EXPECT_EQ(speculative, 2u);
    EXPECT_EQ(tree, 1u);

    auto off = offloadingSystems();
    ASSERT_EQ(off.size(), 2u);
    EXPECT_FALSE(off[0].speculative);
    EXPECT_TRUE(off[1].speculative);
}

TEST(SystemModelDeathTest, ProfileMustEmitAtLeastOneToken)
{
    SystemModel sim = makeModel();
    SpeculationProfile bad;
    bad.avgVerifiedPerIter = 0.5;
    EXPECT_DEATH(sim.iterationLatency(baseScenario(), bad),
                 "at least one token");
}

} // namespace
} // namespace simulator
} // namespace specinfer
