/**
 * @file
 * Reproduces paper Figure 10: SpecInfer's end-to-end per-token
 * latency as a function of token tree width (1-5) and batch size
 * (1-16), serving LLaMA-7B with LLaMA-68M on one A10. Acceptance
 * statistics per width come from real engine runs with expansion
 * <1,1,k,1,1,1,1,1>; hardware latency from the roofline model.
 */

#include <cstdio>

#include "bench_common.h"
#include "simulator/system_model.h"
#include "util/table.h"

int
main()
{
    using namespace specinfer;
    bench::BenchModels models = bench::makeBenchModels();
    workload::PromptDataset dataset = workload::PromptDataset::named(
        "Alpaca", models.llm.config().vocabSize);
    const size_t batch_sizes[] = {1, 2, 4, 8, 16};

    std::printf("== Figure 10: per-token latency (ms) vs. token "
                "tree width, LLaMA-7B + LLaMA-68M on one A10 ==\n");

    simulator::SystemModel sim{simulator::GpuPerfModel(
        simulator::ClusterSpec::paperTestbed(1))};

    util::Table table({"width", "verified/step", "BS=1", "BS=2",
                       "BS=4", "BS=8", "BS=16"});
    for (size_t width = 1; width <= 5; ++width) {
        core::ExpansionConfig expansion =
            core::ExpansionConfig::widthAtThird(width);
        core::EngineConfig cfg =
            bench::benchEngineConfig(false, expansion);
        core::SpecEngine engine(&models.llm, {&models.ssm}, cfg);
        workload::RunConfig run;
        run.prompts = bench::benchPrompts();
        workload::TraceAggregator agg =
            workload::runEngineOnDataset(engine, dataset, run);
        simulator::SpeculationProfile profile =
            agg.profile(expansion);

        std::vector<std::string> row = {
            std::to_string(width),
            util::formatDouble(profile.avgVerifiedPerIter, 2)};
        for (size_t bs : batch_sizes) {
            simulator::ServingScenario scenario;
            scenario.llm = simulator::LlmSpec::preset("llama-7b");
            scenario.ssm = simulator::LlmSpec::preset("llama-68m");
            scenario.cluster = simulator::ClusterSpec::paperTestbed(1);
            scenario.plan = {1, 1};
            scenario.batchSize = bs;
            scenario.contextLen = 96.0;
            scenario.speculative = true;
            row.push_back(util::formatDouble(
                sim.perTokenLatency(scenario, profile) * 1.0e3, 2));
        }
        table.addRow(std::move(row));
    }
    std::printf("%s", table.toAscii().c_str());
    std::printf("\nPaper reference: for BS=1-2 larger widths keep "
                "reducing per-token latency; for BS>=4 verification "
                "cost grows and width 2-3 is the sweet spot.\n");
    return 0;
}
