/**
 * @file
 * Ablation: KV-cache memory policies under continuous batching.
 *
 * The paper's introduction motivates speculation partly through KV
 * memory pressure: caching keys/values bounds the number of
 * requests a pipeline can serve in parallel. This harness compares
 * worst-case reservation against on-demand (paged) reservation with
 * preemption, across KV pool sizes, on a fixed request stream.
 */

#include <cstdio>

#include "bench_common.h"
#include "runtime/request_manager.h"
#include "util/stats.h"
#include "util/table.h"

int
main()
{
    using namespace specinfer;
    bench::BenchModels models = bench::makeBenchModels();
    core::EngineConfig cfg = bench::benchEngineConfig(
        false, core::ExpansionConfig::paperDefault());
    cfg.maxNewTokens = 48;
    core::SpecEngine engine(&models.llm, {&models.ssm}, cfg);
    workload::PromptDataset dataset = workload::PromptDataset::named(
        "Alpaca", models.llm.config().vocabSize);

    const size_t requests = 12;
    const size_t block_tokens = 16;
    // Worst-case tokens for the longest prompt in the stream.
    size_t worst = 0;
    for (size_t i = 0; i < requests; ++i)
        worst = std::max(worst, dataset.prompt(i).size());
    worst += cfg.maxNewTokens + engine.treeBudget() + 2;
    runtime::KvBlockAllocator probe(100000, block_tokens);
    const size_t worst_blocks = probe.blocksFor(worst);

    std::printf("== Ablation: KV memory policy (12 requests, batch "
                "8, worst case %zu blocks/request) ==\n",
                worst_blocks);
    util::Table table({"pool (x worst case)", "policy",
                       "makespan (iters)", "avg completion (iters)",
                       "preemptions", "peak blocks",
                       "peak pool frag"});
    for (double scale : {1.2, 2.0, 4.0}) {
        for (int p = 0; p < 2; ++p) {
            runtime::ServingConfig serving;
            serving.maxBatchSize = 8;
            serving.kvBlockTokens = block_tokens;
            serving.kvPoolBlocks = static_cast<size_t>(
                scale * static_cast<double>(worst_blocks));
            serving.kvPolicy =
                p == 0 ? runtime::KvReservationPolicy::WorstCase
                       : runtime::KvReservationPolicy::OnDemand;
            runtime::RequestManager manager(&engine, serving);
            for (size_t i = 0; i < requests; ++i)
                manager.submit(dataset.prompt(i));
            // Drain one iteration at a time, sampling pool-level
            // fragmentation (physical capacity reserved but not yet
            // backed by tokens; each shared block counted once).
            double peak_frag = 0.0;
            while (manager.busy()) {
                manager.runIteration();
                peak_frag = std::max(peak_frag,
                                     manager.kvFragmentation());
            }

            util::RunningStat completion;
            for (const runtime::RequestResult &res :
                 manager.finished())
                completion.add(static_cast<double>(
                    res.finishIteration - res.arrivalIteration + 1));
            char pool_label[32];
            std::snprintf(pool_label, sizeof(pool_label), "%.1fx",
                          scale);
            table.addRow(
                {pool_label,
                 p == 0 ? "worst-case reservation"
                        : "on-demand (paged)",
                 std::to_string(manager.iterationCount()),
                 util::formatDouble(completion.mean(), 1),
                 std::to_string(manager.stats().preemptions),
                 std::to_string(
                     manager.kvPool()->stats().peakUsedBlocks),
                 util::formatDouble(peak_frag, 3)});
        }
    }
    std::printf("%s", table.toAscii().c_str());
    std::printf("\nOn-demand paging admits more concurrent requests "
                "from the same pool (higher peak utilization, lower "
                "completion time); under extreme pressure it pays "
                "with preemptions, the vLLM recompute trade-off. "
                "Worst-case reservation shows up as pool-level "
                "fragmentation: capacity reserved up front that no "
                "token ever backs.\n");
    return 0;
}
