/**
 * @file
 * Ablation: prefix-shared, copy-on-write KV blocks under
 * multi-tenant traffic.
 *
 * Thirty-two concurrent requests drawn from two tenants whose chat
 * system prompts are 64 tokens long drain through the request
 * manager twice: once with plain per-request KV reservation, once
 * with hash-consed prefix sharing. Sharing must not change a single
 * output token (asserted before any benchmark runs); what it buys
 * is recorded as counters — peak pool occupancy, prefill tokens the
 * LLM actually computed, prefix hits, and copy-on-write events —
 * which scripts/bench_json.sh appends to BENCH_serving.json next to
 * the timing.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "runtime/kv_memory.h"
#include "runtime/request_manager.h"
#include "workload/datasets.h"

namespace {

using namespace specinfer;

constexpr size_t kRequests = 32;
constexpr size_t kTenants = 2;
constexpr size_t kPrefixTokens = 64;
constexpr size_t kBlockTokens = 16;
/** Batch below the request count so admission staggers: later
 *  waves adopt the prefix blocks earlier waves published, which is
 *  where the prefill-compute saving comes from. */
constexpr size_t kBatch = 8;

struct SharingBench
{
    bench::BenchModels models = bench::makeBenchModels();
    core::EngineConfig engineCfg = bench::benchEngineConfig(
        false, core::ExpansionConfig::paperDefault());
    std::vector<std::vector<int>> prompts;
    size_t promptTokens = 0;
    size_t poolBlocks = 0;

    SharingBench()
    {
        workload::SharedPrefixDataset dataset =
            workload::SharedPrefixDataset::chat(
                models.llm.config().vocabSize, kTenants,
                kPrefixTokens);
        size_t longest = 0;
        for (size_t i = 0; i < kRequests; ++i) {
            prompts.push_back(dataset.prompt(i));
            promptTokens += prompts.back().size();
            longest = std::max(longest, prompts.back().size());
        }
        // Ample pool: every request's worst case fits at once, so
        // the two configurations differ only in sharing, never in
        // preemption behaviour.
        core::SpecEngine probe(&models.llm, {&models.ssm},
                               engineCfg);
        const size_t worst = longest + engineCfg.maxNewTokens +
                             probe.treeBudget() + 2;
        runtime::KvBlockAllocator sizer(100000, kBlockTokens);
        poolBlocks = kRequests * sizer.blocksFor(worst);
    }

    runtime::ServingConfig
    servingConfig(bool sharing) const
    {
        runtime::ServingConfig cfg;
        cfg.maxBatchSize = kBatch;
        cfg.kvBlockTokens = kBlockTokens;
        cfg.kvPoolBlocks = poolBlocks;
        cfg.kvPrefixSharing = sharing;
        return cfg;
    }
};

SharingBench &
fixture()
{
    static SharingBench bench;
    return bench;
}

std::map<uint64_t, std::vector<int>>
drainOnce(core::SpecEngine &engine, const SharingBench &f,
          bool sharing)
{
    runtime::RequestManager manager(&engine,
                                    f.servingConfig(sharing));
    for (const std::vector<int> &p : f.prompts)
        manager.submit(p);
    manager.runUntilDrained();
    std::map<uint64_t, std::vector<int>> out;
    for (const runtime::RequestResult &res : manager.finished())
        out[res.id] = res.tokens;
    return out;
}

/** Sharing is an occupancy/latency optimization only: refuse to
 *  report numbers at all if it perturbs a single output token. */
void
checkTokenIdentity()
{
    SharingBench &f = fixture();
    core::SpecEngine engine(&f.models.llm, {&f.models.ssm},
                            f.engineCfg);
    const auto plain = drainOnce(engine, f, false);
    const auto shared = drainOnce(engine, f, true);
    if (plain.size() != kRequests || plain != shared) {
        std::fprintf(stderr,
                     "ablation_prefix_sharing: prefix sharing "
                     "changed generated tokens; refusing to "
                     "benchmark\n");
        std::abort();
    }
}

void
BM_MultiTenantDrain(benchmark::State &state)
{
    SharingBench &f = fixture();
    const bool sharing = state.range(0) != 0;
    // The process-global context (installed by main() when the
    // metric exporters are requested) wins so the exposition file
    // sees the kv_* metrics; otherwise a private context scopes
    // engine_prefill_skipped_tokens to this benchmark.
    obs::ObsContext local(&obs::SteadyClock::instance(),
                          /*tracing_enabled=*/false);
    obs::ObsContext *ctx =
        obs::globalObs() != nullptr ? obs::globalObs() : &local;
    core::EngineConfig ecfg = f.engineCfg;
    ecfg.obs = ctx;
    core::SpecEngine engine(&f.models.llm, {&f.models.ssm}, ecfg);
    const uint64_t skipped_before =
        ctx->metrics()
            .counter("engine_prefill_skipped_tokens")
            ->value();

    runtime::KvMemoryStats last;
    size_t tokens = 0;
    for (auto _ : state) {
        runtime::ServingConfig scfg = f.servingConfig(sharing);
        scfg.obs = ctx;
        runtime::RequestManager manager(&engine, scfg);
        for (const std::vector<int> &p : f.prompts)
            manager.submit(p);
        manager.runUntilDrained();
        last = manager.kvPool()->stats();
        tokens += manager.stats().tokensGenerated;
    }
    state.SetItemsProcessed(static_cast<int64_t>(tokens));

    const double runs = static_cast<double>(state.iterations());
    const double skipped = static_cast<double>(
        ctx->metrics()
            .counter("engine_prefill_skipped_tokens")
            ->value() -
        skipped_before);
    state.counters["peak_kv_blocks"] =
        static_cast<double>(last.peakUsedBlocks);
    // Prompt tokens the LLM prefilled per drain (total minus the
    // rows adopted from the shared-prefix payload store).
    state.counters["prefill_tokens"] =
        static_cast<double>(f.promptTokens) - skipped / runs;
    state.counters["prefix_hits"] =
        static_cast<double>(last.prefixHits);
    state.counters["cow_copies"] =
        static_cast<double>(last.cowCopies);
}
BENCHMARK(BM_MultiTenantDrain)
    ->ArgName("sharing")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    const char *metrics_path = std::getenv("SPECINFER_METRICS_OUT");
    const char *trace_path = std::getenv("SPECINFER_TRACE_OUT");
    std::unique_ptr<obs::ObsContext> ctx;
    if (metrics_path != nullptr || trace_path != nullptr) {
        ctx = std::make_unique<obs::ObsContext>(
            &obs::SteadyClock::instance(),
            /*tracing_enabled=*/trace_path != nullptr);
        obs::setGlobalObs(ctx.get());
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    checkTokenIdentity();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (ctx != nullptr) {
        if (metrics_path != nullptr) {
            std::ofstream out(metrics_path);
            obs::writePrometheus(ctx->metrics().snapshot(), out);
        }
        if (trace_path != nullptr) {
            std::ofstream out(trace_path);
            ctx->tracer().writeChromeTrace(out);
        }
        obs::setGlobalObs(nullptr);
    }
    return 0;
}
