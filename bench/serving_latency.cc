/**
 * @file
 * End-to-end serving simulation: request-level latency under
 * offered load, combining the real continuous-batching scheduler
 * and real speculation traces with the A10 roofline clock.
 *
 * Requests arrive by a Poisson process (in seconds); each scheduler
 * iteration advances a simulated clock by the hardware model's
 * latency for that iteration's batch. Compared systems: incremental
 * decoding vs tree-based speculation on LLaMA-7B/one A10 — the
 * serving-level consequence of Figure 7's per-token results.
 */

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "runtime/request_manager.h"
#include "simulator/system_model.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/arrivals.h"

namespace {

using namespace specinfer;

struct LoadResult
{
    double meanLatency = 0.0;   ///< seconds
    double p95Latency = 0.0;
    double throughput = 0.0;    ///< tokens per second
};

LoadResult
simulate(const core::SpecEngine &engine,
         const simulator::SpeculationProfile &profile,
         bool speculative, double mean_gap_s, size_t requests)
{
    workload::PromptDataset dataset = workload::PromptDataset::named(
        "Alpaca", engine.llm().config().vocabSize);

    simulator::SystemModel sim{simulator::GpuPerfModel(
        simulator::ClusterSpec::paperTestbed(1))};
    simulator::ServingScenario scenario;
    scenario.llm = simulator::LlmSpec::preset("llama-7b");
    scenario.ssm = simulator::LlmSpec::preset("llama-68m");
    scenario.plan = {1, 1};
    scenario.contextLen = 96.0;
    scenario.speculative = speculative;

    // Arrival times in seconds.
    std::vector<size_t> arrival_iters =
        workload::poissonArrivals(requests, 1.0, 23);
    std::vector<double> arrival_s(requests);
    {
        util::Rng rng(23);
        double t = 0.0;
        for (size_t i = 0; i < requests; ++i) {
            double u;
            do {
                u = rng.uniform();
            } while (u <= 0.0);
            t += -mean_gap_s * std::log(u);
            arrival_s[i] = t;
        }
    }

    runtime::ServingConfig serving;
    serving.maxBatchSize = 8;
    serving.captureBatchTrace = true; // priced per-iteration below
    runtime::RequestManager manager(&engine, serving);
    std::vector<double> submit_time(requests + 1, 0.0);
    double clock = 0.0;
    size_t submitted = 0;
    std::vector<double> latencies;
    size_t tokens = 0;

    while (submitted < requests || manager.busy()) {
        while (submitted < requests &&
               arrival_s[submitted] <= clock) {
            uint64_t id =
                manager.submit(dataset.prompt(submitted));
            submit_time[id] = arrival_s[submitted];
            ++submitted;
        }
        if (!manager.busy() && submitted < requests) {
            // Idle until the next arrival.
            clock = arrival_s[submitted];
            continue;
        }
        manager.runIteration();
        size_t batch = manager.stats().batchSizeTrace.back();
        if (batch > 0) {
            scenario.batchSize = batch;
            clock += sim.iterationLatency(scenario, profile);
        }
        for (const runtime::RequestResult &res :
             manager.takeFinished()) {
            latencies.push_back(clock - submit_time[res.id]);
            tokens += res.tokens.size();
        }
    }

    LoadResult out;
    util::RunningStat stat;
    for (double l : latencies)
        stat.add(l);
    out.meanLatency = stat.mean();
    out.p95Latency = util::percentile(latencies, 95.0);
    out.throughput = static_cast<double>(tokens) / clock;
    return out;
}

} // namespace

int
main()
{
    bench::BenchModels models = bench::makeBenchModels();

    // Real traces drive the speculative system's cost model.
    core::ExpansionConfig expansion =
        core::ExpansionConfig::paperDefault();
    core::EngineConfig spec_cfg =
        bench::benchEngineConfig(false, expansion);
    core::SpecEngine spec_engine(&models.llm, {&models.ssm},
                                 spec_cfg);
    workload::PromptDataset dataset = workload::PromptDataset::named(
        "Alpaca", models.llm.config().vocabSize);
    workload::RunConfig run;
    run.prompts = bench::benchPrompts();
    simulator::SpeculationProfile tree_profile =
        workload::runEngineOnDataset(spec_engine, dataset, run)
            .profile(expansion);

    core::EngineConfig incr_cfg = bench::benchEngineConfig(
        false, core::ExpansionConfig::none());
    core::SpecEngine incr_engine(&models.llm, {}, incr_cfg);

    const size_t requests = bench::benchPrompts() * 2;
    std::printf("== Serving simulation: request latency under load "
                "(LLaMA-7B, one A10, continuous batching, %zu "
                "requests of %zu tokens) ==\n",
                requests, bench::benchTokens());
    util::Table table({"mean arrival gap (s)", "system",
                       "mean latency (s)", "p95 latency (s)",
                       "throughput (tok/s)"});
    for (double gap : {2.0, 1.0, 0.5}) {
        LoadResult incr = simulate(
            incr_engine, simulator::SpeculationProfile::incremental(),
            false, gap, requests);
        LoadResult spec = simulate(spec_engine, tree_profile, true,
                                   gap, requests);
        table.addRow({util::formatDouble(gap, 1), "incremental",
                      util::formatDouble(incr.meanLatency, 2),
                      util::formatDouble(incr.p95Latency, 2),
                      util::formatDouble(incr.throughput, 0)});
        table.addRow({"", "tree speculation",
                      util::formatDouble(spec.meanLatency, 2),
                      util::formatDouble(spec.p95Latency, 2),
                      util::formatDouble(spec.throughput, 0)});
    }
    std::printf("%s", table.toAscii().c_str());
    std::printf("\nSpeculation reduces per-request latency at every "
                "load level and sustains higher throughput before "
                "queueing blows up — the serving-level consequence "
                "of Figure 7.\n");
    return 0;
}
