/**
 * @file
 * Reproduces paper Figure 9: the cumulative distribution function of
 * the average number of verified tokens per decoding step across
 * Alpaca prompts, for token tree widths 1-5, under greedy and
 * stochastic decoding. Expansion config <1,1,k,1,1,1,1,1>.
 *
 * Output: one CDF curve per (decoding, width) as rows of
 * (quantile -> value), matching the figure's axes.
 */

#include <cstdio>

#include "bench_common.h"
#include "util/stats.h"
#include "util/table.h"

int
main()
{
    using namespace specinfer;
    bench::BenchModels models = bench::makeBenchModels();
    workload::PromptDataset dataset = workload::PromptDataset::named(
        "Alpaca", models.llm.config().vocabSize);

    std::printf("== Figure 9: CDF of average verified tokens per "
                "decoding step (Alpaca), tree widths 1-5 ==\n");

    const double quantiles[] = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5,
                                0.6, 0.7, 0.8, 0.9, 1.0};
    for (int stochastic = 0; stochastic <= 1; ++stochastic) {
        std::printf("\n-- %s decoding --\n",
                    stochastic ? "stochastic" : "greedy");
        util::Table table({"width", "q0.0", "q0.1", "q0.2", "q0.3",
                           "q0.4", "q0.5", "q0.6", "q0.7", "q0.8",
                           "q0.9", "q1.0", "mean"});
        for (size_t width = 1; width <= 5; ++width) {
            core::EngineConfig cfg = bench::benchEngineConfig(
                stochastic != 0,
                core::ExpansionConfig::widthAtThird(width));
            core::SpecEngine engine(&models.llm, {&models.ssm}, cfg);
            workload::RunConfig run;
            run.prompts = bench::benchPrompts() * 2;
            workload::TraceAggregator agg =
                workload::runEngineOnDataset(engine, dataset, run);
            util::EmpiricalCdf cdf(agg.perRequestVerified());
            std::vector<std::string> row = {std::to_string(width)};
            for (double q : quantiles)
                row.push_back(
                    util::formatDouble(cdf.valueAt(q), 2));
            row.push_back(util::formatDouble(
                agg.avgVerifiedPerStep(), 2));
            table.addRow(std::move(row));
        }
        std::printf("%s", table.toAscii().c_str());
    }
    std::printf("\nPaper reference: width 1 -> widths 2-5 shifts the "
                "whole CDF right; tree widths reduce LLM decoding "
                "steps by 1.2-1.5x (greedy) and 1.3-1.4x "
                "(stochastic) relative to width 1.\n");
    return 0;
}
