/**
 * @file
 * Google-benchmark harness for the serving-level hot paths: full
 * speculative generation, the incremental baseline, and one
 * continuous-batching scheduler iteration. scripts/bench_json.sh
 * records these into BENCH_serving.json per git rev so the serving
 * perf trajectory is tracked alongside the kernel one.
 *
 * Observability smoke: setting SPECINFER_METRICS_OUT and/or
 * SPECINFER_TRACE_OUT installs a process-global ObsContext for the
 * whole run and writes a Prometheus snapshot / Chrome trace on exit
 * (tracing is enabled only when a trace path is requested). CI runs
 * the drain benchmark this way and validates both artifacts with
 * obs_check.
 */

#include <benchmark/benchmark.h>

#include <csignal>
#include <cstdlib>
#include <fstream>
#include <memory>

#include "core/spec_engine.h"
#include "model/model_factory.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "runtime/request_manager.h"
#include "simulator/perf_model.h"
#include "util/rng.h"
#include "workload/datasets.h"

namespace {

using namespace specinfer;

/**
 * SPECINFER_SSM_PRECISION=int8 switches the shared fixture's SSM to
 * the real-int8 path, so the whole suite (and BENCH_serving.json)
 * can be re-recorded under a quantized drafter without recompiling.
 * The always-int8 BM_SpecGenerateInt8 below measures the contrast
 * within one run.
 */
model::Precision
fixturePrecision()
{
    const char *env = std::getenv("SPECINFER_SSM_PRECISION");
    return env != nullptr ? model::parsePrecision(env)
                          : model::Precision::Fp32;
}

/**
 * SPECINFER_TP=<n> reshards the shared fixture's models across n
 * simulated tensor-parallel ranks (must divide the preset's head
 * count), so the whole serving suite can be re-recorded sharded.
 * Outputs are bit-identical at every degree (DESIGN.md §5j) — only
 * the execution shape, and therefore the timings, change. The
 * BM_ShardedForward sweep below measures the contrast across
 * degrees within one run.
 */
size_t
fixtureTpDegree()
{
    const char *env = std::getenv("SPECINFER_TP");
    return env != nullptr
               ? static_cast<size_t>(std::strtoull(env, nullptr, 10))
               : 1;
}

model::ModelConfig
fixtureLlmConfig()
{
    model::ModelConfig cfg = model::llmPreset("llama-7b-sim");
    cfg.tensorParallel = fixtureTpDegree();
    return cfg;
}

struct ServingFixture
{
    model::Transformer llm;
    model::Transformer ssm;
    model::Transformer ssmInt8;
    core::SpecEngine spec;
    core::SpecEngine specInt8;
    core::SpecEngine incr;
    workload::PromptDataset dataset;

    ServingFixture()
        : llm(model::makeLlm(fixtureLlmConfig())),
          ssm(fixturePrecision() == model::Precision::Int8
                  ? model::makeInt8Ssm(llm, 2)
                  : model::makeEarlyExitSsm(llm, 2)),
          ssmInt8(model::makeInt8Ssm(llm, 2)),
          spec(&llm, {&ssm}, engineConfig(true)),
          specInt8(&llm, {&ssmInt8}, engineConfig(true)),
          incr(&llm, {}, engineConfig(false)),
          dataset(workload::PromptDataset::named(
              "Alpaca", llm.config().vocabSize))
    {
    }

    static core::EngineConfig engineConfig(bool speculative)
    {
        core::EngineConfig cfg = core::EngineConfig::greedyDefault();
        if (!speculative)
            cfg.spec.expansion = core::ExpansionConfig::none();
        cfg.maxNewTokens = 16;
        cfg.stopAtEos = false;
        return cfg;
    }
};

ServingFixture &
fixture()
{
    static ServingFixture f;
    return f;
}

void
BM_SpecGenerate(benchmark::State &state)
{
    ServingFixture &f = fixture();
    const std::vector<int> prompt = f.dataset.prompt(0);
    size_t tokens = 0;
    for (auto _ : state) {
        core::GenerationResult out = f.spec.generate(prompt, 1);
        benchmark::DoNotOptimize(out.tokens.data());
        tokens += out.tokens.size();
    }
    state.SetItemsProcessed(static_cast<int64_t>(tokens));
}
BENCHMARK(BM_SpecGenerate)->Unit(benchmark::kMillisecond);

/** Speculative generation with a real-int8 drafter (LLM fp32). */
void
BM_SpecGenerateInt8(benchmark::State &state)
{
    ServingFixture &f = fixture();
    const std::vector<int> prompt = f.dataset.prompt(0);
    size_t tokens = 0;
    for (auto _ : state) {
        core::GenerationResult out = f.specInt8.generate(prompt, 1);
        benchmark::DoNotOptimize(out.tokens.data());
        tokens += out.tokens.size();
    }
    state.SetItemsProcessed(static_cast<int64_t>(tokens));
}
BENCHMARK(BM_SpecGenerateInt8)->Unit(benchmark::kMillisecond);

void
BM_IncrementalGenerate(benchmark::State &state)
{
    ServingFixture &f = fixture();
    const std::vector<int> prompt = f.dataset.prompt(0);
    size_t tokens = 0;
    for (auto _ : state) {
        core::GenerationResult out = f.incr.generate(prompt, 1);
        benchmark::DoNotOptimize(out.tokens.data());
        tokens += out.tokens.size();
    }
    state.SetItemsProcessed(static_cast<int64_t>(tokens));
}
BENCHMARK(BM_IncrementalGenerate)->Unit(benchmark::kMillisecond);

/**
 * One run of a small continuous batch to completion: 4 requests
 * admitted together, scheduler iterations until drained.
 */
void
BM_ContinuousBatchDrain(benchmark::State &state)
{
    ServingFixture &f = fixture();
    runtime::ServingConfig serving;
    serving.maxBatchSize = 4;
    size_t iterations = 0;
    for (auto _ : state) {
        runtime::RequestManager manager(&f.spec, serving);
        for (size_t p = 0; p < 4; ++p)
            manager.submit(f.dataset.prompt(p));
        while (manager.busy()) {
            manager.runIteration();
            ++iterations;
        }
        benchmark::DoNotOptimize(manager.stats().requestsFinished);
    }
    state.SetItemsProcessed(static_cast<int64_t>(iterations));
}
BENCHMARK(BM_ContinuousBatchDrain)->Unit(benchmark::kMillisecond);

/**
 * One sharded forward pair — a 24-token prefill plus a 16-token
 * tree chunk — at tensor-parallel degree state.range(0), so
 * BENCH_serving.json tracks how the real collective path scales
 * with the shard count. The user counters report the measured
 * all-reduce volume from the collective ledger alongside the perf
 * model's prediction for the same shapes; test_parallel pins them
 * EXACTLY equal, the benchmark records both so a drift shows up in
 * the perf trajectory too.
 */
void
BM_ShardedForward(benchmark::State &state)
{
    const size_t tp = static_cast<size_t>(state.range(0));
    model::ModelConfig cfg = model::llmPreset("llama-7b-sim");
    cfg.tensorParallel = tp;
    model::Transformer llm = model::makeLlm(cfg);

    const size_t prefill_tokens = 24;
    const size_t tree_tokens = 16;
    util::Rng rng(17);
    std::vector<int> prompt;
    for (size_t i = 0; i < prefill_tokens; ++i)
        prompt.push_back(static_cast<int>(rng.uniformInt(
            int64_t{1}, static_cast<int64_t>(cfg.vocabSize) - 1)));
    model::DecodeChunk chunk;
    for (size_t i = 0; i < tree_tokens; ++i) {
        chunk.tokens.push_back(static_cast<int>(rng.uniformInt(
            int64_t{1}, static_cast<int64_t>(cfg.vocabSize) - 1)));
        chunk.parents.push_back(
            i == 0 ? -1
                   : static_cast<int32_t>(
                         rng.uniformInt(static_cast<uint64_t>(i))));
    }

    // Divert the collective ledger to a local context for the
    // duration of the loop so the counters below reflect exactly
    // this benchmark's traffic (and the process-global exporter, if
    // installed, is not polluted).
    obs::ObsContext ctx(&obs::SteadyClock::instance(),
                        /*tracing_enabled=*/false);
    obs::ObsContext *prev = obs::setGlobalObs(&ctx);
    size_t iters = 0;
    for (auto _ : state) {
        model::KvCache cache = llm.makeCache();
        llm.forward(model::DecodeChunk::sequence(prompt), cache);
        tensor::Tensor out = llm.forward(chunk, cache);
        benchmark::DoNotOptimize(out.data());
        ++iters;
    }
    obs::setGlobalObs(prev);

    obs::MetricsSnapshot snap = ctx.metrics().snapshot();
    const obs::SnapshotCounter *ar_bytes =
        snap.findCounter("parallel_allreduce_bytes");
    const double measured_kb =
        iters > 0 && ar_bytes != nullptr
            ? static_cast<double>(ar_bytes->value) /
                  static_cast<double>(iters) / 1024.0
            : 0.0;

    simulator::LlmSpec spec;
    spec.nLayers = cfg.nLayers;
    spec.hidden = cfg.dModel;
    spec.vocab = cfg.vocabSize;
    spec.bytesPerParam = 4.0; // fp32 activations on this backend
    simulator::ParallelismPlan plan;
    plan.tensorParallel = tp;
    double modeled_bytes = 0.0;
    for (size_t tokens : {prefill_tokens, tree_tokens}) {
        simulator::TpCommVolume vol =
            simulator::GpuPerfModel::tensorParallelComm(
                spec, plan, static_cast<double>(tokens));
        modeled_bytes += vol.totalAllReduceBytes();
    }

    state.counters["allreduce_KB_per_iter"] = measured_kb;
    state.counters["modeled_allreduce_KB_per_iter"] =
        modeled_bytes / 1024.0;
    state.SetItemsProcessed(static_cast<int64_t>(
        iters * (prefill_tokens + tree_tokens)));
}
BENCHMARK(BM_ShardedForward)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// --- Interrupt handling ------------------------------------------
//
// CI drives this binary under a watchdog; if the run is cut short
// with SIGINT/SIGTERM the observability artifacts must still land
// on disk (partial numbers beat none). The handler writes them
// directly — a sig_atomic_t guard collapses re-entrant delivery —
// and exits with the conventional 128+signo code.

volatile std::sig_atomic_t g_signal_fired = 0;
obs::ObsContext *g_signal_ctx = nullptr;
const char *g_signal_metrics = nullptr;
const char *g_signal_trace = nullptr;

void
onFlushSignal(int signo)
{
    if (g_signal_fired != 0)
        std::_Exit(128 + signo);
    g_signal_fired = 1;
    if (g_signal_ctx != nullptr) {
        if (g_signal_metrics != nullptr) {
            std::ofstream out(g_signal_metrics);
            obs::writePrometheus(
                g_signal_ctx->metrics().snapshot(), out);
        }
        if (g_signal_trace != nullptr) {
            std::ofstream out(g_signal_trace);
            g_signal_ctx->tracer().writeChromeTrace(out);
        }
    }
    std::_Exit(128 + signo);
}

} // namespace

int
main(int argc, char **argv)
{
    const char *metrics_path = std::getenv("SPECINFER_METRICS_OUT");
    const char *trace_path = std::getenv("SPECINFER_TRACE_OUT");
    std::unique_ptr<obs::ObsContext> ctx;
    if (metrics_path != nullptr || trace_path != nullptr) {
        ctx = std::make_unique<obs::ObsContext>(
            &obs::SteadyClock::instance(),
            /*tracing_enabled=*/trace_path != nullptr);
        obs::setGlobalObs(ctx.get());
        g_signal_ctx = ctx.get();
        g_signal_metrics = metrics_path;
        g_signal_trace = trace_path;
        std::signal(SIGINT, onFlushSignal);
        std::signal(SIGTERM, onFlushSignal);
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (ctx != nullptr) {
        if (metrics_path != nullptr) {
            std::ofstream out(metrics_path);
            obs::writePrometheus(ctx->metrics().snapshot(), out);
        }
        if (trace_path != nullptr) {
            std::ofstream out(trace_path);
            ctx->tracer().writeChromeTrace(out);
        }
        obs::setGlobalObs(nullptr);
    }
    return 0;
}
