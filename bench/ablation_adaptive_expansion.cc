/**
 * @file
 * Ablation: static expansion configurations (paper §3) versus the
 * adaptive-mass policy the paper leaves as future work.
 *
 * The interesting metric is verification efficiency: verified
 * tokens per LLM token decoded. Adaptive expansion spends tree
 * nodes where the SSM is uncertain, so at a comparable average tree
 * size it should verify at least as many tokens per step.
 */

#include <cstdio>

#include "bench_common.h"
#include "util/table.h"

namespace {

using namespace specinfer;

struct Policy
{
    std::string label;
    core::SpeculatorConfig spec;
};

} // namespace

int
main()
{
    bench::BenchModels models = bench::makeBenchModels();
    workload::PromptDataset dataset = workload::PromptDataset::named(
        "Alpaca", models.llm.config().vocabSize);

    std::vector<Policy> policies;
    {
        core::SpeculatorConfig s;
        s.expansion = core::ExpansionConfig::paperDefault();
        policies.push_back({"static <1,1,3,1,1,1,1,1>", s});
    }
    {
        core::SpeculatorConfig s;
        s.expansion = core::ExpansionConfig::uniform(2, 8);
        policies.push_back({"static <2,2,2,2,2,2,2,2>", s});
    }
    for (float mass : {0.45f, 0.65f, 0.85f}) {
        core::SpeculatorConfig s;
        s.expansion = core::ExpansionConfig::uniform(1, 8);
        s.policy = core::ExpansionPolicy::AdaptiveMass;
        s.adaptiveMass = mass;
        s.adaptiveMaxWidth = 3;
        s.maxTreeNodes = 40;
        char label[64];
        std::snprintf(label, sizeof(label),
                      "adaptive mass=%.2f width<=3",
                      static_cast<double>(mass));
        policies.push_back({label, s});
    }

    std::printf("== Ablation: static vs adaptive token tree "
                "expansion (greedy, Alpaca) ==\n");
    util::Table table({"policy", "verified/step", "tree tokens/step",
                       "efficiency (verified/LLM token)"});
    for (size_t i = 0; i < policies.size(); ++i) {
        core::EngineConfig cfg = bench::benchEngineConfig(
            false, policies[i].spec.expansion);
        cfg.spec = policies[i].spec;
        core::SpecEngine engine(&models.llm, {&models.ssm}, cfg);
        workload::RunConfig run;
        run.prompts = bench::benchPrompts();
        workload::TraceAggregator agg =
            workload::runEngineOnDataset(engine, dataset, run);
        table.addRow(
            {policies[i].label,
             util::formatDouble(agg.avgVerifiedPerStep(), 2),
             util::formatDouble(agg.avgLlmTokensPerStep(), 1),
             util::formatDouble(agg.avgVerifiedPerStep() /
                                    agg.avgLlmTokensPerStep(),
                                3)});
    }
    std::printf("%s", table.toAscii().c_str());
    std::printf("\nAdaptive trees concentrate width on uncertain "
                "steps: at matched or smaller tree sizes they reach "
                "comparable verified tokens per step with better "
                "verification efficiency.\n");
    return 0;
}
