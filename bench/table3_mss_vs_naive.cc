/**
 * @file
 * Reproduces paper Table 3: average number of tokens verified per
 * stochastic decoding step under naive sampling (NS) versus
 * multi-step speculative sampling (MSS). Token trees have width 5
 * and speculation length 8 (<1,1,5,1,1,1,1,1>), as in §6.6.
 */

#include <cstdio>

#include "bench_common.h"
#include "util/table.h"

namespace {

double
measure(const specinfer::bench::BenchModels &models,
        const specinfer::workload::PromptDataset &dataset,
        specinfer::core::VerifyMode mode)
{
    using namespace specinfer;
    core::EngineConfig cfg = bench::benchEngineConfig(
        true, core::ExpansionConfig::widthAtThird(5));
    cfg.verify = mode;
    core::SpecEngine engine(&models.llm, {&models.ssm}, cfg);
    workload::RunConfig run;
    run.prompts = bench::benchPrompts();
    workload::TraceAggregator agg =
        workload::runEngineOnDataset(engine, dataset, run);
    return agg.avgVerifiedPerStep();
}

} // namespace

int
main()
{
    using namespace specinfer;
    bench::BenchModels models = bench::makeBenchModels();

    std::printf("== Table 3: average tokens verified per stochastic "
                "decoding step, naive sampling vs. multi-step "
                "speculative sampling (width 5, length 8) ==\n");

    util::Table table({"dataset", "naive sampling",
                       "multi-step spec. sampling", "improvement"});
    for (const std::string &name :
         workload::PromptDataset::allNames()) {
        workload::PromptDataset dataset =
            workload::PromptDataset::named(
                name, models.llm.config().vocabSize);
        double ns =
            measure(models, dataset, core::VerifyMode::NaiveSampling);
        double mss = measure(models, dataset,
                             core::VerifyMode::MultiStepSampling);
        table.addRow({name, util::formatDouble(ns, 2),
                      util::formatDouble(mss, 2),
                      util::formatDouble(mss / ns, 2) + "x"});
    }
    std::printf("%s", table.toAscii().c_str());
    std::printf("\nPaper reference: MSS improves over NS by "
                "1.26-1.28x consistently across datasets "
                "(NS 1.73-1.87, MSS 2.21-2.38).\n");
    return 0;
}
