/**
 * @file
 * Ablation: QoS overload control under an offered-load sweep.
 *
 * A bursty mixed-class trace (interactive/standard trickle, batch
 * shards slamming the queue — workload::classedBurstyArrivals)
 * drains through the request manager at rising offered load: the
 * mean arrival gap shrinks while the engine's capacity stays fixed.
 * Per-class token buckets meter ingress and the bounded queue sheds
 * under pressure, in priority order. Each load point records what
 * the overload layer is supposed to protect:
 *
 *   p99_interactive / p99_standard / p99_batch — per-class p99
 *     completion latency (iterations, arrival -> finish) over
 *     requests that actually finished their tokens;
 *   shed_rate — fraction of offered requests rejected (Overloaded /
 *     QueueFull) or accepted-then-shed;
 *   shed_interactive — interactive-class sheds (the invariant the
 *     priority order buys: this stays 0 while batch load is shed);
 *   goodput — generated tokens per iteration from finished requests.
 *
 * scripts/bench_json.sh appends the counters to BENCH_serving.json
 * next to the timing, so the latency/shed trajectory under overload
 * is tracked per git rev like every other serving number.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "runtime/request_manager.h"
#include "util/stats.h"
#include "workload/arrivals.h"

namespace {

using namespace specinfer;

constexpr size_t kBatchSlots = 4;
/** Offered-load sweep: mean iterations between arrival events.
 *  Capacity is ~kBatchSlots concurrent decodes, so the last points
 *  are deeply oversubscribed and must shed. */
constexpr double kGapSweep[] = {4.0, 2.0, 1.0, 0.5};
/** Mix: mostly interactive/standard singles, rare batch events that
 *  land whole shards (mean 6 requests) at once. */
constexpr double kClassMix[3] = {0.45, 0.35, 0.20};
constexpr double kBatchBurst = 6.0;

struct OverloadBench
{
    bench::BenchModels models = bench::makeBenchModels();
    core::EngineConfig engineCfg = bench::benchEngineConfig(
        false, core::ExpansionConfig::paperDefault());
    workload::PromptDataset dataset = workload::PromptDataset::named(
        "CIP", models.llm.config().vocabSize);
    size_t requests = bench::benchPrompts() * 4;
};

OverloadBench &
fixture()
{
    static OverloadBench bench;
    return bench;
}

runtime::ServingConfig
overloadServingConfig()
{
    runtime::ServingConfig cfg;
    cfg.maxBatchSize = kBatchSlots;
    cfg.maxPendingRequests = 2 * kBatchSlots;
    // Interactive is effectively unmetered at these loads; batch is
    // throttled hard, so overload lands on the class built for it.
    cfg.classBucketCapacity[0] = 16;
    cfg.classBucketCapacity[1] = 8;
    cfg.classBucketCapacity[2] = 4;
    cfg.classRefillEveryIterations[0] = 1;
    cfg.classRefillEveryIterations[1] = 2;
    cfg.classRefillEveryIterations[2] = 8;
    return cfg;
}

void
BM_OfferedLoadSweep(benchmark::State &state)
{
    OverloadBench &f = fixture();
    const double gap =
        kGapSweep[static_cast<size_t>(state.range(0))];
    core::SpecEngine engine(&f.models.llm, {&f.models.ssm},
                            f.engineCfg);
    const std::vector<workload::ClassedArrival> trace =
        workload::classedBurstyArrivals(f.requests, kClassMix, gap,
                                        kBatchBurst, 23);

    double p99[runtime::kPriorityCount] = {0, 0, 0};
    double shed_rate = 0.0, shed_interactive = 0.0, goodput = 0.0;
    for (auto _ : state) {
        runtime::RequestManager manager(&engine,
                                        overloadServingConfig());
        size_t submitted = 0, rejected = 0;
        while (submitted < f.requests || manager.busy()) {
            while (submitted < f.requests &&
                   trace[submitted].iteration <=
                       manager.iterationCount()) {
                const runtime::SubmitResult res = manager.submit(
                    f.dataset.prompt(submitted), 0, 0,
                    static_cast<runtime::Priority>(
                        trace[submitted].priority));
                if (!res.accepted())
                    ++rejected;
                ++submitted;
            }
            manager.runIteration();
        }

        std::vector<double> lat[runtime::kPriorityCount];
        size_t shed = 0, tokens = 0;
        for (const runtime::RequestResult &res :
             manager.finished()) {
            if (res.stopReason ==
                core::SpecSession::StopReason::Shed) {
                ++shed;
                continue;
            }
            lat[static_cast<size_t>(res.priority)].push_back(
                static_cast<double>(res.finishIteration -
                                    res.arrivalIteration + 1));
            tokens += res.tokens.size();
        }
        for (size_t c = 0; c < runtime::kPriorityCount; ++c)
            p99[c] = lat[c].empty()
                         ? 0.0
                         : util::percentile(lat[c], 99);
        shed_rate = static_cast<double>(rejected + shed) /
                    static_cast<double>(f.requests);
        shed_interactive = static_cast<double>(
            manager.stats().shedByClass[0]);
        goodput = static_cast<double>(tokens) /
                  static_cast<double>(manager.iterationCount());
    }

    state.counters["offered_gap"] = gap;
    state.counters["p99_interactive"] = p99[0];
    state.counters["p99_standard"] = p99[1];
    state.counters["p99_batch"] = p99[2];
    state.counters["shed_rate"] = shed_rate;
    state.counters["shed_interactive"] = shed_interactive;
    state.counters["goodput"] = goodput;
}
BENCHMARK(BM_OfferedLoadSweep)
    ->ArgName("load")
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
