/**
 * @file
 * Reproduces paper Table 1: the success rate of verifying a token
 * using the top-k tokens (greedy) or k sampled candidates
 * (stochastic, multi-step speculative sampling) derived from the
 * SSM, for k = 1..5 over the five prompt datasets.
 *
 * Method: walk the LLM's own decoding trajectory; at each step
 * compare the LLM's next-token choice/distribution against the
 * SSM's distribution at the same context.
 */

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "model/sampler.h"
#include "tensor/ops.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace specinfer;

constexpr size_t kMaxK = 5;
constexpr int kMcTrials = 32;

struct SuccessRates
{
    double greedy[kMaxK] = {0};
    double stochastic[kMaxK] = {0};
};

SuccessRates
measureDataset(const model::Transformer &llm,
               const model::Transformer &ssm,
               const workload::PromptDataset &dataset)
{
    const size_t vocab = llm.config().vocabSize;
    model::SamplingParams unit;
    unit.temperature = 1.0f;
    util::Rng rng(util::hashString(dataset.name().c_str()));

    size_t steps = 0;
    SuccessRates rates;
    const size_t prompts = bench::benchPrompts();
    const size_t gen = bench::benchTokens();

    for (size_t pi = 0; pi < prompts; ++pi) {
        std::vector<int> prompt = dataset.prompt(pi);
        model::KvCache llm_cache = llm.makeCache();
        model::KvCache ssm_cache = ssm.makeCache();
        tensor::Tensor llm_logits = llm.forward(
            model::DecodeChunk::sequence(prompt), llm_cache);
        tensor::Tensor ssm_logits = ssm.forward(
            model::DecodeChunk::sequence(prompt), ssm_cache);
        const float *lrow = llm_logits.row(prompt.size() - 1);
        const float *srow = ssm_logits.row(prompt.size() - 1);

        for (size_t g = 0; g < gen; ++g) {
            std::vector<float> p =
                model::logitsToProbs(lrow, vocab, unit);
            std::vector<float> q =
                model::logitsToProbs(srow, vocab, unit);
            int llm_top = model::greedyToken(lrow, vocab);

            // Greedy: success iff the LLM argmax is within the
            // SSM's top-k.
            std::vector<size_t> ssm_top =
                tensor::topkRow(q.data(), vocab, kMaxK);
            for (size_t k = 0; k < kMaxK; ++k) {
                for (size_t j = 0; j <= k; ++j) {
                    if (static_cast<int>(ssm_top[j]) == llm_top) {
                        rates.greedy[k] += 1.0;
                        break;
                    }
                }
            }

            // Stochastic: Monte-Carlo estimate of MSS acceptance
            // with k i.i.d. SSM candidates and residual updates.
            for (size_t k = 1; k <= kMaxK; ++k) {
                int accepted = 0;
                for (int t = 0; t < kMcTrials; ++t) {
                    std::vector<float> resid = p;
                    for (size_t c = 0; c < k; ++c) {
                        int x = static_cast<int>(rng.categorical(q));
                        double r = rng.uniform();
                        if (q[x] > 0.0f &&
                            r * static_cast<double>(q[x]) <=
                                static_cast<double>(resid[x])) {
                            ++accepted;
                            break;
                        }
                        double total = 0.0;
                        for (size_t v = 0; v < vocab; ++v) {
                            resid[v] =
                                std::max(0.0f, resid[v] - q[v]);
                            total += resid[v];
                        }
                        if (total <= 0.0)
                            break;
                        for (float &v : resid)
                            v = static_cast<float>(v / total);
                    }
                }
                rates.stochastic[k - 1] +=
                    static_cast<double>(accepted) / kMcTrials;
            }

            ++steps;
            llm_logits = llm.forward(
                model::DecodeChunk::single(llm_top), llm_cache);
            ssm_logits = ssm.forward(
                model::DecodeChunk::single(llm_top), ssm_cache);
            lrow = llm_logits.row(0);
            srow = ssm_logits.row(0);
        }
    }

    for (size_t k = 0; k < kMaxK; ++k) {
        rates.greedy[k] /= static_cast<double>(steps);
        rates.stochastic[k] /= static_cast<double>(steps);
    }
    return rates;
}

} // namespace

int
main()
{
    using namespace specinfer;
    bench::BenchModels models = bench::makeBenchModels();

    std::printf("== Table 1: token verification success rate, "
                "top-k from %s against %s ==\n",
                models.ssm.config().name.c_str(),
                models.llm.config().name.c_str());

    util::Table table({"decoding", "dataset", "k=1", "k=2", "k=3",
                       "k=4", "k=5"});
    std::vector<SuccessRates> all;
    for (const std::string &name :
         workload::PromptDataset::allNames()) {
        workload::PromptDataset dataset = workload::PromptDataset::named(
            name, models.llm.config().vocabSize);
        all.push_back(measureDataset(models.llm, models.ssm, dataset));
    }
    auto pct = [](double v) {
        return util::formatDouble(100.0 * v, 0) + "%";
    };
    const auto &names = workload::PromptDataset::allNames();
    for (size_t d = 0; d < names.size(); ++d)
        table.addRow({"greedy", names[d], pct(all[d].greedy[0]),
                      pct(all[d].greedy[1]), pct(all[d].greedy[2]),
                      pct(all[d].greedy[3]), pct(all[d].greedy[4])});
    for (size_t d = 0; d < names.size(); ++d)
        table.addRow({"stochastic", names[d],
                      pct(all[d].stochastic[0]),
                      pct(all[d].stochastic[1]),
                      pct(all[d].stochastic[2]),
                      pct(all[d].stochastic[3]),
                      pct(all[d].stochastic[4])});
    std::printf("%s", table.toAscii().c_str());
    std::printf("\nPaper reference: greedy 62-70%% (k=1) rising to "
                "82-89%% (k=5); stochastic 52-57%% rising to "
                "96-97%%.\n");
    return 0;
}
