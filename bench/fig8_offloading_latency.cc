/**
 * @file
 * Reproduces paper Figure 8: per-token latency of offloading-based
 * inference (model weights in host DRAM, streamed to one A10 GPU
 * per iteration) for FlexGen vs SpecInfer, on OPT-13B and OPT-30B,
 * batch sizes 1-16.
 */

#include <cstdio>

#include "bench_common.h"
#include "simulator/system_model.h"
#include "util/table.h"

int
main()
{
    using namespace specinfer;
    struct Setup
    {
        const char *label;
        const char *llmSpec;
        const char *simPreset;
        size_t ssmLayers;
    };
    const Setup setups[] = {
        {"OPT-13B", "opt-13b", "opt-13b-sim", 3},
        {"OPT-30B", "opt-30b", "opt-30b-sim", 3},
    };
    const size_t batch_sizes[] = {1, 2, 4, 8, 16};

    std::printf("== Figure 8: offloading-based inference per-token "
                "latency (s) on a single 24GB A10, FlexGen vs "
                "SpecInfer ==\n");

    for (const Setup &setup : setups) {
        bench::BenchModels models =
            bench::makeBenchModels(setup.simPreset, setup.ssmLayers);
        core::ExpansionConfig expansion =
            core::ExpansionConfig::paperDefault();
        core::EngineConfig cfg = bench::benchEngineConfig(false,
                                                          expansion);
        core::SpecEngine engine(&models.llm, {&models.ssm}, cfg);
        workload::PromptDataset dataset =
            workload::PromptDataset::named(
                "Alpaca", models.llm.config().vocabSize);
        workload::RunConfig run;
        run.prompts = bench::benchPrompts();
        workload::TraceAggregator agg =
            workload::runEngineOnDataset(engine, dataset, run);
        simulator::SpeculationProfile tree_profile =
            agg.profile(expansion);

        simulator::SystemModel sim{simulator::GpuPerfModel(
            simulator::ClusterSpec::paperTestbed(1))};

        std::printf("\n-- %s (verifies %.2f tokens/step from "
                    "measured traces) --\n",
                    setup.label, tree_profile.avgVerifiedPerIter);
        util::Table table({"system", "BS=1", "BS=2", "BS=4", "BS=8",
                           "BS=16"});
        double flexgen[5] = {0}, specinfer[5] = {0};
        for (const simulator::NamedSystem &system :
             simulator::offloadingSystems()) {
            std::vector<std::string> row = {system.name};
            for (size_t b = 0; b < 5; ++b) {
                simulator::ServingScenario scenario;
                scenario.llm =
                    simulator::LlmSpec::preset(setup.llmSpec);
                scenario.ssm =
                    simulator::LlmSpec::preset("opt-125m");
                scenario.cluster =
                    simulator::ClusterSpec::paperTestbed(1);
                scenario.plan = {1, 1};
                scenario.placement =
                    simulator::Placement::Offloaded;
                scenario.batchSize = batch_sizes[b];
                scenario.contextLen = 96.0;
                scenario.systemEfficiency = system.systemEfficiency;
                scenario.speculative = system.speculative;
                double latency = sim.perTokenLatency(
                    scenario,
                    system.speculative
                        ? tree_profile
                        : simulator::SpeculationProfile::
                              incremental());
                row.push_back(util::formatDouble(latency, 3));
                (system.speculative ? specinfer : flexgen)[b] =
                    latency;
            }
            table.addRow(std::move(row));
        }
        std::printf("%s", table.toAscii().c_str());
        std::printf("speedup:");
        for (size_t b = 0; b < 5; ++b)
            std::printf(" BS=%zu: %.2fx", batch_sizes[b],
                        flexgen[b] / specinfer[b]);
        std::printf("\n");
    }
    std::printf("\nPaper reference: SpecInfer reduces per-token "
                "latency by 2.6-3.5x over FlexGen (OPT-13B: "
                "3.3x at BS=1 falling to 2.6x at BS=16; OPT-30B: "
                "3.5x falling to 2.7x).\n");
    return 0;
}
