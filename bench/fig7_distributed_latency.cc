/**
 * @file
 * Reproduces paper Figure 7: end-to-end per-token latency of
 * distributed LLM inference for vLLM, HuggingFace TGI,
 * FasterTransformer, and SpecInfer in incremental / sequence-based /
 * tree-based modes, across three model/cluster setups and batch
 * sizes 1-16.
 *
 * The speculation statistics driving the speculative systems are
 * measured from the real CPU engine (paper expansion config
 * <1,1,3,1,1,1,1,1>); the hardware latencies come from the roofline
 * cluster model of the A10 testbed (see DESIGN.md §2).
 */

#include <cstdio>

#include "bench_common.h"
#include "simulator/system_model.h"
#include "util/table.h"

namespace {

using namespace specinfer;

struct Setup
{
    const char *label;
    const char *llmSpec;    // real-model spec for the perf model
    const char *simPreset;  // CPU-scale model for real traces
    size_t ssmLayers;
    const char *ssmSpec;
    size_t nodes;
    simulator::ParallelismPlan plan;
};

simulator::SpeculationProfile
measureProfile(const bench::BenchModels &models,
               const core::ExpansionConfig &expansion)
{
    core::EngineConfig cfg = bench::benchEngineConfig(false,
                                                      expansion);
    core::SpecEngine engine(&models.llm, {&models.ssm}, cfg);
    workload::PromptDataset dataset = workload::PromptDataset::named(
        "Alpaca", models.llm.config().vocabSize);
    workload::RunConfig run;
    run.prompts = bench::benchPrompts();
    workload::TraceAggregator agg =
        workload::runEngineOnDataset(engine, dataset, run);
    return agg.profile(expansion);
}

} // namespace

int
main()
{
    const Setup setups[] = {
        {"LLaMA-7B (1 GPU/node, 1 node)", "llama-7b", "llama-7b-sim",
         2, "llama-68m", 1, {1, 1}},
        {"OPT-30B (4 GPUs/node, 1 node)", "opt-30b", "opt-30b-sim",
         3, "opt-125m", 1, {4, 1}},
        {"LLaMA-65B (4 GPUs/node, 2 nodes)", "llama-65b",
         "llama-65b-sim", 2, "llama-68m", 2, {4, 2}},
    };
    const size_t batch_sizes[] = {1, 2, 4, 8, 16};

    std::printf("== Figure 7: distributed inference per-token "
                "latency (ms), roofline model of the A10 testbed "
                "driven by measured speculation traces ==\n");

    for (const Setup &setup : setups) {
        bench::BenchModels models =
            bench::makeBenchModels(setup.simPreset, setup.ssmLayers);
        simulator::SpeculationProfile tree_profile = measureProfile(
            models, core::ExpansionConfig::paperDefault());
        simulator::SpeculationProfile seq_profile = measureProfile(
            models, core::ExpansionConfig::uniform(1, 8));

        simulator::SystemModel sim{simulator::GpuPerfModel(
            simulator::ClusterSpec::paperTestbed(setup.nodes))};

        std::printf("\n-- %s --\n", setup.label);
        std::printf("   measured traces: tree verifies %.2f "
                    "tokens/step (LLM decodes %.1f tokens/step), "
                    "sequence verifies %.2f tokens/step\n",
                    tree_profile.avgVerifiedPerIter,
                    tree_profile.avgLlmTokensPerIter,
                    seq_profile.avgVerifiedPerIter);

        util::Table table({"system", "BS=1", "BS=2", "BS=4", "BS=8",
                           "BS=16"});
        const bool multinode = setup.nodes > 1;
        double tree_lat[5] = {0}, best_incr[5] = {0};
        for (const simulator::NamedSystem &system :
             simulator::distributedSystems()) {
            const bool unsupported =
                multinode && (system.name == "vLLM" ||
                              system.name == "HuggingFace TGI");
            std::vector<std::string> row = {system.name};
            for (size_t b = 0; b < 5; ++b) {
                if (unsupported) {
                    // vLLM / TGI cannot serve across nodes (no
                    // pipeline parallelism), per §6.2.
                    row.push_back("n/a");
                    continue;
                }
                simulator::ServingScenario scenario;
                scenario.llm =
                    simulator::LlmSpec::preset(setup.llmSpec);
                scenario.ssm =
                    simulator::LlmSpec::preset(setup.ssmSpec);
                scenario.cluster =
                    simulator::ClusterSpec::paperTestbed(setup.nodes);
                scenario.plan = setup.plan;
                scenario.batchSize = batch_sizes[b];
                scenario.contextLen = 96.0;
                scenario.systemEfficiency = system.systemEfficiency;
                scenario.speculative = system.speculative;
                const simulator::SpeculationProfile &profile =
                    !system.speculative
                        ? simulator::SpeculationProfile::incremental()
                        : (system.treeSpeculation ? tree_profile
                                                  : seq_profile);
                double latency =
                    sim.perTokenLatency(scenario, profile) * 1.0e3;
                row.push_back(util::formatDouble(latency, 2));
                if (system.treeSpeculation)
                    tree_lat[b] = latency;
                else if (!system.speculative &&
                         (best_incr[b] == 0.0 ||
                          latency < best_incr[b]))
                    best_incr[b] = latency;
            }
            table.addRow(std::move(row));
        }
        std::printf("%s", table.toAscii().c_str());
        std::printf("speedup of tree-based SpecInfer over best "
                    "incremental baseline:");
        for (size_t b = 0; b < 5; ++b)
            std::printf(" BS=%zu: %.2fx", batch_sizes[b],
                        best_incr[b] / tree_lat[b]);
        std::printf("\n");
    }
    std::printf("\nPaper reference: SpecInfer outperforms "
                "incremental systems by 1.5-2.5x (single node) and "
                "2.4-2.8x (multi-node); the advantage shrinks as "
                "batch size grows.\n");
    return 0;
}
