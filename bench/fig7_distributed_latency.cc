/**
 * @file
 * Reproduces paper Figure 7: end-to-end per-token latency of
 * distributed LLM inference for vLLM, HuggingFace TGI,
 * FasterTransformer, and SpecInfer in incremental / sequence-based /
 * tree-based modes, across three model/cluster setups and batch
 * sizes 1-16.
 *
 * The speculation statistics driving the speculative systems are
 * measured from the real CPU engine (paper expansion config
 * <1,1,3,1,1,1,1,1>); the hardware latencies come from the roofline
 * cluster model of the A10 testbed (see DESIGN.md §2).
 */

#include <chrono>
#include <cstdio>
#include <cstring>

#include "bench_common.h"
#include "model/model_factory.h"
#include "obs/obs.h"
#include "simulator/system_model.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace specinfer;

struct Setup
{
    const char *label;
    const char *llmSpec;    // real-model spec for the perf model
    const char *simPreset;  // CPU-scale model for real traces
    size_t ssmLayers;
    const char *ssmSpec;
    size_t nodes;
    simulator::ParallelismPlan plan;
};

/**
 * Measured sharded execution: run the REAL tensor-parallel forward
 * path (src/parallel/ collectives over the thread pool) at degrees
 * 1/2/4/8 on a CPU-scale model, require the logits bit-identical to
 * tp=1 and the collective ledger EXACTLY equal to
 * GpuPerfModel::tensorParallelComm()'s prediction, and print the
 * measured latency next to the analytical model's communication
 * cost for the same plan on the A10 testbed.
 */
void
measuredShardedSection()
{
    model::ModelConfig cfg;
    cfg.name = "fig7-cpu";
    cfg.vocabSize = 256;
    cfg.dModel = 128;
    cfg.nHeads = 8;
    cfg.dFf = 256;
    cfg.nLayers = 4;
    cfg.maxSeqLen = 192;
    cfg.seed = 7;

    const size_t prefill_tokens = 32;
    const size_t tree_tokens = 16;
    const size_t repeats = 4;

    std::printf("\n== Measured sharded execution: real collectives "
                "on the CPU backend vs. the perf model's "
                "communication formula ==\n");
    std::printf("   model %zux(d=%zu, heads=%zu, ff=%zu), %zu-token "
                "prefill + %zu-token tree chunk, %zu rounds\n",
                cfg.nLayers, cfg.dModel, cfg.nHeads, cfg.dFf,
                prefill_tokens, tree_tokens, repeats);

    simulator::LlmSpec spec;
    spec.nLayers = cfg.nLayers;
    spec.hidden = cfg.dModel;
    spec.vocab = cfg.vocabSize;
    spec.bytesPerParam = 4.0; // fp32 activations on this backend
    const simulator::ClusterSpec cluster =
        simulator::ClusterSpec::paperTestbed(1);

    util::Table table({"tp", "measured ms/fwd", "allreduce calls",
                       "allreduce KB", "allgather KB",
                       "modeled comm us/iter"});
    tensor::Tensor reference;
    for (size_t tp : {1u, 2u, 4u, 8u}) {
        cfg.tensorParallel = tp;
        model::Transformer llm = model::makeLlm(cfg);

        obs::ObsContext ctx(&obs::SteadyClock::instance(),
                            /*tracing_enabled=*/false);
        obs::ObsContext *prev = obs::setGlobalObs(&ctx);
        const auto t0 = std::chrono::steady_clock::now();
        tensor::Tensor last;
        for (size_t rep = 0; rep < repeats; ++rep) {
            model::KvCache cache = llm.makeCache();
            util::Rng rng(17);
            std::vector<int> prompt;
            for (size_t i = 0; i < prefill_tokens; ++i)
                prompt.push_back(static_cast<int>(rng.uniformInt(
                    int64_t{1},
                    static_cast<int64_t>(cfg.vocabSize) - 1)));
            llm.forward(model::DecodeChunk::sequence(prompt), cache);
            model::DecodeChunk chunk;
            for (size_t i = 0; i < tree_tokens; ++i) {
                chunk.tokens.push_back(static_cast<int>(
                    rng.uniformInt(int64_t{1},
                                   static_cast<int64_t>(
                                       cfg.vocabSize) -
                                       1)));
                chunk.parents.push_back(
                    i == 0 ? -1
                           : static_cast<int32_t>(rng.uniformInt(
                                 static_cast<uint64_t>(i))));
            }
            last = llm.forward(chunk, cache);
        }
        const double ms_per_forward =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count() /
            static_cast<double>(2 * repeats);
        obs::setGlobalObs(prev);

        // Bit-identity across degrees — the acceptance gate.
        if (tp == 1) {
            reference = last;
        } else {
            SPECINFER_CHECK(
                reference.size() == last.size() &&
                    std::memcmp(reference.data(), last.data(),
                                last.size() * sizeof(float)) == 0,
                "sharded logits diverged from tp=1 at tp=" << tp);
        }

        // The measured ledger must EXACTLY match the model's
        // communication formula for the same shapes.
        simulator::ParallelismPlan plan;
        plan.tensorParallel = tp;
        double want_calls = 0.0, want_bytes = 0.0;
        for (size_t tokens : {prefill_tokens, tree_tokens}) {
            simulator::TpCommVolume vol =
                simulator::GpuPerfModel::tensorParallelComm(
                    spec, plan, static_cast<double>(tokens));
            want_calls +=
                static_cast<double>(repeats) * vol.allReduceCalls;
            want_bytes += static_cast<double>(repeats) *
                          vol.totalAllReduceBytes();
        }
        obs::MetricsSnapshot snap = ctx.metrics().snapshot();
        const obs::SnapshotCounter *calls =
            snap.findCounter("parallel_allreduce_calls");
        const obs::SnapshotCounter *bytes =
            snap.findCounter("parallel_allreduce_bytes");
        const obs::SnapshotCounter *ag_bytes =
            snap.findCounter("parallel_allgather_bytes");
        const uint64_t got_calls =
            calls != nullptr ? calls->value : 0;
        const uint64_t got_bytes =
            bytes != nullptr ? bytes->value : 0;
        const uint64_t got_ag_bytes =
            ag_bytes != nullptr ? ag_bytes->value : 0;
        SPECINFER_CHECK(
            got_calls == static_cast<uint64_t>(want_calls) &&
                got_bytes == static_cast<uint64_t>(want_bytes),
            "collective ledger diverged from the perf model at tp="
                << tp << ": measured " << got_calls << " calls/"
                << got_bytes << " bytes, modeled "
                << static_cast<uint64_t>(want_calls) << "/"
                << static_cast<uint64_t>(want_bytes));

        // The analytical cost of that communication on the A10
        // testbed (per decoding iteration of tree_tokens tokens).
        simulator::TpCommVolume iter_vol =
            simulator::GpuPerfModel::tensorParallelComm(
                spec, plan, static_cast<double>(tree_tokens));
        const simulator::InterconnectSpec &link = cluster.link;
        const double modeled_us =
            iter_vol.allReduceCalls *
            (link.intraNodeLatencyUs +
             iter_vol.bytesPerAllReduce /
                 (link.intraNodeGBps * 1.0e9) * 1.0e6);

        table.addRow(
            {std::to_string(tp), util::formatDouble(ms_per_forward, 3),
             std::to_string(got_calls),
             util::formatDouble(static_cast<double>(got_bytes) /
                                    1024.0, 1),
             util::formatDouble(static_cast<double>(got_ag_bytes) /
                                    1024.0, 1),
             util::formatDouble(modeled_us, 2)});
    }
    std::printf("%s", table.toAscii().c_str());
    std::printf("logits bit-identical at every degree; allreduce "
                "calls/bytes equal the model's 2*nLayers formula "
                "exactly (checked).\n");
}

simulator::SpeculationProfile
measureProfile(const bench::BenchModels &models,
               const core::ExpansionConfig &expansion)
{
    core::EngineConfig cfg = bench::benchEngineConfig(false,
                                                      expansion);
    core::SpecEngine engine(&models.llm, {&models.ssm}, cfg);
    workload::PromptDataset dataset = workload::PromptDataset::named(
        "Alpaca", models.llm.config().vocabSize);
    workload::RunConfig run;
    run.prompts = bench::benchPrompts();
    workload::TraceAggregator agg =
        workload::runEngineOnDataset(engine, dataset, run);
    return agg.profile(expansion);
}

} // namespace

int
main()
{
    const Setup setups[] = {
        {"LLaMA-7B (1 GPU/node, 1 node)", "llama-7b", "llama-7b-sim",
         2, "llama-68m", 1, {1, 1}},
        {"OPT-30B (4 GPUs/node, 1 node)", "opt-30b", "opt-30b-sim",
         3, "opt-125m", 1, {4, 1}},
        {"LLaMA-65B (4 GPUs/node, 2 nodes)", "llama-65b",
         "llama-65b-sim", 2, "llama-68m", 2, {4, 2}},
    };
    const size_t batch_sizes[] = {1, 2, 4, 8, 16};

    std::printf("== Figure 7: distributed inference per-token "
                "latency (ms), roofline model of the A10 testbed "
                "driven by measured speculation traces ==\n");

    for (const Setup &setup : setups) {
        bench::BenchModels models =
            bench::makeBenchModels(setup.simPreset, setup.ssmLayers);
        simulator::SpeculationProfile tree_profile = measureProfile(
            models, core::ExpansionConfig::paperDefault());
        simulator::SpeculationProfile seq_profile = measureProfile(
            models, core::ExpansionConfig::uniform(1, 8));

        simulator::SystemModel sim{simulator::GpuPerfModel(
            simulator::ClusterSpec::paperTestbed(setup.nodes))};

        std::printf("\n-- %s --\n", setup.label);
        std::printf("   measured traces: tree verifies %.2f "
                    "tokens/step (LLM decodes %.1f tokens/step), "
                    "sequence verifies %.2f tokens/step\n",
                    tree_profile.avgVerifiedPerIter,
                    tree_profile.avgLlmTokensPerIter,
                    seq_profile.avgVerifiedPerIter);

        util::Table table({"system", "BS=1", "BS=2", "BS=4", "BS=8",
                           "BS=16"});
        const bool multinode = setup.nodes > 1;
        double tree_lat[5] = {0}, best_incr[5] = {0};
        for (const simulator::NamedSystem &system :
             simulator::distributedSystems()) {
            const bool unsupported =
                multinode && (system.name == "vLLM" ||
                              system.name == "HuggingFace TGI");
            std::vector<std::string> row = {system.name};
            for (size_t b = 0; b < 5; ++b) {
                if (unsupported) {
                    // vLLM / TGI cannot serve across nodes (no
                    // pipeline parallelism), per §6.2.
                    row.push_back("n/a");
                    continue;
                }
                simulator::ServingScenario scenario;
                scenario.llm =
                    simulator::LlmSpec::preset(setup.llmSpec);
                scenario.ssm =
                    simulator::LlmSpec::preset(setup.ssmSpec);
                scenario.cluster =
                    simulator::ClusterSpec::paperTestbed(setup.nodes);
                scenario.plan = setup.plan;
                scenario.batchSize = batch_sizes[b];
                scenario.contextLen = 96.0;
                scenario.systemEfficiency = system.systemEfficiency;
                scenario.speculative = system.speculative;
                const simulator::SpeculationProfile &profile =
                    !system.speculative
                        ? simulator::SpeculationProfile::incremental()
                        : (system.treeSpeculation ? tree_profile
                                                  : seq_profile);
                double latency =
                    sim.perTokenLatency(scenario, profile) * 1.0e3;
                row.push_back(util::formatDouble(latency, 2));
                if (system.treeSpeculation)
                    tree_lat[b] = latency;
                else if (!system.speculative &&
                         (best_incr[b] == 0.0 ||
                          latency < best_incr[b]))
                    best_incr[b] = latency;
            }
            table.addRow(std::move(row));
        }
        std::printf("%s", table.toAscii().c_str());
        std::printf("speedup of tree-based SpecInfer over best "
                    "incremental baseline:");
        for (size_t b = 0; b < 5; ++b)
            std::printf(" BS=%zu: %.2fx", batch_sizes[b],
                        best_incr[b] / tree_lat[b]);
        std::printf("\n");
    }
    measuredShardedSection();
    std::printf("\nPaper reference: SpecInfer outperforms "
                "incremental systems by 1.5-2.5x (single node) and "
                "2.4-2.8x (multi-node); the advantage shrinks as "
                "batch size grows.\n");
    return 0;
}
