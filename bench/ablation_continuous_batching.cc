/**
 * @file
 * Ablation: Orca-style continuous batching (paper §5.1) versus
 * request-level static batching.
 *
 * Requests arrive over time (deterministic Poisson process) with
 * heterogeneous decode lengths (per-prompt speculative acceptance
 * varies); both policies serve the same trace. Continuous batching
 * admits new requests the moment a slot frees, improving queueing
 * delay and engine utilization. Iterations are the time unit (one
 * iteration = one LLM pass).
 */

#include <cstdio>

#include "bench_common.h"
#include "runtime/request_manager.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/arrivals.h"

int
main()
{
    using namespace specinfer;
    bench::BenchModels models = bench::makeBenchModels();
    core::EngineConfig cfg = bench::benchEngineConfig(
        false, core::ExpansionConfig::paperDefault());
    core::SpecEngine engine(&models.llm, {&models.ssm}, cfg);
    workload::PromptDataset dataset = workload::PromptDataset::named(
        "CIP", models.llm.config().vocabSize);

    const size_t requests = bench::benchPrompts() * 2;
    std::vector<size_t> arrivals =
        workload::poissonArrivals(requests, 2.0, 17);

    std::printf("== Ablation: continuous vs static batching (%zu "
                "requests, Poisson arrivals, batch 4) ==\n",
                requests);

    util::Table table({"policy", "makespan (iters)",
                       "queue p50/p95 (iters)",
                       "completion p50/p95 (iters)",
                       "avg batch occupancy"});
    for (int p = 0; p < 2; ++p) {
        runtime::ServingConfig serving;
        serving.maxBatchSize = 4;
        serving.policy = p == 0
                             ? runtime::SchedulingPolicy::Static
                             : runtime::SchedulingPolicy::Continuous;
        runtime::RequestManager manager(&engine, serving);

        size_t submitted = 0;
        while (submitted < requests || manager.busy()) {
            while (submitted < requests &&
                   arrivals[submitted] <= manager.iterationCount()) {
                manager.submit(dataset.prompt(submitted));
                ++submitted;
            }
            manager.runIteration();
        }

        std::vector<double> queue, completion;
        for (const runtime::RequestResult &res : manager.finished()) {
            queue.push_back(
                static_cast<double>(res.queueIterations()));
            completion.push_back(static_cast<double>(
                res.finishIteration - res.arrivalIteration + 1));
        }
        auto pair = [&](std::vector<double> &v) {
            return util::formatDouble(util::percentile(v, 50), 0) +
                   " / " +
                   util::formatDouble(util::percentile(v, 95), 0);
        };
        table.addRow(
            {p == 0 ? "static batching" : "continuous batching",
             std::to_string(manager.iterationCount()),
             pair(queue), pair(completion),
             util::formatDouble(manager.stats().avgBatchSize(), 2)});
    }
    std::printf("%s", table.toAscii().c_str());
    std::printf("\nContinuous batching keeps batch slots full, so "
                "queueing delay (especially the tail) and mean "
                "completion improve; this is the Orca scheduling "
                "SpecInfer adopts (§5.1).\n");
    return 0;
}
