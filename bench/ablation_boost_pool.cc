/**
 * @file
 * Ablation: merge-based speculation with a boost-tuned SSM pool
 * (paper §3) versus a single SSM.
 *
 * Stage 1 runs the boosting loop (select complementary SSMs by
 * coverage on an LLM-generated corpus, with the mark-and-filter
 * step). Stage 2 serves prompts end-to-end with the selected pool
 * (merged token trees) and with the best single SSM, reporting
 * verified tokens per step.
 */

#include <cstdio>

#include "bench_common.h"
#include "core/boost_tuning.h"
#include "util/table.h"

int
main()
{
    using namespace specinfer;
    model::Transformer llm =
        model::makeLlm(model::llmPreset("llama-7b-sim"));

    // Candidate family: early exits at several depths plus
    // head-noise variants (the trainable diversity the paper gets
    // from boost-tuning; DESIGN.md §2).
    std::vector<model::Transformer> family;
    family.push_back(model::makeEarlyExitSsm(llm, 2));
    family.push_back(model::makeEarlyExitSsm(llm, 3));
    family.push_back(model::makeEarlyExitSsm(llm, 2, 0.10f, 11));
    family.push_back(model::makeEarlyExitSsm(llm, 2, 0.10f, 22));
    family.push_back(model::makeEarlyExitSsm(llm, 1));
    std::vector<const model::Transformer *> candidates;
    for (const model::Transformer &ssm : family)
        candidates.push_back(&ssm);

    // Boost-tuning corpus from LLM trajectories.
    workload::PromptDataset dataset = workload::PromptDataset::named(
        "Alpaca", llm.config().vocabSize);
    std::vector<std::vector<int>> prompts;
    for (size_t i = 0; i < 4; ++i)
        prompts.push_back(dataset.prompt(100 + i));
    std::vector<core::BoostSample> corpus =
        core::buildBoostCorpus(llm, prompts, 12);
    auto agrees = core::agreementMatrix(candidates, corpus);

    std::printf("== Ablation: boost-tuned SSM pool vs single SSM "
                "==\n");
    std::printf("candidate family coverage on %zu corpus samples:\n",
                corpus.size());
    for (size_t c = 0; c < candidates.size(); ++c) {
        size_t hits = 0;
        for (bool a : agrees[c])
            hits += a;
        std::printf("  [%zu] %-26s %.0f%%\n", c,
                    candidates[c]->config().name.c_str(),
                    100.0 * static_cast<double>(hits) /
                        static_cast<double>(corpus.size()));
    }

    core::BoostConfig boost_cfg;
    boost_cfg.poolSize = 2;
    core::BoostResult boosted = core::boostSelect(agrees, boost_cfg);
    core::BoostConfig unfiltered_cfg = boost_cfg;
    unfiltered_cfg.filterCovered = false;
    core::BoostResult unfiltered =
        core::boostSelect(agrees, unfiltered_cfg);
    std::printf("\nboosted pool (size 2): {%zu, %zu} -> aggregate "
                "coverage %.0f%% (best single %.0f%%, "
                "top-2-without-filter %.0f%%)\n",
                boosted.selected[0], boosted.selected[1],
                100.0 * boosted.aggregateCoverage,
                100.0 * boosted.bestSingleCoverage,
                100.0 * unfiltered.aggregateCoverage);

    // End-to-end: serve prompts with single vs boosted pool.
    auto run = [&](std::vector<const model::Transformer *> ssms) {
        core::EngineConfig cfg = bench::benchEngineConfig(
            false, core::ExpansionConfig::paperDefault());
        core::SpecEngine engine(&llm, std::move(ssms), cfg);
        workload::RunConfig rc;
        rc.prompts = bench::benchPrompts();
        workload::TraceAggregator agg =
            workload::runEngineOnDataset(engine, dataset, rc);
        return agg;
    };
    workload::TraceAggregator single =
        run({candidates[boosted.selected[0]]});
    workload::TraceAggregator pool =
        run({candidates[boosted.selected[0]],
             candidates[boosted.selected[1]]});

    util::Table table({"speculator", "verified/step",
                       "LLM tokens/step", "SSM tokens/step"});
    table.addRow({"best single SSM",
                  util::formatDouble(single.avgVerifiedPerStep(), 2),
                  util::formatDouble(single.avgLlmTokensPerStep(), 1),
                  util::formatDouble(single.avgSsmTokensPerStep(),
                                     1)});
    table.addRow({"boosted pool (2 SSMs, merged trees)",
                  util::formatDouble(pool.avgVerifiedPerStep(), 2),
                  util::formatDouble(pool.avgLlmTokensPerStep(), 1),
                  util::formatDouble(pool.avgSsmTokensPerStep(), 1)});
    std::printf("\n%s", table.toAscii().c_str());
    std::printf("\nExpectation (paper §3): the merged pool verifies "
                "more tokens per step than any single SSM, at the "
                "cost of a larger verified tree. The paper runs the "
                "SSMs data-parallel so the extra SSM tokens do not "
                "add latency.\n");
    return 0;
}
