/**
 * @file
 * Reproduces paper Table 2: the average number of tokens verified by
 * SpecInfer per LLM decoding step as a function of token tree width,
 * for greedy and stochastic decoding over the five prompt datasets.
 * Expansion config is <1,1,k,1,1,1,1,1> (speculation length 8), as
 * in §6.4.
 */

#include <cstdio>

#include "bench_common.h"
#include "util/table.h"

int
main()
{
    using namespace specinfer;
    bench::BenchModels models = bench::makeBenchModels();

    std::printf("== Table 2: average tokens verified per decoding "
                "step vs. token tree width (speculation length 8) "
                "==\n");

    util::Table table({"decoding", "dataset", "w=1", "w=2", "w=3",
                       "w=4", "w=5"});
    for (int stochastic = 0; stochastic <= 1; ++stochastic) {
        for (const std::string &name :
             workload::PromptDataset::allNames()) {
            workload::PromptDataset dataset =
                workload::PromptDataset::named(
                    name, models.llm.config().vocabSize);
            std::vector<std::string> row = {
                stochastic ? "stochastic" : "greedy", name};
            for (size_t width = 1; width <= 5; ++width) {
                core::EngineConfig cfg = bench::benchEngineConfig(
                    stochastic != 0,
                    core::ExpansionConfig::widthAtThird(width));
                // Serve long prompts through chunked prefill, as a
                // batched deployment would; prefill-only iterations
                // are excluded from avgVerifiedPerStep, so the cell
                // stays the paper's per-decode-step metric.
                cfg.maxPrefillChunk = 32;
                core::SpecEngine engine(&models.llm, {&models.ssm},
                                        cfg);
                workload::RunConfig run;
                // Stochastic cells have high per-request variance;
                // double the sample count to stabilize them.
                run.prompts = bench::benchPrompts() *
                              (stochastic ? 2 : 1);
                workload::TraceAggregator agg =
                    workload::runEngineOnDataset(engine, dataset,
                                                 run);
                row.push_back(util::formatDouble(
                    agg.avgVerifiedPerStep(), 2));
            }
            table.addRow(std::move(row));
        }
    }
    std::printf("%s", table.toAscii().c_str());
    std::printf("\nPaper reference: greedy 2.18-2.95 (w=1) rising "
                "to 3.07-3.91 (w=5); stochastic 1.64-1.79 rising to "
                "2.21-2.38. Expect the same monotone rise in width "
                "and the same dataset ordering trends.\n");
    return 0;
}
