/**
 * @file
 * Reproduces paper Figure 11: tree-based parallel decoding vs. the
 * sequence-based decoding mechanism of existing systems.
 *
 * Two complementary measurements:
 *  1. Real kernel cost on this machine: wall-clock time to decode
 *     the same speculated token trees through (a) one fused
 *     tree-attention pass and (b) one pass per root-to-leaf
 *     sequence with cloned KV caches. This measures the actual
 *     redundant computation the topology-aware causal mask removes.
 *  2. The GPU-shape projection: feeding the measured redundancy
 *     (token-forwards and kernel launches) through the roofline
 *     model, which reproduces the paper's batch-size dependence
 *     (on-par at small BS where bandwidth hides extra compute, up
 *     to ~1.8x at large BS).
 */

#include <cstdio>

#include "bench_common.h"
#include "model/sequence_parallel.h"
#include "obs/clock.h"
#include "simulator/system_model.h"
#include "util/table.h"

namespace {

using namespace specinfer;

/** Injectable time source (obs::SteadyClock in this binary); the
 *  bench shares the serving stack's clock abstraction instead of
 *  calling std::chrono directly. */
const obs::Clock &
benchClock()
{
    return obs::SteadyClock::instance();
}

double
secondsSince(uint64_t start_nanos)
{
    return static_cast<double>(benchClock().nowNanos() -
                               start_nanos) *
           1.0e-9;
}

} // namespace

int
main()
{
    bench::BenchModels models = bench::makeBenchModels();
    const model::Transformer &llm = models.llm;
    const size_t batch_sizes[] = {1, 2, 4, 8, 16};
    const size_t prefix_len = 64;
    const size_t reps = bench::envSize("SPECINFER_BENCH_REPS", 4);

    std::printf("== Figure 11: tree-based vs sequence-based parallel "
                "decoding ==\n");

    // Build one realistic speculated tree per potential request via
    // the actual speculator (paper expansion config).
    core::SpeculatorConfig spec_cfg;
    spec_cfg.expansion = core::ExpansionConfig::paperDefault();
    spec_cfg.mode = core::SpeculationMode::TopK;
    spec_cfg.ssmSampling.temperature = 1.0f;
    core::Speculator speculator({&models.ssm}, spec_cfg);

    workload::PromptDataset dataset = workload::PromptDataset::named(
        "Alpaca", llm.config().vocabSize);
    util::Rng rng(11);

    const size_t max_bs = 16;
    std::vector<model::KvCache> caches;
    std::vector<model::DecodeChunk> chunks;
    double tree_tokens = 0.0;
    model::SequenceParallelStats redundancy_total;
    for (size_t r = 0; r < max_bs; ++r) {
        // Per-request prefix: dataset prompt padded to prefix_len.
        std::vector<int> prefix = dataset.prompt(r);
        while (prefix.size() < prefix_len)
            prefix.push_back(prefix[prefix.size() % 7] %
                             (static_cast<int>(
                                  llm.config().vocabSize) - 1) + 1);
        prefix.resize(prefix_len);

        model::KvCache cache = llm.makeCache();
        llm.forward(model::DecodeChunk::sequence(
                        {prefix.begin(), prefix.end() - 1}),
                    cache);
        auto ssm_caches = speculator.makeCaches(llm.config().maxSeqLen);
        core::TokenTree tree =
            speculator.speculate(prefix, ssm_caches, rng);
        chunks.push_back(tree.toChunk());
        tree_tokens += static_cast<double>(tree.size());
        caches.push_back(std::move(cache));
    }

    util::Table table({"BS", "tree ms/iter", "seq ms/iter",
                       "measured speedup", "kernels tree", "kernels seq",
                       "token-fwds tree", "token-fwds seq"});
    std::vector<double> redundancy_ratio(5, 1.0);
    std::vector<double> seq_kernels(5, 1.0);
    for (size_t b = 0; b < 5; ++b) {
        const size_t bs = batch_sizes[b];
        // Tree-based: one fused pass per request.
        double tree_s = 0.0, seq_s = 0.0;
        size_t tree_fwds = 0, seq_fwds = 0, seq_kern = 0;
        for (size_t rep = 0; rep < reps; ++rep) {
            uint64_t t0 = benchClock().nowNanos();
            for (size_t r = 0; r < bs; ++r) {
                size_t base = caches[r].length();
                llm.forward(chunks[r], caches[r]);
                caches[r].truncate(base);
            }
            tree_s += secondsSince(t0);
            t0 = benchClock().nowNanos();
            for (size_t r = 0; r < bs; ++r) {
                size_t base = caches[r].length();
                model::SequenceParallelStats stats;
                model::sequenceParallelDecode(llm, chunks[r],
                                              caches[r], &stats);
                caches[r].truncate(base);
                if (rep == 0) {
                    seq_fwds += stats.tokensComputed;
                    seq_kern += stats.sequences;
                    tree_fwds += chunks[r].size();
                }
            }
            seq_s += secondsSince(t0);
        }
        double tree_ms = tree_s / static_cast<double>(reps) * 1e3;
        double seq_ms = seq_s / static_cast<double>(reps) * 1e3;
        redundancy_ratio[b] = static_cast<double>(seq_fwds) /
                              static_cast<double>(tree_fwds);
        seq_kernels[b] = static_cast<double>(seq_kern) /
                         static_cast<double>(bs);
        table.addRow({std::to_string(bs),
                      util::formatDouble(tree_ms, 2),
                      util::formatDouble(seq_ms, 2),
                      util::formatDouble(seq_ms / tree_ms, 2) + "x",
                      std::to_string(bs),
                      std::to_string(seq_kern),
                      std::to_string(tree_fwds),
                      std::to_string(seq_fwds)});
    }
    std::printf("-- measured CPU kernel cost (per batch iteration; "
                "CPU executes serially, so the redundancy shows at "
                "every batch size) --\n");
    std::printf("%s", table.toAscii().c_str());

    // GPU-shape projection through the roofline model.
    std::printf("\n-- roofline projection on one A10 (per-token "
                "latency, ms): bandwidth hides redundant compute at "
                "small BS; divergence appears as BS grows --\n");
    simulator::GpuPerfModel perf(
        simulator::ClusterSpec::paperTestbed(1));
    const simulator::LlmSpec spec =
        simulator::LlmSpec::preset("llama-7b");
    const double tokens_per_req = tree_tokens / max_bs;
    util::Table gpu({"BS", "tree-based", "sequence-based",
                     "speedup"});
    for (size_t b = 0; b < 5; ++b) {
        simulator::IterationWorkload tree_work;
        tree_work.requests = batch_sizes[b];
        tree_work.tokensPerRequest = tokens_per_req;
        tree_work.contextLen = 96.0;
        double tree_t = perf.iterationTime(spec, {1, 1}, tree_work);

        simulator::IterationWorkload seq_work = tree_work;
        seq_work.tokensPerRequest =
            tokens_per_req * redundancy_ratio[b];
        double seq_t = perf.iterationTime(spec, {1, 1}, seq_work);
        // One kernel per sequence per request instead of one fused
        // kernel per request: the extra launches serialize on the
        // GPU command queue.
        seq_t += (seq_kernels[b] - 1.0) *
                 static_cast<double>(batch_sizes[b]) *
                 static_cast<double>(spec.nLayers) *
                 perf.cluster().gpu.perLayerOverheadUs * 1.0e-6;

        gpu.addRow({std::to_string(batch_sizes[b]),
                    util::formatDouble(tree_t * 1e3, 2),
                    util::formatDouble(seq_t * 1e3, 2),
                    util::formatDouble(seq_t / tree_t, 2) + "x"});
    }
    std::printf("%s", gpu.toAscii().c_str());
    std::printf("\nPaper reference: on-par for small batch sizes, "
                "up to 1.8x faster for large batch sizes.\n");
    return 0;
}
