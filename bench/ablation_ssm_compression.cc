/**
 * @file
 * Ablation: SSM compression modes and speculation quality.
 *
 * The paper's SSMs are "distilled, quantized, and/or pruned
 * variants of an LLM" (§1), 100-1000x smaller so that hosting them
 * adds <1% memory. This harness measures how each compression axis
 * (early-exit depth, weight quantization, magnitude pruning) trades
 * SSM quality against speculation performance, end to end.
 *
 * The two int8 arms are the fake/real contrast: "int8 (fake-quant)"
 * rounds weights onto the 8-bit grid but still runs float GEMMs;
 * "int8 (real)" stores the same grid as integers and runs the
 * integer AVX2 kernels. They draft from bit-identical weights, so
 * accept rates land within noise of each other — not exactly equal,
 * because the integer forward rounds activations and accumulates
 * differently, which can flip near-tie argmaxes in the draft.
 */

#include <chrono>
#include <cstdio>
#include <functional>

#include "bench_common.h"
#include "util/table.h"

int
main()
{
    using namespace specinfer;
    bench::BenchModels base = bench::makeBenchModels();
    const model::Transformer &llm = base.llm;

    struct Variant
    {
        std::string label;
        model::Transformer ssm;
    };
    std::vector<Variant> variants;
    variants.push_back({"early-exit 2 (fp32)",
                        model::makeEarlyExitSsm(llm, 2)});
    variants.push_back({"early-exit 1 (fp32)",
                        model::makeEarlyExitSsm(llm, 1)});
    variants.push_back({"early-exit 2, int8 (fake-quant)",
                        model::makeQuantizedSsm(llm, 2, 8)});
    variants.push_back({"early-exit 2, int8 (real)",
                        model::makeInt8Ssm(llm, 2)});
    variants.push_back({"early-exit 2, int4",
                        model::makeQuantizedSsm(llm, 2, 4)});
    variants.push_back({"early-exit 2, int3",
                        model::makeQuantizedSsm(llm, 2, 3)});
    variants.push_back({"early-exit 2, 50% pruned",
                        model::makePrunedSsm(llm, 2, 0.5)});
    variants.push_back({"early-exit 2, 80% pruned",
                        model::makePrunedSsm(llm, 2, 0.8)});

    workload::PromptDataset dataset = workload::PromptDataset::named(
        "Alpaca", llm.config().vocabSize);

    std::printf("== Ablation: SSM compression vs speculation "
                "quality (greedy, paper expansion config) ==\n");
    util::Table table({"SSM variant", "verified/step",
                       "LLM steps saved vs incremental",
                       "wall ms"});
    for (const Variant &v : variants) {
        core::EngineConfig cfg = bench::benchEngineConfig(
            false, core::ExpansionConfig::paperDefault());
        core::SpecEngine engine(&llm, {&v.ssm}, cfg);
        workload::RunConfig run;
        run.prompts = bench::benchPrompts();
        const auto t0 = std::chrono::steady_clock::now();
        workload::TraceAggregator agg =
            workload::runEngineOnDataset(engine, dataset, run);
        const double wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        table.addRow(
            {v.label,
             util::formatDouble(agg.avgVerifiedPerStep(), 2),
             util::formatDouble(agg.avgVerifiedPerStep(), 2) + "x",
             util::formatDouble(wall_ms, 1)});
    }
    std::printf("%s", table.toAscii().c_str());
    std::printf("\nSpeculation quality degrades gracefully with "
                "compression: int8 is nearly free (the real-int8 arm "
                "drafts from the fake-quant arm's exact weight grid, "
                "its accept rate within noise of it), aggressive "
                "quantization/pruning costs acceptance but never "
                "correctness (greedy output is lossless for any "
                "SSM).\n");
    return 0;
}
