/**
 * @file
 * Google-benchmark microbenchmarks for the kernels behind tree-based
 * parallel decoding: the linear-layer matvec, softmax, RoPE, fused
 * tree-attention forward vs. per-sequence decoding, and KV-cache
 * compaction.
 */

#include <benchmark/benchmark.h>

#include "model/model_factory.h"
#include "model/sequence_parallel.h"
#include "tensor/ops.h"
#include "util/rng.h"
#include "util/threadpool.h"

namespace {

using namespace specinfer;

/**
 * Batched linear layer as one GEMM call: out[m x n] = act[m x k] *
 * w[n x k]^T. This is the shape of every projection in the batched
 * tree-attention forward path (m = token-tree size).
 */
void
BM_BatchedGemmTransposedB(benchmark::State &state)
{
    const size_t m = static_cast<size_t>(state.range(0));
    const size_t k = static_cast<size_t>(state.range(1));
    const size_t n = static_cast<size_t>(state.range(2));
    tensor::Tensor act(m, k), w(n, k), out(m, n);
    util::Rng rng(7);
    for (size_t i = 0; i < act.size(); ++i)
        act.data()[i] = static_cast<float>(rng.normal());
    for (size_t i = 0; i < w.size(); ++i)
        w.data()[i] = static_cast<float>(rng.normal());
    for (auto _ : state) {
        tensor::matmulTransposedB(act, w, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(m * k * n));
}
BENCHMARK(BM_BatchedGemmTransposedB)
    ->Args({16, 64, 512})
    ->Args({16, 64, 176})
    ->Args({64, 64, 512});

/**
 * The int8 tile at identical shapes, both operands pre-quantized:
 * the pure integer-GEMM vs float-GEMM comparison. The >= 2x
 * single-thread bar over BM_BatchedGemmTransposedB at equal Args
 * reads straight out of this pair in BENCH_kernels.json.
 */
void
BM_Int8GemmTransposedB(benchmark::State &state)
{
    const size_t m = static_cast<size_t>(state.range(0));
    const size_t k = static_cast<size_t>(state.range(1));
    const size_t n = static_cast<size_t>(state.range(2));
    tensor::Tensor act(m, k), w(n, k), out(m, n);
    util::Rng rng(7);
    for (size_t i = 0; i < act.size(); ++i)
        act.data()[i] = static_cast<float>(rng.normal());
    for (size_t i = 0; i < w.size(); ++i)
        w.data()[i] = static_cast<float>(rng.normal());
    tensor::QTensor qw, qact;
    tensor::quantizeRows(w, qw);
    tensor::quantizeRows(act, qact);
    for (auto _ : state) {
        tensor::matmulTransposedB(qact, qw, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(m * k * n));
}
BENCHMARK(BM_Int8GemmTransposedB)
    ->Args({16, 64, 512})
    ->Args({16, 64, 176})
    ->Args({64, 64, 512});

/**
 * What Transformer::forward actually pays per projection: per-row
 * activation quantization inside the timed loop (weights are
 * quantized once at load), then the integer GEMM.
 */
void
BM_Int8GemmWithActQuant(benchmark::State &state)
{
    const size_t m = static_cast<size_t>(state.range(0));
    const size_t k = static_cast<size_t>(state.range(1));
    const size_t n = static_cast<size_t>(state.range(2));
    tensor::Tensor act(m, k), w(n, k), out(m, n);
    util::Rng rng(7);
    for (size_t i = 0; i < act.size(); ++i)
        act.data()[i] = static_cast<float>(rng.normal());
    for (size_t i = 0; i < w.size(); ++i)
        w.data()[i] = static_cast<float>(rng.normal());
    tensor::QTensor qw, qact;
    tensor::quantizeRows(w, qw);
    for (auto _ : state) {
        tensor::quantizeRows(act, qact);
        tensor::matmulTransposedB(qact, qw, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(m * k * n));
}
BENCHMARK(BM_Int8GemmWithActQuant)
    ->Args({16, 64, 512})
    ->Args({16, 64, 176})
    ->Args({64, 64, 512});

/** Per-row activation quantization alone (the int8 path's tax). */
void
BM_QuantizeRows(benchmark::State &state)
{
    const size_t m = static_cast<size_t>(state.range(0));
    const size_t k = static_cast<size_t>(state.range(1));
    tensor::Tensor act(m, k);
    util::Rng rng(7);
    for (size_t i = 0; i < act.size(); ++i)
        act.data()[i] = static_cast<float>(rng.normal());
    tensor::QTensor q;
    for (auto _ : state) {
        tensor::quantizeRows(act, q);
        benchmark::DoNotOptimize(q.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(m * k));
}
BENCHMARK(BM_QuantizeRows)->Args({16, 64})->Args({64, 64});

/**
 * The same batched linear computed the scalar way: one matvec sweep
 * per activation row, exactly how the pre-batching forward path
 * walked a chunk token by token.
 */
void
BM_ScalarMatvecLoop(benchmark::State &state)
{
    const size_t m = static_cast<size_t>(state.range(0));
    const size_t k = static_cast<size_t>(state.range(1));
    const size_t n = static_cast<size_t>(state.range(2));
    tensor::Tensor act(m, k), w(n, k), out(m, n);
    util::Rng rng(7);
    for (size_t i = 0; i < act.size(); ++i)
        act.data()[i] = static_cast<float>(rng.normal());
    for (size_t i = 0; i < w.size(); ++i)
        w.data()[i] = static_cast<float>(rng.normal());
    for (auto _ : state) {
        for (size_t i = 0; i < m; ++i)
            tensor::matvecTransposed(act.row(i), w, out.row(i));
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(m * k * n));
}
BENCHMARK(BM_ScalarMatvecLoop)
    ->Args({16, 64, 512})
    ->Args({16, 64, 176})
    ->Args({64, 64, 512});

void
BM_MatvecTransposed(benchmark::State &state)
{
    const size_t dim = static_cast<size_t>(state.range(0));
    tensor::Tensor w(dim, dim);
    std::vector<float> x(dim, 0.5f), out(dim);
    util::Rng rng(1);
    for (size_t i = 0; i < w.size(); ++i)
        w.data()[i] = static_cast<float>(rng.normal());
    for (auto _ : state) {
        tensor::matvecTransposed(x.data(), w, out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(dim * dim));
}
BENCHMARK(BM_MatvecTransposed)->Arg(64)->Arg(128)->Arg(256);

void
BM_SoftmaxRow(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    std::vector<float> row(n, 1.0f);
    for (auto _ : state) {
        tensor::softmaxRow(row.data(), n);
        benchmark::DoNotOptimize(row.data());
    }
}
BENCHMARK(BM_SoftmaxRow)->Arg(512)->Arg(2048);

void
BM_RopeRow(benchmark::State &state)
{
    std::vector<float> row(64, 0.3f);
    size_t pos = 0;
    for (auto _ : state) {
        tensor::ropeRow(row.data(), 4, 16, pos++);
        benchmark::DoNotOptimize(row.data());
    }
}
BENCHMARK(BM_RopeRow);

model::Transformer &
benchLlm()
{
    static model::Transformer llm =
        model::makeLlm(model::llmPreset("llama-7b-sim"));
    return llm;
}

/** Balanced binary token tree chunk of the given size. */
model::DecodeChunk
treeChunk(size_t nodes)
{
    model::DecodeChunk chunk;
    for (size_t i = 0; i < nodes; ++i) {
        chunk.tokens.push_back(static_cast<int>(i % 50 + 1));
        chunk.parents.push_back(
            i == 0 ? -1 : static_cast<int32_t>((i - 1) / 2));
    }
    return chunk;
}

void
BM_TreeParallelDecode(benchmark::State &state)
{
    model::Transformer &llm = benchLlm();
    model::KvCache cache = llm.makeCache();
    util::Rng rng(3);
    std::vector<int> prefix;
    for (int i = 0; i < 64; ++i)
        prefix.push_back(static_cast<int>(
            rng.uniformInt(int64_t{1}, int64_t{400})));
    llm.forward(model::DecodeChunk::sequence(prefix), cache);
    model::DecodeChunk chunk =
        treeChunk(static_cast<size_t>(state.range(0)));
    const size_t base = cache.length();
    for (auto _ : state) {
        tensor::Tensor logits = llm.forward(chunk, cache);
        benchmark::DoNotOptimize(logits.data());
        cache.truncate(base);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        state.range(0));
}
BENCHMARK(BM_TreeParallelDecode)->Arg(7)->Arg(15);

/**
 * The whole-chunk forward pass over an m-token tree against a cached
 * prefix — the verifier's hot loop. This is the headline before/after
 * number for the batched (GEMM-ified) forward path; scripts/
 * bench_json.sh records it into BENCH_kernels.json per git rev.
 */
void
BM_BatchedTreeForward(benchmark::State &state)
{
    model::Transformer &llm = benchLlm();
    model::KvCache cache = llm.makeCache();
    util::Rng rng(3);
    std::vector<int> prefix;
    for (int i = 0; i < 64; ++i)
        prefix.push_back(static_cast<int>(
            rng.uniformInt(int64_t{1}, int64_t{400})));
    llm.forward(model::DecodeChunk::sequence(prefix), cache);
    model::DecodeChunk chunk =
        treeChunk(static_cast<size_t>(state.range(0)));
    const size_t base = cache.length();
    for (auto _ : state) {
        tensor::Tensor logits = llm.forward(chunk, cache);
        benchmark::DoNotOptimize(logits.data());
        cache.truncate(base);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        state.range(0));
}
BENCHMARK(BM_BatchedTreeForward)->Arg(16)->Arg(32)->Arg(64);

/**
 * Thread-scaling sweep of the batched forward: same workload as
 * BM_BatchedTreeForward (m = 32), with the global pool resized to
 * the argument. Logits are bit-identical at every thread count —
 * only the wall clock moves. On a single-core host the >1 settings
 * measure oversubscription overhead rather than speedup.
 */
void
BM_BatchedTreeForwardThreads(benchmark::State &state)
{
    const size_t threads = static_cast<size_t>(state.range(0));
    util::ThreadPool &pool = util::ThreadPool::global();
    const size_t restore = pool.threads();
    pool.setThreads(threads);
    model::Transformer &llm = benchLlm();
    model::KvCache cache = llm.makeCache();
    util::Rng rng(3);
    std::vector<int> prefix;
    for (int i = 0; i < 64; ++i)
        prefix.push_back(static_cast<int>(
            rng.uniformInt(int64_t{1}, int64_t{400})));
    llm.forward(model::DecodeChunk::sequence(prefix), cache);
    model::DecodeChunk chunk = treeChunk(32);
    const size_t base = cache.length();
    for (auto _ : state) {
        tensor::Tensor logits = llm.forward(chunk, cache);
        benchmark::DoNotOptimize(logits.data());
        cache.truncate(base);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * 32);
    pool.setThreads(restore);
}
BENCHMARK(BM_BatchedTreeForwardThreads)->Arg(1)->Arg(2)->Arg(4);

void
BM_SequenceParallelDecode(benchmark::State &state)
{
    model::Transformer &llm = benchLlm();
    model::KvCache cache = llm.makeCache();
    util::Rng rng(3);
    std::vector<int> prefix;
    for (int i = 0; i < 64; ++i)
        prefix.push_back(static_cast<int>(
            rng.uniformInt(int64_t{1}, int64_t{400})));
    llm.forward(model::DecodeChunk::sequence(prefix), cache);
    model::DecodeChunk chunk =
        treeChunk(static_cast<size_t>(state.range(0)));
    const size_t base = cache.length();
    for (auto _ : state) {
        tensor::Tensor logits =
            model::sequenceParallelDecode(llm, chunk, cache);
        benchmark::DoNotOptimize(logits.data());
        cache.truncate(base);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        state.range(0));
}
BENCHMARK(BM_SequenceParallelDecode)->Arg(7)->Arg(15);

void
BM_KvCacheKeepRows(benchmark::State &state)
{
    model::KvCache cache(8, 64, 256);
    cache.allocate(200);
    std::vector<size_t> keep;
    for (size_t s = 0; s < 180; ++s)
        keep.push_back(s);
    keep.push_back(190);
    keep.push_back(195);
    for (auto _ : state) {
        model::KvCache scratch = cache.clone();
        scratch.keepRows(keep);
        benchmark::DoNotOptimize(scratch.length());
    }
}
BENCHMARK(BM_KvCacheKeepRows);

} // namespace

BENCHMARK_MAIN();
