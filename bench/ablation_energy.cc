/**
 * @file
 * Ablation: energy per generated token (paper §2 argues reduced
 * accesses to LLM parameters translate directly into energy
 * savings, since HBM reads cost orders of magnitude more than
 * arithmetic). Prices incremental vs sequence-based vs tree-based
 * speculation, in-memory and offloaded, through the energy model.
 */

#include <cstdio>

#include "bench_common.h"
#include "simulator/system_model.h"
#include "util/table.h"

int
main()
{
    using namespace specinfer;
    bench::BenchModels models = bench::makeBenchModels();

    // Profiles from real traces.
    auto measure = [&](core::ExpansionConfig expansion) {
        core::EngineConfig cfg =
            bench::benchEngineConfig(false, expansion);
        core::SpecEngine engine(&models.llm, {&models.ssm}, cfg);
        workload::PromptDataset dataset =
            workload::PromptDataset::named(
                "Alpaca", models.llm.config().vocabSize);
        workload::RunConfig run;
        run.prompts = bench::benchPrompts();
        return workload::runEngineOnDataset(engine, dataset, run)
            .profile(expansion);
    };
    simulator::SpeculationProfile tree =
        measure(core::ExpansionConfig::paperDefault());
    simulator::SpeculationProfile seq =
        measure(core::ExpansionConfig::uniform(1, 8));

    simulator::SystemModel sim{simulator::GpuPerfModel(
        simulator::ClusterSpec::paperTestbed(1))};

    std::printf("== Ablation: energy per generated token (mJ), "
                "LLaMA-7B on one A10, BS=1 ==\n");
    util::Table table({"mode", "in-memory", "offloaded"});
    struct Row
    {
        const char *label;
        bool speculative;
        const simulator::SpeculationProfile *profile;
    };
    simulator::SpeculationProfile incr =
        simulator::SpeculationProfile::incremental();
    const Row rows[] = {
        {"incremental decoding", false, &incr},
        {"sequence-based speculation", true, &seq},
        {"tree-based speculation", true, &tree},
    };
    double incr_mem = 0.0, tree_mem = 0.0;
    for (const Row &row : rows) {
        simulator::ServingScenario scenario;
        scenario.llm = simulator::LlmSpec::preset("llama-7b");
        scenario.ssm = simulator::LlmSpec::preset("llama-68m");
        scenario.plan = {1, 1};
        scenario.batchSize = 1;
        scenario.contextLen = 96.0;
        scenario.speculative = row.speculative;
        double mem =
            sim.energyPerToken(scenario, *row.profile) * 1e3;
        scenario.placement = simulator::Placement::Offloaded;
        double off =
            sim.energyPerToken(scenario, *row.profile) * 1e3;
        table.addRow({row.label, util::formatDouble(mem, 1),
                      util::formatDouble(off, 1)});
        if (!row.speculative)
            incr_mem = mem;
        else if (row.profile == &tree)
            tree_mem = mem;
    }
    std::printf("%s", table.toAscii().c_str());
    std::printf("\ntree-based speculation reduces in-memory energy "
                "per token by %.2fx (weight reads amortized over "
                "%.2f verified tokens per step).\n",
                incr_mem / tree_mem, tree.avgVerifiedPerIter);
    return 0;
}
