/**
 * @file
 * Shared setup for the per-table/per-figure benchmark harnesses.
 *
 * Every harness prints the same rows the corresponding paper table
 * or figure reports. Sizes can be scaled via environment variables:
 *   SPECINFER_BENCH_PROMPTS  prompts per dataset cell (default 8)
 *   SPECINFER_BENCH_TOKENS   generated tokens per prompt (default 32)
 */

#ifndef SPECINFER_BENCH_BENCH_COMMON_H
#define SPECINFER_BENCH_BENCH_COMMON_H

#include <cstdlib>
#include <string>

#include "core/spec_engine.h"
#include "model/model_factory.h"
#include "workload/datasets.h"
#include "workload/trace.h"

namespace specinfer {
namespace bench {

/** Read a positive integer from the environment, with default. */
inline size_t
envSize(const char *name, size_t def)
{
    const char *value = std::getenv(name);
    if (value == nullptr)
        return def;
    long parsed = std::atol(value);
    return parsed > 0 ? static_cast<size_t>(parsed) : def;
}

inline size_t
benchPrompts()
{
    return envSize("SPECINFER_BENCH_PROMPTS", 8);
}

inline size_t
benchTokens()
{
    return envSize("SPECINFER_BENCH_TOKENS", 32);
}

/** An LLM and its early-exit SSM, as used across all benches. */
struct BenchModels
{
    model::Transformer llm;
    model::Transformer ssm;
};

/** Build the default evaluation pair (DESIGN.md §2 substitution). */
inline BenchModels
makeBenchModels(const std::string &preset = "llama-7b-sim",
                size_t ssm_layers = 2)
{
    model::Transformer llm = model::makeLlm(model::llmPreset(preset));
    model::Transformer ssm = model::makeEarlyExitSsm(llm, ssm_layers);
    return {std::move(llm), std::move(ssm)};
}

/** Engine config used by the end-to-end benches. */
inline core::EngineConfig
benchEngineConfig(bool stochastic, core::ExpansionConfig expansion)
{
    core::EngineConfig cfg =
        stochastic ? core::EngineConfig::stochasticDefault(1.0f)
                   : core::EngineConfig::greedyDefault();
    cfg.spec.expansion = std::move(expansion);
    cfg.maxNewTokens = benchTokens();
    cfg.stopAtEos = false; // fixed-length generation, as in §6.2
    return cfg;
}

} // namespace bench
} // namespace specinfer

#endif // SPECINFER_BENCH_BENCH_COMMON_H
