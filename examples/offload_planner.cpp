/**
 * @file
 * Capacity-planning example: use the hardware performance model to
 * answer "how should I serve this model on this cluster, and what
 * does speculation buy me?" — the workflow behind the paper's §5.4
 * deployment scenarios. Checks memory fit, picks a parallelism
 * plan, and prices incremental vs. tree-speculative serving both
 * in-memory and offloaded.
 *
 * Run: ./examples/offload_planner [model]   (default: opt-30b)
 */

#include <cstdio>
#include <string>

#include "simulator/system_model.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace specinfer;
    const std::string model_name = argc > 1 ? argv[1] : "opt-30b";
    simulator::LlmSpec llm = simulator::LlmSpec::preset(model_name);

    std::printf("planning deployment for %s (%.1fB params, "
                "%.1f GB in fp16)\n\n",
                llm.name.c_str(), llm.nParams / 1e9,
                llm.paramBytes() / 1e9);

    // 1. Find the smallest parallelism plan that fits in HBM.
    simulator::ClusterSpec cluster =
        simulator::ClusterSpec::paperTestbed(2);
    simulator::GpuPerfModel perf(cluster);
    simulator::ParallelismPlan plan{1, 1};
    const simulator::ParallelismPlan candidates[] = {
        {1, 1}, {2, 1}, {4, 1}, {4, 2},
    };
    bool fits = false;
    for (const simulator::ParallelismPlan &cand : candidates) {
        if (perf.fitsInMemory(llm, cand)) {
            plan = cand;
            fits = true;
            break;
        }
    }
    if (fits)
        std::printf("smallest in-memory plan: tensor parallel %zu, "
                    "pipeline parallel %zu (%zu GPUs)\n",
                    plan.tensorParallel, plan.pipelineParallel,
                    plan.totalGpus());
    else
        std::printf("model does not fit on the cluster in HBM; "
                    "offloading is the only option\n");

    // 2. Price the serving options. A representative speculation
    //    profile (the paper's expansion config with ~3 verified
    //    tokens per step) prices the speculative rows; run the
    //    fig7/fig8 benches to derive profiles from real traces.
    simulator::SpeculationProfile tree;
    tree.avgLlmTokensPerIter = 21.0;
    tree.avgVerifiedPerIter = 2.8;
    tree.ssmChunkSizes = {3, 1, 1, 3, 3, 3, 3, 3, 3};

    simulator::SystemModel sim{perf};
    util::Table table({"configuration", "per-token latency (ms)",
                       "tokens/s/request"});
    auto add_row = [&](const char *label,
                       const simulator::ServingScenario &scenario,
                       const simulator::SpeculationProfile &prof) {
        double lat = sim.perTokenLatency(scenario, prof);
        table.addRow({label, util::formatDouble(lat * 1e3, 2),
                      util::formatDouble(1.0 / lat, 1)});
    };

    simulator::ServingScenario base;
    base.llm = llm;
    base.ssm = simulator::LlmSpec::preset(
        model_name.rfind("opt", 0) == 0 ? "opt-125m" : "llama-68m");
    base.cluster = cluster;
    base.batchSize = 1;
    base.contextLen = 128.0;

    if (fits) {
        simulator::ServingScenario incr = base;
        incr.plan = plan;
        add_row("in-memory, incremental", incr,
                simulator::SpeculationProfile::incremental());
        simulator::ServingScenario spec = incr;
        spec.speculative = true;
        add_row("in-memory, tree speculation", spec, tree);
    }
    simulator::ServingScenario off = base;
    off.plan = {1, 1};
    off.placement = simulator::Placement::Offloaded;
    add_row("offloaded (1 GPU), incremental", off,
            simulator::SpeculationProfile::incremental());
    simulator::ServingScenario off_spec = off;
    off_spec.speculative = true;
    add_row("offloaded (1 GPU), tree speculation", off_spec, tree);

    std::printf("\n%s", table.toAscii().c_str());
    std::printf("\nSpeculation pays off most where decoding is most "
                "bandwidth-bound: the offloaded rows improve by "
                "nearly the full verified-tokens-per-step factor.\n");
    return 0;
}
