/**
 * @file
 * Token-tree anatomy: build a speculated token tree step by step,
 * print its structure, decode it with tree attention, and show how
 * greedy verification walks it — making the core data structures of
 * the paper (Definitions 3.1, 3.2, 4.1) visible.
 *
 * Run: ./examples/tree_visualizer
 */

#include <cstdio>

#include "core/speculator.h"
#include "core/verifier.h"
#include "model/model_factory.h"
#include "workload/datasets.h"

int
main()
{
    using namespace specinfer;

    model::Transformer llm =
        model::makeLlm(model::llmPreset("llama-7b-sim"));
    model::Transformer ssm_a = model::makeEarlyExitSsm(llm, 2);
    model::Transformer ssm_b =
        model::makeEarlyExitSsm(llm, 2, 0.15f, 42);

    workload::PromptDataset dataset = workload::PromptDataset::named(
        "WebQA", llm.config().vocabSize);
    std::vector<int> prompt = dataset.prompt(3);

    // --- Expansion-based construction from a single SSM.
    core::SpeculatorConfig cfg;
    cfg.expansion = {{2, 2, 1}};
    cfg.mode = core::SpeculationMode::TopK;
    cfg.ssmSampling.temperature = 1.0f;
    core::Speculator single({&ssm_a}, cfg);
    auto caches = single.makeCaches(llm.config().maxSeqLen);
    util::Rng rng(7);
    core::TokenTree tree = single.speculate(prompt, caches, rng);
    std::printf("expansion-based token tree from %s, config %s:\n%s\n",
                ssm_a.config().name.c_str(),
                cfg.expansion.toString().c_str(),
                tree.toAscii().c_str());

    // --- Merge-based construction across two diverse SSMs
    //     (Definition 3.2).
    core::Speculator pool({&ssm_a, &ssm_b}, cfg);
    auto pool_caches = pool.makeCaches(llm.config().maxSeqLen);
    core::TokenTree merged = pool.speculate(prompt, pool_caches, rng);
    std::printf("merged token tree from 2 SSMs (%zu nodes vs %zu "
                "from one SSM):\n%s\n",
                merged.size(), tree.size(), merged.toAscii().c_str());

    // --- Tree-based parallel decoding + greedy verification.
    model::KvCache cache = llm.makeCache();
    if (prompt.size() > 1)
        llm.forward(model::DecodeChunk::sequence(
                        {prompt.begin(), prompt.end() - 1}),
                    cache);
    tensor::Tensor logits = llm.forward(merged.toChunk(), cache);

    model::SamplingParams greedy;
    greedy.temperature = 0.0f;
    core::Verifier verifier(core::VerifyMode::Greedy, greedy);
    core::VerifyResult verdict = verifier.verify(merged, logits, rng);

    std::printf("greedy verification walk:\n");
    core::NodeId u = core::TokenTree::kRoot;
    for (core::NodeId v : verdict.acceptedNodes) {
        std::printf("  node %d (t%d) -> accepted child node %d "
                    "(t%d)\n",
                    u, merged.node(u).token, v,
                    merged.node(v).token);
        u = v;
    }
    std::printf("  bonus token from the LLM at node %d: t%d\n", u,
                verdict.bonusToken);
    std::printf("verified %zu token(s) in one LLM decoding step\n",
                verdict.tokens.size());
    return 0;
}
