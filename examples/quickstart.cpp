/**
 * @file
 * Quickstart: build an LLM and its small speculative model, serve
 * one prompt with tree-based speculative inference, and compare
 * against plain incremental decoding — showing the lossless-output
 * guarantee and the reduction in LLM decoding steps.
 *
 * Run: ./examples/quickstart
 */

#include <cstdio>

#include "core/spec_engine.h"
#include "model/model_factory.h"
#include "workload/datasets.h"

int
main()
{
    using namespace specinfer;

    // 1. Build the target model and an early-exit SSM sharing its
    //    weights (stand-ins for LLaMA-7B and LLaMA-68M; DESIGN.md
    //    §2 explains the substitution).
    model::Transformer llm =
        model::makeLlm(model::llmPreset("llama-7b-sim"));
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);
    std::printf("LLM:  %s (%zu layers, %zu params)\n",
                llm.config().name.c_str(), llm.config().nLayers,
                llm.config().paramCount());
    std::printf("SSM:  %s (%zu layers)\n\n",
                ssm.config().name.c_str(), ssm.config().nLayers);

    // 2. A prompt from the synthetic Alpaca workload.
    workload::PromptDataset dataset = workload::PromptDataset::named(
        "Alpaca", llm.config().vocabSize);
    std::vector<int> prompt = dataset.prompt(0);
    std::printf("prompt: %zu tokens [", prompt.size());
    for (size_t i = 0; i < prompt.size(); ++i)
        std::printf("%s%d", i ? " " : "", prompt[i]);
    std::printf("]\n\n");

    // 3. Reference: incremental greedy decoding (Algorithm 1).
    model::SamplingParams greedy;
    greedy.temperature = 0.0f;
    util::Rng rng(1);
    core::GenerationResult reference = core::incrementalGenerate(
        llm, prompt, greedy, 48, rng, /*stop_at_eos=*/false);
    std::printf("incremental decoding: %zu tokens in %zu LLM "
                "steps\n",
                reference.tokens.size(),
                reference.stats.llmSteps());

    // 4. SpecInfer: tree-based speculative inference + verification
    //    with the paper's expansion config <1,1,3,1,1,1,1,1>.
    core::EngineConfig cfg = core::EngineConfig::greedyDefault();
    cfg.maxNewTokens = 48;
    cfg.stopAtEos = false;
    core::SpecEngine engine(&llm, {&ssm}, cfg);
    core::GenerationResult spec = engine.generate(prompt);
    std::printf("tree speculation:     %zu tokens in %zu LLM steps "
                "(%.2f verified/step)\n\n",
                spec.tokens.size(), spec.stats.llmSteps(),
                spec.stats.avgVerifiedPerStep());

    // 5. The lossless guarantee: identical output, fewer steps.
    bool identical = spec.tokens == reference.tokens;
    std::printf("outputs identical: %s\n",
                identical ? "yes" : "NO (bug!)");
    std::printf("LLM decoding steps reduced by %.2fx\n",
                static_cast<double>(reference.stats.llmSteps()) /
                    static_cast<double>(spec.stats.llmSteps()));
    return identical ? 0 : 1;
}
