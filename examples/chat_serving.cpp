/**
 * @file
 * Serving example: the request manager with Orca-style continuous
 * batching (paper §5.1) drives many concurrent "chat" requests
 * through the speculative engine. Requests arrive over time; the
 * scheduler admits them at iteration granularity, so late arrivals
 * start decoding as soon as a batch slot frees.
 *
 * Run: ./examples/chat_serving
 */

#include <cstdio>

#include "model/model_factory.h"
#include "runtime/request_manager.h"
#include "workload/datasets.h"

int
main()
{
    using namespace specinfer;

    model::Transformer llm =
        model::makeLlm(model::llmPreset("llama-7b-sim"));
    model::Transformer ssm = model::makeEarlyExitSsm(llm, 2);

    core::EngineConfig cfg = core::EngineConfig::stochasticDefault();
    cfg.maxNewTokens = 24;
    core::SpecEngine engine(&llm, {&ssm}, cfg);

    runtime::ServingConfig serving;
    serving.maxBatchSize = 4;
    runtime::RequestManager manager(&engine, serving);

    workload::PromptDataset dataset = workload::PromptDataset::named(
        "CIP", llm.config().vocabSize);

    // Requests trickle in while earlier ones are still decoding.
    const size_t total_requests = 10;
    size_t submitted = 0;
    std::printf("serving %zu chat requests, max batch %zu "
                "(continuous batching)\n\n",
                total_requests, serving.maxBatchSize);
    while (submitted < total_requests || manager.busy()) {
        // Two new arrivals every three iterations.
        if (submitted < total_requests &&
            manager.iterationCount() % 3 == 0) {
            for (int i = 0; i < 2 && submitted < total_requests;
                 ++i) {
                uint64_t id =
                    manager.submit(dataset.prompt(submitted));
                std::printf("[iter %3zu] request %llu arrives "
                            "(%zu queued, %zu active)\n",
                            manager.iterationCount(),
                            static_cast<unsigned long long>(id),
                            manager.pendingCount(),
                            manager.activeCount());
                ++submitted;
            }
        }
        manager.runIteration();
        for (const runtime::RequestResult &res :
             manager.takeFinished()) {
            std::printf("[iter %3zu] request %llu done: %zu tokens, "
                        "%zu decode iters (queued %zu), %.2f "
                        "verified/step\n",
                        manager.iterationCount(),
                        static_cast<unsigned long long>(res.id),
                        res.tokens.size(),
                        res.serviceIterations(),
                        res.queueIterations(),
                        res.stats.avgVerifiedPerStep());
        }
    }

    const runtime::ServingStats &stats = manager.stats();
    std::printf("\nserved %zu requests in %zu iterations "
                "(avg batch %.2f, %zu tokens total)\n",
                stats.requestsFinished, stats.iterations,
                stats.avgBatchSize(), stats.tokensGenerated);
    return 0;
}
