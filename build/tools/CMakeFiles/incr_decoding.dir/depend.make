# Empty dependencies file for incr_decoding.
# This may be replaced when dependencies are built.
