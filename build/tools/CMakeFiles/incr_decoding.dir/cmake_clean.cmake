file(REMOVE_RECURSE
  "CMakeFiles/incr_decoding.dir/incr_decoding.cc.o"
  "CMakeFiles/incr_decoding.dir/incr_decoding.cc.o.d"
  "incr_decoding"
  "incr_decoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incr_decoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
