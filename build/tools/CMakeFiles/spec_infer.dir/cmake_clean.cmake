file(REMOVE_RECURSE
  "CMakeFiles/spec_infer.dir/spec_infer.cc.o"
  "CMakeFiles/spec_infer.dir/spec_infer.cc.o.d"
  "spec_infer"
  "spec_infer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_infer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
