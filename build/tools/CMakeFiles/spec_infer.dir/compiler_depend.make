# Empty compiler generated dependencies file for spec_infer.
# This may be replaced when dependencies are built.
