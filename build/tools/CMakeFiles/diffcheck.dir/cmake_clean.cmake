file(REMOVE_RECURSE
  "CMakeFiles/diffcheck.dir/diffcheck.cc.o"
  "CMakeFiles/diffcheck.dir/diffcheck.cc.o.d"
  "diffcheck"
  "diffcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
