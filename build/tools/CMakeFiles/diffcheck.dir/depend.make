# Empty dependencies file for diffcheck.
# This may be replaced when dependencies are built.
