# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(diffcheck "/root/repo/build/tools/diffcheck" "--trials" "50" "--fuzz-trials" "100" "--kv-trials" "20" "--mss-samples" "2000")
set_tests_properties(diffcheck PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")
