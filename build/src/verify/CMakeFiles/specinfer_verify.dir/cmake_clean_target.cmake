file(REMOVE_RECURSE
  "libspecinfer_verify.a"
)
