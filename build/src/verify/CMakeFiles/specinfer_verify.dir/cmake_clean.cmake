file(REMOVE_RECURSE
  "CMakeFiles/specinfer_verify.dir/diff_harness.cc.o"
  "CMakeFiles/specinfer_verify.dir/diff_harness.cc.o.d"
  "CMakeFiles/specinfer_verify.dir/stat_tests.cc.o"
  "CMakeFiles/specinfer_verify.dir/stat_tests.cc.o.d"
  "libspecinfer_verify.a"
  "libspecinfer_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specinfer_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
