
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verify/diff_harness.cc" "src/verify/CMakeFiles/specinfer_verify.dir/diff_harness.cc.o" "gcc" "src/verify/CMakeFiles/specinfer_verify.dir/diff_harness.cc.o.d"
  "/root/repo/src/verify/stat_tests.cc" "src/verify/CMakeFiles/specinfer_verify.dir/stat_tests.cc.o" "gcc" "src/verify/CMakeFiles/specinfer_verify.dir/stat_tests.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/specinfer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/specinfer_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/specinfer_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/specinfer_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
