# Empty dependencies file for specinfer_verify.
# This may be replaced when dependencies are built.
