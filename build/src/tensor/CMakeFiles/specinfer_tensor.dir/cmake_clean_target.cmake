file(REMOVE_RECURSE
  "libspecinfer_tensor.a"
)
