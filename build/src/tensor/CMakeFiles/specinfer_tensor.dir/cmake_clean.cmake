file(REMOVE_RECURSE
  "CMakeFiles/specinfer_tensor.dir/ops.cc.o"
  "CMakeFiles/specinfer_tensor.dir/ops.cc.o.d"
  "CMakeFiles/specinfer_tensor.dir/quant.cc.o"
  "CMakeFiles/specinfer_tensor.dir/quant.cc.o.d"
  "CMakeFiles/specinfer_tensor.dir/tensor.cc.o"
  "CMakeFiles/specinfer_tensor.dir/tensor.cc.o.d"
  "libspecinfer_tensor.a"
  "libspecinfer_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specinfer_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
