# Empty compiler generated dependencies file for specinfer_tensor.
# This may be replaced when dependencies are built.
