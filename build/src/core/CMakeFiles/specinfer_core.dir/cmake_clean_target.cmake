file(REMOVE_RECURSE
  "libspecinfer_core.a"
)
