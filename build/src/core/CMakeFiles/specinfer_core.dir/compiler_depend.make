# Empty compiler generated dependencies file for specinfer_core.
# This may be replaced when dependencies are built.
