file(REMOVE_RECURSE
  "CMakeFiles/specinfer_core.dir/boost_tuning.cc.o"
  "CMakeFiles/specinfer_core.dir/boost_tuning.cc.o.d"
  "CMakeFiles/specinfer_core.dir/expansion.cc.o"
  "CMakeFiles/specinfer_core.dir/expansion.cc.o.d"
  "CMakeFiles/specinfer_core.dir/spec_engine.cc.o"
  "CMakeFiles/specinfer_core.dir/spec_engine.cc.o.d"
  "CMakeFiles/specinfer_core.dir/speculator.cc.o"
  "CMakeFiles/specinfer_core.dir/speculator.cc.o.d"
  "CMakeFiles/specinfer_core.dir/token_tree.cc.o"
  "CMakeFiles/specinfer_core.dir/token_tree.cc.o.d"
  "CMakeFiles/specinfer_core.dir/verifier.cc.o"
  "CMakeFiles/specinfer_core.dir/verifier.cc.o.d"
  "libspecinfer_core.a"
  "libspecinfer_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specinfer_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
