
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/boost_tuning.cc" "src/core/CMakeFiles/specinfer_core.dir/boost_tuning.cc.o" "gcc" "src/core/CMakeFiles/specinfer_core.dir/boost_tuning.cc.o.d"
  "/root/repo/src/core/expansion.cc" "src/core/CMakeFiles/specinfer_core.dir/expansion.cc.o" "gcc" "src/core/CMakeFiles/specinfer_core.dir/expansion.cc.o.d"
  "/root/repo/src/core/spec_engine.cc" "src/core/CMakeFiles/specinfer_core.dir/spec_engine.cc.o" "gcc" "src/core/CMakeFiles/specinfer_core.dir/spec_engine.cc.o.d"
  "/root/repo/src/core/speculator.cc" "src/core/CMakeFiles/specinfer_core.dir/speculator.cc.o" "gcc" "src/core/CMakeFiles/specinfer_core.dir/speculator.cc.o.d"
  "/root/repo/src/core/token_tree.cc" "src/core/CMakeFiles/specinfer_core.dir/token_tree.cc.o" "gcc" "src/core/CMakeFiles/specinfer_core.dir/token_tree.cc.o.d"
  "/root/repo/src/core/verifier.cc" "src/core/CMakeFiles/specinfer_core.dir/verifier.cc.o" "gcc" "src/core/CMakeFiles/specinfer_core.dir/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/specinfer_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/specinfer_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/specinfer_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
