file(REMOVE_RECURSE
  "CMakeFiles/specinfer_simulator.dir/hardware.cc.o"
  "CMakeFiles/specinfer_simulator.dir/hardware.cc.o.d"
  "CMakeFiles/specinfer_simulator.dir/llm_spec.cc.o"
  "CMakeFiles/specinfer_simulator.dir/llm_spec.cc.o.d"
  "CMakeFiles/specinfer_simulator.dir/perf_model.cc.o"
  "CMakeFiles/specinfer_simulator.dir/perf_model.cc.o.d"
  "CMakeFiles/specinfer_simulator.dir/system_model.cc.o"
  "CMakeFiles/specinfer_simulator.dir/system_model.cc.o.d"
  "libspecinfer_simulator.a"
  "libspecinfer_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specinfer_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
