file(REMOVE_RECURSE
  "libspecinfer_simulator.a"
)
