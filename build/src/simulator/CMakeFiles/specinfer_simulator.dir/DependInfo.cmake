
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simulator/hardware.cc" "src/simulator/CMakeFiles/specinfer_simulator.dir/hardware.cc.o" "gcc" "src/simulator/CMakeFiles/specinfer_simulator.dir/hardware.cc.o.d"
  "/root/repo/src/simulator/llm_spec.cc" "src/simulator/CMakeFiles/specinfer_simulator.dir/llm_spec.cc.o" "gcc" "src/simulator/CMakeFiles/specinfer_simulator.dir/llm_spec.cc.o.d"
  "/root/repo/src/simulator/perf_model.cc" "src/simulator/CMakeFiles/specinfer_simulator.dir/perf_model.cc.o" "gcc" "src/simulator/CMakeFiles/specinfer_simulator.dir/perf_model.cc.o.d"
  "/root/repo/src/simulator/system_model.cc" "src/simulator/CMakeFiles/specinfer_simulator.dir/system_model.cc.o" "gcc" "src/simulator/CMakeFiles/specinfer_simulator.dir/system_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/specinfer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
