# Empty dependencies file for specinfer_simulator.
# This may be replaced when dependencies are built.
