file(REMOVE_RECURSE
  "CMakeFiles/specinfer_workload.dir/arrivals.cc.o"
  "CMakeFiles/specinfer_workload.dir/arrivals.cc.o.d"
  "CMakeFiles/specinfer_workload.dir/datasets.cc.o"
  "CMakeFiles/specinfer_workload.dir/datasets.cc.o.d"
  "CMakeFiles/specinfer_workload.dir/trace.cc.o"
  "CMakeFiles/specinfer_workload.dir/trace.cc.o.d"
  "libspecinfer_workload.a"
  "libspecinfer_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specinfer_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
