# Empty compiler generated dependencies file for specinfer_workload.
# This may be replaced when dependencies are built.
