file(REMOVE_RECURSE
  "libspecinfer_workload.a"
)
