file(REMOVE_RECURSE
  "CMakeFiles/specinfer_runtime.dir/kv_memory.cc.o"
  "CMakeFiles/specinfer_runtime.dir/kv_memory.cc.o.d"
  "CMakeFiles/specinfer_runtime.dir/request.cc.o"
  "CMakeFiles/specinfer_runtime.dir/request.cc.o.d"
  "CMakeFiles/specinfer_runtime.dir/request_manager.cc.o"
  "CMakeFiles/specinfer_runtime.dir/request_manager.cc.o.d"
  "libspecinfer_runtime.a"
  "libspecinfer_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specinfer_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
