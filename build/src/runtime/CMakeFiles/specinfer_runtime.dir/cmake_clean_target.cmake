file(REMOVE_RECURSE
  "libspecinfer_runtime.a"
)
