# Empty dependencies file for specinfer_runtime.
# This may be replaced when dependencies are built.
