file(REMOVE_RECURSE
  "libspecinfer_util.a"
)
