# Empty dependencies file for specinfer_util.
# This may be replaced when dependencies are built.
