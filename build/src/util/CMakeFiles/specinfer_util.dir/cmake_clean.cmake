file(REMOVE_RECURSE
  "CMakeFiles/specinfer_util.dir/flags.cc.o"
  "CMakeFiles/specinfer_util.dir/flags.cc.o.d"
  "CMakeFiles/specinfer_util.dir/logging.cc.o"
  "CMakeFiles/specinfer_util.dir/logging.cc.o.d"
  "CMakeFiles/specinfer_util.dir/rng.cc.o"
  "CMakeFiles/specinfer_util.dir/rng.cc.o.d"
  "CMakeFiles/specinfer_util.dir/stats.cc.o"
  "CMakeFiles/specinfer_util.dir/stats.cc.o.d"
  "CMakeFiles/specinfer_util.dir/table.cc.o"
  "CMakeFiles/specinfer_util.dir/table.cc.o.d"
  "libspecinfer_util.a"
  "libspecinfer_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specinfer_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
