# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("tensor")
subdirs("model")
subdirs("core")
subdirs("verify")
subdirs("runtime")
subdirs("simulator")
subdirs("workload")
