
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/beam_search.cc" "src/model/CMakeFiles/specinfer_model.dir/beam_search.cc.o" "gcc" "src/model/CMakeFiles/specinfer_model.dir/beam_search.cc.o.d"
  "/root/repo/src/model/config.cc" "src/model/CMakeFiles/specinfer_model.dir/config.cc.o" "gcc" "src/model/CMakeFiles/specinfer_model.dir/config.cc.o.d"
  "/root/repo/src/model/kv_cache.cc" "src/model/CMakeFiles/specinfer_model.dir/kv_cache.cc.o" "gcc" "src/model/CMakeFiles/specinfer_model.dir/kv_cache.cc.o.d"
  "/root/repo/src/model/model_factory.cc" "src/model/CMakeFiles/specinfer_model.dir/model_factory.cc.o" "gcc" "src/model/CMakeFiles/specinfer_model.dir/model_factory.cc.o.d"
  "/root/repo/src/model/sampler.cc" "src/model/CMakeFiles/specinfer_model.dir/sampler.cc.o" "gcc" "src/model/CMakeFiles/specinfer_model.dir/sampler.cc.o.d"
  "/root/repo/src/model/sequence_parallel.cc" "src/model/CMakeFiles/specinfer_model.dir/sequence_parallel.cc.o" "gcc" "src/model/CMakeFiles/specinfer_model.dir/sequence_parallel.cc.o.d"
  "/root/repo/src/model/serialization.cc" "src/model/CMakeFiles/specinfer_model.dir/serialization.cc.o" "gcc" "src/model/CMakeFiles/specinfer_model.dir/serialization.cc.o.d"
  "/root/repo/src/model/transformer.cc" "src/model/CMakeFiles/specinfer_model.dir/transformer.cc.o" "gcc" "src/model/CMakeFiles/specinfer_model.dir/transformer.cc.o.d"
  "/root/repo/src/model/weights.cc" "src/model/CMakeFiles/specinfer_model.dir/weights.cc.o" "gcc" "src/model/CMakeFiles/specinfer_model.dir/weights.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/specinfer_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/specinfer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
