file(REMOVE_RECURSE
  "libspecinfer_model.a"
)
