file(REMOVE_RECURSE
  "CMakeFiles/specinfer_model.dir/beam_search.cc.o"
  "CMakeFiles/specinfer_model.dir/beam_search.cc.o.d"
  "CMakeFiles/specinfer_model.dir/config.cc.o"
  "CMakeFiles/specinfer_model.dir/config.cc.o.d"
  "CMakeFiles/specinfer_model.dir/kv_cache.cc.o"
  "CMakeFiles/specinfer_model.dir/kv_cache.cc.o.d"
  "CMakeFiles/specinfer_model.dir/model_factory.cc.o"
  "CMakeFiles/specinfer_model.dir/model_factory.cc.o.d"
  "CMakeFiles/specinfer_model.dir/sampler.cc.o"
  "CMakeFiles/specinfer_model.dir/sampler.cc.o.d"
  "CMakeFiles/specinfer_model.dir/sequence_parallel.cc.o"
  "CMakeFiles/specinfer_model.dir/sequence_parallel.cc.o.d"
  "CMakeFiles/specinfer_model.dir/serialization.cc.o"
  "CMakeFiles/specinfer_model.dir/serialization.cc.o.d"
  "CMakeFiles/specinfer_model.dir/transformer.cc.o"
  "CMakeFiles/specinfer_model.dir/transformer.cc.o.d"
  "CMakeFiles/specinfer_model.dir/weights.cc.o"
  "CMakeFiles/specinfer_model.dir/weights.cc.o.d"
  "libspecinfer_model.a"
  "libspecinfer_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specinfer_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
