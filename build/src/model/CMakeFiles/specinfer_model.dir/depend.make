# Empty dependencies file for specinfer_model.
# This may be replaced when dependencies are built.
