file(REMOVE_RECURSE
  "CMakeFiles/chat_serving.dir/chat_serving.cpp.o"
  "CMakeFiles/chat_serving.dir/chat_serving.cpp.o.d"
  "chat_serving"
  "chat_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chat_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
