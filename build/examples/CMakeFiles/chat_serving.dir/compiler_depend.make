# Empty compiler generated dependencies file for chat_serving.
# This may be replaced when dependencies are built.
