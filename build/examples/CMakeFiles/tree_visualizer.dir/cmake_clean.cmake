file(REMOVE_RECURSE
  "CMakeFiles/tree_visualizer.dir/tree_visualizer.cpp.o"
  "CMakeFiles/tree_visualizer.dir/tree_visualizer.cpp.o.d"
  "tree_visualizer"
  "tree_visualizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_visualizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
