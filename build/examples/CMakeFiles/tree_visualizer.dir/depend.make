# Empty dependencies file for tree_visualizer.
# This may be replaced when dependencies are built.
