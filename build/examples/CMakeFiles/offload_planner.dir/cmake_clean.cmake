file(REMOVE_RECURSE
  "CMakeFiles/offload_planner.dir/offload_planner.cpp.o"
  "CMakeFiles/offload_planner.dir/offload_planner.cpp.o.d"
  "offload_planner"
  "offload_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offload_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
