# Empty compiler generated dependencies file for offload_planner.
# This may be replaced when dependencies are built.
