
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/model/beam_search_test.cc" "tests/CMakeFiles/test_model.dir/model/beam_search_test.cc.o" "gcc" "tests/CMakeFiles/test_model.dir/model/beam_search_test.cc.o.d"
  "/root/repo/tests/model/chunk_edge_test.cc" "tests/CMakeFiles/test_model.dir/model/chunk_edge_test.cc.o" "gcc" "tests/CMakeFiles/test_model.dir/model/chunk_edge_test.cc.o.d"
  "/root/repo/tests/model/compressed_ssm_test.cc" "tests/CMakeFiles/test_model.dir/model/compressed_ssm_test.cc.o" "gcc" "tests/CMakeFiles/test_model.dir/model/compressed_ssm_test.cc.o.d"
  "/root/repo/tests/model/config_test.cc" "tests/CMakeFiles/test_model.dir/model/config_test.cc.o" "gcc" "tests/CMakeFiles/test_model.dir/model/config_test.cc.o.d"
  "/root/repo/tests/model/kv_cache_test.cc" "tests/CMakeFiles/test_model.dir/model/kv_cache_test.cc.o" "gcc" "tests/CMakeFiles/test_model.dir/model/kv_cache_test.cc.o.d"
  "/root/repo/tests/model/sampler_test.cc" "tests/CMakeFiles/test_model.dir/model/sampler_test.cc.o" "gcc" "tests/CMakeFiles/test_model.dir/model/sampler_test.cc.o.d"
  "/root/repo/tests/model/sequence_parallel_test.cc" "tests/CMakeFiles/test_model.dir/model/sequence_parallel_test.cc.o" "gcc" "tests/CMakeFiles/test_model.dir/model/sequence_parallel_test.cc.o.d"
  "/root/repo/tests/model/serialization_test.cc" "tests/CMakeFiles/test_model.dir/model/serialization_test.cc.o" "gcc" "tests/CMakeFiles/test_model.dir/model/serialization_test.cc.o.d"
  "/root/repo/tests/model/transformer_test.cc" "tests/CMakeFiles/test_model.dir/model/transformer_test.cc.o" "gcc" "tests/CMakeFiles/test_model.dir/model/transformer_test.cc.o.d"
  "/root/repo/tests/model/tree_attention_test.cc" "tests/CMakeFiles/test_model.dir/model/tree_attention_test.cc.o" "gcc" "tests/CMakeFiles/test_model.dir/model/tree_attention_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/verify/CMakeFiles/specinfer_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/specinfer_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/simulator/CMakeFiles/specinfer_simulator.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/specinfer_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/specinfer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/specinfer_model.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/specinfer_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/specinfer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
