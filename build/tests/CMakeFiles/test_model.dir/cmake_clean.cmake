file(REMOVE_RECURSE
  "CMakeFiles/test_model.dir/model/beam_search_test.cc.o"
  "CMakeFiles/test_model.dir/model/beam_search_test.cc.o.d"
  "CMakeFiles/test_model.dir/model/chunk_edge_test.cc.o"
  "CMakeFiles/test_model.dir/model/chunk_edge_test.cc.o.d"
  "CMakeFiles/test_model.dir/model/compressed_ssm_test.cc.o"
  "CMakeFiles/test_model.dir/model/compressed_ssm_test.cc.o.d"
  "CMakeFiles/test_model.dir/model/config_test.cc.o"
  "CMakeFiles/test_model.dir/model/config_test.cc.o.d"
  "CMakeFiles/test_model.dir/model/kv_cache_test.cc.o"
  "CMakeFiles/test_model.dir/model/kv_cache_test.cc.o.d"
  "CMakeFiles/test_model.dir/model/sampler_test.cc.o"
  "CMakeFiles/test_model.dir/model/sampler_test.cc.o.d"
  "CMakeFiles/test_model.dir/model/sequence_parallel_test.cc.o"
  "CMakeFiles/test_model.dir/model/sequence_parallel_test.cc.o.d"
  "CMakeFiles/test_model.dir/model/serialization_test.cc.o"
  "CMakeFiles/test_model.dir/model/serialization_test.cc.o.d"
  "CMakeFiles/test_model.dir/model/transformer_test.cc.o"
  "CMakeFiles/test_model.dir/model/transformer_test.cc.o.d"
  "CMakeFiles/test_model.dir/model/tree_attention_test.cc.o"
  "CMakeFiles/test_model.dir/model/tree_attention_test.cc.o.d"
  "test_model"
  "test_model.pdb"
  "test_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
