file(REMOVE_RECURSE
  "CMakeFiles/test_runtime.dir/runtime/kv_memory_test.cc.o"
  "CMakeFiles/test_runtime.dir/runtime/kv_memory_test.cc.o.d"
  "CMakeFiles/test_runtime.dir/runtime/request_manager_test.cc.o"
  "CMakeFiles/test_runtime.dir/runtime/request_manager_test.cc.o.d"
  "CMakeFiles/test_runtime.dir/runtime/scheduling_policy_test.cc.o"
  "CMakeFiles/test_runtime.dir/runtime/scheduling_policy_test.cc.o.d"
  "test_runtime"
  "test_runtime.pdb"
  "test_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
