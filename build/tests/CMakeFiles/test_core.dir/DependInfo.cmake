
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/adaptive_expansion_test.cc" "tests/CMakeFiles/test_core.dir/core/adaptive_expansion_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/adaptive_expansion_test.cc.o.d"
  "/root/repo/tests/core/boost_tuning_test.cc" "tests/CMakeFiles/test_core.dir/core/boost_tuning_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/boost_tuning_test.cc.o.d"
  "/root/repo/tests/core/chunked_prefill_test.cc" "tests/CMakeFiles/test_core.dir/core/chunked_prefill_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/chunked_prefill_test.cc.o.d"
  "/root/repo/tests/core/diff_oracle_test.cc" "tests/CMakeFiles/test_core.dir/core/diff_oracle_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/diff_oracle_test.cc.o.d"
  "/root/repo/tests/core/engine_property_test.cc" "tests/CMakeFiles/test_core.dir/core/engine_property_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/engine_property_test.cc.o.d"
  "/root/repo/tests/core/expansion_test.cc" "tests/CMakeFiles/test_core.dir/core/expansion_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/expansion_test.cc.o.d"
  "/root/repo/tests/core/generation_output_test.cc" "tests/CMakeFiles/test_core.dir/core/generation_output_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/generation_output_test.cc.o.d"
  "/root/repo/tests/core/mss_regression_test.cc" "tests/CMakeFiles/test_core.dir/core/mss_regression_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/mss_regression_test.cc.o.d"
  "/root/repo/tests/core/spec_engine_test.cc" "tests/CMakeFiles/test_core.dir/core/spec_engine_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/spec_engine_test.cc.o.d"
  "/root/repo/tests/core/speculator_test.cc" "tests/CMakeFiles/test_core.dir/core/speculator_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/speculator_test.cc.o.d"
  "/root/repo/tests/core/token_tree_test.cc" "tests/CMakeFiles/test_core.dir/core/token_tree_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/token_tree_test.cc.o.d"
  "/root/repo/tests/core/verifier_edge_test.cc" "tests/CMakeFiles/test_core.dir/core/verifier_edge_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/verifier_edge_test.cc.o.d"
  "/root/repo/tests/core/verifier_property_test.cc" "tests/CMakeFiles/test_core.dir/core/verifier_property_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/verifier_property_test.cc.o.d"
  "/root/repo/tests/core/verifier_test.cc" "tests/CMakeFiles/test_core.dir/core/verifier_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/verifier_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/verify/CMakeFiles/specinfer_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/specinfer_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/simulator/CMakeFiles/specinfer_simulator.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/specinfer_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/specinfer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/specinfer_model.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/specinfer_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/specinfer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
