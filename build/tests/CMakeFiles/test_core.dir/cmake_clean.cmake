file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/adaptive_expansion_test.cc.o"
  "CMakeFiles/test_core.dir/core/adaptive_expansion_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/boost_tuning_test.cc.o"
  "CMakeFiles/test_core.dir/core/boost_tuning_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/chunked_prefill_test.cc.o"
  "CMakeFiles/test_core.dir/core/chunked_prefill_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/diff_oracle_test.cc.o"
  "CMakeFiles/test_core.dir/core/diff_oracle_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/engine_property_test.cc.o"
  "CMakeFiles/test_core.dir/core/engine_property_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/expansion_test.cc.o"
  "CMakeFiles/test_core.dir/core/expansion_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/generation_output_test.cc.o"
  "CMakeFiles/test_core.dir/core/generation_output_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/mss_regression_test.cc.o"
  "CMakeFiles/test_core.dir/core/mss_regression_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/spec_engine_test.cc.o"
  "CMakeFiles/test_core.dir/core/spec_engine_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/speculator_test.cc.o"
  "CMakeFiles/test_core.dir/core/speculator_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/token_tree_test.cc.o"
  "CMakeFiles/test_core.dir/core/token_tree_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/verifier_edge_test.cc.o"
  "CMakeFiles/test_core.dir/core/verifier_edge_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/verifier_property_test.cc.o"
  "CMakeFiles/test_core.dir/core/verifier_property_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/verifier_test.cc.o"
  "CMakeFiles/test_core.dir/core/verifier_test.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
