file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/integration/compaction_test.cc.o"
  "CMakeFiles/test_integration.dir/integration/compaction_test.cc.o.d"
  "CMakeFiles/test_integration.dir/integration/preset_sweep_test.cc.o"
  "CMakeFiles/test_integration.dir/integration/preset_sweep_test.cc.o.d"
  "CMakeFiles/test_integration.dir/integration/serving_test.cc.o"
  "CMakeFiles/test_integration.dir/integration/serving_test.cc.o.d"
  "CMakeFiles/test_integration.dir/integration/umbrella_test.cc.o"
  "CMakeFiles/test_integration.dir/integration/umbrella_test.cc.o.d"
  "test_integration"
  "test_integration.pdb"
  "test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
