file(REMOVE_RECURSE
  "CMakeFiles/test_simulator.dir/simulator/energy_test.cc.o"
  "CMakeFiles/test_simulator.dir/simulator/energy_test.cc.o.d"
  "CMakeFiles/test_simulator.dir/simulator/perf_model_test.cc.o"
  "CMakeFiles/test_simulator.dir/simulator/perf_model_test.cc.o.d"
  "CMakeFiles/test_simulator.dir/simulator/system_model_test.cc.o"
  "CMakeFiles/test_simulator.dir/simulator/system_model_test.cc.o.d"
  "test_simulator"
  "test_simulator.pdb"
  "test_simulator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
