file(REMOVE_RECURSE
  "CMakeFiles/test_tensor.dir/tensor/ops_test.cc.o"
  "CMakeFiles/test_tensor.dir/tensor/ops_test.cc.o.d"
  "CMakeFiles/test_tensor.dir/tensor/quant_test.cc.o"
  "CMakeFiles/test_tensor.dir/tensor/quant_test.cc.o.d"
  "CMakeFiles/test_tensor.dir/tensor/tensor_test.cc.o"
  "CMakeFiles/test_tensor.dir/tensor/tensor_test.cc.o.d"
  "test_tensor"
  "test_tensor.pdb"
  "test_tensor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
