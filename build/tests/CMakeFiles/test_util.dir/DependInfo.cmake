
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/flags_test.cc" "tests/CMakeFiles/test_util.dir/util/flags_test.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/flags_test.cc.o.d"
  "/root/repo/tests/util/logging_test.cc" "tests/CMakeFiles/test_util.dir/util/logging_test.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/logging_test.cc.o.d"
  "/root/repo/tests/util/rng_test.cc" "tests/CMakeFiles/test_util.dir/util/rng_test.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/rng_test.cc.o.d"
  "/root/repo/tests/util/stats_test.cc" "tests/CMakeFiles/test_util.dir/util/stats_test.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/stats_test.cc.o.d"
  "/root/repo/tests/util/table_test.cc" "tests/CMakeFiles/test_util.dir/util/table_test.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/table_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/verify/CMakeFiles/specinfer_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/specinfer_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/simulator/CMakeFiles/specinfer_simulator.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/specinfer_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/specinfer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/specinfer_model.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/specinfer_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/specinfer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
