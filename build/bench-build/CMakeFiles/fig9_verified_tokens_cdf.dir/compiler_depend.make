# Empty compiler generated dependencies file for fig9_verified_tokens_cdf.
# This may be replaced when dependencies are built.
