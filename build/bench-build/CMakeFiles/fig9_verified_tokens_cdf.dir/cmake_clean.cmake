file(REMOVE_RECURSE
  "../bench/fig9_verified_tokens_cdf"
  "../bench/fig9_verified_tokens_cdf.pdb"
  "CMakeFiles/fig9_verified_tokens_cdf.dir/fig9_verified_tokens_cdf.cc.o"
  "CMakeFiles/fig9_verified_tokens_cdf.dir/fig9_verified_tokens_cdf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_verified_tokens_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
