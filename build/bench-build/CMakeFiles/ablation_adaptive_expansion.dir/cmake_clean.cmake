file(REMOVE_RECURSE
  "../bench/ablation_adaptive_expansion"
  "../bench/ablation_adaptive_expansion.pdb"
  "CMakeFiles/ablation_adaptive_expansion.dir/ablation_adaptive_expansion.cc.o"
  "CMakeFiles/ablation_adaptive_expansion.dir/ablation_adaptive_expansion.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adaptive_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
