# Empty dependencies file for ablation_adaptive_expansion.
# This may be replaced when dependencies are built.
