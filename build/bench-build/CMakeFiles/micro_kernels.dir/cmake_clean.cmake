file(REMOVE_RECURSE
  "../bench/micro_kernels"
  "../bench/micro_kernels.pdb"
  "CMakeFiles/micro_kernels.dir/micro_kernels.cc.o"
  "CMakeFiles/micro_kernels.dir/micro_kernels.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
