# Empty compiler generated dependencies file for serving_latency.
# This may be replaced when dependencies are built.
