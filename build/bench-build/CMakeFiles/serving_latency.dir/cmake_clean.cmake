file(REMOVE_RECURSE
  "../bench/serving_latency"
  "../bench/serving_latency.pdb"
  "CMakeFiles/serving_latency.dir/serving_latency.cc.o"
  "CMakeFiles/serving_latency.dir/serving_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
