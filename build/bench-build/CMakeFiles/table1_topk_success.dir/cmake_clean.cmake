file(REMOVE_RECURSE
  "../bench/table1_topk_success"
  "../bench/table1_topk_success.pdb"
  "CMakeFiles/table1_topk_success.dir/table1_topk_success.cc.o"
  "CMakeFiles/table1_topk_success.dir/table1_topk_success.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_topk_success.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
