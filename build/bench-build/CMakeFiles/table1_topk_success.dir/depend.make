# Empty dependencies file for table1_topk_success.
# This may be replaced when dependencies are built.
