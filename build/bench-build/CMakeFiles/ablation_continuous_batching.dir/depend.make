# Empty dependencies file for ablation_continuous_batching.
# This may be replaced when dependencies are built.
