file(REMOVE_RECURSE
  "../bench/ablation_continuous_batching"
  "../bench/ablation_continuous_batching.pdb"
  "CMakeFiles/ablation_continuous_batching.dir/ablation_continuous_batching.cc.o"
  "CMakeFiles/ablation_continuous_batching.dir/ablation_continuous_batching.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_continuous_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
