# Empty compiler generated dependencies file for table3_mss_vs_naive.
# This may be replaced when dependencies are built.
