file(REMOVE_RECURSE
  "../bench/table3_mss_vs_naive"
  "../bench/table3_mss_vs_naive.pdb"
  "CMakeFiles/table3_mss_vs_naive.dir/table3_mss_vs_naive.cc.o"
  "CMakeFiles/table3_mss_vs_naive.dir/table3_mss_vs_naive.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_mss_vs_naive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
