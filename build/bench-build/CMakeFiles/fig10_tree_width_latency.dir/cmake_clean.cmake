file(REMOVE_RECURSE
  "../bench/fig10_tree_width_latency"
  "../bench/fig10_tree_width_latency.pdb"
  "CMakeFiles/fig10_tree_width_latency.dir/fig10_tree_width_latency.cc.o"
  "CMakeFiles/fig10_tree_width_latency.dir/fig10_tree_width_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_tree_width_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
