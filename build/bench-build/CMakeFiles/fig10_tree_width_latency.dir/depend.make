# Empty dependencies file for fig10_tree_width_latency.
# This may be replaced when dependencies are built.
