file(REMOVE_RECURSE
  "../bench/fig11_tree_vs_sequence"
  "../bench/fig11_tree_vs_sequence.pdb"
  "CMakeFiles/fig11_tree_vs_sequence.dir/fig11_tree_vs_sequence.cc.o"
  "CMakeFiles/fig11_tree_vs_sequence.dir/fig11_tree_vs_sequence.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_tree_vs_sequence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
