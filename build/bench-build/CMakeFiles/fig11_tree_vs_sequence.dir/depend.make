# Empty dependencies file for fig11_tree_vs_sequence.
# This may be replaced when dependencies are built.
