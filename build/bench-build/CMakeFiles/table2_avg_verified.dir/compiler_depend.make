# Empty compiler generated dependencies file for table2_avg_verified.
# This may be replaced when dependencies are built.
