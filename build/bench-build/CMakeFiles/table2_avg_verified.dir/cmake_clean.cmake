file(REMOVE_RECURSE
  "../bench/table2_avg_verified"
  "../bench/table2_avg_verified.pdb"
  "CMakeFiles/table2_avg_verified.dir/table2_avg_verified.cc.o"
  "CMakeFiles/table2_avg_verified.dir/table2_avg_verified.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_avg_verified.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
