# Empty compiler generated dependencies file for ablation_boost_pool.
# This may be replaced when dependencies are built.
