file(REMOVE_RECURSE
  "../bench/ablation_boost_pool"
  "../bench/ablation_boost_pool.pdb"
  "CMakeFiles/ablation_boost_pool.dir/ablation_boost_pool.cc.o"
  "CMakeFiles/ablation_boost_pool.dir/ablation_boost_pool.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_boost_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
