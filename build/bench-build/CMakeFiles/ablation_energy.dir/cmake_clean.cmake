file(REMOVE_RECURSE
  "../bench/ablation_energy"
  "../bench/ablation_energy.pdb"
  "CMakeFiles/ablation_energy.dir/ablation_energy.cc.o"
  "CMakeFiles/ablation_energy.dir/ablation_energy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
