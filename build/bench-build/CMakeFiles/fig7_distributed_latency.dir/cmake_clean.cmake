file(REMOVE_RECURSE
  "../bench/fig7_distributed_latency"
  "../bench/fig7_distributed_latency.pdb"
  "CMakeFiles/fig7_distributed_latency.dir/fig7_distributed_latency.cc.o"
  "CMakeFiles/fig7_distributed_latency.dir/fig7_distributed_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_distributed_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
