# Empty compiler generated dependencies file for fig7_distributed_latency.
# This may be replaced when dependencies are built.
