# Empty compiler generated dependencies file for ablation_ssm_compression.
# This may be replaced when dependencies are built.
