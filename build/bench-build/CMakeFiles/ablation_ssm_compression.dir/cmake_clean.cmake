file(REMOVE_RECURSE
  "../bench/ablation_ssm_compression"
  "../bench/ablation_ssm_compression.pdb"
  "CMakeFiles/ablation_ssm_compression.dir/ablation_ssm_compression.cc.o"
  "CMakeFiles/ablation_ssm_compression.dir/ablation_ssm_compression.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ssm_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
