file(REMOVE_RECURSE
  "../bench/ablation_kv_memory"
  "../bench/ablation_kv_memory.pdb"
  "CMakeFiles/ablation_kv_memory.dir/ablation_kv_memory.cc.o"
  "CMakeFiles/ablation_kv_memory.dir/ablation_kv_memory.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kv_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
