# Empty dependencies file for ablation_kv_memory.
# This may be replaced when dependencies are built.
