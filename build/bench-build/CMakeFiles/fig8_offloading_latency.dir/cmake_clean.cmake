file(REMOVE_RECURSE
  "../bench/fig8_offloading_latency"
  "../bench/fig8_offloading_latency.pdb"
  "CMakeFiles/fig8_offloading_latency.dir/fig8_offloading_latency.cc.o"
  "CMakeFiles/fig8_offloading_latency.dir/fig8_offloading_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_offloading_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
