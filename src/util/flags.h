/**
 * @file
 * Minimal command-line flag parsing for the CLI tools:
 * "--name value" and "--name=value" forms, with typed accessors
 * and defaults. Unknown flags are fatal (catches typos).
 */

#ifndef SPECINFER_UTIL_FLAGS_H
#define SPECINFER_UTIL_FLAGS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace specinfer {
namespace util {

/** Parsed command-line flags. */
class Flags
{
  public:
    /**
     * Parse argv. Flags must start with "--"; positional arguments
     * are collected separately.
     */
    Flags(int argc, const char *const *argv);

    /** True when --name was supplied. */
    bool has(const std::string &name) const;

    /** String flag with default. */
    std::string get(const std::string &name,
                    const std::string &def = "") const;

    /** Integer flag with default; fatal on non-numeric values. */
    int64_t getInt(const std::string &name, int64_t def) const;

    /** Floating-point flag with default. */
    double getDouble(const std::string &name, double def) const;

    /** Boolean flag: present without value, or =true/=false. */
    bool getBool(const std::string &name, bool def = false) const;

    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /**
     * Abort with a usage error if any parsed flag is not in the
     * allowed list (call once after construction).
     */
    void allowOnly(const std::vector<std::string> &names) const;

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
};

} // namespace util
} // namespace specinfer

#endif // SPECINFER_UTIL_FLAGS_H
