/**
 * @file
 * Deterministic fault injection for the serving runtime.
 *
 * Production serving must survive component failures: an SSM worker
 * that dies mid-speculation, a verifier that trips an internal
 * error, KV allocation failing under pressure, a straggler
 * iteration, a whole process crash. This module gives library code
 * *named fault points* that tests can arm with a seeded, fully
 * deterministic schedule, so every degradation path is exercisable
 * and any failure replays from a single 64-bit seed (the `diffcheck`
 * repro style).
 *
 * Design constraints:
 *  - Zero cost when disabled: a fault point is one pointer load and
 *    a branch (`faultAt()` with no injector installed).
 *  - Determinism: firing is a pure function of (seed, sequence of
 *    consultations); the serving pipeline consults points in a
 *    deterministic order, so a schedule replays exactly.
 *  - Thread safety: faultAt() is reachable from ThreadPool workers
 *    (the batched forward path), so counters are atomics and the
 *    armed/probability draw is mutex-guarded. Single-threaded
 *    consultation order (the replay contract) is unchanged.
 *  - Library code never aborts on an injected fault; it degrades
 *    (fall back to incremental decoding, preempt, retry, shed,
 *    recover from the journal).
 */

#ifndef SPECINFER_UTIL_FAULT_H
#define SPECINFER_UTIL_FAULT_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/rng.h"

namespace specinfer {
namespace util {

/** Named fault points consulted by library code. */
enum class FaultPoint : int
{
    /** The speculator failed to produce a tree this step (models a
     *  crashed/slow SSM worker); the engine falls back to plain
     *  incremental decoding for the step. */
    SsmStep = 0,

    /** The verifier failed on the speculated tree; the engine
     *  re-verifies a root-only tree (rejecting every speculated
     *  node), which degrades to incremental output. */
    Verify = 1,

    /** A KV block reservation failed (models memory pressure or an
     *  allocator error); the request manager preempts / retries. */
    KvAlloc = 2,

    /** A straggler iteration (models interference, paging, a slow
     *  collective); the manager's iteration clock jumps forward,
     *  pushing requests toward their deadlines. */
    SlowIteration = 3,

    /** A process crash mid-iteration: the RequestManager halts on
     *  the spot (including between a journal append and the
     *  iteration commit, tearing the in-flight journal record) and
     *  all in-memory state is considered lost. Recovery replays the
     *  write-ahead journal on top of the last snapshot. */
    Crash = 4,

    /** A shared-memory ring push failed transiently (models a
     *  paused peer, an overloaded bus, a ring momentarily full);
     *  the sender keeps the frame queued and retries next tick —
     *  never drops or reorders. */
    IpcSend = 5,

    /** A shared-memory ring pop is delayed one poll (models
     *  scheduling jitter on the consumer side); the frame is
     *  delivered intact on a later poll. */
    IpcRecv = 6,

    /** A spurious client-lease expiry: the daemon reaps a live,
     *  heartbeating client exactly as if it had crashed. The client
     *  library must detect the revocation and reconnect. */
    ClientReap = 7,

    /** A hung iteration (models a spinning kernel or a deadlocked
     *  pool worker that eventually returns): the daemon's watchdog
     *  sees the stall budget blown, publishes degraded health, and
     *  disables speculation via the degradation ladder. */
    Hang = 8,

    /** A hard wedge (models a step that never returns): only an
     *  external supervisor can recover by killing the process; the
     *  daemon treats a fired wedge as an abort into the
     *  journal-recovery path. */
    Wedge = 9,
};

/** Number of distinct fault points. */
constexpr size_t kFaultPointCount = 10;

/** Human-readable fault point name (for logs and repro lines). */
const char *faultPointName(FaultPoint point);

/**
 * Seeded deterministic fault source.
 *
 * Each fault point has an independent firing probability plus an
 * optional list of armed occurrence indices that fire exactly once
 * each (1-based: armAt(p, 3) fires the third consultation of p).
 * Probability draws consume one RNG value per consultation of a
 * point with probability > 0; points left at probability 0 consume
 * nothing, so arming one point never perturbs another's schedule.
 *
 * Thread-safe: fire() may be consulted concurrently from ThreadPool
 * workers. Occurrence/fired counters are atomics; the armed lists
 * and the probability RNG are mutex-guarded. Determinism holds
 * whenever consultations of a given point are ordered (the serving
 * pipeline consults serially; concurrent consultations of the same
 * point get an arbitrary but complete occurrence numbering).
 */
class FaultInjector
{
  public:
    explicit FaultInjector(uint64_t seed = 0xfa017ULL);

    uint64_t seed() const { return seed_; }

    /** Set the per-consultation firing probability in [0, 1]. */
    void setProbability(FaultPoint point, double probability);

    double probability(FaultPoint point) const;

    /** Arm the point to fire on its `occurrence`-th consultation
     *  (1-based); may be called repeatedly for multiple shots. */
    void armAt(FaultPoint point, uint64_t occurrence);

    /**
     * Consult the fault point: records the occurrence and returns
     * true when the fault fires (armed occurrence hit, or a
     * probability draw succeeds).
     */
    bool fire(FaultPoint point);

    /**
     * Keyed consultation: like fire(), but the probability decision
     * is a *pure hash* of (seed, point, key) instead of a draw from
     * the shared RNG stream. Callers derive the key from world
     * state (e.g. request id + iteration), which makes the schedule
     * replay-stable: a crashed-and-recovered process re-consulting
     * the same logical event gets the same answer, and consultations
     * that replay skips cannot shift any other point's schedule.
     * Armed occurrences still fire by consultation index, and the
     * occurrence/fired counters advance exactly as with fire().
     * Repeated consultations of one key within one decision window
     * repeat the same answer — deliberately modelling temporally
     * correlated pressure (real allocators do not recover between
     * adjacent calls).
     */
    bool fireKeyed(FaultPoint point, uint64_t key);

    /** Times the point has been consulted. */
    uint64_t occurrences(FaultPoint point) const;

    /** Times the point actually fired. */
    uint64_t fired(FaultPoint point) const;

    /** Total fires across all points. */
    uint64_t totalFired() const;

    /** One-line reproduction recipe: seed + per-point probabilities
     *  (diffcheck style; paste into a test to replay a schedule). */
    std::string reproLine() const;

  private:
    uint64_t seed_;
    Rng rng_;                 // guarded by mu_
    double probability_[kFaultPointCount] = {};
    std::vector<uint64_t> armed_[kFaultPointCount]; // guarded by mu_
    std::atomic<uint64_t> occurrences_[kFaultPointCount] = {};
    std::atomic<uint64_t> fired_[kFaultPointCount] = {};
    mutable std::mutex mu_;
};

namespace detail {
/** Global injector consulted by faultAt(); null = disabled. */
extern FaultInjector *g_fault_injector;
} // namespace detail

/** Install (or clear, with nullptr) the global fault injector.
 *  Returns the previously installed injector. */
FaultInjector *setFaultInjector(FaultInjector *injector);

/** Currently installed injector, or nullptr. */
inline FaultInjector *
faultInjector()
{
    return detail::g_fault_injector;
}

/**
 * The lightweight hook library code calls at a fault point. With no
 * injector installed this is a pointer load and a branch — the
 * production fast path.
 */
inline bool
faultAt(FaultPoint point)
{
    FaultInjector *injector = detail::g_fault_injector;
    return injector != nullptr && injector->fire(point);
}

/**
 * Keyed fault hook (see FaultInjector::fireKeyed): the decision is
 * a pure function of (seed, point, key), so it survives crash-replay
 * re-consultation without perturbing other points' schedules.
 */
inline bool
faultAtKeyed(FaultPoint point, uint64_t key)
{
    FaultInjector *injector = detail::g_fault_injector;
    return injector != nullptr && injector->fireKeyed(point, key);
}

/**
 * RAII installation of an injector for one scope (typically one
 * test); restores the previous injector on destruction so schedules
 * never leak across tests.
 */
class FaultScope
{
  public:
    explicit FaultScope(FaultInjector *injector)
        : previous_(setFaultInjector(injector))
    {
    }
    ~FaultScope() { setFaultInjector(previous_); }

    FaultScope(const FaultScope &) = delete;
    FaultScope &operator=(const FaultScope &) = delete;

  private:
    FaultInjector *previous_;
};

} // namespace util
} // namespace specinfer

#endif // SPECINFER_UTIL_FAULT_H
