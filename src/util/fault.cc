#include "util/fault.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace specinfer {
namespace util {

namespace detail {
FaultInjector *g_fault_injector = nullptr;
} // namespace detail

const char *
faultPointName(FaultPoint point)
{
    switch (point) {
      case FaultPoint::SsmStep:
        return "ssm-step";
      case FaultPoint::Verify:
        return "verify";
      case FaultPoint::KvAlloc:
        return "kv-alloc";
      case FaultPoint::SlowIteration:
        return "slow-iteration";
      case FaultPoint::Crash:
        return "crash";
      case FaultPoint::IpcSend:
        return "ipc-send";
      case FaultPoint::IpcRecv:
        return "ipc-recv";
      case FaultPoint::ClientReap:
        return "client-reap";
      case FaultPoint::Hang:
        return "hang";
      case FaultPoint::Wedge:
        return "wedge";
    }
    return "unknown";
}

FaultInjector::FaultInjector(uint64_t seed) : seed_(seed), rng_(seed)
{
}

void
FaultInjector::setProbability(FaultPoint point, double probability)
{
    SPECINFER_CHECK(probability >= 0.0 && probability <= 1.0,
                    "fault probability must be in [0, 1], got "
                        << probability);
    std::lock_guard<std::mutex> lock(mu_);
    probability_[static_cast<size_t>(point)] = probability;
}

double
FaultInjector::probability(FaultPoint point) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return probability_[static_cast<size_t>(point)];
}

void
FaultInjector::armAt(FaultPoint point, uint64_t occurrence)
{
    SPECINFER_CHECK(occurrence > 0,
                    "armed occurrences are 1-based");
    std::lock_guard<std::mutex> lock(mu_);
    armed_[static_cast<size_t>(point)].push_back(occurrence);
}

bool
FaultInjector::fire(FaultPoint point)
{
    const size_t p = static_cast<size_t>(point);
    // The occurrence number is claimed atomically, so concurrent
    // consultations from ThreadPool workers each get a distinct
    // index and armed one-shots fire exactly once.
    const uint64_t occurrence =
        occurrences_[p].fetch_add(1, std::memory_order_relaxed) + 1;
    bool fires = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        // Armed one-shots fire regardless of the probability and do
        // not consume an RNG draw, so surgical schedules replay
        // exactly.
        std::vector<uint64_t> &armed = armed_[p];
        auto hit = std::find(armed.begin(), armed.end(), occurrence);
        if (hit != armed.end()) {
            armed.erase(hit);
            fires = true;
        } else if (probability_[p] > 0.0) {
            fires = rng_.uniform() < probability_[p];
        }
    }
    if (fires)
        fired_[p].fetch_add(1, std::memory_order_relaxed);
    return fires;
}

namespace {

/** Stateless uniform in [0, 1) from (seed, point, key): splitmix64
 *  finalizer over the mixed inputs. No stream, no memory — the same
 *  triple always yields the same draw. */
double
keyedUniform(uint64_t seed, size_t point, uint64_t key)
{
    uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (key + 1) +
                 0x632be59bd9b4e019ULL * (point + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53;
}

} // namespace

bool
FaultInjector::fireKeyed(FaultPoint point, uint64_t key)
{
    const size_t p = static_cast<size_t>(point);
    const uint64_t occurrence =
        occurrences_[p].fetch_add(1, std::memory_order_relaxed) + 1;
    bool fires = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        std::vector<uint64_t> &armed = armed_[p];
        auto hit = std::find(armed.begin(), armed.end(), occurrence);
        if (hit != armed.end()) {
            armed.erase(hit);
            fires = true;
        } else if (probability_[p] > 0.0) {
            // Pure hash, never the shared RNG stream: the decision
            // depends only on (seed, point, key), so re-consulting
            // after a crash-replay resume repeats the answer and
            // never shifts another point's schedule.
            fires = keyedUniform(seed_, p, key) < probability_[p];
        }
    }
    if (fires)
        fired_[p].fetch_add(1, std::memory_order_relaxed);
    return fires;
}

uint64_t
FaultInjector::occurrences(FaultPoint point) const
{
    return occurrences_[static_cast<size_t>(point)].load(
        std::memory_order_relaxed);
}

uint64_t
FaultInjector::fired(FaultPoint point) const
{
    return fired_[static_cast<size_t>(point)].load(
        std::memory_order_relaxed);
}

uint64_t
FaultInjector::totalFired() const
{
    uint64_t total = 0;
    for (size_t p = 0; p < kFaultPointCount; ++p)
        total += fired_[p].load(std::memory_order_relaxed);
    return total;
}

std::string
FaultInjector::reproLine() const
{
    std::ostringstream oss;
    oss << "fault repro: seed=" << seed_;
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t p = 0; p < kFaultPointCount; ++p) {
        if (probability_[p] > 0.0)
            oss << " p(" << faultPointName(static_cast<FaultPoint>(p))
                << ")=" << probability_[p];
    }
    return oss.str();
}

FaultInjector *
setFaultInjector(FaultInjector *injector)
{
    FaultInjector *previous = detail::g_fault_injector;
    detail::g_fault_injector = injector;
    return previous;
}

} // namespace util
} // namespace specinfer
