#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace specinfer {
namespace util {

uint64_t
splitmix64(uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
hashString(const char *str)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const char *p = str; *p; ++p) {
        h ^= static_cast<uint64_t>(static_cast<unsigned char>(*p));
        h *= 0x100000001b3ULL;
    }
    return h;
}

namespace {

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (int i = 0; i < 4; ++i)
        state_[i] = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::uniformInt(uint64_t n)
{
    SPECINFER_CHECK(n > 0, "uniformInt requires n > 0");
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0 - n) % n;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    SPECINFER_CHECK(lo <= hi, "uniformInt requires lo <= hi");
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(uniformInt(span));
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    double mag = std::sqrt(-2.0 * std::log(u1));
    cachedNormal_ = mag * std::sin(2.0 * M_PI * u2);
    hasCachedNormal_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

size_t
Rng::categorical(const std::vector<float> &weights)
{
    SPECINFER_CHECK(!weights.empty(), "categorical on empty weights");
    double total = 0.0;
    for (float w : weights) {
        SPECINFER_CHECK(w >= 0.0f, "categorical weight must be >= 0");
        total += w;
    }
    SPECINFER_CHECK(total > 0.0, "categorical weights sum to zero");
    double r = uniform() * total;
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (r < acc)
            return i;
    }
    // Floating-point edge: fall back to the last positive weight.
    for (size_t i = weights.size(); i > 0; --i) {
        if (weights[i - 1] > 0.0f)
            return i - 1;
    }
    return weights.size() - 1;
}

RngState
Rng::state() const
{
    RngState st;
    for (int i = 0; i < 4; ++i)
        st.s[i] = state_[i];
    st.hasCachedNormal = hasCachedNormal_;
    st.cachedNormal = cachedNormal_;
    return st;
}

void
Rng::setState(const RngState &state)
{
    for (int i = 0; i < 4; ++i)
        state_[i] = state.s[i];
    hasCachedNormal_ = state.hasCachedNormal;
    cachedNormal_ = state.cachedNormal;
}

Rng
Rng::fork()
{
    // Mix two outputs so the child stream is decorrelated.
    uint64_t a = next();
    uint64_t b = next();
    return Rng(a ^ rotl(b, 23) ^ 0x9e3779b97f4a7c15ULL);
}

} // namespace util
} // namespace specinfer
