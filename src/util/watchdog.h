/**
 * @file
 * Deadline-armed stall detector for the serving loop.
 *
 * A production scheduler must notice when one iteration stops
 * making progress — a spinning kernel, a deadlocked pool worker, a
 * pathological batch — and degrade instead of silently stalling
 * every queued request. The watchdog guards one section at a time:
 * arm() stamps a deadline (now + budget), disarm() reports whether
 * the section blew it, and expired() lets a poller (or the hang
 * fault simulation) observe the blown deadline mid-flight.
 *
 * Two stall flavors, matching the fault points in util/fault.h:
 *
 *  - `hang` (FaultPoint::Hang): the section eventually returns but
 *    far past its budget. disarm() reports the stall; the daemon
 *    publishes degraded health and disables speculation via the
 *    degradation ladder.
 *  - `wedge` (FaultPoint::Wedge): the section never returns. No
 *    in-process detector can help — an external supervisor watches
 *    the board heartbeat and kills the process, and recovery
 *    replays the write-ahead journal.
 *
 * Time comes from an injected nanosecond source, not a syscall: the
 * util layer is clock-agnostic by design, so the daemon wires in
 * its obs::Clock and tests drive the watchdog with a ManualClock —
 * every arm/fire/reset schedule is deterministic, no real sleeps.
 * Single-threaded by design, like the scheduler it guards.
 */

#ifndef SPECINFER_UTIL_WATCHDOG_H
#define SPECINFER_UTIL_WATCHDOG_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

namespace specinfer {
namespace util {

class Watchdog
{
  public:
    /** Monotonic nanosecond source (obs::Clock in the daemon,
     *  ManualClock in tests). */
    using NowFn = std::function<uint64_t()>;

    /**
     * @param budget_nanos Stall budget per guarded section; a
     *        section running longer counts as a stall. 0 disables
     *        the watchdog (arm/disarm become no-ops that never
     *        report a stall).
     * @param now Nanosecond source; must outlive the watchdog.
     */
    Watchdog(uint64_t budget_nanos, NowFn now)
        : budget_(budget_nanos), now_(std::move(now))
    {
    }

    /** Start guarding a section: deadline = now + budget.
     *  Re-arming while armed simply restarts the window. */
    void arm();

    /**
     * End the guarded section.
     * @return true when the section overran its budget (a stall);
     *         the overrun is retained in lastOverrunNanos(). Also
     *         maintains the consecutive-stall ladder used for
     *         escalation decisions.
     */
    bool disarm();

    /** True while a section is being guarded. */
    bool armed() const { return armed_; }

    /** True when the armed section has already blown its deadline
     *  (a mid-flight poll; false when disarmed or unbudgeted). */
    bool expired() const;

    /** Deadline of the armed section (meaningless when disarmed). */
    uint64_t deadlineNanos() const { return deadline_; }

    uint64_t budgetNanos() const { return budget_; }

    /** Sections guarded so far. */
    uint64_t armCount() const { return armCount_; }

    /** Sections that overran their budget. */
    uint64_t stallCount() const { return stallCount_; }

    /** Stalls since the last in-budget section (escalation input:
     *  one straggler is noise, a streak is a sick scheduler). */
    uint64_t consecutiveStalls() const { return consecutiveStalls_; }

    /** Nanoseconds past the deadline at the last disarm (0 when the
     *  last section met its budget). */
    uint64_t lastOverrunNanos() const { return lastOverrun_; }

  private:
    uint64_t budget_;
    NowFn now_;
    bool armed_ = false;
    uint64_t deadline_ = 0;
    uint64_t armCount_ = 0;
    uint64_t stallCount_ = 0;
    uint64_t consecutiveStalls_ = 0;
    uint64_t lastOverrun_ = 0;
};

} // namespace util
} // namespace specinfer

#endif // SPECINFER_UTIL_WATCHDOG_H
