/**
 * @file
 * Crash-loop-aware restart policy for the daemon supervisor.
 *
 * The process half of supervision (fork/exec, waitpid, signal
 * forwarding) lives in tools/specinferd_supervisor.cc; this class
 * is the decision half, kept pure so tests can replay whole
 * restart/give-up schedules deterministically with injected
 * timestamps — no processes, no sleeps.
 *
 * Policy:
 *  - Every abnormal child exit restarts the daemon after a
 *    seeded-jitter exponential backoff (base doubling per
 *    consecutive crash, capped, plus up to half a base of jitter so
 *    a fleet of supervisors never restarts in lockstep — the same
 *    rationale as the client reconnect and preemption backoffs).
 *  - A child that stays up past stableUptimeMillis resets the
 *    backoff ladder: an occasional crash a day is routine, not a
 *    loop.
 *  - A *crash loop* — crashLoopCrashes abnormal exits inside a
 *    sliding crashLoopWindowMillis — means restarting cannot help
 *    (bad config, corrupt snapshot, poisoned input); the supervisor
 *    gives up with a typed exit instead of burning CPU forever.
 */

#ifndef SPECINFER_UTIL_SUPERVISOR_H
#define SPECINFER_UTIL_SUPERVISOR_H

#include <cstddef>
#include <cstdint>
#include <deque>

#include "util/rng.h"

namespace specinfer {
namespace util {

/** Tuning knobs for SupervisorPolicy. */
struct SupervisorConfig
{
    /** First-restart backoff base (doubles per consecutive
     *  crash). */
    uint64_t backoffBaseMillis = 100;

    /** Backoff ceiling. */
    uint64_t backoffCapMillis = 10000;

    /** Child uptime that resets the consecutive-crash ladder. */
    uint64_t stableUptimeMillis = 10000;

    /** Give up after this many abnormal exits ... */
    size_t crashLoopCrashes = 5;

    /** ... within this sliding window (0 disables give-up). */
    uint64_t crashLoopWindowMillis = 60000;

    /** Restart-jitter seed (deterministic schedules in tests). */
    uint64_t jitterSeed = 0x5afe6a2dULL;
};

class SupervisorPolicy
{
  public:
    enum class Action
    {
        Restart, ///< relaunch after Decision::delayMillis
        GiveUp,  ///< crash loop detected; exit typed
    };

    struct Decision
    {
        Action action = Action::Restart;
        uint64_t delayMillis = 0;
        /** Consecutive abnormal exits driving the backoff. */
        size_t consecutiveCrashes = 0;
    };

    explicit SupervisorPolicy(SupervisorConfig cfg = {});

    /** Record a (re)launch at `now_millis`. */
    void onChildStart(uint64_t now_millis);

    /**
     * Decide what to do after an abnormal child exit at
     * `now_millis` (clean exits end supervision; don't report
     * them here).
     */
    Decision onChildExit(uint64_t now_millis);

    /** Abnormal exits observed over the policy's lifetime. */
    uint64_t totalCrashes() const { return totalCrashes_; }

    /** Restarts granted so far. */
    uint64_t restartsGranted() const { return restarts_; }

    size_t consecutiveCrashes() const { return consecutive_; }

    const SupervisorConfig &config() const { return cfg_; }

  private:
    SupervisorConfig cfg_;
    Rng rng_;
    uint64_t startMillis_ = 0;
    bool started_ = false;
    size_t consecutive_ = 0;
    uint64_t totalCrashes_ = 0;
    uint64_t restarts_ = 0;
    /** Abnormal-exit timestamps inside the sliding window. */
    std::deque<uint64_t> recentCrashes_;
};

} // namespace util
} // namespace specinfer

#endif // SPECINFER_UTIL_SUPERVISOR_H
