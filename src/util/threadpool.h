/**
 * @file
 * Persistent shared thread pool for the CPU kernels.
 *
 * Design constraints (DESIGN.md, "CPU execution model"):
 *
 *  - Determinism: parallelFor() statically partitions the index
 *    range into one contiguous slice per worker. Every index is
 *    processed by exactly one invocation of the body, and all
 *    cross-index reductions stay inside the body, so results are
 *    bit-identical at any thread count. The differential oracle
 *    (src/verify) and the fault soak rely on exact token equality
 *    across SPECINFER_THREADS settings.
 *
 *  - One pool per process: kernels grab ThreadPool::global(), whose
 *    size comes from the SPECINFER_THREADS environment variable
 *    (default: hardware_concurrency; 1 = fully serial, no worker
 *    threads exist and the caller runs every index inline).
 *
 *  - Reentrancy: a parallelFor() issued from inside a worker (or
 *    while another parallelFor is in flight) degrades to a serial
 *    inline loop instead of deadlocking.
 *
 * Bodies must not throw: kernels report errors via SPECINFER_CHECK
 * (abort), never via exceptions.
 */

#ifndef SPECINFER_UTIL_THREADPOOL_H
#define SPECINFER_UTIL_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace specinfer {
namespace util {

/**
 * Fixed-size pool of persistent worker threads with a fork-join
 * parallelFor. The calling thread acts as worker 0 and always
 * participates, so a pool of size 1 owns no threads at all.
 */
class ThreadPool
{
  public:
    /**
     * Process-wide pool, lazily constructed. Initial size is the
     * SPECINFER_THREADS environment variable when set and positive,
     * else std::thread::hardware_concurrency().
     */
    static ThreadPool &global();

    /** @param threads Worker count including the caller; 0 = auto. */
    explicit ThreadPool(size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Current worker count including the caller (always >= 1). */
    size_t threads() const { return threads_; }

    /**
     * Total parallelFor/parallelForWorker jobs run so far (including
     * inline and nested ones). The util layer stays free of any
     * observability dependency; the serving runtime publishes this
     * count as a pool-occupancy metric instead.
     */
    uint64_t jobsDispatched() const
    {
        return jobs_.load(std::memory_order_relaxed);
    }

    /**
     * Resize the pool (joins and respawns workers). Used by tests
     * and benchmarks to sweep thread counts at runtime; not safe
     * concurrently with parallelFor.
     * @param threads New count including the caller; 0 = auto.
     */
    void setThreads(size_t threads);

    /**
     * Run body(i) for every i in [begin, end).
     *
     * The range is split into threads() contiguous slices; slice w
     * runs entirely on worker w (the caller is worker 0). Distinct
     * indices must touch disjoint output state; the partition is a
     * pure function of (begin, end, threads()), never of timing.
     */
    void parallelFor(size_t begin, size_t end,
                     const std::function<void(size_t)> &body);

    /**
     * parallelFor variant passing the worker index (in [0,
     * threads())) so bodies can use preallocated per-worker scratch
     * buffers. Scratch contents must be fully overwritten before
     * use — which slice lands on which worker is fixed, but scratch
     * carries garbage from previous calls.
     */
    void parallelForWorker(
        size_t begin, size_t end,
        const std::function<void(size_t, size_t)> &body);

  private:
    void start(size_t threads);
    void stop();

    /** @param seen Value of generation_ when this worker spawned. */
    void workerMain(size_t worker, uint64_t seen);

    /** Slice of [begin_, end_) owned by worker w. */
    std::pair<size_t, size_t> slice(size_t worker) const;

    size_t threads_ = 1;
    std::vector<std::thread> workers_; ///< threads_ - 1 entries
    std::atomic<uint64_t> jobs_{0};    ///< jobs run (see jobsDispatched)

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    uint64_t generation_ = 0;  ///< bumped per job; workers wait on it
    size_t pending_ = 0;       ///< workers still running the job
    bool shutdown_ = false;
    size_t begin_ = 0, end_ = 0;
    const std::function<void(size_t, size_t)> *job_ = nullptr;
};

} // namespace util
} // namespace specinfer

#endif // SPECINFER_UTIL_THREADPOOL_H
