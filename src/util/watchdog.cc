#include "util/watchdog.h"

namespace specinfer {
namespace util {

void
Watchdog::arm()
{
    if (budget_ == 0)
        return;
    armed_ = true;
    ++armCount_;
    deadline_ = now_() + budget_;
}

bool
Watchdog::disarm()
{
    if (!armed_)
        return false;
    armed_ = false;
    const uint64_t end = now_();
    if (end < deadline_) {
        lastOverrun_ = 0;
        consecutiveStalls_ = 0;
        return false;
    }
    lastOverrun_ = end - deadline_;
    ++stallCount_;
    ++consecutiveStalls_;
    return true;
}

bool
Watchdog::expired() const
{
    return armed_ && budget_ != 0 && now_() >= deadline_;
}

} // namespace util
} // namespace specinfer
