#include "util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace specinfer {
namespace util {

namespace {

LogLevel globalLevel = LogLevel::Warn;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
    }
    return "?";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s\n", levelName(level), msg.c_str());
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

} // namespace util
} // namespace specinfer
