/**
 * @file
 * Minimal logging and error-checking helpers.
 *
 * Following gem5's fatal/panic split:
 *  - SPECINFER_CHECK / panic: internal invariant violations (bugs);
 *    abort so a debugger or core dump can capture state.
 *  - SPECINFER_FATAL: user-facing configuration errors; exit(1).
 */

#ifndef SPECINFER_UTIL_LOGGING_H
#define SPECINFER_UTIL_LOGGING_H

#include <sstream>
#include <string>

namespace specinfer {
namespace util {

/** Log severity levels, in increasing order of importance. */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3 };

/** Set the global minimum level that will be printed. */
void setLogLevel(LogLevel level);

/** Current global minimum level. */
LogLevel logLevel();

/** Emit one log line to stderr if level passes the global filter. */
void logMessage(LogLevel level, const std::string &msg);

/** Internal-error abort (simulator bug). Never returns. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** User-error exit (bad configuration). Never returns. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

} // namespace util
} // namespace specinfer

#define SPECINFER_LOG(level, expr)                                       \
    do {                                                                 \
        if (static_cast<int>(level) >=                                   \
            static_cast<int>(::specinfer::util::logLevel())) {           \
            std::ostringstream oss_;                                     \
            oss_ << expr;                                                \
            ::specinfer::util::logMessage(level, oss_.str());            \
        }                                                                \
    } while (0)

#define SPECINFER_DEBUG(expr)                                            \
    SPECINFER_LOG(::specinfer::util::LogLevel::Debug, expr)
#define SPECINFER_INFO(expr)                                             \
    SPECINFER_LOG(::specinfer::util::LogLevel::Info, expr)
#define SPECINFER_WARN(expr)                                             \
    SPECINFER_LOG(::specinfer::util::LogLevel::Warn, expr)

/** Assert an internal invariant; abort with context on failure. */
#define SPECINFER_CHECK(cond, expr)                                      \
    do {                                                                 \
        if (!(cond)) {                                                   \
            std::ostringstream oss_;                                     \
            oss_ << "check failed: " #cond ": " << expr;                 \
            ::specinfer::util::panicImpl(__FILE__, __LINE__,             \
                                         oss_.str());                    \
        }                                                                \
    } while (0)

/** Report an unrecoverable user/configuration error and exit. */
#define SPECINFER_FATAL(expr)                                            \
    do {                                                                 \
        std::ostringstream oss_;                                         \
        oss_ << expr;                                                    \
        ::specinfer::util::fatalImpl(__FILE__, __LINE__, oss_.str());    \
    } while (0)

#endif // SPECINFER_UTIL_LOGGING_H
