#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/logging.h"

namespace specinfer {
namespace util {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    SPECINFER_CHECK(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    SPECINFER_CHECK(cells.size() == headers_.size(),
                    "row arity " << cells.size() << " != header arity "
                                 << headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::toAscii() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream oss;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            oss << row[c];
            for (size_t pad = row[c].size(); pad < widths[c] + 2; ++pad)
                oss << ' ';
        }
        oss << '\n';
    };
    emit_row(headers_);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    for (size_t i = 0; i < total; ++i)
        oss << '-';
    oss << '\n';
    for (const auto &row : rows_)
        emit_row(row);
    return oss.str();
}

std::string
Table::toCsv() const
{
    std::ostringstream oss;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                oss << ',';
            oss << row[c];
        }
        oss << '\n';
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
    return oss.str();
}

std::string
formatDouble(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return std::string(buf);
}

} // namespace util
} // namespace specinfer
