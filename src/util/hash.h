/**
 * @file
 * Content hashing for KV prefix blocks.
 *
 * Prefix sharing interns full KV blocks by the hash of their token
 * content *chained through every preceding block*: block i's hash
 * mixes block i-1's hash before its own tokens, so equal hashes at
 * block i imply (modulo collisions) equal token prefixes of length
 * (i+1) * block_tokens. A single hash comparison then stands in for
 * a whole-prefix comparison, which is what makes the intern table's
 * match walk O(prefix blocks) instead of O(prefix tokens squared).
 *
 * FNV-1a over the 64-bit widening of each token, seeded by the
 * parent hash. Deterministic across platforms and runs — the hash
 * participates in crash snapshots and journal replay.
 */

#ifndef SPECINFER_UTIL_HASH_H
#define SPECINFER_UTIL_HASH_H

#include <cstddef>
#include <cstdint>

namespace specinfer {
namespace util {

/** Chain seed for the first block of a prefix (no parent). */
constexpr uint64_t kHashChainSeed = 0xcbf29ce484222325ULL;

/**
 * Hash of one token block given its predecessor's chain hash
 * (kHashChainSeed for the first block).
 */
inline uint64_t
hashTokenBlock(uint64_t parent, const int *tokens, size_t count)
{
    uint64_t h = parent ^ 0x9e3779b97f4a7c15ULL;
    for (size_t i = 0; i < count; ++i) {
        h ^= static_cast<uint64_t>(static_cast<int64_t>(tokens[i]));
        h *= 0x100000001b3ULL;
        // One round of splitmix-style finalization per token keeps
        // single-token differences from cancelling under FNV's
        // multiply alone.
        h ^= h >> 29;
    }
    h ^= h >> 32;
    // Hash 0 is the "no block" sentinel throughout the allocator.
    return h == 0 ? 0x9e3779b9ULL : h;
}

} // namespace util
} // namespace specinfer

#endif // SPECINFER_UTIL_HASH_H
