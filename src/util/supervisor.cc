#include "util/supervisor.h"

#include <algorithm>

namespace specinfer {
namespace util {

SupervisorPolicy::SupervisorPolicy(SupervisorConfig cfg)
    : cfg_(cfg), rng_(cfg.jitterSeed)
{
}

void
SupervisorPolicy::onChildStart(uint64_t now_millis)
{
    startMillis_ = now_millis;
    started_ = true;
}

SupervisorPolicy::Decision
SupervisorPolicy::onChildExit(uint64_t now_millis)
{
    Decision out;
    ++totalCrashes_;

    // A stable stretch of uptime resets the ladder: the crash that
    // ends a long-lived child is an isolated incident, not the next
    // rung of a loop.
    if (started_ && now_millis - startMillis_ >=
                        cfg_.stableUptimeMillis)
        consecutive_ = 0;
    ++consecutive_;
    out.consecutiveCrashes = consecutive_;

    // Sliding-window crash-loop detection. The window holds raw
    // timestamps (not a counter) so a burst followed by quiet truly
    // ages out.
    if (cfg_.crashLoopWindowMillis > 0 &&
        cfg_.crashLoopCrashes > 0) {
        recentCrashes_.push_back(now_millis);
        while (!recentCrashes_.empty() &&
               now_millis - recentCrashes_.front() >=
                   cfg_.crashLoopWindowMillis)
            recentCrashes_.pop_front();
        if (recentCrashes_.size() >= cfg_.crashLoopCrashes) {
            out.action = Action::GiveUp;
            return out;
        }
    }

    // Seeded-jitter exponential backoff: base 2^(k-1) * base,
    // capped, plus uniform jitter in [0, base/2] — restarting
    // fleets de-synchronize while every schedule replays from the
    // seed. One draw per restart, granted or not, keeps the cursor
    // aligned with the decision count.
    const size_t shift =
        std::min<size_t>(consecutive_ > 0 ? consecutive_ - 1 : 0, 16);
    const uint64_t base =
        std::min(cfg_.backoffBaseMillis << shift,
                 cfg_.backoffCapMillis);
    out.delayMillis = base + rng_.uniformInt(base / 2 + 1);
    out.action = Action::Restart;
    ++restarts_;
    return out;
}

} // namespace util
} // namespace specinfer
