/**
 * @file
 * Deterministic pseudo-random number generation for SpecInfer.
 *
 * All randomness in the library flows through Rng so that every
 * experiment is reproducible from a single 64-bit seed. The generator
 * is xoshiro256** seeded via splitmix64, which gives high-quality
 * streams from arbitrary (including small) seeds.
 */

#ifndef SPECINFER_UTIL_RNG_H
#define SPECINFER_UTIL_RNG_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace specinfer {
namespace util {

/**
 * Complete serializable state of an Rng stream.
 *
 * Capturing the state mid-stream and restoring it later resumes the
 * stream bit-identically (including the cached Box-Muller pair), so
 * a generator can be checkpointed across a crash and the replayed
 * tail of draws matches the original exactly. This is the "RNG
 * cursor" the serving runtime journals per decode step.
 */
struct RngState
{
    uint64_t s[4] = {0, 0, 0, 0};
    bool hasCachedNormal = false;
    double cachedNormal = 0.0;

    bool operator==(const RngState &o) const
    {
        return s[0] == o.s[0] && s[1] == o.s[1] && s[2] == o.s[2] &&
               s[3] == o.s[3] &&
               hasCachedNormal == o.hasCachedNormal &&
               cachedNormal == o.cachedNormal;
    }
};

/**
 * Deterministic random number generator (xoshiro256**).
 *
 * Not thread-safe; use one instance per logical stream. Child streams
 * can be derived with fork() to decorrelate subsystems that share a
 * top-level seed.
 */
class Rng
{
  public:
    /** Construct a generator from a 64-bit seed via splitmix64. */
    explicit Rng(uint64_t seed = 0x5eed5eed5eedULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0 */
    uint64_t uniformInt(uint64_t n);

    /** Uniform integer in [lo, hi]. @pre lo <= hi */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Standard normal variate (Box-Muller, cached pair). */
    double normal();

    /** Normal variate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Sample an index from an unnormalized non-negative weight vector.
     *
     * @param weights Unnormalized weights; at least one must be > 0.
     * @return Index in [0, weights.size()).
     */
    size_t categorical(const std::vector<float> &weights);

    /** Derive an independent child generator. */
    Rng fork();

    /** Snapshot the complete generator state (see RngState). */
    RngState state() const;

    /** Resume from a snapshot; subsequent draws replay the original
     *  stream bit-identically. */
    void setState(const RngState &state);

    /** In-place Fisher-Yates shuffle of an index vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        for (size_t i = items.size(); i > 1; --i) {
            size_t j = uniformInt(static_cast<uint64_t>(i));
            std::swap(items[i - 1], items[j]);
        }
    }

  private:
    uint64_t state_[4];
    bool hasCachedNormal_ = false;
    double cachedNormal_ = 0.0;
};

/** splitmix64 step; useful for hashing strings/ids into seeds. */
uint64_t splitmix64(uint64_t &state);

/** Stable 64-bit hash of a byte string (FNV-1a), for seeding. */
uint64_t hashString(const char *str);

} // namespace util
} // namespace specinfer

#endif // SPECINFER_UTIL_RNG_H
