#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace specinfer {
namespace util {

void
RunningStat::add(double x)
{
    ++count_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStat::mean() const
{
    return count_ == 0 ? 0.0 : mean_;
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

double
percentile(std::vector<double> samples, double p)
{
    SPECINFER_CHECK(!samples.empty(), "percentile of empty sample set");
    SPECINFER_CHECK(p >= 0.0 && p <= 100.0, "percentile out of range");
    std::sort(samples.begin(), samples.end());
    if (samples.size() == 1)
        return samples[0];
    double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
    size_t lo = static_cast<size_t>(std::floor(rank));
    size_t hi = static_cast<size_t>(std::ceil(rank));
    double frac = rank - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples))
{
    SPECINFER_CHECK(!sorted_.empty(), "EmpiricalCdf of empty samples");
    std::sort(sorted_.begin(), sorted_.end());
}

double
EmpiricalCdf::valueAt(double q) const
{
    SPECINFER_CHECK(q >= 0.0 && q <= 1.0, "quantile out of range");
    if (q <= 0.0)
        return sorted_.front();
    size_t idx = static_cast<size_t>(
        std::ceil(q * static_cast<double>(sorted_.size()))) - 1;
    idx = std::min(idx, sorted_.size() - 1);
    return sorted_[idx];
}

double
EmpiricalCdf::cdfAt(double x) const
{
    auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin()) /
           static_cast<double>(sorted_.size());
}

std::vector<std::pair<double, double>>
EmpiricalCdf::curve(size_t n) const
{
    SPECINFER_CHECK(n >= 2, "CDF curve needs at least two points");
    std::vector<std::pair<double, double>> pts;
    pts.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        double q = static_cast<double>(i) / static_cast<double>(n - 1);
        pts.emplace_back(q, valueAt(q));
    }
    return pts;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    SPECINFER_CHECK(hi > lo, "histogram range must be non-empty");
    SPECINFER_CHECK(bins > 0, "histogram needs at least one bin");
}

void
Histogram::add(double x)
{
    double t = (x - lo_) / (hi_ - lo_);
    int64_t bin = static_cast<int64_t>(
        t * static_cast<double>(counts_.size()));
    bin = std::clamp<int64_t>(bin, 0,
                              static_cast<int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<size_t>(bin)];
    ++total_;
}

size_t
Histogram::binCount(size_t bin) const
{
    SPECINFER_CHECK(bin < counts_.size(), "histogram bin out of range");
    return counts_[bin];
}

double
Histogram::binLow(size_t bin) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
           static_cast<double>(counts_.size());
}

double
Histogram::binHigh(size_t bin) const
{
    return binLow(bin + 1);
}

std::string
Histogram::toAscii(size_t width) const
{
    size_t peak = 1;
    for (size_t c : counts_)
        peak = std::max(peak, c);
    std::ostringstream oss;
    for (size_t i = 0; i < counts_.size(); ++i) {
        size_t bar = counts_[i] * width / peak;
        oss << "[" << binLow(i) << ", " << binHigh(i) << ") ";
        for (size_t j = 0; j < bar; ++j)
            oss << '#';
        oss << " " << counts_[i] << "\n";
    }
    return oss.str();
}

} // namespace util
} // namespace specinfer
