#include "util/flags.h"

#include <algorithm>
#include <cstdlib>

#include "util/logging.h"

namespace specinfer {
namespace util {

Flags::Flags(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(std::move(arg));
            continue;
        }
        std::string body = arg.substr(2);
        SPECINFER_CHECK(!body.empty(), "bare '--' argument");
        size_t eq = body.find('=');
        if (eq != std::string::npos) {
            values_[body.substr(0, eq)] = body.substr(eq + 1);
        } else if (i + 1 < argc &&
                   std::string(argv[i + 1]).rfind("--", 0) != 0) {
            values_[body] = argv[++i];
        } else {
            values_[body] = ""; // boolean-style flag
        }
    }
}

bool
Flags::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

std::string
Flags::get(const std::string &name, const std::string &def) const
{
    auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
}

int64_t
Flags::getInt(const std::string &name, int64_t def) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    int64_t value = std::strtoll(it->second.c_str(), &end, 10);
    if (end == nullptr || *end != '\0')
        SPECINFER_FATAL("flag --" << name << " expects an integer, "
                                  << "got '" << it->second << "'");
    return value;
}

double
Flags::getDouble(const std::string &name, double def) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    double value = std::strtod(it->second.c_str(), &end);
    if (end == nullptr || *end != '\0')
        SPECINFER_FATAL("flag --" << name << " expects a number, "
                                  << "got '" << it->second << "'");
    return value;
}

bool
Flags::getBool(const std::string &name, bool def) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    if (it->second.empty() || it->second == "true" ||
        it->second == "1")
        return true;
    if (it->second == "false" || it->second == "0")
        return false;
    SPECINFER_FATAL("flag --" << name << " expects true/false, got '"
                              << it->second << "'");
}

void
Flags::allowOnly(const std::vector<std::string> &names) const
{
    for (const auto &[key, value] : values_) {
        (void)value;
        if (std::find(names.begin(), names.end(), key) ==
            names.end())
            SPECINFER_FATAL("unknown flag --" << key);
    }
}

} // namespace util
} // namespace specinfer
