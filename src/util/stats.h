/**
 * @file
 * Descriptive statistics used by the experiment harnesses:
 * running moments, percentiles, empirical CDFs, and histograms.
 */

#ifndef SPECINFER_UTIL_STATS_H
#define SPECINFER_UTIL_STATS_H

#include <cstddef>
#include <string>
#include <vector>

namespace specinfer {
namespace util {

/**
 * Online accumulator for count/mean/variance/min/max (Welford).
 */
class RunningStat
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    /** Number of samples folded in so far. */
    size_t count() const { return count_; }

    /** Sample mean; 0 when empty. */
    double mean() const;

    /** Unbiased sample variance; 0 with fewer than two samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest sample; +inf when empty. */
    double min() const { return min_; }

    /** Largest sample; -inf when empty. */
    double max() const { return max_; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Reset to the empty state. */
    void reset();

  private:
    size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 1.0e300;
    double max_ = -1.0e300;
};

/**
 * Linear-interpolated percentile of a sample vector.
 *
 * @param samples Non-empty sample set (copied and sorted internally).
 * @param p Percentile in [0, 100].
 */
double percentile(std::vector<double> samples, double p);

/**
 * Empirical CDF over a fixed sample set.
 *
 * Built once from samples; supports both directions of lookup:
 * value at a given CDF quantile, and CDF at a given value.
 */
class EmpiricalCdf
{
  public:
    /** Build from samples. @pre samples is non-empty. */
    explicit EmpiricalCdf(std::vector<double> samples);

    /** Inverse CDF: smallest sample with CDF >= q, q in [0, 1]. */
    double valueAt(double q) const;

    /** Fraction of samples <= x. */
    double cdfAt(double x) const;

    /** Number of underlying samples. */
    size_t count() const { return sorted_.size(); }

    /**
     * Evaluate the inverse CDF on an even grid of n points, producing
     * (quantile, value) pairs suitable for plotting a CDF curve.
     */
    std::vector<std::pair<double, double>> curve(size_t n) const;

  private:
    std::vector<double> sorted_;
};

/**
 * Fixed-bin histogram over [lo, hi); out-of-range samples clamp to
 * the first/last bin.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, size_t bins);

    void add(double x);

    size_t binCount(size_t bin) const;
    size_t totalCount() const { return total_; }
    size_t bins() const { return counts_.size(); }
    double binLow(size_t bin) const;
    double binHigh(size_t bin) const;

    /** Render a compact ASCII bar chart. */
    std::string toAscii(size_t width = 40) const;

  private:
    double lo_;
    double hi_;
    std::vector<size_t> counts_;
    size_t total_ = 0;
};

} // namespace util
} // namespace specinfer

#endif // SPECINFER_UTIL_STATS_H
