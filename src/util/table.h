/**
 * @file
 * Fixed-width ASCII table and CSV emitters used by the benchmark
 * harnesses to print rows in the same layout as the paper's tables.
 */

#ifndef SPECINFER_UTIL_TABLE_H
#define SPECINFER_UTIL_TABLE_H

#include <string>
#include <vector>

namespace specinfer {
namespace util {

/**
 * Accumulates rows of string cells and renders them as an aligned
 * ASCII table or as CSV.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Render as an aligned ASCII table. */
    std::string toAscii() const;

    /** Render as CSV (no quoting; cells must not contain commas). */
    std::string toCsv() const;

    size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given number of decimals. */
std::string formatDouble(double value, int decimals = 2);

} // namespace util
} // namespace specinfer

#endif // SPECINFER_UTIL_TABLE_H
