#include "util/threadpool.h"

#include <cstdlib>

#include "util/logging.h"

namespace specinfer {
namespace util {

namespace {

size_t
defaultThreads()
{
    const char *env = std::getenv("SPECINFER_THREADS");
    if (env != nullptr) {
        long parsed = std::atol(env);
        if (parsed > 0)
            return static_cast<size_t>(parsed);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<size_t>(hw) : 1;
}

/** True while this thread is executing a parallelFor slice. */
thread_local bool tls_in_parallel = false;

} // namespace

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

ThreadPool::ThreadPool(size_t threads)
{
    start(threads == 0 ? defaultThreads() : threads);
}

ThreadPool::~ThreadPool()
{
    stop();
}

void
ThreadPool::start(size_t threads)
{
    SPECINFER_CHECK(threads >= 1, "thread pool needs >= 1 worker");
    threads_ = threads;
    shutdown_ = false;
    workers_.reserve(threads_ - 1);
    // generation_ survives setThreads(); respawned workers must
    // treat the current value as "no job yet" or they would chase a
    // job that already completed (and a job_ long since nulled).
    const uint64_t seen = generation_;
    for (size_t w = 1; w < threads_; ++w)
        workers_.emplace_back([this, w, seen] { workerMain(w, seen); });
}

void
ThreadPool::stop()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : workers_)
        t.join();
    workers_.clear();
}

void
ThreadPool::setThreads(size_t threads)
{
    stop();
    start(threads == 0 ? defaultThreads() : threads);
}

std::pair<size_t, size_t>
ThreadPool::slice(size_t worker) const
{
    const size_t len = end_ - begin_;
    const size_t lo = begin_ + worker * len / threads_;
    const size_t hi = begin_ + (worker + 1) * len / threads_;
    return {lo, hi};
}

void
ThreadPool::workerMain(size_t worker, uint64_t seen)
{
    for (;;) {
        const std::function<void(size_t, size_t)> *job = nullptr;
        size_t lo = 0, hi = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return shutdown_ || generation_ != seen;
            });
            if (shutdown_)
                return;
            seen = generation_;
            job = job_;
            std::tie(lo, hi) = slice(worker);
        }
        tls_in_parallel = true;
        for (size_t i = lo; i < hi; ++i)
            (*job)(i, worker);
        tls_in_parallel = false;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (--pending_ == 0)
                done_.notify_all();
        }
    }
}

void
ThreadPool::parallelForWorker(
    size_t begin, size_t end,
    const std::function<void(size_t, size_t)> &body)
{
    if (begin >= end)
        return;
    jobs_.fetch_add(1, std::memory_order_relaxed);
    // Serial pool, nested call, or a range too small to split:
    // run inline on the caller. Worker index 0 keeps scratch-buffer
    // indexing valid in every case.
    if (threads_ == 1 || tls_in_parallel || end - begin == 1) {
        for (size_t i = begin; i < end; ++i)
            body(i, 0);
        return;
    }
    {
        std::unique_lock<std::mutex> lock(mutex_);
        begin_ = begin;
        end_ = end;
        job_ = &body;
        pending_ = threads_ - 1;
        ++generation_;
    }
    wake_.notify_all();
    // The caller is worker 0.
    const size_t len = end - begin;
    const size_t hi = begin + len / threads_;
    tls_in_parallel = true;
    for (size_t i = begin; i < hi; ++i)
        body(i, 0);
    tls_in_parallel = false;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [&] { return pending_ == 0; });
        job_ = nullptr;
    }
}

void
ThreadPool::parallelFor(size_t begin, size_t end,
                        const std::function<void(size_t)> &body)
{
    parallelForWorker(begin, end,
                      [&body](size_t i, size_t) { body(i); });
}

} // namespace util
} // namespace specinfer
