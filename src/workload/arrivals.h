/**
 * @file
 * Request arrival processes for serving experiments.
 *
 * The paper's serving runs replay conversation traces; the load a
 * scheduler sees is shaped by *when* requests arrive, so the
 * continuous-batching experiments need an arrival process. Arrival
 * times are expressed in scheduler iterations (one iteration = one
 * LLM pass), deterministic per seed.
 */

#ifndef SPECINFER_WORKLOAD_ARRIVALS_H
#define SPECINFER_WORKLOAD_ARRIVALS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace specinfer {
namespace workload {

/**
 * Deterministic Poisson arrival schedule: exponential inter-arrival
 * gaps with the given mean, accumulated and rounded down to
 * iteration indices (several requests may share an iteration).
 *
 * @param count Number of arrivals.
 * @param mean_gap_iterations Mean inter-arrival gap.
 * @param seed RNG seed.
 * @return Non-decreasing arrival iterations, length `count`.
 */
std::vector<size_t> poissonArrivals(size_t count,
                                    double mean_gap_iterations,
                                    uint64_t seed);

/** Evenly spaced arrivals: i-th request at floor(i * gap). */
std::vector<size_t> uniformArrivals(size_t count, double gap);

/** All requests arrive at iteration 0 (closed-loop burst). */
std::vector<size_t> burstArrivals(size_t count);

/** One arrival of a multi-tenant trace: when, and which tenant. */
struct TenantArrival
{
    size_t iteration = 0;
    size_t tenant = 0;
};

/**
 * Bursty multi-tenant arrivals, the traffic shape prefix sharing
 * targets: tenants wake in bursts (a fleet of users behind one
 * system prompt hitting the service together). Burst start times
 * follow a Poisson process with the given mean gap; each burst
 * belongs to one uniformly drawn tenant and lands
 * 1 + Exp(mean_burst_size - 1) requests on the same iteration.
 *
 * @param count Total arrivals generated.
 * @param tenants Number of tenants to draw bursts from.
 * @param mean_gap_iterations Mean gap between burst starts.
 * @param mean_burst_size Mean requests per burst (>= 1).
 * @param seed RNG seed.
 * @return `count` arrivals with non-decreasing iterations.
 */
std::vector<TenantArrival> burstyMultiTenantArrivals(
    size_t count, size_t tenants, double mean_gap_iterations,
    double mean_burst_size, uint64_t seed);

/** One arrival of a QoS-classed trace: when, and which priority
 *  class (0 = interactive, 1 = standard, 2 = batch — matches
 *  runtime::Priority without depending on the runtime layer). */
struct ClassedArrival
{
    size_t iteration = 0;
    uint8_t priority = 1;
};

/**
 * Bursty mixed-QoS arrivals, the traffic shape overload control
 * targets: interactive and standard requests trickle in one at a
 * time on a Poisson process, while batch traffic slams the queue in
 * bursts (an offline pipeline submitting a whole shard at once).
 * Every arrival event draws its class from `mix` (three relative
 * weights, interactive/standard/batch); a batch event lands
 * 1 + Exp(mean_batch_burst - 1) requests on the same iteration.
 *
 * @param count Total arrivals generated.
 * @param mix Relative class weights {interactive, standard, batch};
 *            must sum to a positive value.
 * @param mean_gap_iterations Mean gap between arrival events.
 * @param mean_batch_burst Mean requests per batch burst (>= 1).
 * @param seed RNG seed.
 * @return `count` arrivals with non-decreasing iterations.
 */
std::vector<ClassedArrival> classedBurstyArrivals(
    size_t count, const double (&mix)[3],
    double mean_gap_iterations, double mean_batch_burst,
    uint64_t seed);

} // namespace workload
} // namespace specinfer

#endif // SPECINFER_WORKLOAD_ARRIVALS_H
