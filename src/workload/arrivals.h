/**
 * @file
 * Request arrival processes for serving experiments.
 *
 * The paper's serving runs replay conversation traces; the load a
 * scheduler sees is shaped by *when* requests arrive, so the
 * continuous-batching experiments need an arrival process. Arrival
 * times are expressed in scheduler iterations (one iteration = one
 * LLM pass), deterministic per seed.
 */

#ifndef SPECINFER_WORKLOAD_ARRIVALS_H
#define SPECINFER_WORKLOAD_ARRIVALS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace specinfer {
namespace workload {

/**
 * Deterministic Poisson arrival schedule: exponential inter-arrival
 * gaps with the given mean, accumulated and rounded down to
 * iteration indices (several requests may share an iteration).
 *
 * @param count Number of arrivals.
 * @param mean_gap_iterations Mean inter-arrival gap.
 * @param seed RNG seed.
 * @return Non-decreasing arrival iterations, length `count`.
 */
std::vector<size_t> poissonArrivals(size_t count,
                                    double mean_gap_iterations,
                                    uint64_t seed);

/** Evenly spaced arrivals: i-th request at floor(i * gap). */
std::vector<size_t> uniformArrivals(size_t count, double gap);

/** All requests arrive at iteration 0 (closed-loop burst). */
std::vector<size_t> burstArrivals(size_t count);

} // namespace workload
} // namespace specinfer

#endif // SPECINFER_WORKLOAD_ARRIVALS_H
