#include "workload/arrivals.h"

#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace specinfer {
namespace workload {

std::vector<size_t>
poissonArrivals(size_t count, double mean_gap_iterations,
                uint64_t seed)
{
    SPECINFER_CHECK(mean_gap_iterations > 0.0,
                    "mean inter-arrival gap must be positive");
    util::Rng rng(seed ^ 0xa881u);
    std::vector<size_t> arrivals;
    arrivals.reserve(count);
    double t = 0.0;
    for (size_t i = 0; i < count; ++i) {
        double u;
        do {
            u = rng.uniform();
        } while (u <= 0.0);
        t += -mean_gap_iterations * std::log(u);
        arrivals.push_back(static_cast<size_t>(t));
    }
    return arrivals;
}

std::vector<size_t>
uniformArrivals(size_t count, double gap)
{
    SPECINFER_CHECK(gap >= 0.0, "gap must be non-negative");
    std::vector<size_t> arrivals;
    arrivals.reserve(count);
    for (size_t i = 0; i < count; ++i)
        arrivals.push_back(static_cast<size_t>(
            gap * static_cast<double>(i)));
    return arrivals;
}

std::vector<size_t>
burstArrivals(size_t count)
{
    return std::vector<size_t>(count, 0);
}

} // namespace workload
} // namespace specinfer
