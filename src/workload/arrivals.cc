#include "workload/arrivals.h"

#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace specinfer {
namespace workload {

std::vector<size_t>
poissonArrivals(size_t count, double mean_gap_iterations,
                uint64_t seed)
{
    SPECINFER_CHECK(mean_gap_iterations > 0.0,
                    "mean inter-arrival gap must be positive");
    util::Rng rng(seed ^ 0xa881u);
    std::vector<size_t> arrivals;
    arrivals.reserve(count);
    double t = 0.0;
    for (size_t i = 0; i < count; ++i) {
        double u;
        do {
            u = rng.uniform();
        } while (u <= 0.0);
        t += -mean_gap_iterations * std::log(u);
        arrivals.push_back(static_cast<size_t>(t));
    }
    return arrivals;
}

std::vector<size_t>
uniformArrivals(size_t count, double gap)
{
    SPECINFER_CHECK(gap >= 0.0, "gap must be non-negative");
    std::vector<size_t> arrivals;
    arrivals.reserve(count);
    for (size_t i = 0; i < count; ++i)
        arrivals.push_back(static_cast<size_t>(
            gap * static_cast<double>(i)));
    return arrivals;
}

std::vector<size_t>
burstArrivals(size_t count)
{
    return std::vector<size_t>(count, 0);
}

std::vector<TenantArrival>
burstyMultiTenantArrivals(size_t count, size_t tenants,
                          double mean_gap_iterations,
                          double mean_burst_size, uint64_t seed)
{
    SPECINFER_CHECK(tenants > 0, "need at least one tenant");
    SPECINFER_CHECK(mean_gap_iterations > 0.0,
                    "mean burst gap must be positive");
    SPECINFER_CHECK(mean_burst_size >= 1.0,
                    "bursts hold at least one request");
    util::Rng rng(seed ^ 0xb0257u);
    std::vector<TenantArrival> arrivals;
    arrivals.reserve(count);
    double t = 0.0;
    while (arrivals.size() < count) {
        double u;
        do {
            u = rng.uniform();
        } while (u <= 0.0);
        t += -mean_gap_iterations * std::log(u);
        const size_t tenant = static_cast<size_t>(
            rng.uniformInt(static_cast<uint64_t>(tenants)));
        double v;
        do {
            v = rng.uniform();
        } while (v <= 0.0);
        size_t burst =
            1 + static_cast<size_t>(-(mean_burst_size - 1.0) *
                                    std::log(v));
        for (size_t i = 0; i < burst && arrivals.size() < count; ++i)
            arrivals.push_back({static_cast<size_t>(t), tenant});
    }
    return arrivals;
}

std::vector<ClassedArrival>
classedBurstyArrivals(size_t count, const double (&mix)[3],
                      double mean_gap_iterations,
                      double mean_batch_burst, uint64_t seed)
{
    SPECINFER_CHECK(mean_gap_iterations > 0.0,
                    "mean arrival gap must be positive");
    SPECINFER_CHECK(mean_batch_burst >= 1.0,
                    "batch bursts hold at least one request");
    const double total = mix[0] + mix[1] + mix[2];
    SPECINFER_CHECK(total > 0.0 && mix[0] >= 0.0 && mix[1] >= 0.0 &&
                        mix[2] >= 0.0,
                    "class mix needs non-negative weights with a "
                    "positive sum");
    util::Rng rng(seed ^ 0xc1a55u);
    std::vector<ClassedArrival> arrivals;
    arrivals.reserve(count);
    double t = 0.0;
    while (arrivals.size() < count) {
        double u;
        do {
            u = rng.uniform();
        } while (u <= 0.0);
        t += -mean_gap_iterations * std::log(u);
        const double pick = rng.uniform() * total;
        const uint8_t cls =
            pick < mix[0] ? 0 : (pick < mix[0] + mix[1] ? 1 : 2);
        size_t burst = 1;
        if (cls == 2 && mean_batch_burst > 1.0) {
            double v;
            do {
                v = rng.uniform();
            } while (v <= 0.0);
            burst = 1 + static_cast<size_t>(
                            -(mean_batch_burst - 1.0) * std::log(v));
        }
        for (size_t i = 0; i < burst && arrivals.size() < count; ++i)
            arrivals.push_back({static_cast<size_t>(t), cls});
    }
    return arrivals;
}

} // namespace workload
} // namespace specinfer
