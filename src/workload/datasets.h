/**
 * @file
 * Synthetic prompt datasets standing in for the paper's five prompt
 * sources (Alpaca, ChatGPT Prompts, WebQA, Chatbot Instruction
 * Prompts, PIQA).
 *
 * The paper uses only the prompts/questions of these datasets to
 * simulate conversation traces; reporting per-dataset numbers shows
 * robustness across workloads. Our stand-ins are deterministic
 * generators with per-dataset length distributions and Zipfian token
 * statistics over dataset-specific vocabulary orderings, preserving
 * the "five distinct workloads" structure (DESIGN.md §2).
 */

#ifndef SPECINFER_WORKLOAD_DATASETS_H
#define SPECINFER_WORKLOAD_DATASETS_H

#include <cstdint>
#include <string>
#include <vector>

namespace specinfer {
namespace workload {

/**
 * Deterministic prompt generator. prompt(i) is a pure function of
 * (dataset name, vocab size, i), so experiments are reproducible
 * and comparable across systems.
 */
class PromptDataset
{
  public:
    /**
     * @param name Dataset label.
     * @param vocab_size Token ids are drawn from [1, vocab_size)
     *        (token 0 is reserved for EOS and never appears).
     * @param mean_len Mean prompt length in tokens.
     * @param stddev_len Prompt length standard deviation.
     * @param zipf_exponent Token-frequency skew (larger = skewier).
     */
    PromptDataset(std::string name, size_t vocab_size, double mean_len,
                  double stddev_len, double zipf_exponent);

    /** One of the five named presets (see allNames()). */
    static PromptDataset named(const std::string &name,
                               size_t vocab_size);

    /** The five dataset names used throughout the evaluation. */
    static const std::vector<std::string> &allNames();

    const std::string &name() const { return name_; }
    size_t vocabSize() const { return vocabSize_; }

    /** Deterministic prompt for the given index (length >= 2). */
    std::vector<int> prompt(size_t index) const;

  private:
    std::string name_;
    size_t vocabSize_;
    double meanLen_;
    double stddevLen_;
    std::vector<float> tokenWeights_; ///< Zipfian over permuted vocab
    uint64_t seed_;
};

/**
 * Multi-tenant prompt generator with shared prefixes, for the
 * prefix-sharing KV experiments: every prompt is
 * [common context][tenant prefix][unique suffix]. Requests from the
 * same tenant share their whole prefix (common + tenant); requests
 * from different tenants still share the common context. Both
 * shared parts have fixed token counts so callers can align them to
 * the KV pool's block size.
 */
class SharedPrefixDataset
{
  public:
    /**
     * @param name Workload label (seeds the token streams).
     * @param vocab_size Token ids in [1, vocab_size).
     * @param tenants Number of distinct tenant prefixes.
     * @param common_tokens Context tokens shared by every tenant.
     * @param tenant_tokens Additional per-tenant prefix tokens.
     * @param suffix_mean / suffix_stddev Unique-suffix length
     *        distribution (PromptDataset statistics).
     */
    SharedPrefixDataset(std::string name, size_t vocab_size,
                        size_t tenants, size_t common_tokens,
                        size_t tenant_tokens, double suffix_mean,
                        double suffix_stddev);

    /** Chat preset: no common context, one system prompt of
     *  `prefix_tokens` tokens per tenant, short user turns. */
    static SharedPrefixDataset chat(size_t vocab_size, size_t tenants,
                                    size_t prefix_tokens);

    /** RAG preset: a `context_tokens` corpus context shared by all
     *  tenants, a short per-tenant retrieval slice, and a question
     *  suffix. */
    static SharedPrefixDataset rag(size_t vocab_size, size_t tenants,
                                   size_t context_tokens);

    const std::string &name() const { return name_; }
    size_t tenants() const { return tenantPrefixes_.size(); }
    size_t prefixTokens() const
    {
        return common_.size() +
               (tenantPrefixes_.empty() ? 0
                                        : tenantPrefixes_[0].size());
    }

    /** Deterministic tenant assignment for a request index. */
    size_t tenantOf(size_t index) const;

    /** The full shared prefix of one tenant (common + tenant). */
    std::vector<int> tenantPrefix(size_t tenant) const;

    /** Prompt for request `index`: tenantPrefix(tenantOf(index))
     *  followed by a unique suffix (suffix length >= 2). */
    std::vector<int> prompt(size_t index) const;

  private:
    std::string name_;
    std::vector<int> common_;
    std::vector<std::vector<int>> tenantPrefixes_;
    PromptDataset suffixes_;
    uint64_t seed_;
};

} // namespace workload
} // namespace specinfer

#endif // SPECINFER_WORKLOAD_DATASETS_H
