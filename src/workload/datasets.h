/**
 * @file
 * Synthetic prompt datasets standing in for the paper's five prompt
 * sources (Alpaca, ChatGPT Prompts, WebQA, Chatbot Instruction
 * Prompts, PIQA).
 *
 * The paper uses only the prompts/questions of these datasets to
 * simulate conversation traces; reporting per-dataset numbers shows
 * robustness across workloads. Our stand-ins are deterministic
 * generators with per-dataset length distributions and Zipfian token
 * statistics over dataset-specific vocabulary orderings, preserving
 * the "five distinct workloads" structure (DESIGN.md §2).
 */

#ifndef SPECINFER_WORKLOAD_DATASETS_H
#define SPECINFER_WORKLOAD_DATASETS_H

#include <cstdint>
#include <string>
#include <vector>

namespace specinfer {
namespace workload {

/**
 * Deterministic prompt generator. prompt(i) is a pure function of
 * (dataset name, vocab size, i), so experiments are reproducible
 * and comparable across systems.
 */
class PromptDataset
{
  public:
    /**
     * @param name Dataset label.
     * @param vocab_size Token ids are drawn from [1, vocab_size)
     *        (token 0 is reserved for EOS and never appears).
     * @param mean_len Mean prompt length in tokens.
     * @param stddev_len Prompt length standard deviation.
     * @param zipf_exponent Token-frequency skew (larger = skewier).
     */
    PromptDataset(std::string name, size_t vocab_size, double mean_len,
                  double stddev_len, double zipf_exponent);

    /** One of the five named presets (see allNames()). */
    static PromptDataset named(const std::string &name,
                               size_t vocab_size);

    /** The five dataset names used throughout the evaluation. */
    static const std::vector<std::string> &allNames();

    const std::string &name() const { return name_; }
    size_t vocabSize() const { return vocabSize_; }

    /** Deterministic prompt for the given index (length >= 2). */
    std::vector<int> prompt(size_t index) const;

  private:
    std::string name_;
    size_t vocabSize_;
    double meanLen_;
    double stddevLen_;
    std::vector<float> tokenWeights_; ///< Zipfian over permuted vocab
    uint64_t seed_;
};

} // namespace workload
} // namespace specinfer

#endif // SPECINFER_WORKLOAD_DATASETS_H
