#include "workload/trace.h"

#include <algorithm>

#include "util/logging.h"

namespace specinfer {
namespace workload {

void
TraceAggregator::add(const core::SpecStats &stats)
{
    // Per-step averages describe speculate+verify iterations;
    // prefill-only steps absorb prompt tokens without emitting and
    // would deflate them (Table 2's avg-verified metric).
    for (const core::StepRecord &s : stats.steps) {
        if (s.prefill)
            continue;
        sumVerified_ += static_cast<double>(s.verifiedTokens);
        sumLlmTokens_ += static_cast<double>(s.llmChunkTokens);
        sumSsmTokens_ += static_cast<double>(s.ssmTokensDecoded);
        sumTreeSize_ += static_cast<double>(s.treeSize);
    }
    totalSteps_ += stats.steps.size();
    decodeSteps_ += stats.decodeSteps();
    prefillSteps_ += stats.steps.size() - stats.decodeSteps();
    perRequestVerified_.push_back(stats.avgVerifiedPerStep());
}

double
TraceAggregator::avgVerifiedPerStep() const
{
    return decodeSteps_ == 0
               ? 0.0
               : sumVerified_ / static_cast<double>(decodeSteps_);
}

double
TraceAggregator::avgLlmTokensPerStep() const
{
    return decodeSteps_ == 0
               ? 0.0
               : sumLlmTokens_ / static_cast<double>(decodeSteps_);
}

double
TraceAggregator::avgSsmTokensPerStep() const
{
    return decodeSteps_ == 0
               ? 0.0
               : sumSsmTokens_ / static_cast<double>(decodeSteps_);
}

simulator::SpeculationProfile
TraceAggregator::profile(const core::ExpansionConfig &expansion) const
{
    SPECINFER_CHECK(decodeSteps_ > 0, "empty trace");
    simulator::SpeculationProfile p;
    p.avgVerifiedPerIter = std::max(1.0, avgVerifiedPerStep());
    p.avgLlmTokensPerIter = std::max(1.0, avgLlmTokensPerStep());

    // Per-level SSM chunks: catch-up level (the newly verified
    // tokens, ~ avgVerified) followed by the expansion frontier
    // sizes, deflated to the measured tree size.
    const double max_nodes =
        static_cast<double>(expansion.maxNodes());
    const double measured =
        decodeSteps_ == 0 ? max_nodes
                          : sumTreeSize_ /
                                static_cast<double>(decodeSteps_);
    const double deflate =
        max_nodes > 0.0 ? std::min(1.0, measured / max_nodes) : 1.0;
    p.ssmChunkSizes.clear();
    p.ssmChunkSizes.push_back(p.avgVerifiedPerIter); // catch-up
    double frontier = 1.0;
    for (size_t k : expansion.widths) {
        frontier *= static_cast<double>(k);
        p.ssmChunkSizes.push_back(std::max(1.0, frontier * deflate));
    }
    return p;
}

TraceAggregator
runEngineOnDataset(const core::SpecEngine &engine,
                   const PromptDataset &dataset, const RunConfig &cfg)
{
    TraceAggregator agg;
    for (size_t i = 0; i < cfg.prompts; ++i) {
        std::vector<int> prompt =
            dataset.prompt(cfg.firstPrompt + i);
        core::GenerationResult res =
            engine.generate(prompt, cfg.seedBase + i);
        agg.add(res.stats);
    }
    return agg;
}

} // namespace workload
} // namespace specinfer
