#include "workload/datasets.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace specinfer {
namespace workload {

PromptDataset::PromptDataset(std::string name, size_t vocab_size,
                             double mean_len, double stddev_len,
                             double zipf_exponent)
    : name_(std::move(name)),
      vocabSize_(vocab_size),
      meanLen_(mean_len),
      stddevLen_(stddev_len),
      seed_(util::hashString(name_.c_str()) ^ vocab_size)
{
    SPECINFER_CHECK(vocab_size >= 4, "vocabulary too small");
    SPECINFER_CHECK(mean_len >= 2.0, "prompts must average >= 2 tokens");

    // Zipfian weights over a dataset-specific permutation of the
    // vocabulary (token 0 = EOS excluded).
    std::vector<int> perm;
    perm.reserve(vocab_size - 1);
    for (size_t t = 1; t < vocab_size; ++t)
        perm.push_back(static_cast<int>(t));
    util::Rng rng(seed_ ^ 0x7e57ab1e);
    rng.shuffle(perm);
    tokenWeights_.assign(vocab_size, 0.0f);
    for (size_t rank = 0; rank < perm.size(); ++rank) {
        tokenWeights_[static_cast<size_t>(perm[rank])] =
            static_cast<float>(
                1.0 / std::pow(static_cast<double>(rank + 1),
                               zipf_exponent));
    }
}

PromptDataset
PromptDataset::named(const std::string &name, size_t vocab_size)
{
    // Length statistics loosely mirror the real datasets: WebQA has
    // short questions, PIQA has longer physical-commonsense goals,
    // the instruction sets sit in between.
    if (name == "Alpaca")
        return PromptDataset(name, vocab_size, 18.0, 7.0, 1.05);
    if (name == "CP")
        return PromptDataset(name, vocab_size, 24.0, 10.0, 0.95);
    if (name == "WebQA")
        return PromptDataset(name, vocab_size, 9.0, 3.0, 1.25);
    if (name == "CIP")
        return PromptDataset(name, vocab_size, 15.0, 6.0, 1.00);
    if (name == "PIQA")
        return PromptDataset(name, vocab_size, 28.0, 11.0, 1.10);
    SPECINFER_FATAL("unknown dataset '" << name << "'");
}

const std::vector<std::string> &
PromptDataset::allNames()
{
    static const std::vector<std::string> names = {
        "Alpaca", "CP", "WebQA", "CIP", "PIQA",
    };
    return names;
}

std::vector<int>
PromptDataset::prompt(size_t index) const
{
    util::Rng rng(seed_ ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
    double len_d = rng.normal(meanLen_, stddevLen_);
    size_t len = static_cast<size_t>(
        std::max(2.0, std::min(len_d, meanLen_ + 4.0 * stddevLen_)));
    std::vector<int> tokens;
    tokens.reserve(len);
    for (size_t i = 0; i < len; ++i)
        tokens.push_back(static_cast<int>(
            rng.categorical(tokenWeights_)));
    return tokens;
}

namespace {

/** Fixed-length deterministic token run for a shared segment. */
std::vector<int>
sharedTokens(uint64_t seed, size_t count, size_t vocab_size)
{
    util::Rng rng(seed);
    std::vector<int> tokens;
    tokens.reserve(count);
    for (size_t i = 0; i < count; ++i)
        tokens.push_back(static_cast<int>(
            rng.uniformInt(static_cast<uint64_t>(vocab_size - 1)) +
            1));
    return tokens;
}

} // namespace

SharedPrefixDataset::SharedPrefixDataset(std::string name,
                                         size_t vocab_size,
                                         size_t tenants,
                                         size_t common_tokens,
                                         size_t tenant_tokens,
                                         double suffix_mean,
                                         double suffix_stddev)
    : name_(std::move(name)),
      suffixes_(name_ + "-suffix", vocab_size, suffix_mean,
                suffix_stddev, 1.05),
      seed_(util::hashString(name_.c_str()) ^ (vocab_size * 0x51ULL))
{
    SPECINFER_CHECK(tenants > 0, "need at least one tenant");
    SPECINFER_CHECK(vocab_size >= 4, "vocabulary too small");
    common_ = sharedTokens(seed_ ^ 0xc033u, common_tokens, vocab_size);
    tenantPrefixes_.reserve(tenants);
    for (size_t t = 0; t < tenants; ++t)
        tenantPrefixes_.push_back(sharedTokens(
            seed_ ^ (0x7e4a7ULL * (t + 1)), tenant_tokens,
            vocab_size));
}

SharedPrefixDataset
SharedPrefixDataset::chat(size_t vocab_size, size_t tenants,
                          size_t prefix_tokens)
{
    // System-prompt chat: the whole shared prefix is per-tenant,
    // user turns are short (CIP-like statistics).
    return SharedPrefixDataset("chat", vocab_size, tenants, 0,
                               prefix_tokens, 15.0, 6.0);
}

SharedPrefixDataset
SharedPrefixDataset::rag(size_t vocab_size, size_t tenants,
                         size_t context_tokens)
{
    // RAG with a common corpus context: three quarters of the shared
    // tokens are the context every tenant retrieves, the rest a
    // per-tenant slice; questions are WebQA-short.
    const size_t tenant_slice = context_tokens / 4;
    return SharedPrefixDataset("rag", vocab_size, tenants,
                               context_tokens - tenant_slice,
                               tenant_slice, 9.0, 3.0);
}

size_t
SharedPrefixDataset::tenantOf(size_t index) const
{
    // splitmix-style mix so tenant runs do not alias request order.
    uint64_t x = seed_ ^ (index * 0x9e3779b97f4a7c15ULL);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    return static_cast<size_t>(x % tenantPrefixes_.size());
}

std::vector<int>
SharedPrefixDataset::tenantPrefix(size_t tenant) const
{
    SPECINFER_CHECK(tenant < tenantPrefixes_.size(),
                    "tenant out of range");
    std::vector<int> prefix = common_;
    prefix.insert(prefix.end(), tenantPrefixes_[tenant].begin(),
                  tenantPrefixes_[tenant].end());
    return prefix;
}

std::vector<int>
SharedPrefixDataset::prompt(size_t index) const
{
    std::vector<int> tokens = tenantPrefix(tenantOf(index));
    const std::vector<int> suffix = suffixes_.prompt(index);
    tokens.insert(tokens.end(), suffix.begin(), suffix.end());
    return tokens;
}

} // namespace workload
} // namespace specinfer
