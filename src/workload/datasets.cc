#include "workload/datasets.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace specinfer {
namespace workload {

PromptDataset::PromptDataset(std::string name, size_t vocab_size,
                             double mean_len, double stddev_len,
                             double zipf_exponent)
    : name_(std::move(name)),
      vocabSize_(vocab_size),
      meanLen_(mean_len),
      stddevLen_(stddev_len),
      seed_(util::hashString(name_.c_str()) ^ vocab_size)
{
    SPECINFER_CHECK(vocab_size >= 4, "vocabulary too small");
    SPECINFER_CHECK(mean_len >= 2.0, "prompts must average >= 2 tokens");

    // Zipfian weights over a dataset-specific permutation of the
    // vocabulary (token 0 = EOS excluded).
    std::vector<int> perm;
    perm.reserve(vocab_size - 1);
    for (size_t t = 1; t < vocab_size; ++t)
        perm.push_back(static_cast<int>(t));
    util::Rng rng(seed_ ^ 0x7e57ab1e);
    rng.shuffle(perm);
    tokenWeights_.assign(vocab_size, 0.0f);
    for (size_t rank = 0; rank < perm.size(); ++rank) {
        tokenWeights_[static_cast<size_t>(perm[rank])] =
            static_cast<float>(
                1.0 / std::pow(static_cast<double>(rank + 1),
                               zipf_exponent));
    }
}

PromptDataset
PromptDataset::named(const std::string &name, size_t vocab_size)
{
    // Length statistics loosely mirror the real datasets: WebQA has
    // short questions, PIQA has longer physical-commonsense goals,
    // the instruction sets sit in between.
    if (name == "Alpaca")
        return PromptDataset(name, vocab_size, 18.0, 7.0, 1.05);
    if (name == "CP")
        return PromptDataset(name, vocab_size, 24.0, 10.0, 0.95);
    if (name == "WebQA")
        return PromptDataset(name, vocab_size, 9.0, 3.0, 1.25);
    if (name == "CIP")
        return PromptDataset(name, vocab_size, 15.0, 6.0, 1.00);
    if (name == "PIQA")
        return PromptDataset(name, vocab_size, 28.0, 11.0, 1.10);
    SPECINFER_FATAL("unknown dataset '" << name << "'");
}

const std::vector<std::string> &
PromptDataset::allNames()
{
    static const std::vector<std::string> names = {
        "Alpaca", "CP", "WebQA", "CIP", "PIQA",
    };
    return names;
}

std::vector<int>
PromptDataset::prompt(size_t index) const
{
    util::Rng rng(seed_ ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
    double len_d = rng.normal(meanLen_, stddevLen_);
    size_t len = static_cast<size_t>(
        std::max(2.0, std::min(len_d, meanLen_ + 4.0 * stddevLen_)));
    std::vector<int> tokens;
    tokens.reserve(len);
    for (size_t i = 0; i < len; ++i)
        tokens.push_back(static_cast<int>(
            rng.categorical(tokenWeights_)));
    return tokens;
}

} // namespace workload
} // namespace specinfer
