/**
 * @file
 * Trace aggregation: turns per-request speculation statistics from
 * the real CPU engine into the summary profiles that drive the
 * hardware performance model, plus per-request sample sets for the
 * CDF figures.
 */

#ifndef SPECINFER_WORKLOAD_TRACE_H
#define SPECINFER_WORKLOAD_TRACE_H

#include <vector>

#include "core/spec_engine.h"
#include "simulator/system_model.h"
#include "workload/datasets.h"

namespace specinfer {
namespace workload {

/**
 * Accumulates SpecStats across requests.
 */
class TraceAggregator
{
  public:
    /** Fold one request's statistics in. */
    void add(const core::SpecStats &stats);

    size_t requests() const { return perRequestVerified_.size(); }
    size_t totalSteps() const { return totalSteps_; }

    /** Speculate+verify iterations (prefill-only steps excluded). */
    size_t decodeSteps() const { return decodeSteps_; }

    /** Chunked-prefill iterations that emitted no tokens. */
    size_t prefillSteps() const { return prefillSteps_; }

    /** Mean verified tokens per decode step, across requests;
     *  prefill-only steps are excluded from the denominator. */
    double avgVerifiedPerStep() const;

    /** Mean tokens decoded by the LLM per decode step. */
    double avgLlmTokensPerStep() const;

    /** Mean SSM token-forwards per decode step. */
    double avgSsmTokensPerStep() const;

    /** Per-request average verified-per-step samples (Figure 9's
     *  CDF is built over these). */
    const std::vector<double> &perRequestVerified() const
    {
        return perRequestVerified_;
    }

    /**
     * Summarize into a simulator profile. Per-level SSM chunk sizes
     * are the expansion config's frontier sizes deflated by the
     * measured tree-size ratio (sampled-mode duplicates shrink
     * trees below the config's upper bound).
     */
    simulator::SpeculationProfile
    profile(const core::ExpansionConfig &expansion) const;

  private:
    size_t totalSteps_ = 0;
    size_t decodeSteps_ = 0;
    size_t prefillSteps_ = 0;
    double sumVerified_ = 0.0;
    double sumLlmTokens_ = 0.0;
    double sumSsmTokens_ = 0.0;
    double sumTreeSize_ = 0.0;
    std::vector<double> perRequestVerified_;
};

/** Parameters for driving an engine over a dataset. */
struct RunConfig
{
    size_t prompts = 8;          ///< prompts drawn from the dataset
    size_t firstPrompt = 0;      ///< starting dataset index
    uint64_t seedBase = 7;       ///< per-request seed = base + index
};

/** Decode `cfg.prompts` dataset prompts to completion, aggregating
 *  speculation statistics. */
TraceAggregator runEngineOnDataset(const core::SpecEngine &engine,
                                   const PromptDataset &dataset,
                                   const RunConfig &cfg);

} // namespace workload
} // namespace specinfer

#endif // SPECINFER_WORKLOAD_TRACE_H
