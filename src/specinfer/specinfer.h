/**
 * @file
 * Umbrella header: include everything a typical SpecInfer-CPP user
 * needs with a single include.
 *
 *   #include "specinfer/specinfer.h"
 *
 * Namespaces:
 *   specinfer::model     transformer substrate (tree attention,
 *                        KV cache, samplers, beam search, I/O)
 *   specinfer::core      token trees, speculation, verification,
 *                        the SpecEngine loop, boost tuning
 *   specinfer::runtime   continuous batching, KV memory accounting
 *   specinfer::simulator hardware latency / energy models
 *   specinfer::workload  synthetic datasets, arrivals, traces
 *   specinfer::util      RNG, statistics, tables, logging
 */

#ifndef SPECINFER_SPECINFER_H
#define SPECINFER_SPECINFER_H

#include "core/boost_tuning.h"
#include "core/expansion.h"
#include "core/spec_engine.h"
#include "core/speculator.h"
#include "core/token_tree.h"
#include "core/verifier.h"
#include "model/beam_search.h"
#include "model/config.h"
#include "model/kv_cache.h"
#include "model/model_factory.h"
#include "model/sampler.h"
#include "model/sequence_parallel.h"
#include "model/serialization.h"
#include "model/transformer.h"
#include "model/weights.h"
#include "runtime/kv_memory.h"
#include "runtime/request.h"
#include "runtime/request_manager.h"
#include "simulator/hardware.h"
#include "simulator/llm_spec.h"
#include "simulator/perf_model.h"
#include "simulator/system_model.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/arrivals.h"
#include "workload/datasets.h"
#include "workload/trace.h"

#endif // SPECINFER_SPECINFER_H
