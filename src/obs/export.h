/**
 * @file
 * Metric/trace export formats and their validators.
 *
 *  - writePrometheus(): Prometheus text exposition (version 0.0.4)
 *    of a MetricsSnapshot — counters as `name value`, gauges
 *    likewise, histograms as cumulative `name_bucket{le="..."}`
 *    series plus `_sum`/`_count`, with `# TYPE` headers. Output is
 *    sorted by metric name and byte-stable for a fixed snapshot.
 *  - parsePrometheus(): minimal parser for the same subset, used by
 *    the round-trip test and the obs_check CLI validator.
 *  - validateJson() / validateChromeTrace(): a small recursive-
 *    descent JSON well-formedness checker plus Chrome trace_event
 *    schema checks (traceEvents array; each event has name/ph/ts;
 *    spans carry dur), so CI can reject a malformed trace without a
 *    browser in the loop.
 */

#ifndef SPECINFER_OBS_EXPORT_H
#define SPECINFER_OBS_EXPORT_H

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace specinfer {
namespace obs {

/** Write the text exposition format. */
void writePrometheus(const MetricsSnapshot &snapshot,
                     std::ostream &out);

/** One parsed exposition sample. */
struct PrometheusSample
{
    /** Full series name including suffixes (`foo_bucket`). */
    std::string name;
    /** Raw label block without braces (`le="0.5"`), or empty. */
    std::string labels;
    double value = 0.0;
};

/**
 * Parse a text exposition produced by writePrometheus (comments and
 * blank lines skipped).
 * @param error Set to a description of the first malformed line;
 *        empty on success.
 * @return The samples, in file order (empty on error).
 */
std::vector<PrometheusSample>
parsePrometheus(std::istream &in, std::string *error);

/**
 * JSON well-formedness check (objects, arrays, strings with
 * escapes, numbers, true/false/null; rejects trailing garbage).
 * @param error First syntax error, or empty.
 */
bool validateJson(const std::string &text, std::string *error);

/**
 * Chrome trace_event schema check: well-formed JSON whose top level
 * is an object with a "traceEvents" array in which every event
 * object has string "name"/"ph" and a numeric "ts", and every "X"
 * event also has a numeric "dur".
 * @param event_count Set to the number of events when non-null.
 */
bool validateChromeTrace(const std::string &text, std::string *error,
                         size_t *event_count = nullptr);

} // namespace obs
} // namespace specinfer

#endif // SPECINFER_OBS_EXPORT_H
