/**
 * @file
 * Lock-cheap metrics registry: named counters, gauges, and
 * fixed-bucket histograms.
 *
 * Design:
 *  - Registration (name -> instrument) takes a mutex, but happens
 *    once per call site: instrumented code resolves its instruments
 *    up front and then only touches std::atomic fields on the hot
 *    path (relaxed ordering — metrics never synchronize program
 *    state).
 *  - Instruments are owned by the registry and pointer-stable for
 *    its lifetime, so cached instrument pointers never dangle while
 *    the registry lives.
 *  - snapshot() produces an isolated copy: later increments never
 *    mutate an already-taken snapshot. Within one snapshot each
 *    field is read atomically; cross-field exactness is guaranteed
 *    only once writers have quiesced (which is when the exporters
 *    run).
 *  - Disabled mode is represented by *absence*: instrumented layers
 *    hold a nullable ObsContext pointer and skip every metrics call
 *    when it is null, so a build serving without observability pays
 *    one predictable branch per call site and nothing else. Nothing
 *    in this module ever touches RNG streams, KV layout, or any
 *    other decode state — instrumentation is observation only.
 *
 * Histogram bucket semantics (Prometheus-compatible): bucket i
 * covers values v with bounds[i-1] < v <= bounds[i]; a value exactly
 * equal to a boundary lands in the bucket whose upper bound it is —
 * one deterministic bucket, asserted by the property tests. Values
 * above the last bound land in the implicit +Inf overflow bucket.
 */

#ifndef SPECINFER_OBS_METRICS_H
#define SPECINFER_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace specinfer {
namespace obs {

/** Monotone event counter. */
class Counter
{
  public:
    void inc(uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Instantaneous signed level (queue depth, blocks in use, ...). */
class Gauge
{
  public:
    void set(int64_t v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    void add(int64_t n)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    void sub(int64_t n)
    {
        value_.fetch_sub(n, std::memory_order_relaxed);
    }

    int64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<int64_t> value_{0};
};

/**
 * Fixed-bucket histogram with strictly ascending upper bounds plus
 * an implicit +Inf overflow bucket. observe() is wait-free (one
 * atomic add on the bucket, one CAS loop on the sum).
 */
class HistogramMetric
{
  public:
    /** @param bounds Strictly ascending bucket upper bounds; may be
     *         empty (everything lands in the overflow bucket). */
    explicit HistogramMetric(std::vector<double> bounds);

    void observe(double v);

    /**
     * Deterministic bucket index for a value: the first bucket whose
     * upper bound is >= v (so v == bounds[i] lands in bucket i), or
     * bounds().size() for the +Inf overflow bucket.
     */
    size_t bucketFor(double v) const;

    const std::vector<double> &bounds() const { return bounds_; }

    /** Number of buckets including the overflow bucket. */
    size_t bucketCount() const { return bounds_.size() + 1; }

    uint64_t bucketValue(size_t bucket) const;

    uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    double sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

  private:
    std::vector<double> bounds_;
    std::unique_ptr<std::atomic<uint64_t>[]> counts_;
    std::atomic<uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/** Point-in-time copy of one counter. */
struct SnapshotCounter
{
    std::string name;
    uint64_t value = 0;

    bool operator==(const SnapshotCounter &o) const = default;
};

/** Point-in-time copy of one gauge. */
struct SnapshotGauge
{
    std::string name;
    int64_t value = 0;

    bool operator==(const SnapshotGauge &o) const = default;
};

/** Point-in-time copy of one histogram. */
struct SnapshotHistogram
{
    std::string name;
    std::vector<double> bounds;
    /** Per-bucket (non-cumulative) counts; bounds.size() + 1 long,
     *  last entry = +Inf overflow. */
    std::vector<uint64_t> counts;
    double sum = 0.0;
    uint64_t count = 0;

    bool operator==(const SnapshotHistogram &o) const = default;
};

/** Isolated, comparable copy of the whole registry, sorted by
 *  instrument name within each kind. */
struct MetricsSnapshot
{
    std::vector<SnapshotCounter> counters;
    std::vector<SnapshotGauge> gauges;
    std::vector<SnapshotHistogram> histograms;

    bool operator==(const MetricsSnapshot &o) const = default;

    const SnapshotCounter *findCounter(const std::string &name) const;
    const SnapshotGauge *findGauge(const std::string &name) const;
    const SnapshotHistogram *
    findHistogram(const std::string &name) const;
};

/**
 * Named instrument registry. Thread-safe: registration is mutex-
 * guarded, returned instruments are atomics. Requesting an existing
 * name with the same kind returns the same instrument (so wiring the
 * same registry through several layers aggregates naturally);
 * requesting it with a different kind aborts.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    Counter *counter(const std::string &name);
    Gauge *gauge(const std::string &name);

    /** @param bounds Strictly ascending upper bounds; must match the
     *         existing bounds when the name is already registered. */
    HistogramMetric *histogram(const std::string &name,
                               std::vector<double> bounds);

    MetricsSnapshot snapshot() const;

    size_t instrumentCount() const;

  private:
    enum class Kind
    {
        Counter,
        Gauge,
        Histogram
    };

    struct Entry
    {
        Kind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<HistogramMetric> histogram;
    };

    mutable std::mutex mutex_;
    std::map<std::string, Entry> entries_;
};

} // namespace obs
} // namespace specinfer

#endif // SPECINFER_OBS_METRICS_H
