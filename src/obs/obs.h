/**
 * @file
 * ObsContext: the bundle instrumented layers carry around.
 *
 * One context owns a MetricsRegistry, a Tracer, and a (non-owning)
 * Clock. Layers take a nullable `ObsContext *`: null means
 * observability is disabled and every instrumentation site reduces
 * to a single pointer test — no atomics touched, no events built.
 * That absence-based design is how the bit-identical guarantees from
 * earlier PRs survive: instrumentation can only read program state,
 * and when disabled it does not even do that.
 *
 * A process-global context (setGlobalObs()/globalObs()) lets deep
 * construction paths — the verification harness builds its engines
 * internally — pick up observability without threading a pointer
 * through every factory signature. Layers resolve an explicitly
 * configured context first and fall back to the global one.
 */

#ifndef SPECINFER_OBS_OBS_H
#define SPECINFER_OBS_OBS_H

#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace specinfer {
namespace obs {

/** Metrics + tracing + clock, wired through the serving stack. */
class ObsContext
{
  public:
    /**
     * @param clock Time source (non-owning; must outlive the
     *        context). Defaults to the shared SteadyClock.
     * @param tracing_enabled Record trace events; metrics are always
     *        live on a non-null context.
     */
    explicit ObsContext(const Clock *clock = &SteadyClock::instance(),
                        bool tracing_enabled = true)
        : clock_(clock), tracer_(clock, tracing_enabled)
    {
    }

    ObsContext(const ObsContext &) = delete;
    ObsContext &operator=(const ObsContext &) = delete;

    MetricsRegistry &metrics() { return metrics_; }
    const MetricsRegistry &metrics() const { return metrics_; }

    Tracer &tracer() { return tracer_; }
    const Tracer &tracer() const { return tracer_; }

    const Clock &clock() const { return *clock_; }

    uint64_t nowNanos() const { return clock_->nowNanos(); }

  private:
    const Clock *clock_;
    MetricsRegistry metrics_;
    Tracer tracer_;
};

/** Current process-global context; null when none installed. */
ObsContext *globalObs();

/**
 * Install (or clear, with null) the process-global context. The
 * caller keeps ownership and must keep it alive until replaced.
 * @return The previous global context.
 */
ObsContext *setGlobalObs(ObsContext *ctx);

/** `explicit_ctx` if non-null, else the global context (may be
 *  null). The one-line resolution rule every layer uses. */
inline ObsContext *
resolveObs(ObsContext *explicit_ctx)
{
    return explicit_ctx != nullptr ? explicit_ctx : globalObs();
}

} // namespace obs
} // namespace specinfer

#endif // SPECINFER_OBS_OBS_H
