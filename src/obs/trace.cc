#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>
#include <ostream>

#include "util/logging.h"

namespace specinfer {
namespace obs {

namespace {

/** Escape a string for JSON string context. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Nanoseconds as fixed-point microseconds ("12.345"): Chrome's ts
 *  unit with no floating-point formatting variability. */
std::string
microsFixed(uint64_t nanos)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf),
                  "%" PRIu64 ".%03" PRIu64, nanos / 1000,
                  nanos % 1000);
    return buf;
}

} // namespace

Tracer::Tracer(const Clock *clock, bool enabled)
    : clock_(clock), enabled_(enabled)
{
    SPECINFER_CHECK(!enabled_ || clock_ != nullptr,
                    "an enabled tracer needs a clock");
}

void
Tracer::record(TraceEvent event)
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(event));
}

void
Tracer::span(uint64_t track, const char *category,
             const std::string &name, uint64_t start_ns,
             uint64_t end_ns, std::initializer_list<TraceArg> args)
{
    if (!enabled_)
        return;
    TraceEvent ev;
    ev.name = name;
    ev.category = category;
    ev.phase = 'X';
    ev.track = track;
    ev.startNanos = start_ns;
    ev.durNanos = end_ns >= start_ns ? end_ns - start_ns : 0;
    for (const TraceArg &a : args)
        ev.args.emplace_back(a.key, a.value);
    record(std::move(ev));
}

void
Tracer::instant(uint64_t track, const char *category,
                const std::string &name, uint64_t ts_ns,
                std::initializer_list<TraceArg> args)
{
    if (!enabled_)
        return;
    TraceEvent ev;
    ev.name = name;
    ev.category = category;
    ev.phase = 'i';
    ev.track = track;
    ev.startNanos = ts_ns;
    for (const TraceArg &a : args)
        ev.args.emplace_back(a.key, a.value);
    record(std::move(ev));
}

size_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

std::vector<TraceEvent>
Tracer::events() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
}

void
Tracer::writeChromeTrace(std::ostream &out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    out << "{\"traceEvents\":[\n";
    for (size_t i = 0; i < events_.size(); ++i) {
        const TraceEvent &ev = events_[i];
        out << "{\"name\":\"" << jsonEscape(ev.name) << "\""
            << ",\"cat\":\"" << jsonEscape(ev.category) << "\""
            << ",\"ph\":\"" << ev.phase << "\""
            << ",\"pid\":1"
            << ",\"tid\":" << ev.track
            << ",\"ts\":" << microsFixed(ev.startNanos);
        if (ev.phase == 'X')
            out << ",\"dur\":" << microsFixed(ev.durNanos);
        if (ev.phase == 'i')
            out << ",\"s\":\"t\""; // thread-scoped instant
        if (!ev.args.empty()) {
            out << ",\"args\":{";
            for (size_t a = 0; a < ev.args.size(); ++a) {
                if (a > 0)
                    out << ",";
                out << "\"" << jsonEscape(ev.args[a].first)
                    << "\":" << ev.args[a].second;
            }
            out << "}";
        }
        out << "}" << (i + 1 < events_.size() ? "," : "") << "\n";
    }
    // Name the lanes: pid 1 = the serving pipeline, tid 0 = the
    // scheduler track (request tracks keep their numeric id).
    out << (events_.empty() ? "" : ",")
        << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
           "\"tid\":0,\"args\":{\"name\":\"specinfer\"}},\n"
        << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
           "\"tid\":0,\"args\":{\"name\":\"scheduler\"}}\n"
        << "],\"displayTimeUnit\":\"ms\"}\n";
}

} // namespace obs
} // namespace specinfer
