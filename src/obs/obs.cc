#include "obs/obs.h"

#include <atomic>

namespace specinfer {
namespace obs {

namespace {
std::atomic<ObsContext *> g_obs{nullptr};
} // namespace

ObsContext *
globalObs()
{
    return g_obs.load(std::memory_order_acquire);
}

ObsContext *
setGlobalObs(ObsContext *ctx)
{
    return g_obs.exchange(ctx, std::memory_order_acq_rel);
}

} // namespace obs
} // namespace specinfer
