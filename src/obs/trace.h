/**
 * @file
 * Per-request tracer producing Chrome trace_event JSON.
 *
 * The serving layers record *complete* spans (phase "X": a name, a
 * track, a start timestamp and a duration) and *instant* annotations
 * (phase "i": fallback, preemption, crash, recovery) against an
 * injectable Clock. Tracks map to Chrome's thread lanes: track 0 is
 * the scheduler, track N is request id N — so loading the file in
 * about:tracing or Perfetto shows one swimlane per request with its
 * queue -> prefill -> speculate -> decode -> verify lifecycle.
 *
 * Events are kept in memory in append order and serialized by
 * writeChromeTrace() with fixed formatting, so a workload driven by
 * a ManualClock produces byte-stable output (the golden-trace test's
 * contract). Appends are mutex-guarded — tracing is off the decode
 * hot path (a handful of events per scheduling iteration), so a
 * plain lock is cheaper than it looks and keeps the buffer sane if
 * instrumented layers ever trace from pool workers.
 */

#ifndef SPECINFER_OBS_TRACE_H
#define SPECINFER_OBS_TRACE_H

#include <cstdint>
#include <iosfwd>
#include <initializer_list>
#include <mutex>
#include <string>
#include <vector>

#include "obs/clock.h"

namespace specinfer {
namespace obs {

/** One integer-valued span/event argument (shown by Perfetto). */
struct TraceArg
{
    const char *key;
    int64_t value;
};

/** One recorded trace event. */
struct TraceEvent
{
    std::string name;
    const char *category = "";
    char phase = 'X';   ///< 'X' complete span, 'i' instant
    uint64_t track = 0; ///< Chrome tid: 0 = scheduler, else request id
    uint64_t startNanos = 0;
    uint64_t durNanos = 0; ///< spans only
    std::vector<std::pair<std::string, int64_t>> args;
};

/**
 * Span/annotation recorder. When constructed disabled, every record
 * call returns immediately (and nowNanos() still works, so call
 * sites can time unconditionally while recording conditionally).
 */
class Tracer
{
  public:
    /**
     * @param clock Time source (non-owning; must outlive the
     *        tracer). May be null only when disabled.
     * @param enabled Record events; false = drop everything.
     */
    Tracer(const Clock *clock, bool enabled);

    bool enabled() const { return enabled_; }

    /** Clock passthrough; 0 when constructed without a clock. */
    uint64_t nowNanos() const
    {
        return clock_ != nullptr ? clock_->nowNanos() : 0;
    }

    /** Record a complete span [start_ns, end_ns) on a track. */
    void span(uint64_t track, const char *category,
              const std::string &name, uint64_t start_ns,
              uint64_t end_ns,
              std::initializer_list<TraceArg> args = {});

    /** Record an instant annotation at ts_ns on a track. */
    void instant(uint64_t track, const char *category,
                 const std::string &name, uint64_t ts_ns,
                 std::initializer_list<TraceArg> args = {});

    size_t eventCount() const;

    /** Copy of the recorded events, in append order. */
    std::vector<TraceEvent> events() const;

    /** Drop all recorded events. */
    void clear();

    /**
     * Serialize as Chrome trace_event JSON (the "JSON Array Format"
     * with a traceEvents wrapper), loadable in about:tracing and
     * Perfetto. Timestamps are microseconds with nanosecond
     * fractions; output is byte-stable for a fixed event list.
     */
    void writeChromeTrace(std::ostream &out) const;

  private:
    void record(TraceEvent event);

    const Clock *clock_;
    bool enabled_;
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
};

} // namespace obs
} // namespace specinfer

#endif // SPECINFER_OBS_TRACE_H
