#include "obs/export.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>

namespace specinfer {
namespace obs {

namespace {

/** Compact deterministic double formatting: integers without a
 *  decimal point, everything else via %.9g. */
std::string
formatDouble(double v)
{
    char buf[40];
    if (std::isfinite(v) && v == std::floor(v) &&
        std::fabs(v) < 1.0e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.9g", v);
    }
    return buf;
}

} // namespace

void
writePrometheus(const MetricsSnapshot &snapshot, std::ostream &out)
{
    for (const SnapshotCounter &c : snapshot.counters) {
        out << "# TYPE " << c.name << " counter\n";
        out << c.name << " " << c.value << "\n";
    }
    for (const SnapshotGauge &g : snapshot.gauges) {
        out << "# TYPE " << g.name << " gauge\n";
        out << g.name << " " << g.value << "\n";
    }
    for (const SnapshotHistogram &h : snapshot.histograms) {
        out << "# TYPE " << h.name << " histogram\n";
        uint64_t cumulative = 0;
        for (size_t b = 0; b < h.bounds.size(); ++b) {
            cumulative += h.counts[b];
            out << h.name << "_bucket{le=\""
                << formatDouble(h.bounds[b]) << "\"} " << cumulative
                << "\n";
        }
        cumulative += h.counts.empty() ? 0 : h.counts.back();
        out << h.name << "_bucket{le=\"+Inf\"} " << cumulative
            << "\n";
        out << h.name << "_sum " << formatDouble(h.sum) << "\n";
        out << h.name << "_count " << h.count << "\n";
    }
}

std::vector<PrometheusSample>
parsePrometheus(std::istream &in, std::string *error)
{
    std::vector<PrometheusSample> samples;
    if (error != nullptr)
        error->clear();
    std::string line;
    size_t line_no = 0;
    auto fail = [&](const std::string &what) {
        if (error != nullptr)
            *error = "line " + std::to_string(line_no) + ": " + what;
        return std::vector<PrometheusSample>();
    };
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        PrometheusSample sample;
        size_t pos = 0;
        while (pos < line.size() && line[pos] != '{' &&
               line[pos] != ' ')
            ++pos;
        sample.name = line.substr(0, pos);
        if (sample.name.empty())
            return fail("missing metric name");
        for (char c : sample.name) {
            if (!(std::isalnum(static_cast<unsigned char>(c)) ||
                  c == '_' || c == ':'))
                return fail("invalid metric name '" + sample.name +
                            "'");
        }
        if (pos < line.size() && line[pos] == '{') {
            size_t close = line.find('}', pos);
            if (close == std::string::npos)
                return fail("unterminated label block");
            sample.labels = line.substr(pos + 1, close - pos - 1);
            pos = close + 1;
        }
        if (pos >= line.size() || line[pos] != ' ')
            return fail("expected space before value");
        ++pos;
        const char *start = line.c_str() + pos;
        char *end = nullptr;
        sample.value = std::strtod(start, &end);
        if (end == start || *end != '\0')
            return fail("malformed value '" + line.substr(pos) +
                        "'");
        samples.push_back(std::move(sample));
    }
    return samples;
}

// --- Minimal JSON parser (validation + trace schema checks) -------

namespace {

struct JsonValue;

/** Parsed JSON node. Only what the trace validator needs: type tags
 *  plus object member and array element access. */
struct JsonValue
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Type type = Type::Null;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> elements;
    std::vector<std::pair<std::string, JsonValue>> members;

    const JsonValue *find(const std::string &key) const
    {
        for (const auto &[k, v] : members)
            if (k == key)
                return &v;
        return nullptr;
    }
};

class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool parse(JsonValue &out)
    {
        skipSpace();
        if (!parseValue(out))
            return false;
        skipSpace();
        if (pos_ != text_.size())
            return fail("trailing garbage after JSON value");
        return true;
    }

  private:
    bool fail(const std::string &what)
    {
        if (error_ != nullptr && error_->empty())
            *error_ = what + " at offset " + std::to_string(pos_);
        return false;
    }

    void skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool parseValue(JsonValue &out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"') {
            out.type = JsonValue::Type::String;
            return parseString(out.string);
        }
        if (c == 't' || c == 'f')
            return parseKeyword(out);
        if (c == 'n')
            return parseKeyword(out);
        return parseNumber(out);
    }

    bool parseKeyword(JsonValue &out)
    {
        auto match = [&](const char *kw) {
            const size_t n = std::string(kw).size();
            if (text_.compare(pos_, n, kw) == 0) {
                pos_ += n;
                return true;
            }
            return false;
        };
        if (match("true")) {
            out.type = JsonValue::Type::Bool;
            out.number = 1.0;
            return true;
        }
        if (match("false")) {
            out.type = JsonValue::Type::Bool;
            return true;
        }
        if (match("null")) {
            out.type = JsonValue::Type::Null;
            return true;
        }
        return fail("invalid keyword");
    }

    bool parseNumber(JsonValue &out)
    {
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        out.number = std::strtod(start, &end);
        if (end == start)
            return fail("invalid number");
        pos_ += static_cast<size_t>(end - start);
        out.type = JsonValue::Type::Number;
        return true;
    }

    bool parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected '\"'");
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return fail("unterminated escape");
                char esc = text_[pos_++];
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        return fail("short \\u escape");
                    for (size_t i = 0; i < 4; ++i)
                        if (!std::isxdigit(static_cast<unsigned char>(
                                text_[pos_ + i])))
                            return fail("bad \\u escape");
                    // Validation only: keep the escape verbatim.
                    out += "\\u" + text_.substr(pos_, 4);
                    pos_ += 4;
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    bool parseArray(JsonValue &out)
    {
        consume('[');
        out.type = JsonValue::Type::Array;
        skipSpace();
        if (consume(']'))
            return true;
        while (true) {
            JsonValue element;
            skipSpace();
            if (!parseValue(element))
                return false;
            out.elements.push_back(std::move(element));
            skipSpace();
            if (consume(']'))
                return true;
            if (!consume(','))
                return fail("expected ',' or ']' in array");
        }
    }

    bool parseObject(JsonValue &out)
    {
        consume('{');
        out.type = JsonValue::Type::Object;
        skipSpace();
        if (consume('}'))
            return true;
        while (true) {
            skipSpace();
            std::string key;
            if (!parseString(key))
                return false;
            skipSpace();
            if (!consume(':'))
                return fail("expected ':' in object");
            JsonValue value;
            skipSpace();
            if (!parseValue(value))
                return false;
            out.members.emplace_back(std::move(key),
                                     std::move(value));
            skipSpace();
            if (consume('}'))
                return true;
            if (!consume(','))
                return fail("expected ',' or '}' in object");
        }
    }

    const std::string &text_;
    std::string *error_;
    size_t pos_ = 0;
};

} // namespace

bool
validateJson(const std::string &text, std::string *error)
{
    if (error != nullptr)
        error->clear();
    JsonValue root;
    JsonParser parser(text, error);
    return parser.parse(root);
}

bool
validateChromeTrace(const std::string &text, std::string *error,
                    size_t *event_count)
{
    if (error != nullptr)
        error->clear();
    if (event_count != nullptr)
        *event_count = 0;
    JsonValue root;
    JsonParser parser(text, error);
    if (!parser.parse(root))
        return false;
    auto fail = [&](const std::string &what) {
        if (error != nullptr)
            *error = what;
        return false;
    };
    if (root.type != JsonValue::Type::Object)
        return fail("top level is not an object");
    const JsonValue *events = root.find("traceEvents");
    if (events == nullptr ||
        events->type != JsonValue::Type::Array)
        return fail("missing traceEvents array");
    size_t spans = 0;
    for (size_t i = 0; i < events->elements.size(); ++i) {
        const JsonValue &ev = events->elements[i];
        const std::string at = " in event " + std::to_string(i);
        if (ev.type != JsonValue::Type::Object)
            return fail("non-object event" + at);
        const JsonValue *name = ev.find("name");
        const JsonValue *ph = ev.find("ph");
        if (name == nullptr ||
            name->type != JsonValue::Type::String)
            return fail("missing name" + at);
        if (ph == nullptr || ph->type != JsonValue::Type::String)
            return fail("missing ph" + at);
        if (ph->string == "M")
            continue; // metadata events carry no timestamp
        const JsonValue *ts = ev.find("ts");
        if (ts == nullptr || ts->type != JsonValue::Type::Number)
            return fail("missing ts" + at);
        if (ph->string == "X") {
            const JsonValue *dur = ev.find("dur");
            if (dur == nullptr ||
                dur->type != JsonValue::Type::Number)
                return fail("span without dur" + at);
            ++spans;
        }
    }
    if (event_count != nullptr)
        *event_count = events->elements.size();
    (void)spans;
    return true;
}

} // namespace obs
} // namespace specinfer
