#include "obs/metrics.h"

#include <algorithm>

#include "util/logging.h"

namespace specinfer {
namespace obs {

HistogramMetric::HistogramMetric(std::vector<double> bounds)
    : bounds_(std::move(bounds))
{
    for (size_t i = 1; i < bounds_.size(); ++i)
        SPECINFER_CHECK(bounds_[i - 1] < bounds_[i],
                        "histogram bounds must strictly ascend");
    counts_ = std::make_unique<std::atomic<uint64_t>[]>(
        bounds_.size() + 1);
    for (size_t i = 0; i < bounds_.size() + 1; ++i)
        counts_[i].store(0, std::memory_order_relaxed);
}

size_t
HistogramMetric::bucketFor(double v) const
{
    // First bucket whose upper bound is >= v: a value exactly on an
    // edge lands in the bucket it bounds (le semantics), never in
    // two and never nondeterministically.
    return static_cast<size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), v) -
        bounds_.begin());
}

void
HistogramMetric::observe(double v)
{
    counts_[bucketFor(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double expected = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(expected, expected + v,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
    }
}

uint64_t
HistogramMetric::bucketValue(size_t bucket) const
{
    SPECINFER_CHECK(bucket < bucketCount(),
                    "histogram bucket index out of range");
    return counts_[bucket].load(std::memory_order_relaxed);
}

const SnapshotCounter *
MetricsSnapshot::findCounter(const std::string &name) const
{
    for (const SnapshotCounter &c : counters)
        if (c.name == name)
            return &c;
    return nullptr;
}

const SnapshotGauge *
MetricsSnapshot::findGauge(const std::string &name) const
{
    for (const SnapshotGauge &g : gauges)
        if (g.name == name)
            return &g;
    return nullptr;
}

const SnapshotHistogram *
MetricsSnapshot::findHistogram(const std::string &name) const
{
    for (const SnapshotHistogram &h : histograms)
        if (h.name == name)
            return &h;
    return nullptr;
}

Counter *
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    if (it != entries_.end()) {
        SPECINFER_CHECK(it->second.kind == Kind::Counter,
                        "metric '" << name
                                   << "' already registered with a "
                                      "different kind");
        return it->second.counter.get();
    }
    Entry entry;
    entry.kind = Kind::Counter;
    entry.counter = std::make_unique<Counter>();
    Counter *out = entry.counter.get();
    entries_.emplace(name, std::move(entry));
    return out;
}

Gauge *
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    if (it != entries_.end()) {
        SPECINFER_CHECK(it->second.kind == Kind::Gauge,
                        "metric '" << name
                                   << "' already registered with a "
                                      "different kind");
        return it->second.gauge.get();
    }
    Entry entry;
    entry.kind = Kind::Gauge;
    entry.gauge = std::make_unique<Gauge>();
    Gauge *out = entry.gauge.get();
    entries_.emplace(name, std::move(entry));
    return out;
}

HistogramMetric *
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> bounds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    if (it != entries_.end()) {
        SPECINFER_CHECK(it->second.kind == Kind::Histogram,
                        "metric '" << name
                                   << "' already registered with a "
                                      "different kind");
        SPECINFER_CHECK(it->second.histogram->bounds() == bounds,
                        "metric '" << name
                                   << "' re-registered with "
                                      "different bucket bounds");
        return it->second.histogram.get();
    }
    Entry entry;
    entry.kind = Kind::Histogram;
    entry.histogram =
        std::make_unique<HistogramMetric>(std::move(bounds));
    HistogramMetric *out = entry.histogram.get();
    entries_.emplace(name, std::move(entry));
    return out;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    // entries_ is an ordered map, so the snapshot (and therefore the
    // Prometheus exposition) is sorted by name without extra work.
    for (const auto &[name, entry] : entries_) {
        switch (entry.kind) {
          case Kind::Counter:
            snap.counters.push_back({name, entry.counter->value()});
            break;
          case Kind::Gauge:
            snap.gauges.push_back({name, entry.gauge->value()});
            break;
          case Kind::Histogram: {
            const HistogramMetric &h = *entry.histogram;
            SnapshotHistogram out;
            out.name = name;
            out.bounds = h.bounds();
            out.counts.resize(h.bucketCount());
            for (size_t b = 0; b < h.bucketCount(); ++b)
                out.counts[b] = h.bucketValue(b);
            out.sum = h.sum();
            out.count = h.count();
            snap.histograms.push_back(std::move(out));
            break;
          }
        }
    }
    return snap;
}

size_t
MetricsRegistry::instrumentCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

} // namespace obs
} // namespace specinfer
