/**
 * @file
 * Injectable time source for the observability layer.
 *
 * Every latency-bearing code path (iteration timing, span
 * timestamps, per-phase kernel timers) reads time through this
 * interface instead of calling std::chrono directly, so tests can
 * substitute a ManualClock and assert on *exact* durations: a trace
 * produced under ManualClock is byte-stable, and timing-dependent
 * tests stop depending on wall time.
 */

#ifndef SPECINFER_OBS_CLOCK_H
#define SPECINFER_OBS_CLOCK_H

#include <atomic>
#include <cstdint>

namespace specinfer {
namespace obs {

/**
 * Monotonic nanosecond time source. Implementations must be
 * thread-safe: instrumented code reads the clock from pool workers
 * as well as the scheduling thread.
 */
class Clock
{
  public:
    virtual ~Clock() = default;

    /** Nanoseconds since an arbitrary fixed epoch; monotone
     *  non-decreasing across calls (per implementation contract). */
    virtual uint64_t nowNanos() const = 0;
};

/**
 * Production clock: std::chrono::steady_clock rebased to the first
 * call, so traces start near t=0 instead of at machine uptime.
 */
class SteadyClock : public Clock
{
  public:
    SteadyClock();

    uint64_t nowNanos() const override;

    /** Process-wide shared instance. */
    static SteadyClock &instance();

  private:
    uint64_t epoch_;
};

/**
 * Deterministic test clock. Time only moves when the test says so:
 * either explicitly via advance()/set(), or by a fixed `auto_step`
 * added after every nowNanos() read — which makes every span in a
 * deterministic workload have an exact, reproducible duration
 * (nowNanos() call counts are a pure function of the workload).
 */
class ManualClock : public Clock
{
  public:
    /**
     * @param start_nanos Initial reading.
     * @param auto_step Nanoseconds the clock advances *after* each
     *        nowNanos() call (0 = frozen until advance()).
     */
    explicit ManualClock(uint64_t start_nanos = 0,
                         uint64_t auto_step = 0);

    uint64_t nowNanos() const override;

    /** Move time forward by `nanos`. */
    void advance(uint64_t nanos);

    /** Jump to an absolute reading (must not move backwards). */
    void set(uint64_t nanos);

    /** Number of nowNanos() reads so far (test introspection). */
    uint64_t reads() const;

  private:
    mutable std::atomic<uint64_t> now_;
    mutable std::atomic<uint64_t> reads_{0};
    uint64_t autoStep_;
};

} // namespace obs
} // namespace specinfer

#endif // SPECINFER_OBS_CLOCK_H
