#include "obs/clock.h"

#include <chrono>

#include "util/logging.h"

namespace specinfer {
namespace obs {

namespace {

uint64_t
steadyNanos()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

SteadyClock::SteadyClock() : epoch_(steadyNanos()) {}

uint64_t
SteadyClock::nowNanos() const
{
    return steadyNanos() - epoch_;
}

SteadyClock &
SteadyClock::instance()
{
    static SteadyClock clock;
    return clock;
}

ManualClock::ManualClock(uint64_t start_nanos, uint64_t auto_step)
    : now_(start_nanos), autoStep_(auto_step)
{
}

uint64_t
ManualClock::nowNanos() const
{
    reads_.fetch_add(1, std::memory_order_relaxed);
    if (autoStep_ == 0)
        return now_.load(std::memory_order_relaxed);
    // fetch_add returns the pre-step reading, so the first read sees
    // start_nanos exactly and each subsequent read is one step later.
    return now_.fetch_add(autoStep_, std::memory_order_relaxed);
}

void
ManualClock::advance(uint64_t nanos)
{
    now_.fetch_add(nanos, std::memory_order_relaxed);
}

void
ManualClock::set(uint64_t nanos)
{
    SPECINFER_CHECK(nanos >= now_.load(std::memory_order_relaxed),
                    "ManualClock must not move backwards");
    now_.store(nanos, std::memory_order_relaxed);
}

uint64_t
ManualClock::reads() const
{
    return reads_.load(std::memory_order_relaxed);
}

} // namespace obs
} // namespace specinfer
