/**
 * @file
 * Client library for the specinferd shared-memory serving plane.
 *
 * A Client owns one channel segment (it creates and formats it; the
 * daemon discovers it by directory scan) and is driven by poll():
 * each call pumps the send queue, drains the response ring, and
 * checks the daemon board. No thread is spawned — callers choose
 * the cadence, which is what lets the in-process tests interleave
 * client polls and daemon ticks deterministically while the real
 * tool wraps poll() in a sleep loop.
 *
 * Failure taxonomy the caller can act on (ClientStatus):
 *
 *  - DaemonRestarted — the board epoch changed. The client handles
 *    it internally (re-Hello + Resume for every unfinished request,
 *    token streams continue idempotently) and reports it once.
 *  - DaemonGone — the board heartbeat stalled past the configured
 *    limit, or no board was found within the bounded connect retry
 *    budget: fail fast, nothing will answer.
 *  - LeaseRevoked — the daemon reaped this client (lease expiry or
 *    an injected `client-reap`); reconnect() makes a fresh channel
 *    and resumes. The Revoked frame itself is best-effort (the
 *    daemon unlinks and forgets the channel at reap), so the client
 *    also *suspects* revocation on its own: a live daemon heartbeat
 *    with work in flight but no inbound frame for quietPollLimit
 *    polls means nobody is serving this channel anymore. A false
 *    suspicion is harmless — reconnect + Resume is idempotent.
 *
 * Connect and stream-stall retries use bounded exponential backoff
 * with seeded jitter; in-process tests zero the sleep unit so the
 * schedule stays deterministic and instant.
 */

#ifndef SPECINFER_IPC_CLIENT_H
#define SPECINFER_IPC_CLIENT_H

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "ipc/channel.h"
#include "ipc/wire.h"
#include "runtime/request.h"
#include "util/rng.h"

namespace specinfer {
namespace ipc {

/** Typed client-visible outcomes. */
enum class ClientStatus
{
    Ok,              ///< nothing notable
    Pending,         ///< connect() sent Hello; ack not yet seen
    Timeout,         ///< bounded retry budget exhausted
    DaemonGone,      ///< heartbeat stall / no board: fail fast
    DaemonRestarted, ///< epoch changed; resumed automatically
    Rejected,        ///< a submit came back with a typed rejection
    LeaseRevoked,    ///< reaped by the daemon; reconnect() to go on
    Corrupt,         ///< poisoned ring; connection is dead
    Disconnected,    ///< orderly goodbye (drain or local)
};

const char *clientStatusName(ClientStatus status);

/** Client configuration. */
struct ClientConfig
{
    /** IPC directory; empty = defaultIpcDir(). */
    std::string dir;

    /** Ring capacity per direction (power of two, data bytes). */
    size_t ringBytes = 1 << 16;

    /** Channel-name uniquifier (a reconnect bumps it). */
    uint64_t nonce = 1;

    /** Bounded connect retry budget (board-open attempts). */
    size_t connectAttempts = 8;

    /** Backoff unit in microseconds; 0 = never sleep (co-op
     *  in-process tests drive the schedule themselves). */
    size_t backoffUnitMicros = 0;

    /** Seed for the backoff jitter (reproducible schedules). */
    uint64_t jitterSeed = 0x1cec0de5ULL;

    /** Send a Heartbeat every N polls while connected. */
    size_t heartbeatEveryPolls = 1;

    /** Polls without a board-heartbeat advance before the daemon is
     *  declared gone. */
    size_t stallPollLimit = 256;

    /** Connected polls with requests in flight but no inbound frame
     *  before the lease is presumed revoked (the daemon's Revoked
     *  frame is best-effort and can be lost to a crash or an
     *  injected ipc-send fault). 0 disables the suspicion. */
    size_t quietPollLimit = 1024;

    /** Observability context (ipc_* client-side counters). */
    obs::ObsContext *obs = nullptr;
};

/** Per-request client-side state. */
struct ClientRequest
{
    uint64_t tag = 0;      ///< local correlation id
    uint64_t id = 0;       ///< daemon id once acked
    bool acked = false;
    bool finished = false;
    WireReject reject = WireReject::None;
    uint8_t stopReason = 0;
    /** Total tokens the daemon reported at Finished (the stream is
     *  complete once tokens.size() reaches it). */
    uint64_t expectTotal = 0;
    bool finishSeen = false;
    std::vector<int> tokens;
    std::vector<int> prompt;   ///< kept for re-submit after loss
    uint64_t maxNewTokens = 0;
    /** QoS class this request was submitted under. */
    runtime::Priority priority = runtime::Priority::Standard;
    /** Daemon's retry advice from an Overloaded rejection (polls,
     *  unscaled). */
    uint64_t retryAfterPolls = 0;
};

/** One connection to specinferd. Single-threaded; drive with
 *  poll(). */
class Client
{
  public:
    explicit Client(ClientConfig cfg);
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /**
     * Find the board (bounded retry + backoff), create this
     * client's channel, and queue Hello. Returns Pending on
     * success — connected() turns true once poll() sees HelloAck —
     * or DaemonGone when no board appeared within the budget.
     */
    ClientStatus connect();

    /** Drop the old channel (the daemon unlinked it at reap) and
     *  connect again under a fresh nonce; unfinished requests are
     *  resubmitted or resumed. */
    ClientStatus reconnect();

    bool connected() const { return connected_; }

    /**
     * Pump IO once: heartbeat, flush queued frames (with
     * backoff-jittered retry on backpressure), drain responses,
     * check board liveness/epoch. Returns the most significant
     * event observed this poll (Ok when uneventful).
     */
    ClientStatus poll();

    /** Poll until connected or `max_polls` exhausted (Timeout). */
    ClientStatus waitConnected(size_t max_polls);

    /** Queue a request; returns the local tag. */
    uint64_t submit(const std::vector<int> &prompt,
                    size_t max_new_tokens,
                    runtime::Priority priority =
                        runtime::Priority::Standard);

    /** Queue a cancel (needs the ack to have arrived). */
    bool cancel(uint64_t tag);

    /** Per-request state, or nullptr for an unknown tag. */
    const ClientRequest *request(uint64_t tag) const;

    bool done(uint64_t tag) const;

    /** Unfinished, unrejected request count. */
    size_t inflightCount() const;

    /** Orderly goodbye + unlink. */
    void disconnect();

    /** Crash simulation (tests): drop everything on the floor — no
     *  goodbye, no unlink, no further polls. The daemon's lease
     *  reaper must clean up after us. */
    void abandon();

    uint64_t daemonEpoch() const { return daemonEpoch_; }
    ClientStatus lastStatus() const { return lastStatus_; }

    /**
     * Class-scaled backoff advice from the most recent Overloaded
     * rejection: the daemon's retry-after, multiplied by the
     * rejected request's class weight (Interactive 1×, Standard 2×,
     * Batch 4×) so when the bucket refills the most urgent traffic
     * retries first. poll() also sleeps one backoff unit per
     * advised poll when real sleeping is enabled.
     */
    uint64_t overloadBackoffPolls() const
    {
        return overloadBackoffPolls_;
    }

    /** Daemon health word from the board (Healthy when unknown). */
    BoardHealth boardHealth() const;

  private:
    void queueHelloAndResumes();
    void handleMessage(const Message &msg, ClientStatus *status);
    void backoffSleep(size_t failures);
    ClientRequest *byId(uint64_t id);

    ClientConfig cfg_;
    obs::ObsContext *obs_;
    util::Rng jitterRng_;

    Board board_;
    Channel channel_;
    bool connected_ = false;
    bool channelOpen_ = false;
    uint64_t daemonEpoch_ = 0;
    uint64_t leaseTicks_ = 0;

    uint64_t polls_ = 0;
    uint64_t lastHeartbeat_ = 0;
    size_t stallPolls_ = 0;
    size_t quietPolls_ = 0;
    size_t sendFailures_ = 0;
    uint64_t overloadBackoffPolls_ = 0;
    ClientStatus lastStatus_ = ClientStatus::Ok;

    uint64_t nextTag_ = 1;
    std::map<uint64_t, ClientRequest> requests_; ///< by tag
    std::map<uint64_t, uint64_t> tagOfId_;
    std::deque<Message> outbox_;
};

} // namespace ipc
} // namespace specinfer

#endif // SPECINFER_IPC_CLIENT_H
