#include "ipc/shm.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace specinfer {
namespace ipc {

std::string
defaultIpcDir()
{
    const char *env = std::getenv("SPECINFER_IPC_DIR");
    if (env != nullptr && env[0] != '\0')
        return env;
    return "/dev/shm";
}

ShmSegment::~ShmSegment()
{
    close();
}

ShmSegment::ShmSegment(ShmSegment &&other) noexcept
    : data_(other.data_), size_(other.size_),
      path_(std::move(other.path_))
{
    other.data_ = nullptr;
    other.size_ = 0;
}

ShmSegment &
ShmSegment::operator=(ShmSegment &&other) noexcept
{
    if (this != &other) {
        close();
        data_ = other.data_;
        size_ = other.size_;
        path_ = std::move(other.path_);
        other.data_ = nullptr;
        other.size_ = 0;
    }
    return *this;
}

bool
ShmSegment::create(const std::string &path, size_t bytes)
{
    close();
    int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0600);
    if (fd < 0)
        return false;
    if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
        ::close(fd);
        ::unlink(path.c_str());
        return false;
    }
    void *mem = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                       MAP_SHARED, fd, 0);
    ::close(fd);
    if (mem == MAP_FAILED) {
        ::unlink(path.c_str());
        return false;
    }
    std::memset(mem, 0, bytes);
    data_ = mem;
    size_ = bytes;
    path_ = path;
    return true;
}

bool
ShmSegment::open(const std::string &path)
{
    close();
    int fd = ::open(path.c_str(), O_RDWR);
    if (fd < 0)
        return false;
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
        ::close(fd);
        return false;
    }
    void *mem = ::mmap(nullptr, static_cast<size_t>(st.st_size),
                       PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    ::close(fd);
    if (mem == MAP_FAILED)
        return false;
    data_ = mem;
    size_ = static_cast<size_t>(st.st_size);
    path_ = path;
    return true;
}

void
ShmSegment::close()
{
    if (data_ != nullptr) {
        ::munmap(data_, size_);
        data_ = nullptr;
        size_ = 0;
    }
}

bool
ShmSegment::unlink()
{
    if (path_.empty())
        return false;
    return ::unlink(path_.c_str()) == 0;
}

std::vector<std::string>
listSegments(const std::string &dir, const std::string &prefix)
{
    std::vector<std::string> names;
    DIR *d = ::opendir(dir.c_str());
    if (d == nullptr)
        return names;
    while (struct dirent *ent = ::readdir(d)) {
        std::string name = ent->d_name;
        if (name.size() >= prefix.size() &&
            name.compare(0, prefix.size(), prefix) == 0)
            names.push_back(std::move(name));
    }
    ::closedir(d);
    std::sort(names.begin(), names.end());
    return names;
}

} // namespace ipc
} // namespace specinfer
