/**
 * @file
 * Shared-memory segment layouts: the daemon board and per-client
 * channels.
 *
 * Connection topology (one daemon, N clients):
 *
 *   <dir>/specinferd.board            — daemon liveness + epoch
 *   <dir>/specinferd.client.<pid>.<nonce>
 *       [ ClientHeader | request ring (client → daemon)
 *                      | response ring (daemon → client) ]
 *
 * A client *creates* its own channel segment, formats both rings,
 * then release-stores `ready`; the daemon discovers channels by
 * scanning the directory each few ticks and attaches any ready
 * segment it has not seen. There is no connect syscall and no
 * accept queue — the filesystem is the rendezvous, every data-path
 * exchange after that is lock-free ring traffic.
 *
 * The board is how clients answer "is anybody home?": the daemon
 * bumps `heartbeat` every tick and bumps `epoch` once per process
 * start, so a client can distinguish daemon-gone (heartbeat stalls)
 * from daemon-restart (epoch changed — reconnect and resume).
 */

#ifndef SPECINFER_IPC_CHANNEL_H
#define SPECINFER_IPC_CHANNEL_H

#include <atomic>
#include <cstdint>
#include <string>

#include "ipc/ring.h"
#include "ipc/shm.h"

namespace specinfer {
namespace ipc {

/** Board segment name inside the IPC directory. */
constexpr const char *kBoardName = "specinferd.board";
/** Client channel name prefix inside the IPC directory. */
constexpr const char *kClientPrefix = "specinferd.client.";

/**
 * Daemon health, published on the board for clients and the
 * supervisor — nobody needs a round-trip to learn the daemon is
 * sick.
 */
enum class BoardHealth : uint32_t
{
    Healthy = 0,
    /** Watchdog saw an iteration stall; speculation disabled. */
    Degraded = 1,
    /** Ingress shedding active (class buckets rejecting). */
    Overloaded = 2,
    /** Graceful shutdown in progress; submits rejected. */
    Draining = 3,
};

const char *boardHealthName(BoardHealth health);

/** Daemon liveness board (one page). */
struct BoardShared
{
    uint64_t magic;
    uint32_t version;
    uint32_t pad0;
    /** Bumped once per daemon start; clients detect restarts. */
    std::atomic<uint64_t> epoch;
    /** Bumped every daemon tick; clients detect daemon-gone. */
    alignas(64) std::atomic<uint64_t> heartbeat;
    /** 0 while draining/stopped: submits will be rejected. */
    alignas(64) std::atomic<uint32_t> accepting;
    std::atomic<uint32_t> draining;
    /** BoardHealth word; clients bias backoff, supervisor logs. */
    std::atomic<uint32_t> health;
};

constexpr uint64_t kBoardMagic = 0x5350454342524430ULL;
constexpr uint64_t kChannelMagic = 0x53504543434e4c31ULL;

/** Header of a client channel segment. */
struct ClientHeader
{
    uint64_t magic;
    uint32_t version;
    /** Release-stored 1 by the client once both rings are
     *  formatted; the daemon ignores channels until then. */
    std::atomic<uint32_t> ready;
    uint64_t clientPid;
    uint64_t clientNonce;
    uint64_t requestRingBytes;  ///< ring *capacities* (data bytes)
    uint64_t responseRingBytes;
};

/** Daemon board view (creator = daemon, opener = client). */
class Board
{
  public:
    bool create(const std::string &dir, uint64_t epoch);
    bool open(const std::string &dir);
    bool valid() const { return shared_ != nullptr; }

    BoardShared *shared() { return shared_; }
    const BoardShared *shared() const { return shared_; }
    bool unlink() { return seg_.unlink(); }

    static std::string path(const std::string &dir);

  private:
    ShmSegment seg_;
    BoardShared *shared_ = nullptr;
};

/**
 * One client ↔ daemon channel: the segment plus attached ring
 * views. Which ring is "inbound" depends on the side; use
 * requestRing() (client → daemon) and responseRing() explicitly.
 */
class Channel
{
  public:
    /** Client side: create + format a fresh channel segment. */
    bool create(const std::string &dir, uint64_t pid, uint64_t nonce,
                size_t request_ring_bytes, size_t response_ring_bytes);

    /** Daemon side: attach an existing, ready channel. */
    bool attach(const std::string &path);

    bool valid() const { return header_ != nullptr; }
    const ClientHeader *header() const { return header_; }

    ShmRing &requestRing() { return request_; }
    ShmRing &responseRing() { return response_; }

    const std::string &path() const { return seg_.path(); }
    bool unlink() { return seg_.unlink(); }
    void close();

  private:
    bool mapRings(bool init);

    ShmSegment seg_;
    ClientHeader *header_ = nullptr;
    ShmRing request_;
    ShmRing response_;
};

} // namespace ipc
} // namespace specinfer

#endif // SPECINFER_IPC_CHANNEL_H
