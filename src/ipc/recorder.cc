#include "ipc/recorder.h"

#include <cstring>
#include <istream>
#include <ostream>

#include "runtime/journal.h" // crc32

namespace specinfer {
namespace ipc {

namespace {

template <typename T>
void
put(std::vector<uint8_t> &out, T value)
{
    const size_t at = out.size();
    out.resize(at + sizeof(T));
    std::memcpy(out.data() + at, &value, sizeof(T));
}

void
putString(std::vector<uint8_t> &out, const std::string &s)
{
    put<uint32_t>(out, static_cast<uint32_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
}

void
putTokens(std::vector<uint8_t> &out, const std::vector<int> &toks)
{
    put<uint32_t>(out, static_cast<uint32_t>(toks.size()));
    for (int t : toks)
        put<int32_t>(out, t);
}

template <typename T>
bool
take(const std::vector<uint8_t> &in, size_t *pos, T *value)
{
    if (in.size() - *pos < sizeof(T))
        return false;
    std::memcpy(value, in.data() + *pos, sizeof(T));
    *pos += sizeof(T);
    return true;
}

bool
takeString(const std::vector<uint8_t> &in, size_t *pos,
           std::string *s)
{
    uint32_t len = 0;
    if (!take(in, pos, &len) || in.size() - *pos < len)
        return false;
    s->assign(reinterpret_cast<const char *>(in.data() + *pos), len);
    *pos += len;
    return true;
}

bool
takeTokens(const std::vector<uint8_t> &in, size_t *pos,
           std::vector<int> *toks)
{
    uint32_t count = 0;
    if (!take(in, pos, &count) ||
        in.size() - *pos < count * sizeof(int32_t))
        return false;
    toks->resize(count);
    for (uint32_t i = 0; i < count; ++i) {
        int32_t t = 0;
        take(in, pos, &t);
        (*toks)[i] = t;
    }
    return true;
}

std::vector<uint8_t>
encodeEvent(const RecordedEvent &ev)
{
    std::vector<uint8_t> out;
    put<uint8_t>(out, static_cast<uint8_t>(ev.type));
    switch (ev.type) {
      case EventType::Header:
        putString(out, ev.llm);
        put<uint64_t>(out, ev.ssmLayers);
        putString(out, ev.expansion);
        put<uint64_t>(out, ev.seed);
        put<uint64_t>(out, ev.engineMaxNewTokens);
        put<double>(out, ev.temperature);
        put<uint64_t>(out, ev.maxBatchSize);
        put<uint8_t>(out, ev.ssmPrecision);
        put<uint8_t>(out, ev.tpDegree);
        break;
      case EventType::Submit:
        put<uint64_t>(out, ev.iteration);
        put<uint64_t>(out, ev.id);
        put<uint64_t>(out, ev.maxNewTokens);
        put<uint8_t>(out, ev.priority);
        putTokens(out, ev.prompt);
        break;
      case EventType::Cancel:
        put<uint64_t>(out, ev.iteration);
        put<uint64_t>(out, ev.id);
        break;
      case EventType::Finish:
        put<uint64_t>(out, ev.iteration);
        put<uint64_t>(out, ev.id);
        put<uint8_t>(out, ev.stopReason);
        putTokens(out, ev.tokens);
        break;
    }
    return out;
}

bool
decodeEvent(const std::vector<uint8_t> &bytes, RecordedEvent *ev)
{
    size_t pos = 0;
    uint8_t type = 0;
    if (!take(bytes, &pos, &type) ||
        type < static_cast<uint8_t>(EventType::Header) ||
        type > static_cast<uint8_t>(EventType::Finish))
        return false;
    ev->type = static_cast<EventType>(type);
    switch (ev->type) {
      case EventType::Header:
        return takeString(bytes, &pos, &ev->llm) &&
               take(bytes, &pos, &ev->ssmLayers) &&
               takeString(bytes, &pos, &ev->expansion) &&
               take(bytes, &pos, &ev->seed) &&
               take(bytes, &pos, &ev->engineMaxNewTokens) &&
               take(bytes, &pos, &ev->temperature) &&
               take(bytes, &pos, &ev->maxBatchSize) &&
               take(bytes, &pos, &ev->ssmPrecision) &&
               take(bytes, &pos, &ev->tpDegree) &&
               pos == bytes.size();
      case EventType::Submit:
        return take(bytes, &pos, &ev->iteration) &&
               take(bytes, &pos, &ev->id) &&
               take(bytes, &pos, &ev->maxNewTokens) &&
               take(bytes, &pos, &ev->priority) &&
               takeTokens(bytes, &pos, &ev->prompt) &&
               pos == bytes.size();
      case EventType::Cancel:
        return take(bytes, &pos, &ev->iteration) &&
               take(bytes, &pos, &ev->id) && pos == bytes.size();
      case EventType::Finish:
        return take(bytes, &pos, &ev->iteration) &&
               take(bytes, &pos, &ev->id) &&
               take(bytes, &pos, &ev->stopReason) &&
               takeTokens(bytes, &pos, &ev->tokens) &&
               pos == bytes.size();
    }
    return false;
}

} // namespace

const char *
eventTypeName(EventType type)
{
    switch (type) {
      case EventType::Header: return "header";
      case EventType::Submit: return "submit";
      case EventType::Cancel: return "cancel";
      case EventType::Finish: return "finish";
    }
    return "unknown";
}

RecordWriter::RecordWriter(std::ostream &out) : out_(&out)
{
}

void
RecordWriter::append(const RecordedEvent &event)
{
    const std::vector<uint8_t> payload = encodeEvent(event);
    const uint32_t len = static_cast<uint32_t>(payload.size());
    const uint32_t crc = runtime::crc32(payload.data(), payload.size());
    out_->write(reinterpret_cast<const char *>(&len), sizeof(len));
    out_->write(reinterpret_cast<const char *>(&crc), sizeof(crc));
    out_->write(reinterpret_cast<const char *>(payload.data()),
                static_cast<std::streamsize>(payload.size()));
    bytes_ += sizeof(len) + sizeof(crc) + payload.size();
}

RecordReader::RecordReader(std::istream &in) : in_(&in)
{
}

bool
RecordReader::next(RecordedEvent &event)
{
    if (done_)
        return false;
    uint32_t len = 0, crc = 0;
    in_->read(reinterpret_cast<char *>(&len), sizeof(len));
    if (in_->gcount() == 0) {
        done_ = true;
        return false; // clean EOF
    }
    if (in_->gcount() != sizeof(len)) {
        done_ = tornTail_ = true;
        return false;
    }
    in_->read(reinterpret_cast<char *>(&crc), sizeof(crc));
    if (in_->gcount() != sizeof(crc)) {
        done_ = tornTail_ = true;
        return false;
    }
    std::vector<uint8_t> payload(len);
    in_->read(reinterpret_cast<char *>(payload.data()), len);
    if (in_->gcount() != static_cast<std::streamsize>(len) ||
        runtime::crc32(payload.data(), payload.size()) != crc ||
        !decodeEvent(payload, &event)) {
        done_ = tornTail_ = true;
        return false;
    }
    bytes_ += sizeof(len) + sizeof(crc) + len;
    return true;
}

} // namespace ipc
} // namespace specinfer
