/**
 * @file
 * Wire protocol for the client ↔ specinferd shared-memory channel.
 *
 * One flat Message struct (journal-record style: `type` selects the
 * meaningful fields) with a bounds-checked binary codec. Frames
 * travel over the CRC-guarded ShmRing, so the codec only has to be
 * honest about lengths — a decode failure means a peer speaking a
 * different protocol version, and the connection is dropped.
 *
 * ipcSend()/ipcRecv() are the only functions that touch a ring in
 * daemon and client code: they interpose the `ipc-send` /
 * `ipc-recv` fault points (transient failures the caller must
 * retry/absorb — frames are never dropped or reordered) and count
 * the ipc_* metrics.
 */

#ifndef SPECINFER_IPC_WIRE_H
#define SPECINFER_IPC_WIRE_H

#include <cstdint>
#include <string>
#include <vector>

#include "ipc/ring.h"

namespace specinfer {
namespace obs {
class ObsContext;
}
namespace ipc {

/** Protocol version; bumped on any wire-format change.
 *  v2: Submit carries a priority class; Reject carries
 *  retryAfterPolls for Overloaded backpressure. */
constexpr uint32_t kWireVersion = 2;

/** Message kinds. */
enum class MsgType : uint8_t
{
    /** client → daemon: announce a (re)connecting client. */
    Hello = 1,
    /** daemon → client: lease granted; carries epoch + leaseTicks. */
    HelloAck = 2,
    /** client → daemon: lease keep-alive. */
    Heartbeat = 3,
    /** client → daemon: submit a request (tag correlates the ack). */
    Submit = 4,
    /** daemon → client: request admitted; tag → daemon request id. */
    SubmitAck = 5,
    /** daemon → client: request refused (typed reason). */
    Reject = 6,
    /** client → daemon: cancel an in-flight request. */
    Cancel = 7,
    /** client → daemon after a daemon restart: re-bind request
     *  `id`, of which the client already holds `start` tokens. */
    Resume = 8,
    /** daemon → client: generated tokens [start, start+n) of `id`.
     *  Idempotent by construction: re-sent ranges overwrite the
     *  same positions, so resume never duplicates tokens. */
    Tokens = 9,
    /** daemon → client: request finished (stop reason + total). */
    Finished = 10,
    /** daemon → client: lease revoked (reaped); reconnect to
     *  continue. Also the last frame before a drain unlink. */
    Revoked = 11,
    /** either direction: orderly goodbye. */
    Goodbye = 12,
};

/** Printable message type (logs and tests). */
const char *msgTypeName(MsgType type);

/** Typed reasons carried by Reject frames. */
enum class WireReject : uint8_t
{
    None = 0,
    QueueFull = 1,     ///< bounded pending queue at capacity
    NeverFits = 2,     ///< request can never be served
    InvalidPrompt = 3, ///< empty / over the model's budget
    Draining = 4,      ///< daemon is shutting down, not admitting
    Overloaded = 5,    ///< class token bucket empty; retry later
};

const char *wireRejectName(WireReject reason);

/** One protocol message; `type` selects the live fields. */
struct Message
{
    MsgType type = MsgType::Heartbeat;

    /** Daemon-assigned request id (Submit ack onward). */
    uint64_t id = 0;
    /** Client-chosen correlation tag (Submit / SubmitAck / Reject). */
    uint64_t tag = 0;
    /** Token-range start (Tokens), tokens already held (Resume). */
    uint64_t start = 0;
    /** Daemon epoch (HelloAck), client pid (Hello). */
    uint64_t epoch = 0;
    /** Lease length in daemon ticks (HelloAck). */
    uint64_t leaseTicks = 0;
    /** Per-request generation budget (Submit). */
    uint64_t maxNewTokens = 0;
    /** Reject reason. */
    WireReject reject = WireReject::None;
    /** core::SpecSession::StopReason, flattened (Finished). */
    uint8_t stopReason = 0;
    /** QoS class, runtime::Priority flattened (Submit). */
    uint8_t priority = 1;
    /** Client polls to wait before retrying (Overloaded Reject). */
    uint64_t retryAfterPolls = 0;
    /** Prompt (Submit) or generated tokens (Tokens). */
    std::vector<int> tokens;
};

/** Serialize `msg` into a frame payload. */
std::vector<uint8_t> encodeMessage(const Message &msg);

/** Decode a frame payload; false on any bounds/version violation. */
bool decodeMessage(const std::vector<uint8_t> &bytes, Message *msg);

/**
 * Push one message. False = transient failure (ring backpressure or
 * an injected ipc-send fault): the caller keeps the message queued
 * and retries later. Counts ipc_frames_sent / ipc_bytes_sent /
 * ipc_ring_full_retries.
 */
bool ipcSend(ShmRing &ring, const Message &msg,
             obs::ObsContext *obs);

/** Outcome of ipcRecv(). */
enum class RecvStatus
{
    Empty,   ///< nothing available (or an injected ipc-recv delay)
    Ok,      ///< one message decoded
    Corrupt, ///< CRC/decode violation: drop the connection
};

/**
 * Pop + decode one message. An injected ipc-recv fault delays the
 * frame to a later poll (never loses it). Counts
 * ipc_frames_received / ipc_bytes_received / ipc_crc_rejects.
 */
RecvStatus ipcRecv(ShmRing &ring, Message *msg,
                   obs::ObsContext *obs);

} // namespace ipc
} // namespace specinfer

#endif // SPECINFER_IPC_WIRE_H
