#include "ipc/replay.h"

#include <algorithm>
#include <map>
#include <ostream>
#include <vector>

#include "core/spec_engine.h"
#include "ipc/recorder.h"
#include "model/model_factory.h"
#include "runtime/request_manager.h"

namespace specinfer {
namespace ipc {

namespace {

bool
abortedReason(uint8_t stop)
{
    using SR = core::SpecSession::StopReason;
    switch (static_cast<SR>(stop)) {
      case SR::Deadline:
      case SR::Cancelled:
      case SR::Preempted:
      case SR::Shed:
        return true;
      default:
        return false;
    }
}

} // namespace

ReplayResult
replayRecording(std::istream &in, std::ostream &log, bool verbose)
{
    ReplayResult result;
    RecordReader reader(in);

    RecordedEvent header;
    if (!reader.next(header) || header.type != EventType::Header) {
        result.error = "recording has no valid header record";
        return result;
    }

    // Rebuild the recorded engine identity, SSM precision included:
    // an int8 daemon's drafts must be re-drafted in int8 (greedy
    // replays would pass either way, but stochastic ones sample from
    // the draft distribution). The recorded tensor-parallel degree
    // is re-applied too — logits are degree-invariant by the §5j
    // proof, but a replay is defined as re-driving the recorded
    // process, execution shape included (the factories propagate
    // the degree to the SSMs).
    model::ModelConfig llm_cfg = model::llmPreset(header.llm);
    llm_cfg.tensorParallel =
        std::max<size_t>(1, header.tpDegree);
    model::Transformer llm = model::makeLlm(llm_cfg);
    const size_t ssm_layers = static_cast<size_t>(header.ssmLayers);
    model::Transformer ssm =
        static_cast<model::Precision>(header.ssmPrecision) ==
                model::Precision::Int8
            ? model::makeInt8Ssm(llm, ssm_layers)
            : model::makeEarlyExitSsm(llm, ssm_layers);
    core::EngineConfig cfg =
        header.temperature > 0.0
            ? core::EngineConfig::stochasticDefault(
                  static_cast<float>(header.temperature))
            : core::EngineConfig::greedyDefault();
    cfg.spec.expansion = core::ExpansionConfig::parse(header.expansion);
    cfg.maxNewTokens = static_cast<size_t>(header.engineMaxNewTokens);
    cfg.seed = header.seed;
    std::vector<const model::Transformer *> ssms;
    if (!cfg.spec.expansion.widths.empty())
        ssms.push_back(&ssm);
    core::SpecEngine engine(&llm, ssms, cfg);

    runtime::ServingConfig scfg;
    scfg.maxBatchSize = static_cast<size_t>(header.maxBatchSize);
    runtime::RequestManager manager(&engine, scfg);

    // First pass structures: unique submits in first-appearance
    // order (a restarting daemon re-emits in-flight submits with
    // their original ids) and the recorded results to check.
    struct Recorded
    {
        uint8_t stopReason = 0;
        std::vector<int> tokens;
        bool finished = false;
    };
    std::map<uint64_t, Recorded> byId;
    std::vector<RecordedEvent> submits;

    RecordedEvent ev;
    while (reader.next(ev)) {
        switch (ev.type) {
          case EventType::Submit:
            if (byId.find(ev.id) == byId.end()) {
                byId[ev.id] = Recorded{};
                submits.push_back(ev);
            }
            break;
          case EventType::Finish: {
            Recorded &rec = byId[ev.id];
            rec.stopReason = ev.stopReason;
            rec.tokens = ev.tokens;
            rec.finished = true;
            break;
          }
          case EventType::Cancel:
          case EventType::Header:
            break; // pacing/audit only
        }
    }
    result.tornTail = reader.tornTail();

    // Re-drive with the recorded iteration pacing: submission
    // iteration gaps reproduce batching shape, which is what makes
    // the replay a serving-stack re-drive and not a bare generate()
    // sweep. Deadlines/cancels are not re-applied — aborted
    // requests run to completion and are checked by prefix.
    for (const RecordedEvent &sub : submits) {
        while (manager.stats().iterations < sub.iteration)
            manager.runIteration();
        runtime::SubmitResult res = manager.submit(
            sub.prompt, static_cast<size_t>(sub.maxNewTokens), 0,
            static_cast<runtime::Priority>(
                sub.priority < runtime::kPriorityCount
                    ? sub.priority
                    : 1));
        ++result.submits;
        if (!res.accepted() || res.id != sub.id) {
            ++result.mismatches;
            log << "replay: submit for recorded id " << sub.id
                << " got "
                << (res.accepted() ? "id" : "rejected")
                << " " << res.id << "\n";
        }
    }
    manager.runUntilDrained();

    std::map<uint64_t, const runtime::RequestResult *> replayed;
    for (const runtime::RequestResult &res : manager.finished())
        replayed[res.id] = &res;

    for (const auto &entry : byId) {
        if (!entry.second.finished)
            continue; // still in flight when the recording stopped
        ++result.finishesChecked;
        auto it = replayed.find(entry.first);
        if (it == replayed.end()) {
            ++result.mismatches;
            log << "replay: recorded id " << entry.first
                << " never finished in replay\n";
            continue;
        }
        const std::vector<int> &got = it->second->tokens;
        const std::vector<int> &want = entry.second.tokens;
        const bool aborted = abortedReason(entry.second.stopReason);
        bool match;
        if (aborted) {
            match = want.size() <= got.size() &&
                    std::equal(want.begin(), want.end(), got.begin());
        } else {
            match = want == got;
        }
        if (!match) {
            ++result.mismatches;
            log << "replay: id " << entry.first << " diverged ("
                << (aborted ? "prefix" : "exact") << " check, "
                << want.size() << " recorded vs " << got.size()
                << " replayed tokens)\n";
        } else if (verbose) {
            log << "replay: id " << entry.first << " ok ("
                << want.size() << " tokens"
                << (aborted ? ", aborted prefix" : "") << ")\n";
        }
    }

    result.ok = result.mismatches == 0;
    log << "replay: " << result.submits << " requests, "
        << result.finishesChecked << " results checked, "
        << result.mismatches << " mismatches"
        << (result.tornTail ? " (torn tail tolerated)" : "") << "\n";
    return result;
}

} // namespace ipc
} // namespace specinfer
