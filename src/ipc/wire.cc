#include "ipc/wire.h"

#include <cstring>

#include "obs/obs.h"
#include "util/fault.h"

namespace specinfer {
namespace ipc {

namespace {

template <typename T>
void
put(std::vector<uint8_t> &out, T value)
{
    const size_t at = out.size();
    out.resize(at + sizeof(T));
    std::memcpy(out.data() + at, &value, sizeof(T));
}

template <typename T>
bool
take(const std::vector<uint8_t> &in, size_t *pos, T *value)
{
    if (in.size() - *pos < sizeof(T))
        return false;
    std::memcpy(value, in.data() + *pos, sizeof(T));
    *pos += sizeof(T);
    return true;
}

} // namespace

const char *
msgTypeName(MsgType type)
{
    switch (type) {
      case MsgType::Hello:     return "hello";
      case MsgType::HelloAck:  return "hello-ack";
      case MsgType::Heartbeat: return "heartbeat";
      case MsgType::Submit:    return "submit";
      case MsgType::SubmitAck: return "submit-ack";
      case MsgType::Reject:    return "reject";
      case MsgType::Cancel:    return "cancel";
      case MsgType::Resume:    return "resume";
      case MsgType::Tokens:    return "tokens";
      case MsgType::Finished:  return "finished";
      case MsgType::Revoked:   return "revoked";
      case MsgType::Goodbye:   return "goodbye";
    }
    return "unknown";
}

const char *
wireRejectName(WireReject reason)
{
    switch (reason) {
      case WireReject::None:          return "none";
      case WireReject::QueueFull:     return "queue-full";
      case WireReject::NeverFits:     return "never-fits";
      case WireReject::InvalidPrompt: return "invalid-prompt";
      case WireReject::Draining:      return "draining";
      case WireReject::Overloaded:    return "overloaded";
    }
    return "unknown";
}

std::vector<uint8_t>
encodeMessage(const Message &msg)
{
    std::vector<uint8_t> out;
    out.reserve(64 + msg.tokens.size() * sizeof(int));
    put<uint32_t>(out, kWireVersion);
    put<uint8_t>(out, static_cast<uint8_t>(msg.type));
    put<uint64_t>(out, msg.id);
    put<uint64_t>(out, msg.tag);
    put<uint64_t>(out, msg.start);
    put<uint64_t>(out, msg.epoch);
    put<uint64_t>(out, msg.leaseTicks);
    put<uint64_t>(out, msg.maxNewTokens);
    put<uint8_t>(out, static_cast<uint8_t>(msg.reject));
    put<uint8_t>(out, msg.stopReason);
    put<uint8_t>(out, msg.priority);
    put<uint64_t>(out, msg.retryAfterPolls);
    put<uint32_t>(out, static_cast<uint32_t>(msg.tokens.size()));
    for (int tok : msg.tokens)
        put<int32_t>(out, tok);
    return out;
}

bool
decodeMessage(const std::vector<uint8_t> &bytes, Message *msg)
{
    size_t pos = 0;
    uint32_t version = 0;
    if (!take(bytes, &pos, &version) || version != kWireVersion)
        return false;
    uint8_t type = 0, reject = 0;
    uint32_t count = 0;
    if (!take(bytes, &pos, &type) || !take(bytes, &pos, &msg->id) ||
        !take(bytes, &pos, &msg->tag) ||
        !take(bytes, &pos, &msg->start) ||
        !take(bytes, &pos, &msg->epoch) ||
        !take(bytes, &pos, &msg->leaseTicks) ||
        !take(bytes, &pos, &msg->maxNewTokens) ||
        !take(bytes, &pos, &reject) ||
        !take(bytes, &pos, &msg->stopReason) ||
        !take(bytes, &pos, &msg->priority) ||
        !take(bytes, &pos, &msg->retryAfterPolls) ||
        !take(bytes, &pos, &count))
        return false;
    if (type < static_cast<uint8_t>(MsgType::Hello) ||
        type > static_cast<uint8_t>(MsgType::Goodbye))
        return false;
    if (bytes.size() - pos != count * sizeof(int32_t))
        return false;
    msg->type = static_cast<MsgType>(type);
    msg->reject = static_cast<WireReject>(reject);
    msg->tokens.resize(count);
    for (uint32_t i = 0; i < count; ++i) {
        int32_t tok = 0;
        take(bytes, &pos, &tok);
        msg->tokens[i] = tok;
    }
    return true;
}

bool
ipcSend(ShmRing &ring, const Message &msg, obs::ObsContext *obs)
{
    // Injected transient send failure: the caller's retry loop
    // absorbs it exactly like ring backpressure.
    if (util::faultAt(util::FaultPoint::IpcSend)) {
        if (obs != nullptr)
            obs->metrics().counter("ipc_ring_full_retries")->inc();
        return false;
    }
    const std::vector<uint8_t> bytes = encodeMessage(msg);
    if (!ring.push(bytes.data(), bytes.size())) {
        if (obs != nullptr)
            obs->metrics().counter("ipc_ring_full_retries")->inc();
        return false;
    }
    if (obs != nullptr) {
        obs->metrics().counter("ipc_frames_sent")->inc();
        obs->metrics().counter("ipc_bytes_sent")->inc(bytes.size());
    }
    return true;
}

RecvStatus
ipcRecv(ShmRing &ring, Message *msg, obs::ObsContext *obs)
{
    // Injected consumer-side delay: the frame stays published and
    // is delivered intact on a later poll.
    if (util::faultAt(util::FaultPoint::IpcRecv))
        return RecvStatus::Empty;
    std::vector<uint8_t> bytes;
    switch (ring.pop(bytes)) {
      case PopStatus::Empty:
        return RecvStatus::Empty;
      case PopStatus::Corrupt:
        if (obs != nullptr)
            obs->metrics().counter("ipc_crc_rejects")->inc();
        return RecvStatus::Corrupt;
      case PopStatus::Ok:
        break;
    }
    if (!decodeMessage(bytes, msg)) {
        if (obs != nullptr)
            obs->metrics().counter("ipc_crc_rejects")->inc();
        return RecvStatus::Corrupt;
    }
    if (obs != nullptr) {
        obs->metrics().counter("ipc_frames_received")->inc();
        obs->metrics()
            .counter("ipc_bytes_received")
            ->inc(bytes.size());
    }
    return RecvStatus::Ok;
}

} // namespace ipc
} // namespace specinfer
