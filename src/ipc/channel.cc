#include "ipc/channel.h"

#include <atomic>

namespace specinfer {
namespace ipc {

namespace {

/** 64-byte-align an offset so ring control blocks never share a
 *  cache line with the header or each other. */
inline size_t
align64(size_t n)
{
    return (n + 63) & ~size_t{63};
}

} // namespace

const char *
boardHealthName(BoardHealth health)
{
    switch (health) {
      case BoardHealth::Healthy:    return "healthy";
      case BoardHealth::Degraded:   return "degraded";
      case BoardHealth::Overloaded: return "overloaded";
      case BoardHealth::Draining:   return "draining";
    }
    return "unknown";
}

std::string
Board::path(const std::string &dir)
{
    return dir + "/" + kBoardName;
}

bool
Board::create(const std::string &dir, uint64_t epoch)
{
    // Reuse a leftover board in place rather than truncating: a
    // surviving client still holds a mapping of this inode, and
    // rewriting the same pages is exactly how it observes the new
    // epoch; truncation would instead fault its next access.
    if (!seg_.open(path(dir)) || seg_.size() < sizeof(BoardShared)) {
        seg_.close();
        if (!seg_.create(path(dir), sizeof(BoardShared)))
            return false;
    }
    BoardShared *s = static_cast<BoardShared *>(seg_.data());
    s->version = 1;
    s->epoch.store(epoch, std::memory_order_relaxed);
    s->heartbeat.store(0, std::memory_order_relaxed);
    s->accepting.store(1, std::memory_order_relaxed);
    s->draining.store(0, std::memory_order_relaxed);
    s->health.store(
        static_cast<uint32_t>(BoardHealth::Healthy),
        std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    s->magic = kBoardMagic;
    shared_ = s;
    return true;
}

bool
Board::open(const std::string &dir)
{
    if (!seg_.open(path(dir)) || seg_.size() < sizeof(BoardShared))
        return false;
    BoardShared *s = static_cast<BoardShared *>(seg_.data());
    if (s->magic != kBoardMagic) {
        seg_.close();
        return false;
    }
    shared_ = s;
    return true;
}

bool
Channel::mapRings(bool init)
{
    uint8_t *base = static_cast<uint8_t *>(seg_.data());
    const size_t req_cap =
        static_cast<size_t>(header_->requestRingBytes);
    const size_t resp_cap =
        static_cast<size_t>(header_->responseRingBytes);
    const size_t req_off = align64(sizeof(ClientHeader));
    const size_t resp_off =
        align64(req_off + ShmRing::footprint(req_cap));
    const size_t total =
        resp_off + ShmRing::footprint(resp_cap);
    if (seg_.size() < total)
        return false;
    return request_.attach(base + req_off, req_cap, init) &&
           response_.attach(base + resp_off, resp_cap, init);
}

bool
Channel::create(const std::string &dir, uint64_t pid, uint64_t nonce,
                size_t request_ring_bytes, size_t response_ring_bytes)
{
    const size_t req_off = align64(sizeof(ClientHeader));
    const size_t resp_off =
        align64(req_off + ShmRing::footprint(request_ring_bytes));
    const size_t total =
        resp_off + ShmRing::footprint(response_ring_bytes);
    const std::string path = dir + "/" + kClientPrefix +
                             std::to_string(pid) + "." +
                             std::to_string(nonce);
    if (!seg_.create(path, total))
        return false;
    ClientHeader *h = static_cast<ClientHeader *>(seg_.data());
    h->version = 1;
    h->clientPid = pid;
    h->clientNonce = nonce;
    h->requestRingBytes = request_ring_bytes;
    h->responseRingBytes = response_ring_bytes;
    h->magic = kChannelMagic;
    header_ = h;
    if (!mapRings(/*init=*/true)) {
        seg_.unlink();
        seg_.close();
        header_ = nullptr;
        return false;
    }
    // Publish: the daemon's scan skips channels until ready.
    h->ready.store(1, std::memory_order_release);
    return true;
}

bool
Channel::attach(const std::string &path)
{
    if (!seg_.open(path) || seg_.size() < sizeof(ClientHeader))
        return false;
    ClientHeader *h = static_cast<ClientHeader *>(seg_.data());
    if (h->magic != kChannelMagic ||
        h->ready.load(std::memory_order_acquire) != 1) {
        seg_.close();
        return false;
    }
    header_ = h;
    if (!mapRings(/*init=*/false)) {
        seg_.close();
        header_ = nullptr;
        return false;
    }
    return true;
}

void
Channel::close()
{
    seg_.close();
    header_ = nullptr;
    request_ = ShmRing();
    response_ = ShmRing();
}

} // namespace ipc
} // namespace specinfer
