/**
 * @file
 * Offline re-drive of a daemon recording (recorder.h) through a
 * fresh engine + RequestManager, checking token-identical
 * reproduction — the `diffcheck --replay` oracle.
 */

#ifndef SPECINFER_IPC_REPLAY_H
#define SPECINFER_IPC_REPLAY_H

#include <cstddef>
#include <iosfwd>
#include <string>

namespace specinfer {
namespace ipc {

/** Outcome of replaying one recording. */
struct ReplayResult
{
    bool ok = false;
    /** Recording unreadable / no header. */
    std::string error;
    size_t submits = 0;        ///< unique requests replayed
    size_t finishesChecked = 0;///< recorded results compared
    size_t mismatches = 0;
    bool tornTail = false;     ///< recording ended in a torn frame
};

/**
 * Rebuild the recorded engine, re-submit the recorded request
 * stream with its original iteration pacing, drain, and compare
 * per-request token streams against the recorded results: exact
 * equality for normally finished requests; recorded-is-a-prefix
 * for aborted ones (cancel/deadline/shed cut at a timing-dependent
 * point, so only content up to the cut is invariant).
 *
 * @param log Human-readable progress/mismatch report.
 */
ReplayResult replayRecording(std::istream &in, std::ostream &log,
                             bool verbose = false);

} // namespace ipc
} // namespace specinfer

#endif // SPECINFER_IPC_REPLAY_H
