/**
 * @file
 * Lock-free SPSC ring buffer over shared memory, the daemon's hot
 * path (ROADMAP: tpib-writer → /dev/shm ring → consumer idiom).
 *
 * One producer process, one consumer process, no locks: the
 * producer owns `head` (bytes ever written), the consumer owns
 * `tail` (bytes ever read), and each side reads the other's cursor
 * with acquire ordering and publishes its own with release
 * ordering. Cursors are monotonically increasing 64-bit byte
 * counts; `cursor & (capacity - 1)` is the physical offset, so
 * wrap-around needs no modular arithmetic on the fast path and the
 * full/empty ambiguity never arises.
 *
 * Frames are CRC-guarded:
 *
 *   u32 payloadLength | u32 crc32(payload) | payload | pad to 8
 *
 * The CRC is not for transport errors (shared memory does not
 * corrupt bytes) — it is the *crash barrier*. A producer that dies
 * mid-frame has not yet published `head`, so the consumer never
 * sees the torn bytes; but a buggy or compromised producer that
 * published garbage, or a partial write observed through a stale
 * mapping, is caught by the CRC and surfaces as PopStatus::Corrupt,
 * at which point the consumer poisons the ring and the daemon
 * reaps the peer instead of decoding garbage into the engine.
 *
 * The ring lives *inside* a caller-provided memory region (a
 * ShmSegment slice); attach() never allocates. Both processes
 * attach the same region; exactly one passes `init = true`.
 */

#ifndef SPECINFER_IPC_RING_H
#define SPECINFER_IPC_RING_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace specinfer {
namespace ipc {

/** Outcome of ShmRing::pop(). */
enum class PopStatus
{
    Empty,   ///< no published frame
    Ok,      ///< one frame delivered
    Corrupt, ///< CRC/framing violation; ring is poisoned
};

/**
 * The shared control block + data bytes. Alignment/padding keep the
 * producer and consumer cursors on separate cache lines (no false
 * sharing between processes).
 */
struct RingShared
{
    uint64_t magic;
    uint64_t capacity; ///< data bytes, power of two
    alignas(64) std::atomic<uint64_t> head; ///< producer cursor
    alignas(64) std::atomic<uint64_t> tail; ///< consumer cursor
    alignas(64) std::atomic<uint32_t> poisoned; ///< sticky corrupt
    alignas(64) uint8_t data[1]; ///< `capacity` bytes follow
};

/**
 * SPSC ring view over a shared region. The view itself is a plain
 * local object (cheap to copy); all shared state lives in the
 * region.
 */
class ShmRing
{
  public:
    ShmRing() = default;

    /** Region bytes needed for a ring with `capacity` data bytes
     *  (capacity must be a power of two). */
    static size_t footprint(size_t capacity);

    /**
     * Attach to (and with `init`, format) a ring inside `mem`,
     * which must hold footprint(capacity) bytes and be 64-byte
     * aligned (mmap pages are).
     * @return false when a non-init attach finds no valid ring.
     */
    bool attach(void *mem, size_t capacity, bool init);

    bool valid() const { return shared_ != nullptr; }

    /**
     * Publish one frame. Returns false — and writes nothing — when
     * the free space cannot hold the frame (producer backpressure;
     * retry after the consumer drains) or when the payload can
     * never fit (larger than capacity - 8) or the ring is poisoned.
     */
    bool push(const void *payload, size_t len);

    /**
     * Consume the next frame into `out` (replaced, not appended).
     * Corrupt framing (bad length or CRC mismatch) poisons the ring:
     * every later pop also reports Corrupt and pushes are refused —
     * fail-stop, never deliver garbage.
     */
    PopStatus pop(std::vector<uint8_t> &out);

    /** Published-but-unread bytes (framing included). */
    size_t usedBytes() const;

    /** Bytes push() can currently accept (framing included). */
    size_t freeBytes() const;

    size_t capacity() const
    {
        return shared_ != nullptr
                   ? static_cast<size_t>(shared_->capacity)
                   : 0;
    }

    bool poisoned() const;

  private:
    RingShared *shared_ = nullptr;

    void copyIn(uint64_t at, const void *src, size_t len);
    void copyOut(uint64_t at, void *dst, size_t len) const;
};

} // namespace ipc
} // namespace specinfer

#endif // SPECINFER_IPC_RING_H
