/**
 * @file
 * Shared-memory segments for the serving daemon's IPC plane.
 *
 * A segment is a file-backed mmap: by default the backing files
 * live in /dev/shm (POSIX shared memory via the tmpfs mount, the
 * tt9024 trading-stack idiom), but any directory works — tests
 * point SPECINFER_IPC_DIR at a scratch dir so leak checks can
 * enumerate leftover segments with plain readdir and sandboxed
 * runs never touch the system shm namespace.
 *
 * Lifecycle contract: the *creator* sizes and zero-fills the
 * segment; attachers map it read-write but never resize. Unlinking
 * removes the name while live mappings stay valid (standard POSIX
 * semantics) — that is what lets the daemon reap a crashed client's
 * segment while the client, if it is merely hung, still holds a
 * valid mapping and can discover the revocation.
 */

#ifndef SPECINFER_IPC_SHM_H
#define SPECINFER_IPC_SHM_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace specinfer {
namespace ipc {

/** IPC directory: $SPECINFER_IPC_DIR, or /dev/shm/. */
std::string defaultIpcDir();

/**
 * One file-backed shared mapping. Movable, not copyable; the
 * mapping is released on destruction (the file persists until
 * unlinked).
 */
class ShmSegment
{
  public:
    ShmSegment() = default;
    ~ShmSegment();

    ShmSegment(ShmSegment &&other) noexcept;
    ShmSegment &operator=(ShmSegment &&other) noexcept;
    ShmSegment(const ShmSegment &) = delete;
    ShmSegment &operator=(const ShmSegment &) = delete;

    /**
     * Create (or truncate) the backing file at `path`, size it to
     * `bytes`, and map it zero-filled.
     * @return false on any OS error (path unwritable, no space).
     */
    bool create(const std::string &path, size_t bytes);

    /**
     * Map an existing segment read-write at its current size.
     * @return false when the file is missing, empty, or unmappable.
     */
    bool open(const std::string &path);

    /** Unmap (keeps the backing file). Safe to call twice. */
    void close();

    /** Remove the backing file; live mappings stay valid. */
    bool unlink();

    bool valid() const { return data_ != nullptr; }
    void *data() const { return data_; }
    size_t size() const { return size_; }
    const std::string &path() const { return path_; }

  private:
    void *data_ = nullptr;
    size_t size_ = 0;
    std::string path_;
};

/** Names (not paths) of directory entries starting with `prefix`,
 *  sorted for deterministic scan order. */
std::vector<std::string> listSegments(const std::string &dir,
                                      const std::string &prefix);

} // namespace ipc
} // namespace specinfer

#endif // SPECINFER_IPC_SHM_H
