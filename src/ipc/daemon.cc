#include "ipc/daemon.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <sstream>

#include "obs/obs.h"
#include "util/fault.h"
#include "util/logging.h"

namespace specinfer {
namespace ipc {

namespace {

/** Process-unique daemon epoch: pid in the high bits, a start
 *  counter in the low bits so in-process restarts (tests) still
 *  bump it. */
uint64_t
nextEpoch()
{
    static std::atomic<uint64_t> counter{0};
    const uint64_t pid = static_cast<uint64_t>(::getpid());
    return (pid << 16) |
           (counter.fetch_add(1, std::memory_order_relaxed) + 1);
}

WireReject
toWire(runtime::RejectReason reason)
{
    switch (reason) {
      case runtime::RejectReason::None:
        return WireReject::None;
      case runtime::RejectReason::QueueFull:
        return WireReject::QueueFull;
      case runtime::RejectReason::NeverFits:
        return WireReject::NeverFits;
      case runtime::RejectReason::InvalidPrompt:
        return WireReject::InvalidPrompt;
      case runtime::RejectReason::Overloaded:
        return WireReject::Overloaded;
    }
    return WireReject::None;
}

/** Health decays from Overloaded back to Healthy after this many
 *  shed-free ticks. */
constexpr uint64_t kOverloadStickyTicks = 16;

} // namespace

Daemon::Daemon(const core::SpecEngine *engine,
               runtime::ServingConfig serving, DaemonConfig cfg)
    : engine_(engine), serving_(serving), cfg_(std::move(cfg)),
      obs_(obs::resolveObs(cfg_.obs))
{
    if (cfg_.dir.empty())
        cfg_.dir = defaultIpcDir();
    serving_.obs = obs_;
}

Daemon::~Daemon()
{
    if (journalSyncFd_ >= 0)
        ::close(journalSyncFd_);
}

void
Daemon::preregisterMetrics()
{
    if (obs_ == nullptr)
        return;
    // Pin the catalog: obs_check asserts these names exist even on
    // runs where the corresponding event never fires.
    for (const char *name :
         {"ipc_frames_sent", "ipc_frames_received", "ipc_bytes_sent",
          "ipc_bytes_received", "ipc_ring_full_retries",
          "ipc_crc_rejects", "daemon_reaps",
          "daemon_requests_admitted", "daemon_requests_rejected",
          "daemon_cancels", "daemon_tokens_streamed",
          "watchdog_stalls", "watchdog_wedges"})
        obs_->metrics().counter(name)->inc(0);
    for (const char *name :
         {"daemon_ticks", "daemon_epoch", "daemon_clients_connected",
          "daemon_requests_inflight", "daemon_health",
          "watchdog_last_overrun_nanos"})
        obs_->metrics().gauge(name)->set(0);
}

bool
Daemon::start()
{
    epoch_ = nextEpoch();
    manager_ = std::make_unique<runtime::RequestManager>(engine_,
                                                         serving_);
    preregisterMetrics();

    // --- Crash recovery: snapshot + journal tail ------------------
    if (!cfg_.journalPath.empty()) {
        std::ifstream in(cfg_.journalPath, std::ios::binary);
        if (in.good()) {
            std::stringstream journal_in;
            journal_in << in.rdbuf();
            std::ifstream snap_in(cfg_.journalPath + ".snap",
                                  std::ios::binary);
            manager_->recover(snap_in.good() ? &snap_in : nullptr,
                              &journal_in);
        }
        // Fresh journal epoch: snapshot the recovered (or empty)
        // state, truncate, and append from zero.
        journalOut_.open(cfg_.journalPath,
                         std::ios::binary | std::ios::trunc);
        if (!journalOut_.good())
            return false;
        journal_ =
            std::make_unique<runtime::JournalWriter>(journalOut_);
        if (serving_.journalFsync) {
            // Second descriptor on the same file: appends flush the
            // stream per record, so fdatasync here makes every
            // committed frame power-loss durable (DESIGN.md §5d).
            journalSyncFd_ =
                ::open(cfg_.journalPath.c_str(), O_WRONLY);
            if (journalSyncFd_ >= 0)
                journal_->setSyncFd(journalSyncFd_);
        }
        manager_->attachJournal(journal_.get());
        snapshot();
    }

    // --- Recording: truncate to the valid prefix and continue -----
    if (!cfg_.recordPath.empty()) {
        std::string prefix;
        std::set<uint64_t> recordedFinishes;
        {
            std::ifstream in(cfg_.recordPath, std::ios::binary);
            if (in.good()) {
                std::stringstream buf;
                buf << in.rdbuf();
                prefix = buf.str();
                buf.seekg(0);
                RecordReader reader(buf);
                RecordedEvent ev;
                while (reader.next(ev))
                    if (ev.type == EventType::Finish)
                        recordedFinishes.insert(ev.id);
                prefix.resize(
                    static_cast<size_t>(reader.bytesConsumed()));
            }
        }
        recordOut_.open(cfg_.recordPath,
                        std::ios::binary | std::ios::trunc);
        if (!recordOut_.good())
            return false;
        recordOut_.write(prefix.data(),
                         static_cast<std::streamsize>(prefix.size()));
        recorder_ = std::make_unique<RecordWriter>(recordOut_);
        RecordedEvent header = cfg_.recordHeader;
        header.type = EventType::Header;
        header.maxBatchSize = serving_.maxBatchSize;
        record(header);
        // Re-emit recovered in-flight submits under their original
        // ids: replay dedups by id, so these only matter when the
        // live Submit append was lost to the crash.
        for (const runtime::RequestManager::InflightInfo &info :
             manager_->inflight()) {
            RecordedEvent sub;
            sub.type = EventType::Submit;
            sub.iteration = manager_->stats().iterations;
            sub.id = info.id;
            sub.prompt = info.prompt;
            sub.maxNewTokens = info.maxNewTokens;
            sub.priority = static_cast<uint8_t>(info.priority);
            record(sub);
        }
        // Results retired during journal replay finished after the
        // crash: their Finish events were never recorded live.
        for (const runtime::RequestResult &res :
             manager_->finished()) {
            if (recordedFinishes.count(res.id) == 0) {
                RecordedEvent fin;
                fin.type = EventType::Finish;
                fin.iteration = manager_->stats().iterations;
                fin.id = res.id;
                fin.stopReason =
                    static_cast<uint8_t>(res.stopReason);
                fin.tokens = res.tokens;
                record(fin);
            }
        }
    }

    // Everything finished before this start was already streamed
    // (or belongs to a client that will Resume explicitly).
    for (const runtime::RequestResult &res : manager_->finished())
        streamed_.insert(res.id);

    // Live token streaming; never fires during the replay above.
    manager_->setStepObserver(
        [this](uint64_t id, size_t start,
               const std::vector<int> &tokens) {
            Conn *conn = ownerOf(id);
            if (conn == nullptr)
                return;
            Message msg;
            msg.type = MsgType::Tokens;
            msg.id = id;
            msg.start = start;
            msg.tokens = tokens;
            conn->outbox.push_back(std::move(msg));
            if (obs_ != nullptr)
                obs_->metrics()
                    .counter("daemon_tokens_streamed")
                    ->inc(tokens.size());
        });

    // Watchdog over the scheduling iteration, on the daemon's obs
    // clock (tests inject a ManualClock via DaemonConfig::obs).
    watchdog_ = std::make_unique<util::Watchdog>(
        cfg_.watchdogBudgetNanos,
        [this]() { return obs_ != nullptr ? obs_->nowNanos() : 0; });
    iterationsAtStart_ = manager_->stats().iterations;

    if (!board_.create(cfg_.dir, epoch_))
        return false;
    started_ = true;
    return true;
}

uint64_t
Daemon::stallCount() const
{
    return watchdog_ ? watchdog_->stallCount() : 0;
}

Daemon::Conn *
Daemon::ownerOf(uint64_t id)
{
    auto it = owner_.find(id);
    return it == owner_.end() ? nullptr : it->second;
}

void
Daemon::scanForClients()
{
    for (const std::string &name :
         listSegments(cfg_.dir, kClientPrefix)) {
        bool known = false;
        for (const auto &conn : conns_)
            if (conn->name == name) {
                known = true;
                break;
            }
        if (known)
            continue;
        auto conn = std::make_unique<Conn>();
        if (!conn->channel.attach(cfg_.dir + "/" + name))
            continue; // not ready yet; next scan retries
        conn->name = name;
        conn->lastSeen = tick_; // fresh lease grace
        conn->pid = conn->channel.header()->clientPid;
        conns_.push_back(std::move(conn));
    }
}

void
Daemon::handleMessage(Conn &conn, const Message &msg)
{
    switch (msg.type) {
      case MsgType::Hello: {
        conn.pid = msg.epoch; // Hello carries the client pid here
        Message ack;
        ack.type = MsgType::HelloAck;
        ack.epoch = epoch_;
        ack.leaseTicks = cfg_.leaseTicks;
        conn.outbox.push_back(std::move(ack));
        break;
      }

      case MsgType::Heartbeat:
        break; // lastSeen already refreshed by the pump

      case MsgType::Submit: {
        Message reply;
        reply.tag = msg.tag;
        if (!accepting_) {
            reply.type = MsgType::Reject;
            reply.reject = WireReject::Draining;
            if (obs_ != nullptr)
                obs_->metrics()
                    .counter("daemon_requests_rejected")
                    ->inc();
        } else {
            // Unknown class bytes from a newer/hostile client map
            // to Standard instead of poisoning an array index.
            const runtime::Priority cls =
                msg.priority < runtime::kPriorityCount
                    ? static_cast<runtime::Priority>(msg.priority)
                    : runtime::Priority::Standard;
            runtime::SubmitResult res = manager_->submit(
                msg.tokens,
                static_cast<size_t>(msg.maxNewTokens), 0, cls);
            if (res.accepted()) {
                owner_[res.id] = &conn;
                reply.type = MsgType::SubmitAck;
                reply.id = res.id;
                RecordedEvent sub;
                sub.type = EventType::Submit;
                sub.iteration = manager_->stats().iterations;
                sub.id = res.id;
                sub.prompt = msg.tokens;
                sub.maxNewTokens = msg.maxNewTokens;
                sub.priority = static_cast<uint8_t>(cls);
                record(sub);
                if (obs_ != nullptr)
                    obs_->metrics()
                        .counter("daemon_requests_admitted")
                        ->inc();
            } else {
                reply.type = MsgType::Reject;
                reply.reject = toWire(res.reject);
                if (res.reject ==
                    runtime::RejectReason::Overloaded) {
                    reply.retryAfterPolls =
                        res.retryAfterIterations;
                    lastOverloadTick_ = tick_;
                }
                if (obs_ != nullptr)
                    obs_->metrics()
                        .counter("daemon_requests_rejected")
                        ->inc();
            }
        }
        conn.outbox.push_back(std::move(reply));
        break;
      }

      case MsgType::Cancel:
        if (manager_->cancel(msg.id)) {
            RecordedEvent ev;
            ev.type = EventType::Cancel;
            ev.iteration = manager_->stats().iterations;
            ev.id = msg.id;
            record(ev);
            if (obs_ != nullptr)
                obs_->metrics().counter("daemon_cancels")->inc();
        }
        break;

      case MsgType::Resume: {
        // Re-bind the stream and close the client's token gap
        // idempotently: resend [have, sofar) and, for finished
        // requests, the terminal frame.
        owner_[msg.id] = &conn;
        const std::vector<int> sofar =
            manager_->generatedSoFar(msg.id);
        if (sofar.size() > msg.start) {
            Message gap;
            gap.type = MsgType::Tokens;
            gap.id = msg.id;
            gap.start = msg.start;
            gap.tokens.assign(
                sofar.begin() +
                    static_cast<ptrdiff_t>(msg.start),
                sofar.end());
            conn.outbox.push_back(std::move(gap));
        }
        const runtime::RequestManager::RequestPhase phase =
            manager_->phase(msg.id);
        if (phase ==
            runtime::RequestManager::RequestPhase::Finished) {
            for (const runtime::RequestResult &res :
                 manager_->finished()) {
                if (res.id != msg.id)
                    continue;
                Message fin;
                fin.type = MsgType::Finished;
                fin.id = msg.id;
                fin.start = res.tokens.size();
                fin.stopReason =
                    static_cast<uint8_t>(res.stopReason);
                conn.outbox.push_back(std::move(fin));
                break;
            }
        } else if (phase ==
                   runtime::RequestManager::RequestPhase::Unknown) {
            // Nothing survives for this id (journal disabled or the
            // result was dropped with the crash): terminal frame so
            // the client fails the request instead of hanging.
            Message fin;
            fin.type = MsgType::Finished;
            fin.id = msg.id;
            fin.start = msg.start;
            fin.stopReason = static_cast<uint8_t>(
                core::SpecSession::StopReason::Cancelled);
            conn.outbox.push_back(std::move(fin));
        }
        break;
      }

      case MsgType::Goodbye:
        conn.state = Conn::State::Bye;
        break;

      default:
        break; // daemon→client frame echoed back; ignore
    }
}

void
Daemon::pumpConn(Conn &conn)
{
    // Bounded drain keeps one chatty client from starving the tick.
    for (int i = 0; i < 256; ++i) {
        Message msg;
        switch (
            ipcRecv(conn.channel.requestRing(), &msg, obs_)) {
          case RecvStatus::Empty:
            return;
          case RecvStatus::Corrupt:
            conn.state = Conn::State::Corrupt;
            return;
          case RecvStatus::Ok:
            conn.lastSeen = tick_;
            handleMessage(conn, msg);
            break;
        }
    }
}

void
Daemon::reapConn(size_t index, const char *why)
{
    Conn &conn = *conns_[index];
    // Cancel everything this client still has in flight, then
    // detach the ids; results land in finished() and are recorded,
    // so a reconnecting client can still Resume them.
    std::vector<uint64_t> owned;
    for (const auto &entry : owner_)
        if (entry.second == &conn)
            owned.push_back(entry.first);
    for (uint64_t id : owned) {
        const runtime::RequestManager::RequestPhase phase =
            manager_->phase(id);
        if (phase ==
                runtime::RequestManager::RequestPhase::Pending ||
            phase ==
                runtime::RequestManager::RequestPhase::Active) {
            if (manager_->cancel(id)) {
                RecordedEvent ev;
                ev.type = EventType::Cancel;
                ev.iteration = manager_->stats().iterations;
                ev.id = id;
                record(ev);
            }
        }
        owner_.erase(id);
    }
    if (conn.state != Conn::State::Bye) {
        // Best-effort revocation: the unlinked mapping stays valid
        // on the client side (POSIX), so a merely-hung client can
        // still read this and reconnect.
        Message revoked;
        revoked.type = MsgType::Revoked;
        revoked.epoch = epoch_;
        (void)ipcSend(conn.channel.responseRing(), revoked, obs_);
        ++reaps_;
        if (obs_ != nullptr)
            obs_->metrics().counter("daemon_reaps")->inc();
    }
    (void)why;
    conn.channel.unlink();
    conn.channel.close();
    conns_.erase(conns_.begin() + static_cast<ptrdiff_t>(index));
}

void
Daemon::reapExpired()
{
    for (size_t i = 0; i < conns_.size();) {
        Conn &conn = *conns_[i];
        if (conn.state == Conn::State::Bye) {
            reapConn(i, "goodbye");
            continue;
        }
        if (conn.state == Conn::State::Corrupt) {
            reapConn(i, "corrupt");
            continue;
        }
        if (tick_ - conn.lastSeen > cfg_.leaseTicks) {
            reapConn(i, "lease-expired");
            continue;
        }
        // Injected spurious reap of a live client: the client must
        // survive by reconnecting (Revoked frame tells it why).
        if (util::faultAt(util::FaultPoint::ClientReap)) {
            reapConn(i, "injected");
            continue;
        }
        ++i;
    }
}

void
Daemon::streamFinished()
{
    for (const runtime::RequestResult &res : manager_->finished()) {
        if (!streamed_.insert(res.id).second)
            continue;
        RecordedEvent fin;
        fin.type = EventType::Finish;
        fin.iteration = manager_->stats().iterations;
        fin.id = res.id;
        fin.stopReason = static_cast<uint8_t>(res.stopReason);
        fin.tokens = res.tokens;
        record(fin);
        Conn *conn = ownerOf(res.id);
        if (conn != nullptr) {
            Message msg;
            msg.type = MsgType::Finished;
            msg.id = res.id;
            msg.start = res.tokens.size();
            msg.stopReason = static_cast<uint8_t>(res.stopReason);
            conn->outbox.push_back(std::move(msg));
        }
    }
}

void
Daemon::flushOutboxes()
{
    for (const auto &conn : conns_) {
        while (!conn->outbox.empty()) {
            if (!ipcSend(conn->channel.responseRing(),
                         conn->outbox.front(), obs_))
                break; // backpressure/injected: retry next tick
            conn->outbox.pop_front();
        }
    }
}

void
Daemon::runGuardedIteration()
{
    // Wedge: the iteration never returns. In-process we model the
    // never-returns by freezing the daemon — every later tick()
    // no-ops and the board heartbeat stops advancing, which is
    // exactly the signal the external supervisor kills on. Recovery
    // then replays the journal like any other crash.
    if (util::faultAt(util::FaultPoint::Wedge)) {
        wedged_ = true;
        SPECINFER_WARN("daemon: wedge fault injected; heartbeat "
                       "frozen (supervisor will kill)");
        if (obs_ != nullptr)
            obs_->metrics().counter("watchdog_wedges")->inc();
        return;
    }
    watchdog_->arm();
    // Hang: the iteration eventually returns, but far past its
    // budget. Simulated by burning the watchdog window before the
    // real work — under a SteadyClock this spins for the budget,
    // under an auto-stepping ManualClock it is instant and exact.
    if (watchdog_->armed() &&
        util::faultAt(util::FaultPoint::Hang)) {
        while (!watchdog_->expired()) {
        }
    }
    manager_->runIteration();
    if (watchdog_->disarm()) {
        // Stall: publish degraded health (via publishHealth seeing
        // the disabled ladder) and drop to incremental decoding —
        // slower, never wrong, and each iteration stays short
        // enough to keep servicing the rings.
        manager_->forceDegrade(cfg_.stallDegradeIterations);
        SPECINFER_WARN("daemon: iteration stalled "
                       << watchdog_->lastOverrunNanos()
                       << "ns past its "
                       << watchdog_->budgetNanos()
                       << "ns budget; speculation disabled for "
                       << cfg_.stallDegradeIterations
                       << " iterations");
        if (obs_ != nullptr) {
            obs_->metrics().counter("watchdog_stalls")->inc();
            obs_->metrics()
                .gauge("watchdog_last_overrun_nanos")
                ->set(static_cast<int64_t>(
                    watchdog_->lastOverrunNanos()));
        }
    }
}

void
Daemon::publishHealth()
{
    BoardHealth next = BoardHealth::Healthy;
    if (!accepting_)
        next = BoardHealth::Draining;
    else if (manager_->degradation().speculationDisabled)
        next = BoardHealth::Degraded;
    else if (lastOverloadTick_ != 0 &&
             tick_ - lastOverloadTick_ < kOverloadStickyTicks)
        next = BoardHealth::Overloaded;
    health_ = next;
    if (board_.valid())
        board_.shared()->health.store(
            static_cast<uint32_t>(next),
            std::memory_order_release);
    if (obs_ != nullptr)
        obs_->metrics().gauge("daemon_health")->set(
            static_cast<int64_t>(next));
}

void
Daemon::publishGauges()
{
    if (obs_ == nullptr)
        return;
    obs_->metrics().gauge("daemon_ticks")->set(
        static_cast<int64_t>(tick_));
    obs_->metrics().gauge("daemon_epoch")->set(
        static_cast<int64_t>(epoch_));
    obs_->metrics().gauge("daemon_clients_connected")
        ->set(static_cast<int64_t>(conns_.size()));
    obs_->metrics().gauge("daemon_requests_inflight")
        ->set(static_cast<int64_t>(manager_->pendingCount() +
                                   manager_->activeCount()));
}

void
Daemon::record(const RecordedEvent &event)
{
    if (!recorder_)
        return;
    recorder_->append(event);
    // Flush per event: the recording is the incident log, and a
    // buffered Submit lost to a crash costs replay its only copy of
    // that prompt.
    recordOut_.flush();
}

void
Daemon::snapshot()
{
    if (!journal_)
        return;
    std::ofstream snap(cfg_.journalPath + ".snap",
                       std::ios::binary | std::ios::trunc);
    manager_->writeSnapshot(snap);
    journalOut_.flush();
    journal_->sync(); // no-op unless journalFsync armed a fd
    lastSnapshotIteration_ = manager_->stats().iterations;
}

void
Daemon::tick()
{
    if (!started_ || wedged_)
        return;
    ++tick_;
    board_.shared()->heartbeat.fetch_add(1,
                                         std::memory_order_release);
    if (tick_ == 1 || cfg_.scanEvery == 0 ||
        tick_ % cfg_.scanEvery == 0)
        scanForClients();
    for (const auto &conn : conns_)
        pumpConn(*conn);
    reapExpired();
    if (manager_->busy())
        runGuardedIteration();
    if (wedged_)
        return; // frozen mid-tick: no streaming, no heartbeat
    // Crash-after: simulate an abrupt death (kill -9 semantics) for
    // supervisor smokes. Journal/recording streams flush per append,
    // so _Exit loses at most the torn tail both are built to absorb.
    if (cfg_.crashAfterIterations > 0 &&
        manager_->stats().iterations - iterationsAtStart_ >=
            cfg_.crashAfterIterations) {
        SPECINFER_WARN("daemon: --crash-after "
                       << cfg_.crashAfterIterations
                       << " iterations reached; simulating crash");
        std::_Exit(134);
    }
    streamFinished();
    flushOutboxes();
    if (journal_ && manager_->stats().iterations >=
                        lastSnapshotIteration_ + cfg_.snapshotEvery)
        snapshot();
    publishHealth();
    publishGauges();
}

void
Daemon::drain()
{
    if (!started_)
        return;
    accepting_ = false;
    board_.shared()->accepting.store(0, std::memory_order_release);
    board_.shared()->draining.store(1, std::memory_order_release);
    publishHealth();
    // Finish and stream every in-flight request; new submits come
    // back Rejected(Draining) via the normal tick path.
    while (manager_->busy())
        tick();
    // A few extra ticks to push out what backpressure held back.
    for (int i = 0; i < 64; ++i) {
        bool idle = true;
        for (const auto &conn : conns_)
            if (!conn->outbox.empty())
                idle = false;
        if (idle)
            break;
        tick();
    }
    for (const auto &conn : conns_) {
        Message bye;
        bye.type = MsgType::Goodbye;
        (void)ipcSend(conn->channel.responseRing(), bye, obs_);
        conn->channel.unlink();
        conn->channel.close();
    }
    conns_.clear();
    owner_.clear();
    snapshot();
    board_.unlink();
    started_ = false;
}

} // namespace ipc
} // namespace specinfer
