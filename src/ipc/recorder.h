/**
 * @file
 * Binary record/replay of the daemon's live request stream.
 *
 * Every inbound request the daemon admits — plus every cancel it
 * honors and every result it streams back — is appended to a
 * replayable log, so any live incident can be re-driven offline
 * (`diffcheck --replay`) and checked for token-identical
 * reproduction without the clients, the shared-memory plane, or
 * the original process being alive.
 *
 * Framing is the journal's CRC scheme (u32 len | u32 crc |
 * payload): the reader is truncation-tolerant, so a daemon crash
 * mid-append costs at most the torn tail record. A restarting
 * daemon reads the file, truncates to the valid prefix, re-emits
 * Submit events for the requests its recovered manager still
 * carries (ids repeat; replay dedups by id), and appends onward —
 * one file records the stream across daemon generations.
 *
 * The replay oracle (replay.h) compares per-request token streams:
 * exact equality for normally finished requests, prefix consistency
 * for aborted ones (a cancel or deadline truncates at a timing-
 * dependent point; the content up to the cut must still match).
 */

#ifndef SPECINFER_IPC_RECORDER_H
#define SPECINFER_IPC_RECORDER_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace specinfer {
namespace ipc {

/** Recorded event kinds. */
enum class EventType : uint8_t
{
    /** Engine/serving identity — enough to rebuild the exact
     *  engine offline. First record of every file. */
    Header = 1,
    /** A request was admitted (manager id assigned). */
    Submit = 2,
    /** A client cancel was honored. */
    Cancel = 3,
    /** A result was streamed back (full token list + stop reason). */
    Finish = 4,
};

const char *eventTypeName(EventType type);

/** One recorded event; `type` selects the live fields. */
struct RecordedEvent
{
    EventType type = EventType::Submit;

    // --- Header ---------------------------------------------------
    std::string llm;
    uint64_t ssmLayers = 0;
    std::string expansion; ///< "k1,k2,..." textual form
    uint64_t seed = 0;
    uint64_t engineMaxNewTokens = 0;
    double temperature = 0.0;
    uint64_t maxBatchSize = 0;
    /** Raw model::Precision of the daemon's SSM; replay rebuilds
     *  the draft model at the recorded precision. */
    uint8_t ssmPrecision = 0;
    /** Tensor-parallel degree the daemon served at; replay rebuilds
     *  the models at the recorded degree so the replayed process
     *  has the recorded one's exact execution shape. */
    uint8_t tpDegree = 1;

    // --- Submit / Cancel / Finish --------------------------------
    /** Manager iteration clock when the event was applied. */
    uint64_t iteration = 0;
    uint64_t id = 0;
    std::vector<int> prompt;     ///< Submit
    uint64_t maxNewTokens = 0;   ///< Submit (per-request budget)
    uint8_t priority = 1;        ///< Submit (runtime::Priority)
    uint8_t stopReason = 0;      ///< Finish
    std::vector<int> tokens;     ///< Finish (streamed tokens)
};

/** Appends CRC-framed events. Single-threaded (daemon loop). */
class RecordWriter
{
  public:
    explicit RecordWriter(std::ostream &out);

    void append(const RecordedEvent &event);

    uint64_t bytesWritten() const { return bytes_; }

  private:
    std::ostream *out_;
    uint64_t bytes_ = 0;
};

/** Truncation-tolerant event reader (journal semantics). */
class RecordReader
{
  public:
    explicit RecordReader(std::istream &in);

    /** @return false at clean EOF or the first damaged frame. */
    bool next(RecordedEvent &event);

    bool tornTail() const { return tornTail_; }
    uint64_t bytesConsumed() const { return bytes_; }

  private:
    std::istream *in_;
    uint64_t bytes_ = 0;
    bool tornTail_ = false;
    bool done_ = false;
};

} // namespace ipc
} // namespace specinfer

#endif // SPECINFER_IPC_RECORDER_H
