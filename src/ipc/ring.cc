#include "ipc/ring.h"

#include <algorithm>
#include <cstring>

#include "runtime/journal.h" // crc32

namespace specinfer {
namespace ipc {

namespace {

constexpr uint64_t kRingMagic = 0x5350454352494e47ULL; // "SPECRING"
constexpr size_t kFrameHeader = 8; // u32 len + u32 crc

inline size_t
align8(size_t n)
{
    return (n + 7) & ~size_t{7};
}

inline bool
isPow2(size_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

} // namespace

size_t
ShmRing::footprint(size_t capacity)
{
    // RingShared already counts one data byte; keep the layout
    // simple and just add the full capacity after the header.
    return sizeof(RingShared) + capacity;
}

bool
ShmRing::attach(void *mem, size_t capacity, bool init)
{
    if (mem == nullptr || !isPow2(capacity))
        return false;
    RingShared *s = static_cast<RingShared *>(mem);
    if (init) {
        s->capacity = capacity;
        s->head.store(0, std::memory_order_relaxed);
        s->tail.store(0, std::memory_order_relaxed);
        s->poisoned.store(0, std::memory_order_relaxed);
        // Publish the formatted ring: attachers spin on the magic.
        std::atomic_thread_fence(std::memory_order_release);
        s->magic = kRingMagic;
    } else {
        if (s->magic != kRingMagic || s->capacity != capacity)
            return false;
    }
    shared_ = s;
    return true;
}

void
ShmRing::copyIn(uint64_t at, const void *src, size_t len)
{
    const uint64_t mask = shared_->capacity - 1;
    const size_t off = static_cast<size_t>(at & mask);
    const size_t first =
        std::min(len, static_cast<size_t>(shared_->capacity) - off);
    std::memcpy(shared_->data + off, src, first);
    if (first < len)
        std::memcpy(shared_->data,
                    static_cast<const uint8_t *>(src) + first,
                    len - first);
}

void
ShmRing::copyOut(uint64_t at, void *dst, size_t len) const
{
    const uint64_t mask = shared_->capacity - 1;
    const size_t off = static_cast<size_t>(at & mask);
    const size_t first =
        std::min(len, static_cast<size_t>(shared_->capacity) - off);
    std::memcpy(dst, shared_->data + off, first);
    if (first < len)
        std::memcpy(static_cast<uint8_t *>(dst) + first,
                    shared_->data, len - first);
}

bool
ShmRing::push(const void *payload, size_t len)
{
    if (shared_ == nullptr ||
        shared_->poisoned.load(std::memory_order_relaxed) != 0)
        return false;
    const size_t need = align8(kFrameHeader + len);
    if (need > shared_->capacity)
        return false; // can never fit
    const uint64_t head = shared_->head.load(std::memory_order_relaxed);
    const uint64_t tail = shared_->tail.load(std::memory_order_acquire);
    if (need > shared_->capacity - (head - tail))
        return false; // backpressure: consumer must drain first
    const uint32_t len32 = static_cast<uint32_t>(len);
    const uint32_t crc = runtime::crc32(payload, len);
    copyIn(head, &len32, sizeof(len32));
    copyIn(head + 4, &crc, sizeof(crc));
    copyIn(head + kFrameHeader, payload, len);
    // Release-publish: the consumer's acquire load of head makes
    // every byte above visible before the frame becomes poppable.
    shared_->head.store(head + need, std::memory_order_release);
    return true;
}

PopStatus
ShmRing::pop(std::vector<uint8_t> &out)
{
    if (shared_ == nullptr)
        return PopStatus::Empty;
    if (shared_->poisoned.load(std::memory_order_relaxed) != 0)
        return PopStatus::Corrupt;
    const uint64_t tail = shared_->tail.load(std::memory_order_relaxed);
    const uint64_t head = shared_->head.load(std::memory_order_acquire);
    if (head == tail)
        return PopStatus::Empty;
    uint32_t len32 = 0, crc = 0;
    copyOut(tail, &len32, sizeof(len32));
    copyOut(tail + 4, &crc, sizeof(crc));
    const size_t need = align8(kFrameHeader + len32);
    if (need > shared_->capacity || need > head - tail) {
        // Framing lies about the published extent: a torn or
        // malicious write. Fail-stop.
        shared_->poisoned.store(1, std::memory_order_relaxed);
        return PopStatus::Corrupt;
    }
    out.resize(len32);
    copyOut(tail + kFrameHeader, out.data(), len32);
    if (runtime::crc32(out.data(), out.size()) != crc) {
        shared_->poisoned.store(1, std::memory_order_relaxed);
        return PopStatus::Corrupt;
    }
    shared_->tail.store(tail + need, std::memory_order_release);
    return PopStatus::Ok;
}

size_t
ShmRing::usedBytes() const
{
    if (shared_ == nullptr)
        return 0;
    const uint64_t head = shared_->head.load(std::memory_order_acquire);
    const uint64_t tail = shared_->tail.load(std::memory_order_acquire);
    return static_cast<size_t>(head - tail);
}

size_t
ShmRing::freeBytes() const
{
    if (shared_ == nullptr)
        return 0;
    return static_cast<size_t>(shared_->capacity) - usedBytes();
}

bool
ShmRing::poisoned() const
{
    return shared_ != nullptr &&
           shared_->poisoned.load(std::memory_order_relaxed) != 0;
}

} // namespace ipc
} // namespace specinfer
