#include "ipc/client.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/obs.h"

namespace specinfer {
namespace ipc {

const char *
clientStatusName(ClientStatus status)
{
    switch (status) {
      case ClientStatus::Ok:              return "ok";
      case ClientStatus::Pending:         return "pending";
      case ClientStatus::Timeout:         return "timeout";
      case ClientStatus::DaemonGone:      return "daemon-gone";
      case ClientStatus::DaemonRestarted: return "daemon-restarted";
      case ClientStatus::Rejected:        return "rejected";
      case ClientStatus::LeaseRevoked:    return "lease-revoked";
      case ClientStatus::Corrupt:         return "corrupt";
      case ClientStatus::Disconnected:    return "disconnected";
    }
    return "unknown";
}

Client::Client(ClientConfig cfg)
    : cfg_(std::move(cfg)), obs_(obs::resolveObs(cfg_.obs)),
      jitterRng_(cfg_.jitterSeed)
{
    if (cfg_.dir.empty())
        cfg_.dir = defaultIpcDir();
}

Client::~Client() = default;

void
Client::backoffSleep(size_t failures)
{
    if (cfg_.backoffUnitMicros == 0)
        return;
    const size_t shift = std::min<size_t>(failures, 10);
    const uint64_t base = uint64_t{1} << shift;
    const uint64_t units =
        base + jitterRng_.uniformInt(base / 2 + 1);
    std::this_thread::sleep_for(std::chrono::microseconds(
        units * cfg_.backoffUnitMicros));
}

void
Client::queueHelloAndResumes()
{
    Message hello;
    hello.type = MsgType::Hello;
    hello.epoch = static_cast<uint64_t>(::getpid());
    outbox_.push_back(std::move(hello));
    for (auto &entry : requests_) {
        ClientRequest &req = entry.second;
        if (req.finished || req.reject != WireReject::None)
            continue;
        if (req.acked) {
            Message resume;
            resume.type = MsgType::Resume;
            resume.id = req.id;
            resume.start = req.tokens.size();
            outbox_.push_back(std::move(resume));
        } else {
            // Never acked: the daemon may or may not have admitted
            // it before dying. Re-submitting under the same tag is
            // the safe direction — worst case the old orphan also
            // completes (and is recorded), but the client never
            // loses a request it was promised.
            Message sub;
            sub.type = MsgType::Submit;
            sub.tag = req.tag;
            sub.maxNewTokens = req.maxNewTokens;
            sub.priority = static_cast<uint8_t>(req.priority);
            sub.tokens = req.prompt;
            outbox_.push_back(std::move(sub));
        }
    }
}

ClientStatus
Client::connect()
{
    outbox_.clear();
    connected_ = false;
    board_ = Board();
    channel_.close(); // drop any stale mapping; unlink is the
                      // daemon's (or disconnect's) job
    channelOpen_ = false;
    for (size_t attempt = 0; attempt < cfg_.connectAttempts;
         ++attempt) {
        if (board_.open(cfg_.dir))
            break;
        backoffSleep(attempt);
    }
    if (!board_.valid())
        return lastStatus_ = ClientStatus::DaemonGone;
    daemonEpoch_ =
        board_.shared()->epoch.load(std::memory_order_acquire);
    lastHeartbeat_ =
        board_.shared()->heartbeat.load(std::memory_order_acquire);
    stallPolls_ = 0;
    if (!channel_.create(cfg_.dir,
                         static_cast<uint64_t>(::getpid()),
                         cfg_.nonce, cfg_.ringBytes,
                         cfg_.ringBytes))
        return lastStatus_ = ClientStatus::Corrupt;
    channelOpen_ = true;
    quietPolls_ = 0;
    queueHelloAndResumes();
    return lastStatus_ = ClientStatus::Pending;
}

ClientStatus
Client::reconnect()
{
    channel_.unlink(); // harmless when the daemon already reaped it
    ++cfg_.nonce;      // fresh segment name, fresh rings
    return connect();
}

ClientRequest *
Client::byId(uint64_t id)
{
    auto tag = tagOfId_.find(id);
    if (tag == tagOfId_.end())
        return nullptr;
    auto req = requests_.find(tag->second);
    return req == requests_.end() ? nullptr : &req->second;
}

void
Client::handleMessage(const Message &msg, ClientStatus *status)
{
    switch (msg.type) {
      case MsgType::HelloAck:
        connected_ = true;
        daemonEpoch_ = msg.epoch;
        leaseTicks_ = msg.leaseTicks;
        break;

      case MsgType::SubmitAck: {
        auto it = requests_.find(msg.tag);
        if (it == requests_.end())
            break;
        it->second.id = msg.id;
        it->second.acked = true;
        tagOfId_[msg.id] = msg.tag;
        break;
      }

      case MsgType::Reject: {
        auto it = requests_.find(msg.tag);
        if (it == requests_.end())
            break;
        it->second.reject = msg.reject;
        if (msg.reject == WireReject::Overloaded) {
            it->second.retryAfterPolls = msg.retryAfterPolls;
            // Class-aware backoff: scale the daemon's advice by the
            // class weight so that when the bucket refills the most
            // urgent traffic retries first and Batch yields.
            static const uint64_t kClassWeight[runtime::
                                                   kPriorityCount] =
                {1, 2, 4};
            const uint64_t advised =
                msg.retryAfterPolls > 0 ? msg.retryAfterPolls : 1;
            overloadBackoffPolls_ =
                advised *
                kClassWeight[static_cast<size_t>(
                    it->second.priority)];
            if (cfg_.backoffUnitMicros > 0)
                backoffSleep(std::min<size_t>(
                    overloadBackoffPolls_, 10));
        }
        *status = ClientStatus::Rejected;
        break;
      }

      case MsgType::Tokens: {
        ClientRequest *req = byId(msg.id);
        if (req == nullptr)
            break;
        // Idempotent range write: a resumed daemon may resend a
        // range we already hold; same positions, same values.
        const size_t end =
            static_cast<size_t>(msg.start) + msg.tokens.size();
        if (req->tokens.size() < end)
            req->tokens.resize(end);
        std::copy(msg.tokens.begin(), msg.tokens.end(),
                  req->tokens.begin() +
                      static_cast<ptrdiff_t>(msg.start));
        if (req->finishSeen &&
            req->tokens.size() >= req->expectTotal)
            req->finished = true;
        break;
      }

      case MsgType::Finished: {
        ClientRequest *req = byId(msg.id);
        if (req == nullptr)
            break;
        req->finishSeen = true;
        req->expectTotal = msg.start;
        req->stopReason = msg.stopReason;
        if (req->tokens.size() >= req->expectTotal) {
            req->finished = true;
        } else {
            // Terminal frame outran some Tokens frames (daemon
            // restart window): fetch the gap explicitly.
            Message resume;
            resume.type = MsgType::Resume;
            resume.id = msg.id;
            resume.start = req->tokens.size();
            outbox_.push_back(std::move(resume));
        }
        break;
      }

      case MsgType::Revoked:
        connected_ = false;
        *status = ClientStatus::LeaseRevoked;
        break;

      case MsgType::Goodbye:
        connected_ = false;
        *status = ClientStatus::Disconnected;
        break;

      default:
        break; // client→daemon frame echoed back; ignore
    }
}

ClientStatus
Client::poll()
{
    if (!channelOpen_)
        return lastStatus_;
    ++polls_;
    ClientStatus status = ClientStatus::Ok;

    if (board_.valid()) {
        const uint64_t hb = board_.shared()->heartbeat.load(
            std::memory_order_acquire);
        if (hb != lastHeartbeat_) {
            lastHeartbeat_ = hb;
            stallPolls_ = 0;
        } else if (++stallPolls_ > cfg_.stallPollLimit) {
            // Fail fast: nothing is ticking on the other side.
            connected_ = false;
            return lastStatus_ = ClientStatus::DaemonGone;
        }
        const uint64_t ep = board_.shared()->epoch.load(
            std::memory_order_acquire);
        if (ep != daemonEpoch_) {
            // Daemon restarted under us: the channel segment
            // survives (the new daemon re-attaches it), so just
            // re-Hello and resume every stream.
            daemonEpoch_ = ep;
            connected_ = false;
            outbox_.clear();
            queueHelloAndResumes();
            status = ClientStatus::DaemonRestarted;
        }
    }

    if (connected_ && cfg_.heartbeatEveryPolls != 0 &&
        polls_ % cfg_.heartbeatEveryPolls == 0) {
        Message hb;
        hb.type = MsgType::Heartbeat;
        // Occasional loss is fine; the lease is many ticks wide.
        (void)ipcSend(channel_.requestRing(), hb, obs_);
    }

    while (!outbox_.empty()) {
        if (ipcSend(channel_.requestRing(), outbox_.front(),
                    obs_)) {
            outbox_.pop_front();
            sendFailures_ = 0;
        } else {
            backoffSleep(++sendFailures_);
            break; // retry on the next poll
        }
    }

    size_t received = 0;
    for (;;) {
        Message msg;
        const RecvStatus rs =
            ipcRecv(channel_.responseRing(), &msg, obs_);
        if (rs == RecvStatus::Empty)
            break;
        if (rs == RecvStatus::Corrupt) {
            connected_ = false;
            return lastStatus_ = ClientStatus::Corrupt;
        }
        ++received;
        handleMessage(msg, &status);
        if (status == ClientStatus::LeaseRevoked ||
            status == ClientStatus::Disconnected)
            break;
    }

    // The daemon's Revoked frame is best-effort: a reap whose
    // notification is lost (crash, injected ipc-send fault) leaves
    // us heartbeating into a ring nobody drains. A live daemon that
    // stays silent for this long while we have work in flight means
    // the channel is orphaned — presume the lease gone so the caller
    // reconnects (idempotent even when the suspicion is wrong).
    if (received > 0 || !connected_ || inflightCount() == 0) {
        quietPolls_ = 0;
    } else if (cfg_.quietPollLimit != 0 &&
               ++quietPolls_ > cfg_.quietPollLimit) {
        quietPolls_ = 0;
        connected_ = false;
        return lastStatus_ = ClientStatus::LeaseRevoked;
    }
    return lastStatus_ = status;
}

ClientStatus
Client::waitConnected(size_t max_polls)
{
    for (size_t i = 0; i < max_polls; ++i) {
        const ClientStatus status = poll();
        if (connected_)
            return ClientStatus::Ok;
        if (status == ClientStatus::DaemonGone ||
            status == ClientStatus::Corrupt)
            return status;
        backoffSleep(i);
    }
    return lastStatus_ = ClientStatus::Timeout;
}

uint64_t
Client::submit(const std::vector<int> &prompt,
               size_t max_new_tokens, runtime::Priority priority)
{
    const uint64_t tag = nextTag_++;
    ClientRequest req;
    req.tag = tag;
    req.prompt = prompt;
    req.maxNewTokens = max_new_tokens;
    req.priority = priority;
    requests_[tag] = std::move(req);
    Message msg;
    msg.type = MsgType::Submit;
    msg.tag = tag;
    msg.maxNewTokens = max_new_tokens;
    msg.priority = static_cast<uint8_t>(priority);
    msg.tokens = prompt;
    outbox_.push_back(std::move(msg));
    return tag;
}

BoardHealth
Client::boardHealth() const
{
    if (!board_.valid())
        return BoardHealth::Healthy;
    return static_cast<BoardHealth>(
        board_.shared()->health.load(std::memory_order_acquire));
}

bool
Client::cancel(uint64_t tag)
{
    auto it = requests_.find(tag);
    if (it == requests_.end() || !it->second.acked)
        return false;
    Message msg;
    msg.type = MsgType::Cancel;
    msg.id = it->second.id;
    outbox_.push_back(std::move(msg));
    return true;
}

const ClientRequest *
Client::request(uint64_t tag) const
{
    auto it = requests_.find(tag);
    return it == requests_.end() ? nullptr : &it->second;
}

bool
Client::done(uint64_t tag) const
{
    const ClientRequest *req = request(tag);
    return req != nullptr &&
           (req->finished || req->reject != WireReject::None);
}

size_t
Client::inflightCount() const
{
    size_t n = 0;
    for (const auto &entry : requests_)
        if (!entry.second.finished &&
            entry.second.reject == WireReject::None)
            ++n;
    return n;
}

void
Client::disconnect()
{
    if (channelOpen_) {
        Message bye;
        bye.type = MsgType::Goodbye;
        (void)ipcSend(channel_.requestRing(), bye, obs_);
        channel_.unlink();
        channel_.close();
    }
    channelOpen_ = false;
    connected_ = false;
    lastStatus_ = ClientStatus::Disconnected;
}

void
Client::abandon()
{
    // kill -9 semantics: mapping dropped, segment left behind, no
    // goodbye. The daemon's lease reaper owns the cleanup.
    channel_.close();
    channelOpen_ = false;
    connected_ = false;
}

} // namespace ipc
} // namespace specinfer
