/**
 * @file
 * specinferd core: the daemon side of the shared-memory serving
 * plane, factored out of the binary so in-process tests can drive
 * daemon and clients cooperatively (tick-by-tick, deterministic,
 * sanitizer-friendly) while tools/specinferd.cc just wraps a signal
 * loop around it.
 *
 * One Daemon owns one engine-backed RequestManager (journal +
 * snapshot + metrics wiring included) and serves N client channels:
 *
 *  - tick(): bump the board heartbeat, scan the IPC directory for
 *    new client channels, drain every request ring (Hello /
 *    Heartbeat / Submit / Cancel / Resume / Goodbye), reap expired
 *    leases, run one scheduling iteration when work is pending,
 *    stream fresh tokens + finishes, and flush per-client outboxes.
 *
 *  - Leases are measured in daemon ticks: a client that misses
 *    `leaseTicks` consecutive ticks — crashed, hung, or kill -9'd —
 *    is reaped deterministically: its in-flight requests are
 *    cancelled through RequestManager::cancel, a best-effort
 *    Revoked frame is left in its response ring (valid even after
 *    unlink, POSIX mapping semantics), and its segment is unlinked.
 *    The `client-reap` fault point injects spurious reaps of live
 *    clients, which must survive by reconnecting.
 *
 *  - Crash isolation: destroying a Daemon without drain() is the
 *    crash model — segments and persistence files are left behind,
 *    exactly like kill -9. A new Daemon over the same paths
 *    recovers the manager from snapshot + journal tail, re-attaches
 *    surviving channels, truncates the recording to its valid
 *    prefix and re-emits in-flight submits — clients notice the
 *    epoch bump and resume their token streams idempotently.
 */

#ifndef SPECINFER_IPC_DAEMON_H
#define SPECINFER_IPC_DAEMON_H

#include <cstdint>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ipc/channel.h"
#include "ipc/recorder.h"
#include "ipc/wire.h"
#include "runtime/request_manager.h"
#include "util/watchdog.h"

namespace specinfer {
namespace ipc {

/** Daemon configuration. */
struct DaemonConfig
{
    /** IPC directory; empty = defaultIpcDir(). */
    std::string dir;

    /** Lease length: a client missing this many consecutive ticks
     *  without a frame or heartbeat is reaped. */
    uint64_t leaseTicks = 64;

    /** Directory-scan cadence (every N ticks). */
    uint64_t scanEvery = 4;

    /** Write-ahead journal path (empty = no crash safety). The
     *  snapshot lives at `<journalPath>.snap`, spec_infer idiom. */
    std::string journalPath;

    /** Snapshot refresh cadence in manager iterations. */
    size_t snapshotEvery = 64;

    /** Request-stream recording path (empty = no recording). */
    std::string recordPath;

    /** Engine identity stamped into the recording header (the
     *  fields replayRecording() rebuilds the engine from);
     *  maxBatchSize is filled in from the serving config. */
    RecordedEvent recordHeader;

    /** Observability context (resolved like ServingConfig::obs). */
    obs::ObsContext *obs = nullptr;

    /** Watchdog budget per scheduling iteration on the obs clock
     *  (0 = watchdog off). An iteration overrunning it is a stall:
     *  the board health goes Degraded and speculation is disabled
     *  via the degradation ladder. */
    uint64_t watchdogBudgetNanos = 0;

    /** Iterations speculation stays disabled after a stall. */
    size_t stallDegradeIterations = 64;

    /** Simulate a crash (immediate _Exit, like kill -9) once this
     *  many scheduling iterations have run *in this process* —
     *  replayed recovery iterations don't count, so each restarted
     *  incarnation makes progress before crashing again. 0 = never.
     *  Supervisor smoke tests drive this via `--crash-after`. */
    uint64_t crashAfterIterations = 0;
};

/** The serving daemon core. Single-threaded; drive with tick(). */
class Daemon
{
  public:
    Daemon(const core::SpecEngine *engine,
           runtime::ServingConfig serving, DaemonConfig cfg);
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /**
     * Create the board, recover persisted state (journal + snapshot
     * + recording, when configured and present), and open a fresh
     * journal/recording epoch.
     * @return false on any shm/file error (daemon cannot serve).
     */
    bool start();

    /** One scheduling tick (see file header). */
    void tick();

    /**
     * Graceful shutdown (SIGTERM path): stop admitting, finish and
     * stream every in-flight request, say Goodbye, snapshot, and
     * unlink every segment including the board.
     */
    void drain();

    // --- Introspection (tests, tools) -----------------------------

    uint64_t epoch() const { return epoch_; }
    uint64_t ticks() const { return tick_; }
    size_t clientCount() const { return conns_.size(); }
    uint64_t reapCount() const { return reaps_; }
    bool accepting() const { return accepting_; }

    /** True after a Wedge fault froze the daemon: ticks no-op and
     *  the heartbeat stops, exactly what the supervisor watches
     *  for. Tests treat a wedged daemon like a crashed one. */
    bool wedged() const { return wedged_; }

    /** Watchdog stalls observed (late iterations). */
    uint64_t stallCount() const;

    /** Current published health word. */
    BoardHealth health() const { return health_; }
    const std::string &dir() const { return cfg_.dir; }
    runtime::RequestManager &manager() { return *manager_; }
    const runtime::RequestManager &manager() const
    {
        return *manager_;
    }

  private:
    struct Conn
    {
        enum class State
        {
            Live,    ///< serving normally
            Corrupt, ///< poisoned ring; reap next sweep
            Bye,     ///< orderly Goodbye; unlink without Revoked
        };

        Channel channel;
        std::string name;       ///< segment file name (scan key)
        uint64_t lastSeen = 0;  ///< tick of the last inbound frame
        uint64_t pid = 0;
        State state = State::Live;
        std::deque<Message> outbox;
    };

    void scanForClients();
    void pumpConn(Conn &conn);
    void handleMessage(Conn &conn, const Message &msg);
    void reapExpired();
    void reapConn(size_t index, const char *why);
    void streamFinished();
    void flushOutboxes();
    void runGuardedIteration();
    void publishHealth();
    void publishGauges();
    void record(const RecordedEvent &event);
    void snapshot();
    void preregisterMetrics();

    Conn *ownerOf(uint64_t id);

    const core::SpecEngine *engine_;
    runtime::ServingConfig serving_;
    DaemonConfig cfg_;
    obs::ObsContext *obs_;

    std::unique_ptr<runtime::RequestManager> manager_;
    Board board_;
    uint64_t epoch_ = 0;
    uint64_t tick_ = 0;
    uint64_t reaps_ = 0;
    bool accepting_ = true;
    bool started_ = false;
    bool wedged_ = false;
    BoardHealth health_ = BoardHealth::Healthy;
    /** Last tick an ingress Overloaded reject fired (health decays
     *  back to Healthy kOverloadStickyTicks later). */
    uint64_t lastOverloadTick_ = 0;
    /** stats().iterations at this process's start; crash-after
     *  counts live iterations only. */
    size_t iterationsAtStart_ = 0;
    std::unique_ptr<util::Watchdog> watchdog_;

    std::vector<std::unique_ptr<Conn>> conns_;
    /** Request id → owning connection (reap/disconnect detaches). */
    std::map<uint64_t, Conn *> owner_;
    /** Finished-result ids already streamed/recorded. */
    std::set<uint64_t> streamed_;

    std::ofstream journalOut_;
    std::unique_ptr<runtime::JournalWriter> journal_;
    /** Raw descriptor for fdatasync when journalFsync is on. */
    int journalSyncFd_ = -1;
    std::ofstream recordOut_;
    std::unique_ptr<RecordWriter> recorder_;
    size_t lastSnapshotIteration_ = 0;
};

} // namespace ipc
} // namespace specinfer

#endif // SPECINFER_IPC_DAEMON_H
