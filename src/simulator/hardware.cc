#include "simulator/hardware.h"

namespace specinfer {
namespace simulator {

GpuSpec
GpuSpec::a10()
{
    GpuSpec spec;
    spec.name = "NVIDIA A10 24GB";
    spec.fp16Tflops = 125.0;
    spec.computeEfficiency = 0.8;
    spec.hbmBandwidthGBps = 600.0;
    spec.bandwidthEfficiency = 0.8;
    spec.hbmCapacityGB = 24.0;
    spec.perLayerOverheadUs = 12.0;
    return spec;
}

InterconnectSpec
InterconnectSpec::g5_12xlarge()
{
    return InterconnectSpec{};
}

ClusterSpec
ClusterSpec::paperTestbed(size_t nodes)
{
    ClusterSpec spec;
    spec.nodes = nodes;
    return spec;
}

} // namespace simulator
} // namespace specinfer
