/**
 * @file
 * Architecture descriptions of the paper's real models, used by the
 * performance model (independent of the CPU-scale ModelConfig the
 * inference substrate runs).
 */

#ifndef SPECINFER_SIMULATOR_LLM_SPEC_H
#define SPECINFER_SIMULATOR_LLM_SPEC_H

#include <cstddef>
#include <string>

namespace specinfer {
namespace simulator {

/** Size parameters of a served model. */
struct LlmSpec
{
    std::string name = "model";
    double nParams = 7.0e9;      ///< total parameters
    size_t nLayers = 32;
    size_t hidden = 4096;
    size_t vocab = 32000;
    double bytesPerParam = 2.0;  ///< fp16 serving

    /** Parameter bytes. */
    double paramBytes() const { return nParams * bytesPerParam; }

    /** KV-cache bytes per cached token. */
    double kvBytesPerToken() const
    {
        return 2.0 * static_cast<double>(nLayers) *
               static_cast<double>(hidden) * bytesPerParam;
    }

    /** Named presets: llama-7b, opt-13b, opt-30b, llama-65b,
     *  llama-68m, opt-125m. */
    static LlmSpec preset(const std::string &name);
};

} // namespace simulator
} // namespace specinfer

#endif // SPECINFER_SIMULATOR_LLM_SPEC_H
