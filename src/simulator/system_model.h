/**
 * @file
 * End-to-end per-token latency composition for the serving systems
 * compared in the paper's evaluation (Figures 7, 8, 10).
 *
 * A "system" is a cost-model configuration: the incremental-decoding
 * baselines (vLLM, HuggingFace TGI, FasterTransformer, FlexGen, and
 * SpecInfer's own incremental mode) decode one token per request per
 * iteration; the speculative modes decode a token tree driven by a
 * SpeculationProfile measured from the *real* CPU engine, so the
 * acceptance statistics that determine the speedups come from the
 * implemented algorithms, not from assumed constants.
 */

#ifndef SPECINFER_SIMULATOR_SYSTEM_MODEL_H
#define SPECINFER_SIMULATOR_SYSTEM_MODEL_H

#include <string>
#include <vector>

#include "simulator/perf_model.h"

namespace specinfer {
namespace simulator {

/**
 * Speculation statistics driving the speculative-system cost model;
 * produced from real engine traces by workload::profileFromStats().
 */
struct SpeculationProfile
{
    /** Tokens the LLM decodes per iteration (tree + root). */
    double avgLlmTokensPerIter = 1.0;

    /** Verified tokens emitted per iteration. */
    double avgVerifiedPerIter = 1.0;

    /** SSM chunk size per expansion level (level 0 = catch-up +
     *  root), averaged over iterations. */
    std::vector<double> ssmChunkSizes;

    /** Profile describing plain incremental decoding. */
    static SpeculationProfile incremental();
};

/** One serving configuration to price. */
struct ServingScenario
{
    LlmSpec llm = LlmSpec::preset("llama-7b");
    LlmSpec ssm = LlmSpec::preset("llama-68m");
    ClusterSpec cluster = ClusterSpec::paperTestbed();
    ParallelismPlan plan;
    Placement placement = Placement::InMemory;
    size_t batchSize = 1;
    double contextLen = 256.0;

    /**
     * Relative implementation efficiency of the modeled system
     * (runtime polish unrelated to the decoding algorithm); 1.0 =
     * the common kernel baseline. Documented per baseline in
     * EXPERIMENTS.md.
     */
    double systemEfficiency = 1.0;

    /** True when the scenario runs speculation (prices SSM time). */
    bool speculative = false;
};

/**
 * Prices scenarios through the roofline model.
 */
class SystemModel
{
  public:
    explicit SystemModel(GpuPerfModel perf);

    const GpuPerfModel &perf() const { return perf_; }

    /**
     * Average per-token latency in seconds for the scenario under
     * the given speculation profile (use
     * SpeculationProfile::incremental() for non-speculative
     * systems).
     */
    double perTokenLatency(const ServingScenario &scenario,
                           const SpeculationProfile &profile) const;

    /** Latency of one full iteration (LLM + speculation), seconds. */
    double iterationLatency(const ServingScenario &scenario,
                            const SpeculationProfile &profile) const;

    /**
     * Average energy per generated token in joules (LLM pass plus
     * SSM speculation passes, divided by verified tokens).
     */
    double energyPerToken(const ServingScenario &scenario,
                          const SpeculationProfile &profile) const;

  private:
    GpuPerfModel perf_;
};

/**
 * Baseline catalogue: named systems with their modeled efficiency
 * constants, used by the Figure 7/8 benches.
 */
struct NamedSystem
{
    std::string name;
    bool speculative;
    bool treeSpeculation;  ///< false = sequence-based (width 1)
    double systemEfficiency;
};

/** The systems compared in Figure 7 (distributed serving). */
std::vector<NamedSystem> distributedSystems();

/** The systems compared in Figure 8 (offloading-based serving). */
std::vector<NamedSystem> offloadingSystems();

} // namespace simulator
} // namespace specinfer

#endif // SPECINFER_SIMULATOR_SYSTEM_MODEL_H
