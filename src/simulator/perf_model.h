/**
 * @file
 * Roofline-based GPU iteration-latency model.
 *
 * One LLM decoding iteration processes, for each of R batched
 * requests, a chunk of new tokens (1 for incremental decoding, the
 * token tree size for tree-based verification) against that
 * request's KV cache. Iteration time is modeled as
 *
 *   max(compute_time, memory_time) + parallelism costs + overheads
 *
 * where memory_time covers one pass over the model weights (shared
 * by the whole batch) plus KV-cache traffic, and compute_time covers
 * the GEMM and attention FLOPs. This captures the paper's central
 * effect: at small batch sizes decoding is weight-bandwidth-bound,
 * so verifying a whole token tree costs nearly the same as decoding
 * a single token.
 */

#ifndef SPECINFER_SIMULATOR_PERF_MODEL_H
#define SPECINFER_SIMULATOR_PERF_MODEL_H

#include "simulator/hardware.h"
#include "simulator/llm_spec.h"

namespace specinfer {
namespace simulator {

/** How a model's layers are spread over the cluster. */
struct ParallelismPlan
{
    /** Tensor-parallel degree (intra-node, Megatron-style). */
    size_t tensorParallel = 1;

    /** Pipeline-parallel degree (inter-node stages). */
    size_t pipelineParallel = 1;

    size_t totalGpus() const
    {
        return tensorParallel * pipelineParallel;
    }
};

/** Where the model weights live during serving. */
enum class Placement
{
    InMemory,   ///< weights resident in GPU HBM
    Offloaded,  ///< weights streamed from host DRAM every iteration
};

/** The work one decoding iteration performs. */
struct IterationWorkload
{
    /** Number of batched requests. */
    size_t requests = 1;

    /** New tokens decoded per request this iteration. */
    double tokensPerRequest = 1.0;

    /** Average context (KV cache) length per request. */
    double contextLen = 256.0;

    double totalTokens() const
    {
        return static_cast<double>(requests) * tokensPerRequest;
    }
};

/**
 * Tensor-parallel communication volume of one decoding iteration:
 * the collective schedule the analytical model charges for, and the
 * exact counts the real sharded forward (src/parallel) must record.
 * The comm-accounting tests diff one against the other, closing the
 * simulator <-> runtime loop.
 */
struct TpCommVolume
{
    /** allReduce invocations (2 per layer: attention out-proj and
     *  MLP down-proj), 0 when tensorParallel == 1. */
    double allReduceCalls = 0.0;

    /** Payload bytes of one allReduce: tokens * hidden *
     *  bytesPerParam (the logical reduced tensor, not per-link ring
     *  traffic). */
    double bytesPerAllReduce = 0.0;

    double totalAllReduceBytes() const
    {
        return allReduceCalls * bytesPerAllReduce;
    }
};

/**
 * Analytical iteration-latency model for one cluster.
 */
class GpuPerfModel
{
  public:
    explicit GpuPerfModel(ClusterSpec cluster);

    const ClusterSpec &cluster() const { return cluster_; }

    /**
     * The tensor-parallel collective schedule iterationTime()
     * charges for `tokens` new tokens: shared by the latency
     * formula below and the runtime-accounting validation tests.
     */
    static TpCommVolume tensorParallelComm(const LlmSpec &llm,
                                           const ParallelismPlan &plan,
                                           double tokens);

    /**
     * Latency (seconds) of one decoding iteration.
     *
     * @param llm Model being served.
     * @param plan Parallelization (validated against the cluster).
     * @param work Tokens/contexts processed this iteration.
     * @param placement Weight placement.
     */
    double iterationTime(const LlmSpec &llm, const ParallelismPlan &plan,
                         const IterationWorkload &work,
                         Placement placement = Placement::InMemory) const;

    /** True if the plan leaves headroom for weights in HBM. */
    bool fitsInMemory(const LlmSpec &llm,
                      const ParallelismPlan &plan) const;

    /**
     * Energy (joules) of one decoding iteration, summed across all
     * participating GPUs: arithmetic + HBM traffic + off-chip
     * transfers (all-reduce, pipeline hops, host streaming). This
     * quantifies the paper's §2 argument that verifying a token
     * tree amortizes the dominant weight-read energy over several
     * generated tokens.
     */
    double iterationEnergy(const LlmSpec &llm,
                           const ParallelismPlan &plan,
                           const IterationWorkload &work,
                           Placement placement
                               = Placement::InMemory) const;

  private:
    ClusterSpec cluster_;
};

} // namespace simulator
} // namespace specinfer

#endif // SPECINFER_SIMULATOR_PERF_MODEL_H
