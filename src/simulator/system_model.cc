#include "simulator/system_model.h"

#include <algorithm>

#include "util/logging.h"

namespace specinfer {
namespace simulator {

SpeculationProfile
SpeculationProfile::incremental()
{
    SpeculationProfile profile;
    profile.avgLlmTokensPerIter = 1.0;
    profile.avgVerifiedPerIter = 1.0;
    profile.ssmChunkSizes.clear();
    return profile;
}

SystemModel::SystemModel(GpuPerfModel perf) : perf_(std::move(perf))
{
}

double
SystemModel::iterationLatency(const ServingScenario &scenario,
                              const SpeculationProfile &profile) const
{
    SPECINFER_CHECK(profile.avgVerifiedPerIter >= 1.0,
                    "an iteration always emits at least one token");

    // LLM pass: verify the token tree (or decode one token).
    IterationWorkload llm_work;
    llm_work.requests = scenario.batchSize;
    llm_work.tokensPerRequest = profile.avgLlmTokensPerIter;
    llm_work.contextLen = scenario.contextLen;
    double iter = perf_.iterationTime(scenario.llm, scenario.plan,
                                      llm_work, scenario.placement);

    // Speculation pass: SSMs run data-parallel (replicated), so one
    // SSM's sequential expansion levels bound the latency; SSM
    // weights always live in HBM (they are tiny).
    if (scenario.speculative) {
        ParallelismPlan ssm_plan; // single GPU per replica
        for (double chunk : profile.ssmChunkSizes) {
            IterationWorkload ssm_work;
            ssm_work.requests = scenario.batchSize;
            ssm_work.tokensPerRequest = std::max(1.0, chunk);
            ssm_work.contextLen = scenario.contextLen;
            iter += perf_.iterationTime(scenario.ssm, ssm_plan,
                                        ssm_work,
                                        Placement::InMemory);
        }
    }
    return iter / scenario.systemEfficiency;
}

double
SystemModel::perTokenLatency(const ServingScenario &scenario,
                             const SpeculationProfile &profile) const
{
    return iterationLatency(scenario, profile) /
           profile.avgVerifiedPerIter;
}

double
SystemModel::energyPerToken(const ServingScenario &scenario,
                            const SpeculationProfile &profile) const
{
    SPECINFER_CHECK(profile.avgVerifiedPerIter >= 1.0,
                    "an iteration always emits at least one token");
    IterationWorkload llm_work;
    llm_work.requests = scenario.batchSize;
    llm_work.tokensPerRequest = profile.avgLlmTokensPerIter;
    llm_work.contextLen = scenario.contextLen;
    double joules = perf_.iterationEnergy(scenario.llm, scenario.plan,
                                          llm_work,
                                          scenario.placement);
    if (scenario.speculative) {
        for (double chunk : profile.ssmChunkSizes) {
            IterationWorkload ssm_work;
            ssm_work.requests = scenario.batchSize;
            ssm_work.tokensPerRequest = std::max(1.0, chunk);
            ssm_work.contextLen = scenario.contextLen;
            joules += perf_.iterationEnergy(scenario.ssm, {1, 1},
                                            ssm_work,
                                            Placement::InMemory);
        }
    }
    // Per generated token, across the whole batch.
    return joules / (profile.avgVerifiedPerIter *
                     static_cast<double>(scenario.batchSize));
}

std::vector<NamedSystem>
distributedSystems()
{
    // Efficiency constants model implementation polish differences
    // among the baselines (all use the same cuDNN/cuBLAS kernels per
    // §6.2, so the differences are small); SpecInfer's incremental
    // mode matches them by construction, which is what Figure 7's
    // "on-par with existing systems" ablation shows.
    return {
        {"vLLM", false, false, 1.00},
        {"HuggingFace TGI", false, false, 0.93},
        {"FasterTransformer", false, false, 1.05},
        {"SpecInfer (incremental)", false, false, 1.02},
        {"SpecInfer (sequence-based)", true, false, 1.02},
        {"SpecInfer (tree-based)", true, true, 1.02},
    };
}

std::vector<NamedSystem>
offloadingSystems()
{
    return {
        {"FlexGen", false, false, 1.00},
        {"SpecInfer (offload)", true, true, 1.00},
    };
}

} // namespace simulator
} // namespace specinfer
