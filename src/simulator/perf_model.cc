#include "simulator/perf_model.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace specinfer {
namespace simulator {

GpuPerfModel::GpuPerfModel(ClusterSpec cluster)
    : cluster_(std::move(cluster))
{
    SPECINFER_CHECK(cluster_.gpusPerNode > 0 && cluster_.nodes > 0,
                    "empty cluster");
}

bool
GpuPerfModel::fitsInMemory(const LlmSpec &llm,
                           const ParallelismPlan &plan) const
{
    const double per_gpu_bytes =
        llm.paramBytes() / static_cast<double>(plan.totalGpus());
    // Leave ~25% headroom for KV cache and activations.
    return per_gpu_bytes <= cluster_.gpu.hbmCapacityGB * 1.0e9 * 0.75;
}

TpCommVolume
GpuPerfModel::tensorParallelComm(const LlmSpec &llm,
                                const ParallelismPlan &plan,
                                double tokens)
{
    TpCommVolume vol;
    if (plan.tensorParallel <= 1)
        return vol;
    vol.allReduceCalls = 2.0 * static_cast<double>(llm.nLayers);
    vol.bytesPerAllReduce = tokens *
                            static_cast<double>(llm.hidden) *
                            llm.bytesPerParam;
    return vol;
}

double
GpuPerfModel::iterationTime(const LlmSpec &llm,
                            const ParallelismPlan &plan,
                            const IterationWorkload &work,
                            Placement placement) const
{
    SPECINFER_CHECK(plan.tensorParallel >= 1 &&
                    plan.pipelineParallel >= 1,
                    "degenerate parallelism plan");
    SPECINFER_CHECK(plan.tensorParallel <= cluster_.gpusPerNode,
                    "tensor parallelism cannot cross nodes");
    SPECINFER_CHECK(plan.totalGpus() <= cluster_.totalGpus(),
                    "plan uses more GPUs than the cluster has");
    SPECINFER_CHECK(work.requests >= 1 && work.tokensPerRequest > 0.0,
                    "empty iteration workload");

    const GpuSpec &gpu = cluster_.gpu;
    const InterconnectSpec &link = cluster_.link;
    const double tp = static_cast<double>(plan.tensorParallel);
    const double t_tokens = work.totalTokens();

    // --- Compute: GEMMs touch every parameter twice per token;
    // attention reads the context per new token.
    const double gemm_flops = 2.0 * llm.nParams * t_tokens;
    const double attn_flops = 4.0 * static_cast<double>(llm.hidden) *
                              work.contextLen * t_tokens *
                              static_cast<double>(llm.nLayers);
    const double flops_per_gpu = (gemm_flops + attn_flops) / tp;
    const double compute_s = flops_per_gpu /
        (gpu.fp16Tflops * 1.0e12 * gpu.computeEfficiency);

    // --- Memory: one pass over the (per-GPU shard of) weights per
    // iteration, plus KV-cache reads for attention.
    const double kv_bytes = llm.kvBytesPerToken() * work.contextLen *
                            t_tokens;
    const double hbm_bytes = llm.paramBytes() / tp + kv_bytes / tp;
    const double hbm_s = hbm_bytes /
        (gpu.hbmBandwidthGBps * 1.0e9 * gpu.bandwidthEfficiency);

    double stage_s = std::max(compute_s, hbm_s);

    // --- Offloading: weights stream host -> GPU every iteration,
    // overlapped with compute (FlexGen-style pipelining).
    if (placement == Placement::Offloaded) {
        const double stream_s = llm.paramBytes() /
                                (link.hostToGpuGBps * 1.0e9);
        stage_s = std::max(stage_s, stream_s);
    }

    // --- Tensor parallelism: two all-reduces per layer of the
    // per-token activations (the schedule tensorParallelComm()
    // exposes for the runtime-accounting tests).
    double comm_s = 0.0;
    const TpCommVolume tp_comm =
        tensorParallelComm(llm, plan, t_tokens);
    if (tp_comm.allReduceCalls > 0.0) {
        const double per_allreduce =
            link.intraNodeLatencyUs * 1.0e-6 +
            tp_comm.bytesPerAllReduce / (link.intraNodeGBps * 1.0e9);
        comm_s += tp_comm.allReduceCalls * per_allreduce;
    }

    // --- Pipeline parallelism: stages execute sequentially for one
    // batch; (p-1) activation hand-offs across nodes.
    if (plan.pipelineParallel > 1) {
        const double hops =
            static_cast<double>(plan.pipelineParallel - 1);
        const double msg_bytes = t_tokens *
                                 static_cast<double>(llm.hidden) *
                                 llm.bytesPerParam;
        comm_s += hops * (link.interNodeLatencyUs * 1.0e-6 +
                          msg_bytes / (link.interNodeGBps * 1.0e9));
    }

    const double overhead_s = static_cast<double>(llm.nLayers) *
                              gpu.perLayerOverheadUs * 1.0e-6;

    return stage_s + comm_s + overhead_s;
}

double
GpuPerfModel::iterationEnergy(const LlmSpec &llm,
                              const ParallelismPlan &plan,
                              const IterationWorkload &work,
                              Placement placement) const
{
    SPECINFER_CHECK(plan.tensorParallel >= 1 &&
                    plan.pipelineParallel >= 1,
                    "degenerate parallelism plan");
    const GpuSpec &gpu = cluster_.gpu;
    const double t_tokens = work.totalTokens();

    // Arithmetic: sums over all GPUs, so no parallelism division.
    const double flops =
        2.0 * llm.nParams * t_tokens +
        4.0 * static_cast<double>(llm.hidden) * work.contextLen *
            t_tokens * static_cast<double>(llm.nLayers);

    // HBM traffic: every shard is read once per iteration, so the
    // fleet-wide bytes equal one full pass over the weights plus
    // the KV cache.
    const double hbm_bytes =
        llm.paramBytes() +
        llm.kvBytesPerToken() * work.contextLen * t_tokens;

    // Off-chip transfers.
    double link_bytes = 0.0;
    const double msg_bytes = t_tokens *
                             static_cast<double>(llm.hidden) *
                             llm.bytesPerParam;
    if (plan.tensorParallel > 1)
        link_bytes += 2.0 * static_cast<double>(llm.nLayers) *
                      msg_bytes *
                      static_cast<double>(plan.tensorParallel);
    if (plan.pipelineParallel > 1)
        link_bytes +=
            static_cast<double>(plan.pipelineParallel - 1) *
            msg_bytes;
    if (placement == Placement::Offloaded)
        link_bytes += llm.paramBytes();

    return (flops * gpu.pjPerFlop + hbm_bytes * gpu.pjPerHbmByte +
            link_bytes * gpu.pjPerLinkByte) *
           1.0e-12;
}

} // namespace simulator
} // namespace specinfer
