/**
 * @file
 * Hardware descriptions for the analytical performance model.
 *
 * This reproduction has no GPUs, so the latency experiments
 * (Figures 7, 8, 10) are regenerated through a first-principles
 * roofline + interconnect model of the paper's testbed: AWS
 * g5.12xlarge nodes (4x NVIDIA A10 24GB), PCIe within a node,
 * 100 Gbps Ethernet across nodes. See DESIGN.md §2.
 */

#ifndef SPECINFER_SIMULATOR_HARDWARE_H
#define SPECINFER_SIMULATOR_HARDWARE_H

#include <cstddef>
#include <string>

namespace specinfer {
namespace simulator {

/** One GPU's capability envelope. */
struct GpuSpec
{
    std::string name = "gpu";

    /** Dense fp16 tensor throughput, in TFLOP/s. */
    double fp16Tflops = 125.0;

    /** Achievable fraction of peak FLOPs for GEMMs. */
    double computeEfficiency = 0.8;

    /** HBM bandwidth in GB/s. */
    double hbmBandwidthGBps = 600.0;

    /** Achievable fraction of peak bandwidth. */
    double bandwidthEfficiency = 0.8;

    /** HBM capacity in GB. */
    double hbmCapacityGB = 24.0;

    /** Fixed overhead per transformer layer per iteration
     *  (kernel launches, scheduling), in microseconds. */
    double perLayerOverheadUs = 12.0;

    /**
     * Energy coefficients (paper §2: accessing HBM costs two to
     * three orders of magnitude more energy than arithmetic).
     * Order-of-magnitude literature values for a 2020s-era GPU.
     */
    double pjPerFlop = 0.6;        ///< fp16 arithmetic, pJ per FLOP
    double pjPerHbmByte = 60.0;    ///< HBM access, pJ per byte
    double pjPerLinkByte = 250.0;  ///< off-chip link, pJ per byte

    /** NVIDIA A10 24GB (the paper's testbed GPU). */
    static GpuSpec a10();
};

/** Links between GPUs and between nodes. */
struct InterconnectSpec
{
    /** Intra-node GPU-to-GPU bandwidth (PCIe 4.0 x16), GB/s. */
    double intraNodeGBps = 24.0;

    /** Intra-node per-message latency, microseconds. */
    double intraNodeLatencyUs = 8.0;

    /** Inter-node bandwidth (100 Gbps Ethernet), GB/s. */
    double interNodeGBps = 10.0;

    /** Inter-node per-message latency, microseconds. */
    double interNodeLatencyUs = 30.0;

    /** Host DRAM <-> GPU transfer bandwidth (offloading), GB/s. */
    double hostToGpuGBps = 20.0;

    /** AWS g5.12xlarge fabric (paper testbed). */
    static InterconnectSpec g5_12xlarge();
};

/** A cluster: homogeneous GPUs arranged in nodes. */
struct ClusterSpec
{
    GpuSpec gpu = GpuSpec::a10();
    InterconnectSpec link = InterconnectSpec::g5_12xlarge();
    size_t gpusPerNode = 4;
    size_t nodes = 1;

    size_t totalGpus() const { return gpusPerNode * nodes; }

    /** The paper's testbed: `nodes` g5.12xlarge instances. */
    static ClusterSpec paperTestbed(size_t nodes = 1);
};

} // namespace simulator
} // namespace specinfer

#endif // SPECINFER_SIMULATOR_HARDWARE_H
