#include "simulator/llm_spec.h"

#include "util/logging.h"

namespace specinfer {
namespace simulator {

LlmSpec
LlmSpec::preset(const std::string &name)
{
    LlmSpec spec;
    spec.name = name;
    if (name == "llama-7b") {
        spec.nParams = 6.7e9;
        spec.nLayers = 32;
        spec.hidden = 4096;
        spec.vocab = 32000;
    } else if (name == "opt-13b") {
        spec.nParams = 13.0e9;
        spec.nLayers = 40;
        spec.hidden = 5120;
        spec.vocab = 50272;
    } else if (name == "opt-30b") {
        spec.nParams = 30.0e9;
        spec.nLayers = 48;
        spec.hidden = 7168;
        spec.vocab = 50272;
    } else if (name == "llama-65b") {
        spec.nParams = 65.2e9;
        spec.nLayers = 80;
        spec.hidden = 8192;
        spec.vocab = 32000;
    } else if (name == "llama-68m") {
        spec.nParams = 68.0e6;
        spec.nLayers = 2;
        spec.hidden = 768;
        spec.vocab = 32000;
    } else if (name == "opt-125m") {
        spec.nParams = 125.0e6;
        spec.nLayers = 12;
        spec.hidden = 768;
        spec.vocab = 50272;
    } else {
        SPECINFER_FATAL("unknown model preset '" << name << "'");
    }
    return spec;
}

} // namespace simulator
} // namespace specinfer
