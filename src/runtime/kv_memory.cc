#include "runtime/kv_memory.h"

#include <algorithm>

#include "obs/obs.h"
#include "util/logging.h"

namespace specinfer {
namespace runtime {

KvBlockAllocator::KvBlockAllocator(size_t total_blocks,
                                   size_t block_tokens,
                                   obs::ObsContext *obs)
    : totalBlocks_(total_blocks), blockTokens_(block_tokens)
{
    SPECINFER_CHECK(total_blocks > 0, "empty KV pool");
    SPECINFER_CHECK(block_tokens > 0, "degenerate KV block size");
    if (obs != nullptr) {
        obs::MetricsRegistry &reg = obs->metrics();
        reg.gauge("kv_blocks_total")
            ->set(static_cast<int64_t>(totalBlocks_));
        gBlocksInUse_ = reg.gauge("kv_blocks_in_use");
        gActiveRequests_ = reg.gauge("kv_active_requests");
        cAllocFailures_ = reg.counter("kv_alloc_failures");
        publishUsage();
    }
}

void
KvBlockAllocator::publishUsage()
{
    if (gBlocksInUse_ == nullptr)
        return;
    gBlocksInUse_->set(static_cast<int64_t>(usedBlocks_));
    gActiveRequests_->set(static_cast<int64_t>(held_.size()));
}

size_t
KvBlockAllocator::blocksFor(size_t tokens) const
{
    return (tokens + blockTokens_ - 1) / blockTokens_;
}

bool
KvBlockAllocator::canReserve(uint64_t request, size_t tokens) const
{
    size_t want = blocksFor(tokens);
    size_t have = requestBlocks(request);
    if (want <= have)
        return true;
    return want - have <= freeBlocks();
}

bool
KvBlockAllocator::reserve(uint64_t request, size_t tokens)
{
    size_t want = blocksFor(tokens);
    size_t have = requestBlocks(request);
    if (want <= have)
        return true;
    size_t grow = want - have;
    if (grow > freeBlocks()) {
        ++stats_.failedReservations;
        if (cAllocFailures_ != nullptr)
            cAllocFailures_->inc();
        return false;
    }
    held_[request] = want;
    usedBlocks_ += grow;
    stats_.peakUsedBlocks =
        std::max(stats_.peakUsedBlocks, usedBlocks_);
    ++stats_.totalReservations;
    publishUsage();
    return true;
}

void
KvBlockAllocator::release(uint64_t request)
{
    auto it = held_.find(request);
    if (it == held_.end()) {
        // Double release / unknown id: a well-defined no-op rather
        // than silent corruption, but observable via stats so leak
        // hunts can assert it never happens on the hot paths.
        ++stats_.redundantReleases;
        return;
    }
    SPECINFER_CHECK(usedBlocks_ >= it->second,
                    "KV pool accounting underflow");
    usedBlocks_ -= it->second;
    held_.erase(it);
    publishUsage();
}

size_t
KvBlockAllocator::requestBlocks(uint64_t request) const
{
    auto it = held_.find(request);
    return it == held_.end() ? 0 : it->second;
}

double
KvBlockAllocator::fragmentation(size_t actual_tokens) const
{
    size_t capacity_tokens = usedBlocks_ * blockTokens_;
    if (capacity_tokens == 0)
        return 0.0;
    size_t waste = capacity_tokens -
                   std::min(actual_tokens, capacity_tokens);
    return static_cast<double>(waste) /
           static_cast<double>(capacity_tokens);
}

} // namespace runtime
} // namespace specinfer
