#include "runtime/kv_memory.h"

#include <algorithm>

#include "obs/obs.h"
#include "util/hash.h"
#include "util/logging.h"

namespace specinfer {
namespace runtime {

KvBlockAllocator::KvBlockAllocator(size_t total_blocks,
                                   size_t block_tokens,
                                   obs::ObsContext *obs)
    : totalBlocks_(total_blocks), blockTokens_(block_tokens)
{
    SPECINFER_CHECK(total_blocks > 0, "empty KV pool");
    SPECINFER_CHECK(block_tokens > 0, "degenerate KV block size");
    if (obs != nullptr) {
        obs::MetricsRegistry &reg = obs->metrics();
        reg.gauge("kv_blocks_total")
            ->set(static_cast<int64_t>(totalBlocks_));
        gBlocksInUse_ = reg.gauge("kv_blocks_in_use");
        gActiveRequests_ = reg.gauge("kv_active_requests");
        gSharedBlocks_ = reg.gauge("kv_shared_blocks");
        cAllocFailures_ = reg.counter("kv_alloc_failures");
        cPrefixHits_ = reg.counter("kv_prefix_hits");
        cPrefixMisses_ = reg.counter("kv_prefix_misses");
        cCowCopies_ = reg.counter("kv_cow_copies");
        cSharedEvictions_ = reg.counter("kv_shared_evictions");
        publishUsage();
    }
}

void
KvBlockAllocator::publishUsage()
{
    if (gBlocksInUse_ == nullptr)
        return;
    gBlocksInUse_->set(static_cast<int64_t>(usedBlocks_));
    gActiveRequests_->set(static_cast<int64_t>(held_.size()));
    gSharedBlocks_->set(static_cast<int64_t>(shared_.size()));
}

size_t
KvBlockAllocator::blocksFor(size_t tokens) const
{
    return (tokens + blockTokens_ - 1) / blockTokens_;
}

bool
KvBlockAllocator::canReserve(uint64_t request, size_t tokens) const
{
    size_t want = blocksFor(tokens);
    size_t have = requestBlocks(request);
    if (want <= have)
        return true;
    // Zero-ref residents count as available: reserve() reclaims
    // them on demand, and a growing request never holds one (its
    // own shared blocks are referenced, hence not zero-ref).
    return want - have <= freeBlocks() + zeroRefShared_;
}

bool
KvBlockAllocator::reserve(uint64_t request, size_t tokens)
{
    size_t want = blocksFor(tokens);
    size_t have = requestBlocks(request);
    if (want <= have)
        return true;
    size_t grow = want - have;
    if (grow > freeBlocks() + zeroRefShared_) {
        ++stats_.failedReservations;
        if (cAllocFailures_ != nullptr)
            cAllocFailures_->inc();
        return false;
    }
    while (grow > freeBlocks())
        SPECINFER_CHECK(evictOneShared(),
                        "KV eviction accounting out of sync");
    held_[request].privateBlocks += grow;
    usedBlocks_ += grow;
    stats_.peakUsedBlocks =
        std::max(stats_.peakUsedBlocks, usedBlocks_);
    ++stats_.totalReservations;
    publishUsage();
    return true;
}

void
KvBlockAllocator::release(uint64_t request)
{
    auto it = held_.find(request);
    if (it == held_.end()) {
        // Double release / unknown id: a well-defined no-op rather
        // than silent corruption, but observable via stats so leak
        // hunts can assert it never happens on the hot paths.
        ++stats_.redundantReleases;
        return;
    }
    SPECINFER_CHECK(usedBlocks_ >= it->second.privateBlocks,
                    "KV pool accounting underflow");
    usedBlocks_ -= it->second.privateBlocks;
    // Shared references are dropped but the blocks stay resident:
    // the prefix is prefilled once per residency epoch, not once
    // per request, until pool pressure reclaims it.
    for (uint64_t hash : it->second.shared)
        unrefShared(hash);
    if (it->second.partial != 0)
        unrefShared(it->second.partial);
    held_.erase(it);
    publishUsage();
}

size_t
KvBlockAllocator::requestBlocks(uint64_t request) const
{
    auto it = held_.find(request);
    return it == held_.end()
               ? 0
               : it->second.privateBlocks + it->second.shared.size();
}

std::vector<uint64_t>
KvBlockAllocator::requestSharedHashes(uint64_t request) const
{
    auto it = held_.find(request);
    return it == held_.end() ? std::vector<uint64_t>{}
                             : it->second.shared;
}

uint64_t
KvBlockAllocator::requestPartial(uint64_t request) const
{
    auto it = held_.find(request);
    return it == held_.end() ? 0 : it->second.partial;
}

bool
KvBlockAllocator::sharedResident(uint64_t hash) const
{
    return shared_.find(hash) != shared_.end();
}

size_t
KvBlockAllocator::sharedRefs(uint64_t hash) const
{
    auto it = shared_.find(hash);
    return it == shared_.end() ? 0 : it->second.refs;
}

double
KvBlockAllocator::effectiveBlocks(uint64_t request) const
{
    auto it = held_.find(request);
    if (it == held_.end())
        return 0.0;
    double total = static_cast<double>(it->second.privateBlocks);
    auto fair = [this](uint64_t hash) {
        auto b = shared_.find(hash);
        SPECINFER_CHECK(b != shared_.end() && b->second.refs > 0,
                        "held shared block not resident");
        return 1.0 / static_cast<double>(b->second.refs);
    };
    for (uint64_t hash : it->second.shared)
        total += fair(hash);
    if (it->second.partial != 0)
        total += fair(it->second.partial);
    return total;
}

void
KvBlockAllocator::refShared(uint64_t hash)
{
    auto it = shared_.find(hash);
    SPECINFER_CHECK(it != shared_.end(),
                    "reference to non-resident shared block");
    if (it->second.refs == 0) {
        SPECINFER_CHECK(zeroRefShared_ > 0,
                        "zero-ref shared count out of sync");
        --zeroRefShared_;
    }
    ++it->second.refs;
}

void
KvBlockAllocator::unrefShared(uint64_t hash)
{
    auto it = shared_.find(hash);
    SPECINFER_CHECK(it != shared_.end() && it->second.refs > 0,
                    "shared block refcount underflow");
    if (--it->second.refs == 0)
        ++zeroRefShared_;
}

bool
KvBlockAllocator::evictOneShared()
{
    // Deterministic victim selection — deepest chain first, then
    // largest hash — is a pure function of the resident set, so
    // crash-recovery journal replay (which re-runs admissions
    // against a snapshot-restored table) evicts exactly the blocks
    // the live run evicted. Deepest-first also never orphans a
    // resident chain: a block's children are at least as deep.
    auto victim = shared_.end();
    for (auto it = shared_.begin(); it != shared_.end(); ++it) {
        if (it->second.refs != 0)
            continue;
        if (victim == shared_.end() ||
            it->second.depth > victim->second.depth ||
            (it->second.depth == victim->second.depth &&
             it->first > victim->first))
            victim = it;
    }
    if (victim == shared_.end())
        return false;
    const uint64_t hash = victim->first;
    auto range = children_.equal_range(victim->second.parent);
    for (auto it = range.first; it != range.second; ++it) {
        if (it->second == hash) {
            children_.erase(it);
            break;
        }
    }
    shared_.erase(victim);
    SPECINFER_CHECK(zeroRefShared_ > 0 && usedBlocks_ > 0,
                    "eviction accounting underflow");
    --zeroRefShared_;
    --usedBlocks_;
    ++stats_.sharedEvictions;
    if (cSharedEvictions_ != nullptr)
        cSharedEvictions_->inc();
    if (evictionHook_)
        evictionHook_(hash);
    return true;
}

PrefixMatch
KvBlockAllocator::matchPrefix(const std::vector<int> &prompt) const
{
    PrefixMatch match;
    const size_t full = prompt.size() / blockTokens_;
    uint64_t chain = util::kHashChainSeed;
    bool matching = true;
    for (size_t b = 0; b < full; ++b) {
        chain = util::hashTokenBlock(
            chain, prompt.data() + b * blockTokens_, blockTokens_);
        match.ownHashes.push_back(chain);
        if (matching && sharedResident(chain))
            match.hashes.push_back(chain);
        else
            matching = false;
    }
    if (!matching || match.hashes.size() < full ||
        prompt.size() % blockTokens_ != 0) {
        // Past the matched chain, a resident sibling block may still
        // share a strict prefix of our next (possibly short) block:
        // adopt its rows up to the divergence, copy-on-write later.
        const size_t at = match.hashes.size();
        const uint64_t parent = at == 0 ? util::kHashChainSeed
                                        : match.hashes.back();
        const int *rest = prompt.data() + at * blockTokens_;
        const size_t avail =
            std::min(blockTokens_, prompt.size() - at * blockTokens_);
        auto range = children_.equal_range(parent);
        for (auto it = range.first; it != range.second; ++it) {
            auto blk = shared_.find(it->second);
            if (blk == shared_.end() ||
                (at < match.ownHashes.size() &&
                 blk->first == match.ownHashes[at]))
                continue; // own full block handled above
            size_t common = 0;
            while (common < avail &&
                   blk->second.tokens[common] == rest[common])
                ++common;
            if (common > match.partialTokens) {
                match.partialTokens = common;
                match.partialHash = blk->first;
            }
        }
    }
    return match;
}

size_t
KvBlockAllocator::evictableFor(const PrefixMatch &match) const
{
    // Resident blocks this admission re-references cannot double as
    // eviction fodder for it. Residency is checked per own block —
    // eviction can leave gaps in a chain (a zero-ref parent
    // reclaimed under a still-referenced child), so blocks past the
    // contiguous match may be resident too.
    size_t reused = 0;
    for (uint64_t hash : match.ownHashes) {
        auto it = shared_.find(hash);
        if (it != shared_.end() && it->second.refs == 0)
            ++reused;
    }
    if (match.partialHash != 0 && sharedRefs(match.partialHash) == 0)
        ++reused;
    SPECINFER_CHECK(zeroRefShared_ >= reused,
                    "zero-ref shared count out of sync");
    return zeroRefShared_ - reused;
}

bool
KvBlockAllocator::canAdmit(uint64_t request,
                           const std::vector<int> &prompt,
                           size_t total_tokens, bool share) const
{
    if (!share)
        return canReserve(request, total_tokens);
    SPECINFER_CHECK(held_.find(request) == held_.end(),
                    "admit for a request already holding blocks");
    const PrefixMatch match = matchPrefix(prompt);
    const size_t full = match.ownHashes.size();
    const size_t want = blocksFor(total_tokens);
    SPECINFER_CHECK(want >= full, "prompt larger than its footprint");
    size_t resident = 0;
    for (uint64_t hash : match.ownHashes)
        if (sharedResident(hash))
            ++resident;
    // Fresh interns plus the private remainder are new physical
    // blocks; resident own blocks (and the partial block) are
    // re-used.
    const size_t new_blocks = (full - resident) + (want - full);
    if (new_blocks <= freeBlocks() + evictableFor(match))
        return true;
    // A partial match is payload-only: taking it pins a block the
    // private reservation must cover anyway, so when the pool is
    // exactly one block short the partial is dropped rather than
    // wedging admission forever. admit() mirrors this decision.
    if (match.partialHash == 0)
        return false;
    PrefixMatch without = match;
    without.partialHash = 0;
    without.partialTokens = 0;
    return new_blocks <= freeBlocks() + evictableFor(without);
}

bool
KvBlockAllocator::admit(uint64_t request,
                        const std::vector<int> &prompt,
                        size_t total_tokens, bool share,
                        PrefixMatch *out_match)
{
    if (!share) {
        if (out_match != nullptr)
            *out_match = PrefixMatch{};
        return reserve(request, total_tokens);
    }
    PrefixMatch match = matchPrefix(prompt);
    const size_t full = match.ownHashes.size();
    const size_t want = blocksFor(total_tokens);
    size_t resident = 0;
    for (uint64_t hash : match.ownHashes)
        if (sharedResident(hash))
            ++resident;
    const size_t new_blocks = (full - resident) + (want - full);
    if (new_blocks > freeBlocks() + evictableFor(match)) {
        // Mirror canAdmit(): retry with the payload-only partial
        // match dropped before declaring failure — it may pin the
        // one evictable block the admission needs.
        bool salvaged = false;
        if (match.partialHash != 0) {
            match.partialHash = 0;
            match.partialTokens = 0;
            salvaged =
                new_blocks <= freeBlocks() + evictableFor(match);
        }
        if (!salvaged) {
            ++stats_.failedReservations;
            if (cAllocFailures_ != nullptr)
                cAllocFailures_->inc();
            return false;
        }
    }
    Holding &holding = held_[request];
    // Reference every resident own block (and the partial block)
    // first: once referenced they are no longer eviction
    // candidates, so the intern/reserve evictions below cannot
    // reclaim them. Residency is per block, not per chain prefix —
    // eviction gaps leave resident descendants that must be
    // re-referenced, never re-interned.
    size_t hits = 0;
    for (uint64_t hash : match.ownHashes) {
        if (!sharedResident(hash))
            continue;
        refShared(hash);
        ++hits;
    }
    if (match.partialHash != 0) {
        refShared(match.partialHash);
        holding.partial = match.partialHash;
        ++hits;
    }
    stats_.prefixHits += hits;
    if (cPrefixHits_ != nullptr && hits > 0)
        cPrefixHits_->inc(hits);
    // Intern the absent full blocks so later arrivals with the same
    // prefix share them; the holding lists every own block in chain
    // order either way.
    for (size_t b = 0; b < full; ++b) {
        const uint64_t hash = match.ownHashes[b];
        if (sharedResident(hash)) {
            holding.shared.push_back(hash);
            continue;
        }
        if (freeBlocks() == 0)
            SPECINFER_CHECK(evictOneShared(),
                            "admit eviction accounting out of sync");
        const uint64_t parent = b == 0 ? util::kHashChainSeed
                                       : match.ownHashes[b - 1];
        SharedBlock block;
        block.tokens.assign(
            prompt.begin() + static_cast<ptrdiff_t>(b * blockTokens_),
            prompt.begin() +
                static_cast<ptrdiff_t>((b + 1) * blockTokens_));
        block.parent = parent;
        block.depth = b;
        block.refs = 1;
        shared_.emplace(hash, std::move(block));
        children_.emplace(parent, hash);
        holding.shared.push_back(hash);
        ++usedBlocks_;
        ++stats_.prefixMisses;
        if (cPrefixMisses_ != nullptr)
            cPrefixMisses_->inc();
    }
    stats_.peakUsedBlocks =
        std::max(stats_.peakUsedBlocks, usedBlocks_);
    // Private remainder: reserve() counts shared blocks toward the
    // total, so it grows the holding by exactly want - full.
    SPECINFER_CHECK(reserve(request, total_tokens),
                    "admit private reservation failed after "
                    "canAdmit");
    if (out_match != nullptr)
        *out_match = std::move(match);
    return true;
}

void
KvBlockAllocator::cowShared(uint64_t request, uint64_t hash)
{
    auto it = held_.find(request);
    SPECINFER_CHECK(it != held_.end() && it->second.partial == hash,
                    "copy-on-write on a block not held as partial");
    it->second.partial = 0;
    unrefShared(hash);
    ++stats_.cowCopies;
    if (cCowCopies_ != nullptr)
        cCowCopies_->inc();
    publishUsage();
}

void
KvBlockAllocator::restoreSharedBlock(uint64_t hash, uint64_t parent,
                                     size_t depth,
                                     std::vector<int> tokens)
{
    SPECINFER_CHECK(shared_.find(hash) == shared_.end(),
                    "snapshot restores a duplicate shared block");
    SPECINFER_CHECK(freeBlocks() > 0,
                    "snapshot shared table exceeds the pool");
    SharedBlock block;
    block.tokens = std::move(tokens);
    block.parent = parent;
    block.depth = depth;
    block.refs = 0;
    shared_.emplace(hash, std::move(block));
    children_.emplace(parent, hash);
    ++usedBlocks_;
    ++zeroRefShared_;
    stats_.peakUsedBlocks =
        std::max(stats_.peakUsedBlocks, usedBlocks_);
    publishUsage();
}

void
KvBlockAllocator::restoreAcquire(uint64_t request, uint64_t hash,
                                 bool partial)
{
    refShared(hash);
    Holding &holding = held_[request];
    if (partial) {
        SPECINFER_CHECK(holding.partial == 0,
                        "snapshot holds two partial blocks");
        holding.partial = hash;
    } else {
        holding.shared.push_back(hash);
    }
    publishUsage();
}

double
KvBlockAllocator::fragmentation(size_t actual_private_tokens) const
{
    const size_t capacity_tokens = usedBlocks_ * blockTokens_;
    if (capacity_tokens == 0)
        return 0.0;
    // Resident shared blocks are full by construction; private
    // waste is whatever their reservations exceed actual tokens by.
    const size_t private_capacity =
        (usedBlocks_ - shared_.size()) * blockTokens_;
    const size_t waste =
        private_capacity -
        std::min(actual_private_tokens, private_capacity);
    return static_cast<double>(waste) /
           static_cast<double>(capacity_tokens);
}

double
KvBlockAllocator::requestFragmentation(uint64_t request,
                                       size_t actual_tokens) const
{
    const size_t capacity_tokens =
        requestBlocks(request) * blockTokens_;
    if (capacity_tokens == 0)
        return 0.0;
    const size_t waste =
        capacity_tokens - std::min(actual_tokens, capacity_tokens);
    return static_cast<double>(waste) /
           static_cast<double>(capacity_tokens);
}

} // namespace runtime
} // namespace specinfer
