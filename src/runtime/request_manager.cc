#include "runtime/request_manager.h"

#include <algorithm>

#include "util/logging.h"

namespace specinfer {
namespace runtime {

RequestManager::RequestManager(const core::SpecEngine *engine,
                               ServingConfig cfg)
    : engine_(engine), cfg_(cfg)
{
    SPECINFER_CHECK(engine_ != nullptr, "null engine");
    SPECINFER_CHECK(cfg_.maxBatchSize > 0, "batch size must be >= 1");
    if (cfg_.kvPoolBlocks > 0)
        kvPool_ = std::make_unique<KvBlockAllocator>(
            cfg_.kvPoolBlocks, cfg_.kvBlockTokens);
}

uint64_t
RequestManager::submit(std::vector<int> prompt,
                       size_t max_new_tokens)
{
    Request req;
    req.id = nextId_++;
    req.prompt = std::move(prompt);
    req.arrivalIteration = stats_.iterations;
    req.maxNewTokens = max_new_tokens;
    if (kvPool_) {
        SPECINFER_CHECK(
            kvPool_->blocksFor(worstCaseTokens(req)) <=
                kvPool_->totalBlocks(),
            "request can never fit in the KV pool; grow "
            "kvPoolBlocks");
    }
    pending_.push_back(std::move(req));
    ++stats_.requestsSubmitted;
    return pending_.back().id;
}

bool
RequestManager::busy() const
{
    return !pending_.empty() || !active_.empty();
}

size_t
RequestManager::worstCaseTokens(const Request &req) const
{
    const size_t budget = req.maxNewTokens > 0
                              ? req.maxNewTokens
                              : engine_->config().maxNewTokens;
    return req.prompt.size() + budget + engine_->treeBudget() + 2;
}

size_t
RequestManager::preemptLatestArrival(uint64_t requester)
{
    // Request ids increase with submission order, so the id is the
    // arrival priority: only strictly later arrivals are eligible
    // victims, and among them the latest goes first.
    size_t victim = active_.size();
    for (size_t i = 0; i < active_.size(); ++i) {
        if (active_[i].request.id <= requester)
            continue;
        if (victim == active_.size() ||
            active_[i].request.id > active_[victim].request.id)
            victim = i;
    }
    if (victim == active_.size())
        return kNoVictim;
    // Release memory and requeue for a fresh (recomputed) start;
    // seeding by request id keeps the eventual output identical.
    kvPool_->release(active_[victim].request.id);
    pending_.push_front(std::move(active_[victim].request));
    active_.erase(active_.begin() + static_cast<ptrdiff_t>(victim));
    ++stats_.preemptions;
    return victim;
}

void
RequestManager::runIteration()
{
    // Admit pending requests into the free batch slots. Static
    // batching only admits into an idle engine; continuous batching
    // admits whenever a slot is free. With a KV pool, admission
    // additionally requires a memory reservation.
    const bool may_admit =
        cfg_.policy == SchedulingPolicy::Continuous ||
        active_.empty();
    while (may_admit && active_.size() < cfg_.maxBatchSize &&
           !pending_.empty()) {
        Request &front = pending_.front();
        if (kvPool_) {
            const size_t need =
                cfg_.kvPolicy == KvReservationPolicy::WorstCase
                    ? worstCaseTokens(front)
                    : front.prompt.size() + engine_->treeBudget() +
                          2;
            if (!kvPool_->reserve(front.id, need))
                break; // pool exhausted; retry next iteration
        }
        Request req = std::move(front);
        pending_.pop_front();
        core::SpecSession session = engine_->makeSession(
            req.prompt, req.id, req.maxNewTokens);
        active_.push_back({std::move(req), std::move(session),
                           stats_.iterations});
    }
    if (active_.empty()) {
        // Nothing runnable; still counts as a scheduling tick so
        // arrival bookkeeping stays monotone.
        stats_.batchSizeTrace.push_back(0);
        ++stats_.iterations;
        return;
    }
    stats_.batchSizeTrace.push_back(active_.size());

    // One decoding iteration per active request (iteration-level
    // scheduling: requests at different progress advance together).
    // Under on-demand paging a request's growth may exhaust the
    // pool mid-flight; the youngest active request is then
    // preempted and restarted later (vLLM-style recompute).
    for (size_t i = 0; i < active_.size();) {
        const uint64_t id = active_[i].request.id;
        if (kvPool_ &&
            cfg_.kvPolicy == KvReservationPolicy::OnDemand) {
            const size_t need = active_[i].session.sequence().size() +
                                engine_->treeBudget() + 2;
            bool ok = kvPool_->reserve(id, need);
            while (!ok) {
                size_t erased = preemptLatestArrival(id);
                if (erased == kNoVictim)
                    break;
                if (erased < i)
                    --i; // our element shifted left
                ok = kvPool_->reserve(id, need);
            }
            if (!ok) {
                // Last resort: preempt this request itself (it will
                // restart when memory frees).
                kvPool_->release(id);
                pending_.push_front(std::move(active_[i].request));
                active_.erase(active_.begin() +
                              static_cast<ptrdiff_t>(i));
                ++stats_.preemptions;
                continue;
            }
        }
        active_[i].session.step();
        ++stats_.requestIterations;
        ++i;
    }
    ++stats_.iterations;

    // Retire finished requests; their slots free up immediately.
    for (size_t i = 0; i < active_.size();) {
        if (!active_[i].session.done()) {
            ++i;
            continue;
        }
        ActiveRequest &ar = active_[i];
        RequestResult res;
        res.id = ar.request.id;
        res.tokens = ar.session.generated();
        res.stats = ar.session.stats();
        res.stopReason = ar.session.stopReason();
        res.arrivalIteration = ar.request.arrivalIteration;
        res.startIteration = ar.startIteration;
        res.finishIteration = stats_.iterations - 1;
        stats_.tokensGenerated += res.tokens.size();
        ++stats_.requestsFinished;
        if (kvPool_)
            kvPool_->release(res.id);
        finished_.push_back(std::move(res));
        active_.erase(active_.begin() + static_cast<ptrdiff_t>(i));
    }
}

void
RequestManager::runUntilDrained()
{
    while (busy())
        runIteration();
}

std::vector<RequestResult>
RequestManager::takeFinished()
{
    std::vector<RequestResult> out = std::move(finished_);
    finished_.clear();
    return out;
}

} // namespace runtime
} // namespace specinfer
